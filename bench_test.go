package logicregression

// Benchmark harness regenerating the paper's measured artifacts (see
// EXPERIMENTS.md for the mapping):
//
//	BenchmarkTableII/<case>       — one sub-benchmark per Table II row
//	BenchmarkAblationPreprocessing — the Sec. V preprocessing ablation (E2)
//	BenchmarkAblationKnobs         — the DESIGN.md design-knob ablations (E3)
//
// Each iteration performs a full learn + accuracy measurement; the custom
// metrics attached to every benchmark (gates, acc%, queries) are the table
// cells. Budgets are scaled down so `go test -bench=. -benchmem` finishes in
// minutes; `cmd/experiments` exposes the same runs with adjustable budgets.

import (
	"testing"
	"time"

	"logicregression/internal/cases"
	"logicregression/internal/experiments"
)

// benchBudget keeps the full suite laptop-sized.
func benchBudget() experiments.Budget {
	return experiments.Budget{
		EvalPatterns:      6000,
		SupportR:          512,
		MaxTreeNodes:      300,
		PerCase:           10 * time.Second,
		BaselineTreeNodes: 800,
		SOPSamples:        1024,
		Seed:              1,
	}
}

func BenchmarkTableII(b *testing.B) {
	for _, c := range cases.All() {
		c := c
		b.Run(c.Name, func(b *testing.B) {
			var last experiments.Row
			for i := 0; i < b.N; i++ {
				last = experiments.RunCase(c, benchBudget())
			}
			b.ReportMetric(float64(last.Ours.Size), "gates")
			b.ReportMetric(last.Ours.Accuracy, "acc%")
			b.ReportMetric(float64(last.TreeBase.Size), "base-tree-gates")
			b.ReportMetric(last.TreeBase.Accuracy, "base-tree-acc%")
			b.ReportMetric(float64(last.SOPBase.Size), "base-sop-gates")
			b.ReportMetric(last.SOPBase.Accuracy, "base-sop-acc%")
		})
	}
}

func BenchmarkAblationPreprocessing(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationPreprocessing(benchBudget(), nil)
	}
	var sizeX, timeX float64
	n := 0
	for _, r := range rows {
		if r.Case.Type == cases.DIAG || r.Case.Type == cases.DATA {
			sizeX += r.SizeFactor()
			timeX += r.TimeFactor()
			n++
		}
	}
	b.ReportMetric(sizeX/float64(n), "avg-size-blowup-x")
	b.ReportMetric(timeX/float64(n), "avg-time-blowup-x")
}

func BenchmarkAblationKnobs(b *testing.B) {
	var results []experiments.KnobResult
	for i := 0; i < b.N; i++ {
		results = experiments.AblationKnobs(benchBudget(), nil)
	}
	// Surface one headline number per knob family: the size delta between
	// the extreme settings.
	bySetting := map[string]experiments.Entry{}
	for _, r := range results {
		bySetting[r.Knob+"="+r.Setting] = r.Entry
	}
	if a, ok1 := bySetting["treeR=15"]; ok1 {
		if c, ok2 := bySetting["treeR=240"]; ok2 && c.Size > 0 {
			b.ReportMetric(a.Accuracy-c.Accuracy, "treeR-15-vs-240-accdelta")
		}
	}
	if a, ok1 := bySetting["alwaysOnset=true"]; ok1 {
		if c, ok2 := bySetting["alwaysOnset=false"]; ok2 && c.Size > 0 {
			b.ReportMetric(float64(a.Size)/float64(c.Size), "alwaysOnset-size-x")
		}
	}
}
