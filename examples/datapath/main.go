// Datapath: the DATA scenario — a linear-arithmetic datapath (y = 3a+2b+c+5)
// hides inside the black box. The linear template recovers the coefficients
// with a handful of unit probes and rebuilds an exact adder network, while a
// sampling learner would face 14 intertwined outputs over 30 inputs.
//
//	go run ./examples/datapath
package main

import (
	"fmt"

	"logicregression"
	"logicregression/internal/circuit"
)

func main() {
	const inW, outW = 10, 14
	golden := circuit.New()
	a := golden.AddPIWord("a", inW)
	b := golden.AddPIWord("b", inW)
	c := golden.AddPIWord("c", inW)
	sum := golden.AddWords(
		golden.AddWords(golden.MulConst(a, 3, outW), golden.MulConst(b, 2, outW)),
		golden.AddWords(golden.ZeroExtend(c, outW), golden.ConstWord(5, outW)),
	)
	golden.AddPOWord("y", sum)
	hidden := logicregression.NewCircuitOracle(golden)

	res := logicregression.Learn(hidden, logicregression.Options{Seed: 4})
	fmt.Printf("golden: %d gates; learned: %d gates; queries: %d\n",
		golden.Size(), res.Size, res.Queries)
	fmt.Printf("template-matched outputs: %d of %d\n", res.TemplateMatches, len(res.Outputs))

	rep := logicregression.Accuracy(hidden,
		logicregression.NewCircuitOracle(res.Circuit),
		logicregression.EvalConfig{Patterns: 120000, Seed: 11})
	fmt.Printf("accuracy: %.4f%% (all %d output bits must match per pattern)\n",
		rep.Accuracy*100, golden.NumPO())
}
