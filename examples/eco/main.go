// ECO: the engineering-change-order scenario — the black box is the logic
// difference between a design and its patched revision. No templates apply;
// the support identifier prunes 40 candidate inputs down to the handful the
// patch actually reads, and the decision-tree engine (here hitting its
// exhaustive small-function path) reconstructs the patch exactly.
//
//	go run ./examples/eco
package main

import (
	"fmt"

	"logicregression"
	"logicregression/internal/circuit"
)

func main() {
	// Build "old" and "new" revisions differing in one gate, and expose
	// the difference miter per output — the standard ECO patch extraction
	// setup the paper's benchmark category models.
	golden := circuit.New()
	var nets []circuit.Signal
	for i := 0; i < 40; i++ {
		nets = append(nets, golden.AddPI(fmt.Sprintf("n%c%c", 'a'+i/26, 'a'+i%26)))
	}
	oldF := golden.Or(golden.And(nets[3], nets[17]), golden.And(nets[8], golden.NotGate(nets[22])))
	newF := golden.Or(golden.Xor(nets[3], nets[17]), golden.And(nets[8], golden.NotGate(nets[22])))
	golden.AddPO("patch_diff", golden.Xor(oldF, newF))
	hidden := logicregression.NewCircuitOracle(golden)

	res := logicregression.Learn(hidden, logicregression.Options{Seed: 5})
	out := res.Outputs[0]
	fmt.Printf("identified support: %d of %d inputs; method: %s\n",
		out.Support, golden.NumPI(), out.Method)
	fmt.Printf("learned patch: %d gates (%d cubes, negated=%v)\n",
		res.Size, out.Cubes, out.Negated)

	rep := logicregression.Accuracy(hidden,
		logicregression.NewCircuitOracle(res.Circuit),
		logicregression.EvalConfig{Patterns: 120000, Seed: 13})
	fmt.Printf("accuracy: %.4f%%\n", rep.Accuracy*100)
	if rep.Accuracy >= 0.9999 {
		fmt.Println("patch meets the contest's 99.99% bar")
	}
}
