// Comparator: the DIAG scenario of the paper — a semantic condition over
// bus variables hides inside a black box, and the template matcher recovers
// it exactly from port names plus a handful of probes, where a plain
// decision tree would need to model a 24-variable function.
//
//	go run ./examples/comparator
package main

import (
	"fmt"

	"logicregression"
	"logicregression/internal/circuit"
)

func main() {
	// Hidden design: an address-range check, addr and bound as 12-bit
	// buses named the way RTL ports are named.
	golden := circuit.New()
	addr := golden.AddPIWord("addr", 12)
	bound := golden.AddPIWord("bound", 12)
	golden.AddPI("clk_en") // irrelevant control the learner must ignore
	golden.AddPO("in_range", golden.LtWords(addr, bound))
	golden.AddPO("at_limit", golden.EqWords(addr, bound))
	hidden := logicregression.NewCircuitOracle(golden)

	res := logicregression.Learn(hidden, logicregression.Options{Seed: 3})
	fmt.Printf("golden: %d gates; learned: %d gates\n", golden.Size(), res.Size)
	for _, o := range res.Outputs {
		fmt.Printf("  output %-10s learned via %s\n", o.Name, o.Method)
	}

	rep := logicregression.Accuracy(hidden,
		logicregression.NewCircuitOracle(res.Circuit),
		logicregression.EvalConfig{Patterns: 120000, Seed: 9})
	fmt.Printf("accuracy: %.4f%%\n", rep.Accuracy*100)

	// The same black box with templates disabled shows why preprocessing
	// matters (the paper's Sec. V ablation in miniature).
	noPre := logicregression.Learn(hidden, logicregression.Options{
		Seed:                 3,
		DisablePreprocessing: true,
		MaxTreeNodes:         400,
	})
	repNoPre := logicregression.Accuracy(hidden,
		logicregression.NewCircuitOracle(noPre.Circuit),
		logicregression.EvalConfig{Patterns: 120000, Seed: 9})
	fmt.Printf("without templates: %d gates at %.4f%% accuracy\n",
		noPre.Size, repNoPre.Accuracy*100)
}
