// Extensions: three opt-in capabilities beyond the paper, on functions that
// defeat the base pipeline. Affine templates learn a 40-input parity exactly
// from ~100 queries (a decision tree would need ~2^40); counterexample-guided
// refinement repairs an output whose sampled support missed a rarely-active
// input block; parallel per-output learning uses multiple workers (the
// contest banned threads; the library doesn't have to).
//
// Run with: go run ./examples/extensions
package main

import (
	"fmt"
	"time"

	"logicregression"
	"logicregression/internal/circuit"
)

func main() {
	affineDemo()
	refineDemo()
	parallelDemo()
}

func affineDemo() {
	g := circuit.New()
	var taps []circuit.Signal
	for i := 0; i < 40; i++ {
		s := g.AddPI(fmt.Sprintf("bit%c%c", 'a'+i/26, 'a'+i%26))
		if i%3 != 1 { // 27 of the 40 inputs participate
			taps = append(taps, s)
		}
	}
	g.AddPO("crc", g.NotGate(g.XorTree(taps)))
	hidden := logicregression.NewCircuitOracle(g)

	res := logicregression.Learn(hidden, logicregression.Options{
		Seed:              1,
		ExtendedTemplates: true,
	})
	rep := logicregression.Accuracy(hidden,
		logicregression.NewCircuitOracle(res.Circuit),
		logicregression.EvalConfig{Patterns: 60000, Seed: 1})
	fmt.Printf("[affine]   40-input parity: method=%s size=%d queries=%d accuracy=%.4f%%\n",
		res.Outputs[0].Method, res.Size, res.Queries, rep.Accuracy*100)
}

func refineDemo() {
	// f = enable-gated AND block: the block is invisible to even-ratio
	// sampling, so the base learner (crippled to the even pool here)
	// approximates f by its dominant slice; refinement repairs it.
	g := circuit.New()
	lone := g.AddPI("lone")
	var blk []circuit.Signal
	for i := 0; i < 14; i++ {
		blk = append(blk, g.AddPI(fmt.Sprintf("blk%c", 'a'+i)))
	}
	g.AddPO("f", g.Xor(lone, g.AndTree(blk)))
	hidden := logicregression.NewCircuitOracle(g)

	base := logicregression.Options{Seed: 2, SupportR: 256, Ratios: []float64{0.5}}
	plain := logicregression.Learn(hidden, base)
	repPlain := logicregression.Accuracy(hidden,
		logicregression.NewCircuitOracle(plain.Circuit),
		logicregression.EvalConfig{Patterns: 60000, Seed: 2})

	base.RefineRounds = 3
	refined := logicregression.Learn(hidden, base)
	repRef := logicregression.Accuracy(hidden,
		logicregression.NewCircuitOracle(refined.Circuit),
		logicregression.EvalConfig{Patterns: 60000, Seed: 2})
	fmt.Printf("[refine]   missed support: %.4f%% -> %.4f%% after refinement\n",
		repPlain.Accuracy*100, repRef.Accuracy*100)
}

func parallelDemo() {
	g := circuit.New()
	var in []circuit.Signal
	for i := 0; i < 36; i++ {
		in = append(in, g.AddPI(fmt.Sprintf("n%c%c", 'a'+i/26, 'a'+i%26)))
	}
	for po := 0; po < 12; po++ {
		b := po * 3
		g.AddPO(fmt.Sprintf("y%c", 'a'+po),
			g.Or(g.And(in[b], in[b+1]), g.Xor(in[b+2], in[(b+5)%36])))
	}
	hidden := logicregression.NewCircuitOracle(g)

	t0 := time.Now()
	logicregression.Learn(hidden, logicregression.Options{Seed: 3})
	seq := time.Since(t0)
	t0 = time.Now()
	logicregression.Learn(hidden, logicregression.Options{Seed: 3, Parallel: 4})
	par := time.Since(t0)
	fmt.Printf("[parallel] 12 outputs: sequential %s, 4 workers %s\n",
		seq.Round(time.Millisecond), par.Round(time.Millisecond))
}
