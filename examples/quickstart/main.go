// Quickstart: learn a circuit for a hidden Boolean function exposed only as
// a black box, then check the learned circuit's accuracy and print its
// netlist.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"logicregression"
)

func main() {
	// The "unknown system": a 6-input voter with an enable — visible to
	// the learner only through Eval calls and port names.
	inputs := []string{"en", "va", "vb", "vc", "vd", "ve"}
	hidden := logicregression.NewFuncOracle(inputs, []string{"pass"}, func(in []bool) []bool {
		votes := 0
		for _, v := range in[1:] {
			if v {
				votes++
			}
		}
		return []bool{in[0] && votes >= 3}
	})

	res := logicregression.Learn(hidden, logicregression.Options{Seed: 42})
	fmt.Printf("learned circuit: %d two-input gates, %d black-box queries\n",
		res.Size, res.Queries)
	for _, o := range res.Outputs {
		fmt.Printf("  output %q via %s (support %d, %d cubes)\n",
			o.Name, o.Method, o.Support, o.Cubes)
	}

	rep := logicregression.Accuracy(hidden,
		logicregression.NewCircuitOracle(res.Circuit),
		logicregression.EvalConfig{Patterns: 60000, Seed: 7})
	fmt.Printf("accuracy: %.4f%% over %d hidden test patterns\n", rep.Accuracy*100, rep.Patterns)

	fmt.Println("\nnetlist:")
	if err := logicregression.WriteNetlist(os.Stdout, res.Circuit); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
