// Package logicregression learns compact gate-level circuits for black-box
// Boolean functions over high dimensional input spaces — a reproduction of
// "Circuit Learning for Logic Regression on High Dimensional Boolean Space"
// (Chen, Huang, Lee, Jiang; DAC 2020), the winning approach of the 2019
// ICCAD CAD Contest Problem A.
//
// The black box is anything implementing Oracle: it answers full input
// assignments with full output assignments and exposes port names. Learn
// runs the paper's five-step pipeline (name-based grouping, template
// matching, support identification, decision-tree construction, circuit
// optimization) and returns a netlist of 2-input primitive gates plus a
// per-output report.
//
//	o := logicregression.NewCircuitOracle(hiddenCircuit)
//	res := logicregression.Learn(o, logicregression.Options{Seed: 1})
//	rep := logicregression.Accuracy(o, logicregression.NewCircuitOracle(res.Circuit),
//		logicregression.EvalConfig{Patterns: 100000})
//	fmt.Println(res.Size, rep.Accuracy)
//
// Everything underneath — the gate-level netlist package, AIG, CDCL SAT
// solver, BDD engine, two-level minimizer, sampling machinery, template
// matcher, FBDT engine, optimization pipeline, baselines, and the 20
// synthetic contest cases — lives in internal/ packages; this package is the
// stable public surface.
package logicregression

import (
	"io"

	"logicregression/internal/cases"
	"logicregression/internal/circuit"
	"logicregression/internal/core"
	"logicregression/internal/eval"
	"logicregression/internal/oracle"
)

// Oracle is the black-box IO-relation generator interface (the contest's
// iogen): full assignment in, full assignment out, names observable.
type Oracle = oracle.Oracle

// Circuit is a combinational network of 2-input primitive gates.
type Circuit = circuit.Circuit

// Options configures Learn; the zero value is a sensible default.
type Options = core.Options

// Result is the outcome of Learn: the circuit plus per-output reports.
type Result = core.Result

// OutputReport describes how one output was learned.
type OutputReport = core.OutputReport

// EvalConfig configures Accuracy.
type EvalConfig = eval.Config

// Report is an accuracy measurement.
type Report = eval.Report

// Case is one of the 20 synthetic contest benchmarks.
type Case = cases.Case

// Learn runs the five-step learning pipeline against the black box.
func Learn(o Oracle, opts Options) *Result {
	return core.Learn(o, opts)
}

// NewCircuitOracle wraps a circuit as a black box.
func NewCircuitOracle(c *Circuit) Oracle {
	return oracle.FromCircuit(c)
}

// NewFuncOracle adapts a plain function to the Oracle interface.
func NewFuncOracle(inputNames, outputNames []string, f func([]bool) []bool) Oracle {
	return &oracle.FuncOracle{Ins: inputNames, Outs: outputNames, F: f}
}

// Accuracy measures the contest hit rate of learned against golden over the
// three-pool test set of the paper's Section V.
func Accuracy(golden, learned Oracle, cfg EvalConfig) Report {
	return eval.Measure(golden, learned, cfg)
}

// Cases returns the 20 synthetic Table II benchmarks in paper order.
func Cases() []*Case {
	return cases.All()
}

// CaseByName returns one synthetic benchmark ("case_1" .. "case_20").
func CaseByName(name string) (*Case, error) {
	return cases.ByName(name)
}

// WriteNetlist serializes a circuit in the text netlist format.
func WriteNetlist(w io.Writer, c *Circuit) error {
	return circuit.WriteNetlist(w, c)
}

// ParseNetlist reads a circuit in the text netlist format.
func ParseNetlist(r io.Reader) (*Circuit, error) {
	return circuit.ParseNetlist(r)
}
