package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowBasics(t *testing.T) {
	r := NewRow(130)
	r.Set(0, true)
	r.Set(64, true)
	r.Set(129, true)
	if !r.Get(0) || !r.Get(64) || !r.Get(129) || r.Get(1) {
		t.Fatal("Get/Set broken")
	}
	if r.OnesCount() != 3 {
		t.Fatalf("OnesCount = %d", r.OnesCount())
	}
	r.Set(64, false)
	if r.Get(64) {
		t.Fatal("clear failed")
	}
	other := NewRow(130)
	other.Set(0, true)
	r.Xor(other)
	if r.Get(0) {
		t.Fatal("xor failed")
	}
	if NewRow(5).IsZero() != true || r.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestSolveIdentity(t *testing.T) {
	// x0=1, x1=0, x2=1.
	s := NewSystem(3)
	for i, v := range []bool{true, false, true} {
		row := NewRow(3)
		row.Set(i, true)
		s.AddEquation(row, v)
	}
	sol, ok := s.Solve()
	if !ok {
		t.Fatal("inconsistent")
	}
	if !sol.Get(0) || sol.Get(1) || !sol.Get(2) {
		t.Fatalf("solution wrong")
	}
}

func TestSolveDetectsInconsistency(t *testing.T) {
	// x0 = 0 and x0 = 1.
	s := NewSystem(1)
	row := NewRow(1)
	row.Set(0, true)
	s.AddEquation(row, false)
	s.AddEquation(row, true)
	if _, ok := s.Solve(); ok {
		t.Fatal("inconsistent system solved")
	}
}

func TestSolveUnderdetermined(t *testing.T) {
	// x0 ⊕ x1 = 1 with 3 unknowns: any particular solution must satisfy it.
	s := NewSystem(3)
	row := NewRow(3)
	row.Set(0, true)
	row.Set(1, true)
	s.AddEquation(row, true)
	sol, ok := s.Solve()
	if !ok {
		t.Fatal("consistent system rejected")
	}
	if sol.Get(0) == sol.Get(1) {
		t.Fatal("solution violates the equation")
	}
}

func TestSolveRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		// Plant a secret solution, generate consistent equations.
		secret := NewRow(n)
		for i := 0; i < n; i++ {
			secret.Set(i, rng.Intn(2) == 1)
		}
		s := NewSystem(n)
		m := n + rng.Intn(20)
		for k := 0; k < m; k++ {
			row := NewRow(n)
			for i := 0; i < n; i++ {
				row.Set(i, rng.Intn(2) == 1)
			}
			s.AddEquation(row, Eval(row, secret))
		}
		sol, ok := s.Solve()
		if !ok {
			t.Fatalf("trial %d: planted system inconsistent", trial)
		}
		// The particular solution must satisfy every equation.
		for k := 0; k < s.NumRows(); k++ {
			if Eval(s.rows[k], sol) != s.rhs[k] {
				t.Fatalf("trial %d: solution violates equation %d", trial, k)
			}
		}
	}
}

func TestRankFullAndDeficient(t *testing.T) {
	s := NewSystem(3)
	for i := 0; i < 3; i++ {
		row := NewRow(3)
		row.Set(i, true)
		s.AddEquation(row, false)
	}
	if s.Rank() != 3 {
		t.Fatalf("rank = %d, want 3", s.Rank())
	}
	// Add a dependent row: rank unchanged.
	dep := NewRow(3)
	dep.Set(0, true)
	dep.Set(1, true)
	s.AddEquation(dep, false)
	if s.Rank() != 3 {
		t.Fatalf("rank after dependent row = %d", s.Rank())
	}
}

func TestEvalParity(t *testing.T) {
	coeffs := NewRow(4)
	coeffs.Set(1, true)
	coeffs.Set(3, true)
	x := NewRow(4)
	x.Set(1, true)
	if !Eval(coeffs, x) {
		t.Fatal("parity of single overlap should be 1")
	}
	x.Set(3, true)
	if Eval(coeffs, x) {
		t.Fatal("parity of double overlap should be 0")
	}
}

// Property: solving a system with >= n independent planted equations
// recovers the exact secret.
func TestQuickExactRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		secret := NewRow(n)
		for i := 0; i < n; i++ {
			secret.Set(i, rng.Intn(2) == 1)
		}
		s := NewSystem(n)
		for k := 0; k < n+40; k++ { // overdetermined: full rank w.h.p.
			row := NewRow(n)
			for i := 0; i < n; i++ {
				row.Set(i, rng.Intn(2) == 1)
			}
			s.AddEquation(row, Eval(row, secret))
		}
		if s.Rank() < n {
			return true // unlucky rank deficiency: nothing to assert
		}
		sol, ok := s.Solve()
		if !ok {
			return false
		}
		for i := 0; i < n; i++ {
			if sol.Get(i) != secret.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
