// Package gf2 implements linear algebra over GF(2) on bit-packed matrices:
// Gaussian elimination, rank, and linear-system solving. It backs the affine
// template family — functions of the form z = b ⊕ x_{i1} ⊕ ... ⊕ x_{ik} are
// exactly learnable from O(n) samples by solving a linear system, where
// sampling-based decision trees need exponential effort.
package gf2

import "math/bits"

// Row is a bit-packed row vector.
type Row []uint64

// NewRow returns an all-zero row of n bits.
func NewRow(n int) Row { return make(Row, (n+63)/64) }

// Get returns bit i.
func (r Row) Get(i int) bool { return r[i>>6]>>(uint(i)&63)&1 == 1 }

// Set sets bit i to v.
func (r Row) Set(i int, v bool) {
	if v {
		r[i>>6] |= 1 << (uint(i) & 63)
	} else {
		r[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Xor adds (XORs) other into r.
func (r Row) Xor(other Row) {
	for i := range r {
		r[i] ^= other[i]
	}
}

// Clone copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// IsZero reports whether every bit is 0.
func (r Row) IsZero() bool {
	for _, w := range r {
		if w != 0 {
			return false
		}
	}
	return true
}

// OnesCount counts the set bits.
func (r Row) OnesCount() int {
	n := 0
	for _, w := range r {
		n += bits.OnesCount64(w)
	}
	return n
}

// System is a linear system A·x = b over GF(2), built row by row.
type System struct {
	nVars int
	rows  []Row  // coefficient rows
	rhs   []bool // right-hand sides
}

// NewSystem creates a system over nVars unknowns.
func NewSystem(nVars int) *System { return &System{nVars: nVars} }

// NumVars returns the unknown count.
func (s *System) NumVars() int { return s.nVars }

// NumRows returns the equation count.
func (s *System) NumRows() int { return len(s.rows) }

// AddEquation appends one equation; coeffs is copied.
func (s *System) AddEquation(coeffs Row, rhs bool) {
	s.rows = append(s.rows, coeffs.Clone())
	s.rhs = append(s.rhs, rhs)
}

// Solve runs Gaussian elimination. It returns a particular solution
// (consistent=true) or reports inconsistency. When the system is
// underdetermined, free variables are set to 0, yielding the solution with
// the fewest speculative terms.
func (s *System) Solve() (solution Row, consistent bool) {
	// Work on copies.
	rows := make([]Row, len(s.rows))
	rhs := make([]bool, len(s.rhs))
	for i := range rows {
		rows[i] = s.rows[i].Clone()
		rhs[i] = s.rhs[i]
	}

	pivotOfCol := make([]int, s.nVars)
	for i := range pivotOfCol {
		pivotOfCol[i] = -1
	}
	rank := 0
	for col := 0; col < s.nVars && rank < len(rows); col++ {
		// Find a pivot row.
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if rows[r].Get(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		rhs[rank], rhs[pivot] = rhs[pivot], rhs[rank]
		for r := 0; r < len(rows); r++ {
			if r != rank && rows[r].Get(col) {
				rows[r].Xor(rows[rank])
				rhs[r] = rhs[r] != rhs[rank]
			}
		}
		pivotOfCol[col] = rank
		rank++
	}
	// Inconsistency: a zero row with rhs 1.
	for r := rank; r < len(rows); r++ {
		if rhs[r] && rows[r].IsZero() {
			return nil, false
		}
	}
	solution = NewRow(s.nVars)
	for col := 0; col < s.nVars; col++ {
		if p := pivotOfCol[col]; p >= 0 && rhs[p] {
			solution.Set(col, true)
		}
	}
	return solution, true
}

// Rank computes the matrix rank (ignoring the RHS).
func (s *System) Rank() int {
	rows := make([]Row, len(s.rows))
	for i := range rows {
		rows[i] = s.rows[i].Clone()
	}
	rank := 0
	for col := 0; col < s.nVars && rank < len(rows); col++ {
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if rows[r].Get(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := rank + 1; r < len(rows); r++ {
			if rows[r].Get(col) {
				rows[r].Xor(rows[rank])
			}
		}
		rank++
	}
	return rank
}

// Eval computes coeffs · x ⊕ ... for a candidate solution: the parity of the
// AND of the two bit vectors.
func Eval(coeffs, x Row) bool {
	parity := 0
	for i := range coeffs {
		parity ^= bits.OnesCount64(coeffs[i]&x[i]) & 1
	}
	return parity == 1
}
