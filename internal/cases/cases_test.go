package cases

import (
	"bytes"
	"math/rand"
	"testing"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
	"logicregression/internal/template"
)

// tableII is the circuit-info section of Table II (name, type, #PI, #PO).
var tableII = []struct {
	name   string
	typ    Category
	pi, po int
	hidden bool
}{
	{"case_1", ECO, 121, 38, false},
	{"case_2", DATA, 53, 19, false},
	{"case_3", DIAG, 72, 1, false},
	{"case_4", ECO, 56, 5, false},
	{"case_5", NEQ, 87, 16, false},
	{"case_6", DIAG, 76, 1, false},
	{"case_7", ECO, 43, 7, false},
	{"case_8", DIAG, 44, 5, false},
	{"case_9", ECO, 173, 16, false},
	{"case_10", NEQ, 37, 2, false},
	{"case_11", NEQ, 60, 20, true},
	{"case_12", DATA, 40, 26, true},
	{"case_13", ECO, 43, 7, true},
	{"case_14", NEQ, 50, 22, true},
	{"case_15", DIAG, 80, 3, true},
	{"case_16", DIAG, 26, 4, true},
	{"case_17", ECO, 76, 33, true},
	{"case_18", NEQ, 102, 2, true},
	{"case_19", ECO, 73, 8, true},
	{"case_20", DIAG, 51, 2, true},
}

func TestAllMatchesTableII(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("got %d cases", len(all))
	}
	for i, want := range tableII {
		c := all[i]
		if c.Name != want.name || c.Type != want.typ {
			t.Errorf("case %d: %s/%s, want %s/%s", i, c.Name, c.Type, want.name, want.typ)
		}
		if c.Circuit.NumPI() != want.pi || c.Circuit.NumPO() != want.po {
			t.Errorf("%s: %d PI / %d PO, want %d/%d",
				c.Name, c.Circuit.NumPI(), c.Circuit.NumPO(), want.pi, want.po)
		}
		if c.Hidden != want.hidden {
			t.Errorf("%s: hidden = %v", c.Name, c.Hidden)
		}
	}
}

func TestOraclesValidate(t *testing.T) {
	for _, c := range All() {
		if err := oracle.Validate(c.Oracle()); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := All()
	b := All()
	for i := range a {
		var bufA, bufB bytes.Buffer
		if err := circuit.WriteNetlist(&bufA, a[i].Circuit); err != nil {
			t.Fatal(err)
		}
		if err := circuit.WriteNetlist(&bufB, b[i].Circuit); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Fatalf("%s: non-deterministic construction", a[i].Name)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("case_12")
	if err != nil || c.Type != DATA {
		t.Fatalf("ByName: %v %v", c, err)
	}
	if _, err := ByName("case_99"); err == nil {
		t.Fatal("ByName accepted unknown case")
	}
}

func TestNamesOrder(t *testing.T) {
	n := Names()
	if len(n) != 20 || n[0] != "case_1" || n[19] != "case_20" {
		t.Fatalf("Names = %v", n)
	}
}

func TestDIAGCasesAreTemplateMatchable(t *testing.T) {
	for _, name := range []string{"case_3", "case_6", "case_8", "case_15", "case_16", "case_20"} {
		c, _ := ByName(name)
		m := template.Detect(c.Oracle(), template.Config{Samples: 512, Verify: 24}, rand.New(rand.NewSource(1)))
		covered := m.MatchedOutputs()
		if len(covered) != c.Circuit.NumPO() {
			t.Errorf("%s: templates cover %d/%d outputs", name, len(covered), c.Circuit.NumPO())
		}
	}
}

func TestDATACasesAreLinearMatchable(t *testing.T) {
	for _, name := range []string{"case_2", "case_12"} {
		c, _ := ByName(name)
		m := template.Detect(c.Oracle(), template.Config{Samples: 64, Verify: 24}, rand.New(rand.NewSource(2)))
		covered := m.MatchedOutputs()
		if len(covered) != c.Circuit.NumPO() {
			t.Errorf("%s: templates cover %d/%d outputs (linear=%d)",
				name, len(covered), c.Circuit.NumPO(), len(m.Linear))
		}
	}
}

func TestECOOutputsHaveModerateSupport(t *testing.T) {
	for _, name := range []string{"case_1", "case_7", "case_13"} {
		c, _ := ByName(name)
		for po := 0; po < c.Circuit.NumPO(); po++ {
			sup := c.Circuit.StructuralSupport(po)
			if len(sup) > 16 {
				t.Errorf("%s output %d: structural support %d too wide for its tier",
					name, po, len(sup))
			}
		}
	}
}

func TestHardCasesAreWide(t *testing.T) {
	for _, name := range []string{"case_9", "case_14", "case_18"} {
		c, _ := ByName(name)
		if !c.Hard {
			t.Errorf("%s not marked hard", name)
		}
		wide := false
		for po := 0; po < c.Circuit.NumPO(); po++ {
			if len(c.Circuit.StructuralSupport(po)) >= 25 {
				wide = true
			}
		}
		if !wide {
			t.Errorf("%s: no wide-support output", name)
		}
	}
}

func TestMiterOutputsNotAllConstant(t *testing.T) {
	// NEQ miters must actually be non-equivalent for most outputs:
	// sample each output and require at least one disagreement overall.
	rng := rand.New(rand.NewSource(3))
	for _, name := range []string{"case_5", "case_10", "case_11", "case_14"} {
		c, _ := ByName(name)
		o := c.Oracle()
		nonConst := 0
		for po := 0; po < c.Circuit.NumPO(); po++ {
			seen0, seen1 := false, false
			for k := 0; k < 200 && !(seen0 && seen1); k++ {
				a := make([]bool, o.NumInputs())
				for i := range a {
					a[i] = rng.Intn(2) == 1
				}
				if o.Eval(a)[po] {
					seen1 = true
				} else {
					seen0 = true
				}
			}
			if seen0 && seen1 {
				nonConst++
			}
		}
		if nonConst == 0 {
			t.Errorf("%s: every miter output looks constant", name)
		}
	}
}
