// Package cases provides the 20 synthetic benchmark circuits that stand in
// for the (proprietary, unavailable) 2019 ICCAD CAD Contest benchmarks of
// Table II. Each case matches the paper's PI/PO counts and category
// (NEQ/ECO/DIAG/DATA), and its structural family follows the category
// description in Sec. V:
//
//   - NEQ:  miter structures of non-equivalent logic cones
//   - ECO:  patch / logic-difference control logic
//   - DIAG: semantic conditions over bus variables (comparators)
//   - DATA: arithmetic datapath (linear combinations of buses)
//
// Hardness is controlled per case to reproduce the paper's outcome shape:
// the cases the winning tool solved exactly stay easy/medium here; the cases
// everyone failed (case_9, case_14, case_18) are wide parity-rich functions
// that defeat sampling-based tree learners by construction.
package cases

import (
	"fmt"
	"math/rand"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
)

// Category labels the application scenario of a case.
type Category string

// Categories of Table II.
const (
	NEQ  Category = "NEQ"
	ECO  Category = "ECO"
	DIAG Category = "DIAG"
	DATA Category = "DATA"
)

// PaperRow holds the "Ours" columns of Table II for reference in
// EXPERIMENTS.md (size, accuracy %, seconds); Failed marks "-" rows.
type PaperRow struct {
	Size     int
	Accuracy float64
	Time     float64
	Failed   bool
}

// Case is one synthetic benchmark.
type Case struct {
	Name   string
	Type   Category
	Hidden bool // hidden (starred) contest case
	// Circuit is the golden netlist behind the black box.
	Circuit *circuit.Circuit
	// Paper is the paper's own result on the original benchmark.
	Paper PaperRow
	// Hard marks cases the paper's tool could not learn to >99%.
	Hard bool
}

// Oracle returns the black-box view of the case.
func (c *Case) Oracle() oracle.Oracle { return oracle.FromCircuit(c.Circuit) }

// ByName returns the named case.
func ByName(name string) (*Case, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("cases: unknown case %q", name)
}

// Names lists all case names in Table II order.
func Names() []string {
	var out []string
	for _, c := range All() {
		out = append(out, c.Name)
	}
	return out
}

// All builds the 20 cases. Construction is deterministic.
func All() []*Case {
	return []*Case{
		case1(), case2(), case3(), case4(), case5(),
		case6(), case7(), case8(), case9(), case10(),
		case11(), case12(), case13(), case14(), case15(),
		case16(), case17(), case18(), case19(), case20(),
	}
}

// ---- construction helpers ----

// singleName yields non-groupable control-net names (letters only, so the
// name-based grouping never mistakes them for bus bits).
func singleName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	name := ""
	n := i
	for {
		name = string(letters[n%26]) + name
		n = n/26 - 1
		if n < 0 {
			break
		}
	}
	return "net_" + name
}

// addSingles declares n letter-named PIs.
func addSingles(c *circuit.Circuit, n int, offset int) []circuit.Signal {
	out := make([]circuit.Signal, n)
	for i := range out {
		out[i] = c.AddPI(singleName(offset + i))
	}
	return out
}

// coneSpec is a reproducible random-cone recipe so NEQ miters can replay a
// mutated copy of the same cone. Construction has two phases: a grow phase
// that adds sharing (combinations pushed alongside their operands) and a
// reduce phase that folds the whole frontier down to one signal. Every
// reduce-phase gate is in the transitive fanin of the output, so the cone's
// structural support covers ALL of its inputs and a reduce-phase mutation is
// guaranteed to be observable at the cone output.
type coneSpec struct {
	nInputs int
	grow    int   // number of grow-phase gates
	ops     []int // gate type per step (0..5: AND OR XOR NAND NOR XNOR)
	ai, bi  []int // frontier indices per step
}

func newConeSpec(rng *rand.Rand, nInputs, extra int, xorWeight float64) coneSpec {
	spec := coneSpec{nInputs: nInputs, grow: extra}
	frontier := nInputs
	pick := func() int {
		r := rng.Float64()
		var op int
		switch {
		case r < xorWeight:
			op = 2
		case r < xorWeight+(1-xorWeight)/2:
			op = 0
		default:
			op = 1
		}
		if rng.Intn(4) == 0 {
			op += 3 // inverted variant
		}
		return op
	}
	two := func(n int) (int, int) {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		return i, j
	}
	for g := 0; g < extra; g++ {
		i, j := two(frontier)
		spec.ops = append(spec.ops, pick())
		spec.ai = append(spec.ai, i)
		spec.bi = append(spec.bi, j)
		frontier++
	}
	for frontier > 1 {
		i, j := two(frontier)
		spec.ops = append(spec.ops, pick())
		spec.ai = append(spec.ai, i)
		spec.bi = append(spec.bi, j)
		frontier--
	}
	return spec
}

// build replays the spec over the given inputs and returns the cone output.
func (s coneSpec) build(c *circuit.Circuit, inputs []circuit.Signal) circuit.Signal {
	frontier := append([]circuit.Signal(nil), inputs...)
	gate := func(op int, a, b circuit.Signal) circuit.Signal {
		switch op {
		case 0:
			return c.And(a, b)
		case 1:
			return c.Or(a, b)
		case 2:
			return c.Xor(a, b)
		case 3:
			return c.Nand(a, b)
		case 4:
			return c.Nor(a, b)
		default:
			return c.Xnor(a, b)
		}
	}
	for g := range s.ops {
		i, j := s.ai[g], s.bi[g]
		out := gate(s.ops[g], frontier[i], frontier[j])
		if g < s.grow {
			frontier = append(frontier, out)
			continue
		}
		// Reduce: remove both operands (higher index first), push result.
		hi, lo := max(i, j), min(i, j)
		frontier = append(frontier[:hi], frontier[hi+1:]...)
		frontier = append(frontier[:lo], frontier[lo+1:]...)
		frontier = append(frontier, out)
	}
	if len(frontier) != 1 {
		panic("cases: cone spec did not reduce to one signal")
	}
	return frontier[0]
}

// mutate returns a copy of the spec with one reduce-phase gate op changed,
// modelling the small logic difference a non-equivalence miter exposes.
// Reduce-phase gates always reach the output, so the mutation is observable.
func (s coneSpec) mutate(rng *rand.Rand) coneSpec {
	out := coneSpec{
		nInputs: s.nInputs,
		grow:    s.grow,
		ops:     append([]int(nil), s.ops...),
		ai:      append([]int(nil), s.ai...),
		bi:      append([]int(nil), s.bi...),
	}
	if len(out.ops) == out.grow {
		return out
	}
	// Prefer the last quarter of the reduce phase: a shallow, sparse delta.
	reduceLen := len(out.ops) - out.grow
	lo := out.grow + 3*reduceLen/4
	idx := lo + rng.Intn(len(out.ops)-lo)
	out.ops[idx] = (out.ops[idx] + 1 + rng.Intn(5)) % 6
	return out
}

// pickSubset chooses k distinct indices from [0,n).
func pickSubset(rng *rand.Rand, n, k int) []int {
	perm := rng.Perm(n)
	sub := append([]int(nil), perm[:k]...)
	return sub
}

func gather(sigs []circuit.Signal, idx []int) []circuit.Signal {
	out := make([]circuit.Signal, len(idx))
	for i, j := range idx {
		out[i] = sigs[j]
	}
	return out
}

// ecoCase builds an ECO-style case: nPO independent patch cones over
// letter-named singles, with per-output support in [supLo, supHi].
func ecoCase(seed int64, nPI, nPO, supLo, supHi int, xorWeight float64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New()
	ins := addSingles(c, nPI, 0)
	for po := 0; po < nPO; po++ {
		sup := supLo + rng.Intn(supHi-supLo+1)
		subset := gather(ins, pickSubset(rng, nPI, sup))
		spec := newConeSpec(rng, sup, 2*sup+rng.Intn(sup+1), xorWeight)
		c.AddPO(fmt.Sprintf("po_%s", singleName(po)), spec.build(c, subset))
	}
	return c
}

// neqCase builds a NEQ-style case: each output is a miter XOR of a cone and
// its mutated copy over the same support.
func neqCase(seed int64, nPI, nPO, supLo, supHi int, xorWeight float64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New()
	ins := addSingles(c, nPI, 0)
	for po := 0; po < nPO; po++ {
		sup := supLo + rng.Intn(supHi-supLo+1)
		subset := gather(ins, pickSubset(rng, nPI, sup))
		spec := newConeSpec(rng, sup, 2*sup+rng.Intn(sup+1), xorWeight)
		fa := spec.build(c, subset)
		// Retry mutations until the two cones demonstrably disagree
		// somewhere: a miter of equivalent cones would be constant 0 and
		// teach nothing about non-equivalence diagnosis.
		var miter circuit.Signal
		for try := 0; ; try++ {
			fb := spec.mutate(rng).build(c, subset)
			miter = c.Xor(fa, fb)
			if try >= 20 || signalVaries(c, miter, rng) {
				break
			}
		}
		c.AddPO(fmt.Sprintf("miter_%s", singleName(po)), miter)
	}
	return c
}

// signalVaries samples the signal and reports whether it takes value 1
// anywhere (a miter that never fires is a failed mutation).
func signalVaries(c *circuit.Circuit, s circuit.Signal, rng *rand.Rand) bool {
	in := make([]uint64, c.NumPI())
	for round := 0; round < 8; round++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		if c.EvalSignalWords(in, s)[0] != 0 {
			return true
		}
	}
	return false
}

// ---- the 20 cases ----

func case1() *Case {
	return &Case{
		Name: "case_1", Type: ECO,
		Circuit: ecoCase(101, 121, 38, 4, 7, 0.15),
		Paper:   PaperRow{Size: 165, Accuracy: 100, Time: 35},
	}
}

func case2() *Case {
	// DATA: z(19) = 3a + 2b + c + 5 (mod 2^19) over 17-bit buses + 2
	// spare controls.
	c := circuit.New()
	a := c.AddPIWord("opa", 17)
	b := c.AddPIWord("opb", 17)
	d := c.AddPIWord("opc", 17)
	c.AddPI("net_en")
	c.AddPI("net_md")
	const w = 19
	sum := c.AddWords(
		c.AddWords(c.MulConst(a, 3, w), c.MulConst(b, 2, w)),
		c.AddWords(c.ZeroExtend(d, w), c.ConstWord(5, w)),
	)
	c.AddPOWord("res", sum)
	return &Case{
		Name: "case_2", Type: DATA, Circuit: c,
		Paper: PaperRow{Size: 186, Accuracy: 100, Time: 11},
	}
}

func case3() *Case {
	// DIAG: one comparator over two 32-bit buses; 8 spare controls.
	c := circuit.New()
	a := c.AddPIWord("addr", 32)
	b := c.AddPIWord("limit", 32)
	addSingles(c, 8, 0)
	c.AddPO("oob", c.LtWords(a, b))
	return &Case{
		Name: "case_3", Type: DIAG, Circuit: c,
		Paper: PaperRow{Size: 71, Accuracy: 100, Time: 14},
	}
}

func case4() *Case {
	return &Case{
		Name: "case_4", Type: ECO,
		Circuit: ecoCase(104, 56, 5, 12, 16, 0.3),
		Paper:   PaperRow{Size: 173, Accuracy: 100, Time: 229},
	}
}

func case5() *Case {
	return &Case{
		Name: "case_5", Type: NEQ,
		Circuit: neqCase(105, 87, 16, 10, 15, 0.35),
		Paper:   PaperRow{Size: 1436, Accuracy: 99.833, Time: 2578},
	}
}

func case6() *Case {
	// DIAG: equality of two 30-bit buses; 16 spare controls.
	c := circuit.New()
	a := c.AddPIWord("busa", 30)
	b := c.AddPIWord("busb", 30)
	addSingles(c, 16, 0)
	c.AddPO("match", c.EqWords(a, b))
	return &Case{
		Name: "case_6", Type: DIAG, Circuit: c,
		Paper: PaperRow{Size: 93, Accuracy: 100, Time: 16},
	}
}

func case7() *Case {
	return &Case{
		Name: "case_7", Type: ECO,
		Circuit: ecoCase(107, 43, 7, 3, 6, 0.1),
		Paper:   PaperRow{Size: 40, Accuracy: 100, Time: 5},
	}
}

func case8() *Case {
	// DIAG: five predicates over three 12-bit buses + 8 controls.
	c := circuit.New()
	a := c.AddPIWord("cnt", 12)
	b := c.AddPIWord("cap", 12)
	d := c.AddPIWord("ref", 12)
	addSingles(c, 8, 0)
	c.AddPO("full", c.EqWords(a, b))
	c.AddPO("under", c.LtWords(a, d))
	c.AddPO("over", c.GeWords(b, d))
	c.AddPO("ne", c.NeWords(a, d))
	c.AddPO("zero", c.EqConst(a, 0))
	return &Case{
		Name: "case_8", Type: DIAG, Circuit: c,
		Paper: PaperRow{Size: 63, Accuracy: 100, Time: 7},
	}
}

func case9() *Case {
	// The case nobody solved: very wide parity-rich cones.
	return &Case{
		Name: "case_9", Type: ECO,
		Circuit: neqCase(109, 173, 16, 30, 42, 0.85),
		Paper:   PaperRow{Failed: true},
		Hard:    true,
	}
}

func case10() *Case {
	return &Case{
		Name: "case_10", Type: NEQ,
		Circuit: neqCase(110, 37, 2, 6, 9, 0.2),
		Paper:   PaperRow{Size: 23, Accuracy: 100, Time: 6},
	}
}

func case11() *Case {
	return &Case{
		Name: "case_11", Type: NEQ, Hidden: true,
		Circuit: neqCase(111, 60, 20, 11, 16, 0.4),
		Paper:   PaperRow{Size: 1928, Accuracy: 99.640, Time: 2657},
	}
}

func case12() *Case {
	// DATA: two 13-bit linear outputs over two 20-bit buses.
	c := circuit.New()
	a := c.AddPIWord("mul", 20)
	b := c.AddPIWord("add", 20)
	const w = 13
	c.AddPOWord("lo", c.AddWords(c.ZeroExtend(a, w), c.AddWords(c.MulConst(b, 2, w), c.ConstWord(3, w))))
	c.AddPOWord("hi", c.AddWords(c.MulConst(a, 5, w), c.AddWords(c.ZeroExtend(b, w), c.ConstWord(9, w))))
	return &Case{
		Name: "case_12", Type: DATA, Hidden: true, Circuit: c,
		Paper: PaperRow{Size: 79, Accuracy: 100, Time: 9},
	}
}

func case13() *Case {
	return &Case{
		Name: "case_13", Type: ECO, Hidden: true,
		Circuit: ecoCase(113, 43, 7, 3, 5, 0.1),
		Paper:   PaperRow{Size: 27, Accuracy: 100, Time: 5},
	}
}

func case14() *Case {
	// Hard hidden NEQ: wide, parity-dominated miters (paper: 28.194%).
	return &Case{
		Name: "case_14", Type: NEQ, Hidden: true,
		Circuit: neqCase(114, 50, 22, 30, 40, 0.9),
		Paper:   PaperRow{Size: 11207, Accuracy: 28.194, Time: 2689},
		Hard:    true,
	}
}

func case15() *Case {
	// DIAG: three predicates over three 24-bit buses + 8 controls.
	c := circuit.New()
	a := c.AddPIWord("vala", 24)
	b := c.AddPIWord("valb", 24)
	d := c.AddPIWord("valc", 24)
	addSingles(c, 8, 0)
	c.AddPO("lt", c.LtWords(a, b))
	c.AddPO("eq", c.EqWords(b, d))
	c.AddPO("thr", c.GeWords(a, c.ConstWord(3_000_000, 24)))
	return &Case{
		Name: "case_15", Type: DIAG, Hidden: true, Circuit: c,
		Paper: PaperRow{Size: 129, Accuracy: 99.999, Time: 19},
	}
}

func case16() *Case {
	// DIAG: four predicates over two 10-bit buses + 6 controls.
	c := circuit.New()
	a := c.AddPIWord("ptr", 10)
	b := c.AddPIWord("lim", 10)
	addSingles(c, 6, 0)
	c.AddPO("eq", c.EqWords(a, b))
	c.AddPO("ne", c.NeWords(a, b))
	c.AddPO("lt", c.LtWords(a, b))
	c.AddPO("wrap", c.EqConst(a, 1023))
	return &Case{
		Name: "case_16", Type: DIAG, Hidden: true, Circuit: c,
		Paper: PaperRow{Size: 22, Accuracy: 100, Time: 2},
	}
}

func case17() *Case {
	return &Case{
		Name: "case_17", Type: ECO, Hidden: true,
		Circuit: ecoCase(117, 76, 33, 8, 14, 0.35),
		Paper:   PaperRow{Size: 2598, Accuracy: 99.989, Time: 1983},
	}
}

func case18() *Case {
	// Hard hidden NEQ: two very wide miters (paper: 59.757%).
	return &Case{
		Name: "case_18", Type: NEQ, Hidden: true,
		Circuit: neqCase(118, 102, 2, 40, 55, 0.9),
		Paper:   PaperRow{Size: 3391, Accuracy: 59.757, Time: 2674},
		Hard:    true,
	}
}

func case19() *Case {
	return &Case{
		Name: "case_19", Type: ECO, Hidden: true,
		Circuit: ecoCase(119, 73, 8, 13, 17, 0.45),
		Paper:   PaperRow{Size: 2991, Accuracy: 99.956, Time: 1764},
	}
}

func case20() *Case {
	// DIAG: two predicates over one 24-bit bus and one 24-bit reference.
	c := circuit.New()
	a := c.AddPIWord("code", 24)
	b := c.AddPIWord("mask", 24)
	addSingles(c, 3, 0)
	c.AddPO("hit", c.EqWords(a, b))
	c.AddPO("low", c.LtWords(a, b))
	return &Case{
		Name: "case_20", Type: DIAG, Hidden: true, Circuit: c,
		Paper: PaperRow{Size: 74, Accuracy: 100, Time: 10},
	}
}
