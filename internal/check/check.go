// Package check is the circuit-IR verification layer: machine-checked
// invariants for the gate-level networks that flow between the learner, the
// optimizer, and the netlist parsers.
//
// The circuit package promises its invariants "by construction", but the
// places that mutate networks wholesale — the learner stitching per-output
// cones, every optimizer rewrite pass, and the BLIF/Verilog/AIGER round
// trips — are exactly where silent corruption would surface as a wrong
// accuracy number rather than a crash. This package re-checks those promises
// after the fact:
//
//   - Verify enforces the hard invariants of a Circuit (topological fanin
//     order, per-GateType arity, no dangling or out-of-range signals,
//     PI/PO registration, Size accounting under the contest convention).
//   - VerifyAIG does the same for an AIG.
//   - Lint (lint.go) reports soft findings: unreachable gates, constant-
//     foldable gates, double negations, structurally duplicate gates.
//   - Equiv / EquivCircuits (equiv.go) cross-check functional behaviour by
//     random word simulation, with exhaustive truth-table comparison on
//     small cones.
//   - Enabled / Assert (debug.go) gate the expensive checks behind the
//     LOGICREG_CHECK environment flag so every optimizer pass can assert
//     its own output in debug runs at zero release-mode cost.
//   - ReadCircuitFile (load.go) parses any supported netlist format and
//     verifies the result before handing it to the caller.
package check

import (
	"fmt"

	"logicregression/internal/aig"
	"logicregression/internal/circuit"
)

// Error is a hard invariant violation, addressed by node id (no file
// positions exist at the IR level).
type Error struct {
	Node int // offending node id, or -1 for circuit-level violations
	Msg  string
}

func (e *Error) Error() string {
	if e.Node < 0 {
		return "check: " + e.Msg
	}
	return fmt.Sprintf("check: node %d: %s", e.Node, e.Msg)
}

func nodeErr(id int, format string, args ...any) error {
	return &Error{Node: id, Msg: fmt.Sprintf(format, args...)}
}

func circErr(format string, args ...any) error {
	return &Error{Node: -1, Msg: fmt.Sprintf(format, args...)}
}

// Verify checks the hard invariants of a circuit and returns the first
// violation found, or nil. The invariants are exactly the ones the rest of
// the pipeline assumes:
//
//   - every fanin id is in range and strictly smaller than the gate id
//     (the DAG is stored in topological order);
//   - arity matches the gate type: 2-input gates use In0 and In1, Not/Buf
//     use In0 only, PIs and constants have none;
//   - there is at most one Const0 and one Const1 node (the builder
//     deduplicates them; parsers and converters must too);
//   - the PI registry is consistent: every node of type PI is registered
//     exactly once, PI signals point at PI nodes, and name counts match;
//   - every PO driver is a valid node;
//   - Size() agrees with an independent recount of reachable 2-input gates
//     (the 2019 ICCAD contest metric: inverters and buffers are free).
func Verify(c *circuit.Circuit) error {
	n := c.NumNodes()

	// PI registry: signal -> PI index.
	piAt := make(map[circuit.Signal]int, c.NumPI())
	if got, want := len(c.PINames()), c.NumPI(); got != want {
		return circErr("%d PI names for %d PIs", got, want)
	}
	for i := 0; i < c.NumPI(); i++ {
		s := c.PISignal(i)
		if s < 0 || s >= n {
			return circErr("PI %d signal %d out of range [0,%d)", i, s, n)
		}
		if c.Node(s).Type != circuit.PI {
			return nodeErr(s, "registered as PI %d but has type %v", i, c.Node(s).Type)
		}
		if prev, dup := piAt[s]; dup {
			return nodeErr(s, "registered as both PI %d and PI %d", prev, i)
		}
		piAt[s] = i
	}

	const0, const1 := -1, -1
	for id := 0; id < n; id++ {
		nd := c.Node(id)
		switch {
		case nd.Type == circuit.PI:
			if _, ok := piAt[id]; !ok {
				return nodeErr(id, "PI node not registered in the PI list")
			}
		case nd.Type == circuit.Const0:
			if const0 >= 0 {
				return nodeErr(id, "duplicate CONST0 node (first at %d)", const0)
			}
			const0 = id
		case nd.Type == circuit.Const1:
			if const1 >= 0 {
				return nodeErr(id, "duplicate CONST1 node (first at %d)", const1)
			}
			const1 = id
		case nd.Type == circuit.Not || nd.Type == circuit.Buf:
			if nd.In0 < 0 || nd.In0 >= id {
				return nodeErr(id, "%v fanin %d breaks topological order (want [0,%d))", nd.Type, nd.In0, id)
			}
		case nd.Type.TwoInput() && nd.Type <= circuit.Xnor:
			if nd.In0 < 0 || nd.In0 >= id {
				return nodeErr(id, "%v fanin0 %d breaks topological order (want [0,%d))", nd.Type, nd.In0, id)
			}
			if nd.In1 < 0 || nd.In1 >= id {
				return nodeErr(id, "%v fanin1 %d breaks topological order (want [0,%d))", nd.Type, nd.In1, id)
			}
		default:
			return nodeErr(id, "unknown gate type %v", nd.Type)
		}
	}

	if got, want := len(c.PONames()), c.NumPO(); got != want {
		return circErr("%d PO names for %d POs", got, want)
	}
	for i := 0; i < c.NumPO(); i++ {
		s := c.POSignal(i)
		if s < 0 || s >= n {
			return circErr("PO %d driver %d out of range [0,%d)", i, s, n)
		}
	}

	// Size accounting: recount reachable 2-input gates independently.
	reach := reachable(c)
	gates := 0
	for id := 0; id < n; id++ {
		if reach[id] && c.Node(id).Type.TwoInput() {
			gates++
		}
	}
	if got := c.Size(); got != gates {
		return circErr("Size() reports %d gates, independent recount finds %d", got, gates)
	}
	return nil
}

// reachable marks the transitive fanin of every PO, independently of the
// circuit package's own implementation (so a bug there cannot hide from the
// Size cross-check above).
func reachable(c *circuit.Circuit) []bool {
	mark := make([]bool, c.NumNodes())
	var stack []circuit.Signal
	push := func(s circuit.Signal) {
		if s >= 0 && s < len(mark) && !mark[s] {
			mark[s] = true
			stack = append(stack, s)
		}
	}
	for i := 0; i < c.NumPO(); i++ {
		push(c.POSignal(i))
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := c.Node(id)
		switch {
		case nd.Type == circuit.PI || nd.Type == circuit.Const0 || nd.Type == circuit.Const1:
		case nd.Type.TwoInput():
			push(nd.In0)
			push(nd.In1)
		default:
			push(nd.In0)
		}
	}
	return mark
}

// VerifyAIG checks the hard invariants of an and-inverter graph: AND fanins
// strictly below their node (topological order) and PO edges in range. Node 0
// is the constant; nodes 1..NumPIs are inputs.
func VerifyAIG(g *aig.AIG) error {
	n := g.NumNodes()
	if g.NumPIs() >= n {
		return circErr("aig: %d PIs but only %d nodes", g.NumPIs(), n)
	}
	if got, want := len(g.PINames()), g.NumPIs(); got != want {
		return circErr("aig: %d PI names for %d PIs", got, want)
	}
	if got, want := len(g.PONames()), g.NumPOs(); got != want {
		return circErr("aig: %d PO names for %d POs", got, want)
	}
	for id := g.NumPIs() + 1; id < n; id++ {
		f0, f1 := g.Fanins(id)
		for _, f := range [2]aig.Lit{f0, f1} {
			if f.Node() < 0 || f.Node() >= id {
				return nodeErr(id, "aig fanin %v breaks topological order (want node in [0,%d))", f, id)
			}
		}
	}
	for i := 0; i < g.NumPOs(); i++ {
		if po := g.PO(i); po.Node() < 0 || po.Node() >= n {
			return circErr("aig: PO %d edge %v out of range (%d nodes)", i, po, n)
		}
	}
	return nil
}
