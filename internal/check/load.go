package check

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"logicregression/internal/aig"
	"logicregression/internal/circuit"
)

// ReadCircuit parses a circuit in the named format ("netlist", "blif",
// "verilog", "aiger") and verifies the hard IR invariants before returning
// it — the ingest gate that keeps a malformed or corrupted file from
// flowing into the pipeline as a silently broken network. AIGER input is
// additionally verified at the AIG level before conversion.
func ReadCircuit(r io.Reader, format string) (*circuit.Circuit, error) {
	var (
		c   *circuit.Circuit
		err error
	)
	switch format {
	case "netlist":
		c, err = circuit.ParseNetlist(r)
	case "blif":
		c, err = circuit.ParseBLIF(r)
	case "verilog":
		c, err = circuit.ParseVerilog(r)
	case "aiger":
		var g *aig.AIG
		g, err = aig.ParseAIGER(r)
		if err == nil {
			if err = VerifyAIG(g); err != nil {
				return nil, fmt.Errorf("%s parse produced invalid IR: %w", format, err)
			}
			c = g.ToCircuit()
		}
	default:
		return nil, fmt.Errorf("check: unknown circuit format %q (know netlist, blif, verilog, aiger)", format)
	}
	if err != nil {
		return nil, err
	}
	if err := Verify(c); err != nil {
		return nil, fmt.Errorf("%s parse produced invalid IR: %w", format, err)
	}
	return c, nil
}

// FormatForPath guesses the circuit format from a file extension: .blif,
// .v/.sv, .aag (ASCII AIGER), anything else is the text netlist format.
func FormatForPath(path string) string {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".blif":
		return "blif"
	case ".v", ".sv":
		return "verilog"
	case ".aag", ".aig":
		return "aiger"
	default:
		return "netlist"
	}
}

// ReadCircuitFile opens path, picks the format from the extension, parses,
// and verifies.
func ReadCircuitFile(path string) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := ReadCircuit(f, FormatForPath(path))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}
