package check

import (
	"strings"
	"testing"

	"logicregression/internal/cases"
	"logicregression/internal/circuit"
)

func TestEquivAcceptsCases(t *testing.T) {
	for _, cs := range cases.All() {
		if err := Equiv(cs.Circuit, 1, 4); err != nil {
			t.Errorf("%s: %v", cs.Name, err)
		}
	}
}

func TestEquivCircuitsExhaustive(t *testing.T) {
	mk := func(xor bool) *circuit.Circuit {
		c := circuit.New()
		a := c.AddPI("a")
		b := c.AddPI("b")
		s := c.AddPI("s")
		var z circuit.Signal
		if xor {
			z = c.Xor(a, b)
		} else {
			z = c.Or(a, b)
		}
		c.AddPO("z", c.And(z, s))
		return c
	}
	if err := EquivCircuits(mk(true), mk(true), 1, 0); err != nil {
		t.Fatalf("identical circuits reported non-equivalent: %v", err)
	}
	err := EquivCircuits(mk(true), mk(false), 1, 0)
	if err == nil {
		t.Fatal("XOR vs OR not caught by exhaustive check")
	}
	if !strings.Contains(err.Error(), "PO 0") {
		t.Fatalf("error %q does not name the differing PO", err)
	}
}

func TestEquivCircuitsRandomWide(t *testing.T) {
	// 40 inputs forces the random-word path.
	mk := func(flip bool) *circuit.Circuit {
		c := circuit.New()
		sigs := make([]circuit.Signal, 40)
		for i := range sigs {
			sigs[i] = c.AddPI("x" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		}
		acc := sigs[0]
		for _, s := range sigs[1:] {
			acc = c.Xor(acc, s)
		}
		if flip {
			acc = c.NotGate(acc)
		}
		c.AddPO("parity", acc)
		return c
	}
	if err := EquivCircuits(mk(false), mk(false), 7, 8); err != nil {
		t.Fatalf("identical wide circuits reported non-equivalent: %v", err)
	}
	if err := EquivCircuits(mk(false), mk(true), 7, 8); err == nil {
		t.Fatal("complemented parity not caught by random simulation")
	}
}

func TestEquivCircuitsArityMismatch(t *testing.T) {
	a := circuit.New()
	a.AddPO("z", a.AddPI("a"))
	b := circuit.New()
	b.AddPI("a")
	b.AddPO("z", b.AddPI("b"))
	if err := EquivCircuits(a, b, 1, 0); err == nil {
		t.Fatal("arity mismatch not reported")
	}
}
