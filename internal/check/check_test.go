package check

import (
	"strings"
	"testing"

	"logicregression/internal/aig"
	"logicregression/internal/cases"
	"logicregression/internal/circuit"
)

// allGates builds a circuit exercising every gate type.
func allGates(t *testing.T) *circuit.Circuit {
	t.Helper()
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	s := c.AddPI("s")
	x := c.Xor(c.And(a, b), c.Or(a, b))
	y := c.Xnor(c.Nand(a, s), c.Nor(b, s))
	m := c.Mux(s, x, y)
	c.AddPO("m", m)
	c.AddPO("n", c.NotGate(m))
	c.AddPO("buf", c.BufGate(x))
	c.AddPO("k", c.And(c.Const(true), c.Const(false)))
	return c
}

func TestErrorFormat(t *testing.T) {
	// Node 0 is a valid node id and must be named in the message; only
	// negative ids mean "circuit-level violation".
	if got := (&Error{Node: 0, Msg: "boom"}).Error(); !strings.Contains(got, "node 0") {
		t.Errorf("Error{Node: 0} = %q, want it to mention node 0", got)
	}
	if got := (&Error{Node: -1, Msg: "boom"}).Error(); strings.Contains(got, "node") {
		t.Errorf("Error{Node: -1} = %q, want no node id", got)
	}
}

func TestVerifyAcceptsBuilderCircuits(t *testing.T) {
	if err := Verify(allGates(t)); err != nil {
		t.Fatalf("Verify rejected a builder-made circuit: %v", err)
	}
	for _, cs := range cases.All() {
		if err := Verify(cs.Circuit); err != nil {
			t.Errorf("%s: Verify rejected a built-in case: %v", cs.Name, err)
		}
	}
}

func TestVerifyViolations(t *testing.T) {
	pi := circuit.Node{Type: circuit.PI}
	tests := []struct {
		name    string
		c       *circuit.Circuit
		wantSub string
	}{
		{
			name: "fanin breaks topological order",
			c: circuit.FromNodes(
				[]circuit.Node{pi, {Type: circuit.And, In0: 0, In1: 2}, pi},
				[]string{"a", "b"}, []circuit.Signal{0, 2},
				[]string{"z"}, []circuit.Signal{1}),
			wantSub: "topological order",
		},
		{
			name: "fanin out of range",
			c: circuit.FromNodes(
				[]circuit.Node{pi, {Type: circuit.Not, In0: 9}},
				[]string{"a"}, []circuit.Signal{0},
				[]string{"z"}, []circuit.Signal{1}),
			wantSub: "topological order",
		},
		{
			name: "unknown gate type",
			c: circuit.FromNodes(
				[]circuit.Node{pi, {Type: circuit.GateType(99), In0: 0, In1: 0}},
				[]string{"a"}, []circuit.Signal{0},
				[]string{"z"}, []circuit.Signal{1}),
			wantSub: "unknown gate type",
		},
		{
			name: "duplicate constant",
			c: circuit.FromNodes(
				[]circuit.Node{{Type: circuit.Const1}, {Type: circuit.Const1}},
				nil, nil,
				[]string{"z"}, []circuit.Signal{1}),
			wantSub: "duplicate CONST1",
		},
		{
			// The first CONST0 sitting at node id 0 matters: the duplicate
			// detector must treat id 0 as "already seen", not as "unset".
			name: "duplicate CONST0 at node 0",
			c: circuit.FromNodes(
				[]circuit.Node{{Type: circuit.Const0}, {Type: circuit.Const0}},
				nil, nil,
				[]string{"z"}, []circuit.Signal{1}),
			wantSub: "duplicate CONST0",
		},
		{
			name: "unregistered PI node",
			c: circuit.FromNodes(
				[]circuit.Node{pi, pi},
				[]string{"a"}, []circuit.Signal{0},
				[]string{"z"}, []circuit.Signal{1}),
			wantSub: "not registered",
		},
		{
			name: "PI signal points at a gate",
			c: circuit.FromNodes(
				[]circuit.Node{pi, {Type: circuit.Not, In0: 0}},
				[]string{"a", "b"}, []circuit.Signal{0, 1},
				[]string{"z"}, []circuit.Signal{1}),
			wantSub: "has type NOT",
		},
		{
			name: "PI registered twice",
			c: circuit.FromNodes(
				[]circuit.Node{pi},
				[]string{"a", "b"}, []circuit.Signal{0, 0},
				[]string{"z"}, []circuit.Signal{0}),
			wantSub: "registered as both",
		},
		{
			name: "PO driver out of range",
			c: circuit.FromNodes(
				[]circuit.Node{pi},
				[]string{"a"}, []circuit.Signal{0},
				[]string{"z"}, []circuit.Signal{7}),
			wantSub: "out of range",
		},
		{
			name: "PO name count mismatch",
			c: circuit.FromNodes(
				[]circuit.Node{pi},
				[]string{"a"}, []circuit.Signal{0},
				[]string{"z", "extra"}, []circuit.Signal{0}),
			wantSub: "PO names",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := Verify(tc.c)
			if err == nil {
				t.Fatal("Verify accepted an invalid circuit")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Verify error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestVerifyAIG(t *testing.T) {
	g := aig.New([]string{"a", "b"})
	g.AddPO("z", g.And(g.PI(0), g.PI(1)))
	if err := VerifyAIG(g); err != nil {
		t.Fatalf("VerifyAIG rejected a valid graph: %v", err)
	}

	// Truncate below a registered PO leaves a dangling output edge.
	h := aig.New([]string{"a", "b"})
	mark := h.Mark()
	h.AddPO("z", h.And(h.PI(0), h.PI(1)))
	h.Truncate(mark)
	if err := VerifyAIG(h); err == nil {
		t.Fatal("VerifyAIG accepted a dangling PO edge")
	}
}

func TestAssertGating(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)

	good := allGates(t)
	bad := circuit.New()
	bad.AddPO("m", bad.AddPI("a")) // wrong arity vs good

	// Disabled: no panic even on a mismatch.
	Assert("noop", good, bad)

	SetEnabled(true)
	Assert("same", good, good) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("Assert did not panic on a non-equivalent circuit with checks enabled")
		}
	}()
	Assert("mismatch", good, bad)
}
