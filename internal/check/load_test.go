package check

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logicregression/internal/aig"
	"logicregression/internal/circuit"
)

func TestReadCircuitAllFormats(t *testing.T) {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.AddPO("z", c.Xor(c.And(a, b), c.Or(a, b)))

	dir := t.TempDir()
	write := func(name string, emit func(*bytes.Buffer) error) string {
		var buf bytes.Buffer
		if err := emit(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	paths := []string{
		write("c.net", func(b *bytes.Buffer) error { return circuit.WriteNetlist(b, c) }),
		write("c.blif", func(b *bytes.Buffer) error { return circuit.WriteBLIF(b, c, "t") }),
		write("c.v", func(b *bytes.Buffer) error { return circuit.WriteVerilog(b, c, "t") }),
		write("c.aag", func(b *bytes.Buffer) error { return aig.WriteAIGER(b, aig.FromCircuit(c)) }),
	}
	for _, p := range paths {
		got, err := ReadCircuitFile(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if got.NumPI() != 2 || got.NumPO() != 1 {
			t.Errorf("%s: arity %d/%d after round trip", p, got.NumPI(), got.NumPO())
		}
		if err := EquivCircuits(c, got, 1, 0); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestReadCircuitRejectsGarbage(t *testing.T) {
	if _, err := ReadCircuit(strings.NewReader("not a netlist"), "netlist"); err == nil {
		t.Fatal("garbage netlist accepted")
	}
	if _, err := ReadCircuit(strings.NewReader(""), "bogus-format"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestFormatForPath(t *testing.T) {
	for path, want := range map[string]string{
		"x.blif": "blif", "x.v": "verilog", "x.SV": "verilog",
		"x.aag": "aiger", "x.aig": "aiger", "x.net": "netlist", "x": "netlist",
	} {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %q, want %q", path, got, want)
		}
	}
}
