package check

import (
	"fmt"

	"logicregression/internal/circuit"
)

// A Finding is a soft diagnostic from Lint: the circuit is valid but carries
// structure that a clean synthesis flow would not emit. Findings are
// addressed by node id; there are no file positions at the IR level.
type Finding struct {
	// Code is a stable machine-readable tag: "dead-gate", "const-fanin",
	// "same-fanin", "compl-fanin", "double-not", "dup-gate", "buf-chain".
	Code string
	// Node is the offending node id.
	Node int
	// Msg is the human-readable explanation.
	Msg string
}

func (f Finding) String() string {
	return fmt.Sprintf("node %d: %s: %s", f.Node, f.Code, f.Msg)
}

// Lint reports soft findings on a circuit:
//
//   - dead-gate: a gate outside the transitive fanin of every PO (dangling
//     logic does not exist in the contest netlist format and inflates the
//     node arrays for nothing);
//   - const-fanin: a gate fed by a constant node, which constant folding
//     would eliminate;
//   - same-fanin / compl-fanin: a 2-input gate whose fanins are identical
//     or structural complements (AND(x,x)=x, AND(x,~x)=0, ...);
//   - double-not: NOT of NOT, free but noisy;
//   - buf-chain: BUF of BUF or BUF of NOT, same;
//   - dup-gate: a reachable 2-input gate structurally identical (up to
//     commutation) to an earlier reachable gate, which structural hashing
//     would merge.
//
// Only reachable nodes are checked for the local patterns; unreachable ones
// get the single dead-gate finding instead of a cascade.
func Lint(c *circuit.Circuit) []Finding {
	var out []Finding
	reach := reachable(c)
	type key struct {
		t      circuit.GateType
		lo, hi circuit.Signal
	}
	seen := make(map[key]int)
	isConst := func(s circuit.Signal) bool {
		t := c.Node(s).Type
		return t == circuit.Const0 || t == circuit.Const1
	}
	for id := 0; id < c.NumNodes(); id++ {
		nd := c.Node(id)
		if nd.Type == circuit.PI || nd.Type == circuit.Const0 || nd.Type == circuit.Const1 {
			continue
		}
		if !reach[id] {
			out = append(out, Finding{Code: "dead-gate", Node: id,
				Msg: fmt.Sprintf("%v gate feeds no primary output", nd.Type)})
			continue
		}
		switch {
		case nd.Type == circuit.Not:
			if c.Node(nd.In0).Type == circuit.Not {
				out = append(out, Finding{Code: "double-not", Node: id,
					Msg: fmt.Sprintf("NOT of NOT node %d", nd.In0)})
			}
			if isConst(nd.In0) {
				out = append(out, Finding{Code: "const-fanin", Node: id,
					Msg: fmt.Sprintf("NOT of constant node %d", nd.In0)})
			}
		case nd.Type == circuit.Buf:
			if t := c.Node(nd.In0).Type; t == circuit.Buf || t == circuit.Not {
				out = append(out, Finding{Code: "buf-chain", Node: id,
					Msg: fmt.Sprintf("BUF of %v node %d", t, nd.In0)})
			}
			if isConst(nd.In0) {
				out = append(out, Finding{Code: "const-fanin", Node: id,
					Msg: fmt.Sprintf("BUF of constant node %d", nd.In0)})
			}
		default: // 2-input gates
			if isConst(nd.In0) || isConst(nd.In1) {
				out = append(out, Finding{Code: "const-fanin", Node: id,
					Msg: fmt.Sprintf("%v gate has a constant fanin", nd.Type)})
			}
			switch {
			case nd.In0 == nd.In1:
				out = append(out, Finding{Code: "same-fanin", Node: id,
					Msg: fmt.Sprintf("%v gate with identical fanins %d", nd.Type, nd.In0)})
			case complements(c, nd.In0, nd.In1):
				out = append(out, Finding{Code: "compl-fanin", Node: id,
					Msg: fmt.Sprintf("%v gate with complementary fanins %d, %d", nd.Type, nd.In0, nd.In1)})
			}
			lo, hi := nd.In0, nd.In1
			if lo > hi {
				lo, hi = hi, lo
			}
			k := key{t: nd.Type, lo: lo, hi: hi}
			if first, dup := seen[k]; dup {
				out = append(out, Finding{Code: "dup-gate", Node: id,
					Msg: fmt.Sprintf("structurally identical to %v node %d", nd.Type, first)})
			} else {
				seen[k] = id
			}
		}
	}
	return out
}

// complements reports whether one of a, b is NOT of the other.
func complements(c *circuit.Circuit, a, b circuit.Signal) bool {
	if n := c.Node(b); n.Type == circuit.Not && n.In0 == a {
		return true
	}
	if n := c.Node(a); n.Type == circuit.Not && n.In0 == b {
		return true
	}
	return false
}
