package check

import (
	"fmt"
	"os"
	"sync/atomic"

	"logicregression/internal/aig"
	"logicregression/internal/circuit"
)

// The debug gate: when enabled, every optimizer pass and the learner assert
// Verify + Equiv on their outputs; when disabled those call sites cost one
// atomic load. Enable with LOGICREG_CHECK=1 (or SetEnabled from tests).

var debugEnabled atomic.Bool

func init() {
	switch os.Getenv("LOGICREG_CHECK") {
	case "1", "true", "on":
		debugEnabled.Store(true)
	}
}

// Enabled reports whether debug-mode IR assertions are on.
func Enabled() bool { return debugEnabled.Load() }

// SetEnabled turns debug-mode IR assertions on or off, overriding the
// LOGICREG_CHECK environment variable. It returns the previous value so
// tests can restore it.
func SetEnabled(v bool) bool { return debugEnabled.Swap(v) }

// Assert panics unless got passes Verify and is simulation-equivalent to
// ref. It is a no-op when debug checks are disabled; call it after any
// transformation that must preserve function, naming the stage for the
// panic message.
func Assert(stage string, ref, got *circuit.Circuit) {
	if !Enabled() {
		return
	}
	if err := Verify(got); err != nil {
		panic(fmt.Sprintf("check: after %s: %v", stage, err))
	}
	if err := EquivCircuits(ref, got, 1, 0); err != nil {
		panic(fmt.Sprintf("check: after %s: %v", stage, err))
	}
}

// AssertAIG is Assert for stages that produce an AIG: it verifies the graph
// and checks its circuit projection against ref. No-op when disabled.
func AssertAIG(stage string, ref *circuit.Circuit, g *aig.AIG) {
	if !Enabled() {
		return
	}
	if err := VerifyAIG(g); err != nil {
		panic(fmt.Sprintf("check: after %s: %v", stage, err))
	}
	Assert(stage, ref, g.ToCircuit())
}
