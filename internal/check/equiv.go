package check

import (
	"fmt"
	"math/rand"

	"logicregression/internal/aig"
	"logicregression/internal/circuit"
	"logicregression/internal/tt"
)

// DefaultSimWords is the number of 64-pattern random words Equiv and
// EquivCircuits simulate when no override is given.
const DefaultSimWords = 16

// exhaustivePIs bounds exhaustive cross-simulation: at or below this many
// inputs the full 2^n input space is simulated instead of random words
// (2^14 patterns = 256 word blocks).
const exhaustivePIs = 14

// Equiv cross-checks a circuit against two independent evaluators: the
// strashed AIG of the same network (word simulation through a different
// data structure and gate decomposition) and, for outputs whose structural
// support has at most 6 inputs, the exhaustive truth table through the tt
// package. A mismatch means one of the representations — or a conversion
// between them — is wrong; seed drives the random patterns.
func Equiv(c *circuit.Circuit, seed int64, words int) error {
	if words <= 0 {
		words = DefaultSimWords
	}
	g := aig.FromCircuit(c)
	if err := VerifyAIG(g); err != nil {
		return err
	}
	nPI, nPO := c.NumPI(), c.NumPO()
	if g.NumPIs() != nPI || g.NumPOs() != nPO {
		return circErr("equiv: AIG arity %d/%d differs from circuit %d/%d",
			g.NumPIs(), g.NumPOs(), nPI, nPO)
	}

	rng := rand.New(rand.NewSource(seed))
	in := make([]uint64, nPI)
	for w := 0; w < words; w++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		cv := c.EvalWords(in)
		gv := g.EvalPOs(in)
		for po := 0; po < nPO; po++ {
			if cv[po] != gv[po] {
				return circErr("equiv: PO %d (%s) disagrees between circuit and AIG on random word %d (pattern %d)",
					po, c.PONames()[po], w, firstDiffBit(cv[po], gv[po], 64))
			}
		}
	}

	// Truth-table cross-check on small cones: the 64-bit tt.Table holds an
	// exhaustive table over up to 6 variables, giving a third independent
	// semantics for the cone.
	for po := 0; po < nPO; po++ {
		sup := c.StructuralSupport(po)
		if len(sup) > 6 {
			continue
		}
		for i := range in {
			in[i] = 0
		}
		for j, pi := range sup {
			in[pi] = uint64(tt.Var(j))
		}
		mask := uint64(tt.Mask(len(sup)))
		cw := c.EvalWords(in)[po] & mask
		gw := g.EvalPOs(in)[po] & mask
		table := tt.Table(cw)
		if cw != gw {
			return circErr("equiv: PO %d (%s) truth table disagrees between circuit (%s) and AIG (%s)",
				po, c.PONames()[po], table, tt.Table(gw))
		}
		// Re-derive a handful of minterms through the scalar Eval path and
		// the tt accessor: three implementations must tell the same story.
		assign := make([]bool, nPI)
		for m := 0; m < 1<<len(sup); m++ {
			for i := range assign {
				assign[i] = false
			}
			for j, pi := range sup {
				assign[pi] = m>>j&1 == 1
			}
			if got, want := c.Eval(assign)[po], table.Eval(m); got != want {
				return circErr("equiv: PO %d (%s) minterm %d: scalar Eval says %v, truth table says %v",
					po, c.PONames()[po], m, got, want)
			}
		}
	}
	return nil
}

// EquivCircuits checks functional agreement of two circuits with identical
// PI/PO arity by word simulation on shared input patterns: exhaustively when
// the input space fits (≤ 2^14 patterns), otherwise on random words seeded
// by seed. It reports the first mismatching output with a concrete
// counterexample assignment. This is a randomized signature check, not a
// proof — opt.ProveEquivalent is the SAT-backed certificate; this one is
// cheap enough to run after every rewrite pass.
func EquivCircuits(ref, got *circuit.Circuit, seed int64, words int) error {
	if words <= 0 {
		words = DefaultSimWords
	}
	nPI, nPO := ref.NumPI(), ref.NumPO()
	if got.NumPI() != nPI || got.NumPO() != nPO {
		return circErr("equiv: arity changed: %d/%d -> %d/%d", nPI, nPO, got.NumPI(), got.NumPO())
	}
	in := make([]uint64, nPI)

	compare := func(tag string, patterns int) error {
		a := ref.EvalWords(in)
		b := got.EvalWords(in)
		for po := 0; po < nPO; po++ {
			if a[po] != b[po] {
				k := firstDiffBit(a[po], b[po], patterns)
				if k < 0 {
					continue // difference only in padding bits
				}
				return circErr("equiv: PO %d (%s) differs on %s, e.g. input %s",
					po, ref.PONames()[po], tag, assignString(in, k))
			}
		}
		return nil
	}

	if nPI <= exhaustivePIs {
		total := 1 << nPI
		lowVars := min(nPI, 6)
		for base := 0; base < total; base += 64 {
			for i := 0; i < lowVars; i++ {
				in[i] = uint64(tt.Var(i))
			}
			for i := 6; i < nPI; i++ {
				if base>>i&1 == 1 {
					in[i] = ^uint64(0)
				} else {
					in[i] = 0
				}
			}
			if err := compare(fmt.Sprintf("exhaustive block %d", base/64), min(total-base, 64)); err != nil {
				return err
			}
		}
		return nil
	}

	rng := rand.New(rand.NewSource(seed))
	for w := 0; w < words; w++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		if err := compare(fmt.Sprintf("random word %d", w), 64); err != nil {
			return err
		}
	}
	return nil
}

// firstDiffBit returns the lowest bit index below limit where a and b
// differ, or -1.
func firstDiffBit(a, b uint64, limit int) int {
	d := a ^ b
	for k := 0; k < limit && k < 64; k++ {
		if d>>uint(k)&1 == 1 {
			return k
		}
	}
	return -1
}

// assignString renders pattern k of a word-parallel input block as a 0/1
// string in PI order.
func assignString(in []uint64, k int) string {
	buf := make([]byte, len(in))
	for i, w := range in {
		if w>>uint(k)&1 == 1 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
