package check

import (
	"testing"

	"logicregression/internal/circuit"
)

func codes(fs []Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Code]++
	}
	return m
}

func TestLintFindsEachPattern(t *testing.T) {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")

	dead := c.And(a, b) // never reaches a PO
	_ = dead

	constIn := c.Or(a, c.Const(true))
	same := c.And(a, a)
	na := c.NotGate(a)
	compl := c.And(a, na)
	dbl := c.NotGate(c.NotGate(b))
	dup1 := c.Xor(a, b)
	dup2 := c.Xor(b, a) // commuted duplicate
	bufChain := c.BufGate(c.BufGate(a))

	z := c.Or(c.Or(constIn, same), c.Or(compl, dbl))
	z = c.Or(z, c.Or(dup1, dup2))
	z = c.Or(z, bufChain)
	c.AddPO("z", z)

	if err := Verify(c); err != nil {
		t.Fatalf("lint fixture must still be valid: %v", err)
	}
	got := codes(Lint(c))
	for _, want := range []string{"dead-gate", "const-fanin", "same-fanin", "compl-fanin", "double-not", "dup-gate", "buf-chain"} {
		if got[want] == 0 {
			t.Errorf("Lint missed %q (got %v)", want, got)
		}
	}
}

func TestLintCleanCircuit(t *testing.T) {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	s := c.AddPI("s")
	c.AddPO("z", c.Xor(c.And(a, b), c.Nor(b, s)))
	if fs := Lint(c); len(fs) != 0 {
		t.Fatalf("Lint reported findings on a clean circuit: %v", fs)
	}
}
