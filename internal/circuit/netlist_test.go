package circuit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestNetlistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	orig := randomCircuit(rng, 6, 25, 3)
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseNetlist(&buf)
	if err != nil {
		t.Fatalf("ParseNetlist: %v\nnetlist:\n%s", err, buf.String())
	}
	if parsed.NumPI() != orig.NumPI() || parsed.NumPO() != orig.NumPO() {
		t.Fatalf("IO mismatch: %d/%d vs %d/%d",
			parsed.NumPI(), parsed.NumPO(), orig.NumPI(), orig.NumPO())
	}
	for trial := 0; trial < 200; trial++ {
		assign := make([]bool, orig.NumPI())
		for i := range assign {
			assign[i] = rng.Intn(2) == 1
		}
		a := orig.Eval(assign)
		b := parsed.Eval(assign)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("trial %d output %d differs after round trip", trial, j)
			}
		}
	}
}

// TestNetlistWriteIsFixedPoint pins the byte-stability contract the
// persistent circuit store depends on: re-serializing a parsed netlist
// reproduces the exact bytes, even when the original circuit's internal
// node numbering (e.g. a constant allocated before the PIs) differs from
// the parser's file-order numbering.
func TestNetlistWriteIsFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		orig := randomCircuit(rng, 5, 30, 2)
		var first bytes.Buffer
		if err := WriteNetlist(&first, orig); err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseNetlist(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: ParseNetlist: %v", trial, err)
		}
		var second bytes.Buffer
		if err := WriteNetlist(&second, parsed); err != nil {
			t.Fatal(err)
		}
		if first.String() != second.String() {
			t.Fatalf("trial %d: write(parse(write(c))) != write(c):\n%s\nvs:\n%s",
				trial, first.String(), second.String())
		}
	}

	// The motivating case: a constant node allocated before the PIs gets a
	// different internal id after parsing, but the same canonical name.
	c := New()
	k := c.Const(false)
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.AddPO("z", c.Or(c.And(a, b), k))
	var first bytes.Buffer
	if err := WriteNetlist(&first, c); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseNetlist(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteNetlist(&second, parsed); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("const-before-PI circuit not byte-stable:\n%s\nvs:\n%s",
			first.String(), second.String())
	}
}

func TestNetlistRoundTripWithConstants(t *testing.T) {
	c := New()
	a := c.AddPI("a")
	c.AddPO("z", c.Or(a, c.Const(true)))
	c.AddPO("w", c.And(a, c.Const(false)))
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, c); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := parsed.Eval([]bool{false})
	if out[0] != true || out[1] != false {
		t.Fatalf("constants after round trip = %v", out)
	}
}

func TestParseNetlistErrors(t *testing.T) {
	cases := map[string]string{
		"unknown gate":     ".inputs a\n.outputs z\nn1 = FOO a\n.po z n1\n",
		"unknown fanin":    ".inputs a\n.outputs z\nn1 = NOT bogus\n.po z n1\n",
		"bad arity":        ".inputs a\n.outputs z\nn1 = AND a\n.po z n1\n",
		"duplicate node":   ".inputs a\n.outputs z\na = NOT a\n.po z a\n",
		"missing outputs":  ".inputs a\nn1 = NOT a\n.po z n1\n",
		"po not declared":  ".inputs a\n.outputs z\nn1 = NOT a\n.po other n1\n",
		"po unknown node":  ".inputs a\n.outputs z\n.po z nowhere\n",
		"const with fanin": ".inputs a\n.outputs z\nn1 = CONST1 a\n.po z n1\n",
		"garbage line":     ".inputs a\n.outputs z\nwhat even is this\n",
	}
	for name, text := range cases {
		if _, err := ParseNetlist(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestParseNetlistSkipsCommentsAndBlanks(t *testing.T) {
	text := "# header\n\n.inputs a b\n.outputs z\n# gate section\nn1 = AND a b\n.po z n1\n"
	c, err := ParseNetlist(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval([]bool{true, true})[0]; !got {
		t.Fatal("AND of (1,1) = false")
	}
}

func TestWriteDOT(t *testing.T) {
	c := New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.AddPO("z", c.And(a, b))
	var buf bytes.Buffer
	if err := WriteDOT(&buf, c); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph", "AND", "doubleoctagon", "\"a\""} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}
}
