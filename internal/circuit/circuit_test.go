package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicGatesTruthTables(t *testing.T) {
	c := New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.AddPO("and", c.And(a, b))
	c.AddPO("or", c.Or(a, b))
	c.AddPO("xor", c.Xor(a, b))
	c.AddPO("nand", c.Nand(a, b))
	c.AddPO("nor", c.Nor(a, b))
	c.AddPO("xnor", c.Xnor(a, b))
	c.AddPO("nota", c.NotGate(a))
	c.AddPO("bufa", c.BufGate(a))

	for _, tc := range []struct {
		a, b bool
		want []bool // and or xor nand nor xnor nota bufa
	}{
		{false, false, []bool{false, false, false, true, true, true, true, false}},
		{false, true, []bool{false, true, true, true, false, false, true, false}},
		{true, false, []bool{false, true, true, true, false, false, false, true}},
		{true, true, []bool{true, true, false, false, false, true, false, true}},
	} {
		got := c.Eval([]bool{tc.a, tc.b})
		for i, w := range tc.want {
			if got[i] != w {
				t.Errorf("inputs (%v,%v) output %s = %v, want %v",
					tc.a, tc.b, c.PONames()[i], got[i], w)
			}
		}
	}
}

func TestConstNodesSharedAndCorrect(t *testing.T) {
	c := New()
	c.AddPI("a")
	z0 := c.Const(false)
	z1 := c.Const(true)
	if c.Const(false) != z0 || c.Const(true) != z1 {
		t.Fatal("constants not shared")
	}
	c.AddPO("zero", z0)
	c.AddPO("one", z1)
	out := c.Eval([]bool{true})
	if out[0] != false || out[1] != true {
		t.Fatalf("constants evaluate to %v", out)
	}
}

func TestEvalWordsMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCircuit(rng, 8, 30, 4)
	inWords := make([]uint64, c.NumPI())
	for i := range inWords {
		inWords[i] = rng.Uint64()
	}
	outWords := c.EvalWords(inWords)
	for k := 0; k < 64; k++ {
		assign := make([]bool, c.NumPI())
		for i := range assign {
			assign[i] = inWords[i]>>uint(k)&1 == 1
		}
		want := c.Eval(assign)
		for j := range want {
			got := outWords[j]>>uint(k)&1 == 1
			if got != want[j] {
				t.Fatalf("pattern %d output %d: parallel %v, scalar %v", k, j, got, want[j])
			}
		}
	}
}

// randomCircuit builds a random well-formed circuit for differential tests.
func randomCircuit(rng *rand.Rand, nPI, nGates, nPO int) *Circuit {
	c := New()
	sigs := make([]Signal, 0, nPI+nGates)
	for i := 0; i < nPI; i++ {
		sigs = append(sigs, c.AddPI("x"+itoa(i)))
	}
	for g := 0; g < nGates; g++ {
		a := sigs[rng.Intn(len(sigs))]
		b := sigs[rng.Intn(len(sigs))]
		var s Signal
		switch rng.Intn(7) {
		case 0:
			s = c.And(a, b)
		case 1:
			s = c.Or(a, b)
		case 2:
			s = c.Xor(a, b)
		case 3:
			s = c.Nand(a, b)
		case 4:
			s = c.Nor(a, b)
		case 5:
			s = c.Xnor(a, b)
		default:
			s = c.NotGate(a)
		}
		sigs = append(sigs, s)
	}
	for o := 0; o < nPO; o++ {
		c.AddPO("y"+itoa(o), sigs[len(sigs)-1-o])
	}
	return c
}

func TestSizeCountsOnlyReachableTwoInputGates(t *testing.T) {
	c := New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	g := c.And(a, b)
	c.Or(a, b) // dangling: not counted
	n := c.NotGate(g)
	c.AddPO("z", n)
	if got := c.Size(); got != 1 {
		t.Fatalf("Size = %d, want 1", got)
	}
	if got := c.SizeWithInverters(); got != 2 {
		t.Fatalf("SizeWithInverters = %d, want 2", got)
	}
}

func TestStats(t *testing.T) {
	c := New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	g1 := c.And(a, b)
	g2 := c.Or(g1, a)
	c.AddPO("z", c.NotGate(g2))
	st := c.Stats()
	if st.PIs != 2 || st.POs != 1 || st.Gates != 2 || st.Inverters != 1 || st.Depth != 2 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestMux(t *testing.T) {
	c := New()
	s := c.AddPI("s")
	x := c.AddPI("x")
	y := c.AddPI("y")
	c.AddPO("z", c.Mux(s, x, y))
	for _, tc := range []struct{ s, x, y, want bool }{
		{false, true, false, false},
		{false, false, true, true},
		{true, true, false, true},
		{true, false, true, false},
	} {
		if got := c.Eval([]bool{tc.s, tc.x, tc.y})[0]; got != tc.want {
			t.Errorf("mux(%v,%v,%v) = %v, want %v", tc.s, tc.x, tc.y, got, tc.want)
		}
	}
}

func TestStructuralSupport(t *testing.T) {
	c := New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.AddPI("c") // unused
	d := c.AddPI("d")
	c.AddPO("z", c.And(a, c.Xor(b, d)))
	sup := c.StructuralSupport(0)
	want := []int{0, 1, 3}
	if len(sup) != len(want) {
		t.Fatalf("support = %v, want %v", sup, want)
	}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("support = %v, want %v", sup, want)
		}
	}
}

func TestIndexMaps(t *testing.T) {
	c := New()
	c.AddPI("alpha")
	beta := c.AddPI("beta")
	c.AddPO("out", beta)
	if c.PIIndexByName()["beta"] != 1 {
		t.Fatal("PIIndexByName wrong")
	}
	if c.POIndexByName()["out"] != 0 {
		t.Fatal("POIndexByName wrong")
	}
}

func TestEvalPanicsOnWrongArity(t *testing.T) {
	c := New()
	c.AddPI("a")
	c.AddPO("z", c.PISignal(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Eval([]bool{true, false})
}

// Property: random circuits evaluated in parallel agree with scalar eval.
func TestQuickParallelScalarAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 3+rng.Intn(6), 5+rng.Intn(40), 1+rng.Intn(3))
		words := make([]uint64, c.NumPI())
		for i := range words {
			words[i] = rng.Uint64()
		}
		outW := c.EvalWords(words)
		for _, k := range []int{0, 17, 63} {
			assign := make([]bool, c.NumPI())
			for i := range assign {
				assign[i] = words[i]>>uint(k)&1 == 1
			}
			out := c.Eval(assign)
			for j := range out {
				if out[j] != (outW[j]>>uint(k)&1 == 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
