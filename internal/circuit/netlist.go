package circuit

// Text netlist format, a minimal structural description used by the cmd
// tools to persist circuits:
//
//	# comment
//	.inputs a b sel[0] sel[1]
//	.outputs z
//	n4 = AND a b
//	n5 = NOT n4
//	.po z n5
//
// Node names are arbitrary identifiers without whitespace. Every gate line
// reads "name = OP fanin0 [fanin1]"; OP is one of the GateType names. CONST0
// and CONST1 take no fanins. Each ".po" line binds an output name to a node.

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteNetlist serializes the circuit in the text netlist format.
//
// Gate names are canonical: sequential in emission order starting at the
// PI count, which is exactly the node numbering ParseNetlist reconstructs.
// That makes serialization a fixed point — write(parse(write(c))) ==
// write(c) — so circuits that pass through a netlist (the persistent
// circuit store, the wire protocol) re-serialize byte-identically, which
// the fixed-seed reproducibility contract depends on.
func WriteNetlist(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	names := make([]string, len(c.nodes))
	for i, pi := range c.pis {
		names[pi] = c.piNames[i]
	}
	fmt.Fprintf(bw, ".inputs %s\n", strings.Join(c.piNames, " "))
	fmt.Fprintf(bw, ".outputs %s\n", strings.Join(c.poNames, " "))
	next := len(c.pis)
	for id, n := range c.nodes {
		if n.Type == PI {
			continue
		}
		names[id] = fmt.Sprintf("n%d", next)
		next++
		switch {
		case n.Type == Const0 || n.Type == Const1:
			fmt.Fprintf(bw, "%s = %s\n", names[id], n.Type)
		case n.Type.TwoInput():
			fmt.Fprintf(bw, "%s = %s %s %s\n", names[id], n.Type, names[n.In0], names[n.In1])
		default:
			fmt.Fprintf(bw, "%s = %s %s\n", names[id], n.Type, names[n.In0])
		}
	}
	for i, s := range c.pos {
		fmt.Fprintf(bw, ".po %s %s\n", c.poNames[i], names[s])
	}
	return bw.Flush()
}

// ParseNetlist reads a circuit in the text netlist format.
func ParseNetlist(r io.Reader) (*Circuit, error) {
	c := New()
	byName := make(map[string]Signal)
	var poNames []string
	sawOutputs := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	typeByName := map[string]GateType{}
	for t := Const0; t <= Xnor; t++ {
		typeByName[t.String()] = t
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == ".inputs":
			for _, name := range fields[1:] {
				if _, dup := byName[name]; dup {
					return nil, fmt.Errorf("netlist line %d: duplicate input %q", lineNo, name)
				}
				byName[name] = c.AddPI(name)
			}
		case fields[0] == ".outputs":
			poNames = append(poNames, fields[1:]...)
			sawOutputs = true
		case fields[0] == ".po":
			if len(fields) != 3 {
				return nil, fmt.Errorf("netlist line %d: .po wants 2 operands", lineNo)
			}
			s, ok := byName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("netlist line %d: unknown node %q", lineNo, fields[2])
			}
			c.AddPO(fields[1], s)
		default:
			// name = OP a [b]
			if len(fields) < 3 || fields[1] != "=" {
				return nil, fmt.Errorf("netlist line %d: cannot parse %q", lineNo, line)
			}
			name := fields[0]
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("netlist line %d: duplicate node %q", lineNo, name)
			}
			t, ok := typeByName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("netlist line %d: unknown gate type %q", lineNo, fields[2])
			}
			var s Signal
			switch {
			case t == Const0 || t == Const1:
				if len(fields) != 3 {
					return nil, fmt.Errorf("netlist line %d: %s takes no fanins", lineNo, t)
				}
				s = c.Const(t == Const1)
			case t.TwoInput():
				if len(fields) != 5 {
					return nil, fmt.Errorf("netlist line %d: %s wants 2 fanins", lineNo, t)
				}
				a, ok0 := byName[fields[3]]
				b, ok1 := byName[fields[4]]
				if !ok0 || !ok1 {
					return nil, fmt.Errorf("netlist line %d: unknown fanin in %q", lineNo, line)
				}
				s = c.gate2(t, a, b)
			default: // Not, Buf
				if len(fields) != 4 {
					return nil, fmt.Errorf("netlist line %d: %s wants 1 fanin", lineNo, t)
				}
				a, ok0 := byName[fields[3]]
				if !ok0 {
					return nil, fmt.Errorf("netlist line %d: unknown fanin %q", lineNo, fields[3])
				}
				c.checkSignal(a)
				s = c.push(Node{Type: t, In0: a})
			}
			byName[name] = s
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawOutputs {
		return nil, fmt.Errorf("netlist: missing .outputs")
	}
	if len(poNames) != len(c.pos) {
		return nil, fmt.Errorf("netlist: %d declared outputs but %d .po bindings", len(poNames), len(c.pos))
	}
	declared := make(map[string]bool, len(poNames))
	for _, n := range poNames {
		declared[n] = true
	}
	for _, n := range c.poNames {
		if !declared[n] {
			return nil, fmt.Errorf("netlist: .po %q not in .outputs", n)
		}
	}
	return c, nil
}

// WriteDOT emits a Graphviz rendering of the circuit (reachable nodes only).
func WriteDOT(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph circuit {")
	fmt.Fprintln(bw, "  rankdir=LR;")
	reach := c.reachable()
	for id, n := range c.nodes {
		if !reach[id] {
			continue
		}
		label := n.Type.String()
		shape := "box"
		if n.Type == PI {
			label = c.piNames[c.piIndexOf(id)]
			shape = "ellipse"
		}
		fmt.Fprintf(bw, "  n%d [label=%q shape=%s];\n", id, label, shape)
		switch {
		case n.Type == PI || n.Type == Const0 || n.Type == Const1:
		case n.Type.TwoInput():
			fmt.Fprintf(bw, "  n%d -> n%d;\n  n%d -> n%d;\n", n.In0, id, n.In1, id)
		default:
			fmt.Fprintf(bw, "  n%d -> n%d;\n", n.In0, id)
		}
	}
	for i, s := range c.pos {
		fmt.Fprintf(bw, "  po%d [label=%q shape=doubleoctagon];\n  n%d -> po%d;\n", i, c.poNames[i], s, i)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func (c *Circuit) piIndexOf(id Signal) int {
	for i, s := range c.pis {
		if s == id {
			return i
		}
	}
	return -1
}
