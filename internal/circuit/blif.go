package circuit

// BLIF (Berkeley Logic Interchange Format) writer and subset reader, so
// learned netlists can move to and from external logic-synthesis tools (the
// paper post-processes with ABC, which speaks BLIF natively).
//
// The writer emits one .names block per gate with its truth table in the
// standard single-output-cover form. The reader accepts the combinational
// subset: .model/.inputs/.outputs/.names/.end, with arbitrary
// single-output-cover tables of up to 16 inputs per .names block (covering
// everything we emit and typical ABC output).

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteBLIF serializes the circuit as a combinational BLIF model.
func WriteBLIF(w io.Writer, c *Circuit, modelName string) error {
	if modelName == "" {
		modelName = "logicregression"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", modelName)
	fmt.Fprintf(bw, ".inputs %s\n", strings.Join(c.piNames, " "))
	fmt.Fprintf(bw, ".outputs %s\n", strings.Join(c.poNames, " "))

	names := make([]string, len(c.nodes))
	for i, pi := range c.pis {
		names[pi] = c.piNames[i]
	}
	for id, n := range c.nodes {
		if n.Type == PI {
			continue
		}
		if names[id] == "" {
			names[id] = fmt.Sprintf("n%d", id)
		}
		switch n.Type {
		case Const0:
			fmt.Fprintf(bw, ".names %s\n", names[id]) // empty cover = 0
		case Const1:
			fmt.Fprintf(bw, ".names %s\n1\n", names[id])
		case Buf:
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", names[n.In0], names[id])
		case Not:
			fmt.Fprintf(bw, ".names %s %s\n0 1\n", names[n.In0], names[id])
		default:
			fmt.Fprintf(bw, ".names %s %s %s\n%s", names[n.In0], names[n.In1], names[id], gateCover(n.Type))
		}
	}
	// Output drivers: alias each PO name to its driver via a buffer table
	// (BLIF has no explicit PO binding beyond net names).
	for i, s := range c.pos {
		if names[s] != c.poNames[i] {
			fmt.Fprintf(bw, ".names %s %s\n1 1\n", names[s], c.poNames[i])
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// gateCover returns the single-output-cover rows of a 2-input gate.
func gateCover(t GateType) string {
	switch t {
	case And:
		return "11 1\n"
	case Or:
		return "1- 1\n-1 1\n"
	case Xor:
		return "10 1\n01 1\n"
	case Nand:
		return "0- 1\n-0 1\n"
	case Nor:
		return "00 1\n"
	case Xnor:
		return "11 1\n00 1\n"
	}
	panic(fmt.Sprintf("circuit: no BLIF cover for %v", t))
}

// ParseBLIF reads a combinational BLIF model (subset; see package comment).
func ParseBLIF(r io.Reader) (*Circuit, error) {
	type namesBlock struct {
		nets []string // inputs then output net
		rows []string // cover rows like "1-" -> value
		vals []byte   // '0' or '1' per row
	}
	var (
		inputs, outputs []string
		blocks          []namesBlock
		sawModel        bool
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	nextLogical := func() (string, bool) {
		// BLIF allows '\' line continuation.
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			for strings.HasSuffix(line, "\\") && sc.Scan() {
				line = strings.TrimSuffix(line, "\\") + " " + strings.TrimSpace(sc.Text())
			}
			return line, true
		}
		return "", false
	}
	var cur *namesBlock
	flush := func() {
		if cur != nil {
			blocks = append(blocks, *cur)
			cur = nil
		}
	}
	for {
		line, ok := nextLogical()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, ".model"):
			sawModel = true
		case strings.HasPrefix(line, ".inputs"):
			flush()
			inputs = append(inputs, strings.Fields(line)[1:]...)
		case strings.HasPrefix(line, ".outputs"):
			flush()
			outputs = append(outputs, strings.Fields(line)[1:]...)
		case strings.HasPrefix(line, ".names"):
			flush()
			cur = &namesBlock{nets: strings.Fields(line)[1:]}
			if len(cur.nets) == 0 {
				return nil, fmt.Errorf("blif: .names with no nets")
			}
			if len(cur.nets) > 17 {
				return nil, fmt.Errorf("blif: .names with %d inputs unsupported (max 16)", len(cur.nets)-1)
			}
		case strings.HasPrefix(line, ".end"):
			flush()
		case strings.HasPrefix(line, "."):
			return nil, fmt.Errorf("blif: unsupported construct %q", strings.Fields(line)[0])
		default:
			if cur == nil {
				return nil, fmt.Errorf("blif: cover row %q outside .names", line)
			}
			fields := strings.Fields(line)
			switch {
			case len(fields) == 1 && len(cur.nets) == 1:
				// Constant table: row is just the output value.
				cur.rows = append(cur.rows, "")
				cur.vals = append(cur.vals, fields[0][0])
			case len(fields) == 2:
				cur.rows = append(cur.rows, fields[0])
				cur.vals = append(cur.vals, fields[1][0])
			default:
				return nil, fmt.Errorf("blif: bad cover row %q", line)
			}
		}
	}
	flush()
	if !sawModel {
		return nil, fmt.Errorf("blif: missing .model")
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("blif: missing .outputs")
	}

	c := New()
	sig := make(map[string]Signal, len(inputs)+len(blocks))
	for _, name := range inputs {
		if _, dup := sig[name]; dup {
			return nil, fmt.Errorf("blif: duplicate input %q", name)
		}
		sig[name] = c.AddPI(name)
	}
	// Blocks may be out of order; resolve iteratively.
	remaining := blocks
	for len(remaining) > 0 {
		progress := false
		var defer2 []namesBlock
		for _, b := range remaining {
			ready := true
			for _, net := range b.nets[:len(b.nets)-1] {
				if _, ok := sig[net]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				defer2 = append(defer2, b)
				continue
			}
			s, err := buildNames(c, b.nets, b.rows, b.vals, sig)
			if err != nil {
				return nil, err
			}
			out := b.nets[len(b.nets)-1]
			if _, dup := sig[out]; dup {
				return nil, fmt.Errorf("blif: net %q driven twice", out)
			}
			sig[out] = s
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("blif: cyclic or dangling .names blocks")
		}
		remaining = defer2
	}
	for _, name := range outputs {
		s, ok := sig[name]
		if !ok {
			return nil, fmt.Errorf("blif: output %q undriven", name)
		}
		c.AddPO(name, s)
	}
	return c, nil
}

// buildNames synthesizes one single-output-cover table as gates.
func buildNames(c *Circuit, nets []string, rows []string, vals []byte, sig map[string]Signal) (Signal, error) {
	nIn := len(nets) - 1
	if nIn == 0 {
		// Constant: any row with value '1' makes it 1 (standard BLIF:
		// empty cover is constant 0, a single "1" row is constant 1).
		for _, v := range vals {
			if v == '1' {
				return c.Const(true), nil
			}
		}
		return c.Const(false), nil
	}
	// BLIF single-output covers are either all-1 rows (ON-set listed) or
	// all-0 rows (OFF-set listed, output complemented).
	onSet := true
	for i, v := range vals {
		if i == 0 {
			onSet = v == '1'
		} else if (v == '1') != onSet {
			return 0, fmt.Errorf("blif: mixed cover polarities in .names %s", nets[nIn])
		}
	}
	ins := make([]Signal, nIn)
	for i, net := range nets[:nIn] {
		ins[i] = sig[net]
	}
	var terms []Signal
	for _, row := range rows {
		if len(row) != nIn {
			return 0, fmt.Errorf("blif: row %q width %d, want %d", row, len(row), nIn)
		}
		var lits []Signal
		for i := 0; i < nIn; i++ {
			switch row[i] {
			case '1':
				lits = append(lits, ins[i])
			case '0':
				lits = append(lits, c.NotGate(ins[i]))
			case '-':
			default:
				return 0, fmt.Errorf("blif: bad cover character %q", row[i])
			}
		}
		terms = append(terms, c.AndTree(lits))
	}
	out := c.OrTree(terms)
	if !onSet {
		out = c.NotGate(out)
	}
	return out, nil
}
