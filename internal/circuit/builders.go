package circuit

// Word-level construction helpers. A Word is a little-endian vector of
// signals: w[0] is the least significant bit. These builders are used both by
// the synthetic benchmark cases (to play the role of industrial datapath
// logic) and by the template matcher (to synthesize matched subcircuits).

// Word is a little-endian vector of signals.
type Word []Signal

// AddPIWord declares width PIs named base[0..width-1] (using the given naming
// function) and returns them as a Word. If name is nil, names are
// "base[i]".
func (c *Circuit) AddPIWord(base string, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = c.AddPI(busBit(base, i))
	}
	return w
}

// AddPOWord declares width POs named base[i] driven by the word bits.
func (c *Circuit) AddPOWord(base string, w Word) {
	for i, s := range w {
		c.AddPO(busBit(base, i), s)
	}
}

func busBit(base string, i int) string {
	return base + "[" + itoa(i) + "]"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// ConstWord returns a width-bit word holding the constant x.
func (c *Circuit) ConstWord(x uint64, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = c.Const(x>>uint(i)&1 == 1)
	}
	return w
}

// ZeroExtend returns w extended (or truncated) to width bits.
func (c *Circuit) ZeroExtend(w Word, width int) Word {
	out := make(Word, width)
	for i := range out {
		if i < len(w) {
			out[i] = w[i]
		} else {
			out[i] = c.Const(false)
		}
	}
	return out
}

// AddWords returns a ripple-carry sum of a and b, width = max(len(a),len(b)),
// discarding the final carry (modular arithmetic, as datapaths do).
func (c *Circuit) AddWords(a, b Word) Word {
	width := max(len(a), len(b))
	a = c.ZeroExtend(a, width)
	b = c.ZeroExtend(b, width)
	out := make(Word, width)
	carry := c.Const(false)
	for i := 0; i < width; i++ {
		axb := c.Xor(a[i], b[i])
		out[i] = c.Xor(axb, carry)
		carry = c.Or(c.And(a[i], b[i]), c.And(axb, carry))
	}
	return out
}

// SubWords returns a - b modulo 2^width via two's complement.
func (c *Circuit) SubWords(a, b Word) Word {
	width := max(len(a), len(b))
	a = c.ZeroExtend(a, width)
	b = c.ZeroExtend(b, width)
	out := make(Word, width)
	// a + ~b + 1, implemented as ripple with initial carry 1.
	carry := c.Const(true)
	for i := 0; i < width; i++ {
		nb := c.NotGate(b[i])
		axb := c.Xor(a[i], nb)
		out[i] = c.Xor(axb, carry)
		carry = c.Or(c.And(a[i], nb), c.And(axb, carry))
	}
	return out
}

// MulConst returns (k * a) modulo 2^width using shift-and-add.
func (c *Circuit) MulConst(a Word, k uint64, width int) Word {
	acc := c.ConstWord(0, width)
	shifted := c.ZeroExtend(a, width)
	for bit := 0; bit < width && k>>uint(bit) != 0; bit++ {
		if k>>uint(bit)&1 == 1 {
			acc = c.AddWords(acc, c.shiftLeft(shifted, bit, width))
		}
	}
	return acc
}

func (c *Circuit) shiftLeft(w Word, by, width int) Word {
	out := make(Word, width)
	for i := range out {
		if i >= by && i-by < len(w) {
			out[i] = w[i-by]
		} else {
			out[i] = c.Const(false)
		}
	}
	return out
}

// EqWords returns a signal that is 1 iff the two words are equal
// (shorter word zero-extended).
func (c *Circuit) EqWords(a, b Word) Signal {
	width := max(len(a), len(b))
	a = c.ZeroExtend(a, width)
	b = c.ZeroExtend(b, width)
	acc := c.Xnor(a[0], b[0])
	for i := 1; i < width; i++ {
		acc = c.And(acc, c.Xnor(a[i], b[i]))
	}
	return acc
}

// LtWords returns a signal that is 1 iff Na < Nb (unsigned).
func (c *Circuit) LtWords(a, b Word) Signal {
	width := max(len(a), len(b))
	a = c.ZeroExtend(a, width)
	b = c.ZeroExtend(b, width)
	// From LSB to MSB: lt = (~a & b) | (a==b ? lt_prev).
	lt := c.And(c.NotGate(a[0]), b[0])
	for i := 1; i < width; i++ {
		bitLt := c.And(c.NotGate(a[i]), b[i])
		bitEq := c.Xnor(a[i], b[i])
		lt = c.Or(bitLt, c.And(bitEq, lt))
	}
	return lt
}

// LeWords returns Na <= Nb.
func (c *Circuit) LeWords(a, b Word) Signal {
	return c.NotGate(c.LtWords(b, a))
}

// GtWords returns Na > Nb.
func (c *Circuit) GtWords(a, b Word) Signal { return c.LtWords(b, a) }

// GeWords returns Na >= Nb.
func (c *Circuit) GeWords(a, b Word) Signal { return c.NotGate(c.LtWords(a, b)) }

// NeWords returns Na != Nb.
func (c *Circuit) NeWords(a, b Word) Signal { return c.NotGate(c.EqWords(a, b)) }

// EqConst returns a signal that is 1 iff the word equals constant k.
func (c *Circuit) EqConst(a Word, k uint64) Signal {
	if len(a) < 64 && k>>uint(len(a)) != 0 { // k not representable: never equal
		return c.Const(false)
	}
	var acc Signal = -1
	for i, s := range a {
		bit := s
		if k>>uint(i)&1 == 0 {
			bit = c.NotGate(s)
		}
		if acc < 0 {
			acc = bit
		} else {
			acc = c.And(acc, bit)
		}
	}
	if acc < 0 {
		return c.Const(k == 0)
	}
	return acc
}

// LtConst returns Na < k.
func (c *Circuit) LtConst(a Word, k uint64) Signal {
	return c.LtWords(a, c.ConstWord(k, max(len(a), 64-clz64(k))))
}

func clz64(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x>>uint(i)&1 == 1 {
			break
		}
		n++
	}
	return n
}

// AndTree returns the conjunction of all signals (balanced), Const1 if empty.
func (c *Circuit) AndTree(sigs []Signal) Signal { return c.tree(sigs, c.And, true) }

// OrTree returns the disjunction of all signals (balanced), Const0 if empty.
func (c *Circuit) OrTree(sigs []Signal) Signal { return c.tree(sigs, c.Or, false) }

// XorTree returns the parity of all signals (balanced), Const0 if empty.
func (c *Circuit) XorTree(sigs []Signal) Signal { return c.tree(sigs, c.Xor, false) }

func (c *Circuit) tree(sigs []Signal, op func(a, b Signal) Signal, emptyVal bool) Signal {
	switch len(sigs) {
	case 0:
		return c.Const(emptyVal)
	case 1:
		return sigs[0]
	}
	mid := len(sigs) / 2
	return op(c.tree(sigs[:mid], op, emptyVal), c.tree(sigs[mid:], op, emptyVal))
}

// MuxWord returns sel ? t : f bitwise.
func (c *Circuit) MuxWord(sel Signal, t, f Word) Word {
	width := max(len(t), len(f))
	t = c.ZeroExtend(t, width)
	f = c.ZeroExtend(f, width)
	out := make(Word, width)
	for i := range out {
		out[i] = c.Mux(sel, t[i], f[i])
	}
	return out
}
