// Package circuit implements gate-level Boolean networks made of 2-input
// primitive gates, the common representation shared by the black-box cases,
// the learner output, and the optimizer.
//
// A Circuit is a DAG stored in topological order: every gate's fanins have
// smaller node ids than the gate itself, which the builder API enforces by
// construction. Node ids are plain ints (type Signal) handed out by the Add*
// methods.
//
// Gate size follows the 2019 ICCAD contest convention: Size counts the
// 2-input primitive gates (AND, OR, XOR, NAND, NOR, XNOR); inverters and
// buffers are free wiring.
package circuit

import (
	"fmt"
	"sort"
)

// GateType enumerates node kinds.
type GateType uint8

// Node kinds. PI nodes carry no fanins; Const0/Const1 are the Boolean
// constants; Not and Buf are single-fanin; the rest are 2-input gates.
const (
	PI GateType = iota
	Const0
	Const1
	Not
	Buf
	And
	Or
	Xor
	Nand
	Nor
	Xnor
)

var gateNames = [...]string{
	PI: "PI", Const0: "CONST0", Const1: "CONST1", Not: "NOT", Buf: "BUF",
	And: "AND", Or: "OR", Xor: "XOR", Nand: "NAND", Nor: "NOR", Xnor: "XNOR",
}

func (g GateType) String() string {
	if int(g) < len(gateNames) {
		return gateNames[g]
	}
	return fmt.Sprintf("GateType(%d)", uint8(g))
}

// TwoInput reports whether the gate type takes two fanins.
func (g GateType) TwoInput() bool { return g >= And }

// Signal identifies a node in a Circuit.
type Signal = int

// Node is one vertex of the network.
type Node struct {
	Type GateType
	In0  Signal // first fanin (Not/Buf use only In0)
	In1  Signal // second fanin (2-input gates only)
}

// Circuit is a combinational Boolean network.
type Circuit struct {
	nodes   []Node
	pis     []Signal // node ids of primary inputs, in declaration order
	piNames []string
	pos     []Signal // driver node id per primary output
	poNames []string

	const0 Signal // lazily created constant nodes; -1 when absent
	const1 Signal
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{const0: -1, const1: -1}
}

// FromNodes assembles a circuit directly from a node list, PI registry, and
// PO bindings, bypassing the builder API's by-construction checks. It is the
// low-level constructor for tools that materialize circuits from external
// representations (deserializers, test harnesses, fuzzers); callers are
// responsible for validity — run check.Verify on anything assembled here
// before letting it into the pipeline.
func FromNodes(nodes []Node, piNames []string, pis []Signal, poNames []string, pos []Signal) *Circuit {
	c := &Circuit{
		nodes:   append([]Node(nil), nodes...),
		pis:     append([]Signal(nil), pis...),
		piNames: append([]string(nil), piNames...),
		pos:     append([]Signal(nil), pos...),
		poNames: append([]string(nil), poNames...),
		const0:  -1,
		const1:  -1,
	}
	for id, n := range c.nodes {
		switch n.Type {
		case Const0:
			if c.const0 < 0 {
				c.const0 = id
			}
		case Const1:
			if c.const1 < 0 {
				c.const1 = id
			}
		}
	}
	return c
}

// NumNodes returns the total node count (PIs, constants, and gates).
func (c *Circuit) NumNodes() int { return len(c.nodes) }

// NumPI returns the number of primary inputs.
func (c *Circuit) NumPI() int { return len(c.pis) }

// NumPO returns the number of primary outputs.
func (c *Circuit) NumPO() int { return len(c.pos) }

// PINames returns the primary input names in declaration order.
func (c *Circuit) PINames() []string { return append([]string(nil), c.piNames...) }

// PONames returns the primary output names in declaration order.
func (c *Circuit) PONames() []string { return append([]string(nil), c.poNames...) }

// PISignal returns the node id of the i-th primary input.
func (c *Circuit) PISignal(i int) Signal { return c.pis[i] }

// POSignal returns the driver node id of the i-th primary output.
func (c *Circuit) POSignal(i int) Signal { return c.pos[i] }

// Node returns the node with the given id.
func (c *Circuit) Node(id Signal) Node { return c.nodes[id] }

// AddPI appends a primary input with the given name and returns its signal.
func (c *Circuit) AddPI(name string) Signal {
	id := c.push(Node{Type: PI})
	c.pis = append(c.pis, id)
	c.piNames = append(c.piNames, name)
	return id
}

// AddPO declares a primary output named name driven by s.
func (c *Circuit) AddPO(name string, s Signal) {
	c.checkSignal(s)
	c.pos = append(c.pos, s)
	c.poNames = append(c.poNames, name)
}

// SetPODriver rebinds output i to a different driver signal. Logic feeding
// only the old driver becomes unreachable and stops counting toward Size.
func (c *Circuit) SetPODriver(i int, s Signal) {
	c.checkSignal(s)
	c.pos[i] = s
}

// Const returns the constant-b signal, creating the node on first use.
func (c *Circuit) Const(b bool) Signal {
	if b {
		if c.const1 < 0 {
			c.const1 = c.push(Node{Type: Const1})
		}
		return c.const1
	}
	if c.const0 < 0 {
		c.const0 = c.push(Node{Type: Const0})
	}
	return c.const0
}

func (c *Circuit) push(n Node) Signal {
	c.nodes = append(c.nodes, n)
	return len(c.nodes) - 1
}

func (c *Circuit) checkSignal(s Signal) {
	if s < 0 || s >= len(c.nodes) {
		panic(fmt.Sprintf("circuit: signal %d out of range [0,%d)", s, len(c.nodes)))
	}
}

func (c *Circuit) gate2(t GateType, a, b Signal) Signal {
	c.checkSignal(a)
	c.checkSignal(b)
	return c.push(Node{Type: t, In0: a, In1: b})
}

// And returns a AND b.
func (c *Circuit) And(a, b Signal) Signal { return c.gate2(And, a, b) }

// Or returns a OR b.
func (c *Circuit) Or(a, b Signal) Signal { return c.gate2(Or, a, b) }

// Xor returns a XOR b.
func (c *Circuit) Xor(a, b Signal) Signal { return c.gate2(Xor, a, b) }

// Nand returns NOT(a AND b).
func (c *Circuit) Nand(a, b Signal) Signal { return c.gate2(Nand, a, b) }

// Nor returns NOT(a OR b).
func (c *Circuit) Nor(a, b Signal) Signal { return c.gate2(Nor, a, b) }

// Xnor returns NOT(a XOR b).
func (c *Circuit) Xnor(a, b Signal) Signal { return c.gate2(Xnor, a, b) }

// NotGate returns NOT a.
func (c *Circuit) NotGate(a Signal) Signal {
	c.checkSignal(a)
	return c.push(Node{Type: Not, In0: a})
}

// BufGate returns a buffer of a.
func (c *Circuit) BufGate(a Signal) Signal {
	c.checkSignal(a)
	return c.push(Node{Type: Buf, In0: a})
}

// Mux returns sel ? t : f built from 2-input gates.
func (c *Circuit) Mux(sel, t, f Signal) Signal {
	return c.Or(c.And(sel, t), c.And(c.NotGate(sel), f))
}

// Size returns the number of 2-input primitive gates (the contest metric).
// Inverters, buffers, constants, and PIs are not counted. Only gates in the
// transitive fanin of some PO are counted; dangling gates do not exist in the
// contest netlist format and are excluded here for the same reason.
func (c *Circuit) Size() int {
	reach := c.reachable()
	n := 0
	for id, node := range c.nodes {
		if reach[id] && node.Type.TwoInput() {
			n++
		}
	}
	return n
}

// SizeWithInverters returns the gate count including NOT gates, for
// diagnostics where inverter pressure matters.
func (c *Circuit) SizeWithInverters() int {
	reach := c.reachable()
	n := 0
	for id, node := range c.nodes {
		if reach[id] && (node.Type.TwoInput() || node.Type == Not) {
			n++
		}
	}
	return n
}

// reachable marks nodes in the transitive fanin of any PO.
func (c *Circuit) reachable() []bool {
	mark := make([]bool, len(c.nodes))
	var stack []Signal
	for _, s := range c.pos {
		if !mark[s] {
			mark[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := c.nodes[id]
		switch {
		case n.Type == PI || n.Type == Const0 || n.Type == Const1:
		case n.Type.TwoInput():
			for _, f := range [2]Signal{n.In0, n.In1} {
				if !mark[f] {
					mark[f] = true
					stack = append(stack, f)
				}
			}
		default: // Not, Buf
			if !mark[n.In0] {
				mark[n.In0] = true
				stack = append(stack, n.In0)
			}
		}
	}
	return mark
}

// Eval evaluates the circuit on one full input assignment (one bool per PI,
// in PI declaration order) and returns one bool per PO.
func (c *Circuit) Eval(assignment []bool) []bool {
	if len(assignment) != len(c.pis) {
		panic(fmt.Sprintf("circuit: Eval got %d inputs, want %d", len(assignment), len(c.pis)))
	}
	vals := make([]uint64, len(c.nodes))
	in := make([]uint64, len(assignment))
	for i, b := range assignment {
		if b {
			in[i] = 1
		}
	}
	c.evalWords(in, vals)
	out := make([]bool, len(c.pos))
	for i, s := range c.pos {
		out[i] = vals[s]&1 == 1
	}
	return out
}

// EvalWords evaluates 64 patterns in parallel: inputs[i] holds 64 values of
// PI i (bit k = pattern k), and the result holds 64 values per PO.
func (c *Circuit) EvalWords(inputs []uint64) []uint64 {
	if len(inputs) != len(c.pis) {
		panic(fmt.Sprintf("circuit: EvalWords got %d inputs, want %d", len(inputs), len(c.pis)))
	}
	vals := make([]uint64, len(c.nodes))
	c.evalWords(inputs, vals)
	out := make([]uint64, len(c.pos))
	for i, s := range c.pos {
		out[i] = vals[s]
	}
	return out
}

// Evaluator amortizes simulation scratch across repeated word evaluations of
// the same circuit — the hot path of batched oracle queries, where EvalWords'
// per-call value-array allocation dominates on small circuits. An Evaluator
// is not safe for concurrent use; create one per goroutine. It tolerates the
// circuit growing between calls.
type Evaluator struct {
	c    *Circuit
	vals []uint64
}

// NewEvaluator returns an evaluator bound to c.
func (c *Circuit) NewEvaluator() *Evaluator { return &Evaluator{c: c} }

// EvalWordsInto evaluates 64 patterns in parallel, writing one word per PO
// into out (which must have length NumPO()).
//
//logicreg:hotpath
func (e *Evaluator) EvalWordsInto(inputs, out []uint64) {
	c := e.c
	if len(inputs) != len(c.pis) {
		panic(fmt.Sprintf("circuit: EvalWordsInto got %d inputs, want %d", len(inputs), len(c.pis)))
	}
	if len(out) != len(c.pos) {
		panic(fmt.Sprintf("circuit: EvalWordsInto got %d output words, want %d", len(out), len(c.pos)))
	}
	if len(e.vals) < len(c.nodes) {
		//logicreg:allow hotalloc amortized scratch growth, only when the circuit grew
		e.vals = make([]uint64, len(c.nodes))
	}
	vals := e.vals[:len(c.nodes)]
	c.evalWords(inputs, vals)
	for i, s := range c.pos {
		if s < 0 || s >= len(vals) {
			panic(fmt.Sprintf("circuit: PO %d signal %d out of range", i, s))
		}
		out[i] = vals[s]
	}
}

// EvalSignalWords evaluates 64 patterns in parallel and returns the value
// words of the requested internal signals (useful for probing logic during
// construction, before POs exist).
func (c *Circuit) EvalSignalWords(inputs []uint64, sigs ...Signal) []uint64 {
	if len(inputs) != len(c.pis) {
		panic(fmt.Sprintf("circuit: EvalSignalWords got %d inputs, want %d", len(inputs), len(c.pis)))
	}
	vals := make([]uint64, len(c.nodes))
	c.evalWords(inputs, vals)
	out := make([]uint64, len(sigs))
	for i, s := range sigs {
		c.checkSignal(s)
		out[i] = vals[s]
	}
	return out
}

// evalWords is the 64-way simulation kernel shared by every Eval entry
// point: one word op per gate, no allocation.
//
// The explicit prologue and fanin guards restate the circuit invariants
// (vals covers every node, fanins point below the current node) where the
// bounds-check eliminator — ours and the compiler's — can see them, so the
// per-gate slice loads compile without implicit checks.
//
//logicreg:hotpath
func (c *Circuit) evalWords(inputs []uint64, vals []uint64) {
	nodes := c.nodes
	if len(vals) < len(nodes) {
		panic(fmt.Sprintf("circuit: evalWords got %d value words for %d nodes", len(vals), len(nodes)))
	}
	pi := 0
	for id, n := range nodes {
		in0, in1 := n.In0, n.In1
		if in0 < 0 || in0 >= len(vals) || in1 < 0 || in1 >= len(vals) {
			panic(fmt.Sprintf("circuit: node %d fanin out of range", id))
		}
		switch n.Type {
		case PI:
			if pi >= len(inputs) {
				panic("circuit: more PI nodes than input words")
			}
			vals[id] = inputs[pi]
			pi++
		case Const0:
			vals[id] = 0
		case Const1:
			vals[id] = ^uint64(0)
		case Not:
			vals[id] = ^vals[in0]
		case Buf:
			vals[id] = vals[in0]
		case And:
			vals[id] = vals[in0] & vals[in1]
		case Or:
			vals[id] = vals[in0] | vals[in1]
		case Xor:
			vals[id] = vals[in0] ^ vals[in1]
		case Nand:
			vals[id] = ^(vals[in0] & vals[in1])
		case Nor:
			vals[id] = ^(vals[in0] | vals[in1])
		case Xnor:
			vals[id] = ^(vals[in0] ^ vals[in1])
		default:
			panic(fmt.Sprintf("circuit: unknown gate type %v", n.Type))
		}
	}
}

// StructuralSupport returns the indices (into the PI list) of primary inputs
// in the transitive fanin of output po.
func (c *Circuit) StructuralSupport(po int) []int {
	mark := make([]bool, len(c.nodes))
	var walk func(Signal)
	walk = func(id Signal) {
		if mark[id] {
			return
		}
		mark[id] = true
		n := c.nodes[id]
		switch {
		case n.Type == PI || n.Type == Const0 || n.Type == Const1:
		case n.Type.TwoInput():
			walk(n.In0)
			walk(n.In1)
		default:
			walk(n.In0)
		}
	}
	walk(c.pos[po])
	var sup []int
	for i, s := range c.pis {
		if mark[s] {
			sup = append(sup, i)
		}
	}
	return sup
}

// PIIndexByName returns a map from PI name to PI index.
func (c *Circuit) PIIndexByName() map[string]int {
	m := make(map[string]int, len(c.piNames))
	for i, n := range c.piNames {
		m[n] = i
	}
	return m
}

// POIndexByName returns a map from PO name to PO index.
func (c *Circuit) POIndexByName() map[string]int {
	m := make(map[string]int, len(c.poNames))
	for i, n := range c.poNames {
		m[n] = i
	}
	return m
}

// Stats summarizes a circuit for reports.
type Stats struct {
	PIs, POs  int
	Gates     int // 2-input gates (contest size)
	Inverters int
	Nodes     int
	Depth     int // longest PI->PO path counting 2-input gates
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	reach := c.reachable()
	st := Stats{PIs: len(c.pis), POs: len(c.pos), Nodes: len(c.nodes)}
	depth := make([]int, len(c.nodes))
	for id, n := range c.nodes {
		if !reach[id] {
			continue
		}
		switch {
		case n.Type == PI || n.Type == Const0 || n.Type == Const1:
		case n.Type.TwoInput():
			st.Gates++
			depth[id] = 1 + max(depth[n.In0], depth[n.In1])
		case n.Type == Not:
			st.Inverters++
			depth[id] = depth[n.In0]
		default:
			depth[id] = depth[n.In0]
		}
	}
	for _, s := range c.pos {
		if depth[s] > st.Depth {
			st.Depth = depth[s]
		}
	}
	return st
}

// CopyCone copies the logic cone driving output po of src into dst,
// mapping src's primary inputs positionally onto the given dst signals, and
// returns the copied driver signal. It is the primitive behind stitching
// independently-built subcircuits (per-output learning, collapse fallback)
// into one netlist.
func CopyCone(dst *Circuit, piSigs []Signal, src *Circuit, po int) Signal {
	if len(piSigs) != src.NumPI() {
		panic(fmt.Sprintf("circuit: CopyCone got %d pi signals for %d PIs", len(piSigs), src.NumPI()))
	}
	mapped := make(map[Signal]Signal)
	piIndex := make(map[Signal]int, src.NumPI())
	for i := 0; i < src.NumPI(); i++ {
		piIndex[src.PISignal(i)] = i
	}
	var walk func(s Signal) Signal
	walk = func(s Signal) Signal {
		if d, ok := mapped[s]; ok {
			return d
		}
		n := src.Node(s)
		var d Signal
		switch n.Type {
		case PI:
			d = piSigs[piIndex[s]]
		case Const0:
			d = dst.Const(false)
		case Const1:
			d = dst.Const(true)
		case Not:
			d = dst.NotGate(walk(n.In0))
		case Buf:
			d = dst.BufGate(walk(n.In0))
		default:
			a := walk(n.In0)
			b := walk(n.In1)
			switch n.Type {
			case And:
				d = dst.And(a, b)
			case Or:
				d = dst.Or(a, b)
			case Xor:
				d = dst.Xor(a, b)
			case Nand:
				d = dst.Nand(a, b)
			case Nor:
				d = dst.Nor(a, b)
			default:
				d = dst.Xnor(a, b)
			}
		}
		mapped[s] = d
		return d
	}
	return walk(src.POSignal(po))
}

// SortedPINames returns the PI names in sorted order (helper for tests and
// deterministic reports).
func (c *Circuit) SortedPINames() []string {
	out := c.PINames()
	sort.Strings(out)
	return out
}
