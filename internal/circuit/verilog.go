package circuit

// Structural Verilog writer and gate-level subset reader. Learned netlists
// exported here drop into standard RTL flows; the reader accepts the
// single-module, primitive-gate subset the writer emits (and that gate-level
// netlists from synthesis tools commonly use):
//
//	module top(a, b, z);
//	  input a, b;
//	  output z;
//	  wire n1;
//	  and g0 (n1, a, b);
//	  not g1 (z, n1);
//	endmodule
//
// Supported primitives: and, or, xor, nand, nor, xnor (2 inputs), not, buf
// (1 input), and constant assigns `assign x = 1'b0/1'b1;` plus wire-alias
// assigns `assign x = y;`. Identifiers with characters outside
// [A-Za-z0-9_$] (e.g. bus bits like "a[3]") are emitted and re-read in
// escaped-identifier form ("\a[3] ").

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteVerilog serializes the circuit as one structural Verilog module.
func WriteVerilog(w io.Writer, c *Circuit, moduleName string) error {
	if moduleName == "" {
		moduleName = "logicregression"
	}
	bw := bufio.NewWriter(w)

	names := make([]string, len(c.nodes))
	for i, pi := range c.pis {
		names[pi] = c.piNames[i]
	}
	ports := make([]string, 0, len(c.piNames)+len(c.poNames))
	for _, n := range c.piNames {
		ports = append(ports, vlogID(n))
	}
	for _, n := range c.poNames {
		ports = append(ports, vlogID(n))
	}
	fmt.Fprintf(bw, "module %s(%s);\n", moduleName, strings.Join(ports, ", "))
	for _, n := range c.piNames {
		fmt.Fprintf(bw, "  input %s;\n", vlogID(n))
	}
	for _, n := range c.poNames {
		fmt.Fprintf(bw, "  output %s;\n", vlogID(n))
	}

	gateName := map[GateType]string{
		And: "and", Or: "or", Xor: "xor", Nand: "nand", Nor: "nor",
		Xnor: "xnor", Not: "not", Buf: "buf",
	}
	gid := 0
	var body strings.Builder
	for id, n := range c.nodes {
		if n.Type == PI {
			continue
		}
		if names[id] == "" {
			names[id] = fmt.Sprintf("n%d", id)
			fmt.Fprintf(bw, "  wire %s;\n", vlogID(names[id]))
		}
		switch n.Type {
		case Const0:
			fmt.Fprintf(&body, "  assign %s = 1'b0;\n", vlogID(names[id]))
		case Const1:
			fmt.Fprintf(&body, "  assign %s = 1'b1;\n", vlogID(names[id]))
		case Not, Buf:
			fmt.Fprintf(&body, "  %s g%d (%s, %s);\n",
				gateName[n.Type], gid, vlogID(names[id]), vlogID(names[n.In0]))
			gid++
		default:
			fmt.Fprintf(&body, "  %s g%d (%s, %s, %s);\n",
				gateName[n.Type], gid, vlogID(names[id]), vlogID(names[n.In0]), vlogID(names[n.In1]))
			gid++
		}
	}
	bw.WriteString(body.String())
	for i, s := range c.pos {
		if names[s] != c.poNames[i] {
			fmt.Fprintf(bw, "  assign %s = %s;\n", vlogID(c.poNames[i]), vlogID(names[s]))
		}
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// vlogID renders a net name as a Verilog identifier, escaping when needed.
func vlogID(name string) string {
	simple := name != ""
	for i := 0; i < len(name); i++ {
		ch := name[i]
		ok := ch == '_' || ch == '$' ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
			(ch >= '0' && ch <= '9' && i > 0)
		if !ok {
			simple = false
			break
		}
	}
	if simple && !(name[0] >= '0' && name[0] <= '9') {
		return name
	}
	return "\\" + name + " " // escaped identifier: backslash..space
}

// ParseVerilog reads the gate-level subset back into a circuit.
func ParseVerilog(r io.Reader) (*Circuit, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	toks, err := vlogTokens(string(src))
	if err != nil {
		return nil, err
	}
	p := &vlogParser{toks: toks}
	return p.parseModule()
}

// vlogTokens splits Verilog source into tokens, handling comments and
// escaped identifiers.
func vlogTokens(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case ch == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case ch == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("verilog: unterminated block comment")
			}
			i += end + 4
		case ch == '\\':
			// Escaped identifier: up to whitespace.
			j := i + 1
			for j < len(src) && src[j] != ' ' && src[j] != '\t' && src[j] != '\n' && src[j] != '\r' {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case ch == '(' || ch == ')' || ch == ',' || ch == ';' || ch == '=':
			toks = append(toks, string(ch))
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r(),;=", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

type vlogParser struct {
	toks []string
	pos  int
}

func (p *vlogParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *vlogParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *vlogParser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("verilog: expected %q, got %q", t, got)
	}
	return nil
}

// ident strips escaped-identifier syntax.
func ident(tok string) string {
	if strings.HasPrefix(tok, "\\") {
		return tok[1:]
	}
	return tok
}

func (p *vlogParser) parseModule() (*Circuit, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	p.next() // module name
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek() != ")" && p.peek() != "" {
		p.next() // port list entries (directions come from declarations)
		if p.peek() == "," {
			p.next()
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	var inputs, outputs []string
	var gates []vlogGate
	var assigns []vlogAssign

	for {
		tok := p.next()
		switch tok {
		case "":
			return nil, fmt.Errorf("verilog: missing endmodule")
		case "endmodule":
			return p.build(inputs, outputs, gates, assigns)
		case "input", "output", "wire":
			for {
				name := p.next()
				if name == ";" || name == "" {
					break
				}
				if name == "," {
					continue
				}
				switch tok {
				case "input":
					inputs = append(inputs, ident(name))
				case "output":
					outputs = append(outputs, ident(name))
				}
			}
		case "assign":
			lhs := ident(p.next())
			if err := p.expect("="); err != nil {
				return nil, err
			}
			rhs := ident(p.next())
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			assigns = append(assigns, vlogAssign{lhs: lhs, rhs: rhs})
		case "and", "or", "xor", "nand", "nor", "xnor", "not", "buf":
			// Optional instance name.
			if p.peek() != "(" {
				p.next()
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var nets []string
			for p.peek() != ")" && p.peek() != "" {
				t := p.next()
				if t == "," {
					continue
				}
				nets = append(nets, ident(t))
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			gates = append(gates, vlogGate{kind: tok, nets: nets})
		default:
			return nil, fmt.Errorf("verilog: unsupported construct %q", tok)
		}
	}
}

// vlogGate is one primitive-gate instantiation (output net first).
type vlogGate struct {
	kind string
	nets []string
}

// vlogAssign is one continuous assignment.
type vlogAssign struct{ lhs, rhs string }

// build resolves the collected netlist into a Circuit.
func (p *vlogParser) build(inputs, outputs []string,
	gates []vlogGate, assigns []vlogAssign) (*Circuit, error) {

	c := New()
	sig := make(map[string]Signal)
	for _, name := range inputs {
		if _, dup := sig[name]; dup {
			return nil, fmt.Errorf("verilog: duplicate input %q", name)
		}
		sig[name] = c.AddPI(name)
	}

	// Iteratively resolve gates/assigns whose operands are available.
	type item struct {
		isGate bool
		gate   int
		asn    int
	}
	pending := make([]item, 0, len(gates)+len(assigns))
	for i := range gates {
		pending = append(pending, item{isGate: true, gate: i})
	}
	for i := range assigns {
		pending = append(pending, item{asn: i})
	}
	arity := map[string]int{
		"and": 2, "or": 2, "xor": 2, "nand": 2, "nor": 2, "xnor": 2,
		"not": 1, "buf": 1,
	}
	for len(pending) > 0 {
		progress := false
		var remain []item
		for _, it := range pending {
			if it.isGate {
				g := gates[it.gate]
				want := arity[g.kind]
				if len(g.nets) != want+1 {
					return nil, fmt.Errorf("verilog: %s gate with %d nets", g.kind, len(g.nets))
				}
				ready := true
				ops := make([]Signal, 0, want)
				for _, net := range g.nets[1:] {
					s, ok := sig[net]
					if !ok {
						ready = false
						break
					}
					ops = append(ops, s)
				}
				if !ready {
					remain = append(remain, it)
					continue
				}
				var out Signal
				switch g.kind {
				case "and":
					out = c.And(ops[0], ops[1])
				case "or":
					out = c.Or(ops[0], ops[1])
				case "xor":
					out = c.Xor(ops[0], ops[1])
				case "nand":
					out = c.Nand(ops[0], ops[1])
				case "nor":
					out = c.Nor(ops[0], ops[1])
				case "xnor":
					out = c.Xnor(ops[0], ops[1])
				case "not":
					out = c.NotGate(ops[0])
				case "buf":
					out = c.BufGate(ops[0])
				}
				if _, dup := sig[g.nets[0]]; dup {
					return nil, fmt.Errorf("verilog: net %q driven twice", g.nets[0])
				}
				sig[g.nets[0]] = out
				progress = true
			} else {
				a := assigns[it.asn]
				var s Signal
				switch a.rhs {
				case "1'b0":
					s = c.Const(false)
				case "1'b1":
					s = c.Const(true)
				default:
					var ok bool
					s, ok = sig[a.rhs]
					if !ok {
						remain = append(remain, it)
						continue
					}
				}
				if _, dup := sig[a.lhs]; dup {
					return nil, fmt.Errorf("verilog: net %q driven twice", a.lhs)
				}
				sig[a.lhs] = s
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("verilog: cyclic or undriven nets")
		}
		pending = remain
	}
	for _, name := range outputs {
		s, ok := sig[name]
		if !ok {
			return nil, fmt.Errorf("verilog: output %q undriven", name)
		}
		c.AddPO(name, s)
	}
	return c, nil
}
