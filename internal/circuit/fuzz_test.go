package circuit

import (
	"bytes"
	"strings"
	"testing"
)

// The parser fuzz targets assert one invariant: arbitrary input never
// panics, and anything that parses successfully survives a write/reparse
// round trip with stable arity. Run with `go test -fuzz FuzzParseNetlist`
// etc.; the seed corpus alone runs as part of the normal test suite.

func FuzzParseNetlist(f *testing.F) {
	f.Add(".inputs a b\n.outputs z\nn1 = AND a b\n.po z n1\n")
	f.Add(".inputs a\n.outputs z\nn1 = CONST1\n.po z n1\n")
	f.Add("# comment\n.inputs a\n.outputs z\nn1 = NOT a\n.po z n1\n")
	f.Add(".inputs\n.outputs\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ParseNetlist(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteNetlist(&buf, c); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		back, err := ParseNetlist(&buf)
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, buf.String())
		}
		if back.NumPI() != c.NumPI() || back.NumPO() != c.NumPO() {
			t.Fatal("arity changed in round trip")
		}
	})
}

func FuzzParseBLIF(f *testing.F) {
	f.Add(".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs z\n.names z\n1\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs z\n.names a z\n0 1\n.end\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ParseBLIF(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, c, "fuzz"); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		if _, err := ParseBLIF(&buf); err != nil {
			t.Fatalf("reparse: %v\n%s", err, buf.String())
		}
	})
}

func FuzzParseVerilog(f *testing.F) {
	f.Add("module m(a, z);\ninput a;\noutput z;\nnot g0 (z, a);\nendmodule\n")
	f.Add("module m(a, b, z);\ninput a, b;\noutput z;\nand (z, a, b);\nendmodule\n")
	f.Add("module m(z);\noutput z;\nassign z = 1'b1;\nendmodule\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ParseVerilog(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteVerilog(&buf, c, "fuzz"); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		if _, err := ParseVerilog(&buf); err != nil {
			t.Fatalf("reparse: %v\n%s", err, buf.String())
		}
	})
}
