package circuit

import (
	"math/rand"
	"testing"
)

func benchCircuit(nPI, nGates int) (*Circuit, []uint64) {
	rng := rand.New(rand.NewSource(1))
	c := randomCircuit(rng, nPI, nGates, 4)
	in := make([]uint64, nPI)
	for i := range in {
		in[i] = rng.Uint64()
	}
	return c, in
}

func BenchmarkEvalWords1K(b *testing.B) {
	c, in := benchCircuit(64, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EvalWords(in)
	}
	b.ReportMetric(float64(64*1000), "gate-evals/op")
}

func BenchmarkEvalWords100K(b *testing.B) {
	c, in := benchCircuit(128, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EvalWords(in)
	}
}

func BenchmarkEvalScalar(b *testing.B) {
	c, _ := benchCircuit(64, 1000)
	assign := make([]bool, 64)
	for i := range assign {
		assign[i] = i%3 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Eval(assign)
	}
}

func BenchmarkAdder64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := New()
		x := c.AddPIWord("x", 64)
		y := c.AddPIWord("y", 64)
		c.AddPOWord("s", c.AddWords(x, y))
	}
}
