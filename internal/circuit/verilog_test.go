package circuit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestVerilogRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		orig := randomCircuit(rng, 6, 30, 3)
		var buf bytes.Buffer
		if err := WriteVerilog(&buf, orig, "t"); err != nil {
			t.Fatal(err)
		}
		back, err := ParseVerilog(&buf)
		if err != nil {
			t.Fatalf("ParseVerilog: %v\n%s", err, buf.String())
		}
		if back.NumPI() != orig.NumPI() || back.NumPO() != orig.NumPO() {
			t.Fatal("arity changed")
		}
		for k := 0; k < 100; k++ {
			a := make([]bool, orig.NumPI())
			for i := range a {
				a[i] = rng.Intn(2) == 1
			}
			w1 := orig.Eval(a)
			w2 := back.Eval(a)
			for j := range w1 {
				if w1[j] != w2[j] {
					t.Fatalf("trial %d: Verilog round trip changed output %d", trial, j)
				}
			}
		}
	}
}

func TestVerilogEscapedIdentifiers(t *testing.T) {
	// Bus-bit names need escaped identifiers.
	c := New()
	a := c.AddPIWord("data", 3)
	c.AddPO("parity[0]", c.XorTree(a))
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, c, "bus"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\\data[0] ") {
		t.Fatalf("escaped identifier missing:\n%s", buf.String())
	}
	back, err := ParseVerilog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.PINames()[0] != "data[0]" || back.PONames()[0] != "parity[0]" {
		t.Fatalf("names lost: %v %v", back.PINames(), back.PONames())
	}
	for m := 0; m < 8; m++ {
		assign := []bool{m&1 == 1, m>>1&1 == 1, m>>2&1 == 1}
		want := assign[0] != assign[1] != assign[2]
		// XOR associativity: recompute properly.
		want = (assign[0] != assign[1]) != assign[2]
		if back.Eval(assign)[0] != want {
			t.Fatalf("parity wrong at %b", m)
		}
	}
}

func TestVerilogConstantsRoundTrip(t *testing.T) {
	c := New()
	a := c.AddPI("a")
	c.AddPO("one", c.Const(true))
	c.AddPO("zero", c.Const(false))
	c.AddPO("same", a)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, c, ""); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilog(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := back.Eval([]bool{true})
	if out[0] != true || out[1] != false || out[2] != true {
		t.Fatalf("round trip = %v", out)
	}
}

func TestParseVerilogHandWritten(t *testing.T) {
	text := `// half adder
module ha(a, b, s, c);
  input a, b;
  output s, c;
  /* sum and carry */
  xor u1 (s, a, b);
  and u2 (c, a, b);
endmodule
`
	c, err := ParseVerilog(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		a, b := m&1 == 1, m>>1&1 == 1
		out := c.Eval([]bool{a, b})
		if out[0] != (a != b) || out[1] != (a && b) {
			t.Fatalf("half adder wrong at %b", m)
		}
	}
}

func TestParseVerilogOutOfOrderGates(t *testing.T) {
	text := `module m(a, z);
  input a;
  output z;
  wire t;
  not (z, t);
  buf (t, a);
endmodule
`
	c, err := ParseVerilog(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if c.Eval([]bool{true})[0] != false {
		t.Fatal("out-of-order resolution broken")
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := map[string]string{
		"no module":    "input a;\n",
		"no endmodule": "module m(a); input a;\n",
		"bad gate":     "module m(a,z); input a; output z; mux (z, a); endmodule",
		"cycle":        "module m(a,z); input a; output z; wire t; not (t, t); buf (z, t); endmodule",
		"undriven":     "module m(a,z); input a; output z; endmodule",
		"double drive": "module m(a,z); input a; output z; buf (z, a); not (z, a); endmodule",
		"bad arity":    "module m(a,b,z); input a, b; output z; not (z, a, b); endmodule",
		"open comment": "module m(a,z); /* input a; output z; buf(z,a); endmodule",
	}
	for name, text := range cases {
		if _, err := ParseVerilog(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
