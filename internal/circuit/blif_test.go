package circuit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestBLIFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		orig := randomCircuit(rng, 6, 30, 3)
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, orig, "trial"); err != nil {
			t.Fatal(err)
		}
		back, err := ParseBLIF(&buf)
		if err != nil {
			t.Fatalf("ParseBLIF: %v", err)
		}
		if back.NumPI() != orig.NumPI() || back.NumPO() != orig.NumPO() {
			t.Fatalf("arity changed")
		}
		for k := 0; k < 100; k++ {
			a := make([]bool, orig.NumPI())
			for i := range a {
				a[i] = rng.Intn(2) == 1
			}
			w1 := orig.Eval(a)
			w2 := back.Eval(a)
			for j := range w1 {
				if w1[j] != w2[j] {
					t.Fatalf("trial %d: BLIF round trip changed output %d", trial, j)
				}
			}
		}
	}
}

func TestBLIFConstantsRoundTrip(t *testing.T) {
	c := New()
	a := c.AddPI("a")
	c.AddPO("one", c.Const(true))
	c.AddPO("zero", c.Const(false))
	c.AddPO("buf", c.BufGate(a))
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, c, ""); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBLIF(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := back.Eval([]bool{true})
	if out[0] != true || out[1] != false || out[2] != true {
		t.Fatalf("constants = %v", out)
	}
}

func TestParseBLIFHandWritten(t *testing.T) {
	// A mux written with don't-cares and out-of-order blocks.
	text := `# hand-written mux
.model mux
.inputs s a b
.outputs z
.names t0 t1 z
1- 1
-1 1
.names s a t0
11 1
.names s b t1
01 1
.end
`
	c, err := ParseBLIF(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 8; m++ {
		s, a, b := m&1 == 1, m>>1&1 == 1, m>>2&1 == 1
		want := b
		if s {
			want = a
		}
		if got := c.Eval([]bool{s, a, b})[0]; got != want {
			t.Fatalf("mux(%v,%v,%v) = %v", s, a, b, got)
		}
	}
}

func TestParseBLIFOffsetCover(t *testing.T) {
	// Output listed via its OFF-set: z is 0 iff a=1,b=1 (i.e. z = NAND).
	text := ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 0\n.end\n"
	c, err := ParseBLIF(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		a, b := m&1 == 1, m>>1&1 == 1
		if got := c.Eval([]bool{a, b})[0]; got != !(a && b) {
			t.Fatalf("offset cover wrong at (%v,%v)", a, b)
		}
	}
}

func TestParseBLIFLineContinuation(t *testing.T) {
	text := ".model m\n.inputs a \\\nb\n.outputs z\n.names a b z\n11 1\n.end\n"
	c, err := ParseBLIF(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPI() != 2 {
		t.Fatalf("inputs = %d", c.NumPI())
	}
}

func TestParseBLIFErrors(t *testing.T) {
	cases := map[string]string{
		"no model":      ".inputs a\n.outputs z\n.names a z\n1 1\n.end\n",
		"no outputs":    ".model m\n.inputs a\n.names a z\n1 1\n.end\n",
		"latch":         ".model m\n.inputs a\n.outputs z\n.latch a z 0\n.end\n",
		"undriven out":  ".model m\n.inputs a\n.outputs z\n.end\n",
		"row outside":   ".model m\n.inputs a\n.outputs z\n11 1\n.end\n",
		"cyclic":        ".model m\n.inputs a\n.outputs z\n.names z z\n1 1\n.end\n",
		"double driver": ".model m\n.inputs a\n.outputs z\n.names a z\n1 1\n.names a z\n0 1\n.end\n",
		"mixed cover":   ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n00 0\n.end\n",
		"bad char":      ".model m\n.inputs a b\n.outputs z\n.names a b z\n1x 1\n.end\n",
		"bad width":     ".model m\n.inputs a b\n.outputs z\n.names a b z\n111 1\n.end\n",
	}
	for name, text := range cases {
		if _, err := ParseBLIF(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteBLIFCoversEveryGateType(t *testing.T) {
	c := New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.AddPO("f1", c.And(a, b))
	c.AddPO("f2", c.Or(a, b))
	c.AddPO("f3", c.Xor(a, b))
	c.AddPO("f4", c.Nand(a, b))
	c.AddPO("f5", c.Nor(a, b))
	c.AddPO("f6", c.Xnor(a, b))
	c.AddPO("f7", c.NotGate(a))
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, c, "allgates"); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBLIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		av, bv := m&1 == 1, m>>1&1 == 1
		want := []bool{av && bv, av || bv, av != bv, !(av && bv), !(av || bv), av == bv, !av}
		got := back.Eval([]bool{av, bv})
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("gate %d wrong at (%v,%v)", j, av, bv)
			}
		}
	}
}
