package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// evalWordAsUint drives the circuit with the given input buses and decodes an
// output word back into an integer. Buses are declared as PI words in order.
func buildTwoBusCircuit(width int, f func(c *Circuit, a, b Word)) *Circuit {
	c := New()
	a := c.AddPIWord("a", width)
	b := c.AddPIWord("b", width)
	f(c, a, b)
	return c
}

func evalUints(c *Circuit, width int, va, vb uint64) []bool {
	assign := make([]bool, 2*width)
	for i := 0; i < width; i++ {
		assign[i] = va>>uint(i)&1 == 1
		assign[width+i] = vb>>uint(i)&1 == 1
	}
	return c.Eval(assign)
}

func outWordToUint(out []bool) uint64 {
	var x uint64
	for i, b := range out {
		if b {
			x |= 1 << uint(i)
		}
	}
	return x
}

func TestAddWords(t *testing.T) {
	const width = 6
	c := buildTwoBusCircuit(width, func(c *Circuit, a, b Word) {
		c.AddPOWord("z", c.AddWords(a, b))
	})
	for va := uint64(0); va < 1<<width; va += 7 {
		for vb := uint64(0); vb < 1<<width; vb += 5 {
			got := outWordToUint(evalUints(c, width, va, vb))
			want := (va + vb) % (1 << width)
			if got != want {
				t.Fatalf("%d+%d = %d, want %d", va, vb, got, want)
			}
		}
	}
}

func TestSubWords(t *testing.T) {
	const width = 6
	c := buildTwoBusCircuit(width, func(c *Circuit, a, b Word) {
		c.AddPOWord("z", c.SubWords(a, b))
	})
	for va := uint64(0); va < 1<<width; va += 3 {
		for vb := uint64(0); vb < 1<<width; vb += 11 {
			got := outWordToUint(evalUints(c, width, va, vb))
			want := (va - vb) & (1<<width - 1)
			if got != want {
				t.Fatalf("%d-%d = %d, want %d", va, vb, got, want)
			}
		}
	}
}

func TestMulConst(t *testing.T) {
	const width = 8
	for _, k := range []uint64{0, 1, 2, 3, 5, 10, 255} {
		c := New()
		a := c.AddPIWord("a", width)
		c.AddPOWord("z", c.MulConst(a, k, width))
		for va := uint64(0); va < 1<<width; va += 13 {
			assign := make([]bool, width)
			for i := 0; i < width; i++ {
				assign[i] = va>>uint(i)&1 == 1
			}
			got := outWordToUint(c.Eval(assign))
			want := (va * k) & (1<<width - 1)
			if got != want {
				t.Fatalf("%d*%d = %d, want %d", k, va, got, want)
			}
		}
	}
}

func TestComparators(t *testing.T) {
	const width = 5
	c := buildTwoBusCircuit(width, func(c *Circuit, a, b Word) {
		c.AddPO("eq", c.EqWords(a, b))
		c.AddPO("ne", c.NeWords(a, b))
		c.AddPO("lt", c.LtWords(a, b))
		c.AddPO("le", c.LeWords(a, b))
		c.AddPO("gt", c.GtWords(a, b))
		c.AddPO("ge", c.GeWords(a, b))
	})
	for va := uint64(0); va < 1<<width; va++ {
		for vb := uint64(0); vb < 1<<width; vb++ {
			out := evalUints(c, width, va, vb)
			want := []bool{va == vb, va != vb, va < vb, va <= vb, va > vb, va >= vb}
			for i, w := range want {
				if out[i] != w {
					t.Fatalf("cmp %d vs %d: output %s = %v, want %v",
						va, vb, c.PONames()[i], out[i], w)
				}
			}
		}
	}
}

func TestEqConst(t *testing.T) {
	const width = 5
	for _, k := range []uint64{0, 1, 13, 31, 32, 1000} {
		c := New()
		a := c.AddPIWord("a", width)
		c.AddPO("z", c.EqConst(a, k))
		for va := uint64(0); va < 1<<width; va++ {
			assign := make([]bool, width)
			for i := 0; i < width; i++ {
				assign[i] = va>>uint(i)&1 == 1
			}
			got := c.Eval(assign)[0]
			if got != (va == k) {
				t.Fatalf("EqConst(%d) at %d = %v", k, va, got)
			}
		}
	}
}

func TestEqConstZeroWidth(t *testing.T) {
	c := New()
	c.AddPI("pad")
	c.AddPO("z0", c.EqConst(Word{}, 0))
	c.AddPO("z1", c.EqConst(Word{}, 1))
	out := c.Eval([]bool{false})
	if out[0] != true || out[1] != false {
		t.Fatalf("EqConst on empty word = %v", out)
	}
}

func TestLtConst(t *testing.T) {
	const width = 5
	for _, k := range []uint64{0, 1, 7, 31, 32, 100} {
		c := New()
		a := c.AddPIWord("a", width)
		c.AddPO("z", c.LtConst(a, k))
		for va := uint64(0); va < 1<<width; va++ {
			assign := make([]bool, width)
			for i := 0; i < width; i++ {
				assign[i] = va>>uint(i)&1 == 1
			}
			if got := c.Eval(assign)[0]; got != (va < k) {
				t.Fatalf("LtConst(%d) at %d = %v", k, va, got)
			}
		}
	}
}

func TestTrees(t *testing.T) {
	c := New()
	var sigs []Signal
	for i := 0; i < 5; i++ {
		sigs = append(sigs, c.AddPI("x"+itoa(i)))
	}
	c.AddPO("and", c.AndTree(sigs))
	c.AddPO("or", c.OrTree(sigs))
	c.AddPO("xor", c.XorTree(sigs))
	for pat := 0; pat < 32; pat++ {
		assign := make([]bool, 5)
		all, any, par := true, false, false
		for i := range assign {
			assign[i] = pat>>uint(i)&1 == 1
			all = all && assign[i]
			any = any || assign[i]
			par = par != assign[i]
		}
		out := c.Eval(assign)
		if out[0] != all || out[1] != any || out[2] != par {
			t.Fatalf("trees at %05b: got %v want [%v %v %v]", pat, out, all, any, par)
		}
	}
}

func TestEmptyTrees(t *testing.T) {
	c := New()
	c.AddPI("pad")
	c.AddPO("and", c.AndTree(nil))
	c.AddPO("or", c.OrTree(nil))
	out := c.Eval([]bool{false})
	if out[0] != true || out[1] != false {
		t.Fatalf("empty trees = %v", out)
	}
}

func TestMuxWord(t *testing.T) {
	c := New()
	s := c.AddPI("s")
	tw := c.AddPIWord("t", 3)
	fw := c.AddPIWord("f", 3)
	c.AddPOWord("z", c.MuxWord(s, tw, fw))
	assign := []bool{true, true, false, true, false, true, false}
	out := outWordToUint(c.Eval(assign))
	if out != 0b101 {
		t.Fatalf("MuxWord sel=1 = %03b, want 101", out)
	}
	assign[0] = false
	out = outWordToUint(c.Eval(assign))
	if out != 0b010 {
		t.Fatalf("MuxWord sel=0 = %03b, want 010", out)
	}
}

// Property: add/sub round-trip on random widths and values.
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 2 + rng.Intn(10)
		c := buildTwoBusCircuit(width, func(c *Circuit, a, b Word) {
			c.AddPOWord("z", c.SubWords(c.AddWords(a, b), b))
		})
		va := rng.Uint64() & (1<<uint(width) - 1)
		vb := rng.Uint64() & (1<<uint(width) - 1)
		return outWordToUint(evalUints(c, width, va, vb)) == va
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
