package sampling

import (
	"math/rand"
	"testing"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
)

func benchOracle(nPI int) oracle.Oracle {
	rng := rand.New(rand.NewSource(1))
	c := circuit.New()
	sigs := make([]circuit.Signal, 0, nPI)
	for i := 0; i < nPI; i++ {
		sigs = append(sigs, c.AddPI("x"+string(rune('a'+i%26))+string(rune('a'+i/26))))
	}
	acc := sigs[0]
	for i := 0; i < 4*nPI; i++ {
		a := sigs[rng.Intn(len(sigs))]
		acc = c.Or(c.And(acc, a), c.Xor(acc, sigs[rng.Intn(len(sigs))]))
	}
	c.AddPO("z", acc)
	return oracle.FromCircuit(c)
}

func BenchmarkPatternSampling64Inputs(b *testing.B) {
	o := benchOracle(64)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PatternSampling(o, 0, nil, Config{R: 64}, rng)
	}
	b.ReportMetric(64*2*64, "queries/op")
}

func BenchmarkPatternSamplingPaperSupportR(b *testing.B) {
	// The paper's support-identification setting: r=7200 per input.
	o := benchOracle(32)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PatternSampling(o, 0, nil, Config{R: 7200}, rng)
	}
}

func BenchmarkBiasedWord(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < b.N; i++ {
		BiasedWord(rng, 0.25)
	}
}
