// Package sampling implements the PatternSampling procedure of the paper
// (Algorithm 1) and the random assignment generators behind it.
//
// PatternSampling probes a black-box output with r random assignments per
// candidate input, toggling that input to measure the dependency count D_i
// (how often the output flips), and accumulates the TruthRatio (fraction of
// 1s among sampled output values). Assignments can be constrained by a cube,
// which is how the decision tree samples within a node (Sec. IV-D).
//
// Following the paper's observation that some outputs only reveal
// sensitivities under assignments with an uneven ratio of 0s and 1s, the
// generator draws each 64-pattern word from a pool of one-bias ratios
// (Config.Ratios); the default pool mixes the even ratio with several uneven
// ones.
package sampling

import (
	"math/bits"
	"math/rand"

	"logicregression/internal/oracle"
	"logicregression/internal/sop"
)

// DefaultRatios is the combined even/uneven sampling pool of Sec. IV-C.
var DefaultRatios = []float64{0.5, 0.25, 0.75, 0.1, 0.9}

// Config controls PatternSampling.
type Config struct {
	// R is the number of sampled assignments per candidate input.
	// The paper uses 7200 for support identification and 60 inside the
	// decision tree.
	R int
	// Ratios is the pool of P(bit=1) biases; each 64-pattern word is drawn
	// with one ratio from the pool, cycling. Empty means DefaultRatios.
	Ratios []float64
	// Candidates, when non-nil, restricts the probed inputs to this set
	// (cube-bound members are still skipped). The decision tree uses it to
	// probe only the inputs in the identified support S'.
	Candidates []int
}

func (c Config) ratios() []float64 {
	if len(c.Ratios) == 0 {
		return DefaultRatios
	}
	return c.Ratios
}

// Result is the output of PatternSampling.
type Result struct {
	// D maps each input index to its dependency count; constrained inputs
	// (bound by the cube) hold -1.
	D []int
	// Free lists the unconstrained input indices, ascending.
	Free []int
	// TruthRatio is the fraction of 1s among all sampled output values.
	TruthRatio float64
	// Samples is the number of output values observed (2*r*|Free|).
	Samples int
}

// MostSignificant returns the free input with the highest dependency count
// (the paper's \hat{i}) and that count. ok is false when every free input has
// zero dependency count, i.e. the output looks constant under this cube.
func (r Result) MostSignificant() (input, count int, ok bool) {
	best, bestD := -1, 0
	for _, i := range r.Free {
		if r.D[i] > bestD {
			best, bestD = i, r.D[i]
		}
	}
	if best < 0 {
		return -1, 0, false
	}
	return best, bestD, true
}

// Support returns the free inputs with nonzero dependency count, the paper's
// underapproximated support S'.
func (r Result) Support() []int {
	var s []int
	for _, i := range r.Free {
		if r.D[i] > 0 {
			s = append(s, i)
		}
	}
	return s
}

// PatternSampling implements Algorithm 1 for a single output of the oracle.
// out selects the output index; cube constrains every sampled assignment.
func PatternSampling(o oracle.Oracle, out int, cube sop.Cube, cfg Config, rng *rand.Rand) Result {
	n := o.NumInputs()
	res := Result{D: make([]int, n)}
	constrained := make([]bool, n)
	for _, l := range cube {
		constrained[l.Var] = true
		res.D[l.Var] = -1
	}
	if cfg.Candidates != nil {
		inCand := make([]bool, n)
		for _, i := range cfg.Candidates {
			inCand[i] = true
		}
		for i := 0; i < n; i++ {
			if !constrained[i] && inCand[i] {
				res.Free = append(res.Free, i)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if !constrained[i] {
				res.Free = append(res.Free, i)
			}
		}
	}
	if cfg.R <= 0 || len(res.Free) == 0 {
		return res
	}

	ratios := cfg.ratios()
	words := (cfg.R + 63) / 64
	ones := 0
	ratioIdx := 0
	b := oracle.AsBatch(o)
	lanes := make([]uint64, n*words)
	for _, i := range res.Free {
		// Draw all R patterns for this input up front, in exactly the order
		// the per-block reference would (block-major, inputs within a
		// block, one bias ratio per block), then issue the oracle queries
		// as two whole batches: alpha_i (input i forced to 1) and
		// alpha_not_i (forced to 0).
		for w := 0; w < words; w++ {
			p := ratios[ratioIdx%len(ratios)]
			ratioIdx++
			for j := 0; j < n; j++ {
				lanes[j*words+w] = BiasedWord(rng, p)
			}
			for _, l := range cube {
				if l.Neg {
					lanes[l.Var*words+w] = 0
				} else {
					lanes[l.Var*words+w] = ^uint64(0)
				}
			}
		}
		lane := lanes[i*words : (i+1)*words]
		for w := range lane {
			lane[w] = ^uint64(0) // alpha_i: input forced to 1
		}
		out1 := b.EvalBatch(lanes, cfg.R)[out*words : (out+1)*words]
		for w := range lane {
			lane[w] = 0 // alpha_not_i: input forced to 0
		}
		out0 := b.EvalBatch(lanes, cfg.R)[out*words : (out+1)*words]

		remaining := cfg.R
		for w := 0; w < words; w++ {
			batch := min(remaining, 64)
			remaining -= batch
			mask := maskLow(batch)
			res.D[i] += popcount((out1[w] ^ out0[w]) & mask)
			ones += popcount(out1[w]&mask) + popcount(out0[w]&mask)
			res.Samples += 2 * batch
		}
	}
	if res.Samples > 0 {
		res.TruthRatio = float64(ones) / float64(res.Samples)
	}
	return res
}

func maskLow(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

// fillRandomWords fills one 64-pattern word per input, each bit Bernoulli(p).
func fillRandomWords(rng *rand.Rand, words []uint64, p float64) {
	for i := range words {
		words[i] = BiasedWord(rng, p)
	}
}

// applyCubeWords forces the cube literals across all 64 patterns.
func applyCubeWords(cube sop.Cube, words []uint64) {
	for _, l := range cube {
		if l.Neg {
			words[l.Var] = 0
		} else {
			words[l.Var] = ^uint64(0)
		}
	}
}

// BiasedWord returns a 64-bit word whose bits are independently 1 with
// probability p (quantized to 16 binary digits). The construction processes
// the binary expansion of p from the least significant digit: OR with a fresh
// random word realizes p -> (1+p)/2 and AND realizes p -> p/2.
func BiasedWord(rng *rand.Rand, p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ^uint64(0)
	case p == 0.5:
		return rng.Uint64()
	}
	q := uint32(p * 65536)
	if q == 0 {
		return 0
	}
	var w uint64
	started := false
	for bit := 0; bit < 16; bit++ {
		d := q >> uint(bit) & 1
		if !started {
			if d == 1 {
				w = rng.Uint64()
				started = true
			}
			continue
		}
		if d == 1 {
			w |= rng.Uint64()
		} else {
			w &= rng.Uint64()
		}
	}
	return w
}

// RandomAssignment returns an n-bit assignment with each bit 1 with
// probability p, optionally constrained by cube.
func RandomAssignment(rng *rand.Rand, n int, p float64, cube sop.Cube) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = rng.Float64() < p
	}
	cube.Apply(a)
	return a
}

// RandomWords returns one 64-pattern word per input with bias p, constrained
// by cube.
func RandomWords(rng *rand.Rand, n int, p float64, cube sop.Cube) []uint64 {
	words := make([]uint64, n)
	fillRandomWords(rng, words, p)
	applyCubeWords(cube, words)
	return words
}
