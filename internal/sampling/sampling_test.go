package sampling

import (
	"math"
	"math/bits"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
	"logicregression/internal/sop"
)

func testOracle() oracle.Oracle {
	// z = (a AND b) XOR c ; w = d (a, b, c, d inputs; e unused)
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	cc := c.AddPI("c")
	d := c.AddPI("d")
	c.AddPI("e")
	c.AddPO("z", c.Xor(c.And(a, b), cc))
	c.AddPO("w", d)
	return oracle.FromCircuit(c)
}

func TestPatternSamplingFindsSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res := PatternSampling(testOracle(), 0, nil, Config{R: 256}, rng)
	sup := res.Support()
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(sup) != 3 {
		t.Fatalf("support = %v, want inputs 0,1,2", sup)
	}
	for _, i := range sup {
		if !want[i] {
			t.Fatalf("support contains non-supporting input %d", i)
		}
	}
	// c (index 2) flips the output on every assignment: it must dominate.
	if mi, _, ok := res.MostSignificant(); !ok || mi != 2 {
		t.Fatalf("MostSignificant = %d, want 2", mi)
	}
}

func TestPatternSamplingRespectsCube(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cube, _ := sop.NewCube(sop.Literal{Var: 2, Neg: false}) // c = 1
	res := PatternSampling(testOracle(), 0, cube, Config{R: 128}, rng)
	if res.D[2] != -1 {
		t.Fatalf("constrained input has D = %d, want -1", res.D[2])
	}
	for _, i := range res.Free {
		if i == 2 {
			t.Fatal("constrained input listed as free")
		}
	}
	// With c=1, z = NOT(a AND b): TruthRatio must exceed 1/2 under the
	// even-ratio pool (3/4 of (a,b) pairs give 1).
	if res.TruthRatio < 0.5 {
		t.Fatalf("TruthRatio = %f, want > 0.5 under c=1", res.TruthRatio)
	}
}

func TestPatternSamplingConstantUnderCube(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Constrain a=0: then a AND b = 0, z = c; with c also constrained to 0,
	// the output is constant 0.
	cube, _ := sop.NewCube(
		sop.Literal{Var: 0, Neg: true},
		sop.Literal{Var: 2, Neg: true},
	)
	res := PatternSampling(testOracle(), 0, cube, Config{R: 128}, rng)
	if res.TruthRatio != 0 {
		t.Fatalf("TruthRatio = %f, want 0", res.TruthRatio)
	}
	if _, _, ok := res.MostSignificant(); ok {
		t.Fatal("constant function reported a significant input")
	}
}

func TestPatternSamplingSecondOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	res := PatternSampling(testOracle(), 1, nil, Config{R: 128}, rng)
	sup := res.Support()
	if len(sup) != 1 || sup[0] != 3 {
		t.Fatalf("support of w = %v, want [3]", sup)
	}
}

func TestPatternSamplingZeroR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	res := PatternSampling(testOracle(), 0, nil, Config{R: 0}, rng)
	if res.Samples != 0 || res.TruthRatio != 0 {
		t.Fatalf("R=0 result = %+v", res)
	}
	if len(res.Free) != 5 {
		t.Fatalf("Free = %v", res.Free)
	}
}

func TestPatternSamplingNonMultipleOf64(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	res := PatternSampling(testOracle(), 0, nil, Config{R: 70}, rng)
	// 5 free inputs * 2 * 70 samples.
	if res.Samples != 700 {
		t.Fatalf("Samples = %d, want 700", res.Samples)
	}
	for _, i := range res.Free {
		if res.D[i] > 70 {
			t.Fatalf("D[%d] = %d exceeds R", i, res.D[i])
		}
	}
}

func TestBiasedWordExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if BiasedWord(rng, 0) != 0 {
		t.Fatal("p=0 word not zero")
	}
	if BiasedWord(rng, 1) != ^uint64(0) {
		t.Fatal("p=1 word not all ones")
	}
}

func TestBiasedWordStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		const words = 4000
		ones := 0
		for k := 0; k < words; k++ {
			ones += bits.OnesCount64(BiasedWord(rng, p))
		}
		got := float64(ones) / float64(words*64)
		if math.Abs(got-p) > 0.01 {
			t.Errorf("bias %f: measured %f", p, got)
		}
	}
}

func TestRandomAssignmentBiasAndCube(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cube, _ := sop.NewCube(sop.Literal{Var: 0, Neg: false}, sop.Literal{Var: 3, Neg: true})
	ones := 0
	const trials = 2000
	for k := 0; k < trials; k++ {
		a := RandomAssignment(rng, 10, 0.8, cube)
		if !a[0] || a[3] {
			t.Fatal("cube not applied")
		}
		for i, b := range a {
			if i != 0 && i != 3 && b {
				ones++
			}
		}
	}
	got := float64(ones) / float64(trials*8)
	if math.Abs(got-0.8) > 0.03 {
		t.Fatalf("assignment bias = %f, want 0.8", got)
	}
}

func TestRandomWordsCube(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cube, _ := sop.NewCube(sop.Literal{Var: 1, Neg: false}, sop.Literal{Var: 2, Neg: true})
	w := RandomWords(rng, 4, 0.5, cube)
	if w[1] != ^uint64(0) || w[2] != 0 {
		t.Fatal("cube not applied to words")
	}
}

func TestUnevenRatioFindsHiddenSupport(t *testing.T) {
	// f = AND of 8 inputs: under even sampling, toggling input i flips the
	// output only when the other 7 are all 1 (P = 1/128 per sample). The
	// high-bias pool member makes flips common. This reproduces the paper's
	// rationale for combined even/uneven sampling.
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < 8; i++ {
		sigs = append(sigs, c.AddPI("x"+string(rune('0'+i))))
	}
	c.AddPO("z", c.AndTree(sigs))
	o := oracle.FromCircuit(c)

	rng := rand.New(rand.NewSource(11))
	biased := PatternSampling(o, 0, nil, Config{R: 192, Ratios: []float64{0.9}}, rng)
	if len(biased.Support()) != 8 {
		t.Fatalf("biased sampling support = %v, want all 8", biased.Support())
	}
}

func TestDependencyCountExactForXor(t *testing.T) {
	// For z = a XOR b, toggling a always flips z: D_a must equal R exactly.
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.AddPO("z", c.Xor(a, b))
	o := oracle.FromCircuit(c)
	rng := rand.New(rand.NewSource(12))
	res := PatternSampling(o, 0, nil, Config{R: 100}, rng)
	if res.D[0] != 100 || res.D[1] != 100 {
		t.Fatalf("D = %v, want [100 100]", res.D)
	}
	if res.TruthRatio != 0.5 {
		// Exactly half of the toggled pairs are 1 for XOR.
		t.Fatalf("TruthRatio = %f, want 0.5", res.TruthRatio)
	}
}

// Property: dependency counts never exceed R and Samples is always 2*R*|Free|.
func TestQuickSamplingBounds(t *testing.T) {
	o := testOracle()
	f := func(seed int64, rRaw uint8) bool {
		r := int(rRaw)%150 + 1
		rng := rand.New(rand.NewSource(seed))
		res := PatternSampling(o, 0, nil, Config{R: r}, rng)
		if res.Samples != 2*r*len(res.Free) {
			return false
		}
		for _, i := range res.Free {
			if res.D[i] < 0 || res.D[i] > r {
				return false
			}
		}
		return res.TruthRatio >= 0 && res.TruthRatio <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPatternSamplingBatchMatchesScalar pins the batching-on/off equivalence:
// the batched probe loop must consume the RNG in exactly the scalar order and
// produce an identical Result.
func TestPatternSamplingBatchMatchesScalar(t *testing.T) {
	o := testOracle()
	cube, _ := sop.NewCube(sop.Literal{Var: 2, Neg: false})
	for _, tc := range []struct {
		name string
		cube sop.Cube
		r    int
	}{
		{"free-64", nil, 64},
		{"free-odd", nil, 257},
		{"cube-100", cube, 100},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fast := PatternSampling(o, 0, tc.cube, Config{R: tc.r}, rand.New(rand.NewSource(7)))
			slow := PatternSampling(oracle.ScalarOnly(o), 0, tc.cube, Config{R: tc.r}, rand.New(rand.NewSource(7)))
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("batch %+v\nscalar %+v", fast, slow)
			}
		})
	}
}
