package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The ratchet only moves one way: counts at or under the baseline pass,
// anything over — or any analyzer missing from the file — fails.
func TestRatchet(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")

	counts := map[string]int{"locksafe": 2, "goleak": 0}
	if rc := ratchet(path, counts, true); rc != 0 {
		t.Fatalf("write-baseline exit = %d, want 0", rc)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("written baseline is not valid JSON: %v", err)
	}
	if base.Analyzers["locksafe"] != 2 || base.Analyzers["goleak"] != 0 {
		t.Fatalf("written baseline = %v, want locksafe:2 goleak:0", base.Analyzers)
	}

	cases := []struct {
		name   string
		counts map[string]int
		want   int
	}{
		{"at the floor", map[string]int{"locksafe": 2, "goleak": 0}, 0},
		{"improved", map[string]int{"locksafe": 1, "goleak": 0}, 0},
		{"regressed", map[string]int{"locksafe": 3, "goleak": 0}, 2},
		{"new analyzer with findings", map[string]int{"locksafe": 2, "goleak": 0, "randtaint": 1}, 2},
		{"new analyzer clean", map[string]int{"locksafe": 2, "goleak": 0, "randtaint": 0}, 0},
		// A baseline key naming no registered analyzer is stale: the
		// floor it records can never be checked again, so it fails loud.
		{"stale baseline key", map[string]int{"locksafe": 2}, 2},
	}
	for _, tc := range cases {
		if rc := ratchet(path, tc.counts, false); rc != tc.want {
			t.Errorf("%s: ratchet exit = %d, want %d", tc.name, rc, tc.want)
		}
	}

	if rc := ratchet(filepath.Join(dir, "missing.json"), counts, false); rc != 1 {
		t.Error("missing baseline file should be a hard error, not a pass")
	}
}
