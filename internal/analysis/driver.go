package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// The standalone driver: locate packages and compiler export data with
// `go list -export -deps -json`, type-check each target package from source
// against that export data, and run the analyzers. This is what
// `repolint ./...` does when invoked directly (the vet-tool protocol in
// unitchecker.go is the other entry point, where the go command supplies
// the same information through a vet.cfg file).

// A Unit is one package ready for analysis.
type Unit struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, production files only
	// Imports are the direct import paths, the edges of the dependency
	// DAG the parallel driver schedules over.
	Imports []string

	pkgs map[string]*listedPackage // full dependency closure, shared
	res  *exportResolver           // lazy export-data index, shared
}

// listedPackage is the subset of `go list -json` output the driver reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string // absolute after LoadPackages
	Imports    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages runs `go list` in dir and returns one Unit per matched
// package, plus the shared dependency closure. Export data is NOT resolved
// here: the -export flag is what makes go list slow (it has to ensure
// compiled export files exist for the whole closure), and a warm cached run
// never type-checks anything, so the export index is resolved lazily on the
// first cache miss instead (exportResolver).
func LoadPackages(dir string, patterns ...string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,DepOnly,Standard,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	pkgs := make(map[string]*listedPackage)
	res := &exportResolver{dir: dir, patterns: patterns}
	var units []*Unit
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		for i, f := range p.GoFiles {
			if !filepath.IsAbs(f) {
				p.GoFiles[i] = filepath.Join(p.Dir, f)
			}
		}
		pkgs[p.ImportPath] = p
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		units = append(units, &Unit{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			GoFiles:    p.GoFiles,
			Imports:    p.Imports,
			pkgs:       pkgs,
			res:        res,
		})
	}
	return units, nil
}

// An exportResolver materializes the import-path -> export-data index on
// first use, so runs that replay everything from the analysis cache never
// pay for `go list -export` over the dependency closure.
type exportResolver struct {
	dir      string
	patterns []string

	once  sync.Once
	files map[string]string
	err   error
}

// resolve runs `go list -export` once and returns the export index.
func (r *exportResolver) resolve() (map[string]string, error) {
	r.once.Do(func() {
		args := append([]string{"list", "-e", "-export", "-deps",
			"-json=ImportPath,Export"}, r.patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = r.dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			r.err = fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
			return
		}
		r.files = make(map[string]string)
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listedPackage
			if err := dec.Decode(&p); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				r.err = fmt.Errorf("go list -export output: %v", err)
				return
			}
			if p.Export != "" {
				r.files[p.ImportPath] = p.Export
			}
		}
	})
	return r.files, r.err
}

// lookup is the exportLookup view of the resolver.
func (r *exportResolver) lookup(path string) (string, bool) {
	files, err := r.resolve()
	if err != nil {
		return "", false
	}
	file, ok := files[path]
	return file, ok
}

// ExportIndex returns the import-path -> export-data map covering the
// pattern's full dependency closure, for callers that type-check sources
// outside any listed package (the analyzer test fixtures).
func ExportIndex(dir string, patterns ...string) (map[string]string, error) {
	units, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}
	return units[0].res.resolve()
}

// An exportLookup resolves an import path to its compiler export data file.
type exportLookup func(path string) (string, bool)

// exportImporter resolves imports from compiler export data files.
func exportImporter(fset *token.FileSet, exports exportLookup, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// A Driver runs analyzers over a set of units in dependency order,
// fanning independent units out across goroutines and replaying cached
// results for units whose inputs are unchanged. Output is deterministic
// regardless of schedule: results come back sorted by import path, each
// unit's diagnostics sorted by SortDiagnostics, and the facts a unit sees
// depend only on its dependency closure (complete before it starts), never
// on sibling timing.
type Driver struct {
	Analyzers []*Analyzer
	// Parallel bounds concurrently-analyzed units; values < 1 mean
	// sequential. Scheduling stays topological either way.
	Parallel int
	// Cache, when non-nil, short-circuits units whose cache key matches
	// a stored entry.
	Cache *Cache
	// Version participates in every cache key; it defaults to the
	// repolint version constant and exists as a field so tests can force
	// invalidation.
	Version string
}

// A UnitResult is one unit's outcome.
type UnitResult struct {
	Unit   *Unit
	Diags  []Diagnostic
	Cached bool // replayed from the cache, nothing parsed or type-checked
	Err    error
}

// RunStats summarizes one Driver.Run.
type RunStats struct {
	Units  int
	Cached int
	Failed int
}

// Run analyzes the units, returning one result per unit sorted by import
// path. Per-unit failures are recorded in the result, not returned: a
// broken package must not hide its siblings' findings.
func (d *Driver) Run(units []*Unit) ([]UnitResult, RunStats, error) {
	reg, err := NewFactRegistry(d.Analyzers)
	if err != nil {
		return nil, RunStats{}, err
	}
	version := d.Version
	if version == "" {
		version = Version
	}

	sorted := make([]*Unit, len(units))
	copy(sorted, units)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })

	byPath := make(map[string]int, len(sorted))
	for i, u := range sorted {
		byPath[u.ImportPath] = i
	}
	done := make([]chan struct{}, len(sorted))
	for i := range done {
		done[i] = make(chan struct{})
	}

	// Facts, cache keys, and transitive fact hashes, published under mu as
	// units finish. A unit only ever reads entries for its dependency
	// closure, which the done-channel waits guarantee are complete.
	var mu sync.Mutex
	facts := make(map[string]*PackageFacts)
	factHash := make(map[string]string)
	keys := make(map[string]string)
	reader := FactReader(func(path string) *PackageFacts {
		mu.Lock()
		defer mu.Unlock()
		return facts[path]
	})

	width := d.Parallel
	if width < 1 {
		width = 1
	}
	sem := make(chan struct{}, width)
	fhc := newFileHashCache()
	srcMemo := &srcHashMemo{m: make(map[string]string)}

	results := make([]UnitResult, len(sorted))
	var wg sync.WaitGroup
	for i, u := range sorted {
		wg.Add(1)
		go func(i int, u *Unit) {
			defer wg.Done()
			defer close(done[i])
			for _, imp := range u.Imports {
				if j, ok := byPath[imp]; ok {
					<-done[j]
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()

			depState := func(path string) (key, fh string, ok bool) {
				mu.Lock()
				defer mu.Unlock()
				key, ok1 := keys[path]
				fh, ok2 := factHash[path]
				return key, fh, ok1 && ok2
			}
			diags, blob, key, cached, err := d.runUnit(u, reg, version, reader, depState, fhc, srcMemo)
			pf, decErr := DecodePackageFacts(blob, reg)
			if err == nil && decErr != nil {
				err = decErr
			}
			if pf == nil {
				pf = NewPackageFacts(u.ImportPath)
			}

			// The transitive fact hash: this unit's blob plus every
			// direct dep's hash, so any fact change anywhere below
			// reaches every dependent's cache key.
			h := newHasher()
			h.Add("facts", blob)
			for _, imp := range sortedImports(u) {
				mu.Lock()
				dep := factHash[imp]
				mu.Unlock()
				h.AddString("dep "+imp, dep)
			}

			mu.Lock()
			facts[u.ImportPath] = pf
			factHash[u.ImportPath] = h.Sum()
			keys[u.ImportPath] = key
			mu.Unlock()
			results[i] = UnitResult{Unit: u, Diags: diags, Cached: cached, Err: err}
		}(i, u)
	}
	wg.Wait()

	stats := RunStats{Units: len(sorted)}
	for _, r := range results {
		if r.Cached {
			stats.Cached++
		}
		if r.Err != nil {
			stats.Failed++
		}
	}
	return results, stats, nil
}

// runUnit analyzes one unit (or replays it from the cache), returning its
// diagnostics, encoded fact blob, and cache key. depState resolves a
// completed dependency unit's published cache key and transitive fact hash.
func (d *Driver) runUnit(u *Unit, reg FactRegistry, version string, reader FactReader,
	depState func(string) (string, string, bool), fhc *fileHashCache,
	srcMemo *srcHashMemo) (diags []Diagnostic, blob []byte, key string, cached bool, err error) {
	key, keyErr := d.cacheKey(u, version, depState, fhc, srcMemo)
	if d.Cache != nil && keyErr == nil {
		if e, ok := d.Cache.get(key); ok {
			return e.Diagnostics, e.Facts, key, true, nil
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range u.GoFiles {
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return nil, nil, key, false, perr
		}
		files = append(files, f)
	}
	diags, exported, err := checkFiles(fset, files, u.ImportPath, u.res.lookup, nil, d.Analyzers, reader)
	if err != nil {
		return nil, nil, key, false, err
	}
	blob, err = exported.Encode()
	if err != nil {
		return nil, nil, key, false, err
	}
	if d.Cache != nil && keyErr == nil {
		if diags == nil {
			diags = []Diagnostic{} // encode as [], so replay round-trips
		}
		d.Cache.put(key, &cacheEntry{ImportPath: u.ImportPath, Diagnostics: diags, Facts: blob})
	}
	return diags, blob, key, false, nil
}

// cacheKey computes the unit's content hash; see the Cache doc comment for
// the fields. Dependency state comes from the published maps, so this must
// only run after the unit's dependencies have completed.
//
// Dependencies contribute in one of three ways:
//   - another unit in this run: its published cache key (which transitively
//     covers its own sources and dependencies) plus its transitive fact hash;
//   - a non-standard package outside the run (narrow patterns, module
//     cache): a recursive hash over its sources (depSourceHash);
//   - a standard-library package: nothing beyond the import path — the
//     toolchain stamp pins its content.
//
// Export data never has to be consulted, which is what lets a fully-warm
// run skip `go list -export` entirely.
func (d *Driver) cacheKey(u *Unit, version string, depState func(string) (string, string, bool),
	fhc *fileHashCache, srcMemo *srcHashMemo) (string, error) {
	h := newHasher()
	h.AddString("version", version)
	h.AddString("toolchain", runtime.Version())
	h.AddString("platform", runtime.GOOS+"/"+runtime.GOARCH)
	for _, a := range d.Analyzers {
		h.AddString("analyzer", a.Name)
		for _, f := range a.FactTypes {
			h.AddString("fact", factName(f))
		}
	}
	h.AddString("package", u.ImportPath)
	for _, path := range u.GoFiles {
		sum, err := fhc.hash(path)
		if err != nil {
			return "", err
		}
		h.AddString("src "+filepath.Base(path), sum)
	}
	for _, imp := range sortedImports(u) {
		if key, fh, ok := depState(imp); ok {
			h.AddString("depkey "+imp, key)
			h.AddString("depfacts "+imp, fh)
			continue
		}
		sum, err := depSourceHash(imp, u.pkgs, fhc, srcMemo)
		if err != nil {
			return "", err
		}
		if sum != "" {
			h.AddString("depsrc "+imp, sum)
		}
	}
	return h.Sum(), nil
}

// srcHashMemo caches depSourceHash results for one driver run.
type srcHashMemo struct {
	mu sync.Mutex
	m  map[string]string
}

// depSourceHash recursively hashes the sources of a non-standard dependency
// that is not analyzed as a unit in this run, covering its own files and
// those of its non-standard imports. Standard-library packages hash to ""
// (the toolchain stamp in the cache key pins them).
func depSourceHash(path string, pkgs map[string]*listedPackage, fhc *fileHashCache,
	memo *srcHashMemo) (string, error) {
	p := pkgs[path]
	if p == nil || p.Standard {
		return "", nil
	}
	memo.mu.Lock()
	sum, ok := memo.m[path]
	memo.mu.Unlock()
	if ok {
		return sum, nil
	}

	h := newHasher()
	h.AddString("path", path)
	for _, f := range p.GoFiles {
		fsum, err := fhc.hash(f)
		if err != nil {
			return "", err
		}
		h.AddString("src "+filepath.Base(f), fsum)
	}
	imps := make([]string, len(p.Imports))
	copy(imps, p.Imports)
	sort.Strings(imps)
	for _, imp := range imps {
		sub, err := depSourceHash(imp, pkgs, fhc, memo)
		if err != nil {
			return "", err
		}
		if sub != "" {
			h.AddString("dep "+imp, sub)
		}
	}
	sum = h.Sum()

	memo.mu.Lock()
	memo.m[path] = sum
	memo.mu.Unlock()
	return sum, nil
}

// sortedImports returns the unit's direct imports in stable order.
func sortedImports(u *Unit) []string {
	imps := make([]string, len(u.Imports))
	copy(imps, u.Imports)
	sort.Strings(imps)
	return imps
}

// Analyze type-checks the unit and runs every analyzer over its production
// files, returning diagnostics sorted by position.
func (u *Unit) Analyze(analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range u.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	diags, _, err := checkFiles(fset, files, u.ImportPath, u.res.lookup, nil, analyzers, nil)
	return diags, err
}

// CheckFiles type-checks an already-parsed file set as one package (against
// the given export-data index, with importMap translating source import
// paths when the vet config supplies one) and runs the analyzers without
// cross-package facts. Files named *_test.go are type-checked but not
// analyzed.
func CheckFiles(fset *token.FileSet, files []*ast.File, importPath string,
	exports, importMap map[string]string, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := CheckFilesWithFacts(fset, files, importPath, exports, importMap, analyzers, nil)
	return diags, err
}

// CheckFilesWithFacts is CheckFiles with the facts mechanism wired in:
// imported resolves dependency fact sets (nil for none), and the returned
// PackageFacts carries whatever the analyzers exported for this package.
func CheckFilesWithFacts(fset *token.FileSet, files []*ast.File, importPath string,
	exports, importMap map[string]string, analyzers []*Analyzer,
	imported FactReader) ([]Diagnostic, *PackageFacts, error) {
	lookup := func(path string) (string, bool) {
		file, ok := exports[path]
		return file, ok
	}
	return checkFiles(fset, files, importPath, lookup, importMap, analyzers, imported)
}

// checkFiles is the shared core of CheckFiles/CheckFilesWithFacts and the
// driver: type-check against lazily-resolved export data, run the
// analyzers, collect diagnostics and exported facts.
func checkFiles(fset *token.FileSet, files []*ast.File, importPath string,
	exports exportLookup, importMap map[string]string, analyzers []*Analyzer,
	imported FactReader) ([]Diagnostic, *PackageFacts, error) {

	conf := types.Config{
		Importer: exportImporter(fset, exports, importMap),
		Error:    func(error) {}, // collect the first error from Check itself
	}
	info := newInfo()
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}

	var analyzed []*ast.File
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		analyzed = append(analyzed, f)
	}

	exported := NewPackageFacts(importPath)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     analyzed,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
			readFacts: imported,
			exported:  exported,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s on %s: %v", a.Name, importPath, err)
		}
	}
	SortDiagnostics(diags)
	return diags, exported, nil
}

// SortDiagnostics orders diags by position, breaking position ties by
// analyzer name and then message so multi-analyzer output at one line is
// deterministic across runs and schedules.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}
