package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The standalone driver: locate packages and compiler export data with
// `go list -export -deps -json`, type-check each target package from source
// against that export data, and run the analyzers. This is what
// `repolint ./...` does when invoked directly (the vet-tool protocol in
// unitchecker.go is the other entry point, where the go command supplies
// the same information through a vet.cfg file).

// A Unit is one package ready for analysis.
type Unit struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, production files only

	exports map[string]string // import path -> export data file, shared
}

// listedPackage is the subset of `go list -json` output the driver reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages runs `go list` in dir and returns one Unit per matched
// package, plus the shared export-data index covering every dependency.
func LoadPackages(dir string, patterns ...string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var units []*Unit
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		u := &Unit{ImportPath: p.ImportPath, Dir: p.Dir, exports: exports}
		for _, f := range p.GoFiles {
			if !filepath.IsAbs(f) {
				f = filepath.Join(p.Dir, f)
			}
			u.GoFiles = append(u.GoFiles, f)
		}
		units = append(units, u)
	}
	return units, nil
}

// ExportIndex returns the import-path -> export-data map covering the
// pattern's full dependency closure, for callers that type-check sources
// outside any listed package (the analyzer test fixtures).
func ExportIndex(dir string, patterns ...string) (map[string]string, error) {
	units, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}
	return units[0].exports, nil
}

// exportImporter resolves imports from compiler export data files.
func exportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Analyze type-checks the unit and runs every analyzer over its production
// files, returning diagnostics sorted by position.
func (u *Unit) Analyze(analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range u.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return CheckFiles(fset, files, u.ImportPath, u.exports, nil, analyzers)
}

// CheckFiles type-checks an already-parsed file set as one package (against
// the given export-data index, with importMap translating source import
// paths when the vet config supplies one) and runs the analyzers. Files
// named *_test.go are type-checked but not analyzed.
func CheckFiles(fset *token.FileSet, files []*ast.File, importPath string,
	exports, importMap map[string]string, analyzers []*Analyzer) ([]Diagnostic, error) {

	conf := types.Config{
		Importer: exportImporter(fset, exports, importMap),
		Error:    func(error) {}, // collect the first error from Check itself
	}
	info := newInfo()
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}

	var analyzed []*ast.File
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		analyzed = append(analyzed, f)
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     analyzed,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, importPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}
