// Package analysis is a self-contained static-analysis framework for
// repo-specific Go source rules — the second verification layer next to the
// circuit-IR checks in internal/check.
//
// It mirrors the golang.org/x/tools/go/analysis API surface this repo needs
// (Analyzer, Pass, Diagnostic) without the dependency: the container this
// repo builds in has no module proxy access, so the framework is built on
// the standard library only. Type information comes from compiler export
// data located via `go list -export` (driver.go); the `go vet -vettool`
// integration speaks the vet unit-checker protocol (unitchecker.go), so the
// analyzers run under the stock go tool in CI:
//
//	go build -o repolint ./cmd/repolint
//	go vet -vettool=$PWD/repolint ./...
//
// The analyzers themselves live in internal/analysis/analyzers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named source rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description of what it reports.
	Doc string
	// Run inspects a package and reports findings through the pass.
	Run func(*Pass) error
	// FactTypes declares the cross-package fact types the analyzer
	// exports or imports (pointer prototypes; see facts.go). An analyzer
	// with fact types also runs on dependency-only units so its
	// summaries reach dependents.
	FactTypes []Fact
}

// A Pass presents one package to one analyzer.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the package.
	Fset *token.FileSet
	// Files holds the syntax trees to inspect. Test files are excluded:
	// the rules encode production-code contracts (batching, seeding, error
	// handling) that tests routinely and legitimately break.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's findings for Files.
	TypesInfo *types.Info

	report func(Diagnostic)
	// readFacts resolves dependency fact sets; exported collects this
	// package's outgoing facts. Both may be nil for fact-less runs
	// (fixtures, Unit.Analyze): Import finds nothing, Export is a no-op.
	readFacts FactReader
	exported  *PackageFacts
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// newInfo allocates the types.Info maps every analyzer may consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
