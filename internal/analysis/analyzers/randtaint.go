package analyzers

import (
	"go/ast"
	"go/types"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
	"logicregression/internal/analysis/flow"
)

// RandTaint is the flow-sensitive successor of the AST-only SeededRand
// rule: every random generator must be derived from the plumbed seed. It
// taints clock reads (time.Now and friends), process-global math/rand
// draws, and crypto/rand reads, then tracks the taint through variables
// (with strong updates, so overwriting a clock value with the plumbed seed
// is clean), struct fields, function returns (bottom-up summaries over the
// package call graph), and closures. A tainted value reaching a
// rand.NewSource / rand.New / rand/v2 seed position breaks the
// byte-identical fixed-seed guarantee and is reported.
var RandTaint = &analysis.Analyzer{
	Name: "randtaint",
	Doc: "flags rand sources seeded from the clock or the process-global " +
		"generator, tracking the seed value through variables, fields, " +
		"returns, and closures; all randomness must flow from the plumbed seed",
	Run: runRandTaint,
}

// randSeedSinks are the math/rand (and v2) constructors whose argument is a
// seed. NewZipf takes an already-built *Rand, so it is not a sink.
var randSeedSinks = map[string]bool{
	"NewSource":  true, // math/rand, math/rand/v2
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// taintSourcePkgs maps package path -> the call names whose results are
// nondeterministic entropy.
func isEntropyCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg := astutil.ImportedPkg(info, sel)
	if pkg == nil {
		return false
	}
	switch pkg.Imported().Path() {
	case "time":
		return sel.Sel.Name == "Now"
	case "math/rand", "math/rand/v2":
		// Package-level draws come from the process-global source; the
		// constructors are handled as sinks, not sources.
		return !sourceConstructors[sel.Sel.Name] && !randSeedSinks[sel.Sel.Name]
	case "crypto/rand":
		return true
	}
	return false
}

func runRandTaint(pass *analysis.Pass) error {
	info := pass.TypesInfo
	graph := flow.BuildCallGraph(pass.Files, info)

	// Package-level fixpoint: function summaries ("returns entropy") and
	// entropy-tainted objects (package vars, struct fields written from a
	// tainted value anywhere) feed back into every function until stable.
	returnsEntropy := make(map[*types.Func]bool)
	taintedObjs := make(map[types.Object]bool)

	spec := func() *flow.TaintSpec {
		return &flow.TaintSpec{
			Info:  info,
			Entry: taintedObjs,
			Source: func(e ast.Expr) bool {
				call, ok := e.(*ast.CallExpr)
				return ok && isEntropyCall(info, call)
			},
			CallTaint: func(call *ast.CallExpr, argTainted bool) bool {
				if fn := astutil.CalleeFunc(info, call); fn != nil && returnsEntropy[fn] {
					return true
				}
				// Default: taint flows through arguments and receivers
				// (covers t.UnixNano() on a tainted time, conversions,
				// and is the conservative choice at indirect calls).
				return argTainted
			},
		}
	}

	// analyzeBody solves one function body (or closure), records new
	// summary facts, and optionally reports sink hits.
	var analyzeBody func(fn *types.Func, body *ast.BlockStmt, report bool) bool
	analyzeBody = func(fn *types.Func, body *ast.BlockStmt, report bool) bool {
		changed := false
		sp := spec()
		g := flow.New(body, info)
		sol := flow.RunTaint(g, sp)
		flow.NodeTaintStates(g, sp, sol, func(n ast.Node, s flow.TaintState) {
			// Record entropy escaping into fields and package variables
			// (weak, package-global facts).
			recordEscapes(info, sp, n, s, taintedObjs, &changed)
			if !report {
				return
			}
			ast.Inspect(n, func(x ast.Node) bool {
				if _, isLit := x.(*ast.FuncLit); isLit {
					return false // closures are analyzed separately
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sinkCall(pass, sp, call, s)
				return true
			})
		})
		// Summary: does any return statement yield a tainted value?
		if fn != nil && !returnsEntropy[fn] {
			tainted := false
			flow.NodeTaintStates(g, sp, sol, func(n ast.Node, s flow.TaintState) {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return
				}
				for _, r := range ret.Results {
					if sp.ExprTaint(r, s) {
						tainted = true
					}
				}
			})
			if tainted {
				returnsEntropy[fn] = true
				changed = true
			}
		}
		// Closures: entry state already includes taintedObjs; captured
		// locals are visible because taint states use the same objects.
		// Seed each literal with the join of the enclosing function's
		// tainted locals so captures stay tainted inside.
		for _, lit := range flow.FuncLits(body) {
			outer := make(map[types.Object]bool, len(taintedObjs))
			for o := range taintedObjs {
				outer[o] = true
			}
			for _, st := range sol.Out {
				for o := range st {
					outer[o] = true
				}
			}
			saved := taintedObjs
			taintedObjs = outer
			if analyzeBody(nil, lit.Body, report) {
				changed = true
			}
			// Keep any newly discovered package-level facts (struct fields
			// have no parent scope; package vars live in the package
			// scope), drop the capture-seeded locals.
			for o := range taintedObjs {
				if saved[o] || isPackageFact(o) {
					saved[o] = true
				}
			}
			taintedObjs = saved
		}
		return changed
	}

	// Iterate summaries to a fixed point, silently; then one reporting run.
	for rounds := 0; rounds < len(graph.Order)+2; rounds++ {
		changed := false
		for _, n := range graph.Order {
			if analyzeBody(n.Fn, n.Decl.Body, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range graph.Order {
		analyzeBody(n.Fn, n.Decl.Body, true)
	}
	return nil
}

// recordEscapes adds field/package-variable objects assigned a tainted
// value to the package-global tainted set.
func recordEscapes(info *types.Info, sp *flow.TaintSpec, n ast.Node,
	s flow.TaintState, global map[types.Object]bool, changed *bool) {

	assign, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	mark := func(obj types.Object) {
		if obj != nil && !global[obj] {
			global[obj] = true
			*changed = true
		}
	}
	for i, lhs := range assign.Lhs {
		var rhs ast.Expr
		switch {
		case i < len(assign.Rhs) && len(assign.Lhs) == len(assign.Rhs):
			rhs = assign.Rhs[i]
		case len(assign.Rhs) == 1:
			rhs = assign.Rhs[0]
		default:
			continue
		}
		if !sp.ExprTaint(rhs, s) {
			continue
		}
		switch lhs := lhs.(type) {
		case *ast.SelectorExpr:
			if sel := info.Selections[lhs]; sel != nil {
				mark(sel.Obj())
			}
		case *ast.Ident:
			if obj := astutil.ObjectOf(info, lhs); obj != nil && isPackageFact(obj) {
				mark(obj)
			}
		}
	}
}

// isPackageFact reports whether taint on obj is a package-level fact worth
// carrying across functions: struct fields (no parent scope) and
// package-scope variables, but not function locals.
func isPackageFact(o types.Object) bool {
	if o.Parent() == nil {
		return true // struct field
	}
	return o.Pkg() != nil && o.Parent() == o.Pkg().Scope()
}

// sinkCall reports a rand constructor whose seed argument is tainted.
func sinkCall(pass *analysis.Pass, sp *flow.TaintSpec, call *ast.CallExpr, s flow.TaintState) {
	sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg := astutil.ImportedPkg(pass.TypesInfo, sel)
	if pkg == nil {
		return
	}
	switch pkg.Imported().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return
	}
	if !randSeedSinks[sel.Sel.Name] {
		return
	}
	for _, arg := range call.Args {
		if sp.ExprTaint(arg, s) {
			pass.Reportf(call.Pos(),
				"rand source seeded from the clock or another nondeterministic value; "+
					"derive the seed from the plumbed -seed so fixed-seed runs stay byte-identical")
			return
		}
	}
}
