package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"

	"logicregression/internal/analysis"
)

// The fixtures under testdata/src/<analyzer>/ follow the x/tools
// analysistest convention: a `// want "substring"` comment on a line means
// the analyzer must report on that line with a message containing the
// substring, and every report must be announced by such a comment. bad.go
// exercises each way the rule fires; fixed.go shows the repaired code and
// must be silent.

var exportsOnce = sync.OnceValues(func() (map[string]string, error) {
	// Repo root relative to this package; the index covers the full
	// dependency closure (internal packages, math/rand, io, ...) so the
	// fixtures type-check against real export data.
	return analysis.ExportIndex("../../..", "logicregression/...")
})

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

func runFixture(t *testing.T, a *analysis.Analyzer, importPath string) {
	t.Helper()
	exports, err := exportsOnce()
	if err != nil {
		t.Fatalf("export index: %v", err)
	}
	paths, err := filepath.Glob(filepath.Join("testdata", "src", a.Name, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixtures for %s: %v", a.Name, err)
	}

	fset := token.NewFileSet()
	type expectation struct {
		substr  string
		matched bool
	}
	want := make(map[string]*expectation) // "file:line" -> expectation
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				want[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = &expectation{substr: m[1]}
			}
		}
	}

	diags, err := analysis.CheckFiles(fset, files, importPath, exports, nil,
		[]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("CheckFiles: %v", err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		exp, ok := want[key]
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		if !regexp.MustCompile(regexp.QuoteMeta(exp.substr)).MatchString(d.Message) {
			t.Errorf("%s: got %q, want message containing %q", key, d.Message, exp.substr)
		}
		exp.matched = true
	}
	for key, exp := range want {
		if !exp.matched {
			t.Errorf("%s: expected diagnostic containing %q, got none", key, exp.substr)
		}
	}
}

func TestScalarEvalFixture(t *testing.T) {
	// The import path must end in a batch-capable suffix or the analyzer
	// skips the package entirely.
	runFixture(t, ScalarEval, "logicregression/internal/support")
}

func TestScalarEvalSkipsOtherPackages(t *testing.T) {
	exports, err := exportsOnce()
	if err != nil {
		t.Fatalf("export index: %v", err)
	}
	fset := token.NewFileSet()
	path := filepath.Join("testdata", "src", "scalareval", "bad.go")
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.CheckFiles(fset, []*ast.File{f}, "example.com/notbatch",
		exports, nil, []*analysis.Analyzer{ScalarEval})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("scalareval fired in a non-batch-capable package: %v", diags)
	}
}

func TestSeededRandFixture(t *testing.T) {
	runFixture(t, SeededRand, "logicregression/fixture/seededrand")
}

func TestOrphanErrFixture(t *testing.T) {
	runFixture(t, OrphanErr, "logicregression/fixture/orphanerr")
}

func TestErrCompareFixture(t *testing.T) {
	runFixture(t, ErrCompare, "logicregression/fixture/errcompare")
}

func TestNoDeadlineFixture(t *testing.T) {
	runFixture(t, NoDeadline, "logicregression/fixture/nodeadline")
}

func TestRandTaintFixture(t *testing.T) {
	runFixture(t, RandTaint, "logicregression/fixture/randtaint")
}

func TestLockSafeFixture(t *testing.T) {
	runFixture(t, LockSafe, "logicregression/fixture/locksafe")
}

func TestPanicBridgeFixture(t *testing.T) {
	// The contract is gated to the learner-oracle boundary; the fixture
	// type-checks under a core import path to be inside the gate.
	runFixture(t, PanicBridge, "logicregression/internal/core")
}

func TestPanicBridgeSkipsOtherPackages(t *testing.T) {
	exports, err := exportsOnce()
	if err != nil {
		t.Fatalf("export index: %v", err)
	}
	fset := token.NewFileSet()
	path := filepath.Join("testdata", "src", "panicbridge", "bad.go")
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.CheckFiles(fset, []*ast.File{f}, "example.com/elsewhere",
		exports, nil, []*analysis.Analyzer{PanicBridge})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("panicbridge fired outside internal/core and internal/oracle: %v", diags)
	}
}

func TestGoLeakFixture(t *testing.T) {
	runFixture(t, GoLeak, "logicregression/fixture/goleak")
}

func TestAtomicSafeFixture(t *testing.T) {
	runFixture(t, AtomicSafe, "logicregression/fixture/atomicsafe")
}

func TestChanFlowFixture(t *testing.T) {
	runFixture(t, ChanFlow, "logicregression/fixture/chanflow")
}

func TestCtxCancelFixture(t *testing.T) {
	runFixture(t, CtxCancel, "logicregression/fixture/ctxcancel")
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, HotAlloc, "logicregression/fixture/hotalloc")
}

func TestMapDetFixture(t *testing.T) {
	runFixture(t, MapDet, "logicregression/fixture/mapdet")
}

func TestShiftRangeFixture(t *testing.T) {
	// The index rule is gated to the bit-kernel packages; the fixture
	// type-checks under the bitvec import path to be inside the gate.
	runFixture(t, ShiftRange, "logicregression/internal/bitvec")
}

func TestShiftRangeIndexRuleGated(t *testing.T) {
	// Outside the bit-kernel packages only the shift rule applies, so the
	// index findings in bad.go must disappear while the shift findings
	// stay.
	exports, err := exportsOnce()
	if err != nil {
		t.Fatalf("export index: %v", err)
	}
	fset := token.NewFileSet()
	path := filepath.Join("testdata", "src", "shiftrange", "bad.go")
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.CheckFiles(fset, []*ast.File{f}, "example.com/elsewhere",
		exports, nil, []*analysis.Analyzer{ShiftRange})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "in bounds") {
			t.Errorf("index rule fired outside the bit-kernel packages: %s", d.Message)
		}
	}
	if len(diags) == 0 {
		t.Error("shift rule should still fire outside the bit-kernel packages")
	}
}

func TestNilFlowFixture(t *testing.T) {
	runFixture(t, NilFlow, "logicregression/fixture/nilflow")
}

func TestDeadBranchFixture(t *testing.T) {
	runFixture(t, DeadBranch, "logicregression/fixture/deadbranch")
}

// TestRepoIsClean runs every analyzer over the whole module through the
// parallel facts-aware driver: the rules the analyzers encode are supposed
// to hold in production code right now, including the cross-package ones.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and analyzes the full module")
	}
	units, err := analysis.LoadPackages("../../..", "logicregression/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	d := &analysis.Driver{Analyzers: All(), Parallel: runtime.NumCPU()}
	results, stats, err := d.Run(units)
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	if stats.Failed != 0 {
		t.Errorf("%d units failed to analyze", stats.Failed)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Unit.ImportPath, r.Err)
		}
		for _, d := range r.Diags {
			t.Errorf("%s", d)
		}
	}
}

// TestHotAllocExportsFactsOnRealCode pins the cross-package side of the
// hot-path contract: analyzing internal/bitvec (all hot-path leaf code)
// must yield AllocFree facts on its exported API, or callers in other
// packages would have nothing to import.
func TestHotAllocExportsFactsOnRealCode(t *testing.T) {
	exports, err := exportsOnce()
	if err != nil {
		t.Fatalf("export index: %v", err)
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "bitvec", "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no bitvec sources: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		if strings.HasSuffix(p, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	_, facts, err := analysis.CheckFilesWithFacts(fset, files,
		"logicregression/internal/bitvec", exports, nil,
		[]*analysis.Analyzer{HotAlloc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if facts.Len() == 0 {
		t.Fatal("hotalloc exported no facts for internal/bitvec")
	}
	blob, err := facts.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"AllocFree"`) {
		t.Errorf("facts blob carries no AllocFree entries:\n%s", blob)
	}
}
