// Package analyzers holds the repo-specific source rules run by
// cmd/repolint (standalone or as a `go vet -vettool`). Each analyzer
// encodes a contract the learning pipeline depends on but the compiler
// cannot see:
//
//	scalareval  batch-capable packages must not query the oracle one
//	            pattern at a time inside loops (query-count and speed)
//	seededrand  all randomness must flow from the plumbed seed
//	            (byte-identical reruns at a fixed seed)
//	orphanerr   netlist IO errors must not be dropped (a silently
//	            truncated circuit corrupts everything downstream)
//	errcompare  errors are matched with errors.Is, never == / != against
//	            sentinels (%w wrapping breaks identity checks)
//	nodeadline  network I/O must be time-bounded: net.DialTimeout over
//	            net.Dial, Set*Deadline before raw conn reads/writes (a
//	            silent remote black box must not pin a goroutine)
package analyzers

import (
	"go/ast"
	"go/types"

	"logicregression/internal/analysis"
)

// All returns every repo analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{ScalarEval, SeededRand, OrphanErr, ErrCompare, NoDeadline}
}

// unparen strips any parentheses around e.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the function or method a call statically invokes,
// or nil for indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
