// Package analyzers holds the repo-specific source rules run by
// cmd/repolint (standalone or as a `go vet -vettool`). Each analyzer
// encodes a contract the learning pipeline depends on but the compiler
// cannot see:
//
//	scalareval  batch-capable packages must not query the oracle one
//	            pattern at a time inside loops (query-count and speed)
//	seededrand  all randomness must flow from the plumbed seed
//	            (byte-identical reruns at a fixed seed)
//	orphanerr   netlist IO errors must not be dropped (a silently
//	            truncated circuit corrupts everything downstream)
//	errcompare  errors are matched with errors.Is, never == / != against
//	            sentinels (%w wrapping breaks identity checks)
//	nodeadline  network I/O must be time-bounded: net.DialTimeout over
//	            net.Dial, Set*Deadline before raw conn reads/writes (a
//	            silent remote black box must not pin a goroutine)
//	randtaint   flow-sensitive: no rand source may be seeded from the
//	            clock or the process-global generator, tracked through
//	            variables, fields, returns, and closures
//	locksafe    flow-sensitive: every Lock/TryLock acquisition is released
//	            on all exit paths (including panic edges); locks are never
//	            copied by value
//	panicbridge flow-sensitive: in internal/core and internal/oracle only
//	            *oracle.Failure errors may panic on oracle-reachable
//	            paths, and recover results are type-checked
//	goleak      every go statement has a completion witness in scope
//	            (WaitGroup.Done, done-channel send/close, context)
//
// The flow-sensitive rules run on internal/analysis/flow (CFGs, a forward
// lattice solver, and bottom-up call-graph summaries); see DESIGN.md §10.
package analyzers

import (
	"logicregression/internal/analysis"
)

// All returns every repo analyzer, in stable order. The first group are
// cheap AST matchers; the second group (randtaint, locksafe, panicbridge,
// goleak) are flow-sensitive rules built on internal/analysis/flow.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ScalarEval, SeededRand, OrphanErr, ErrCompare, NoDeadline,
		RandTaint, LockSafe, PanicBridge, GoLeak,
	}
}
