// Package analyzers holds the repo-specific source rules run by
// cmd/repolint (standalone or as a `go vet -vettool`). Each analyzer
// encodes a contract the learning pipeline depends on but the compiler
// cannot see:
//
//	scalareval  batch-capable packages must not query the oracle one
//	            pattern at a time inside loops (query-count and speed)
//	seededrand  all randomness must flow from the plumbed seed
//	            (byte-identical reruns at a fixed seed)
//	orphanerr   netlist IO errors must not be dropped (a silently
//	            truncated circuit corrupts everything downstream)
//	errcompare  errors are matched with errors.Is, never == / != against
//	            sentinels (%w wrapping breaks identity checks)
//	nodeadline  network I/O must be time-bounded: net.DialTimeout over
//	            net.Dial, Set*Deadline before raw conn reads/writes (a
//	            silent remote black box must not pin a goroutine)
//	randtaint   flow-sensitive: no rand source may be seeded from the
//	            clock or the process-global generator, tracked through
//	            variables, fields, returns, and closures
//	locksafe    flow-sensitive: every Lock/TryLock acquisition is released
//	            on all exit paths (including panic edges); locks are never
//	            copied by value
//	panicbridge flow-sensitive: in internal/core and internal/oracle only
//	            *oracle.Failure errors may panic on oracle-reachable
//	            paths, and recover results are type-checked
//	goleak      every go statement has a completion witness in scope
//	            (WaitGroup.Done, done-channel send/close, context)
//	atomicsafe  a field accessed via sync/atomic anywhere in a package is
//	            accessed atomically everywhere, helpers included, and
//	            64-bit atomic words stay aligned under 32-bit layout
//	chanflow    no send on a possibly-closed channel, no double close, no
//	            blocking send on an unbuffered channel without a select or
//	            cancellation escape
//	ctxcancel   a goroutine handed a context/cancel channel must observe
//	            it on every iteration path of its unconditioned loops
//	hotalloc    //logicreg:hotpath functions are allocation-free on all
//	            non-panic paths (cross-checked against -gcflags=-m)
//	mapdet      range-over-map and select-arrival values must not reach
//	            returned slices, serialized output, or merge positions
//	            without an intervening sort — the determinism contract
//	            the parallel learning core is held to
//	shiftrange  SSA value ranges: hot-path shift amounts are proven < the
//	            word width and bit-kernel slice indexes proven in bounds;
//	            unproven sites are the bounds-check-elimination work-list
//	nilflow     SSA value flow: a call result must not be dereferenced on
//	            a path its paired err != nil check proves may be nil
//	deadbranch  SCCP: branch conditions proven always-true/false hide one
//	            arm from every execution and every test
//
// The flow-sensitive rules run on internal/analysis/flow (CFGs, a forward
// lattice solver, and bottom-up call-graph summaries); see DESIGN.md §10.
// The concurrency/allocation contract rules (atomicsafe, chanflow,
// ctxcancel, hotalloc) additionally use its interprocedural layer
// (field-access classification, cold/cycle blocks, reachability); see
// DESIGN.md §12 for the annotation grammar. Three analyzers — hotalloc,
// panicbridge, and mapdet — additionally export cross-package facts
// (AllocFree, OracleReachable, Unordered) through the framework's facts
// store, so their summaries survive package boundaries; see DESIGN.md §13.
package analyzers

import (
	"logicregression/internal/analysis"
)

// All returns every repo analyzer, in stable order. The first group are
// cheap AST matchers; the second group (randtaint, locksafe, panicbridge,
// goleak) are flow-sensitive rules built on internal/analysis/flow; the
// third group (atomicsafe, chanflow, ctxcancel, hotalloc) are the
// interprocedural concurrency and hot-path allocation contracts; mapdet
// is the cross-package map-order determinism contract; the last group
// (shiftrange, nilflow, deadbranch) are the SSA value-flow rules built on
// internal/analysis/flow/ssa (dominators, SCCP, interval ranges).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ScalarEval, SeededRand, OrphanErr, ErrCompare, NoDeadline,
		RandTaint, LockSafe, PanicBridge, GoLeak,
		AtomicSafe, ChanFlow, CtxCancel, HotAlloc,
		MapDet,
		ShiftRange, NilFlow, DeadBranch,
	}
}
