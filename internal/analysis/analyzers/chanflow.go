package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
	"logicregression/internal/analysis/flow"
	"logicregression/internal/analysis/flow/ssa"
)

// ChanFlow checks channel lifecycle discipline flow-sensitively, per
// function:
//
//   - close of a channel that may already be closed on some path (including
//     a second `defer close(ch)`, or a body close followed by a deferred
//     one) — a double close panics;
//   - send on a channel that may already be closed — panics;
//   - a naked (non-select) send on a channel this function provably made
//     unbuffered, which blocks forever if the receiver is gone. Such sends
//     need a buffer sized to the fan-out, or a select with a cancellation
//     escape.
//
// Closes through same-package helpers (`func stop(ch chan int) { close(ch) }`)
// are resolved by bottom-up summary over the call graph. State is tracked
// per rendered channel expression, like locksafe's lock keys; re-making a
// channel resets its state. The analysis is deliberately function-local
// beyond those summaries: cross-goroutine protocols (a mutex ordering a
// close against sends elsewhere) are out of scope and not flagged.
//
// Branch correlation: a may-be-closed send is suppressed when the
// function's single close site and the send are guarded by dominating
// branch facts the SSA layer proves contradictory (`if stop { close(ch) }`
// ... `if !stop { ch <- v }` on the same unreassigned value) — the two
// can never execute in one run. The suppression is restricted to channels
// with exactly one close site, so the recorded close position is the only
// way the state became closed.
var ChanFlow = &analysis.Analyzer{
	Name: "chanflow",
	Doc: "flags possible double closes, sends on possibly-closed channels, " +
		"and blocking sends on provably unbuffered channels with no select " +
		"or cancellation escape",
	Run: runChanFlow,
}

// closedState maps a channel's rendered expression to the position of the
// earliest close that may have happened on some path here.
type closedState map[string]token.Pos

// chanFinding is one may-be-closed diagnostic: the message, the channel
// key, the close the finding is conditional on, and whether it is a send
// (sends are eligible for branch-correlation suppression).
type chanFinding struct {
	msg      string
	key      string
	closedAt token.Pos
	send     bool
}

// chanLattice instantiates the forward solver for the may-be-closed
// analysis. Findings are accumulated (keyed by position, since Transfer
// may run over a block several times) and reported after the solve.
type chanLattice struct {
	info     *types.Info
	fset     *token.FileSet
	closers  map[*types.Func][]bool
	findings map[token.Pos]chanFinding
}

func (l *chanLattice) Bottom() closedState { return nil }
func (l *chanLattice) Entry() closedState  { return nil }

func (l *chanLattice) Join(a, b closedState) closedState {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(closedState, len(a)+len(b))
	for k, p := range a {
		out[k] = p
	}
	for k, p := range b {
		if q, ok := out[k]; !ok || p < q {
			out[k] = p
		}
	}
	return out
}

func (l *chanLattice) Equal(a, b closedState) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func (l *chanLattice) finding(pos token.Pos, f chanFinding) {
	if _, ok := l.findings[pos]; !ok {
		l.findings[pos] = f
	}
}

func (l *chanLattice) Transfer(b *flow.Block, in closedState) closedState {
	out := l.Join(in, nil)
	if out == nil {
		out = make(closedState)
	}
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.ExprStmt:
			l.applyCall(n.X, out)
		case *ast.SendStmt:
			key := renderExpr(l.fset, n.Chan)
			if pos, closed := out[key]; closed {
				l.finding(n.Arrow, chanFinding{
					msg: "send on " + key + ", which may already be closed (closed at " +
						l.fset.Position(pos).String() + "); a send on a closed channel panics",
					key:      key,
					closedAt: pos,
					send:     true,
				})
			}
		case *ast.AssignStmt:
			// Any rebinding of a channel expression resets its state: a
			// freshly made (or newly assigned) channel is not closed.
			for _, lhs := range n.Lhs {
				delete(out, renderExpr(l.fset, lhs))
			}
		}
	}
	return out
}

// applyCall folds one call into the closed set: the close builtin, or a
// same-package helper summarized as closing one of its channel parameters.
func (l *chanLattice) applyCall(e ast.Expr, out closedState) {
	call, ok := astutil.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if astutil.IsBuiltin(l.info, call, "close") && len(call.Args) == 1 {
		l.close(out, renderExpr(l.fset, call.Args[0]), call.Pos())
		return
	}
	fn := astutil.CalleeFunc(l.info, call)
	closes, ok := l.closers[fn]
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i < len(closes) && closes[i] {
			l.close(out, renderExpr(l.fset, arg), call.Pos())
		}
	}
}

func (l *chanLattice) close(out closedState, key string, pos token.Pos) {
	if prev, closed := out[key]; closed {
		l.finding(pos, chanFinding{
			msg: "close of " + key + ", which may already be closed (closed at " +
				l.fset.Position(prev).String() + "); a double close panics",
			key:      key,
			closedAt: prev,
		})
		return
	}
	out[key] = pos
}

func runChanFlow(pass *analysis.Pass) error {
	info := pass.TypesInfo
	graph := flow.BuildCallGraph(pass.Files, info)
	sup := suppressedLines(pass, "chanflow")

	// Bottom-up summary: which channel parameters does each function close
	// (directly or through same-package callees)?
	closers := make(map[*types.Func][]bool)
	for _, n := range graph.Order {
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		closers[n.Fn] = make([]bool, sig.Params().Len())
	}
	graph.Fixpoint(func(n *flow.CallNode) bool {
		sums := closers[n.Fn]
		paramIdx := make(map[types.Object]int)
		sig := n.Fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if _, isChan := sig.Params().At(i).Type().Underlying().(*types.Chan); isChan {
				paramIdx[sig.Params().At(i)] = i
			}
		}
		changed := false
		mark := func(e ast.Expr) {
			id, ok := astutil.Unparen(e).(*ast.Ident)
			if !ok {
				return
			}
			if i, ok := paramIdx[info.Uses[id]]; ok && !sums[i] {
				sums[i] = true
				changed = true
			}
		}
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if astutil.IsBuiltin(info, call, "close") && len(call.Args) == 1 {
				mark(call.Args[0])
				return true
			}
			callee := astutil.CalleeFunc(info, call)
			calleeSums, ok := closers[callee]
			if !ok {
				return true
			}
			for i, arg := range call.Args {
				if i < len(calleeSums) && calleeSums[i] {
					mark(arg)
				}
			}
			return true
		})
		return changed
	})

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Channel buffering and select membership are properties of the
			// whole declaration, shared by its nested literals.
			unbuffered := unbufferedChans(info, fd.Body)
			comms := selectComms(fd.Body)
			// The SSA view of the outer body powers branch-correlation
			// suppression; close sites are counted across the whole decl so
			// a literal's extra close conservatively disables it.
			sf := ssa.Build(fd, info, nil)
			sites := closeSiteCount(pass, fd.Body, closers)
			checkChanBody(pass, fd.Body, closers, unbuffered, comms, sup, sf, sites)
		}
	}
	return nil
}

// closeSiteCount counts, per rendered channel key, the syntactic sites in
// body that may close it: the close builtin plus calls to summarized
// closer helpers.
func closeSiteCount(pass *analysis.Pass, body ast.Node,
	closers map[*types.Func][]bool) map[string]int {

	sites := make(map[string]int)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if astutil.IsBuiltin(pass.TypesInfo, call, "close") && len(call.Args) == 1 {
			sites[renderExpr(pass.Fset, call.Args[0])]++
			return true
		}
		closes, ok := closers[astutil.CalleeFunc(pass.TypesInfo, call)]
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			if i < len(closes) && closes[i] {
				sites[renderExpr(pass.Fset, arg)]++
			}
		}
		return true
	})
	return sites
}

// checkChanBody runs the closed-channel lattice and the blocking-send scan
// over one body, then recurses into its function literals (each literal is
// its own function for flow purposes, but shares the enclosing channel
// classifications).
func checkChanBody(pass *analysis.Pass, body *ast.BlockStmt,
	closers map[*types.Func][]bool, unbuffered map[types.Object]bool,
	comms map[ast.Stmt]bool, sup map[string]bool,
	sf *ssa.Func, sites map[string]int) {

	lat := &chanLattice{
		info:     pass.TypesInfo,
		fset:     pass.Fset,
		closers:  closers,
		findings: make(map[token.Pos]chanFinding),
	}
	g := flow.New(body, pass.TypesInfo)
	sol := flow.Forward[closedState](g, lat)
	if sol.Converged {
		// Deferred closes run at exit: a second deferred close of the same
		// channel, or a deferred close of one already closed on some path
		// to a return, panics during unwinding.
		exit := lat.Join(sol.In[g.Exit], nil)
		if exit == nil {
			exit = make(closedState)
		}
		for _, d := range g.Defers {
			call := d.Call
			if astutil.IsBuiltin(pass.TypesInfo, call, "close") && len(call.Args) == 1 {
				lat.close(exit, renderExpr(pass.Fset, call.Args[0]), d.Pos())
			}
		}
		positions := make([]token.Pos, 0, len(lat.findings))
		for pos := range lat.findings {
			positions = append(positions, pos)
		}
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		for _, pos := range positions {
			fnd := lat.findings[pos]
			if suppressed(pass, sup, pos) {
				continue
			}
			if fnd.send && branchCorrelated(sf, sites, fnd, pos) {
				continue
			}
			pass.Reportf(pos, "%s", fnd.msg)
		}
	}

	// Blocking sends: a naked send outside any select, on a channel every
	// one of whose make sites in this declaration is unbuffered.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != nil {
			return false // literals get their own walk below
		}
		send, ok := n.(*ast.SendStmt)
		if !ok || comms[send] {
			return true
		}
		id, ok := astutil.Unparen(send.Chan).(*ast.Ident)
		if !ok {
			return true
		}
		if unbuffered[pass.TypesInfo.Uses[id]] && !suppressed(pass, sup, send.Arrow) {
			pass.Reportf(send.Arrow,
				"blocking send on unbuffered channel %s with no select or cancellation escape; "+
					"if every receiver can exit early this goroutine leaks — buffer the channel "+
					"to the fan-out or send inside a select with a cancel case",
				id.Name)
		}
		return true
	})

	for _, lit := range flow.FuncLits(body) {
		// Literals get no SSA view: branch correlation stays outer-body only.
		checkChanBody(pass, lit.Body, closers, unbuffered, comms, sup, nil, nil)
	}
}

// branchCorrelated reports whether the single close site a send finding is
// conditional on and the send itself sit under dominating branch facts the
// SSA layer proves contradictory — the pair can never execute in one run.
func branchCorrelated(sf *ssa.Func, sites map[string]int,
	fnd chanFinding, sendPos token.Pos) bool {

	if sf == nil || !fnd.closedAt.IsValid() || sites[fnd.key] != 1 {
		return false
	}
	closeBlk := sf.BlockAt(fnd.closedAt)
	sendBlk := sf.BlockAt(sendPos)
	if closeBlk == nil || sendBlk == nil {
		return false
	}
	return sf.ContradictoryFacts(closeBlk, sendBlk)
}

// unbufferedChans classifies the channel variables of one declaration: a
// variable is in the result only if every assignment to it in the body is
// a make with no capacity (or a constant zero capacity). Parameters,
// fields, and variables with any other assignment stay out — unknown
// buffering is never flagged.
func unbufferedChans(info *types.Info, body ast.Node) map[types.Object]bool {
	unbuffered := make(map[types.Object]bool)
	disqualified := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := astutil.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objectOfIdent(info, id)
			if obj == nil {
				continue
			}
			if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
				continue
			}
			if i >= len(assign.Rhs) {
				disqualified[obj] = true // multi-value assignment: unknown
				continue
			}
			switch buffering(info, assign.Rhs[i]) {
			case "unbuffered":
				unbuffered[obj] = true
			default:
				disqualified[obj] = true
			}
		}
		return true
	})
	for obj := range disqualified {
		delete(unbuffered, obj)
	}
	return unbuffered
}

// buffering classifies the channel expression e makes: "unbuffered",
// "buffered", or "unknown".
func buffering(info *types.Info, e ast.Expr) string {
	call, ok := astutil.Unparen(e).(*ast.CallExpr)
	if !ok || !astutil.IsBuiltin(info, call, "make") || len(call.Args) == 0 {
		return "unknown"
	}
	t := info.TypeOf(call.Args[0])
	if t == nil {
		return "unknown"
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return "unknown"
	}
	if len(call.Args) < 2 {
		return "unbuffered"
	}
	if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
		return "unbuffered"
	}
	return "buffered"
}

// selectComms collects the comm statements of every select in body: sends
// and receives that appear as select cases never block unconditionally.
func selectComms(body ast.Node) map[ast.Stmt]bool {
	comms := make(map[ast.Stmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				comms[cc.Comm] = true
			}
		}
		return true
	})
	return comms
}

func objectOfIdent(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
