package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
)

// batchCapable lists the packages (by import-path suffix) whose hot paths
// must drive the oracle through EvalBatch. Other packages — template
// matchers probing a handful of assignments, the oracle package's own
// scalar fallback — may legitimately call Eval per pattern.
var batchCapable = []string{
	"internal/sampling",
	"internal/support",
	"internal/fbdt",
	"internal/eval",
	"internal/core",
}

// ScalarEval flags per-pattern Oracle.Eval calls inside loops in
// batch-capable packages.
var ScalarEval = &analysis.Analyzer{
	Name: "scalareval",
	Doc: "flags oracle.Eval called inside a loop in a batch-capable package; " +
		"collect the patterns and use EvalBatch (oracle.AsBatch) instead, so " +
		"queries stay countable in blocks and ride the word-parallel evaluator",
	Run: runScalarEval,
}

func runScalarEval(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	capable := false
	for _, s := range batchCapable {
		if strings.HasSuffix(path, s) {
			capable = true
			break
		}
	}
	if !capable {
		return nil
	}
	for _, f := range pass.Files {
		// Collect loop-body extents, then flag oracle Eval calls landing
		// inside any of them.
		type span struct{ lo, hi token.Pos }
		var loops []span
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, span{s.Body.Pos(), s.Body.End()})
			case *ast.RangeStmt:
				loops = append(loops, span{s.Body.Pos(), s.Body.End()})
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astutil.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Eval" || fn.Pkg() == nil ||
				!strings.HasSuffix(fn.Pkg().Path(), "internal/oracle") {
				return true
			}
			for _, l := range loops {
				if l.lo <= call.Pos() && call.Pos() < l.hi {
					pass.Reportf(call.Pos(),
						"per-pattern oracle Eval call inside a loop; batch the patterns and use EvalBatch")
					break
				}
			}
			return true
		})
	}
	return nil
}
