package analyzers

import (
	"go/types"
	"sort"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/flow"
)

// AtomicSafe enforces all-or-nothing atomicity per field: a struct field
// that is accessed through sync/atomic anywhere in the package — directly
// or through a same-package helper taking its address — must be accessed
// atomically everywhere. Mixed atomic/plain access is a data race the race
// detector only catches when both sides happen to run concurrently under
// test; the classification runs bottom-up over the package call graph, so
// helpers like `func bump(p *int64) { atomic.AddInt64(p, 1) }` count as
// atomic accesses of the fields whose addresses flow into them.
//
// It also checks 32-bit layout: a plain int64/uint64 field used with the
// old address-taking sync/atomic API must sit at an 8-byte-aligned offset
// under GOARCH=386 sizes, or the operations fault on 32-bit platforms.
// Fields of the atomic.Int64-style types are exempt from both rules: the
// type system already makes every access atomic and the runtime aligns
// them.
var AtomicSafe = &analysis.Analyzer{
	Name: "atomicsafe",
	Doc: "flags fields accessed both atomically (via sync/atomic) and " +
		"plainly in the same package, escapes of such fields' addresses, " +
		"and 64-bit atomic fields misaligned on 32-bit layouts",
	Run: runAtomicSafe,
}

func runAtomicSafe(pass *analysis.Pass) error {
	graph := flow.BuildCallGraph(pass.Files, pass.TypesInfo)
	idx := flow.ClassifyFieldAccesses(pass.Files, pass.TypesInfo, graph)
	if !idx.Converged {
		return nil // broken summary fixpoint would spew nonsense; stay silent
	}
	sup := suppressedLines(pass, "atomicsafe")

	atomicFields := make(map[*types.Var]bool)
	for _, f := range idx.FieldOrder {
		for _, a := range idx.Fields[f] {
			if a.Kind == flow.AtomicAccess {
				atomicFields[f] = true
				break
			}
		}
	}

	for _, f := range idx.FieldOrder {
		if !atomicFields[f] {
			continue
		}
		for _, a := range idx.Fields[f] {
			if a.Kind == flow.AtomicAccess || suppressed(pass, sup, a.Pos) {
				continue
			}
			via := ""
			if a.Via != "" {
				via = " (through " + a.Via + ")"
			}
			switch a.Kind {
			case flow.PlainRead, flow.PlainWrite:
				pass.Reportf(a.Pos,
					"non-atomic %s of field %s%s, which is accessed with sync/atomic elsewhere in this package; "+
						"use sync/atomic here too (or migrate the field to an atomic.%s)",
					a.Kind, f.Name(), via, atomicTypeName(f.Type()))
			case flow.EscapedAddr:
				pass.Reportf(a.Pos,
					"address of atomic field %s escapes%s; atomicity cannot be verified — "+
						"keep sync/atomic calls on the field itself or a summarized same-package helper",
					f.Name(), via)
			}
		}
	}

	checkAtomicAlignment(pass, sup, atomicFields)
	return nil
}

// atomicTypeName suggests the sync/atomic wrapper type for a field type.
func atomicTypeName(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Int64"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Uint32:
		return "Uint32"
	case types.Uint64:
		return "Uint64"
	case types.Uintptr:
		return "Uintptr"
	}
	return "Int64"
}

// checkAtomicAlignment verifies that every 64-bit field reached by the
// old-style sync/atomic API is 8-byte aligned under 32-bit (GOARCH=386)
// struct layout. On 32-bit platforms the compiler only aligns such words
// to 4 bytes, and misaligned 64-bit atomics fault at runtime; placing the
// field first (or using atomic.Int64, which self-aligns) fixes it.
func checkAtomicAlignment(pass *analysis.Pass, sup map[string]bool, atomicFields map[*types.Var]bool) {
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		return
	}
	scope := pass.Pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok || st.NumFields() == 0 {
			continue
		}
		fields := make([]*types.Var, st.NumFields())
		interesting := false
		for i := range fields {
			fields[i] = st.Field(i)
			if atomicFields[fields[i]] && flow.Is64BitWord(fields[i].Type()) {
				interesting = true
			}
		}
		if !interesting {
			continue
		}
		offsets := sizes.Offsetsof(fields)
		for i, f := range fields {
			if !atomicFields[f] || !flow.Is64BitWord(f.Type()) || offsets[i]%8 == 0 {
				continue
			}
			if suppressed(pass, sup, f.Pos()) {
				continue
			}
			pass.Reportf(f.Pos(),
				"64-bit field %s is used with sync/atomic but sits at offset %d under 32-bit layout; "+
					"move it to the front of %s or use atomic.%s, which self-aligns",
				f.Name(), offsets[i], tn.Name(), atomicTypeName(f.Type()))
		}
	}
}
