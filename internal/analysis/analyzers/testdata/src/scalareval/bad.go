package fixture

import "logicregression/internal/oracle"

// BadWitness queries the oracle one assignment at a time in a loop.
func BadWitness(o oracle.Oracle, pats [][]bool, out int) int {
	n := 0
	for _, a := range pats {
		if o.Eval(a)[out] { // want "per-pattern oracle Eval call inside a loop"
			n++
		}
	}
	return n
}

// BadCounted does the same through a query counter.
func BadCounted(counter *oracle.Counter, pats [][]bool) int {
	n := 0
	for i := 0; i < len(pats); i++ {
		v := counter.Eval(pats[i]) // want "per-pattern oracle Eval call inside a loop"
		if v[0] {
			n++
		}
	}
	return n
}
