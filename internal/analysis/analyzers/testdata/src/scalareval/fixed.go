package fixture

import (
	"logicregression/internal/bitvec"
	"logicregression/internal/oracle"
)

// GoodBatch sends all patterns in one lane-packed batch query.
func GoodBatch(o oracle.Oracle, patterns []bitvec.Word, n int) []bitvec.Word {
	return oracle.AsBatch(o).EvalBatch(patterns, n)
}

// GoodSingle makes one scalar query outside any loop, which is fine.
func GoodSingle(o oracle.Oracle, a []bool) []bool {
	return o.Eval(a)
}
