// The panicbridge fixture. It is type-checked under an internal/core
// import path, where the contract applies: error payloads crossing the
// oracle bridge must be *oracle.Failure, and recovers must type-check.
package core

import (
	"errors"

	"logicregression/internal/oracle"
)

func eval(o oracle.Oracle) []bool { return o.Eval(nil) }

// A plain error panic on an oracle-reachable path: catchFailure would
// re-panic it, so the "error" crashes the run instead of degrading it.
func rawErrorPanic(o oracle.Oracle, err error) []bool {
	if err != nil {
		panic(err) // want "panic with error payload"
	}
	return eval(o)
}

// Reachability is transitive: this function panics below a helper that
// reaches the oracle.
func wrappedErrorPanic(o oracle.Oracle) []bool {
	out := eval(o)
	if out == nil {
		panic(errors.New("empty result")) // want "panic with error payload"
	}
	return out
}

// A bare recover swallows every panic, bugs included.
func swallowAll(f func()) {
	defer func() {
		recover() // want "discarded"
	}()
	f()
}

// Bound but never inspected: same swallowing, one step removed.
func noAssert(f func()) (err error) {
	defer func() {
		if rec := recover(); rec != nil { // want "never type-asserted"
			err = errors.New("something panicked")
		}
	}()
	f()
	return nil
}

// Asserted, but the non-Failure case is dropped instead of re-panicked.
func noRepanic(f func()) (err error) {
	defer func() {
		if rec := recover(); rec != nil { // want "not re-panicked"
			if fl, ok := rec.(*oracle.Failure); ok {
				err = fl.Err
			}
		}
	}()
	f()
	return nil
}
