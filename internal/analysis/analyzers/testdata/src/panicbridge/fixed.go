package core

import "logicregression/internal/oracle"

// Transport failures cross the bridge as *oracle.Failure.
func strictEval(o oracle.Fallible) []bool {
	out, err := o.TryEval(nil)
	if err != nil {
		panic(oracle.NewFailure(err))
	}
	return out
}

// String panics mark invariant violations — bugs — and stay legal: they
// must keep unwinding past every bridge.
func invariant(o oracle.Oracle, n int) []bool {
	if n < 0 {
		panic("core: negative query count")
	}
	return o.Eval(nil)
}

// The sanctioned recover shape: bind, assert *oracle.Failure, re-panic
// everything else.
func catchBridge(f func()) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			fl, ok := rec.(*oracle.Failure)
			if !ok {
				panic(rec)
			}
			err = fl.Err
		}
	}()
	f()
	return nil
}

// A type switch with a *oracle.Failure case counts as the typed check.
func catchSwitch(f func()) (err error) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		switch v := rec.(type) {
		case *oracle.Failure:
			err = v.Err
		default:
			panic(rec)
		}
	}()
	f()
	return nil
}
