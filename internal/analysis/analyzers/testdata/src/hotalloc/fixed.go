// The allocation-free forms. This file must stay silent.
package hotalloc

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Pure arithmetic over preallocated storage with allowlisted intrinsics.
//
//logicreg:hotpath
func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Allocation-free same-package helpers are folded in by summary.
func lane(w uint64, i int) uint64 { return w >> uint(i) }

//logicreg:hotpath
func laneSum(w uint64) uint64 {
	return lane(w, 1) + lane(w, 2)
}

// Panic guards are cold: the Sprintf feeds a path that never returns.
//
//logicreg:hotpath
func guarded(xs []uint64, i int) uint64 {
	if i < 0 || i >= len(xs) {
		panic(fmt.Sprintf("lane %d out of range", i))
	}
	return xs[i]
}

// Reviewed amortized growth of reused scratch is suppressed explicitly.
//
//logicreg:hotpath
func amortized(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		//logicreg:allow hotalloc amortized scratch growth, off the steady state
		buf = make([]uint64, n)
	}
	return buf[:n]
}

// The allowlisted packages (sync, sync/atomic, math/bits, time, bitvec)
// are vouched allocation-free.
//
//logicreg:hotpath
func count(c *atomic.Int64) {
	c.Add(1)
}

// Writing into caller-provided storage needs no allocation.
//
//logicreg:hotpath
func fill(dst []uint64, v uint64) {
	for i := range dst {
		dst[i] = v
	}
}
