// The hotalloc fixture: allocation in functions under the hotpath contract.
package hotalloc

import "strings"

//logicreg:hotpath
func sumBuf(n int) int {
	buf := make([]int, n) // want "calls make, which allocates"
	s := 0
	for _, v := range buf {
		s += v
	}
	return s
}

//logicreg:hotpath
func appendOne(xs []int, v int) []int {
	return append(xs, v) // want "calls append, which may grow and allocate"
}

//logicreg:hotpath
func closureCapture(n int) func() int {
	return func() int { return n } // want "allocates a closure"
}

//logicreg:hotpath
func concat(a, b string) string {
	return a + b // want "concatenates strings, which allocates"
}

//logicreg:hotpath
func toBytes(s string) []byte {
	return []byte(s) // want "converts between string and byte/rune slices"
}

//logicreg:hotpath
func toIface(n int) interface{} {
	return interface{}(n) // want "boxes a value into an interface"
}

func consume(v interface{}) {}

//logicreg:hotpath
func boxesArg(n int) {
	consume(n) // want "boxes a concrete value into an interface argument"
}

func variadic(xs ...int) int { return len(xs) }

//logicreg:hotpath
func packsVariadic() int {
	return variadic(1, 2) // want "makes a variadic call, which allocates the argument slice"
}

//logicreg:hotpath
func lower(s string) string {
	return strings.ToLower(s) // want "outside the hot-path allowlist"
}

//logicreg:hotpath
func indirect(f func() int) int {
	return f() // want "makes an indirect call"
}

func cleanup() {}

//logicreg:hotpath
func deferLoop(n int) {
	for i := 0; i < n; i++ {
		defer cleanup() // want "defers inside a loop"
	}
}

//logicreg:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want "allocates a composite literal"
}

type point struct{ x, y int }

//logicreg:hotpath
func escapes() *point {
	return &point{1, 2} // want "&composite literal escapes to the heap"
}

func (p *point) norm() {}

//logicreg:hotpath
func methodVal(p *point) func() {
	return p.norm // want "allocates a bound method value"
}

// grow is unmarked, so it may allocate freely — but the summary charges
// its hotpath callers.
func grow() []int {
	return make([]int, 8)
}

//logicreg:hotpath
func usesGrow() int {
	return len(grow()) // want "calls grow, which may allocate"
}
