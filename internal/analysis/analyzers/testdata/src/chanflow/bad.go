// The chanflow fixture: channel lifecycle mistakes that panic or hang.
package chanflow

// Send after close on the same path.
func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "may already be closed"
}

// Closed on one branch only: the send still may panic.
func maybeClosed(flag bool) {
	ch := make(chan int, 1)
	if flag {
		close(ch)
	}
	ch <- 1 // want "may already be closed"
}

// Plain double close.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "a double close panics"
}

// shutdown closes its parameter; the summary makes the second close a
// double close even though no close builtin repeats textually.
func shutdown(c chan int) {
	close(c)
}

func doubleViaHelper() {
	ch := make(chan int)
	shutdown(ch)
	close(ch) // want "a double close panics"
}

// The deferred close runs at exit, after the body already closed ch.
func deferredDouble() {
	ch := make(chan int)
	defer close(ch) // want "a double close panics"
	close(ch)
}

// A naked send on a provably unbuffered channel blocks forever once the
// receiver is gone.
func fanout(work func() int) {
	done := make(chan struct{})
	go func() {
		_ = work()
		done <- struct{}{} // want "blocking send on unbuffered channel done"
	}()
	<-done
}

// Different flags guard the close and the send: no contradiction, the
// pair may execute together.
func uncorrelatedClose(a, b bool, ch chan int) {
	if a {
		close(ch)
	}
	if b {
		ch <- 1 // want "may already be closed"
	}
}

// The same flag, but reassigned between the check sites: the SSA values
// differ, so the facts do not correlate and the send stays flagged.
func reassignedFlag(stop bool, ch chan int) {
	if stop {
		close(ch)
	}
	stop = !stop
	if !stop {
		ch <- 1 // want "may already be closed"
	}
}
