// The repaired forms. This file must stay silent.
package chanflow

// Close once, on exactly one owner path.
func closeOnce(flag bool) {
	ch := make(chan int, 1)
	ch <- 1
	if flag {
		close(ch)
		return
	}
	close(ch)
}

// Re-making a channel resets its state: the new channel is open.
func remade() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
	close(ch)
}

// A deferred close with no body close is the canonical owner pattern.
func deferOwner() chan int {
	ch := make(chan int, 4)
	defer close(ch)
	ch <- 1
	return ch
}

// A buffered channel sized to the fan-out cannot block the sender.
func buffered(work func() int) {
	done := make(chan struct{}, 1)
	go func() {
		_ = work()
		done <- struct{}{}
	}()
	<-done
}

// A select with an escape never blocks unconditionally, even unbuffered.
func selectSend(stop chan struct{}) {
	out := make(chan int)
	select {
	case out <- 1:
	case <-stop:
	}
}

// A reviewed exception: the receiver is started in the same statement list
// and cannot exit before receiving.
func reviewed() {
	sync := make(chan struct{})
	go func() {
		<-sync
	}()
	sync <- struct{}{} //logicreg:allow chanflow receiver started above cannot exit early
}

// Branch correlation: the close and the send are guarded by contradictory
// facts on the same unreassigned flag, so they can never both execute.
func correlatedClose(stop bool, ch chan int) {
	if stop {
		close(ch)
	}
	if !stop {
		ch <- 1
	}
}
