// The shiftrange fixture: hot-path shifts and indexes the interval prover
// cannot discharge. The fixture type-checks as internal/bitvec so the
// index rule is active.
package bitvec

// An unmasked shift amount: k may be 64 or negative.
//
//logicreg:hotpath
func maskBit(k int) uint64 {
	return 1 << uint(k) // want "not provably < 64"
}

// Compound shifts are checked too.
//
//logicreg:hotpath
func shrVar(x uint64, n int) uint64 {
	x >>= uint(n) // want "not provably < 64"
	return x
}

// The conversion pitfall: k < 64 alone does not bound uint(k), because a
// negative k wraps to a huge unsigned value.
//
//logicreg:hotpath
func wrapNegative(k int) uint64 {
	if k < 64 {
		return 1 << uint(k) // want "not provably < 64"
	}
	return 0
}

// An unguarded index keeps a runtime bounds check on the hot path.
//
//logicreg:hotpath
func loadWord(words []uint64, i int) uint64 {
	return words[i] // want "not provably in bounds"
}

// The guard is one short: i == len(words) falls through.
//
//logicreg:hotpath
func offByOne(words []uint64, i int) uint64 {
	if i >= 0 && i <= len(words) {
		return words[i] // want "not provably in bounds"
	}
	return 0
}

// Not annotated: cold code is not held to the proof.
func coldShift(k int) uint64 {
	return 1 << uint(k)
}
