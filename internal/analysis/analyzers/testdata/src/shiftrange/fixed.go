// The repaired shiftrange fixture: every shift amount and index carries a
// proof the interval machinery understands, or a reviewed allowance.
package bitvec

// Masking the amount is the canonical fix: uint(k)&63 is in [0, 63].
//
//logicreg:hotpath
func maskBitFixed(k int) uint64 {
	return 1 << (uint(k) & 63)
}

// A two-sided guard proves the compound shift.
//
//logicreg:hotpath
func shrGuarded(x uint64, n int) uint64 {
	if n >= 0 && n < 64 {
		x >>= n
	}
	return x
}

// The panic-guard idiom: the fall-through is provably in range.
//
//logicreg:hotpath
func loadGuarded(words []uint64, i int) uint64 {
	if i < 0 || i >= len(words) {
		return 0
	}
	return words[i]
}

// A range key over the same slice needs no guard.
//
//logicreg:hotpath
func sumWords(words []uint64) uint64 {
	var s uint64
	for i := range words {
		s += words[i]
	}
	return s
}

// The last-element idiom under a non-empty guard.
//
//logicreg:hotpath
func lastWord(words []uint64) uint64 {
	if len(words) > 0 {
		return words[len(words)-1]
	}
	return 0
}

// A reviewed exception: the caller contract bounds i, but the proof is
// interprocedural and out of the prover's reach.
//
//logicreg:hotpath
func trustedLoad(words []uint64, i int) uint64 {
	//logicreg:allow shiftrange caller validates i against the vector width
	return words[i]
}
