// The deadbranch fixture: conditions SCCP proves constant, hiding one arm
// from every run.
package deadbranch

// Leftover debug scaffolding: the flag is assigned false and never again.
func leftoverDebug(n int) int {
	verbose := false
	if verbose { // want "always false"
		return -n
	}
	return n
}

// The refactoring residue: mode can only be 3 here.
func alwaysTrueGuard() int {
	mode := 3
	if mode > 1 { // want "always true"
		return 1
	}
	return 0
}

// One root cause, one finding: conditions inside the arm SCCP already
// proved unreachable are not re-reported.
func cascade() int {
	debug := false
	if debug { // want "always false"
		x := 1
		if x == 1 {
			return 2
		}
	}
	return 0
}

// Constants propagate through joins when both arms agree.
func throughJoin(flag bool) int {
	limit := 0
	if flag {
		limit = 8
	} else {
		limit = 8
	}
	if limit == 8 { // want "always true"
		return 1
	}
	return 0
}
