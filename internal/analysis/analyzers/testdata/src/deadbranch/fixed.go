// The repaired deadbranch fixture: branch verdicts that are deliberate or
// genuinely data-dependent stay silent.
package deadbranch

// Compile-time configuration: the type checker folds the condition, so it
// is a const gate, not dead logic.
const debugBuild = false

func compileTimeConfig(n int) int {
	if debugBuild {
		return -n
	}
	return n
}

// Data-dependent conditions have no verdict.
func dataDependent(n int) int {
	verbose := n > 10
	if verbose {
		return -n
	}
	return n
}

// A loop-carried accumulator never folds.
func loopCarried(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	if s > 100 {
		return 1
	}
	return 0
}
