// The repaired forms: all-atomic access, typed wrappers, or no atomics at
// all. This file must stay silent.
package atomicsafe

import "sync/atomic"

// Consistent use of the old API is fine: every access is atomic.
type fixedCounter struct {
	hits int64
}

func (c *fixedCounter) incr() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *fixedCounter) snapshot() int64 {
	return atomic.LoadInt64(&c.hits)
}

// The typed wrappers make every access atomic and self-align, so the
// int32 in front is not a layout hazard.
type typedGauge struct {
	ready int32
	count atomic.Int64
}

func (g *typedGauge) inc() {
	g.count.Add(1)
}

func (g *typedGauge) load() int64 {
	return g.count.Load()
}

// A field never touched atomically may be plain everywhere.
type plainStats struct {
	n int64
}

func (s *plainStats) bump() {
	s.n++
}

// A reviewed exception: the plain write happens before the value is
// published to any other goroutine.
type seeded struct {
	n int64
}

func (s *seeded) observe() int64 {
	return atomic.LoadInt64(&s.n)
}

func (s *seeded) preload() {
	s.n = 42 //logicreg:allow atomicsafe pre-publication init, no concurrent readers yet
}
