// The atomicsafe fixture: fields that mix sync/atomic with plain access.
package atomicsafe

import "sync/atomic"

type counter struct {
	hits  int64
	total int64
}

// hits is atomic here...
func (c *counter) incr() {
	atomic.AddInt64(&c.hits, 1)
}

// ...so every plain touch elsewhere races with incr.
func (c *counter) reset() {
	c.hits = 0 // want "non-atomic write of field hits"
}

func (c *counter) snapshot() int64 {
	return c.hits // want "non-atomic read of field hits"
}

// bump makes its pointee atomic by summary: total is an atomic field even
// though no sync/atomic call names it directly.
func bump(p *int64) {
	atomic.AddInt64(p, 1)
}

func (c *counter) addTotal() {
	bump(&c.total)
}

func (c *counter) drainTotal() int64 {
	t := c.total // want "non-atomic read of field total"
	c.total = 0  // want "non-atomic write of field total"
	return t
}

// Taking the address outside any summarized call loses the field from view.
var sink *int64

func (c *counter) leak() {
	sink = &c.hits // want "address of atomic field hits escapes"
}

// Under GOARCH=386 layout count sits at offset 4: the old address-taking
// atomic API faults on misaligned 64-bit words on 32-bit platforms.
type gauge struct {
	ready int32
	count int64 // want "sits at offset 4 under 32-bit layout"
}

func (g *gauge) inc() {
	atomic.AddInt64(&g.count, 1)
}
