package locksafe

import "sync"

// defer covers every exit — returns and panics alike.
func balanced(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < 0 {
		panic("negative count")
	}
	return c.n
}

// Explicit unlock on both paths is also fine.
func bothPaths(c *counter) int {
	c.mu.Lock()
	if c.n > 0 {
		n := c.n
		c.mu.Unlock()
		return n
	}
	c.mu.Unlock()
	return 0
}

// TryLock tracked branch-sensitively: the lock is held only on the
// success edge, and released there.
func tryBalanced(mu *sync.Mutex) {
	if mu.TryLock() {
		defer mu.Unlock()
	}
}

func tryVarBalanced(mu *sync.Mutex) bool {
	ok := mu.TryLock()
	if ok {
		mu.Unlock()
		return true
	}
	return false
}

// Pointers never copy the lock.
func byPointer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func rangeByIndex(cs []*counter) (total int) {
	for _, c := range cs {
		total += c.n
	}
	return total
}
