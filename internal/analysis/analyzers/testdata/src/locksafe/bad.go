// The locksafe fixture: locks leaked on returns and panics, conditional
// TryLock acquisitions, and lock values copied by value.
package locksafe

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// The early return leaks the lock.
func leakOnReturn(c *counter) int {
	c.mu.Lock() // want "may still be held at a return"
	if c.n > 0 {
		return c.n
	}
	c.mu.Unlock()
	return 0
}

// The panic path unwinds with the lock held; only a defer covers it.
func leakOnPanic(c *counter) {
	c.mu.Lock() // want "may still be held at a panic"
	if c.n < 0 {
		panic("negative count")
	}
	c.mu.Unlock()
}

// A successful TryLock is an acquisition like any other.
func tryLeak(mu *sync.Mutex) {
	if mu.TryLock() { // want "may still be held"
		return
	}
}

// The assigned form leaks the same way.
func tryVarLeak(mu *sync.Mutex) bool {
	ok := mu.TryLock() // want "may still be held"
	if ok {
		return true
	}
	return false
}

// Copying a lock forks its state: the copy guards nothing.
func passByValue(c counter) int { // want "copies a lock"
	return c.n
}

func copyAssign(c *counter) {
	d := *c // want "copies a lock"
	_ = d
}

func rangeCopy(cs []counter) (total int) {
	for _, c := range cs { // want "range copies a lock"
		total += c.n
	}
	return total
}
