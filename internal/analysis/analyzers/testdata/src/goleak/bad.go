// The goleak fixture: goroutines nobody can wait for.
package goleak

func work() {}

// A named callee with no completion signal.
func fireAndForget() {
	go work() // want "no completion witness"
}

// A literal that computes and exits with no way to observe it.
func litNoWitness(n int) {
	go func() { // want "no completion witness"
		for i := 0; i < n; i++ {
			work()
		}
	}()
}

// Transitively witness-free: the literal only calls silent functions.
func viaSilentHelper() {
	go func() { // want "no completion witness"
		work()
		work()
	}()
}
