package goleak

import (
	"context"
	"sync"
)

func task() {}

// WaitGroup: the canonical completion witness.
func waited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		task()
	}()
	wg.Wait()
}

// Closing a done-channel lets any number of observers wait.
func channelDone() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		task()
	}()
	return done
}

// A send is a witness: the receiver observes completion.
func sender(out chan<- int) {
	go func() { out <- 1 }()
}

// Receiving from a cancellation channel bounds the lifetime.
func cancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Draining a channel terminates when the producer closes it.
func drainer(in chan int) {
	go func() {
		for range in {
		}
	}()
}

// The witness may live in a named callee (bottom-up summary).
func viaSignalingCallee(out chan int) {
	go pump(out)
}

func pump(out chan int) { out <- 1 }
