package fixture

import (
	"math/rand"
	"time"
)

// BadShuffle draws from the process-global source.
func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "draws from the process-global source"
		xs[i], xs[j] = xs[j], xs[i]
	})
	_ = rand.Intn(len(xs)) // want "draws from the process-global source"
}

// ClockSeeded builds a generator from the wall clock: unique per run, so
// fixed-seed runs are not reproducible.
func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the clock"
}
