package fixture

import "math/rand"

// BadShuffle draws from the process-global source.
func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "draws from the process-global source"
		xs[i], xs[j] = xs[j], xs[i]
	})
	_ = rand.Intn(len(xs)) // want "draws from the process-global source"
}
