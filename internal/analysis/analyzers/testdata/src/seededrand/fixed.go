package fixture

import "math/rand"

// GoodShuffle draws from a generator built from the plumbed seed.
func GoodShuffle(seed int64, xs []int) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) {
		xs[i], xs[j] = xs[j], xs[i]
	})
	_ = r.Intn(len(xs))
}
