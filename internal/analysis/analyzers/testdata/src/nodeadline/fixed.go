package fixture

import (
	"net"
	"time"
)

// GoodDial bounds the connect, so a dead host fails fast.
func GoodDial(addr string, d time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, d)
}

// GoodRead arms a read deadline first; a silent peer becomes a timeout
// error instead of a pinned goroutine.
func GoodRead(conn net.Conn, d time.Duration) ([]byte, error) {
	if err := conn.SetReadDeadline(time.Now().Add(d)); err != nil {
		return nil, err
	}
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	return buf[:n], err
}

// GoodWrite arms a write deadline before touching the wire.
func GoodWrite(conn net.Conn, p []byte, d time.Duration) error {
	if err := conn.SetWriteDeadline(time.Now().Add(d)); err != nil {
		return err
	}
	_, err := conn.Write(p)
	return err
}

// forwarder wraps a connection whose deadlines are armed by its owner. The
// forwarding methods are exempt: deadline discipline lives with the wrapped
// conn, not in each pass-through.
type forwarder struct {
	net.Conn
	calls int
}

func (f *forwarder) Read(p []byte) (int, error) {
	f.calls++
	return f.Conn.Read(p)
}

func (f *forwarder) Write(p []byte) (int, error) {
	f.calls++
	return f.Conn.Write(p)
}
