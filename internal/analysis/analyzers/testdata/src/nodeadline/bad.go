package fixture

import "net"

// BadDial connects with no bound on how long a dead host can hang the SYN.
func BadDial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want "use net.DialTimeout"
}

// BadRead blocks forever when the peer accepts the query and goes silent.
func BadRead(conn net.Conn) ([]byte, error) {
	buf := make([]byte, 64)
	n, err := conn.Read(buf) // want "without a deadline in scope"
	return buf[:n], err
}

// BadWrite blocks forever when the peer's window closes and never reopens.
func BadWrite(conn net.Conn, p []byte) error {
	_, err := conn.Write(p) // want "without a deadline in scope"
	return err
}

// BadConcrete shows the rule also fires on concrete net types, not just the
// net.Conn interface.
func BadConcrete(conn *net.TCPConn) error {
	_, err := conn.Write([]byte("quit\n")) // want "without a deadline in scope"
	return err
}
