// The randtaint fixture: every way a rand source can be seeded from the
// clock or the process-global generator instead of the plumbed seed.
package randtaint

import (
	"math/rand"
	"time"
)

func use(rand.Source) {}

// Direct: the classic anti-pattern, inline.
func direct() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "nondeterministic"
}

// Through a local variable.
func viaVar() rand.Source {
	seed := time.Now().UnixNano()
	return rand.NewSource(seed) // want "nondeterministic"
}

// Through a helper's return value (interprocedural summary).
func clockSeed() int64 { return time.Now().UnixNano() }

func viaHelper() rand.Source {
	return rand.NewSource(clockSeed()) // want "nondeterministic"
}

// Through a struct field.
type cfg struct{ seed int64 }

func viaField() {
	var c cfg
	c.seed = time.Now().UnixNano()
	use(rand.NewSource(c.seed)) // want "nondeterministic"
}

// Through a closure capture.
func viaClosure() {
	t := time.Now().UnixNano()
	mk := func() rand.Source {
		return rand.NewSource(t) // want "nondeterministic"
	}
	use(mk())
}

// From the process-global generator: just as nondeterministic across runs.
func globalDraw() rand.Source {
	n := rand.Int63()
	return rand.NewSource(n) // want "nondeterministic"
}
