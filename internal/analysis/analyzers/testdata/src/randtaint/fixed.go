package randtaint

import "math/rand"

// The plumbed seed is the one sanctioned entropy root.
func fromSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Values derived from the seed stay clean.
func derived(seed int64) rand.Source {
	return rand.NewSource(seed ^ 0x9e3779b9)
}

// A strong update un-taints: the clock value is overwritten before use.
func overwritten(seed int64) rand.Source {
	s := clockSeed()
	s = seed
	return rand.NewSource(s)
}

// A helper that merely transforms its input stays clean for clean inputs.
func mix(a, b int64) int64 { return a*31 + b }

func viaCleanHelper(seed int64) rand.Source {
	return rand.NewSource(mix(seed, 7))
}
