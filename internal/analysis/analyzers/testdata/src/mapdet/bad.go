// The mapdet fixture: map-iteration and select-arrival order reaching
// returned slices, serialized output, and merge positions without a sort.
package mapdet

import (
	"fmt"
	"io"
)

// Returning a slice built in map iteration order.
func keysUnsorted(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks // want "ks is in map iteration order; sort it before it is returned"
}

// Serializing inside the loop: the bytes hit the stream in map order.
func dumpInline(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "output written inside map iteration depends on its order"
	}
}

// Serializing a collected slice without sorting it first.
func dumpCollected(w io.Writer, m map[string]int) {
	var lines []string
	for k := range m {
		lines = append(lines, k)
	}
	fmt.Fprintln(w, lines) // want "lines is in map iteration order; sort it before it is serialized"
}

// Sending per-key values to a channel: the receiver merges arrival order.
func feed(ch chan string, m map[string]int) {
	for k := range m {
		ch <- k // want "send inside map iteration delivers values in its order"
	}
}

// A loop-carried counter is a merge position; the map key would not be.
func compact(m map[int]string) []string {
	out := make([]string, len(m))
	i := 0
	for _, v := range m {
		out[i] = v // want "write through loop-carried index i places values in map iteration order"
		i++
	}
	return out
}

// Float accumulation is not order-insensitive.
func total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "accumulating float64 values in map iteration order is not deterministic"
	}
	return sum
}

// Neither is string concatenation.
func join(m map[string]bool) string {
	s := ""
	for k := range m {
		s += k // want "accumulating string values in map iteration order is not deterministic"
	}
	return s
}

// A select with two live cases merges in arrival order.
func merge(a, b chan int) []int {
	var got []int
	for i := 0; i < 8; i++ {
		select {
		case v := <-a:
			got = append(got, v)
		case v := <-b:
			got = append(got, v)
		}
	}
	return got // want "got is in select arrival order; sort it before it is returned"
}

// An acknowledged unordered return (the allow suppresses it, and exports
// the Unordered fact instead) puts the sorting obligation on the caller.
func rawKeys(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	//logicreg:allow mapdet callers own the ordering of the raw key set
	return ks
}

// ...which this caller drops on the floor.
func printRaw(w io.Writer, m map[int]bool) {
	ks := rawKeys(m)
	fmt.Fprintln(w, ks) // want "ks is in the unordered order of rawKeys's result; sort it before it is serialized"
}
