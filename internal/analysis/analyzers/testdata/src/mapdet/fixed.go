// The repaired forms: every map-ordered value meets a sort (or an
// order-insensitive reduction) before it can be observed.
package mapdet

import (
	"fmt"
	"io"
	"sort"
)

// Collect, sort, then return: the canonical idiom.
func keysSorted(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Collect, sort, then serialize.
func dumpSorted(w io.Writer, m map[string]int) {
	var lines []string
	for k, v := range m {
		lines = append(lines, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(lines)
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
}

// Indexing by the map key itself is deterministic — each value has one
// home regardless of visit order.
func invert(m map[int]string, n int) []string {
	out := make([]string, n)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Building another map is order-insensitive.
func flip(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Integer accumulation commutes (wrap-around + is associative).
func count(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sort.Slice also clears the taint.
func pairsSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// A single live case plus default is a poll, not a merge.
func drain(ch chan int) []int {
	var got []int
	for {
		select {
		case v := <-ch:
			got = append(got, v)
		default:
			sort.Ints(got)
			return got
		}
	}
}

// The caller of an acknowledged-unordered function discharges its
// obligation by sorting before use.
func printRawSorted(w io.Writer, m map[int]bool) {
	ks := rawKeys(m)
	sort.Ints(ks)
	fmt.Fprintln(w, ks)
}
