package fixture

import (
	"io"

	"logicregression/internal/aig"
	"logicregression/internal/circuit"
)

// BadLoad drops parse and write errors in every way the rule catches.
func BadLoad(r io.Reader, w io.Writer, c *circuit.Circuit) *circuit.Circuit {
	got, _ := circuit.ParseNetlist(r)           // want "error from circuit.ParseNetlist is assigned to the blank identifier"
	circuit.WriteBLIF(w, c, "top")              // want "error from circuit.WriteBLIF is discarded"
	defer aig.WriteAIGER(w, aig.FromCircuit(c)) // want "error from aig.WriteAIGER is unobservable in a deferred call"
	go circuit.WriteVerilog(w, c, "top")        // want "error from circuit.WriteVerilog is unobservable in a go statement"
	return got
}
