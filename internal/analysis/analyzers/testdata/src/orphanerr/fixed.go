package fixture

import (
	"io"

	"logicregression/internal/circuit"
)

// GoodLoad propagates every IO error.
func GoodLoad(r io.Reader, w io.Writer, c *circuit.Circuit) (*circuit.Circuit, error) {
	got, err := circuit.ParseNetlist(r)
	if err != nil {
		return nil, err
	}
	if err := circuit.WriteBLIF(w, c, "top"); err != nil {
		return nil, err
	}
	return got, nil
}
