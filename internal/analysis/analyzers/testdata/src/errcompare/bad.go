package fixture

import (
	"errors"
	"fmt"
	"io"
)

// ErrBudget mirrors the sentinel style of internal/bdd.
var ErrBudget = errors.New("budget exceeded")

// BadSentinels compares errors by identity; one fmt.Errorf("%w") anywhere in
// the call chain makes every one of these checks silently wrong.
func BadSentinels(err error) (string, error) {
	if err == io.EOF { // want "use errors.Is"
		return "eof", nil
	}
	if err != ErrBudget { // want "use errors.Is"
		return "", fmt.Errorf("read: %w", err)
	}
	return "budget", nil
}

// BadPair compares two error values directly.
func BadPair(a, b error) bool {
	return a == b // want "use errors.Is"
}
