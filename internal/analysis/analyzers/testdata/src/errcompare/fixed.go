package fixture

import (
	"errors"
	"io"
)

// GoodSentinels unwraps with errors.Is; nil checks are the idiomatic
// success test and must stay silent.
func GoodSentinels(err error) (string, error) {
	if err == nil {
		return "ok", nil
	}
	if errors.Is(err, io.EOF) {
		return "eof", nil
	}
	if !errors.Is(err, ErrBudget) {
		return "", err
	}
	return "budget", nil
}

// GoodNil covers the != nil direction too.
func GoodNil(err error) bool {
	return err != nil
}
