// The ctxcancel fixture: goroutines that spin past cancellation.
package ctxcancel

import "context"

func handle(int) {}

// The context is handed in as a parameter but the loop never looks at it.
func paramIgnored(ctx context.Context, jobs chan int) {
	go func(c context.Context) {
		for { // want "can iterate without observing"
			handle(<-jobs)
		}
	}(ctx)
}

// The captured stop channel is only checked on the rare branch: the common
// path loops back without ever observing it.
func partialObservation(stop chan struct{}, in chan int) {
	go func() {
		for { // want "can iterate without observing"
			v := <-in
			if v < 0 {
				select {
				case <-stop:
					return
				}
			}
			handle(v)
		}
	}()
}

// The loop lives in the named function the goroutine runs.
func namedSpin(ctx context.Context, in chan int) {
	go pump(ctx, in)
}

func pump(ctx context.Context, in chan int) {
	for { // want "can iterate without observing"
		handle(<-in)
	}
}

// The goroutine parks its spin loop in a helper the carrier is forwarded to.
func helperSpin(ctx context.Context, in chan int) {
	go func() {
		loopHelper(ctx, in)
	}()
}

func loopHelper(ctx context.Context, in chan int) {
	for { // want "can iterate without observing"
		handle(<-in)
	}
}
