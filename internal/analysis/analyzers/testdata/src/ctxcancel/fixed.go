// The repaired forms: every iteration path observes cancellation. This
// file must stay silent.
package ctxcancel

import "context"

func process(int) {}

// Canonical: every iteration selects over the cancel arm.
func selectLoop(ctx context.Context, jobs chan int) {
	go func(c context.Context) {
		for {
			select {
			case <-c.Done():
				return
			case j := <-jobs:
				process(j)
			}
		}
	}(ctx)
}

// A nonblocking poll of the stop channel on every iteration also counts.
func polled(stop chan struct{}, in chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			process(<-in)
		}
	}()
}

// Conditioned loops terminate by their own test and are exempt.
func conditioned(ctx context.Context, n int) {
	go func(c context.Context) {
		for i := 0; i < n; i++ {
			process(i)
		}
	}(ctx)
}

// Range over the work channel: the producer closes it on cancel.
func rangeDrain(ctx context.Context, jobs chan int) {
	go func(c context.Context) {
		for j := range jobs {
			process(j)
		}
	}(ctx)
}

// Observation through a same-package helper is resolved by summary.
func viaHelper(ctx context.Context, in chan int) {
	go func() {
		for {
			if stopRequested(ctx) {
				return
			}
			process(<-in)
		}
	}()
}

func stopRequested(ctx context.Context) bool {
	return ctx.Err() != nil
}

// A reviewed exception: the spin is bounded by the work predicate.
func tightPoll(ctx context.Context) {
	go func(c context.Context) {
		//logicreg:allow ctxcancel bounded spin, work drains in a handful of iterations
		for {
			if work() {
				return
			}
		}
	}(ctx)
}

func work() bool { return true }
