// The repaired nilflow fixture: error paths never dereference the value,
// and a reassignment starts a fresh value the old check does not taint.
package nilflow

// The error branch reports and leaves; only the success path uses c.
func guarded() int {
	c, err := dial()
	if err != nil {
		return -1
	}
	return c.id
}

// SSA precision: after the reassignment this is a different value, so
// the err != nil fact about the call result no longer applies.
func reassigned() int {
	c, err := dial()
	if err != nil {
		c = &conn{id: 0}
		return c.id
	}
	return c.id
}

// A use outside the error-dominated region is not flagged: nothing here
// proves err is non-nil.
func uncheckedUse() int {
	c, _ := dial()
	if c == nil {
		return -1
	}
	return c.id
}
