// The nilflow fixture: call results dereferenced on the very paths their
// paired error check proves may be nil.
package nilflow

import "errors"

type conn struct{ id int }

func dial() (*conn, error) { return nil, errors.New("down") }

func load() ([]int, error) { return nil, errors.New("empty") }

// The classic: cleanup inside the error branch uses the nil result.
func useInErrBranch() int {
	c, err := dial()
	if err != nil {
		return c.id // want "may be nil here"
	}
	return c.id
}

// Same proof through the inverted check: the fall-through of an
// err == nil early return is the error path.
func useAfterInvertedCheck() int {
	c, err := dial()
	if err == nil {
		return c.id
	}
	return (*c).id // want "may be nil here"
}

// A nil slice has length zero: indexing it in the error branch panics.
func indexInErrBranch() int {
	rows, err := load()
	if err != nil {
		return rows[0] // want "may be nil here"
	}
	return 0
}

// Plain value flow is fine — returning the pair verbatim is the idiom.
func passThrough() (*conn, error) {
	c, err := dial()
	if err != nil {
		return c, err
	}
	return c, nil
}
