package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"logicregression/internal/analysis"
)

// ErrCompare flags == / != comparisons between two error values. Sentinel
// comparisons like err == io.EOF break as soon as any layer wraps the error
// (fmt.Errorf %w is used throughout the solver and IO stack), silently
// turning a clean EOF into a hard failure or vice versa; errors.Is unwraps.
// Comparisons against nil are the idiomatic success check and stay legal.
var ErrCompare = &analysis.Analyzer{
	Name: "errcompare",
	Doc: "flags == / != comparisons between error values (wrapped errors slip " +
		"through identity checks); use errors.Is instead",
	Run: runErrCompare,
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorValue reports whether e is a non-nil expression of a type that
// implements error.
func isErrorValue(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	t := tv.Type
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}

func runErrCompare(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isErrorValue(pass.TypesInfo, be.X) || !isErrorValue(pass.TypesInfo, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "error compared with %s; wrapped errors slip through identity checks — use errors.Is", be.Op)
			return true
		})
	}
	return nil
}
