package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
	"logicregression/internal/analysis/flow"
)

// CtxCancel checks that cancellation handed across a goroutine boundary is
// actually honored: when a go statement gives the new goroutine a
// cancellation carrier — a context.Context, a `chan struct{}` done/stop
// channel, or an options struct with a Cancel channel field (core.Options)
// — every unconditioned loop (`for { ... }`) the goroutine can spin in
// must observe that carrier on all iteration paths. A loop with an
// observation-free path around its back edge keeps running after cancel:
// the goroutine leaks and shutdown hangs.
//
// Observation means receiving from the channel (directly or in a select
// case — a select with a cancel case observes on every iteration whichever
// arm fires), calling ctx.Done()/ctx.Err(), draining it with range, or
// passing the carrier to a same-package function summarized as observing
// it (resolved bottom-up over the call graph). Carriers forwarded to local
// callees are followed: a goroutine that parks its spin loop in a helper
// is checked in the helper. Loops with a condition and range loops are
// exempt — they terminate by their own means. Deliberate exceptions are
// annotated `//logicreg:allow ctxcancel <reason>`.
var CtxCancel = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc: "flags goroutines that are handed a context/cancel channel but can " +
		"iterate an unconditioned loop without ever observing it",
	Run: runCtxCancel,
}

// cancelCarrier reports whether t can carry a cancellation signal: a
// context.Context, a chan struct{} (any direction), or a struct with a
// Cancel field of channel-of-struct{} type (core.Options).
func cancelCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) || isCancelChan(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Cancel" && isCancelChan(f.Type()) {
			return true
		}
	}
	return false
}

func isCancelChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func runCtxCancel(pass *analysis.Pass) error {
	info := pass.TypesInfo
	graph := flow.BuildCallGraph(pass.Files, info)
	sup := suppressedLines(pass, "ctxcancel")

	// Bottom-up observer summaries: which cancellation-carrier parameters
	// does each function observe (directly or via same-package callees)?
	observes := make(map[*types.Func][]bool)
	paramObjs := make(map[*types.Func][]types.Object)
	for _, n := range graph.Order {
		sig := n.Fn.Type().(*types.Signature)
		observes[n.Fn] = make([]bool, sig.Params().Len())
		objs := make([]types.Object, sig.Params().Len())
		for i := 0; i < sig.Params().Len(); i++ {
			objs[i] = sig.Params().At(i)
		}
		paramObjs[n.Fn] = objs
	}
	graph.Fixpoint(func(n *flow.CallNode) bool {
		sums := observes[n.Fn]
		params := paramObjs[n.Fn]
		var carrierIdx []int
		for i, p := range params {
			if cancelCarrier(p.Type()) {
				carrierIdx = append(carrierIdx, i)
			}
		}
		if len(carrierIdx) == 0 {
			return false
		}
		changed := false
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			for _, i := range carrierIdx {
				if sums[i] {
					continue
				}
				if nodeObservesCancel(info, observes, x, map[types.Object]bool{params[i]: true}) {
					sums[i] = true
					changed = true
				}
			}
			return true
		})
		return changed
	})

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, objs := goroutineCancelCarriers(info, graph, gs.Call)
			if body == nil || len(objs) == 0 {
				return true
			}
			visited := make(map[*types.Func]bool)
			checkCancelLoops(pass, graph, observes, paramObjs, sup, body, objs, visited)
			return true
		})
	}
	return nil
}

// goroutineCancelCarriers resolves a go statement to the goroutine's body
// and the cancellation carriers handed to it: carrier-typed parameters of
// the called literal or same-package function, plus (for literals) free
// carrier variables captured from the enclosing scope.
func goroutineCancelCarriers(info *types.Info, graph *flow.CallGraph, call *ast.CallExpr) (*ast.BlockStmt, map[types.Object]bool) {
	objs := make(map[types.Object]bool)
	if lit, ok := astutil.Unparen(call.Fun).(*ast.FuncLit); ok {
		if lit.Type.Params != nil {
			for _, f := range lit.Type.Params.List {
				for _, name := range f.Names {
					if obj := info.Defs[name]; obj != nil && cancelCarrier(obj.Type()) {
						objs[obj] = true
					}
				}
			}
		}
		// Free variables: identifiers used in the literal but declared
		// outside it.
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := info.Uses[id].(*types.Var)
			if !ok || !cancelCarrier(obj.Type()) {
				return true
			}
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				objs[obj] = true
			}
			return true
		})
		return lit.Body, objs
	}
	fn := astutil.CalleeFunc(info, call)
	node := graph.Nodes[fn]
	if node == nil {
		return nil, nil
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if cancelCarrier(sig.Params().At(i).Type()) {
			objs[sig.Params().At(i)] = true
		}
	}
	return node.Decl.Body, objs
}

// checkCancelLoops flags unconditioned loops in body that can iterate
// without observing any of objs, then follows the carriers into
// same-package callees.
func checkCancelLoops(pass *analysis.Pass, graph *flow.CallGraph,
	observes map[*types.Func][]bool, paramObjs map[*types.Func][]types.Object,
	sup map[string]bool, body *ast.BlockStmt, objs map[types.Object]bool,
	visited map[*types.Func]bool) {

	info := pass.TypesInfo
	g := flow.New(body, info)

	observing := make(map[*flow.Block]bool)
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			if nodeTreeObservesCancel(info, observes, node, objs) {
				observing[b] = true
				break
			}
		}
	}
	// A select polls all its cases at once: if any case receives the
	// cancel signal, passing through the select head observes it,
	// whichever arm actually fires.
	for _, b := range g.Blocks {
		if observing[b] {
			continue
		}
		for _, s := range b.Succs {
			if strings.HasPrefix(s.Kind, "select.") && len(s.Nodes) > 0 &&
				nodeTreeObservesCancel(info, observes, s.Nodes[0], objs) {
				observing[b] = true
				break
			}
		}
	}
	avoid := func(b *flow.Block) bool { return observing[b] }

	names := make([]string, 0, len(objs))
	for obj := range objs {
		names = append(names, obj.Name())
	}

	for _, b := range g.Blocks {
		if b.Kind != "for.head" {
			continue
		}
		fs, ok := b.Stmt.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			continue
		}
		if suppressed(pass, sup, fs.Pos()) {
			continue
		}
		cycles := false
		for _, s := range b.Succs {
			if !observing[s] && g.CanReach(s, b, avoid) {
				cycles = true
				break
			}
		}
		if cycles {
			pass.Reportf(fs.Pos(),
				"goroutine is handed cancellation (%s) but this loop can iterate without "+
					"observing it; check the cancel channel (or ctx.Err/Done) on every path "+
					"so the goroutine stops when cancelled",
				strings.Join(names, ", "))
		}
	}

	// Follow forwarded carriers into same-package callees: the spin loop
	// may live in a helper.
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := astutil.CalleeFunc(info, call)
		node := graph.Nodes[fn]
		if node == nil || visited[fn] {
			return true
		}
		forwarded := make(map[types.Object]bool)
		params := paramObjs[fn]
		for i, arg := range call.Args {
			if i >= len(params) {
				break
			}
			id, ok := astutil.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			if objs[info.Uses[id]] && cancelCarrier(params[i].Type()) {
				forwarded[params[i]] = true
			}
		}
		if len(forwarded) > 0 {
			visited[fn] = true
			checkCancelLoops(pass, graph, observes, paramObjs, sup, node.Decl.Body, forwarded, visited)
		}
		return true
	})
}

// nodeTreeObservesCancel reports whether the subtree rooted at n contains
// an observation of any carrier in objs, without descending into nested
// function literals (their bodies run on other goroutines or not at all)
// or range bodies (which occupy their own blocks).
func nodeTreeObservesCancel(info *types.Info, observes map[*types.Func][]bool, n ast.Node, objs map[types.Object]bool) bool {
	if r, ok := n.(*ast.RangeStmt); ok {
		// Header only: range over the carrier itself drains it.
		if id, ok := astutil.Unparen(r.X).(*ast.Ident); ok && objs[info.Uses[id]] {
			return true
		}
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		if found {
			return false
		}
		if nodeObservesCancel(info, observes, x, objs) {
			found = true
			return false
		}
		return true
	})
	return found
}

// nodeObservesCancel reports whether the single node x directly observes a
// carrier in objs: a receive from it (or from a selector/Done() on it), a
// Done/Err method call on it, or a same-package call forwarding it to an
// observed parameter.
func nodeObservesCancel(info *types.Info, observes map[*types.Func][]bool, x ast.Node, objs map[types.Object]bool) bool {
	isCarrierIdent := func(e ast.Expr) bool {
		id, ok := astutil.Unparen(e).(*ast.Ident)
		return ok && objs[info.Uses[id]]
	}
	// The carrier root of a receive operand: ch, opts.Cancel, ctx.Done().
	carrierOperand := func(e ast.Expr) bool {
		switch e := astutil.Unparen(e).(type) {
		case *ast.Ident:
			return objs[info.Uses[e]]
		case *ast.SelectorExpr:
			return isCarrierIdent(e.X)
		case *ast.CallExpr:
			if sel, ok := astutil.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				return isCarrierIdent(sel.X)
			}
		}
		return false
	}
	switch x := x.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.ARROW && carrierOperand(x.X) {
			return true
		}
	case *ast.CallExpr:
		if sel, ok := astutil.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Done" || sel.Sel.Name == "Err") && isCarrierIdent(sel.X) {
				return true
			}
		}
		fn := astutil.CalleeFunc(info, x)
		sums, ok := observes[fn]
		if !ok {
			return false
		}
		for i, arg := range x.Args {
			if i < len(sums) && sums[i] && isCarrierIdent(arg) {
				return true
			}
		}
	case *ast.RangeStmt:
		return isCarrierIdent(x.X)
	}
	return false
}
