package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
	"logicregression/internal/analysis/flow"
)

// PanicBridge enforces the panic contract between the learner and the
// oracle layer (DESIGN.md §10): inside internal/core and internal/oracle,
// the only error-typed panic payload allowed on oracle-reachable paths is
// *oracle.Failure — the typed bridge that catchFailures translate back into
// error values. Plain string panics remain legal (they mark invariant
// violations, i.e. bugs, and must keep unwinding). Symmetrically, every
// recover() in those packages must type-check its result against
// *oracle.Failure and re-panic anything else, so a bridge never swallows a
// genuine bug.
// Oracle reachability crosses package boundaries through the facts store:
// each run exports an OracleReachable fact on every exported function whose
// summary reaches an oracle entry point, and a call to an imported function
// carrying that fact marks the caller oracle-reachable too — so a core
// helper that funnels through an exported oracle-package wrapper is held to
// the bridge contract even though it never names Eval itself.
var PanicBridge = &analysis.Analyzer{
	Name: "panicbridge",
	Doc: "in internal/core and internal/oracle: error-typed panic payloads " +
		"on oracle-reachable paths must be *oracle.Failure, and every " +
		"recover result must be type-asserted to *oracle.Failure with the " +
		"rest re-panicked; reachability crosses packages via OracleReachable facts",
	Run:       runPanicBridge,
	FactTypes: []analysis.Fact{&OracleReachable{}},
}

// An OracleReachable fact marks an exported function from whose body an
// oracle entry point (Eval, EvalBatch, ...) is reachable; panics below a
// call to it cross core.Learn's catchFailure bridge.
type OracleReachable struct{}

// AFact marks OracleReachable as a fact type.
func (*OracleReachable) AFact() {}

const failurePkg = "logicregression/internal/oracle"

// oracleEntryPoints are the method names whose calls mark a function as
// oracle-reachable: panics thrown below these calls cross the bridge that
// core.Learn's catchFailure guards.
var oracleEntryPoints = map[string]bool{
	"Eval": true, "EvalBatch": true, "EvalWords": true,
	"TryEval": true, "TryEvalBatch": true,
}

func runPanicBridge(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !strings.HasSuffix(path, "internal/core") && !strings.HasSuffix(path, "internal/oracle") {
		return nil
	}
	info := pass.TypesInfo
	graph := flow.BuildCallGraph(pass.Files, info)

	// Bottom-up summary: a function is oracle-reachable if its body (or a
	// same-package callee's) calls an oracle entry point, or calls an
	// imported function that another package's run proved reaches one
	// (the OracleReachable fact). Indirect calls do not propagate
	// reachability — conservative toward fewer findings.
	reaches := map[*flow.CallNode]bool{}
	bodyCallsOracle := func(body ast.Node) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if oracleEntryPoints[sel.Sel.Name] {
					found = true
				}
			}
			if fn := astutil.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
				if pass.ImportObjectFact(fn, &OracleReachable{}) {
					found = true
				}
			}
			return true
		})
		return found
	}
	graph.Fixpoint(func(n *flow.CallNode) bool {
		if reaches[n] {
			return false
		}
		v := bodyCallsOracle(n.Decl.Body)
		for _, c := range n.Calls {
			if c.Local != nil && reaches[c.Local] {
				v = true
			}
		}
		if v {
			reaches[n] = true
			return true
		}
		return false
	})

	for _, n := range graph.Order {
		if reaches[n] {
			checkPanicPayloads(pass, n.Decl.Body)
		}
		checkRecovers(pass, n.Decl.Body)
	}
	for _, n := range graph.Exported() {
		if reaches[n] {
			pass.ExportObjectFact(n.Fn, &OracleReachable{})
		}
	}
	return nil
}

// checkPanicPayloads flags panic(x) where x is error-typed but not
// *oracle.Failure. Re-panics of a recover() result carry interface{} and
// pass; string invariants pass; panic(err) is exactly the anti-pattern.
func checkPanicPayloads(pass *analysis.Pass, body ast.Node) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !astutil.IsBuiltin(info, call, "panic") || len(call.Args) != 1 {
			return true
		}
		t := info.TypeOf(call.Args[0])
		if t == nil || !implementsError(t) {
			return true
		}
		if astutil.NamedType(t, failurePkg, "Failure") {
			return true
		}
		pass.Reportf(call.Pos(),
			"panic with error payload of type %s on an oracle-reachable path; "+
				"wrap transport errors as panic(oracle.NewFailure(err)) so catchFailure can translate them",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
		return true
	})
}

// checkRecovers verifies that each recover() result is bound, type-asserted
// to *oracle.Failure, and that the assertion failure path re-panics the
// original value. A bare recover() (result discarded) swallows every panic
// — including real bugs — and is flagged. Each function literal is its own
// scope: the assertion and re-panic must live in the same deferred function
// as the recover itself to run during that unwind.
func checkRecovers(pass *analysis.Pass, body ast.Node) {
	checkRecoverScope(pass, body)
	for _, lit := range flow.FuncLits(body) {
		checkRecovers(pass, lit.Body)
	}
}

// checkRecoverScope checks the recover calls appearing directly in one
// function body, not descending into nested literals.
func checkRecoverScope(pass *analysis.Pass, body ast.Node) {
	info := pass.TypesInfo

	// Find the variable(s) the recover result is bound to, and bare
	// recovers whose result is discarded.
	var recVars []types.Object
	var recoverPos []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !astutil.IsBuiltin(info, call, "recover") {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if obj := astutil.ObjectOf(info, id); obj != nil {
							recVars = append(recVars, obj)
							continue
						}
					}
				}
				recoverPos = append(recoverPos, call)
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && astutil.IsBuiltin(info, call, "recover") {
				recoverPos = append(recoverPos, call)
			}
		}
		return true
	})
	for _, n := range recoverPos {
		pass.Reportf(n.Pos(),
			"recover() result discarded: this swallows every panic including real bugs; "+
				"bind it, assert *oracle.Failure, and re-panic the rest")
	}

	for _, obj := range recVars {
		asserted, repanicked := false, false
		ast.Inspect(body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				if usesObj(info, n.X, obj) && n.Type != nil {
					if t := info.TypeOf(n.Type); t != nil && astutil.NamedType(t, failurePkg, "Failure") {
						asserted = true
					}
				}
			case *ast.CallExpr:
				if astutil.IsBuiltin(info, n, "panic") && len(n.Args) == 1 && usesObj(info, n.Args[0], obj) {
					repanicked = true
				}
			case *ast.TypeSwitchStmt:
				// switch v := rec.(type) counts as a typed inspection when
				// a *oracle.Failure case is present.
				if ta, ok := stripAssign(n.Assign); ok && usesObj(info, ta.X, obj) {
					for _, c := range n.Body.List {
						cc := c.(*ast.CaseClause)
						for _, te := range cc.List {
							if t := info.TypeOf(te); t != nil && astutil.NamedType(t, failurePkg, "Failure") {
								asserted = true
							}
						}
					}
				}
			}
			return true
		})
		switch {
		case !asserted:
			pass.Reportf(obj.Pos(),
				"recover result %s is never type-asserted to *oracle.Failure; "+
					"only Failure panics may be translated to errors", obj.Name())
		case !repanicked:
			pass.Reportf(obj.Pos(),
				"recover result %s is asserted but non-Failure values are not re-panicked; "+
					"a swallowed bug panic corrupts the run silently", obj.Name())
		}
	}
}

// stripAssign extracts the type-assert expression from a type switch's
// assign statement (either `v := x.(type)` or bare `x.(type)`).
func stripAssign(s ast.Stmt) (*ast.TypeAssertExpr, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			ta, ok := s.Rhs[0].(*ast.TypeAssertExpr)
			return ta, ok
		}
	case *ast.ExprStmt:
		ta, ok := s.X.(*ast.TypeAssertExpr)
		return ta, ok
	}
	return nil, false
}

func usesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := astutil.Unparen(e).(*ast.Ident)
	return ok && astutil.ObjectOf(info, id) == obj
}

func implementsError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}
