package analyzers

import (
	"bufio"
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestHotpathGcflagsCrossCheck corroborates the static hotalloc verdicts
// with the compiler's own escape analysis: for every package containing a
// //logicreg:hotpath function, it rebuilds the package with -gcflags=-m and
// fails if the compiler reports a heap allocation ("escapes to heap" /
// "moved to heap") inside a marked function's line range — except on lines
// feeding an explicit panic (cold by the contract), lines calling a
// same-package panic guard (inlining attributes the guard's cold Sprintf
// boxing to the call site), or lines carrying a //logicreg:allow hotalloc
// suppression.
//
// The two analyses are deliberately different: hotalloc is strict and
// syntactic (it flags constructs that are likely to allocate), while -m is
// the ground truth for what actually hits the heap. hotalloc passing while
// -m reports an escape means the contract has a blind spot; this test makes
// that loud.
func TestHotpathGcflagsCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds hotpath packages with -gcflags=-m")
	}
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}

	list := exec.Command("go", "list", "-f", "{{.ImportPath}}\t{{.Dir}}", "logicregression/...")
	list.Dir = root
	out, err := list.Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}

	type span struct {
		fn         string
		file       string // base name
		start, end int
		exempt     map[int]bool // panic-feeding and allow-suppressed lines
	}
	checked := 0
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		importPath, dir, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		spans := hotpathSpans(t, dir)
		if len(spans) == 0 {
			continue
		}
		for _, ss := range spans {
			checked += len(ss)
		}

		// -gcflags scoped to just this package: deps come from the cache,
		// only the package under test is recompiled with escape diagnostics.
		build := exec.Command("go", "build", "-gcflags="+importPath+"=-m", importPath)
		build.Dir = root
		var diag bytes.Buffer
		build.Stdout = &diag
		build.Stderr = &diag
		if err := build.Run(); err != nil {
			t.Fatalf("go build %s: %v\n%s", importPath, err, diag.String())
		}

		msgRE := regexp.MustCompile(`^(.*\.go):(\d+):\d+: (.*)$`)
		sc := bufio.NewScanner(&diag)
		for sc.Scan() {
			m := msgRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			msg := m[3]
			if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
				continue
			}
			file := filepath.Base(m[1])
			ln, _ := strconv.Atoi(m[2])
			for _, s := range spans[file] {
				if ln >= s.start && ln <= s.end && !s.exempt[ln] {
					t.Errorf("%s: compiler reports %q at %s:%d inside //logicreg:hotpath %s, but hotalloc passed it",
						importPath, msg, file, ln, s.fn)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("found no //logicreg:hotpath functions to cross-check")
	}
	t.Logf("cross-checked %d hotpath functions against -gcflags=-m", checked)
}

// hotpathSpans parses a package directory (non-test files only) and returns
// the line spans of its //logicreg:hotpath functions, keyed by base file
// name, with panic-argument and allow-suppressed lines exempted.
func hotpathSpans(t *testing.T, dir string) map[string][]struct {
	fn         string
	file       string
	start, end int
	exempt     map[int]bool
} {
	t.Helper()
	type span = struct {
		fn         string
		file       string
		start, end int
		exempt     map[int]bool
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	spans := make(map[string][]span)
	fset := token.NewFileSet()

	// First sweep: same-package functions containing an explicit panic are
	// "panic guards" (eq/check-style precondition helpers). Their warm paths
	// are verified allocation-free by hotalloc's own bottom-up summaries,
	// but when the compiler inlines them it attributes their cold Sprintf
	// boxing to the caller's line — so guard call lines are exempt below.
	var parsed []*ast.File
	var bases []string
	guards := make(map[string]bool)
	for _, p := range paths {
		if strings.HasSuffix(p, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		parsed = append(parsed, f)
		bases = append(bases, filepath.Base(p))
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
						guards[fd.Name.Name] = true
						return false
					}
				}
				return true
			})
		}
	}

	for fi, f := range parsed {
		base := bases[fi]

		// Lines suppressed for hotalloc: the comment's line and the next.
		allowed := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowDirective+" ") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowDirective+" "))
				if len(fields) > 0 && fields[0] == "hotalloc" {
					ln := fset.Position(c.Pos()).Line
					allowed[ln] = true
					allowed[ln+1] = true
				}
			}
		}

		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			s := span{
				fn:     fd.Name.Name,
				file:   base,
				start:  fset.Position(fd.Body.Pos()).Line,
				end:    fset.Position(fd.Body.End()).Line,
				exempt: make(map[int]bool),
			}
			for ln := range allowed {
				if ln >= s.start && ln <= s.end {
					s.exempt[ln] = true
				}
			}
			// Arguments of an explicit panic are cold under the contract,
			// and calls to panic guards carry the guard's cold boxing.
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				exempt := false
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					exempt = fun.Name == "panic" || guards[fun.Name]
				case *ast.SelectorExpr:
					exempt = guards[fun.Sel.Name]
				}
				if exempt {
					for ln := fset.Position(call.Pos()).Line; ln <= fset.Position(call.End()).Line; ln++ {
						s.exempt[ln] = true
					}
				}
				return true
			})
			spans[base] = append(spans[base], s)
		}
	}
	return spans
}
