package analyzers

import (
	"go/ast"
	"go/types"

	"logicregression/internal/analysis"
)

// SeededRand flags uses of math/rand's process-global source. The pipeline
// guarantees byte-identical outputs at a fixed -seed; randomness that does
// not flow from a *rand.Rand constructed with the plumbed seed silently
// breaks that guarantee (and the global source is mutated by any package,
// so draws are not even stable across refactors).
var SeededRand = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "flags math/rand package-level functions (rand.Intn, rand.Shuffle, ...), " +
		"which draw from the process-global source; construct a *rand.Rand from " +
		"the plumbed seed instead",
	Run: runSeededRand,
}

// sourceConstructors are the math/rand package-level names that build an
// explicit generator rather than drawing from the global one.
var sourceConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runSeededRand(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkClockSeed(pass, call)
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if sourceConstructors[sel.Sel.Name] {
				return true
			}
			// Any other selector on the package — a call like rand.Intn or
			// a reference passed as a value — reaches the global source.
			if obj, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFn && obj.Type() != nil {
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the process-global source; use a *rand.Rand built from the plumbed seed",
					id.Name, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// checkClockSeed is the cheap syntactic first pass over the
// seeded-from-the-clock anti-pattern: a math/rand constructor whose
// argument textually contains a time.Now() chain, as in
// rand.NewSource(time.Now().UnixNano()). The flow-sensitive randtaint
// analyzer catches the same taint through variables, fields, and helpers;
// this check fires without any dataflow, so it also works in contexts where
// only single-file syntax is available.
func checkClockSeed(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return
	}
	if !sourceConstructors[sel.Sel.Name] && !randSeedSinks[sel.Sel.Name] {
		return
	}
	for _, arg := range call.Args {
		if containsTimeNow(pass.TypesInfo, arg) {
			pass.Reportf(call.Pos(),
				"rand source seeded from the clock (time.Now); use the plumbed seed so fixed-seed runs stay byte-identical")
			return
		}
	}
}

// containsTimeNow reports whether the expression contains a time.Now call.
func containsTimeNow(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "time" {
				found = true
			}
		}
		return true
	})
	return found
}
