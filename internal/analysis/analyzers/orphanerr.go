package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
)

// OrphanErr flags dropped errors from the netlist IO functions in
// internal/circuit and internal/aig (Parse*/Write*). A parse error that is
// ignored yields a truncated or empty circuit that every downstream stage
// happily consumes; a swallowed write error ships a corrupt netlist to the
// contest checker.
var OrphanErr = &analysis.Analyzer{
	Name: "orphanerr",
	Doc: "flags Parse*/Write* netlist IO calls whose error result is discarded " +
		"(expression statement, blank assignment, go/defer)",
	Run: runOrphanErr,
}

// netlistIO reports whether fn is a Parse*/Write* function from the
// circuit or AIG packages that returns an error.
func netlistIO(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	if !strings.HasSuffix(p, "internal/circuit") && !strings.HasSuffix(p, "internal/aig") {
		return false
	}
	name := fn.Name()
	if !strings.HasPrefix(name, "Parse") && !strings.HasPrefix(name, "Write") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return errResultIndex(sig) >= 0
}

// errResultIndex returns the index of the error result in sig, or -1.
func errResultIndex(sig *types.Signature) int {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return i
		}
	}
	return -1
}

func runOrphanErr(pass *analysis.Pass) error {
	report := func(call *ast.CallExpr, fn *types.Func, how string) {
		pass.Reportf(call.Pos(), "error from %s.%s is %s; a bad netlist must not pass silently",
			fn.Pkg().Name(), fn.Name(), how)
	}
	check := func(n ast.Node) *ast.CallExpr {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return nil
		}
		if !netlistIO(astutil.CalleeFunc(pass.TypesInfo, call)) {
			return nil
		}
		return call
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call := check(st.X); call != nil {
					report(call, astutil.CalleeFunc(pass.TypesInfo, call), "discarded")
				}
			case *ast.GoStmt:
				if call := check(st.Call); call != nil {
					report(call, astutil.CalleeFunc(pass.TypesInfo, call), "unobservable in a go statement")
				}
			case *ast.DeferStmt:
				if call := check(st.Call); call != nil {
					report(call, astutil.CalleeFunc(pass.TypesInfo, call), "unobservable in a deferred call")
				}
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call := check(st.Rhs[0])
				if call == nil {
					return true
				}
				fn := astutil.CalleeFunc(pass.TypesInfo, call)
				sig := fn.Type().(*types.Signature)
				idx := errResultIndex(sig)
				if idx >= len(st.Lhs) {
					return true
				}
				if id, ok := st.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
					report(call, fn, "assigned to the blank identifier")
				}
			}
			return true
		})
	}
	return nil
}
