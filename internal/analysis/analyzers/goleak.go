package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
	"logicregression/internal/analysis/flow"
)

// GoLeak requires every go statement to carry a completion witness — some
// mechanism a caller can use to wait for or bound the goroutine's lifetime:
// a sync.WaitGroup Done, a send or close on a channel, or a receive from a
// cancellation channel (ctx.Done() and friends). A goroutine with none of
// these outlives every observer; in this repo that turns deterministic
// runs and clean shutdowns into races. Named callees are checked by
// bottom-up summary over the package call graph; indirect calls are
// conservatively assumed to signal.
var GoLeak = &analysis.Analyzer{
	Name: "goleak",
	Doc: "flags go statements whose goroutine has no completion witness " +
		"(WaitGroup.Done, channel send/close, or cancellation receive): " +
		"callers cannot wait for or bound such a goroutine",
	Run: runGoLeak,
}

func runGoLeak(pass *analysis.Pass) error {
	info := pass.TypesInfo
	graph := flow.BuildCallGraph(pass.Files, info)

	// Bottom-up summary: a function signals completion if its body contains
	// a witness or it calls a same-package function that does. Indirect
	// calls count as signaling — conservative toward fewer findings.
	signals := map[*flow.CallNode]bool{}
	graph.Fixpoint(func(n *flow.CallNode) bool {
		if signals[n] {
			return false
		}
		v := hasWitness(info, n.Decl.Body) || n.HasIndirect
		for _, c := range n.Calls {
			if c.Local != nil && signals[c.Local] {
				v = true
			}
		}
		if v {
			signals[n] = true
			return true
		}
		return false
	})

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goSignals(info, graph, signals, gs.Call) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine has no completion witness; give it a WaitGroup Done, "+
					"a channel send/close, or a cancellation receive so callers can wait for it")
			return true
		})
	}
	return nil
}

// goSignals decides whether the goroutine started by call carries a
// completion witness.
func goSignals(info *types.Info, graph *flow.CallGraph, signals map[*flow.CallNode]bool, call *ast.CallExpr) bool {
	if lit, ok := astutil.Unparen(call.Fun).(*ast.FuncLit); ok {
		return litSignals(info, graph, signals, lit)
	}
	fn := astutil.CalleeFunc(info, call)
	if fn == nil {
		return true // go f() through a function value: unresolvable, stay silent
	}
	node := graph.Nodes[fn]
	if node == nil {
		return true // imported function: out of scope for a package summary
	}
	return signals[node]
}

// litSignals checks a go-func literal: a witness in its body, or a call to
// a signaling same-package function, counts.
func litSignals(info *types.Info, graph *flow.CallGraph, signals map[*flow.CallNode]bool, lit *ast.FuncLit) bool {
	if hasWitness(info, lit.Body) {
		return true
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := astutil.CalleeFunc(info, call)
		if fn == nil {
			// A call through a function value may signal; stay silent.
			if id, isIdent := astutil.Unparen(call.Fun).(*ast.Ident); !isIdent || info.Uses[id] == nil {
				found = true
			} else if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				found = true
			}
			return true
		}
		if node := graph.Nodes[fn]; node != nil && signals[node] {
			found = true
		}
		return true
	})
	return found
}

// hasWitness scans one body for a completion signal: wg.Done(), a channel
// send, close(ch), or a receive from a cancellation channel (a call like
// ctx.Done() used as a receive operand, including in select cases and
// range-over-channel).
func hasWitness(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if astutil.IsBuiltin(info, n, "close") {
				found = true
			}
			if sel, ok := astutil.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if fn := astutil.CalleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					found = true // sync.WaitGroup.Done
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true // drains a channel: terminates when it closes
				}
			}
		}
		return true
	})
	return found
}
