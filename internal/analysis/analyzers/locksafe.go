package analyzers

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
	"logicregression/internal/analysis/flow"
)

// LockSafe checks the mutex discipline flow-sensitively: every Lock (and
// successful TryLock) must be released on every path out of the function —
// normal returns and panic unwinds alike — and lock values must never be
// copied. A `defer mu.Unlock()` covers all subsequent exits, so it releases
// the lock at registration time in the abstraction; TryLock acquisitions
// are tracked branch-sensitively, so only the success edge holds the lock.
var LockSafe = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "flags locks that may still be held on some path to a return or " +
		"panic, and lock values copied by value (parameters, assignments, " +
		"range variables)",
	Run: runLockSafe,
}

// heldState maps a lock's rendered receiver expression (e.g. "s.mu") to its
// earliest acquisition position on any path. It is a may-held analysis:
// join is union, and a lock present at an exit block means some path leaks
// it.
type heldState map[string]token.Pos

// lockLattice instantiates the forward solver; tryVars maps boolean
// variables assigned from mu.TryLock() to the lock key, so `ok :=
// mu.TryLock(); if ok { ... }` is tracked as precisely as the inline form.
type lockLattice struct {
	info    *types.Info
	fset    *token.FileSet
	tryVars map[types.Object]string
	tryPos  map[types.Object]token.Pos
}

func (l *lockLattice) Bottom() heldState { return nil }
func (l *lockLattice) Entry() heldState  { return nil }

func (l *lockLattice) Join(a, b heldState) heldState {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(heldState, len(a)+len(b))
	for k, p := range a {
		out[k] = p
	}
	for k, p := range b {
		if q, ok := out[k]; !ok || p < q {
			out[k] = p
		}
	}
	return out
}

func (l *lockLattice) Equal(a, b heldState) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func (l *lockLattice) Transfer(b *flow.Block, in heldState) heldState {
	out := l.Join(in, nil)
	if out == nil {
		out = make(heldState)
	}
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.ExprStmt:
			l.applyCall(n.X, out)
		case *ast.DeferStmt:
			// defer mu.Unlock() releases on every later exit; in the
			// abstraction the lock stops being leakable the moment the
			// defer is registered.
			if key, op := l.lockOp(n.Call); op == "Unlock" || op == "RUnlock" {
				delete(out, key)
			}
		}
	}
	return out
}

// FlowBranch models conditional acquisition: on the true edge of
// `if mu.TryLock()` (or `if ok` where ok came from TryLock) the lock is
// held; on the false edge it is not. Negated conditions swap the edges.
func (l *lockLattice) FlowBranch(b *flow.Block, succIdx int, out heldState) heldState {
	cond := b.Cond
	onTrue := succIdx == 0
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond = u.X
		onTrue = !onTrue
	}
	key, pos, ok := l.tryLockCond(cond)
	if !ok {
		return out
	}
	res := l.Join(out, nil)
	if res == nil {
		res = make(heldState)
	}
	if onTrue {
		if _, held := res[key]; !held {
			res[key] = pos
		}
	} else {
		delete(res, key)
	}
	return res
}

// tryLockCond recognizes a condition that reflects TryLock success: the
// call itself, or a boolean variable assigned from one.
func (l *lockLattice) tryLockCond(cond ast.Expr) (key string, pos token.Pos, ok bool) {
	switch cond := astutil.Unparen(cond).(type) {
	case *ast.CallExpr:
		if k, op := l.lockOp(cond); op == "TryLock" || op == "TryRLock" {
			return k, cond.Pos(), true
		}
	case *ast.Ident:
		if obj := astutil.ObjectOf(l.info, cond); obj != nil {
			if k, tracked := l.tryVars[obj]; tracked {
				return k, l.tryPos[obj], true
			}
		}
	}
	return "", token.NoPos, false
}

// applyCall updates the held set for a direct Lock/Unlock statement.
func (l *lockLattice) applyCall(e ast.Expr, s heldState) {
	call, ok := astutil.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	key, op := l.lockOp(call)
	switch op {
	case "Lock", "RLock":
		if _, held := s[key]; !held {
			s[key] = call.Pos()
		}
	case "Unlock", "RUnlock":
		delete(s, key)
	}
}

// lockOp recognizes a sync lock method call and returns the lock's key and
// the operation name. Non-lock calls return op == "".
func (l *lockLattice) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	fn := astutil.CalleeFunc(l.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	return renderExpr(l.fset, sel.X), sel.Sel.Name
}

func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return strings.Join(strings.Fields(buf.String()), " ")
}

func runLockSafe(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockCopies(pass, fd)
			checkLockBalance(pass, fd.Body)
		}
	}
	return nil
}

// checkLockBalance solves the held-lock analysis over one body and every
// function literal inside it (each literal is its own function: a closure
// that returns while holding a lock leaks it just the same).
func checkLockBalance(pass *analysis.Pass, body *ast.BlockStmt) {
	lat := &lockLattice{
		info:    pass.TypesInfo,
		fset:    pass.Fset,
		tryVars: map[types.Object]string{},
		tryPos:  map[types.Object]token.Pos{},
	}
	// Pre-pass: variables bound to a TryLock result.
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op := lat.lockOp(call)
		if op != "TryLock" && op != "TryRLock" {
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok {
			if obj := astutil.ObjectOf(pass.TypesInfo, id); obj != nil {
				lat.tryVars[obj] = key
				lat.tryPos[obj] = call.Pos()
			}
		}
		return true
	})

	g := flow.New(body, pass.TypesInfo)
	sol := flow.Forward[heldState](g, lat)
	if !sol.Converged {
		return // broken lattice would spew nonsense; stay silent
	}
	reported := map[string]bool{}
	report := func(s heldState, exitKind string) {
		for key, pos := range s {
			if reported[key] {
				continue
			}
			reported[key] = true
			pass.Reportf(pos,
				"%s is locked here but may still be held at a %s; release it on every path (defer %s.Unlock() covers panics too)",
				key, exitKind, key)
		}
	}
	report(sol.In[g.Exit], "return")
	report(sol.In[g.Panic], "panic")

	for _, lit := range flow.FuncLits(body) {
		checkLockBalance(pass, lit.Body)
	}
}

// checkLockCopies flags lock values copied by value: parameters and
// receivers of lock-containing type, assignments whose source is an
// existing lock-containing value, and range variables that copy one per
// iteration. Fresh values (composite literals, new(T)) are fine.
func checkLockCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	checkField := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := info.TypeOf(f.Type)
			if t == nil || isPointerLike(t) {
				continue
			}
			if lockName := containsLock(t); lockName != "" {
				pass.Reportf(f.Type.Pos(),
					"%s copies a lock: type contains %s; pass a pointer instead", what, lockName)
			}
		}
	}
	checkField(fd.Recv, "value receiver")
	checkField(fd.Type.Params, "parameter")

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue // discarded, nothing aliases the copy
				}
				if !copiesExisting(rhs) {
					continue
				}
				t := info.TypeOf(rhs)
				if t == nil || isPointerLike(t) {
					continue
				}
				if lockName := containsLock(t); lockName != "" {
					pass.Reportf(rhs.Pos(),
						"assignment copies a lock: value contains %s; use a pointer", lockName)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			t := info.TypeOf(n.Value)
			if t == nil || isPointerLike(t) {
				return true
			}
			if lockName := containsLock(t); lockName != "" {
				pass.Reportf(n.Value.Pos(),
					"range copies a lock each iteration: element contains %s; range over indices or pointers", lockName)
			}
		}
		return true
	})
}

// copiesExisting reports whether evaluating e copies a pre-existing value —
// as opposed to creating a fresh one (composite literal, conversion of a
// literal) or producing a pointer.
func copiesExisting(e ast.Expr) bool {
	switch e := astutil.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.MUL
	}
	return false
}

func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// containsLock reports (by name) the first sync lock found by value inside
// t: sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond, or any
// struct/array embedding one.
func containsLock(t types.Type) string {
	return findLock(t, map[types.Type]bool{})
}

func findLock(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := findLock(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return findLock(u.Elem(), seen)
	}
	return ""
}
