package analyzers

import (
	"go/ast"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/flow/ssa"
)

// DeadBranch flags branch conditions that sparse conditional constant
// propagation proves always-true or always-false: one arm can never
// execute. These are either leftover debug scaffolding (`verbose := false`
// threaded into checks) or a refactoring residue where the guarded state
// can no longer occur — both hide real code from tests and readers.
//
// Conditions that the type checker already folds to a constant (`if
// debugBuild` on a const, `if true {}` scoping blocks) are deliberate
// compile-time configuration and are not reported; neither are conditions
// inside branches SCCP has itself proven unreachable, so one root cause
// yields one finding.
var DeadBranch = &analysis.Analyzer{
	Name: "deadbranch",
	Doc: "flags conditions SCCP proves constant, so one branch arm is " +
		"unreachable at runtime",
	Run: runDeadBranch,
}

func runDeadBranch(pass *analysis.Pass) error {
	sup := suppressedLines(pass, "deadbranch")
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			f := ssa.Build(fd, info, nil)
			if f == nil {
				continue
			}
			s := ssa.RunSCCP(f)
			for _, b := range f.CFG.Blocks {
				if b.Cond == nil || len(b.Succs) != 2 || !s.Reachable(b) {
					continue
				}
				if tv, ok := info.Types[b.Cond]; ok && tv.Value != nil {
					continue // compile-time constant: deliberate configuration
				}
				truth, ok := s.BranchConst(b)
				if !ok || suppressed(pass, sup, b.Cond.Pos()) {
					continue
				}
				arm := "true"
				dead := "false"
				if !truth {
					arm, dead = dead, arm
				}
				pass.Reportf(b.Cond.Pos(),
					"condition is always %s: the %s arm never runs; inline the "+
						"live path or delete the dead one",
					arm, dead)
			}
		}
	}
	return nil
}
