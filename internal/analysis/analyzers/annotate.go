package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"logicregression/internal/analysis"
)

// Annotation grammar shared by the contract analyzers (see DESIGN.md §12):
//
//	//logicreg:hotpath
//	    on a function's doc comment: the function is a hot-path kernel and
//	    must satisfy the hotalloc contract (no heap allocation, interface
//	    boxing, or defer-in-loop on any non-panic path).
//
//	//logicreg:allow <analyzer> <reason>
//	    suppresses the named analyzer's findings on the same line and the
//	    line directly below the comment. The reason is mandatory by
//	    convention: a suppression is a reviewed exception, not an off switch.

const hotpathDirective = "//logicreg:hotpath"
const allowDirective = "//logicreg:allow"

// isHotpath reports whether fd's doc comment carries //logicreg:hotpath.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// suppressedLines collects the //logicreg:allow <name> suppressions in the
// pass's files: the returned set holds "file:line" keys for the comment's
// own line and the line directly below it (so both trailing comments and
// whole-line comments above the code work).
func suppressedLines(pass *analysis.Pass, name string) map[string]bool {
	sup := make(map[string]bool)
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowDirective+" ") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowDirective+" "))
				if len(fields) == 0 || fields[0] != name {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				sup[fmt.Sprintf("%s:%d", p.Filename, p.Line)] = true
				sup[fmt.Sprintf("%s:%d", p.Filename, p.Line+1)] = true
			}
		}
	}
	return sup
}

// suppressed reports whether pos falls on a line suppressed for the
// analyzer whose suppression set sup is.
func suppressed(pass *analysis.Pass, sup map[string]bool, pos token.Pos) bool {
	p := pass.Fset.Position(pos)
	return sup[fmt.Sprintf("%s:%d", p.Filename, p.Line)]
}
