package analyzers

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logicregression/internal/analysis"
)

// TestSSACacheInvalidation exercises the cached driver with an SSA-backed
// analyzer: deadbranch's verdict in package hot exists only because SCCP
// folds a constant imported from package mode, so editing mode must reach
// hot's cache key — including under a narrow pattern where mode is not a
// unit of the run — while the unrelated package calm keeps replaying.
func TestSSACacheInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list on a temp module")
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/ssacache\n\ngo 1.21\n",
		"mode/mode.go": `package mode

const Threshold = 1
`,
		"hot/hot.go": `package hot

import "example.com/ssacache/mode"

func Pick(x int) int {
	v := mode.Threshold
	if v > 0 {
		return x
	}
	return -x
}
`,
		"calm/calm.go": `package calm

func Double(x int) int { return 2 * x }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := analysis.OpenCache(filepath.Join(dir, "factcache"))
	if err != nil {
		t.Fatal(err)
	}
	d := &analysis.Driver{
		Analyzers: []*analysis.Analyzer{DeadBranch},
		Parallel:  4,
		Cache:     cache,
		Version:   "ssacache-test-1",
	}
	run := func(wantUnits int, patterns ...string) (string, analysis.RunStats) {
		t.Helper()
		units, err := analysis.LoadPackages(dir, patterns...)
		if err != nil {
			t.Fatal(err)
		}
		if len(units) != wantUnits {
			t.Fatalf("loaded %d units for %v, want %d", len(units), patterns, wantUnits)
		}
		results, stats, err := d.Run(units)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Unit.ImportPath, r.Err)
			}
			for _, diag := range r.Diags {
				fmt.Fprintf(&sb, "%s: %s (%s)\n", diag.Pos, diag.Message, diag.Analyzer)
			}
		}
		return sb.String(), stats
	}

	// Cold full sweep: the hot/ branch folds through the imported constant.
	cold, stats := run(3, "./...")
	if stats.Cached != 0 || stats.Failed != 0 {
		t.Fatalf("cold stats = %+v, want 0 cached, 0 failed", stats)
	}
	if !strings.Contains(cold, "always true") || !strings.Contains(cold, filepath.Join("hot", "hot.go")) {
		t.Fatalf("missing SCCP verdict in hot:\n%s", cold)
	}

	// Warm full sweep: every unit replays, output byte-identical.
	warm, stats := run(3, "./...")
	if stats.Cached != 3 {
		t.Fatalf("warm stats = %+v, want 3 cached", stats)
	}
	if warm != cold {
		t.Fatalf("replayed output differs:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}

	// Narrow pattern: hot alone is the unit. Its key is shaped differently
	// here (mode is out-of-run, so it contributes a recursive source hash
	// rather than a published key), so the first narrow run analyzes once
	// and the second replays.
	if _, stats = run(1, "./hot"); stats.Cached != 0 {
		t.Fatalf("narrow cold stats = %+v, want 0 cached", stats)
	}
	if _, stats = run(1, "./hot"); stats.Cached != 1 {
		t.Fatalf("narrow warm stats = %+v, want 1 cached", stats)
	}

	// Edit the dependency's constant. mode is not a unit of the narrow run,
	// but its source reaches hot's cache key through the recursive source
	// hash, so the narrow run must re-analyze and flip the verdict.
	modePath := filepath.Join(dir, "mode", "mode.go")
	if err := os.WriteFile(modePath, []byte("package mode\n\nconst Threshold = -1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	flipped, stats := run(1, "./hot")
	if stats.Cached != 0 {
		t.Fatalf("narrow stats after dep edit = %+v, want 0 cached", stats)
	}
	if !strings.Contains(flipped, "always false") {
		t.Fatalf("dep edit did not flip the SCCP verdict:\n%s", flipped)
	}

	// Full sweep after the edit: the unrelated package replays; mode is
	// dirty and hot's key inherits mode's new published key, so both
	// re-analyze.
	full, stats := run(3, "./...")
	if stats.Cached != 1 {
		t.Fatalf("full stats after dep edit = %+v, want 1 cached (calm)", stats)
	}
	if !strings.Contains(full, "always false") {
		t.Fatalf("full sweep after dep edit kept the stale verdict:\n%s", full)
	}
}

// TestBaselineNamesMatchRegistry pins REPOLINT_BASELINE.json to the analyzer
// registry: every registered analyzer has an entry, no entry names a retired
// analyzer (the ratchet hard-errors on those at runtime; this catches them
// at test time), and the repo floor stays all-zeros.
func TestBaselineNamesMatchRegistry(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "REPOLINT_BASELINE.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base struct {
		Analyzers map[string]int `json:"analyzers"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	registered := make(map[string]bool)
	for _, a := range All() {
		registered[a.Name] = true
		if _, ok := base.Analyzers[a.Name]; !ok {
			t.Errorf("analyzer %q missing from REPOLINT_BASELINE.json", a.Name)
		}
	}
	for name, limit := range base.Analyzers {
		if !registered[name] {
			t.Errorf("baseline entry %q names no registered analyzer", name)
		}
		if limit != 0 {
			t.Errorf("baseline for %q is %d, want 0: fix the findings instead of floor-raising", name, limit)
		}
	}
}
