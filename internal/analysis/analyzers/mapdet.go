package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
	"logicregression/internal/analysis/flow"
)

// MapDet enforces the map-order determinism contract the parallel learning
// core is held to (DESIGN.md §13): values whose order comes from a
// range-over-map or from select arrival order must not reach a returned
// slice, serialized output, or a merge position without an intervening
// sort. Concretely, inside a range over a map (or a clause of a select
// with two or more communication cases):
//
//   - appending to a slice taints that slice: it is now in iteration
//     order, and returning or serializing it later without a sort between
//     the append and the use is a finding (the canonical
//     collect-keys-then-sort idiom passes, because the sort intervenes);
//   - writing iteration-dependent values to an io.Writer / fmt stream /
//     encoder is a finding at the write (the bytes hit the output in map
//     order with no later chance to fix it);
//   - sending iteration-dependent values on a channel is a finding (the
//     receiver merges in arrival order);
//   - writing through a loop-carried counter index (s[i] = v; i++) is a
//     finding, while indexing by the map key itself (s[k] = v) is
//     deterministic and passes;
//   - accumulating into a float or string with += is a finding (neither
//     reduction is order-insensitive), while integer/bitwise accumulation
//     passes.
//
// Functions that deliberately return map-ordered slices acknowledge it
// with //logicreg:allow mapdet <reason>; the finding is suppressed but the
// function still exports an Unordered fact, and callers — in this package
// or any dependent one, via the facts store — have the same contract
// applied to the call's result: sort it before returning, serializing, or
// merging it.
var MapDet = &analysis.Analyzer{
	Name: "mapdet",
	Doc: "range-over-map and select-arrival values must not flow into " +
		"returned slices, serialized output, or merge positions without an " +
		"intervening sort; unordered-returning functions export a fact so " +
		"callers inherit the obligation",
	Run:       runMapDet,
	FactTypes: []analysis.Fact{&Unordered{}},
}

// An Unordered fact marks an exported function at least one of whose
// returned slices is built in map-iteration or select-arrival order. The
// caller owns the ordering obligation.
type Unordered struct{}

// AFact marks Unordered as a fact type.
func (*Unordered) AFact() {}

// sortFuncs are the stdlib entry points that establish a deterministic
// order; passing a tainted slice through any of them clears the taint.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// writeNames are method names that commit bytes to an output stream.
var writeNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// mdRegion is one syntactic scope whose execution order is
// nondeterministic.
type mdRegion struct {
	kind string                // "map iteration" or "select arrival"
	vars map[types.Object]bool // loop key/value or received variables
	// assigned are the objects written anywhere inside the region —
	// loop-carried counters and accumulators.
	assigned map[types.Object]bool
	pos      token.Pos
	end      token.Pos
}

// mdTaint records a slice object known to be in nondeterministic order
// from taintPos onward.
type mdTaint struct {
	obj  types.Object
	pos  token.Pos
	kind string
}

// mdEvent is a position-stamped use of an object.
type mdEvent struct {
	obj types.Object
	pos token.Pos
}

// mdCallTaint is an assignment of a call result: tainted if the callee is
// known (by same-package summary or imported fact) to return unordered
// slices.
type mdCallTaint struct {
	obj    types.Object
	callee *types.Func
	pos    token.Pos
}

// mdFinding is one diagnostic candidate.
type mdFinding struct {
	pos token.Pos
	msg string
	// ret marks findings about returned values; they drive the
	// Unordered summary even when suppressed.
	ret bool
}

// mdScan is everything the evaluator needs to know about one body.
type mdScan struct {
	direct     []mdFinding // in-region sinks, final regardless of taint
	taints     []mdTaint
	callTaints []mdCallTaint
	sorts      []mdEvent
	returns    []mdEvent // object used in a return expression
	writes     []mdEvent // object serialized outside any region
	sends      []mdEvent // object sent on a channel outside any region
}

func runMapDet(pass *analysis.Pass) error {
	info := pass.TypesInfo
	graph := flow.BuildCallGraph(pass.Files, info)
	sup := suppressedLines(pass, "mapdet")

	scans := make(map[*flow.CallNode]*mdScan)
	for _, n := range graph.Order {
		scans[n] = scanMapDet(pass, n.Decl.Body)
	}

	// Bottom-up summary: does the function return an unordered slice
	// (directly, or by forwarding an unordered callee result unsorted)?
	// Suppression does not clear the summary — an allow comment
	// acknowledges the order, it does not impose one.
	unordered := make(map[*types.Func]bool)
	calleeUnordered := func(fn *types.Func) bool {
		if fn == nil {
			return false
		}
		if unordered[fn] {
			return true
		}
		return pass.ImportObjectFact(fn, &Unordered{})
	}
	graph.Fixpoint(func(n *flow.CallNode) bool {
		if unordered[n.Fn] {
			return false
		}
		if _, rets := evalMapDet(scans[n], calleeUnordered); rets {
			unordered[n.Fn] = true
			return true
		}
		return false
	})

	// Final pass: report (suppression applied) and export facts.
	for _, n := range graph.Order {
		findings, _ := evalMapDet(scans[n], calleeUnordered)
		findings = append(findings, scans[n].direct...)
		for _, f := range findings {
			if !suppressed(pass, sup, f.pos) {
				pass.Reportf(f.pos, "%s", f.msg)
			}
		}
	}
	for _, n := range graph.Exported() {
		if unordered[n.Fn] {
			pass.ExportObjectFact(n.Fn, &Unordered{})
		}
	}
	return nil
}

// evalMapDet resolves the scan's taints against its sorts and uses,
// returning the taint-dependent findings and whether any return carries an
// unordered slice.
func evalMapDet(sc *mdScan, calleeUnordered func(*types.Func) bool) (findings []mdFinding, unorderedReturn bool) {
	type taintInfo struct {
		pos  token.Pos
		kind string
	}
	tainted := make(map[types.Object]taintInfo)
	for _, t := range sc.taints {
		if _, ok := tainted[t.obj]; !ok {
			tainted[t.obj] = taintInfo{pos: t.pos, kind: t.kind}
		}
	}
	for _, ct := range sc.callTaints {
		if calleeUnordered(ct.callee) {
			if _, ok := tainted[ct.obj]; !ok {
				tainted[ct.obj] = taintInfo{pos: ct.pos,
					kind: "the unordered order of " + ct.callee.Name() + "'s result"}
			}
		}
	}
	sortedBetween := func(obj types.Object, from, to token.Pos) bool {
		for _, s := range sc.sorts {
			if s.obj == obj && s.pos > from && s.pos < to {
				return true
			}
		}
		return false
	}
	check := func(events []mdEvent, what string, ret bool) {
		for _, e := range events {
			t, ok := tainted[e.obj]
			if !ok || e.pos <= t.pos || sortedBetween(e.obj, t.pos, e.pos) {
				continue
			}
			findings = append(findings, mdFinding{
				pos: e.pos,
				msg: e.obj.Name() + " is in " + t.kind + "; sort it before it is " + what,
				ret: ret,
			})
			if ret {
				unorderedReturn = true
			}
		}
	}
	check(sc.returns, "returned", true)
	check(sc.writes, "serialized", false)
	check(sc.sends, "sent to a merge point", false)
	return findings, unorderedReturn
}

// scanMapDet walks one function body collecting regions, taints, and uses.
func scanMapDet(pass *analysis.Pass, body *ast.BlockStmt) *mdScan {
	info := pass.TypesInfo
	sc := &mdScan{}
	var walk func(n ast.Node, region *mdRegion)

	obj := func(e ast.Expr) types.Object {
		if id, ok := astutil.Unparen(e).(*ast.Ident); ok {
			return astutil.ObjectOf(info, id)
		}
		return nil
	}
	// usesRegionVar reports whether e mentions one of the region's
	// nondeterministically-bound variables.
	usesRegionVar := func(e ast.Expr, r *mdRegion) bool {
		if r == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && r.vars[astutil.ObjectOf(info, id)] {
				found = true
			}
			return true
		})
		return found
	}
	// collectObjs gathers every object mentioned in e, skipping the
	// order-insensitive len/cap projections.
	var collectObjs func(e ast.Expr) []types.Object
	collectObjs = func(e ast.Expr) []types.Object {
		var objs []types.Object
		ast.Inspect(e, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if astutil.IsBuiltin(info, call, "len") || astutil.IsBuiltin(info, call, "cap") {
					return false
				}
			}
			if id, ok := x.(*ast.Ident); ok {
				if o := astutil.ObjectOf(info, id); o != nil {
					objs = append(objs, o)
				}
			}
			return true
		})
		return objs
	}

	handleCall := func(call *ast.CallExpr, region *mdRegion) {
		fn := astutil.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		pkg, name := fn.Pkg().Name(), fn.Name()
		if byPkg, ok := sortFuncs[pkg]; ok && byPkg[name] {
			for _, arg := range call.Args {
				for _, o := range collectObjs(arg) {
					sc.sorts = append(sc.sorts, mdEvent{obj: o, pos: call.Pos()})
				}
			}
			return
		}
		isWrite := writeNames[name] && fn.Type().(*types.Signature).Recv() != nil
		isPrint := pkg == "fmt" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print"))
		if !isWrite && !isPrint {
			return
		}
		if region != nil {
			for _, arg := range call.Args {
				if usesRegionVar(arg, region) {
					sc.direct = append(sc.direct, mdFinding{
						pos: call.Pos(),
						msg: "output written inside " + region.kind + " depends on its order; " +
							"collect into a slice and sort before serializing",
					})
					return
				}
			}
			return
		}
		for _, arg := range call.Args {
			for _, o := range collectObjs(arg) {
				sc.writes = append(sc.writes, mdEvent{obj: o, pos: call.Pos()})
			}
		}
	}

	handleAssign := func(a *ast.AssignStmt, region *mdRegion) {
		// Order-dependent accumulation: float or string += inside a
		// region.
		if a.Tok == token.ADD_ASSIGN && region != nil && len(a.Lhs) == 1 && len(a.Rhs) == 1 {
			if usesRegionVar(a.Rhs[0], region) {
				if t := info.TypeOf(a.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok &&
						b.Info()&(types.IsFloat|types.IsString) != 0 {
						sc.direct = append(sc.direct, mdFinding{
							pos: a.Pos(),
							msg: "accumulating " + b.String() + " values in " + region.kind +
								" order is not deterministic; accumulate into a slice and sort, " +
								"or use an order-insensitive reduction",
						})
					}
				}
			}
		}
		for i, rhs := range a.Rhs {
			if i >= len(a.Lhs) {
				break
			}
			call, ok := astutil.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			dst := obj(a.Lhs[i])
			// append under a region taints the destination slice.
			if astutil.IsBuiltin(info, call, "append") {
				if region != nil && dst != nil {
					sc.taints = append(sc.taints, mdTaint{obj: dst, pos: a.Pos(), kind: region.kind + " order"})
				}
				continue
			}
			// Assignment of a callee result: judged later against
			// summaries and facts.
			if fn := astutil.CalleeFunc(info, call); fn != nil && dst != nil {
				sc.callTaints = append(sc.callTaints, mdCallTaint{obj: dst, callee: fn, pos: a.Pos()})
			}
		}
		// Counter-indexed merge position: s[i] = v with i a loop-carried
		// counter (assigned in the region, not the map key).
		if region != nil {
			for _, lhs := range a.Lhs {
				ix, ok := astutil.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if t := info.TypeOf(ix.X); t == nil {
					continue
				} else if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
					continue
				}
				for _, o := range collectObjs(ix.Index) {
					if region.assigned[o] && !region.vars[o] {
						sc.direct = append(sc.direct, mdFinding{
							pos: lhs.Pos(),
							msg: "write through loop-carried index " + o.Name() + " places values in " +
								region.kind + " order; index by the key or sort afterwards",
						})
						break
					}
				}
			}
		}
	}

	// assignedObjs pre-collects the objects written inside a region body.
	assignedObjs := func(n ast.Node) map[types.Object]bool {
		set := make(map[types.Object]bool)
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if o := obj(lhs); o != nil {
						set[o] = true
					}
				}
			case *ast.IncDecStmt:
				if o := obj(x.X); o != nil {
					set[o] = true
				}
			}
			return true
		})
		return set
	}

	walk = func(n ast.Node, region *mdRegion) {
		ast.Inspect(n, func(x ast.Node) bool {
			if x == nil {
				return true
			}
			if x == n {
				// The entry node itself only needs its children visited
				// unless it is a handled statement passed in directly
				// (select-clause bodies arrive one statement at a time).
				switch x.(type) {
				case *ast.AssignStmt, *ast.SendStmt, *ast.ReturnStmt, *ast.CallExpr:
				default:
					return true
				}
			}
			switch x := x.(type) {
			case *ast.RangeStmt:
				walk(x.X, region)
				t := info.TypeOf(x.X)
				if t == nil {
					return false
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					walk(x.Body, region)
					return false
				}
				inner := &mdRegion{
					kind:     "map iteration",
					vars:     make(map[types.Object]bool),
					assigned: assignedObjs(x.Body),
					pos:      x.Pos(), end: x.End(),
				}
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if e != nil {
						if o := obj(e); o != nil {
							inner.vars[o] = true
						}
					}
				}
				walk(x.Body, inner)
				return false
			case *ast.SelectStmt:
				comm := 0
				for _, c := range x.Body.List {
					if c.(*ast.CommClause).Comm != nil {
						comm++
					}
				}
				for _, c := range x.Body.List {
					cc := c.(*ast.CommClause)
					r := region
					if comm >= 2 && cc.Comm != nil {
						r = &mdRegion{
							kind:     "select arrival",
							vars:     make(map[types.Object]bool),
							assigned: assignedObjs(cc),
							pos:      x.Pos(), end: x.End(),
						}
						if a, ok := cc.Comm.(*ast.AssignStmt); ok {
							for _, lhs := range a.Lhs {
								if o := obj(lhs); o != nil {
									r.vars[o] = true
								}
							}
						}
					}
					for _, s := range cc.Body {
						walk(s, r)
					}
				}
				return false
			case *ast.AssignStmt:
				handleAssign(x, region)
			case *ast.SendStmt:
				if region != nil {
					if usesRegionVar(x.Value, region) {
						sc.direct = append(sc.direct, mdFinding{
							pos: x.Pos(),
							msg: "send inside " + region.kind + " delivers values in its order; " +
								"a downstream merge will be nondeterministic unless the receiver sorts",
						})
					}
				} else {
					for _, o := range collectObjs(x.Value) {
						sc.sends = append(sc.sends, mdEvent{obj: o, pos: x.Pos()})
					}
				}
			case *ast.ReturnStmt:
				for _, res := range x.Results {
					for _, o := range collectObjs(res) {
						sc.returns = append(sc.returns, mdEvent{obj: o, pos: x.Pos()})
					}
				}
			case *ast.CallExpr:
				handleCall(x, region)
			case *ast.FuncLit:
				// A literal's body executes with its own control flow;
				// analyze it region-free but share the scan so taints on
				// captured slices still resolve.
				walk(x.Body, nil)
				return false
			}
			return true
		})
	}
	walk(body, nil)
	return sc
}
