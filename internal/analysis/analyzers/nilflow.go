package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/flow/ssa"
)

// NilFlow flags dereference-style uses of a call result on paths where the
// paired error result is proven non-nil by a dominating branch check — the
// `v, err := open(...); if err != nil { return v.Close() }` class of bug:
// by the function's own contract, v may be nil exactly when err is not.
//
// The check is SSA-precise: it tracks the specific value produced by the
// call, so a reassignment (`v = fallback()`) between the check and the use
// ends the value's liability, and an error checked into one branch never
// taints uses the branch does not dominate. Only nilable result types
// (pointers, interfaces, slices, maps, funcs, chans) paired with an
// error-typed result in the same assignment are considered, and only uses
// that panic on nil (field/method selection through a pointer or
// interface, dereference, slice indexing, calling) are flagged.
var NilFlow = &analysis.Analyzer{
	Name: "nilflow",
	Doc: "flags uses of a call result that may be nil because the paired " +
		"err != nil branch is taken, tracked through SSA values",
	Run: runNilFlow,
}

func runNilFlow(pass *analysis.Pass) error {
	sup := suppressedLines(pass, "nilflow")
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			f := ssa.Build(fd, info, nil)
			if f == nil {
				continue
			}
			checkNilFlowFunc(pass, f, fd, sup)
		}
	}
	return nil
}

// callPair is one multi-value call assignment producing at least one
// nilable result and exactly one error result.
type callPair struct {
	results []*ssa.Value // the nilable, non-error results
	errV    *ssa.Value
}

func checkNilFlowFunc(pass *analysis.Pass, f *ssa.Func, fd *ast.FuncDecl,
	sup map[string]bool) {

	// Group call-result values by their call expression.
	byCall := make(map[*ast.CallExpr]*callPair)
	for _, v := range f.Values {
		if v.Kind != ssa.KindCall || v.Call == nil || v.Var == nil {
			continue
		}
		p := byCall[v.Call]
		if p == nil {
			p = &callPair{}
			byCall[v.Call] = p
		}
		if isErrorType(v.Var.Type()) {
			if p.errV != nil {
				p.errV = nil // two error results: ambiguous pairing, skip
				delete(byCall, v.Call)
				continue
			}
			p.errV = v
		} else if isNilable(v.Var.Type()) {
			p.results = append(p.results, v)
		}
	}

	parents := parentMap(fd.Body)
	for _, p := range byCall {
		if p.errV == nil || len(p.results) == 0 {
			continue
		}
		for _, res := range p.results {
			for _, use := range f.UsesOf[res] {
				if !riskyNilUse(pass.TypesInfo, parents, use) {
					continue
				}
				blk := f.BlockAt(use.Pos())
				if blk == nil {
					continue
				}
				for _, fact := range f.FactsAt(blk) {
					if !factProvesErrNonNil(f, fact, p.errV) {
						continue
					}
					if !suppressed(pass, sup, use.Pos()) {
						pass.Reportf(use.Pos(),
							"%s may be nil here: this path is only taken when %s != nil "+
								"(checked at %s), and the two come from the same call",
							use.Name, p.errV.Var.Name(),
							pass.Fset.Position(fact.Cond.Pos()))
					}
					break
				}
			}
		}
	}
}

// factProvesErrNonNil reports whether a dominating branch fact pins the
// error value non-nil: `err != nil` taken true or `err == nil` taken
// false, where `err` resolves to the same SSA value as errV.
func factProvesErrNonNil(f *ssa.Func, fact ssa.Fact, errV *ssa.Value) bool {
	be, ok := ast.Unparen(fact.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var nonNilWhen bool
	switch be.Op {
	case token.NEQ:
		nonNilWhen = true
	case token.EQL:
		nonNilWhen = false
	default:
		return false
	}
	if fact.Truth != nonNilWhen {
		return false
	}
	errSide, nilSide := be.X, be.Y
	if isNilIdent(f.Info, errSide) {
		errSide, nilSide = nilSide, errSide
	}
	if !isNilIdent(f.Info, nilSide) {
		return false
	}
	id, ok := ast.Unparen(errSide).(*ast.Ident)
	if !ok {
		return false
	}
	v := f.ValueOfUse(id)
	return v != nil && f.Canonical(v) == errV
}

// riskyNilUse reports whether the identifier's immediate syntactic context
// panics when the value is nil.
func riskyNilUse(info *types.Info, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	child := ast.Node(id)
	parent := parents[child]
	for {
		pe, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		child, parent = pe, parents[pe]
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != child {
			return false
		}
		// Field or method access through a pointer dereferences it; a
		// method call on a nil interface has no dynamic dispatch target.
		t := info.TypeOf(id)
		if t == nil {
			return false
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Interface:
			return true
		}
	case *ast.StarExpr:
		return p.X == child
	case *ast.IndexExpr:
		if p.X != child {
			return false
		}
		// Indexing a nil slice panics (len is 0); reading a nil map does
		// not, so maps are excluded.
		t := info.TypeOf(id)
		if t == nil {
			return false
		}
		_, isSlice := t.Underlying().(*types.Slice)
		return isSlice
	case *ast.CallExpr:
		return p.Fun == child // calling a nil func value
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func isNilable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Slice, *types.Map,
		*types.Signature, *types.Chan:
		return true
	}
	return false
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[ast.Unparen(e)]; ok {
		return tv.IsNil()
	}
	return false
}

// parentMap records each node's syntactic parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
