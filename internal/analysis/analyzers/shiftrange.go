package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/flow"
	"logicregression/internal/analysis/flow/ssa"
)

// ShiftRange proves the word-level arithmetic on the hot paths safe, using
// the SSA interval machinery (internal/analysis/flow/ssa):
//
//   - in every //logicreg:hotpath function, each variable shift amount
//     (`x << k`, `x >> k`, `x <<= k`, and the `1 << k` mask idiom) must be
//     provably in [0, bitwidth) — an unproven amount either wraps the mask
//     to zero or is a latent guard the prover cannot see;
//   - in the bit-kernel packages (internal/bitvec, internal/tt,
//     internal/circuit), each slice/array/string index in a hotpath
//     function must be provably in bounds.
//
// Findings double as the bounds-check-elimination work-list: an index the
// prover cannot discharge is exactly one the compiler keeps a runtime
// check for. Fix the guard so the proof goes through, or record the
// reviewed exception with `//logicreg:allow shiftrange <reason>`.
var ShiftRange = &analysis.Analyzer{
	Name: "shiftrange",
	Doc: "proves hot-path shift amounts < bit width and bit-kernel slice " +
		"indexes in bounds via SSA value ranges; unproven sites are the " +
		"BCE work-list",
	Run: runShiftRange,
}

// indexCheckedPkgs are the import-path suffixes whose hotpath indexes are
// held to the in-bounds proof (the packages the inner learning loops spend
// their time in).
var indexCheckedPkgs = []string{"internal/bitvec", "internal/tt", "internal/circuit"}

func runShiftRange(pass *analysis.Pass) error {
	sup := suppressedLines(pass, "shiftrange")
	info := pass.TypesInfo
	indexPkg := false
	for _, suffix := range indexCheckedPkgs {
		if strings.HasSuffix(pass.Pkg.Path(), suffix) {
			indexPkg = true
		}
	}

	// The header-safety summary is shared by every function in the pass but
	// only needed when a hotpath function exists; build it on first use.
	var headerSafe map[*types.Func]bool
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			if headerSafe == nil {
				headerSafe = ssa.HeaderSafeFuncs(flow.BuildCallGraph(pass.Files, info), info)
			}
			f := ssa.Build(fd, info, &ssa.Options{HeaderSafe: headerSafe})
			if f == nil {
				continue
			}
			r := ssa.InferRanges(f)
			checkShiftRangeFunc(pass, f, r, indexPkg, sup)
		}
	}
	return nil
}

func checkShiftRangeFunc(pass *analysis.Pass, f *ssa.Func, r *ssa.Ranges,
	indexPkg bool, sup map[string]bool) {

	for _, b := range f.CFG.Blocks {
		for _, node := range b.Nodes {
			n := ast.Node(node)
			if rs, ok := n.(*ast.RangeStmt); ok {
				n = rs.X // header-only semantics: the body has its own blocks
			}
			blk := b
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					return false // a literal is its own function, not hot
				case *ast.BinaryExpr:
					if m.Op == token.SHL || m.Op == token.SHR {
						checkShiftAmount(pass, r, blk, m.X, m.Y, m.OpPos, sup)
					}
				case *ast.AssignStmt:
					if m.Tok == token.SHL_ASSIGN || m.Tok == token.SHR_ASSIGN {
						checkShiftAmount(pass, r, blk, m.Lhs[0], m.Rhs[0], m.TokPos, sup)
					}
				case *ast.IndexExpr:
					if indexPkg {
						checkIndexBounds(pass, r, blk, m, sup)
					}
				}
				return true
			})
		}
	}
}

func checkShiftAmount(pass *analysis.Pass, r *ssa.Ranges, blk *flow.Block,
	operand, amount ast.Expr, pos token.Pos, sup map[string]bool) {

	width := bitWidthOf(pass.TypesInfo.TypeOf(operand))
	if width == 0 {
		return
	}
	if tv, ok := pass.TypesInfo.Types[amount]; ok && tv.Value != nil {
		// A constant amount is checked directly; in-range constants are the
		// common `x >> 6` case, out-of-range ones zero the operand.
		if c, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && c >= 0 && c < int64(width) {
			return
		}
	}
	if r.ProveShift(amount, width, blk) {
		return
	}
	if suppressed(pass, sup, pos) {
		return
	}
	pass.Reportf(pos,
		"shift amount not provably < %d on this hot path (interval %s); "+
			"mask it (`& %d`) or add a guard the prover understands",
		width, r.EvalAt(amount, blk), width-1)
}

func checkIndexBounds(pass *analysis.Pass, r *ssa.Ranges, blk *flow.Block,
	x *ast.IndexExpr, sup map[string]bool) {

	baseT := pass.TypesInfo.TypeOf(x.X)
	if baseT == nil {
		return
	}
	under := baseT.Underlying()
	if p, ok := under.(*types.Pointer); ok {
		under = p.Elem().Underlying()
	}
	switch u := under.(type) {
	case *types.Array, *types.Slice:
	case *types.Basic:
		if u.Info()&types.IsString == 0 {
			return
		}
	default:
		return // maps have no bounds; generics and the rest are out of scope
	}
	if r.ProveInBounds(x, blk) {
		return
	}
	if suppressed(pass, sup, x.Lbrack) {
		return
	}
	pass.Reportf(x.Lbrack,
		"index into %s not provably in bounds (interval %s) — the compiler "+
			"keeps a bounds check here; strengthen the guard or annotate "+
			"//logicreg:allow shiftrange <reason>",
		renderExpr(pass.Fset, x.X), r.EvalAt(x.Index, blk))
}

// bitWidthOf returns the bit width of a (possibly named) integer type, or
// 0 for anything else. int, uint, and uintptr are 64 bits: the repo
// targets 64-bit word kernels (same assumption as the SSA constant
// folder).
func bitWidthOf(t types.Type) int {
	if t == nil {
		return 0
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	switch basic.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr:
		return 64
	case types.UntypedInt:
		return 64
	}
	return 0
}
