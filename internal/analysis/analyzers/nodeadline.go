package analyzers

import (
	"go/ast"
	"go/types"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
)

// NoDeadline flags network I/O with no time bound. The remote-oracle
// transport must survive a black box that stops answering: a bare net.Dial
// hangs for the kernel's SYN patience on a dead host, and a raw Read or
// Write on a connection with no deadline pins its goroutine forever when
// the peer goes silent. Production code dials with net.DialTimeout and arms
// SetReadDeadline/SetWriteDeadline before touching the wire (see
// ioserve.DialConfig); forwarding wrappers that embed net.Conn inherit the
// deadline discipline of the connection they wrap and are exempt.
var NoDeadline = &analysis.Analyzer{
	Name: "nodeadline",
	Doc: "flags net.Dial and raw net.Conn reads/writes with no deadline in scope " +
		"(a silent peer pins the goroutine forever); use net.DialTimeout and " +
		"SetReadDeadline/SetWriteDeadline",
	Run: runNoDeadline,
}

// deadlineSetters are the method names that arm a timeout on a connection.
// A call to any of them anywhere in the function counts as deadline
// discipline: the common shape is a helper arming the deadline immediately
// before the Read/Write it protects.
var deadlineSetters = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

func runNoDeadline(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeadlines(pass, fd)
		}
	}
	return nil
}

// checkDeadlines reports undisciplined network I/O inside one function.
func checkDeadlines(pass *analysis.Pass, fd *ast.FuncDecl) {
	armed := callsDeadlineSetter(fd.Body)
	wrapper := receiverEmbedsNetConn(pass.TypesInfo, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := astutil.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		if sig.Recv() == nil {
			// Package-level function: only Dial lacks a time bound
			// (DialTimeout and Dialer carry their own).
			if fn.Name() == "Dial" {
				pass.Reportf(call.Pos(), "net.Dial has no connect timeout (a dead host hangs the dial); use net.DialTimeout")
			}
			return true
		}
		// Method on a net type: a raw Read/Write blocks forever on a
		// silent peer unless a deadline is armed or the enclosing method
		// forwards for a wrapper that embeds the (already armed) conn.
		if (fn.Name() == "Read" || fn.Name() == "Write") && !armed && !wrapper {
			pass.Reportf(call.Pos(), "raw %s on a net connection without a deadline in scope (a silent peer pins this goroutine); arm SetReadDeadline/SetWriteDeadline first", fn.Name())
		}
		return true
	})
}

// callsDeadlineSetter reports whether the body contains a call to any
// Set*Deadline method.
func callsDeadlineSetter(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr); ok && deadlineSetters[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// receiverEmbedsNetConn reports whether fd is a method whose receiver
// struct embeds net.Conn — a forwarding wrapper (chaos.faultConn,
// ioserve.deadlineConn) whose deadline discipline lives with the wrapped
// connection, not in each forwarding method.
func receiverEmbedsNetConn(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if !fld.Embedded() {
			continue
		}
		named, ok := fld.Type().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net" && obj.Name() == "Conn" {
			return true
		}
	}
	return false
}
