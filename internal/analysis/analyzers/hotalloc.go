package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"logicregression/internal/analysis"
	"logicregression/internal/analysis/astutil"
	"logicregression/internal/analysis/flow"
)

// HotAlloc enforces the hot-path allocation contract: a function whose doc
// comment carries //logicreg:hotpath must not allocate on any path that can
// reach a normal return. The transfer function is escape-style and
// deliberately strict — it flags the constructs that allocate or are likely
// to once the optimizer gives up, rather than trying to replicate the
// compiler's escape analysis exactly:
//
//   - make / new / append and slice, map, or &composite literals;
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - interface boxing: a concrete value passed where an interface is
//     expected, converted to an interface, or a variadic call (the
//     argument slice allocates);
//   - closures (function literals) and method values;
//   - defer inside a loop (heap-allocated defer record per iteration);
//   - calls the analysis cannot vouch for: indirect calls, and calls into
//     packages outside a small no-alloc allowlist (sync, sync/atomic,
//     math/bits, time, internal/bitvec).
//
// Same-package callees are resolved by bottom-up summary over the call
// graph, so a hotpath kernel may call local helpers freely as long as the
// whole tree stays allocation-free. Cross-package callees are resolved
// through the facts store: every package run exports an AllocFree fact on
// each exported function its summary proves allocation-free, and a
// hot-path call into another module package is vouched for when the
// callee carries that fact — the static allowlist below remains only for
// packages outside the module (whose facts are never computed). Blocks
// that can only reach the CFG's panic exit are cold: a fmt.Sprintf feeding
// a bounds-check panic is fine. Genuine exceptions (amortized growth of
// reused scratch) are annotated with `//logicreg:allow hotalloc <reason>`.
// The static verdicts are cross-checked against `go build -gcflags=-m`
// escape output by TestHotpathGcflagsCrossCheck.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags heap allocations, interface boxing, closures, defer-in-loop, " +
		"and unvouched calls on the non-panic paths of //logicreg:hotpath " +
		"functions, with bottom-up summaries for same-package callees and " +
		"AllocFree facts for cross-package ones",
	Run:       runHotAlloc,
	FactTypes: []analysis.Fact{&AllocFree{}},
}

// An AllocFree fact marks an exported function whose bottom-up summary
// found no allocation on any hot (non-panic) path — or whose allocations
// are all reviewed `//logicreg:allow hotalloc` exceptions, which the
// contract treats as vouched (amortized growth of reused scratch). Hot
// paths in dependent packages may call it freely.
type AllocFree struct{}

// AFact marks AllocFree as a fact type.
func (*AllocFree) AFact() {}

// hotPathAllowedPkgs are the imported packages hot paths may call into:
// their exported operations are allocation-free (or runtime-managed, for
// sync). internal/bitvec is the repo's own word-kernel package; its
// exported surface is itself under hotpath contract.
var hotPathAllowedPkgs = map[string]bool{
	"sync":                            true,
	"sync/atomic":                     true,
	"math/bits":                       true,
	"time":                            true,
	"logicregression/internal/bitvec": true,
}

// An allocSite is one reason a function is not allocation-free.
type allocSite struct {
	pos  token.Pos
	what string
}

// A funcScan is the intrinsic (callee-independent) scan of one body.
type funcScan struct {
	allocs []allocSite
	// localCalls are hot-path call sites into same-package declared
	// functions, to be judged by summary.
	localCalls []localCall
}

type localCall struct {
	pos    token.Pos
	callee *types.Func
}

func runHotAlloc(pass *analysis.Pass) error {
	info := pass.TypesInfo
	graph := flow.BuildCallGraph(pass.Files, info)
	sup := suppressedLines(pass, "hotalloc")

	// Intrinsic scans once per declared function.
	scans := make(map[*flow.CallNode]*funcScan)
	for _, n := range graph.Order {
		scans[n] = scanHotBody(pass, n.Decl.Body, sup)
	}

	// Bottom-up summaries: the first reason (if any) each function may
	// allocate on a hot path, folding in same-package callees.
	summary := make(map[*flow.CallNode]*allocSite)
	graph.Fixpoint(func(n *flow.CallNode) bool {
		if summary[n] != nil {
			return false
		}
		sc := scans[n]
		if len(sc.allocs) > 0 {
			summary[n] = &sc.allocs[0]
			return true
		}
		for _, lc := range sc.localCalls {
			callee := graph.Nodes[lc.callee]
			if cs := summary[callee]; cs != nil {
				summary[n] = &allocSite{pos: lc.pos,
					what: "calls " + lc.callee.Name() + ", which may allocate (" + cs.what + ")"}
				return true
			}
		}
		return false
	})

	// Report only inside marked functions; everything else just feeds the
	// summaries.
	hotMarked := make(map[*types.Func]bool)
	for _, n := range graph.Order {
		if isHotpath(n.Decl) {
			hotMarked[n.Fn] = true
		}
	}
	for _, n := range graph.Order {
		if !hotMarked[n.Fn] {
			continue
		}
		sc := scans[n]
		for _, a := range sc.allocs {
			pass.Reportf(a.pos, "%s is marked //logicreg:hotpath but %s",
				n.Fn.Name(), a.what)
		}
		for _, lc := range sc.localCalls {
			if hotMarked[lc.callee] {
				continue // the callee is under its own contract and report
			}
			if cs := summary[graph.Nodes[lc.callee]]; cs != nil {
				pass.Reportf(lc.pos,
					"%s is marked //logicreg:hotpath but calls %s, which may allocate (%s at %s)",
					n.Fn.Name(), lc.callee.Name(), cs.what,
					pass.Fset.Position(cs.pos).String())
			}
		}
	}

	// Publish the clean summaries: an exported function with no
	// allocation evidence is vouched for dependents' hot paths.
	for _, n := range graph.Exported() {
		if summary[n] == nil {
			pass.ExportObjectFact(n.Fn, &AllocFree{})
		}
	}
	return nil
}

// scanHotBody collects the intrinsic allocation evidence of one body,
// ignoring anything on cold (panic-only) paths and anything suppressed.
func scanHotBody(pass *analysis.Pass, body *ast.BlockStmt, sup map[string]bool) *funcScan {
	info := pass.TypesInfo
	sc := &funcScan{}
	g := flow.New(body, info)
	cold := g.ColdBlocks()
	cyc := g.CycleBlocks()
	pkg := pass.Pkg

	add := func(pos token.Pos, what string) {
		if !suppressed(pass, sup, pos) {
			sc.allocs = append(sc.allocs, allocSite{pos: pos, what: what})
		}
	}

	for _, b := range g.Blocks {
		if cold[b] {
			continue
		}
		for _, node := range b.Nodes {
			root := node
			if r, ok := node.(*ast.RangeStmt); ok {
				// The header's own blocks hold only the range expression;
				// the body occupies separate blocks.
				root = r.X
			}
			if d, ok := node.(*ast.DeferStmt); ok && cyc[b] {
				add(d.Pos(), "defers inside a loop (a heap-allocated defer record per iteration)")
			}
			ast.Inspect(root, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					add(x.Pos(), "allocates a closure (function literal)")
					return false
				case *ast.CallExpr:
					scanHotCall(pass, pkg, x, sc, add)
				case *ast.CompositeLit:
					if t := info.TypeOf(x); t != nil {
						switch t.Underlying().(type) {
						case *types.Slice, *types.Map:
							add(x.Pos(), "allocates a composite literal")
						}
					}
				case *ast.UnaryExpr:
					if x.Op == token.AND {
						if _, isLit := astutil.Unparen(x.X).(*ast.CompositeLit); isLit {
							add(x.Pos(), "allocates (&composite literal escapes to the heap)")
						}
					}
				case *ast.BinaryExpr:
					if x.Op == token.ADD {
						if t := info.TypeOf(x); t != nil {
							if bt, ok := t.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
								add(x.Pos(), "concatenates strings, which allocates")
							}
						}
					}
				case *ast.SelectorExpr:
					if s, ok := info.Selections[x]; ok && s.Kind() == types.MethodVal {
						if !calledSelector(root, x) {
							add(x.Pos(), "allocates a bound method value")
						}
					}
				}
				return true
			})
		}
	}
	return sc
}

// scanHotCall classifies one call on a hot path.
func scanHotCall(pass *analysis.Pass, pkg *types.Package, call *ast.CallExpr, sc *funcScan, add func(token.Pos, string)) {
	info := pass.TypesInfo
	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) != 1 {
			return
		}
		argT := info.TypeOf(call.Args[0])
		if types.IsInterface(target.Underlying()) && argT != nil && !types.IsInterface(argT.Underlying()) {
			add(call.Pos(), "boxes a value into an interface")
			return
		}
		if conversionAllocates(target, argT) {
			add(call.Pos(), "converts between string and byte/rune slices, which allocates")
		}
		return
	}
	// Builtins.
	if id, ok := astutil.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				add(call.Pos(), "calls "+id.Name+", which allocates")
			case "append":
				add(call.Pos(), "calls append, which may grow and allocate")
			}
			return
		}
	}
	fn := astutil.CalleeFunc(info, call)
	if fn == nil {
		add(call.Pos(), "makes an indirect call, which the allocation contract cannot vouch for")
		return
	}
	// Boxing and variadic packing at the call boundary, judged against the
	// callee's signature (applies to local and imported callees alike).
	if sig, ok := fn.Type().(*types.Signature); ok {
		checkCallBoxing(info, call, sig, add)
	}
	fnPkg := fn.Pkg()
	if fnPkg == nil {
		return // universe-scope methods (error.Error): no allocation
	}
	// Same-package callees are judged by summary; imported ones by fact,
	// then allowlist.
	if fnPkg == pkg {
		sc.localCalls = append(sc.localCalls, localCall{pos: call.Pos(), callee: fn})
		return
	}
	if pass.ImportObjectFact(fn, &AllocFree{}) {
		return
	}
	if !hotPathAllowedPkgs[fnPkg.Path()] {
		add(call.Pos(), "calls "+fnPkg.Name()+"."+fn.Name()+
			", outside the hot-path allowlist (sync, sync/atomic, math/bits, time, bitvec) "+
			"and carrying no allocation-free fact")
	}
}

// checkCallBoxing flags concrete values passed in interface positions and
// variadic packing.
func checkCallBoxing(info *types.Info, call *ast.CallExpr, sig *types.Signature, add func(token.Pos, string)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding an existing slice: no packing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			if i == params.Len()-1 {
				add(call.Pos(), "makes a variadic call, which allocates the argument slice")
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		argT := info.TypeOf(arg)
		if argT == nil {
			continue
		}
		if basic, ok := argT.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
			continue
		}
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(argT.Underlying()) {
			add(arg.Pos(), "boxes a concrete value into an interface argument")
		}
	}
}

// conversionAllocates reports string<->[]byte/[]rune conversions.
func conversionAllocates(target, arg types.Type) bool {
	if arg == nil {
		return false
	}
	return stringish(target) && sliceish(arg) || sliceish(target) && stringish(arg)
}

func stringish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func sliceish(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch e.Kind() {
	case types.Byte, types.Rune:
		return true
	}
	return false
}

// calledSelector reports whether sel appears as the function operand of a
// call within root — a called method is not a method value.
func calledSelector(root ast.Node, sel *ast.SelectorExpr) bool {
	called := false
	ast.Inspect(root, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok && astutil.Unparen(call.Fun) == sel {
			called = true
		}
		return true
	})
	return called
}
