package analysis

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// Machine-readable output modes for the standalone driver: a flat JSON
// report for diffable baselines and scripting, and SARIF 2.1.0 for the
// GitHub code-scanning endpoint. Both use paths relative to the working
// directory so reports are stable across checkouts, and both are emitted
// from the already-sorted diagnostic list, so byte-for-byte equality holds
// across sequential, parallel, and cached runs.

// jsonDiagnostic is one finding in -format=json output.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Version     string           `json:"version"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

// relPath makes path relative to the working directory when possible.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || filepath.IsAbs(rel) {
		return path
	}
	return filepath.ToSlash(rel)
}

// WriteJSON emits the diagnostics as a flat JSON report.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	report := jsonReport{Version: Version, Diagnostics: []jsonDiagnostic{}}
	for _, d := range diags {
		report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// The slice of the SARIF 2.1.0 schema code scanning consumes.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the diagnostics as a single-run SARIF log, one rule per
// analyzer (in registration order) and one result per finding.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	driver := sarifDriver{Name: "repolint", Version: Version, Rules: []sarifRule{}}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
