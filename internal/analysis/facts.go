package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// The facts mechanism: per-package analyzer summaries that survive the
// package boundary. An analyzer attaches a fact to an exported object while
// analyzing its defining package (ExportObjectFact); when a downstream
// package is analyzed, the driver has already loaded the facts of every
// dependency, and the analyzer asks for them by object
// (ImportObjectFact). This is the modular bottom-up design of the x/tools
// facts mechanism, reduced to what this repo needs: object facts only, on
// exported package-level functions, variables, types, and exported methods
// of exported named types — the objects a dependent package can actually
// name through export data.
//
// Facts serialize to deterministic JSON (facts.json inside each cache
// entry, or the .vetx files the go command shuttles between vet units), so
// a package's fact blob can be content-hashed into its dependents' cache
// keys: a changed callee summary invalidates exactly the callers that
// could observe it.

// A Fact is an analyzer-defined summary attached to an object. Concrete
// fact types must be pointers to JSON-serializable structs, registered via
// Analyzer.FactTypes, and must have distinct type names across the analyzer
// set loaded into one driver.
type Fact interface {
	// AFact marks the type as a fact; it has no behaviour.
	AFact()
}

// ObjectFactKey returns the stable cross-package key addressing obj in a
// facts file, and whether the object can carry exported facts at all:
// "Name" for exported package-level objects, "Type.Method" for exported
// methods (including interface methods) of exported named types.
func ObjectFactKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil || !obj.Exported() {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			named := namedRecv(recv.Type())
			if named == nil {
				return "", false
			}
			tn := named.Obj()
			if !tn.Exported() || tn.Parent() != tn.Pkg().Scope() {
				return "", false
			}
			return tn.Name() + "." + fn.Name(), true
		}
	}
	// Package-level only: local objects are invisible through export data.
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// namedRecv unwraps a method receiver type to its named type, through one
// level of pointer.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// factKey addresses one fact within a package: the object key plus the
// fact's registered type name.
type factKey struct {
	Object string
	Type   string
}

// PackageFacts holds the decoded facts one package exports.
type PackageFacts struct {
	Path string
	m    map[factKey]Fact
}

// NewPackageFacts returns an empty fact set for the package path.
func NewPackageFacts(path string) *PackageFacts {
	return &PackageFacts{Path: path, m: make(map[factKey]Fact)}
}

// Len reports the number of facts in the set.
func (pf *PackageFacts) Len() int {
	if pf == nil {
		return 0
	}
	return len(pf.m)
}

// factName is the wire name of a fact's concrete type.
func factName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// A FactRegistry maps wire names back to concrete fact types for decoding.
type FactRegistry map[string]reflect.Type

// NewFactRegistry collects the fact types declared by the analyzers,
// rejecting wire-name collisions between distinct types.
func NewFactRegistry(analyzers []*Analyzer) (FactRegistry, error) {
	reg := make(FactRegistry)
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			name := factName(f)
			t := reflect.TypeOf(f)
			if prev, ok := reg[name]; ok {
				if prev != t {
					return nil, fmt.Errorf("fact type name %q registered twice with different types", name)
				}
				continue
			}
			if t.Kind() != reflect.Pointer {
				return nil, fmt.Errorf("fact type %s (analyzer %s) must be a pointer", name, a.Name)
			}
			reg[name] = t
		}
	}
	return reg, nil
}

// new allocates a zero fact of the registered wire name.
func (r FactRegistry) new(name string) (Fact, bool) {
	t, ok := r[name]
	if !ok {
		return nil, false
	}
	return reflect.New(t.Elem()).Interface().(Fact), true
}

// serializedFact is one line of the facts wire format.
type serializedFact struct {
	Object string          `json:"object"`
	Type   string          `json:"type"`
	Value  json.RawMessage `json:"value"`
}

type serializedFacts struct {
	Package string           `json:"package"`
	Facts   []serializedFact `json:"facts"`
}

// Encode serializes the fact set deterministically: facts sorted by
// (object, type), values as canonical encoding/json output. Byte equality
// of two encodings therefore implies fact equality, which is what lets the
// driver hash a dependency's facts into a cache key.
func (pf *PackageFacts) Encode() ([]byte, error) {
	out := serializedFacts{Package: pf.Path, Facts: []serializedFact{}}
	for k, f := range pf.m {
		v, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("fact %s on %s: %v", k.Type, k.Object, err)
		}
		out.Facts = append(out.Facts, serializedFact{Object: k.Object, Type: k.Type, Value: v})
	}
	sort.Slice(out.Facts, func(i, j int) bool {
		a, b := out.Facts[i], out.Facts[j]
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return json.Marshal(out)
}

// DecodePackageFacts parses a facts blob produced by Encode. Facts whose
// type is not in the registry are skipped, not errors: a fact written by a
// newer analyzer set must not wedge an older reader, and vice versa (the
// cache key includes the analyzer version, so mixed sets only meet through
// the vet protocol's .vetx files).
func DecodePackageFacts(data []byte, reg FactRegistry) (*PackageFacts, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var in serializedFacts
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("facts blob: %v", err)
	}
	pf := NewPackageFacts(in.Package)
	for _, sf := range in.Facts {
		f, ok := reg.new(sf.Type)
		if !ok {
			continue
		}
		if err := json.Unmarshal(sf.Value, f); err != nil {
			return nil, fmt.Errorf("fact %s on %s: %v", sf.Type, sf.Object, err)
		}
		pf.m[factKey{Object: sf.Object, Type: sf.Type}] = f
	}
	return pf, nil
}

// A FactReader resolves the exported facts of a package by import path,
// returning nil when the package has none (not analyzed, outside the
// module, or simply silent).
type FactReader func(path string) *PackageFacts

// ExportObjectFact attaches fact to obj in the pass's output fact set. Only
// objects addressable through export data can carry facts
// (ObjectFactKey); exporting on anything else is a silent no-op, so
// analyzers may call this unconditionally while walking a call graph.
// Objects outside the pass's package are rejected the same way — a pass
// speaks only for the package it analyzed.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.exported == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	key, ok := ObjectFactKey(obj)
	if !ok {
		return
	}
	p.exported.m[factKey{Object: key, Type: factName(fact)}] = fact
}

// ImportObjectFact copies the fact of fact's concrete type attached to obj
// into fact, reporting whether one was found. The object may belong to any
// dependency package whose facts the driver loaded, or to the current
// package (reading back this pass's own exports, e.g. from a later phase
// of the same analyzer).
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := ObjectFactKey(obj)
	if !ok {
		return false
	}
	k := factKey{Object: key, Type: factName(fact)}
	var stored Fact
	if obj.Pkg() == p.Pkg {
		if p.exported != nil {
			stored = p.exported.m[k]
		}
	} else if p.readFacts != nil {
		if pf := p.readFacts(obj.Pkg().Path()); pf != nil {
			stored = pf.m[k]
		}
	}
	if stored == nil {
		return false
	}
	sv := reflect.ValueOf(stored)
	fv := reflect.ValueOf(fact)
	if sv.Type() != fv.Type() || fv.Kind() != reflect.Pointer || fv.IsNil() {
		return false
	}
	fv.Elem().Set(sv.Elem())
	return true
}
