package analysis

import (
	"fmt"
	"go/ast"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The driver tests run against a throwaway two-package module
// (example.com/facttest: b imports a) and a purpose-built analyzer whose
// diagnostics in b depend on facts exported from a — so every invalidation
// edge of the cache key (own source, dependency facts, driver version) is
// observable as a re-analysis.

// panicsFact marks an exported function that panics on some path.
type panicsFact struct{}

func (*panicsFact) AFact() {}

// panicFinder exports panicsFact on every exported function whose body
// contains a direct panic call, and reports every call to a function
// carrying the fact — so a diagnostic in b exists only because of a fact
// produced while analyzing a.
var panicFinder = &Analyzer{
	Name:      "panicfinder",
	Doc:       "test analyzer: flag calls to panicking functions",
	FactTypes: []Fact{&panicsFact{}},
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				panics := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
							panics = true
						}
					}
					return true
				})
				if panics {
					pass.ExportObjectFact(pass.TypesInfo.Defs[fd.Name], &panicsFact{})
				}
			}
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == pass.Pkg {
					return true
				}
				if pass.ImportObjectFact(obj, &panicsFact{}) {
					pass.Reportf(call.Pos(), "call to panicking %s.%s", obj.Pkg().Name(), obj.Name())
				}
				return true
			})
		}
		return nil
	},
}

const aSrc = `package a

func Boom() {
	for i := 0; i < 3; i++ {
		_ = i
	}
	panic("boom")
}

func Calm() {
	for i := 0; i < 3; i++ {
		_ = i
	}
}
`

const bSrc = `package b

import "example.com/facttest/a"

func Use() {
	a.Boom()
	a.Calm()
}
`

// writeModule lays out the temp module and returns its root.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/facttest\n\ngo 1.21\n",
		"a/a.go": aSrc,
		"b/b.go": bSrc,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// format renders results the way the standalone runner prints text mode, so
// byte equality here is byte equality of user-visible output.
func format(t *testing.T, results []UnitResult) string {
	t.Helper()
	var sb strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Unit.ImportPath, r.Err)
		}
		for _, d := range r.Diags {
			fmt.Fprintf(&sb, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	return sb.String()
}

func TestDriverCacheInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list on a temp module")
	}
	dir := writeModule(t)
	cache, err := OpenCache(filepath.Join(dir, "factcache"))
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{Analyzers: []*Analyzer{panicFinder}, Parallel: 4, Cache: cache, Version: "test-1"}

	run := func() ([]UnitResult, RunStats) {
		t.Helper()
		units, err := LoadPackages(dir, "./...")
		if err != nil {
			t.Fatal(err)
		}
		if len(units) != 2 {
			t.Fatalf("loaded %d units, want 2", len(units))
		}
		results, stats, err := d.Run(units)
		if err != nil {
			t.Fatal(err)
		}
		return results, stats
	}

	// Cold: everything analyzed, the fact-dependent diagnostic present.
	results, stats := run()
	if stats.Cached != 0 || stats.Units != 2 || stats.Failed != 0 {
		t.Fatalf("cold stats = %+v, want 2 units, 0 cached, 0 failed", stats)
	}
	cold := format(t, results)
	if !strings.Contains(cold, "call to panicking a.Boom") {
		t.Fatalf("cross-package fact did not reach b:\n%s", cold)
	}
	if strings.Contains(cold, "Calm") {
		t.Fatalf("diagnostic for a non-panicking callee:\n%s", cold)
	}

	// Warm: both replayed, output byte-identical.
	results, stats = run()
	if stats.Cached != 2 {
		t.Fatalf("warm stats = %+v, want 2 cached", stats)
	}
	if warm := format(t, results); warm != cold {
		t.Fatalf("replayed output differs:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}

	// Touching b invalidates b only.
	bPath := filepath.Join(dir, "b", "b.go")
	if err := os.WriteFile(bPath, []byte(bSrc+"\n// trailing comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stats = run(); stats.Cached != 1 {
		t.Fatalf("after editing b: %+v, want 1 cached (a)", stats)
	}

	// Changing a's behaviour invalidates a (own source) and b (a's
	// published cache key feeds b's key), and b's replay must pick up the
	// fact a now exports.
	aPath := filepath.Join(dir, "a", "a.go")
	newA := strings.Replace(aSrc, "func Calm() {\n\tfor i := 0; i < 3; i++ {\n\t\t_ = i\n\t}",
		"func Calm() {\n\tfor i := 0; i < 3; i++ {\n\t\tpanic(\"no longer calm\")\n\t}", 1)
	if newA == aSrc {
		t.Fatal("test bug: replacement did not apply")
	}
	if err := os.WriteFile(aPath, []byte(newA), 0o644); err != nil {
		t.Fatal(err)
	}
	results, stats = run()
	if stats.Cached != 0 {
		t.Fatalf("after editing a: %+v, want 0 cached (facts changed under b)", stats)
	}
	if out := format(t, results); !strings.Contains(out, "call to panicking a.Calm") {
		t.Fatalf("b did not observe a's new fact:\n%s", out)
	}

	// A version bump invalidates everything.
	if _, stats = run(); stats.Cached != 2 {
		t.Fatal("expected a fully warm cache before the version bump")
	}
	d.Version = "test-2"
	if _, stats = run(); stats.Cached != 0 {
		t.Fatalf("after version bump: %+v, want 0 cached", stats)
	}
}

// TestDriverNarrowPatternInvalidation covers the dependency edge where the
// dep is NOT a unit of the run (narrow patterns): its sources must still
// reach the dependent's cache key through the recursive source hash.
func TestDriverNarrowPatternInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list on a temp module")
	}
	dir := writeModule(t)
	cache, err := OpenCache(filepath.Join(dir, "factcache"))
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{Analyzers: []*Analyzer{panicFinder}, Cache: cache, Version: "test-1"}

	run := func() RunStats {
		t.Helper()
		units, err := LoadPackages(dir, "./b")
		if err != nil {
			t.Fatal(err)
		}
		if len(units) != 1 {
			t.Fatalf("loaded %d units, want 1", len(units))
		}
		_, stats, err := d.Run(units)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	if stats := run(); stats.Cached != 0 {
		t.Fatalf("cold: %+v, want 0 cached", stats)
	}
	if stats := run(); stats.Cached != 1 {
		t.Fatalf("warm: %+v, want 1 cached", stats)
	}
	// Editing the out-of-run dependency must invalidate b.
	aPath := filepath.Join(dir, "a", "a.go")
	if err := os.WriteFile(aPath, []byte(aSrc+"\n// touched\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if stats := run(); stats.Cached != 0 {
		t.Fatalf("after editing dep: %+v, want 0 cached", stats)
	}
}

// TestDriverScheduleDeterminism pins the core output contract: any unit
// order, any parallelism, cached or not — same bytes.
func TestDriverScheduleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list on a temp module")
	}
	dir := writeModule(t)
	units, err := LoadPackages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}

	sequential := &Driver{Analyzers: []*Analyzer{panicFinder}, Parallel: 1}
	results, _, err := sequential.Run(units)
	if err != nil {
		t.Fatal(err)
	}
	want := format(t, results)
	if want == "" {
		t.Fatal("fixture produced no diagnostics; the property is vacuous")
	}

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		shuffled := make([]*Unit, len(units))
		copy(shuffled, units)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		d := &Driver{Analyzers: []*Analyzer{panicFinder}, Parallel: 1 + trial%4}
		results, _, err := d.Run(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if got := format(t, results); got != want {
			t.Fatalf("trial %d (parallel=%d): output differs\nwant:\n%s\ngot:\n%s",
				trial, 1+trial%4, want, got)
		}
	}
}
