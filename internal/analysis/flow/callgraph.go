package flow

import (
	"go/ast"
	"go/types"

	"logicregression/internal/analysis/astutil"
)

// A CallGraph is the static call structure of one package's source: one
// node per function declaration, with the calls its body (including nested
// function literals) makes. Calls through function values and unresolved
// interface methods have no callee node and set HasIndirect — summary
// computations must treat such nodes conservatively.
type CallGraph struct {
	Nodes map[*types.Func]*CallNode
	// Order lists the nodes in source order, for deterministic iteration.
	Order []*CallNode
}

// A CallNode is one declared function and its outgoing calls.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Calls are the statically resolved call sites, in source order.
	// Callee is always non-nil; Local is the callee's node when it is
	// declared in this package, nil for imported functions and methods.
	Calls []*CallSite
	// HasIndirect records calls through function values, which resolve to
	// no *types.Func at all.
	HasIndirect bool
}

// A CallSite is one resolved call.
type CallSite struct {
	Site   *ast.CallExpr
	Callee *types.Func
	Local  *CallNode
}

// BuildCallGraph collects the call graph of the files (one package).
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CallNode)}
	var decls []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &CallNode{Fn: fn, Decl: fd}
			g.Nodes[fn] = n
			g.Order = append(g.Order, n)
			decls = append(decls, fd)
		}
	}
	for i, fd := range decls {
		n := g.Order[i]
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := astutil.CalleeFunc(info, call)
			if callee == nil {
				// Builtins and conversions are not indirect calls.
				if id, isIdent := astutil.Unparen(call.Fun).(*ast.Ident); isIdent {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						return true
					}
				}
				if tv, isType := info.Types[call.Fun]; isType && tv.IsType() {
					return true
				}
				n.HasIndirect = true
				return true
			}
			n.Calls = append(n.Calls, &CallSite{
				Site:   call,
				Callee: callee,
				Local:  g.Nodes[callee],
			})
			return true
		})
	}
	return g
}

// Exported returns the graph's nodes a dependent package can name through
// export data — exported package-level functions, and exported methods
// whose receiver is an exported package-level named type — in source
// order. It is the iteration hook analyzers use to publish their bottom-up
// summaries as cross-package facts once Fixpoint has settled.
func (g *CallGraph) Exported() []*CallNode {
	var out []*CallNode
	for _, n := range g.Order {
		if !n.Fn.Exported() {
			continue
		}
		if recv := n.Fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			if !tn.Exported() || tn.Parent() != tn.Pkg().Scope() {
				continue
			}
		}
		out = append(out, n)
	}
	return out
}

// Fixpoint iterates visit over every node until one full sweep reports no
// change, in reverse source order first (callees tend to precede callers in
// Go files less often than the opposite, but iteration makes order a
// performance detail, not a correctness one). It is the bottom-up summary
// driver: visit updates the node's summary from its callees' summaries and
// reports whether anything changed; recursion and mutual recursion settle
// by iteration. The sweep cap makes a non-monotone visit a loud failure
// instead of a hang.
func (g *CallGraph) Fixpoint(visit func(*CallNode) bool) (converged bool) {
	maxSweeps := len(g.Order) + 2
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for i := len(g.Order) - 1; i >= 0; i-- {
			if visit(g.Order[i]) {
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// FuncLits returns the function literals directly contained in body, not
// descending into nested literals — callers analyzing closures recursively
// get each nesting level exactly once.
func FuncLits(body ast.Node) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != body {
			lits = append(lits, lit)
			return false // nested literals belong to this one
		}
		return true
	})
	return lits
}
