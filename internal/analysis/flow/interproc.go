package flow

import (
	"go/ast"
	"go/token"
	"go/types"

	"logicregression/internal/analysis/astutil"
)

// This file is the interprocedural layer of the flow engine: CFG
// reachability utilities (cold panic-only paths, cycle membership,
// avoidance-constrained reachability) and a field-sensitive access
// classification that runs bottom-up summaries over the package call graph.
// The concurrency/allocation contract analyzers (atomicsafe, chanflow,
// ctxcancel, hotalloc) are built on these.

// ---------------------------------------------------------------------------
// CFG reachability utilities

// preds returns the predecessor lists of every block.
func (g *CFG) preds() map[*Block][]*Block {
	p := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			p[s] = append(p[s], b)
		}
	}
	return p
}

// ColdBlocks returns the blocks from which the normal Exit block is
// unreachable: the panic block itself and every block that can only end in
// a panic (or spin forever). Allocation contracts treat such blocks as cold
// — a fmt.Sprintf feeding a bounds-check panic is not a hot-path cost.
func (g *CFG) ColdBlocks() map[*Block]bool {
	preds := g.preds()
	warm := map[*Block]bool{g.Exit: true}
	work := []*Block{g.Exit}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range preds[b] {
			if !warm[p] {
				warm[p] = true
				work = append(work, p)
			}
		}
	}
	cold := make(map[*Block]bool)
	for _, b := range g.Blocks {
		if !warm[b] {
			cold[b] = true
		}
	}
	return cold
}

// CycleBlocks returns the blocks that lie on some cycle — equivalently,
// the blocks whose statements may execute more than once per call. Used to
// detect defer-in-loop and other per-iteration costs.
func (g *CFG) CycleBlocks() map[*Block]bool {
	on := make(map[*Block]bool)
	for _, b := range g.Blocks {
		if g.reaches(b.Succs, b, nil) {
			on[b] = true
		}
	}
	return on
}

// CanReach reports whether `to` is reachable from `from` along successor
// edges without entering any block for which avoid returns true. `from`
// itself is expanded unconditionally; `to` is tested before its avoid
// status is consulted. A nil avoid means plain reachability.
func (g *CFG) CanReach(from, to *Block, avoid func(*Block) bool) bool {
	if from == to {
		return true
	}
	return g.reaches(from.Succs, to, avoid)
}

func (g *CFG) reaches(starts []*Block, to *Block, avoid func(*Block) bool) bool {
	seen := make(map[*Block]bool)
	var work []*Block
	for _, s := range starts {
		if s == to {
			return true
		}
		if (avoid == nil || !avoid(s)) && !seen[s] {
			seen[s] = true
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if seen[s] || (avoid != nil && avoid(s)) {
				continue
			}
			seen[s] = true
			work = append(work, s)
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Field-sensitive access classification

// AccessKind classifies one touch of a struct field.
type AccessKind int

const (
	// PlainRead is an ordinary (non-atomic) read of the field.
	PlainRead AccessKind = iota
	// PlainWrite is an ordinary assignment, ++/--, or compound assignment.
	PlainWrite
	// AtomicAccess is a sync/atomic operation on the field's address,
	// directly or through a same-package helper whose pointer parameter is
	// used atomically.
	AtomicAccess
	// EscapedAddr means the field's address left the window the
	// classification can see through: stored in a variable, or passed to
	// an imported or indirect callee.
	EscapedAddr
)

func (k AccessKind) String() string {
	switch k {
	case PlainRead:
		return "read"
	case PlainWrite:
		return "write"
	case AtomicAccess:
		return "atomic"
	case EscapedAddr:
		return "escape"
	}
	return "?"
}

// A FieldAccess is one classified touch of a field.
type FieldAccess struct {
	Pos  token.Pos
	Kind AccessKind
	// Via names the same-package helper the access was classified through,
	// "" for direct accesses.
	Via string
}

// A ParamAccess summarizes what a function does with one pointer-to-word
// parameter, directly or through its same-package callees.
type ParamAccess struct {
	Atomic bool // the pointee is accessed via sync/atomic
	Plain  bool // the pointee is dereferenced non-atomically, or escapes
}

// An AccessIndex is the result of ClassifyFieldAccesses.
type AccessIndex struct {
	// Fields maps each candidate field (a struct field of a sized-integer
	// type) to its accesses, in source order per file.
	Fields map[*types.Var][]FieldAccess
	// FieldOrder lists the keys of Fields in first-access order, for
	// deterministic iteration.
	FieldOrder []*types.Var
	// Params holds the bottom-up pointer-parameter summaries, indexed by
	// parameter position.
	Params map[*types.Func][]ParamAccess
	// Converged is false only if the summary fixpoint hit its sweep cap.
	Converged bool
}

// atomicWordType reports whether t is a type whose values sync/atomic's
// old-style address-taking API operates on.
func atomicWordType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

// Is64BitWord reports whether t needs 8-byte alignment for atomic access.
func Is64BitWord(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}

// atomicAddrCall reports whether call is a package-level sync/atomic
// function (AddInt64, LoadUint32, CompareAndSwapInt64, ...), all of which
// take the operand address as their first argument. Methods on the
// atomic.Int64-style types do not count: those types enforce atomicity and
// alignment themselves.
func atomicAddrCall(info *types.Info, call *ast.CallExpr) bool {
	fn := astutil.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil && len(call.Args) > 0
}

// ClassifyFieldAccesses classifies every access to sized-integer struct
// fields in one package: atomic (via sync/atomic, directly or through
// same-package helpers, resolved bottom-up over the call graph), plain
// read/write, or escaped address. Analyzers use it to enforce that a field
// accessed atomically anywhere is accessed atomically everywhere.
func ClassifyFieldAccesses(files []*ast.File, info *types.Info, g *CallGraph) *AccessIndex {
	idx := &AccessIndex{
		Fields: make(map[*types.Var][]FieldAccess),
		Params: make(map[*types.Func][]ParamAccess),
	}

	// Tracked pointer parameters: *int64 and friends, by declaring function.
	paramPos := make(map[types.Object]int) // param var -> its position
	paramFn := make(map[types.Object]*types.Func)
	for _, n := range g.Order {
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		sums := make([]ParamAccess, sig.Params().Len())
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if pt, ok := p.Type().Underlying().(*types.Pointer); ok && atomicWordType(pt.Elem()) {
				paramPos[p] = i
				paramFn[p] = n.Fn
			}
		}
		idx.Params[n.Fn] = sums
	}

	trackedParam := func(fn *types.Func, e ast.Expr) (int, bool) {
		id, ok := astutil.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		obj := info.Uses[id]
		if obj == nil || paramFn[obj] != fn {
			return 0, false
		}
		return paramPos[obj], true
	}

	// Bottom-up parameter summaries: does a function use its *word
	// parameter atomically, plainly, or both?
	idx.Converged = g.Fixpoint(func(n *CallNode) bool {
		sums := idx.Params[n.Fn]
		changed := false
		set := func(i int, atomic, plain bool) {
			if atomic && !sums[i].Atomic {
				sums[i].Atomic = true
				changed = true
			}
			if plain && !sums[i].Plain {
				sums[i].Plain = true
				changed = true
			}
		}
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				if atomicAddrCall(info, x) {
					if i, ok := trackedParam(n.Fn, x.Args[0]); ok {
						set(i, true, false)
					}
					return true
				}
				callee := astutil.CalleeFunc(info, x)
				calleeSums, local := idx.Params[callee]
				for ai, arg := range x.Args {
					i, ok := trackedParam(n.Fn, arg)
					if !ok {
						continue
					}
					if local && ai < len(calleeSums) {
						set(i, calleeSums[ai].Atomic, calleeSums[ai].Plain)
					} else {
						// The pointer escapes into code the package summary
						// cannot see: assume a plain dereference.
						set(i, false, true)
					}
				}
			case *ast.StarExpr:
				if i, ok := trackedParam(n.Fn, x.X); ok {
					set(i, false, true)
				}
			}
			return true
		})
		return changed
	})

	record := func(f *types.Var, a FieldAccess) {
		if _, seen := idx.Fields[f]; !seen {
			idx.FieldOrder = append(idx.FieldOrder, f)
		}
		idx.Fields[f] = append(idx.Fields[f], a)
	}

	// candidateField resolves a selector to a sized-integer struct field.
	candidateField := func(sel *ast.SelectorExpr) *types.Var {
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil
		}
		f, ok := s.Obj().(*types.Var)
		if !ok || !atomicWordType(f.Type()) {
			return nil
		}
		return f
	}

	// addrOfField matches &x.f (possibly parenthesized).
	addrOfField := func(e ast.Expr) (*ast.SelectorExpr, *types.Var) {
		u, ok := astutil.Unparen(e).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return nil, nil
		}
		sel, ok := astutil.Unparen(u.X).(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		f := candidateField(sel)
		if f == nil {
			return nil, nil
		}
		return sel, f
	}

	// Pass 1: classify field addresses flowing into calls, claiming the
	// selectors so pass 2 does not double-count them as plain reads.
	claimed := make(map[*ast.SelectorExpr]bool)
	for _, file := range files {
		ast.Inspect(file, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if atomicAddrCall(info, call) {
				if sel, f := addrOfField(call.Args[0]); f != nil {
					claimed[sel] = true
					record(f, FieldAccess{Pos: call.Pos(), Kind: AtomicAccess})
				}
				return true
			}
			callee := astutil.CalleeFunc(info, call)
			calleeSums, local := idx.Params[callee]
			for ai, arg := range call.Args {
				sel, f := addrOfField(arg)
				if f == nil {
					continue
				}
				claimed[sel] = true
				if !local || ai >= len(calleeSums) {
					record(f, FieldAccess{Pos: arg.Pos(), Kind: EscapedAddr})
					continue
				}
				sum := calleeSums[ai]
				if sum.Atomic {
					record(f, FieldAccess{Pos: arg.Pos(), Kind: AtomicAccess, Via: callee.Name()})
				}
				if sum.Plain {
					record(f, FieldAccess{Pos: arg.Pos(), Kind: PlainRead, Via: callee.Name()})
				}
				// A helper that ignores the pointer contributes no access.
			}
			return true
		})
	}

	// Pass 2: every remaining selector use of a candidate field is a plain
	// access (or an escaping address-of outside any call).
	for _, file := range files {
		var stack []ast.Node
		ast.Inspect(file, func(x ast.Node) bool {
			if x == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if sel, ok := x.(*ast.SelectorExpr); ok && !claimed[sel] {
				if f := candidateField(sel); f != nil {
					record(f, FieldAccess{Pos: sel.Pos(), Kind: classifyPlain(stack, sel)})
				}
			}
			stack = append(stack, x)
			return true
		})
	}
	return idx
}

// classifyPlain decides how an unclaimed field selector touches the field,
// from its enclosing syntax: assignment target or ++/-- make it a write,
// a bare address-of means the address escapes, anything else is a read.
func classifyPlain(stack []ast.Node, sel *ast.SelectorExpr) AccessKind {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return EscapedAddr
			}
			return PlainRead
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if astutil.Unparen(lhs) == sel {
					return PlainWrite
				}
			}
			return PlainRead
		case *ast.IncDecStmt:
			if astutil.Unparen(p.X) == sel {
				return PlainWrite
			}
			return PlainRead
		default:
			return PlainRead
		}
	}
	return PlainRead
}
