package flow

import (
	"go/ast"
	"testing"
)

// blockOfKind returns the first block of the given kind.
func blockOfKind(t *testing.T, g *CFG, kind string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	t.Fatalf("no %q block", kind)
	return nil
}

func TestColdBlocks(t *testing.T) {
	_, fd, info := parseFunc(t, `package x
import "fmt"
func f(i, n int) int {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("index %d out of range", i))
	}
	return i
}
`, "f")
	g := New(fd.Body, info)
	cold := g.ColdBlocks()
	then := blockOfKind(t, g, "if.then")
	if !cold[then] {
		t.Errorf("panic-only if.then not cold")
	}
	if !cold[g.Panic] {
		t.Errorf("panic block not cold")
	}
	for _, b := range g.Blocks {
		if b != then && b != g.Panic && cold[b] {
			t.Errorf("block b%d (%s) wrongly cold", b.Index, b.Kind)
		}
	}
}

func TestCycleBlocks(t *testing.T) {
	_, fd, info := parseFunc(t, `package x
func f(n int) {
	before()
	for i := 0; i < n; i++ {
		inside()
	}
	after()
}
func before() {}
func inside() {}
func after() {}
`, "f")
	g := New(fd.Body, info)
	cyc := g.CycleBlocks()
	if head := blockOfKind(t, g, "for.head"); !cyc[head] {
		t.Errorf("for.head not on cycle")
	}
	if body := blockOfKind(t, g, "for.body"); !cyc[body] {
		t.Errorf("for.body not on cycle")
	}
	if entry := g.Blocks[0]; cyc[entry] {
		t.Errorf("entry wrongly on cycle")
	}
	if cyc[g.Exit] {
		t.Errorf("exit wrongly on cycle")
	}
}

// TestLoopHeadStmt pins the Stmt back-pointer on loop head blocks: an
// unconditioned for head carries no nodes, so analyses need Stmt to get
// back to the loop syntax.
func TestLoopHeadStmt(t *testing.T) {
	_, fd, info := parseFunc(t, `package x
func f(xs []int) {
	for {
		break
	}
	for range xs {
	}
}
`, "f")
	g := New(fd.Body, info)
	forHead := blockOfKind(t, g, "for.head")
	if _, ok := forHead.Stmt.(*ast.ForStmt); !ok {
		t.Errorf("for.head Stmt = %T, want *ast.ForStmt", forHead.Stmt)
	}
	rangeHead := blockOfKind(t, g, "range.head")
	if _, ok := rangeHead.Stmt.(*ast.RangeStmt); !ok {
		t.Errorf("range.head Stmt = %T, want *ast.RangeStmt", rangeHead.Stmt)
	}
}

func TestCanReachAvoid(t *testing.T) {
	_, fd, info := parseFunc(t, `package x
func f(stop chan struct{}, n int) {
	for {
		if n > 0 {
			<-stop
		}
		n--
	}
}
`, "f")
	g := New(fd.Body, info)
	head := blockOfKind(t, g, "for.head")
	then := blockOfKind(t, g, "if.then") // holds the <-stop receive

	if !g.CanReach(head, head, nil) {
		t.Errorf("loop head cannot reach itself")
	}
	// The else path skips the receive: the iteration cycle survives even
	// when the receiving block is forbidden.
	avoid := func(b *Block) bool { return b == then }
	found := false
	for _, s := range head.Succs {
		if s != then && g.CanReach(s, head, avoid) {
			found = true
		}
	}
	if !found {
		t.Errorf("no observation-free cycle found around the if/else")
	}
	// Avoiding the join block below the if severs every cycle.
	done := blockOfKind(t, g, "if.done")
	avoidDone := func(b *Block) bool { return b == done }
	for _, s := range head.Succs {
		if s != done && g.CanReach(s, head, avoidDone) {
			t.Errorf("cycle survives avoiding the only join block")
		}
	}
}

func TestClassifyFieldAccesses(t *testing.T) {
	_, f, info := parseWholeFile(t, `package x
import "sync/atomic"

type c struct {
	hits  int64
	total int64
	plain int64
}

func bump(p *int64) { atomic.AddInt64(p, 1) }
func deref(p *int64) int64 { return *p }

func (x *c) a() { atomic.AddInt64(&x.hits, 1) }
func (x *c) b() { x.hits = 0 }
func (x *c) d() { bump(&x.total) }
func (x *c) e() int64 { return deref(&x.total) }
func (x *c) g() { x.plain++ }

var sink *int64
func (x *c) leak() { sink = &x.hits }
`)
	g := BuildCallGraph([]*ast.File{f}, info)
	idx := ClassifyFieldAccesses([]*ast.File{f}, info, g)
	if !idx.Converged {
		t.Fatal("summary fixpoint did not converge")
	}

	byName := make(map[string][]AccessKind)
	for _, fv := range idx.FieldOrder {
		for _, a := range idx.Fields[fv] {
			byName[fv.Name()] = append(byName[fv.Name()], a.Kind)
		}
	}
	has := func(field string, kind AccessKind) bool {
		for _, k := range byName[field] {
			if k == kind {
				return true
			}
		}
		return false
	}

	if !has("hits", AtomicAccess) {
		t.Errorf("hits: no atomic access recorded (got %v)", byName["hits"])
	}
	if !has("hits", PlainWrite) {
		t.Errorf("hits: plain write not recorded (got %v)", byName["hits"])
	}
	if !has("hits", EscapedAddr) {
		t.Errorf("hits: escaped address not recorded (got %v)", byName["hits"])
	}
	// total is touched only through helpers: atomically via bump, plainly
	// via deref — both resolved from the parameter summaries.
	if !has("total", AtomicAccess) {
		t.Errorf("total: helper atomic access not recorded (got %v)", byName["total"])
	}
	if !has("total", PlainRead) {
		t.Errorf("total: helper plain read not recorded (got %v)", byName["total"])
	}
	if has("plain", AtomicAccess) {
		t.Errorf("plain: spurious atomic access (got %v)", byName["plain"])
	}
	if !has("plain", PlainWrite) {
		t.Errorf("plain: ++ not recorded as write (got %v)", byName["plain"])
	}

	// Parameter summaries drive the classification above; pin them too.
	for fn, sums := range idx.Params {
		switch fn.Name() {
		case "bump":
			if len(sums) != 1 || !sums[0].Atomic || sums[0].Plain {
				t.Errorf("bump summary = %+v, want atomic only", sums)
			}
		case "deref":
			if len(sums) != 1 || sums[0].Atomic || !sums[0].Plain {
				t.Errorf("deref summary = %+v, want plain only", sums)
			}
		}
	}
}
