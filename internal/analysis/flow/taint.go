package flow

import (
	"go/ast"
	"go/types"
)

// TaintSpec configures a forward may-taint analysis over one function: what
// introduces taint, how calls propagate it, and what is tainted at entry.
type TaintSpec struct {
	Info *types.Info
	// Source reports whether evaluating expr introduces taint by itself
	// (e.g. a time.Now() call). Checked before CallTaint for calls.
	Source func(expr ast.Expr) bool
	// CallTaint decides the taint of a call's results. argTainted is true
	// when any argument (or the method receiver) is tainted. A nil
	// CallTaint defaults to taint-through: results are tainted iff an
	// input was, which models pure accessors (t.UnixNano()) and is the
	// conservative choice at indirect and cross-package calls.
	CallTaint func(call *ast.CallExpr, argTainted bool) bool
	// Entry is the set of objects tainted at function entry (parameters,
	// captured variables, fields known tainted from other functions).
	Entry map[types.Object]bool
}

// TaintState is the set of tainted objects at a program point: variables,
// and struct field objects (field taint is shared across all instances of
// the field's struct type — the coarse-but-sound way to track values that
// escape "through fields").
type TaintState map[types.Object]bool

// taintLattice instantiates the forward solver for TaintSpec.
type taintLattice struct {
	spec *TaintSpec
}

func (l *taintLattice) Bottom() TaintState { return nil }

func (l *taintLattice) Entry() TaintState {
	s := make(TaintState, len(l.spec.Entry))
	for obj := range l.spec.Entry {
		s[obj] = true
	}
	return s
}

func (l *taintLattice) Join(a, b TaintState) TaintState {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(TaintState, len(a)+len(b))
	for o := range a {
		out[o] = true
	}
	for o := range b {
		out[o] = true
	}
	return out
}

func (l *taintLattice) Equal(a, b TaintState) bool {
	if len(a) != len(b) {
		return false
	}
	for o := range a {
		if !b[o] {
			return false
		}
	}
	return true
}

func (l *taintLattice) Transfer(b *Block, in TaintState) TaintState {
	out := l.Join(in, nil)
	if out == nil {
		out = make(TaintState)
	}
	for _, n := range b.Nodes {
		l.transferNode(n, out)
	}
	return out
}

func (l *taintLattice) transferNode(n ast.Node, s TaintState) {
	spec := l.spec
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
			// Tuple assignment: every LHS gets the call's taint.
			t := spec.ExprTaint(n.Rhs[0], s)
			for _, lhs := range n.Lhs {
				l.assign(lhs, t, s)
			}
			return
		}
		for i, lhs := range n.Lhs {
			if i < len(n.Rhs) {
				l.assign(lhs, spec.ExprTaint(n.Rhs[i], s), s)
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, sp := range gd.Specs {
			vs, ok := sp.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Names) > 1 && len(vs.Values) == 1 {
				t := spec.ExprTaint(vs.Values[0], s)
				for _, id := range vs.Names {
					l.assign(id, t, s)
				}
				continue
			}
			for i, id := range vs.Names {
				if i < len(vs.Values) {
					l.assign(id, spec.ExprTaint(vs.Values[i], s), s)
				}
			}
		}
	case *ast.RangeStmt:
		t := spec.ExprTaint(n.X, s)
		if n.Key != nil {
			l.assign(n.Key, t, s)
		}
		if n.Value != nil {
			l.assign(n.Value, t, s)
		}
	}
}

// assign updates the taint binding for an assignment target. Identifiers
// get strong updates (assigning a clean value un-taints the variable — the
// flow-sensitive part); field selectors get weak updates on the field
// object, which is shared across instances and therefore only accumulates.
func (l *taintLattice) assign(lhs ast.Expr, tainted bool, s TaintState) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := l.objectOf(lhs)
		if obj == nil || lhs.Name == "_" {
			return
		}
		if tainted {
			s[obj] = true
		} else {
			delete(s, obj)
		}
	case *ast.SelectorExpr:
		if !tainted {
			return
		}
		if obj := l.spec.Info.Uses[lhs.Sel]; obj != nil {
			s[obj] = true
		}
	case *ast.ParenExpr:
		l.assign(lhs.X, tainted, s)
	case *ast.StarExpr, *ast.IndexExpr:
		// Writes through pointers/indices: taint the root variable weakly.
		if tainted {
			if id := rootIdent(lhs); id != nil {
				if obj := l.objectOf(id); obj != nil {
					s[obj] = true
				}
			}
		}
	}
}

func (l *taintLattice) objectOf(id *ast.Ident) types.Object {
	if obj := l.spec.Info.Defs[id]; obj != nil {
		return obj
	}
	return l.spec.Info.Uses[id]
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ExprTaint evaluates the taint of an expression under a state. Function
// literals are opaque (closures are analyzed as their own functions by the
// callers, seeded through Entry).
func (spec *TaintSpec) ExprTaint(e ast.Expr, s TaintState) bool {
	if spec.Source != nil && spec.Source(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := spec.Info.Uses[e]
		if obj == nil {
			obj = spec.Info.Defs[e]
		}
		return obj != nil && (s[obj] || spec.Entry[obj])
	case *ast.SelectorExpr:
		if obj := spec.Info.Uses[e.Sel]; obj != nil && (s[obj] || spec.Entry[obj]) {
			return true
		}
		// A selection from a tainted value is tainted (coarse struct
		// taint); a package-qualified name is not a selection.
		if sel := spec.Info.Selections[e]; sel != nil {
			return spec.ExprTaint(e.X, s)
		}
		return false
	case *ast.CallExpr:
		if tv, ok := spec.Info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: taint passes through.
			return spec.ExprTaint(e.Args[0], s)
		}
		argT := false
		for _, a := range e.Args {
			if spec.ExprTaint(a, s) {
				argT = true
				break
			}
		}
		if !argT {
			// The receiver of a method call counts as an input.
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				if selInfo := spec.Info.Selections[sel]; selInfo != nil {
					argT = spec.ExprTaint(sel.X, s)
				}
			}
		}
		if spec.CallTaint != nil {
			return spec.CallTaint(e, argT)
		}
		return argT
	case *ast.BinaryExpr:
		return spec.ExprTaint(e.X, s) || spec.ExprTaint(e.Y, s)
	case *ast.UnaryExpr:
		return spec.ExprTaint(e.X, s)
	case *ast.StarExpr:
		return spec.ExprTaint(e.X, s)
	case *ast.ParenExpr:
		return spec.ExprTaint(e.X, s)
	case *ast.IndexExpr:
		return spec.ExprTaint(e.X, s) || spec.ExprTaint(e.Index, s)
	case *ast.SliceExpr:
		return spec.ExprTaint(e.X, s)
	case *ast.TypeAssertExpr:
		return spec.ExprTaint(e.X, s)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if spec.ExprTaint(kv.Value, s) {
					return true
				}
				continue
			}
			if spec.ExprTaint(el, s) {
				return true
			}
		}
		return false
	}
	return false
}

// RunTaint solves the taint analysis over one CFG.
func RunTaint(g *CFG, spec *TaintSpec) *Solution[TaintState] {
	return Forward[TaintState](g, &taintLattice{spec: spec})
}

// NodeTaintStates walks one block's nodes in order, giving the callback the
// state in effect immediately before each node — the per-node view of a
// block-level solution, recomputed by replaying the transfer function.
func NodeTaintStates(g *CFG, spec *TaintSpec, sol *Solution[TaintState],
	visit func(n ast.Node, s TaintState)) {

	lat := &taintLattice{spec: spec}
	for _, b := range g.Blocks {
		s := lat.Join(sol.In[b], nil)
		if s == nil {
			s = make(TaintState)
		}
		for _, n := range b.Nodes {
			visit(n, s)
			lat.transferNode(n, s)
		}
	}
}
