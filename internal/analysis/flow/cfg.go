// Package flow is a stdlib-only, function-level dataflow engine for the
// repo analyzers: control-flow graphs built from go/ast, a generic forward
// lattice solver with branch sensitivity, reaching definitions, a taint
// lattice, and a package call graph with bottom-up fixpoint summaries.
//
// It deliberately mirrors the shape of golang.org/x/tools/go/cfg and the
// x/tools dataflow passes without the dependency (this repo builds with no
// module proxy), and stays at the precision the repolint contracts need:
// one CFG per function body, explicit panic edges for the panic builtin,
// deferred calls collected per function, and interprocedural reasoning via
// per-package summaries that are conservative at indirect calls.
package flow

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// A CFG is the control-flow graph of one function body. Blocks[0] is the
// entry. Exit collects every normal return (and falling off the end); Panic
// collects explicit panic(...) statements. Deferred calls do not appear as
// edges: they are listed in Defers, in registration order, for analyses
// that model defer-at-exit behaviour.
type CFG struct {
	Blocks []*Block
	Exit   *Block
	Panic  *Block
	Defers []*ast.DeferStmt
}

// A Block is a basic block: statements and control expressions that execute
// in sequence, then transfer to one of Succs.
type Block struct {
	Index int
	Kind  string
	// Nodes holds the block's statements and control expressions in
	// execution order. Composite statements never appear whole — an if
	// contributes its Cond, a range its RangeStmt header (transfer
	// functions must not descend into nested bodies, which occupy their
	// own blocks).
	Nodes []ast.Node
	Succs []*Block
	// Cond is set on two-successor condition blocks: Succs[0] is taken
	// when Cond evaluates true, Succs[1] when false.
	Cond ast.Expr
	// Stmt is set on loop head blocks ("for.head", "range.head") to the
	// originating statement, so analyses can map a head block back to its
	// loop syntax (the head of a `for {}` loop otherwise carries no nodes).
	Stmt ast.Stmt
}

// builder holds the state of one CFG construction.
type builder struct {
	cfg  *CFG
	info *types.Info

	current *Block
	// breaks/continues are the innermost-first stacks of branch targets.
	breaks, continues []*Block
	// fallthroughs is the stack of next-case targets inside switches.
	fallthroughs []*Block
	// labels maps a label name to its target block (created on first
	// reference, so forward gotos work).
	labels map[string]*Block
	// labelLoops maps a label name to the break/continue targets of the
	// loop or switch it labels.
	labelBreak, labelContinue map[string]*Block
	// pendingLabel is the label naming the next loop/switch/select.
	pendingLabel string
}

// New builds the CFG of one function body. The info may be nil; it is used
// only to confirm that a call to panic/recover really is the builtin.
func New(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &builder{
		cfg:           &CFG{},
		info:          info,
		labels:        make(map[string]*Block),
		labelBreak:    make(map[string]*Block),
		labelContinue: make(map[string]*Block),
	}
	entry := b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cfg.Panic = b.newBlock("panic")
	b.current = entry
	b.stmtList(body.List)
	b.jump(b.cfg.Exit)
	return b.cfg
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an edge to target; subsequent statements
// land in an unreachable block until something re-anchors the flow.
func (b *builder) jump(target *Block) {
	if b.current != nil {
		b.edge(b.current, target)
	}
	b.current = nil
}

// ensure returns the current block, opening an unreachable one if the flow
// was just terminated (statements after return/panic/goto).
func (b *builder) ensure() *Block {
	if b.current == nil {
		b.current = b.newBlock("unreachable")
	}
	return b.current
}

func (b *builder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

// takeLabel consumes the pending label for a loop/switch/select, recording
// its break (and optionally continue) targets.
func (b *builder) takeLabel(breakT, continueT *Block) {
	if b.pendingLabel == "" {
		return
	}
	b.labelBreak[b.pendingLabel] = breakT
	if continueT != nil {
		b.labelContinue[b.pendingLabel] = continueT
	}
	b.pendingLabel = ""
}

// labelBlock returns (creating on demand) the block a label's statement
// starts in, shared by goto and the labeled statement itself.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isBuiltinCall reports whether call invokes the named builtin. Without
// type info it falls back to the bare identifier (sound for the repo,
// which never shadows panic/recover).
func (b *builder) isBuiltinCall(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		if p, isParen := call.Fun.(*ast.ParenExpr); isParen {
			id, ok = p.X.(*ast.Ident)
		}
		if !ok {
			return false
		}
	}
	if id == nil || id.Name != name {
		return false
	}
	if b.info == nil {
		return true
	}
	bi, ok := b.info.Uses[id].(*types.Builtin)
	return ok && bi.Name() == name
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.ensure()
		cond.Cond = s.Cond
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		b.edge(cond, then) // true edge first
		b.current = then
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			elseB := b.newBlock("if.else")
			b.edge(cond, elseB)
			b.current = elseB
			b.stmt(s.Else)
			b.jump(done)
		} else {
			b.edge(cond, done)
		}
		b.current = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		head.Stmt = s
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		continueT := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			continueT = post
		}
		b.takeLabel(done, continueT)
		b.jump(head)
		b.current = head
		if s.Cond != nil {
			b.add(s.Cond)
			head.Cond = s.Cond
			b.edge(head, body) // true edge first
			b.edge(head, done)
		} else {
			b.edge(head, body)
		}
		b.breaks = append(b.breaks, done)
		b.continues = append(b.continues, continueT)
		b.current = body
		b.stmt(s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		if post != nil {
			b.jump(post)
			b.current = post
			b.stmt(s.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.current = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		head.Stmt = s
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.takeLabel(done, head)
		b.jump(head)
		head.Nodes = append(head.Nodes, s) // header only; body has own blocks
		b.edge(head, body)
		b.edge(head, done)
		b.breaks = append(b.breaks, done)
		b.continues = append(b.continues, head)
		b.current = body
		b.stmt(s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.jump(head)
		b.current = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		head := b.ensure()
		done := b.newBlock("switch.done")
		b.takeLabel(done, nil)
		b.switchClauses(head, done, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			var exprs []ast.Node
			for _, e := range cc.List {
				exprs = append(exprs, e)
			}
			return exprs, cc.Body, cc.List == nil
		})
		b.current = done

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		head := b.ensure()
		done := b.newBlock("typeswitch.done")
		b.takeLabel(done, nil)
		b.switchClauses(head, done, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			return nil, cc.Body, cc.List == nil
		})
		b.current = done

	case *ast.SelectStmt:
		head := b.ensure()
		done := b.newBlock("select.done")
		b.takeLabel(done, nil)
		b.breaks = append(b.breaks, done)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			b.edge(head, blk)
			b.current = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(done)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.current = done
		if len(s.Body.List) == 0 {
			// select{} blocks forever: done is unreachable.
			b.current = nil
			b.ensure()
		}

	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		b.jump(target)
		b.current = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			t := b.branchTarget(s, b.breaks, b.labelBreak)
			if t != nil {
				b.jump(t)
			}
		case token.CONTINUE:
			t := b.branchTarget(s, b.continues, b.labelContinue)
			if t != nil {
				b.jump(t)
			}
		case token.GOTO:
			b.jump(b.labelBlock(s.Label.Name))
		case token.FALLTHROUGH:
			if n := len(b.fallthroughs); n > 0 && b.fallthroughs[n-1] != nil {
				b.jump(b.fallthroughs[n-1])
			}
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.isBuiltinCall(call, "panic") {
			b.jump(b.cfg.Panic)
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, IncDec, Send, Go: straight-line statements.
		b.add(s)
	}
}

// branchTarget resolves a break/continue, honoring its label if present.
func (b *builder) branchTarget(s *ast.BranchStmt, stack []*Block, labeled map[string]*Block) *Block {
	if s.Label != nil {
		return labeled[s.Label.Name]
	}
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// switchClauses wires the shared clause structure of switch/type-switch:
// every clause block is a successor of head (condition order is modeled as
// nondeterministic choice), fallthrough jumps to the next clause, and a
// missing default adds a head->done edge.
func (b *builder) switchClauses(head, done *Block, clauses []ast.Stmt,
	split func(ast.Stmt) (exprs []ast.Node, body []ast.Stmt, isDefault bool)) {

	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		_, _, isDefault := split(c)
		kind := "switch.case"
		if isDefault {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, c := range clauses {
		exprs, body, _ := split(c)
		var next *Block
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.fallthroughs = append(b.fallthroughs, next)
		b.current = blocks[i]
		blocks[i].Nodes = append(blocks[i].Nodes, exprs...)
		b.stmtList(body)
		b.jump(done)
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
	}
}

// Dump renders the CFG as stable text for golden tests: one paragraph per
// block with its kind, nodes, and successor indices.
func (g *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s\n", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, "\t%s\n", nodeText(fset, n))
		}
		if len(blk.Succs) > 0 {
			ids := make([]string, len(blk.Succs))
			for i, s := range blk.Succs {
				ids[i] = fmt.Sprintf("b%d", s.Index)
			}
			fmt.Fprintf(&sb, "\t-> %s\n", strings.Join(ids, " "))
		}
	}
	if len(g.Defers) > 0 {
		fmt.Fprintf(&sb, "defers\n")
		for _, d := range g.Defers {
			fmt.Fprintf(&sb, "\t%s\n", nodeText(fset, d))
		}
	}
	return sb.String()
}

// nodeText prints a node on one collapsed line, truncated for readability.
func nodeText(fset *token.FileSet, n ast.Node) string {
	if r, ok := n.(*ast.RangeStmt); ok {
		// Print the header only: the body occupies its own blocks.
		h := "range " + exprText(fset, r.X)
		if r.Key != nil {
			assign := "="
			if r.Tok == token.DEFINE {
				assign = ":="
			}
			kv := exprText(fset, r.Key)
			if r.Value != nil {
				kv += ", " + exprText(fset, r.Value)
			}
			h = kv + " " + assign + " " + h
		}
		return "for " + h
	}
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, n)
	text := strings.Join(strings.Fields(buf.String()), " ")
	if len(text) > 72 {
		text = text[:69] + "..."
	}
	return text
}

func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return strings.Join(strings.Fields(buf.String()), " ")
}
