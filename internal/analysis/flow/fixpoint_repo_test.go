package flow

import (
	"go/ast"
	"testing"

	"logicregression/internal/analysis"
)

// TestSolverFixpointOnRepo is the property test backing the solver's
// convergence cap: for every function and function literal in the module,
// both the taint solver (under a worst-case spec that taints every call
// result) and reaching definitions must reach a fixed point. A lattice or
// transfer bug that breaks monotonicity shows up here as a non-converged
// solution on real code long before an analyzer misreports.
func TestSolverFixpointOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and solves the full module")
	}
	units, err := analysis.LoadPackages("../../..", "logicregression/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	funcs := 0
	probe := &analysis.Analyzer{
		Name: "fixpointprobe",
		Doc:  "test-only: solves every function body and asserts convergence",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					var body *ast.BlockStmt
					name := "func literal"
					switch n := n.(type) {
					case *ast.FuncDecl:
						if n.Body == nil {
							return true
						}
						body = n.Body
						name = n.Name.Name
					case *ast.FuncLit:
						body = n.Body
					default:
						return true
					}
					funcs++
					pos := pass.Fset.Position(body.Pos())

					g := New(body, pass.TypesInfo)
					if len(g.Blocks) == 0 || g.Blocks[0] == nil {
						t.Errorf("%s: %s: CFG has no entry block", pos, name)
						return true
					}

					// Worst case for the taint lattice: every call result
					// is a fresh source, so states grow as fast as they can.
					spec := &TaintSpec{
						Info: pass.TypesInfo,
						Source: func(e ast.Expr) bool {
							_, ok := e.(*ast.CallExpr)
							return ok
						},
					}
					if sol := RunTaint(g, spec); !sol.Converged {
						t.Errorf("%s: %s: taint solver did not converge (%d iterations over %d blocks)",
							pos, name, sol.Iterations, len(g.Blocks))
					}

					if sol := ReachingDefs(g, pass.TypesInfo, nil); !sol.Converged {
						t.Errorf("%s: %s: reaching defs did not converge (%d iterations over %d blocks)",
							pos, name, sol.Iterations, len(g.Blocks))
					}
					return true
				})
			}
			return nil
		},
	}
	for _, u := range units {
		if _, err := u.Analyze([]*analysis.Analyzer{probe}); err != nil {
			t.Fatalf("%s: %v", u.ImportPath, err)
		}
	}
	// The module is not small; a probe that silently analyzed nothing
	// would make this test vacuous.
	if funcs < 300 {
		t.Errorf("probe visited only %d function bodies; expected the full module (300+)", funcs)
	}
}
