package flow

import (
	"go/ast"
	"go/types"
)

// A Lattice drives the generic forward solver: abstract states of type S
// form a join-semilattice, and Transfer pushes a state through one block.
type Lattice[S any] interface {
	// Bottom is the initial (empty) state of every block.
	Bottom() S
	// Entry is the state flowing into the entry block.
	Entry() S
	// Join combines two incoming states. It must not mutate its inputs.
	Join(a, b S) S
	// Equal reports whether two states carry the same information.
	Equal(a, b S) bool
	// Transfer computes the out-state of a block from its in-state. It
	// must not mutate in.
	Transfer(b *Block, in S) S
}

// A BranchLattice additionally adapts states along the true/false edges of
// condition blocks (blocks with Cond set): succIdx 0 is the true edge,
// 1 the false edge.
type BranchLattice[S any] interface {
	Lattice[S]
	FlowBranch(b *Block, succIdx int, out S) S
}

// A Solution holds the fixed point of a forward analysis.
type Solution[S any] struct {
	In, Out map[*Block]S
	// Iterations counts block transfers executed before the fixed point.
	Iterations int
	// Converged is false only if the iteration cap was hit, which means
	// the lattice is broken (non-monotone Transfer or unbounded height).
	Converged bool
}

// Forward runs a forward dataflow analysis to its fixed point with a
// worklist. The iteration cap is generous (lattices here have height
// bounded by the number of objects in a function); hitting it is a bug in
// the lattice, reported via Converged.
func Forward[S any](g *CFG, lat Lattice[S]) *Solution[S] {
	sol := &Solution[S]{
		In:        make(map[*Block]S, len(g.Blocks)),
		Out:       make(map[*Block]S, len(g.Blocks)),
		Converged: true,
	}
	for _, b := range g.Blocks {
		sol.In[b] = lat.Bottom()
		sol.Out[b] = lat.Bottom()
	}
	branch, isBranch := lat.(BranchLattice[S])

	// Predecessor lists, to recompute joins exactly.
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	inWork := make([]bool, len(g.Blocks))
	work := make([]*Block, 0, len(g.Blocks))
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}

	cap := 64*len(g.Blocks)*len(g.Blocks) + 4096
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		in := lat.Bottom()
		if b.Index == 0 {
			in = lat.Join(in, lat.Entry())
		}
		for _, p := range preds[b] {
			edgeState := sol.Out[p]
			if isBranch && p.Cond != nil {
				for i, s := range p.Succs {
					if s == b {
						edgeState = branch.FlowBranch(p, i, edgeState)
						break
					}
				}
			}
			in = lat.Join(in, edgeState)
		}
		sol.In[b] = in
		out := lat.Transfer(b, in)
		sol.Iterations++
		if sol.Iterations > cap {
			sol.Converged = false
			return sol
		}
		if !lat.Equal(out, sol.Out[b]) {
			sol.Out[b] = out
			for _, s := range b.Succs {
				push(s)
			}
		}
	}
	return sol
}

// ---------------------------------------------------------------------------
// Reaching definitions

// A Def is one definition site of an object. Site is nil for definitions
// flowing in at function entry (parameters, captured variables).
type Def struct {
	Obj  types.Object
	Site ast.Node
}

// DefState maps each object to the set of definitions that may reach a
// program point.
type DefState map[types.Object]map[ast.Node]bool

// defsLattice is the reaching-definitions instance of the forward solver.
type defsLattice struct {
	info   *types.Info
	params []types.Object
}

func (l *defsLattice) Bottom() DefState { return nil }

func (l *defsLattice) Entry() DefState {
	s := make(DefState, len(l.params))
	for _, p := range l.params {
		s[p] = map[ast.Node]bool{nil: true}
	}
	return s
}

// Join merges two states into a fresh map. It must never return either
// input: Transfer mutates the joined state in place, and an aliased return
// would let those mutations corrupt a predecessor's out-state.
func (l *defsLattice) Join(a, b DefState) DefState {
	out := make(DefState, len(a)+len(b))
	for obj, sites := range a {
		m := make(map[ast.Node]bool, len(sites))
		for s := range sites {
			m[s] = true
		}
		out[obj] = m
	}
	for obj, sites := range b {
		m := out[obj]
		if m == nil {
			m = make(map[ast.Node]bool, len(sites))
			out[obj] = m
		}
		for s := range sites {
			m[s] = true
		}
	}
	return out
}

func (l *defsLattice) Equal(a, b DefState) bool {
	if len(a) != len(b) {
		return false
	}
	for obj, as := range a {
		bs, ok := b[obj]
		if !ok || len(as) != len(bs) {
			return false
		}
		for s := range as {
			if !bs[s] {
				return false
			}
		}
	}
	return true
}

func (l *defsLattice) Transfer(b *Block, in DefState) DefState {
	out := l.Join(nil, in) // copy
	if out == nil {
		out = make(DefState)
	}
	gen := func(id *ast.Ident, site ast.Node) {
		obj := l.objectOf(id)
		if obj == nil || id.Name == "_" {
			return
		}
		out[obj] = map[ast.Node]bool{site: true} // strong update
	}
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					gen(id, n)
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							gen(id, n)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				gen(id, n)
			}
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok {
				gen(id, n)
			}
			if id, ok := n.Value.(*ast.Ident); ok {
				gen(id, n)
			}
		}
	}
	return out
}

func (l *defsLattice) objectOf(id *ast.Ident) types.Object {
	if obj := l.info.Defs[id]; obj != nil {
		return obj
	}
	return l.info.Uses[id]
}

// ReachingDefs computes, for every block, the definitions of each variable
// that may reach its entry. params are seeded as defined-at-entry (Site
// nil). Assignments to identifiers are strong updates; writes through
// pointers or to fields are not tracked (callers needing them use the taint
// lattice's field handling instead).
func ReachingDefs(g *CFG, info *types.Info, params []types.Object) *Solution[DefState] {
	return Forward[DefState](g, &defsLattice{info: info, params: params})
}
