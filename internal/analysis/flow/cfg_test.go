package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseWholeFile type-checks one source file against the compiled stdlib.
func parseWholeFile(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

// parseFunc type-checks one file and returns the named function's decl.
func parseFunc(t *testing.T, src, name string) (*token.FileSet, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset, f, info := parseWholeFile(t, src)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fset, fd, info
		}
	}
	t.Fatalf("no function %q", name)
	return nil, nil, nil
}

// golden compares a CFG dump against the expected text (both trimmed).
func golden(t *testing.T, got, want string) {
	t.Helper()
	g, w := strings.TrimSpace(got), strings.TrimSpace(want)
	if g != w {
		t.Errorf("CFG dump mismatch:\n--- got ---\n%s\n--- want ---\n%s", g, w)
	}
}

func TestCFGDeferPanic(t *testing.T) {
	fset, fd, info := parseFunc(t, `package x
func f(bad bool) {
	defer done()
	if bad {
		panic("boom")
	}
	work()
}
func done() {}
func work() {}
`, "f")
	g := New(fd.Body, info)
	golden(t, g.Dump(fset), `
b0 entry
	defer done()
	bad
	-> b3 b4
b1 exit
b2 panic
b3 if.then
	panic("boom")
	-> b2
b4 if.done
	work()
	-> b1
defers
	defer done()
`)
}

func TestCFGLabeledBreak(t *testing.T) {
	fset, fd, info := parseFunc(t, `package x
func f(xs [][]int) int {
	total := 0
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			total += v
		}
	}
	return total
}
`, "f")
	g := New(fd.Body, info)
	golden(t, g.Dump(fset), `
b0 entry
	total := 0
	-> b3
b1 exit
b2 panic
b3 label.outer
	-> b4
b4 range.head
	for _, row := range xs
	-> b5 b6
b5 range.body
	-> b7
b6 range.done
	return total
	-> b1
b7 range.head
	for _, v := range row
	-> b8 b9
b8 range.body
	v < 0
	-> b10 b11
b9 range.done
	-> b4
b10 if.then
	-> b6
b11 if.done
	total += v
	-> b7
`)
}

func TestCFGSelect(t *testing.T) {
	fset, fd, info := parseFunc(t, `package x
func f(a, b chan int, out chan<- int) {
	for {
		select {
		case v := <-a:
			out <- v
		case <-b:
			return
		default:
			continue
		}
	}
}
`, "f")
	g := New(fd.Body, info)
	golden(t, g.Dump(fset), `
b0 entry
	-> b3
b1 exit
b2 panic
b3 for.head
	-> b4
b4 for.body
	-> b7 b8 b9
b5 for.done
	-> b1
b6 select.done
	-> b3
b7 select.case
	v := <-a
	out <- v
	-> b6
b8 select.case
	<-b
	return
	-> b1
b9 select.default
	-> b3
`)
}

func TestCFGSwitchFallthroughGoto(t *testing.T) {
	fset, fd, info := parseFunc(t, `package x
func f(n int) int {
	switch n {
	case 0:
		n++
		fallthrough
	case 1:
		n += 2
	default:
		goto out
	}
	n *= 3
out:
	return n
}
`, "f")
	g := New(fd.Body, info)
	golden(t, g.Dump(fset), `
b0 entry
	n
	-> b4 b5 b6
b1 exit
b2 panic
b3 switch.done
	n *= 3
	-> b7
b4 switch.case
	0
	n++
	-> b5
b5 switch.case
	1
	n += 2
	-> b3
b6 switch.default
	-> b7
b7 label.out
	return n
	-> b1
`)
}

// TestCFGEveryBlockTerminates checks structural invariants on a grab-bag
// function: every non-exit reachable block has successors, and the entry
// reaches the exit.
func TestCFGStructure(t *testing.T) {
	fset, fd, info := parseFunc(t, `package x
func f(xs []int) (sum int) {
	for i := 0; i < len(xs); i++ {
		switch {
		case xs[i] > 0:
			sum += xs[i]
		case xs[i] < -100:
			panic("out of range")
		}
	}
	return
}
`, "f")
	_ = fset
	g := New(fd.Body, info)
	reach := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Blocks[0])
	if !reach[g.Exit] {
		t.Error("exit not reachable from entry")
	}
	if !reach[g.Panic] {
		t.Error("panic block not reachable despite explicit panic")
	}
	for b := range reach {
		if b != g.Exit && b != g.Panic && len(b.Succs) == 0 {
			t.Errorf("reachable block b%d (%s) has no successors", b.Index, b.Kind)
		}
	}
}

// TestCFGSelectSendComm pins the send-comm layout: a send that is a select
// case heads its own case block (so analyses exempting select comms can
// recognize it), and the fall-off path loops back through select.done.
func TestCFGSelectSendComm(t *testing.T) {
	fset, fd, info := parseFunc(t, `package x
func f(out chan int, stop chan struct{}) {
	for {
		select {
		case out <- 1:
		case <-stop:
			return
		}
	}
}
`, "f")
	g := New(fd.Body, info)
	golden(t, g.Dump(fset), `
b0 entry
	-> b3
b1 exit
b2 panic
b3 for.head
	-> b4
b4 for.body
	-> b7 b8
b5 for.done
	-> b1
b6 select.done
	-> b3
b7 select.case
	out <- 1
	-> b6
b8 select.case
	<-stop
	return
	-> b1
`)
}

// TestCFGLabeledBreakFromSelect pins that `break label` inside a select
// case targets the labeled loop's done block, not the select's.
func TestCFGLabeledBreakFromSelect(t *testing.T) {
	fset, fd, info := parseFunc(t, `package x
func f(a chan int, stop chan struct{}) int {
	n := 0
loop:
	for {
		select {
		case v := <-a:
			n += v
		case <-stop:
			break loop
		}
	}
	return n
}
`, "f")
	g := New(fd.Body, info)
	golden(t, g.Dump(fset), `
b0 entry
	n := 0
	-> b3
b1 exit
b2 panic
b3 label.loop
	-> b4
b4 for.head
	-> b5
b5 for.body
	-> b8 b9
b6 for.done
	return n
	-> b1
b7 select.done
	-> b4
b8 select.case
	v := <-a
	n += v
	-> b7
b9 select.case
	<-stop
	-> b6
`)
}

// TestCFGLabeledContinue pins that `continue label` from an inner loop
// edges back to the outer loop's head.
func TestCFGLabeledContinue(t *testing.T) {
	fset, fd, info := parseFunc(t, `package x
func f(xs [][]int) int {
	total := 0
outer:
	for _, row := range xs {
		for _, v := range row {
			if v == 0 {
				continue outer
			}
			total += v
		}
	}
	return total
}
`, "f")
	g := New(fd.Body, info)
	golden(t, g.Dump(fset), `
b0 entry
	total := 0
	-> b3
b1 exit
b2 panic
b3 label.outer
	-> b4
b4 range.head
	for _, row := range xs
	-> b5 b6
b5 range.body
	-> b7
b6 range.done
	return total
	-> b1
b7 range.head
	for _, v := range row
	-> b8 b9
b8 range.body
	v == 0
	-> b10 b11
b9 range.done
	-> b4
b10 if.then
	-> b4
b11 if.done
	total += v
	-> b7
`)
}
