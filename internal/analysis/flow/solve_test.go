package flow

import (
	"go/ast"
	"go/types"
	"testing"
)

// findObj returns the named object defined anywhere in the function.
func findObj(info *types.Info, name string) types.Object {
	for id, obj := range info.Defs {
		if obj != nil && id.Name == name {
			return obj
		}
	}
	return nil
}

func TestReachingDefsDiamond(t *testing.T) {
	_, fd, info := parseFunc(t, `package x
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}
`, "f")
	g := New(fd.Body, info)
	sol := ReachingDefs(g, info, nil)
	if !sol.Converged {
		t.Fatal("reaching defs did not converge")
	}
	x := findObj(info, "x")
	if x == nil {
		t.Fatal("no object for x")
	}
	// At the exit block both the initial := and the then-branch = reach.
	defs := sol.In[g.Exit][x]
	if len(defs) != 2 {
		t.Errorf("defs of x reaching exit = %d, want 2 (diamond join)", len(defs))
	}
	// Inside the then block only the initial definition reaches.
	var then *Block
	for _, b := range g.Blocks {
		if b.Kind == "if.then" {
			then = b
		}
	}
	if got := len(sol.In[then][x]); got != 1 {
		t.Errorf("defs of x reaching then-branch = %d, want 1", got)
	}
}

func TestReachingDefsLoopParams(t *testing.T) {
	_, fd, info := parseFunc(t, `package x
func f(n int) int {
	for i := 0; i < n; i++ {
		n = n - 1
	}
	return n
}
`, "f")
	g := New(fd.Body, info)
	nObj := findObj(info, "n")
	if nObj == nil {
		// Parameters are in Defs of the field name.
		t.Fatal("no object for n")
	}
	sol := ReachingDefs(g, info, []types.Object{nObj})
	if !sol.Converged {
		t.Fatal("did not converge")
	}
	// At exit: both the entry def (Site nil) and the loop-body assignment
	// may reach (loop may run zero times).
	defs := sol.In[g.Exit][nObj]
	if len(defs) != 2 || !defs[nil] {
		t.Errorf("defs of n at exit = %v, want entry def + loop assignment", defs)
	}
}

// clockTaint builds a TaintSpec treating fake() calls as sources.
func clockTaint(info *types.Info) *TaintSpec {
	return &TaintSpec{
		Info: info,
		Source: func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "entropy"
		},
	}
}

const taintSrc = `package x
func entropy() int64 { return 42 }
func sink(int64)     {}

type holder struct{ seed int64 }

func flows(clean int64) {
	a := entropy()      // a tainted
	b := a + 1          // b tainted (expression)
	h := holder{seed: b}
	sink(h.seed)        // field read: tainted
	a = clean           // strong update: a clean again
	sink(a)
}
`

func TestTaintFlowAndStrongUpdate(t *testing.T) {
	_, fd, info := parseFunc(t, taintSrc, "flows")
	g := New(fd.Body, info)
	spec := clockTaint(info)
	sol := RunTaint(g, spec)
	if !sol.Converged {
		t.Fatal("taint did not converge")
	}
	// Walk the sink calls in order and record the argument taint at each.
	var got []bool
	NodeTaintStates(g, spec, sol, func(n ast.Node, s TaintState) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "sink" {
			return
		}
		got = append(got, spec.ExprTaint(call.Args[0], s))
	})
	want := []bool{true, false} // h.seed tainted; a cleaned by strong update
	if len(got) != len(want) {
		t.Fatalf("saw %d sink calls, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sink call %d: taint = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTaintLoopConverges(t *testing.T) {
	_, fd, info := parseFunc(t, `package x
func entropy() int64 { return 42 }
func f(n int) int64 {
	var acc int64
	for i := 0; i < n; i++ {
		acc += entropy()
	}
	return acc
}
`, "f")
	g := New(fd.Body, info)
	sol := RunTaint(g, clockTaint(info))
	if !sol.Converged {
		t.Fatal("taint did not converge on a loop")
	}
	acc := findObj(info, "acc")
	if !sol.In[g.Exit][acc] {
		t.Error("acc should be tainted at exit (accumulated through loop)")
	}
}

// trueEdgeLattice tracks a single fact — "the condition call succeeded" —
// to exercise branch-sensitive propagation.
type trueEdgeLattice struct{}

func (trueEdgeLattice) Bottom() int         { return 0 }
func (trueEdgeLattice) Entry() int          { return 1 }
func (trueEdgeLattice) Join(a, b int) int   { return max(a, b) }
func (trueEdgeLattice) Equal(a, b int) bool { return a == b }
func (trueEdgeLattice) Transfer(b *Block, in int) int {
	return in
}
func (trueEdgeLattice) FlowBranch(b *Block, succIdx int, out int) int {
	if succIdx == 0 {
		return out + 10 // true edge
	}
	return out
}

func TestBranchSensitivity(t *testing.T) {
	_, fd, info := parseFunc(t, `package x
func f(ok bool) int {
	if ok {
		return 1
	}
	return 0
}
`, "f")
	g := New(fd.Body, info)
	sol := Forward[int](g, trueEdgeLattice{})
	if !sol.Converged {
		t.Fatal("did not converge")
	}
	var then, done *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "if.then":
			then = b
		case "if.done":
			done = b
		}
	}
	if sol.In[then] != 11 {
		t.Errorf("then-branch in-state = %d, want 11 (true edge applied)", sol.In[then])
	}
	if sol.In[done] != 1 {
		t.Errorf("false-path in-state = %d, want 1 (no true-edge bonus)", sol.In[done])
	}
}

func TestCallGraphSummaries(t *testing.T) {
	_, file, info := parseWholeFile(t, `package x
func leaf() {}
func mid()  { leaf() }
func top()  { mid(); mid() }
func indirect(f func()) { f() }
func recA() { recB() }
func recB() { recA() }
`)
	g := BuildCallGraph([]*ast.File{file}, info)
	if len(g.Order) != 6 {
		t.Fatalf("call graph has %d nodes, want 6", len(g.Order))
	}
	byName := map[string]*CallNode{}
	for _, n := range g.Order {
		byName[n.Fn.Name()] = n
	}
	if len(byName["top"].Calls) != 2 || byName["top"].Calls[0].Local != byName["mid"] {
		t.Error("top's calls not resolved to the local mid node")
	}
	if !byName["indirect"].HasIndirect {
		t.Error("call through a function value not marked indirect")
	}
	if byName["leaf"].HasIndirect {
		t.Error("leaf marked indirect with no calls at all")
	}

	// Summary: "transitively reaches leaf". Must converge and mark
	// top/mid/leaf but not recA/recB.
	reaches := map[*CallNode]bool{}
	converged := g.Fixpoint(func(n *CallNode) bool {
		v := n.Fn.Name() == "leaf"
		for _, c := range n.Calls {
			if c.Local != nil && reaches[c.Local] {
				v = true
			}
		}
		if v && !reaches[n] {
			reaches[n] = true
			return true
		}
		return false
	})
	if !converged {
		t.Fatal("fixpoint did not converge")
	}
	for name, want := range map[string]bool{"leaf": true, "mid": true, "top": true, "recA": false, "recB": false} {
		if reaches[byName[name]] != want {
			t.Errorf("reaches[%s] = %v, want %v", name, reaches[byName[name]], want)
		}
	}
}
