package ssa

import (
	"go/ast"
	"go/constant"
	"testing"

	"logicregression/internal/analysis/flow"
)

// lastReturnBlock finds the block holding the function's final return.
func lastReturnBlock(f *Func) (*flow.Block, *ast.ReturnStmt) {
	var blk *flow.Block
	var ret *ast.ReturnStmt
	for _, b := range f.CFG.Blocks {
		for _, n := range b.Nodes {
			if r, ok := n.(*ast.ReturnStmt); ok {
				if ret == nil || r.Pos() > ret.Pos() {
					blk, ret = b, r
				}
			}
		}
	}
	return blk, ret
}

func constAtReturn(t *testing.T, src string) (int64, bool) {
	t.Helper()
	f := buildFunc(t, src, "f")
	s := RunSCCP(f)
	blk, ret := lastReturnBlock(f)
	if ret == nil || len(ret.Results) != 1 {
		t.Fatal("fixture needs a single-result return")
	}
	v, ok := s.ConstAt(ret.Results[0], blk)
	if !ok {
		return 0, false
	}
	i, exact := constant.Int64Val(constant.ToInt(v))
	if !exact {
		return 0, false
	}
	return i, true
}

func TestSCCPStraightLine(t *testing.T) {
	got, ok := constAtReturn(t, `package x
func f() int {
	a := 3
	b := a*4 + 1
	c := b << 2
	return c - 2
}
`)
	if !ok || got != 50 {
		t.Errorf("got %d (ok=%v), want 50", got, ok)
	}
}

func TestSCCPSameConstBothArms(t *testing.T) {
	got, ok := constAtReturn(t, `package x
func f(cond bool) int {
	c := 0
	if cond {
		c = 5
	} else {
		c = 5
	}
	return c
}
`)
	if !ok || got != 5 {
		t.Errorf("phi of equal constants: got %d (ok=%v), want 5", got, ok)
	}
}

func TestSCCPBranchPruning(t *testing.T) {
	// The else arm assigns 9, but SCCP proves the condition true and
	// prunes the edge, so the phi collapses to 2.
	got, ok := constAtReturn(t, `package x
func f() int {
	x := 1
	y := 0
	if x == 1 {
		y = 2
	} else {
		y = 9
	}
	return y
}
`)
	if !ok || got != 2 {
		t.Errorf("pruned phi: got %d (ok=%v), want 2", got, ok)
	}
}

func TestSCCPLoopVarNotConst(t *testing.T) {
	if _, ok := constAtReturn(t, `package x
func f() int {
	s := 0
	for i := 0; i < 10; i++ {
		s += i
	}
	return s
}
`); ok {
		t.Error("loop accumulator must not fold to a constant")
	}
}

func TestSCCPParamNotConst(t *testing.T) {
	if _, ok := constAtReturn(t, `package x
func f(n int) int {
	return n + 1
}
`); ok {
		t.Error("parameter-derived value must not fold")
	}
}

func TestSCCPBranchConstAndReachability(t *testing.T) {
	f := buildFunc(t, `package x
func f() int {
	debug := false
	if debug {
		return 1
	}
	return 0
}
`, "f")
	s := RunSCCP(f)
	var condBlk *flow.Block
	for _, b := range f.CFG.Blocks {
		if b.Cond != nil && len(b.Succs) == 2 {
			condBlk = b
		}
	}
	if condBlk == nil {
		t.Fatal("no branch block found")
	}
	truth, ok := s.BranchConst(condBlk)
	if !ok || truth {
		t.Errorf("branch verdict: got (%v, %v), want (false, true)", truth, ok)
	}
	// The then-arm (true successor) must be unreachable.
	if s.Reachable(condBlk.Succs[0]) {
		t.Error("pruned then-arm still marked reachable")
	}
	if !s.Reachable(condBlk.Succs[1]) {
		t.Error("taken else-edge must stay reachable")
	}
}

func TestSCCPWrapsToTypeWidth(t *testing.T) {
	got, ok := constAtReturn(t, `package x
func f() int {
	x := uint8(200)
	y := x + x // wraps mod 256
	return int(y)
}
`)
	if !ok || got != 144 {
		t.Errorf("uint8 wraparound: got %d (ok=%v), want 144", got, ok)
	}
}

func TestSCCPShortCircuit(t *testing.T) {
	f := buildFunc(t, `package x
func f(n int) int {
	never := false
	if never && n > 3 {
		return 1
	}
	return 0
}
`, "f")
	s := RunSCCP(f)
	for _, b := range f.CFG.Blocks {
		if b.Cond != nil && len(b.Succs) == 2 {
			truth, ok := s.BranchConst(b)
			if !ok || truth {
				t.Errorf("short-circuit &&: got (%v, %v), want (false, true)", truth, ok)
			}
		}
	}
}
