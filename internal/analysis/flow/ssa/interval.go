package ssa

import (
	"fmt"
	"go/token"
	"go/types"
	"math"
	"math/bits"
)

// An Interval is a conservative [Lo, Hi] over-approximation of an
// integer-valued expression, with either end optionally unbounded. The
// empty interval is the bottom element (no possible value — only arises
// on dynamically impossible paths).
type Interval struct {
	lo, hi         int64
	loUnb, hiUnb   bool
	isEmpty, isTop bool
}

// FullInterval is the unbounded interval (every int64).
func FullInterval() Interval { return Interval{loUnb: true, hiUnb: true, isTop: true} }

// EmptyInterval is the bottom element.
func EmptyInterval() Interval { return Interval{isEmpty: true} }

// PointInterval is the singleton [v, v].
func PointInterval(v int64) Interval { return Interval{lo: v, hi: v} }

// RangeInterval is [lo, hi]; an inverted pair yields the empty interval.
func RangeInterval(lo, hi int64) Interval {
	if lo > hi {
		return EmptyInterval()
	}
	return Interval{lo: lo, hi: hi}
}

// AtLeast is [lo, +inf).
func AtLeast(lo int64) Interval { return Interval{lo: lo, hiUnb: true} }

// AtMost is (-inf, hi].
func AtMost(hi int64) Interval { return Interval{hi: hi, loUnb: true} }

// Lo returns the lower bound; ok is false when unbounded (or empty).
func (iv Interval) Lo() (int64, bool) { return iv.lo, !iv.loUnb && !iv.isEmpty }

// Hi returns the upper bound; ok is false when unbounded (or empty).
func (iv Interval) Hi() (int64, bool) { return iv.hi, !iv.hiUnb && !iv.isEmpty }

// Empty reports the bottom element.
func (iv Interval) Empty() bool { return iv.isEmpty }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool {
	if iv.isEmpty {
		return false
	}
	if !iv.loUnb && v < iv.lo {
		return false
	}
	if !iv.hiUnb && v > iv.hi {
		return false
	}
	return true
}

func (iv Interval) String() string {
	if iv.isEmpty {
		return "[]"
	}
	lo, hi := "-inf", "+inf"
	lb, rb := "(", ")"
	if !iv.loUnb {
		lo, lb = fmt.Sprintf("%d", iv.lo), "["
	}
	if !iv.hiUnb {
		hi, rb = fmt.Sprintf("%d", iv.hi), "]"
	}
	return fmt.Sprintf("%s%s,%s%s", lb, lo, hi, rb)
}

// Join is the interval union (lattice join).
func (iv Interval) Join(o Interval) Interval {
	if iv.isEmpty {
		return o
	}
	if o.isEmpty {
		return iv
	}
	out := Interval{}
	if iv.loUnb || o.loUnb {
		out.loUnb = true
	} else {
		out.lo = min64(iv.lo, o.lo)
	}
	if iv.hiUnb || o.hiUnb {
		out.hiUnb = true
	} else {
		out.hi = max64(iv.hi, o.hi)
	}
	out.isTop = out.loUnb && out.hiUnb
	return out
}

// Meet is the interval intersection.
func (iv Interval) Meet(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	out := Interval{}
	switch {
	case iv.loUnb && o.loUnb:
		out.loUnb = true
	case iv.loUnb:
		out.lo = o.lo
	case o.loUnb:
		out.lo = iv.lo
	default:
		out.lo = max64(iv.lo, o.lo)
	}
	switch {
	case iv.hiUnb && o.hiUnb:
		out.hiUnb = true
	case iv.hiUnb:
		out.hi = o.hi
	case o.hiUnb:
		out.hi = iv.hi
	default:
		out.hi = min64(iv.hi, o.hi)
	}
	if !out.loUnb && !out.hiUnb && out.lo > out.hi {
		return EmptyInterval()
	}
	out.isTop = out.loUnb && out.hiUnb
	return out
}

// eqIv reports exact equality of two intervals.
func (iv Interval) eqIv(o Interval) bool {
	if iv.isEmpty != o.isEmpty {
		return false
	}
	if iv.isEmpty {
		return true
	}
	if iv.loUnb != o.loUnb || iv.hiUnb != o.hiUnb {
		return false
	}
	if !iv.loUnb && iv.lo != o.lo {
		return false
	}
	if !iv.hiUnb && iv.hi != o.hi {
		return false
	}
	return true
}

// WidenAgainst widens iv relative to old: any bound that moved since old
// goes unbounded. Guarantees termination of the range fixpoint.
func (iv Interval) WidenAgainst(old Interval) Interval {
	if old.isEmpty || iv.isEmpty {
		return iv
	}
	out := iv
	if !old.loUnb && (iv.loUnb || iv.lo < old.lo) {
		out.lo, out.loUnb = 0, true
	}
	if !old.hiUnb && (iv.hiUnb || iv.hi > old.hi) {
		out.hi, out.hiUnb = 0, true
	}
	out.isTop = out.loUnb && out.hiUnb
	return out
}

// ---- arithmetic (all saturating: overflow makes the bound unbounded) ----

func addSat(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subSat(a, b int64) (int64, bool) {
	if b == math.MinInt64 {
		return 0, false
	}
	return addSat(a, -b)
}

func mulSat(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// Add returns the interval of x+y for x in iv, y in o.
func (iv Interval) Add(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	out := Interval{}
	if iv.loUnb || o.loUnb {
		out.loUnb = true
	} else if lo, ok := addSat(iv.lo, o.lo); ok {
		out.lo = lo
	} else {
		out.loUnb = true
	}
	if iv.hiUnb || o.hiUnb {
		out.hiUnb = true
	} else if hi, ok := addSat(iv.hi, o.hi); ok {
		out.hi = hi
	} else {
		out.hiUnb = true
	}
	out.isTop = out.loUnb && out.hiUnb
	return out
}

// Sub returns the interval of x-y.
func (iv Interval) Sub(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	out := Interval{}
	if iv.loUnb || o.hiUnb {
		out.loUnb = true
	} else if lo, ok := subSat(iv.lo, o.hi); ok {
		out.lo = lo
	} else {
		out.loUnb = true
	}
	if iv.hiUnb || o.loUnb {
		out.hiUnb = true
	} else if hi, ok := subSat(iv.hi, o.lo); ok {
		out.hi = hi
	} else {
		out.hiUnb = true
	}
	out.isTop = out.loUnb && out.hiUnb
	return out
}

// Mul returns the interval of x*y. Any unbounded operand makes the result
// unbounded (sign reasoning is not worth the risk here).
func (iv Interval) Mul(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	if iv.loUnb || iv.hiUnb || o.loUnb || o.hiUnb {
		return FullInterval()
	}
	candidates := [4][2]int64{{iv.lo, o.lo}, {iv.lo, o.hi}, {iv.hi, o.lo}, {iv.hi, o.hi}}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, c := range candidates {
		p, ok := mulSat(c[0], c[1])
		if !ok {
			return FullInterval()
		}
		lo, hi = min64(lo, p), max64(hi, p)
	}
	return RangeInterval(lo, hi)
}

// And returns the interval of x&y. When either operand is known to lie in
// [0, m], the result lies in [0, m] — the usual mask argument.
func (iv Interval) And(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	out := FullInterval()
	if !iv.hiUnb && !iv.loUnb && iv.lo >= 0 {
		out = out.Meet(RangeInterval(0, iv.hi))
	}
	if !o.hiUnb && !o.loUnb && o.lo >= 0 {
		out = out.Meet(RangeInterval(0, o.hi))
	}
	// A non-negative operand forces a non-negative result.
	if (!iv.loUnb && iv.lo >= 0) || (!o.loUnb && o.lo >= 0) {
		out = out.Meet(AtLeast(0))
	}
	return out
}

// Or returns the interval of x|y: within [0, 2^k-1] when both operands
// are, for the smallest covering power of two.
func (iv Interval) Or(o Interval) Interval {
	return iv.bitUnionBound(o)
}

// Xor returns the interval of x^y, same bound as Or.
func (iv Interval) Xor(o Interval) Interval {
	return iv.bitUnionBound(o)
}

func (iv Interval) bitUnionBound(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	if iv.loUnb || iv.hiUnb || o.loUnb || o.hiUnb || iv.lo < 0 || o.lo < 0 {
		return FullInterval()
	}
	n := bits.Len64(uint64(iv.hi) | uint64(o.hi))
	if n >= 63 {
		return AtLeast(0)
	}
	return RangeInterval(0, (1<<uint(n))-1)
}

// AndNot returns the interval of x&^y: a sub-mask of x when x >= 0.
func (iv Interval) AndNot(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	if !iv.loUnb && iv.lo >= 0 {
		if !iv.hiUnb {
			return RangeInterval(0, iv.hi)
		}
		return AtLeast(0)
	}
	return FullInterval()
}

// Shl returns the interval of x<<y. Overflow of the upper bound makes the
// whole result unbounded in both directions: a left shift wraps through
// the sign bit, so a saturated upper bound alone would be unsound.
func (iv Interval) Shl(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	if iv.loUnb || iv.hiUnb || o.loUnb || o.hiUnb || o.lo < 0 || iv.lo < 0 {
		return FullInterval()
	}
	if o.hi > 62 {
		return FullInterval()
	}
	hi, ok := mulSat(iv.hi, 1<<uint(o.hi))
	if !ok {
		return FullInterval()
	}
	lo, ok := mulSat(iv.lo, 1<<uint(o.lo))
	if !ok {
		return FullInterval()
	}
	return RangeInterval(lo, hi)
}

// Shr returns the interval of x>>y for non-negative x.
func (iv Interval) Shr(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	if iv.loUnb || o.loUnb || o.lo < 0 || (!iv.loUnb && iv.lo < 0) {
		return FullInterval()
	}
	// x >= 0: result in [x.lo >> y.hi, x.hi >> y.lo]; with y unbounded
	// above the low end is 0.
	out := Interval{}
	if o.hiUnb || o.hi > 63 {
		out.lo = 0
	} else {
		out.lo = iv.lo >> uint(o.hi)
	}
	if iv.hiUnb {
		out.hiUnb = true
	} else if o.lo > 63 {
		out.hi = 0
	} else {
		out.hi = iv.hi >> uint(o.lo)
	}
	return out
}

// Quo returns the interval of x/y for strictly positive y.
func (iv Interval) Quo(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	if o.loUnb || o.lo < 1 {
		return FullInterval()
	}
	out := Interval{}
	if iv.loUnb {
		out.loUnb = true
	} else if iv.lo >= 0 {
		if o.hiUnb {
			out.lo = 0
		} else {
			out.lo = iv.lo / o.hi
		}
	} else {
		out.lo = iv.lo / o.lo // most negative at smallest divisor
	}
	if iv.hiUnb {
		out.hiUnb = true
	} else if iv.hi >= 0 {
		out.hi = iv.hi / o.lo
	} else if o.hiUnb {
		out.hi = 0
	} else {
		out.hi = iv.hi / o.hi
	}
	out.isTop = out.loUnb && out.hiUnb
	return out
}

// Rem returns the interval of x%y for y with a known magnitude bound.
// Go's % takes the dividend's sign, so for x >= 0 the result is
// [0, |y|max-1].
func (iv Interval) Rem(o Interval) Interval {
	if iv.isEmpty || o.isEmpty {
		return EmptyInterval()
	}
	var mag int64
	switch {
	case !o.hiUnb && !o.loUnb:
		mag = max64(abs64(o.lo), abs64(o.hi))
	default:
		mag = 0
	}
	if mag == 0 {
		// Unknown divisor magnitude: only the sign survives.
		if !iv.loUnb && iv.lo >= 0 {
			return AtLeast(0)
		}
		return FullInterval()
	}
	if !iv.loUnb && iv.lo >= 0 {
		hi := mag - 1
		if !iv.hiUnb && iv.hi < hi {
			hi = iv.hi
		}
		return RangeInterval(0, hi)
	}
	return RangeInterval(-(mag - 1), mag-1)
}

// Neg returns the interval of -x.
func (iv Interval) Neg() Interval {
	if iv.isEmpty {
		return EmptyInterval()
	}
	out := Interval{}
	if iv.hiUnb {
		out.loUnb = true
	} else if lo, ok := subSat(0, iv.hi); ok {
		out.lo = lo
	} else {
		out.loUnb = true
	}
	if iv.loUnb {
		out.hiUnb = true
	} else if hi, ok := subSat(0, iv.lo); ok {
		out.hi = hi
	} else {
		out.hiUnb = true
	}
	out.isTop = out.loUnb && out.hiUnb
	return out
}

// TypeInterval is the representable range of an integer type (64-bit
// target assumption for int/uint/uintptr). Non-integer types get the
// full interval.
func TypeInterval(t types.Type) Interval {
	if t == nil {
		return FullInterval()
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return FullInterval()
	}
	switch b.Kind() {
	case types.Int8:
		return RangeInterval(math.MinInt8, math.MaxInt8)
	case types.Int16:
		return RangeInterval(math.MinInt16, math.MaxInt16)
	case types.Int32:
		return RangeInterval(math.MinInt32, math.MaxInt32)
	case types.Uint8:
		return RangeInterval(0, math.MaxUint8)
	case types.Uint16:
		return RangeInterval(0, math.MaxUint16)
	case types.Uint32:
		return RangeInterval(0, math.MaxUint32)
	case types.Uint, types.Uint64, types.Uintptr:
		// Values above MaxInt64 are not representable in the int64
		// bounds; [0, +inf) is the sound projection.
		return AtLeast(0)
	default:
		return FullInterval()
	}
}

// refineByOp narrows the interval of the variable side of `x REL y`
// given y's interval and whether the comparison held.
func refineByOp(op token.Token, truth bool, rhs Interval) Interval {
	if !truth {
		op = negateRel(op)
	}
	switch op {
	case token.LSS: // x < rhs  =>  x <= rhs.hi - 1
		if hi, ok := rhs.Hi(); ok {
			if v, okk := subSat(hi, 1); okk {
				return AtMost(v)
			}
		}
	case token.LEQ:
		if hi, ok := rhs.Hi(); ok {
			return AtMost(hi)
		}
	case token.GTR:
		if lo, ok := rhs.Lo(); ok {
			if v, okk := addSat(lo, 1); okk {
				return AtLeast(v)
			}
		}
	case token.GEQ:
		if lo, ok := rhs.Lo(); ok {
			return AtLeast(lo)
		}
	case token.EQL:
		return rhs
	case token.NEQ:
		// Only useful against a point at an end; skip.
	}
	return FullInterval()
}

func negateRel(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return token.ILLEGAL
}

// flipRel mirrors a relation across its operands: x < y  <=>  y > x.
func flipRel(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL, NEQ are symmetric
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs64(a int64) int64 {
	if a == math.MinInt64 {
		return math.MaxInt64
	}
	if a < 0 {
		return -a
	}
	return a
}
