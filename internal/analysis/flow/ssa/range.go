package ssa

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"logicregression/internal/analysis/flow"
)

// Ranges is the result of the interval analysis over one Func: a global
// (flow-insensitive over SSA values, which is flow-sensitivity enough
// once variables are in SSA form) interval per value, refined at query
// time by the dominating branch facts of the query block.
type Ranges struct {
	f     *Func
	cells map[*Value]Interval
	sccp  *SCCP
}

const (
	widenAfter   = 8
	maxEvalDepth = 6
)

// InferRanges runs the interval fixpoint over f's value graph. Widening
// (after widenAfter updates per cell) guarantees termination; the result
// is a sound over-approximation of every value the variable can hold at
// its definition.
func InferRanges(f *Func) *Ranges {
	r := &Ranges{
		f:     f,
		cells: make(map[*Value]Interval),
		sccp:  RunSCCP(f),
	}
	// Seed every value from its kind and type.
	for _, v := range f.Values {
		r.cells[v] = r.initial(v)
	}
	// Chaotic iteration over the def-use graph.
	usedBy := make(map[*Value][]*Value)
	record := func(target *Value, e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if src := f.UseVal[id]; src != nil {
					usedBy[src] = append(usedBy[src], target)
				}
			}
			return true
		})
	}
	for _, v := range f.Values {
		switch v.Kind {
		case KindExpr, KindCompound:
			record(v, v.Rhs)
			if v.Prev != nil {
				usedBy[v.Prev] = append(usedBy[v.Prev], v)
			}
		case KindPhi:
			for _, e := range v.Phi.Edges {
				if e.Val != nil {
					usedBy[e.Val] = append(usedBy[e.Val], v)
				}
			}
		}
	}
	work := make([]*Value, len(f.Values))
	copy(work, f.Values)
	updates := make(map[*Value]int)
	steps := 0
	maxSteps := (len(f.Values) + 1) * 64
	for len(work) > 0 {
		steps++
		if steps > maxSteps {
			// Safety valve: give up on precision, stay sound.
			for _, v := range f.Values {
				r.cells[v] = r.initial(v).Join(TypeInterval(v.Var.Type()))
			}
			break
		}
		v := work[len(work)-1]
		work = work[:len(work)-1]
		next := r.transfer(v)
		old := r.cells[v]
		// Only ever grow (join) — the fixpoint is ascending.
		next = next.Join(old)
		if next.eqIv(old) {
			continue
		}
		updates[v]++
		if updates[v] > widenAfter {
			next = next.WidenAgainst(old)
		}
		// Clamp to the variable's representable range: sound because the
		// runtime value always is.
		next = next.Meet(TypeInterval(v.Var.Type()))
		if next.eqIv(old) {
			continue
		}
		r.cells[v] = next
		work = append(work, usedBy[v]...)
	}
	return r
}

// SCCP exposes the constant-propagation result computed alongside.
func (r *Ranges) SCCP() *SCCP { return r.sccp }

// initial is the starting interval of a value before any propagation.
func (r *Ranges) initial(v *Value) Interval {
	switch v.Kind {
	case KindZero:
		if isIntType(v.Var.Type()) {
			return PointInterval(0)
		}
		return FullInterval()
	case KindRangeIndex:
		// While the body runs the key is in [0, len); at the loop's done
		// block it may still hold the pre-loop value, which the phi
		// machinery models separately. [0, +inf) is the sound global
		// cell; the < len(X) part is applied symbolically in
		// ProveInBounds for blocks dominated by the body.
		return AtLeast(0).Meet(TypeInterval(v.Var.Type()))
	case KindExpr, KindCompound, KindPhi:
		// Start at bottom so the fixpoint can find the least solution.
		return EmptyInterval()
	default:
		return TypeInterval(v.Var.Type())
	}
}

// transfer evaluates a value's defining expression over current cells.
func (r *Ranges) transfer(v *Value) Interval {
	switch v.Kind {
	case KindExpr:
		return r.evalRaw(v.Rhs, 0)
	case KindCompound:
		prev := FullInterval()
		if v.Prev != nil {
			prev = r.cells[v.Prev]
		}
		rhs := PointInterval(1)
		if v.Rhs != nil {
			rhs = r.evalRaw(v.Rhs, 0)
		}
		return r.applyOp(v.Op, prev, rhs, v.Var.Type())
	case KindPhi:
		out := EmptyInterval()
		for _, e := range v.Phi.Edges {
			if e.Val == nil {
				continue
			}
			if si := succPos(e.Pred, v.Block); si >= 0 {
				if !r.sccp.edgeExec[[2]int{e.Pred.Index, si}] {
					continue // pruned by SCCP: the edge cannot execute
				}
			}
			out = out.Join(r.cells[e.Val])
		}
		return out
	default:
		return r.initial(v)
	}
}

func (r *Ranges) applyOp(op token.Token, x, y Interval, t types.Type) Interval {
	var out Interval
	switch op {
	case token.ADD:
		out = x.Add(y)
	case token.SUB:
		out = x.Sub(y)
	case token.MUL:
		out = x.Mul(y)
	case token.QUO:
		out = x.Quo(y)
	case token.REM:
		out = x.Rem(y)
	case token.AND:
		out = x.And(y)
	case token.OR:
		out = x.Or(y)
	case token.XOR:
		out = x.Xor(y)
	case token.AND_NOT:
		out = x.AndNot(y)
	case token.SHL:
		out = x.Shl(y)
	case token.SHR:
		out = x.Shr(y)
	default:
		out = FullInterval()
	}
	return out.Meet(TypeInterval(t))
}

// evalRaw evaluates an expression over the global cells, with no branch
// refinement (used inside the fixpoint).
func (r *Ranges) evalRaw(e ast.Expr, depth int) Interval {
	return r.eval(e, nil, depth)
}

// EvalAt evaluates an expression at a specific block, intersecting each
// identifier's global interval with the dominating branch facts of that
// block, and re-deriving non-leaf definitions under those facts (sound:
// SSA values are immutable, so a definition's RHS denotes the same value
// wherever it is re-evaluated).
func (r *Ranges) EvalAt(e ast.Expr, b *flow.Block) Interval {
	return r.eval(e, b, 0)
}

func (r *Ranges) eval(e ast.Expr, at *flow.Block, depth int) Interval {
	if e == nil || depth > maxEvalDepth {
		return FullInterval()
	}
	if tv, ok := r.f.Info.Types[e]; ok && tv.Value != nil {
		if i, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return PointInterval(i)
		}
		return TypeInterval(tv.Type)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return r.eval(e.X, at, depth)
	case *ast.Ident:
		v := r.f.UseVal[e]
		if v == nil {
			// Untracked: only its type bounds it.
			return TypeInterval(r.f.Info.TypeOf(e))
		}
		return r.valueAt(v, e, at, depth)
	case *ast.SelectorExpr:
		iv := TypeInterval(r.f.Info.TypeOf(e))
		if at != nil {
			iv = iv.Meet(r.factBound(e, at, depth))
		}
		return iv
	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB:
			return r.eval(e.X, at, depth).Neg().Meet(TypeInterval(r.f.Info.TypeOf(e)))
		case token.ADD:
			return r.eval(e.X, at, depth)
		}
		return TypeInterval(r.f.Info.TypeOf(e))
	case *ast.BinaryExpr:
		x := r.eval(e.X, at, depth+1)
		y := r.eval(e.Y, at, depth+1)
		return r.applyOp(e.Op, x, y, r.f.Info.TypeOf(e))
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) == 1 {
			if _, isB := r.f.Info.Uses[id].(*types.Builtin); isB && (id.Name == "len" || id.Name == "cap") {
				if n, ok := arrayLen(r.f.Info.TypeOf(e.Args[0])); ok {
					return PointInterval(n)
				}
				iv := AtLeast(0)
				if at != nil {
					iv = iv.Meet(r.factBound(e, at, depth))
				}
				return iv
			}
		}
		// Conversion T(x): the interval carries over only when it fits
		// the target type; in particular int->uint of a possibly
		// negative value must NOT keep a small-looking range.
		if tv, ok := r.f.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			target := r.f.Info.TypeOf(e)
			if !isIntType(target) {
				return FullInterval()
			}
			src := r.eval(e.Args[0], at, depth)
			tgt := TypeInterval(target)
			srcLo, loOK := src.Lo()
			srcHi, hiOK := src.Hi()
			tgtLo, _ := tgt.Lo()
			fitsLo := loOK && (srcLo >= tgtLo)
			fitsHi := true
			if tgtHi, ok := tgt.Hi(); ok {
				fitsHi = hiOK && srcHi <= tgtHi
			}
			if fitsLo && fitsHi {
				return src
			}
			return tgt
		}
		return TypeInterval(r.f.Info.TypeOf(e))
	case *ast.IndexExpr:
		return TypeInterval(r.f.Info.TypeOf(e))
	}
	return TypeInterval(r.f.Info.TypeOf(e))
}

// valueAt refines a value's global cell at a block: constant from SCCP,
// branch facts mentioning the value, and a depth-limited re-derivation
// of its definition under those facts.
func (r *Ranges) valueAt(v *Value, use *ast.Ident, at *flow.Block, depth int) Interval {
	out, ok := r.cells[v]
	if !ok {
		out = TypeInterval(v.Var.Type())
	}
	if c, isC := r.sccp.ConstOf(v); isC {
		if i, exact := constant.Int64Val(constant.ToInt(c)); exact {
			out = out.Meet(PointInterval(i))
		}
	}
	if at == nil || depth > maxEvalDepth {
		return out
	}
	out = out.Meet(r.factBound(use, at, depth))
	// Re-derive the definition at the query block: x := i >> 6 benefits
	// from facts about i that hold here.
	switch v.Kind {
	case KindExpr:
		out = out.Meet(r.eval(v.Rhs, at, depth+1))
	case KindCompound:
		if v.Prev != nil && v.Rhs != nil {
			// Careful: facts at the use block constrain the *new* value,
			// not Prev; re-deriving through Prev under `at` facts would
			// be wrong when the fact mentions the variable itself. Use
			// raw cells for Prev.
			prev := r.cells[v.Prev]
			rhs := r.evalRaw(v.Rhs, depth+1)
			out = out.Meet(r.applyOp(v.Op, prev, rhs, v.Var.Type()))
		}
	}
	return out
}

// factBound intersects every dominating branch fact that constrains the
// given term (an identifier use, a selector chain, or a len(chain) call)
// at block `at`.
func (r *Ranges) factBound(term ast.Expr, at *flow.Block, depth int) Interval {
	out := FullInterval()
	if depth > maxEvalDepth {
		return out
	}
	for _, fact := range r.f.FactsAt(at) {
		be, ok := ast.Unparen(fact.Cond).(*ast.BinaryExpr)
		if !ok {
			continue
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			continue
		}
		if r.termMatches(term, be.X) {
			rhs := r.eval(be.Y, at, depth+1)
			out = out.Meet(refineByOp(be.Op, fact.Truth, rhs))
		} else if r.termMatches(term, be.Y) {
			lhs := r.eval(be.X, at, depth+1)
			out = out.Meet(refineByOp(flipRel(be.Op), fact.Truth, lhs))
		}
	}
	return out
}

// termMatches decides whether a branch-condition operand denotes the
// same runtime value as the queried term:
//   - tracked identifiers match by SSA value (reassignment-proof);
//   - selector chains match by rendering, provided the chain is stable
//     (no header can move) within the function;
//   - len(term)/cap(term) match recursively.
func (r *Ranges) termMatches(term, operand ast.Expr) bool {
	term, operand = ast.Unparen(term), ast.Unparen(operand)
	switch t := term.(type) {
	case *ast.Ident:
		o, ok := operand.(*ast.Ident)
		if !ok {
			return false
		}
		tv, ov := r.f.UseVal[t], r.f.UseVal[o]
		return tv != nil && ov != nil && r.f.Canonical(tv) == r.f.Canonical(ov)
	case *ast.SelectorExpr:
		o, ok := operand.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		troot, trender, tok := r.f.renderChain(t)
		oroot, orender, ook := r.f.renderChain(o)
		if !tok || !ook || trender != orender {
			return false
		}
		tv, ov := r.f.UseVal[troot], r.f.UseVal[oroot]
		if tv == nil || ov == nil || r.f.Canonical(tv) != r.f.Canonical(ov) {
			return false
		}
		return r.f.ChainStable(troot, trender)
	case *ast.CallExpr:
		o, ok := operand.(*ast.CallExpr)
		if !ok || len(t.Args) != 1 || len(o.Args) != 1 {
			return false
		}
		tn, tok := ast.Unparen(t.Fun).(*ast.Ident)
		on, ook := ast.Unparen(o.Fun).(*ast.Ident)
		if !tok || !ook || tn.Name != on.Name || (tn.Name != "len" && tn.Name != "cap") {
			return false
		}
		if _, isB := r.f.Info.Uses[tn].(*types.Builtin); !isB {
			return false
		}
		return r.termMatches(t.Args[0], o.Args[0])
	}
	return false
}

// ---- proofs ----

// ProveShift reports whether the shift amount is provably in [0, width)
// at the given block. width is the bit size of the shifted operand.
func (r *Ranges) ProveShift(amount ast.Expr, width int, b *flow.Block) bool {
	if b == nil {
		return false
	}
	iv := r.EvalAt(amount, b)
	lo, loOK := iv.Lo()
	hi, hiOK := iv.Hi()
	return loOK && hiOK && lo >= 0 && hi < int64(width)
}

// ProveInBounds reports whether an index expression is provably within
// the bounds of its base at the given block. Accepted proofs:
//
//  1. the base is an array (or pointer to array): the index interval
//     fits [0, len);
//  2. the index is the key of a range over the same base (matched by SSA
//     value or stable chain) and the block is dominated by the range
//     body — so an iteration is in flight and the key is < len;
//  3. a dominating branch fact bounds the index by len(base)+c, c <= 0
//     for `<` (c <= -1 for `<=`), with a non-negative lower bound;
//  4. the index has the literal form len(base)-c with constant c >= 1
//     and the interval machinery proves it non-negative (typically from
//     a `len(base) > 0` guard);
//  5. the index is the key of a range over a different container E, the
//     block is dominated by the range body, and a dominating fact proves
//     len(base) >= len(E) — the kernel-prologue guard idiom.
func (r *Ranges) ProveInBounds(x *ast.IndexExpr, b *flow.Block) bool {
	if b == nil {
		return false
	}
	baseT := r.f.Info.TypeOf(x.X)
	if baseT == nil {
		return false
	}
	under := baseT.Underlying()
	if p, ok := under.(*types.Pointer); ok {
		under = p.Elem().Underlying()
	}
	switch under.(type) {
	case *types.Map:
		return true // map indexing has no bounds
	case *types.Array, *types.Slice:
	case *types.Basic:
		if under.(*types.Basic).Info()&types.IsString == 0 {
			return false
		}
	default:
		return false
	}

	iv := r.EvalAt(x.Index, b)
	lo, loOK := iv.Lo()
	if !loOK || lo < 0 {
		// One more chance: a range-body index is non-negative even when
		// the global cell was polluted by a join.
		return r.rangeIndexProof(x, b) || r.rangeLenFactProof(x, b)
	}

	// 1. Arrays: compare against the constant length.
	if n, ok := arrayLen(baseT); ok {
		hi, hiOK := iv.Hi()
		return hiOK && hi < n
	}

	// 2. Range-over-base proof.
	if r.rangeIndexProof(x, b) {
		return true
	}

	// 5. Range key over another container, bounded by a len fact.
	if r.rangeLenFactProof(x, b) {
		return true
	}

	// 3. Dominating fact idx REL len(base)+c.
	if r.factUpperBoundProof(x.Index, x.X, b) {
		return true
	}

	// 4. idx ≡ len(base) - c.
	if r.lenMinusConstProof(x.Index, x.X, b) {
		return true
	}
	return false
}

// rangeIndexProof: the index is a range key over the same base, queried
// from a block the range body dominates.
func (r *Ranges) rangeIndexProof(x *ast.IndexExpr, b *flow.Block) bool {
	id, ok := ast.Unparen(x.Index).(*ast.Ident)
	if !ok {
		return false
	}
	v := r.f.UseVal[id]
	if v == nil {
		return false
	}
	v = r.f.Canonical(v)
	if v.Kind != KindRangeIndex || v.Range == nil {
		return false
	}
	// The range must iterate the same container.
	if !r.termMatches(x.X, v.Range.X) {
		return false
	}
	// The body block: the range head's first successor.
	head := v.Block
	if head == nil || len(head.Succs) == 0 {
		return false
	}
	body := head.Succs[0]
	return r.f.Dom.Dominates(body, b)
}

// rangeLenFactProof: the index is the key of a range over a different
// container E, an iteration is in flight (the range body dominates the
// block), and a dominating fact proves len(base) >= len(E) — so
// key < len(E) <= len(base). Matching the fact's operands against the
// queried base and the range operand by SSA value (or stable chain) pins
// both lengths: slice values are immutable, so a matched length cannot
// have changed between the guard and the use.
func (r *Ranges) rangeLenFactProof(x *ast.IndexExpr, b *flow.Block) bool {
	id, ok := ast.Unparen(x.Index).(*ast.Ident)
	if !ok {
		return false
	}
	v := r.f.UseVal[id]
	if v == nil {
		return false
	}
	v = r.f.Canonical(v)
	if v.Kind != KindRangeIndex || v.Range == nil {
		return false
	}
	head := v.Block
	if head == nil || len(head.Succs) == 0 || !r.f.Dom.Dominates(head.Succs[0], b) {
		return false
	}
	over := v.Range.X
	for _, fact := range r.f.FactsAt(b) {
		be, ok := ast.Unparen(fact.Cond).(*ast.BinaryExpr)
		if !ok {
			continue
		}
		op := be.Op
		var rhs ast.Expr
		switch {
		case r.isLenOf(be.X, x.X):
			rhs = be.Y
		case r.isLenOf(be.Y, x.X):
			op = flipRel(op)
			rhs = be.X
		default:
			continue
		}
		if !fact.Truth {
			op = negateRel(op)
		}
		off, split := r.splitLenOffset(rhs, over)
		if !split {
			continue
		}
		// len(base) OP len(over)+off must imply len(base) >= len(over).
		switch op {
		case token.GEQ, token.EQL:
			if off >= 0 {
				return true
			}
		case token.GTR:
			if off >= -1 {
				return true
			}
		}
	}
	return false
}

// factUpperBoundProof: some dominating fact pins idx < len(base)+c with
// c <= 0 (or <=, c <= -1; or == len(base)+c, c <= -1; reversed forms
// normalized via flipRel).
func (r *Ranges) factUpperBoundProof(idx, base ast.Expr, b *flow.Block) bool {
	for _, fact := range r.f.FactsAt(b) {
		be, ok := ast.Unparen(fact.Cond).(*ast.BinaryExpr)
		if !ok {
			continue
		}
		op := be.Op
		var rhs ast.Expr
		switch {
		case r.termMatches(idx, be.X):
			rhs = be.Y
		case r.termMatches(idx, be.Y):
			op = flipRel(op)
			rhs = be.X
		default:
			continue
		}
		if !fact.Truth {
			op = negateRel(op)
		}
		var need int64 // max allowed offset for idx OP len(base)+off
		switch op {
		case token.LSS:
			need = 0
		case token.LEQ, token.EQL:
			need = -1
		default:
			continue
		}
		off, lenOK := r.splitLenOffset(rhs, base)
		if lenOK && off <= need {
			return true
		}
	}
	return false
}

// splitLenOffset decomposes e as len(base)+off (or len(base)-off), with
// off constant, and base matching the queried container. A bare tracked
// identifier whose definition is `n := len(base)` also matches, one copy
// deep.
func (r *Ranges) splitLenOffset(e ast.Expr, base ast.Expr) (off int64, ok bool) {
	e = ast.Unparen(e)
	if be, isBin := e.(*ast.BinaryExpr); isBin && (be.Op == token.ADD || be.Op == token.SUB) {
		if c, isC := r.constOf(be.Y); isC {
			inner, innerOK := r.splitLenOffset(be.X, base)
			if innerOK {
				if be.Op == token.SUB {
					c = -c
				}
				return inner + c, true
			}
		}
		if be.Op == token.ADD {
			if c, isC := r.constOf(be.X); isC {
				inner, innerOK := r.splitLenOffset(be.Y, base)
				if innerOK {
					return inner + c, true
				}
			}
		}
		return 0, false
	}
	if r.isLenOf(e, base) {
		return 0, true
	}
	// One copy deep: n := len(base).
	if id, isID := e.(*ast.Ident); isID {
		if v := r.f.UseVal[id]; v != nil {
			v = r.f.Canonical(v)
			if v.Kind == KindExpr && v.Rhs != nil && r.isLenOf(ast.Unparen(v.Rhs), base) {
				return 0, true
			}
		}
	}
	return 0, false
}

func (r *Ranges) isLenOf(e ast.Expr, base ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return false
	}
	if _, isB := r.f.Info.Uses[id].(*types.Builtin); !isB {
		return false
	}
	return r.termMatches(call.Args[0], base) || r.termMatches(base, call.Args[0])
}

func (r *Ranges) constOf(e ast.Expr) (int64, bool) {
	if tv, ok := r.f.Info.Types[e]; ok && tv.Value != nil {
		if i, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return i, true
		}
	}
	return 0, false
}

// lenMinusConstProof: the index IS len(base)-c (c >= 1 constant), so the
// upper bound holds definitionally; the caller checked lo >= 0 already
// (from e.g. a len(base) > 0 guard), or we recheck here.
func (r *Ranges) lenMinusConstProof(idx, base ast.Expr, b *flow.Block) bool {
	resolved := ast.Unparen(idx)
	// Look through one definition: i := len(s)-1.
	if id, isID := resolved.(*ast.Ident); isID {
		if v := r.f.UseVal[id]; v != nil {
			v = r.f.Canonical(v)
			if v.Kind == KindExpr && v.Rhs != nil {
				resolved = ast.Unparen(v.Rhs)
			}
		}
	}
	off, ok := r.splitLenOffset(resolved, base)
	if !ok || off > -1 {
		return false
	}
	lo, loOK := r.EvalAt(idx, b).Lo()
	return loOK && lo >= 0
}
