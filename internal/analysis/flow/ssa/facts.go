package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"logicregression/internal/analysis/flow"
)

// A Fact is an atomic branch condition known to hold on entry to some
// block: the condition expression Cond evaluated to Truth on the edge
// that the block's dominator chain passed through.
//
// Soundness: facts are collected only from dominator-chain ancestors S
// that are the *single* successor-side target of a conditional edge, so
// every path to the queried block re-traverses that edge after the
// condition's operands were last computed. Because any SSA operand of the
// condition is defined at or above the branch (its definition dominates
// the branch block, hence is not dominated by S), the operand cannot be
// redefined between the edge and the queried block — so the fact still
// talks about the same SSA values there. Non-SSA operands (fields,
// globals, len(chain)) need the additional chain-stability check in
// ChainStable, which callers of FactsAt must apply.
type Fact struct {
	Cond   ast.Expr
	Truth  bool
	Origin *flow.Block // the branch (condition) block
}

// FactsAt returns the branch facts valid on entry to b, outermost first.
// Conditions are decomposed: `a && b` on the true edge yields two facts,
// `a || b` on the false edge likewise, and `!x` flips the truth.
func (f *Func) FactsAt(b *flow.Block) []Fact {
	if facts, ok := f.facts[b]; ok {
		return facts
	}
	var facts []Fact
	preds := f.predIndex()
	for cur := b.Index; cur >= 0; cur = f.Dom.Idom[cur] {
		blk := f.CFG.Blocks[cur]
		ps := preds[cur]
		if len(ps) != 1 {
			continue
		}
		p := f.CFG.Blocks[ps[0]]
		if p.Cond == nil || len(p.Succs) != 2 {
			continue
		}
		var truth bool
		switch {
		case p.Succs[0] == blk && p.Succs[1] == blk:
			continue // degenerate both-edges case
		case p.Succs[0] == blk:
			truth = true
		case p.Succs[1] == blk:
			truth = false
		default:
			continue
		}
		decomposeCond(p.Cond, truth, p, &facts)
	}
	// Reverse so outermost (closest to entry) facts come first.
	for i, j := 0, len(facts)-1; i < j; i, j = i+1, j-1 {
		facts[i], facts[j] = facts[j], facts[i]
	}
	f.facts[b] = facts
	return facts
}

func decomposeCond(cond ast.Expr, truth bool, origin *flow.Block, out *[]Fact) {
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			decomposeCond(e.X, !truth, origin, out)
			return
		}
	case *ast.BinaryExpr:
		if e.Op == token.LAND && truth {
			decomposeCond(e.X, true, origin, out)
			decomposeCond(e.Y, true, origin, out)
			return
		}
		if e.Op == token.LOR && !truth {
			decomposeCond(e.X, false, origin, out)
			decomposeCond(e.Y, false, origin, out)
			return
		}
	}
	*out = append(*out, Fact{Cond: cond, Truth: truth, Origin: origin})
}

func (f *Func) predIndex() [][]int {
	preds := make([][]int, len(f.CFG.Blocks))
	for _, b := range f.CFG.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b.Index)
		}
	}
	return preds
}

// ContradictoryFacts reports whether blocks a and b are guarded by the
// same condition with opposite truth — e.g. one is inside `if cond {}`
// and the other inside `if !cond {}` — so no single activation of the
// function can execute both (provided the condition's operands are
// computed once, which the loop check enforces: every tracked operand's
// definition must sit outside any CFG cycle).
func (f *Func) ContradictoryFacts(a, b *flow.Block) bool {
	if a == nil || b == nil {
		return false
	}
	cycles := f.cycleBlocks()
	fa, fb := f.FactsAt(a), f.FactsAt(b)
	for _, x := range fa {
		if !f.condOperandsLoopFree(x.Cond, cycles) {
			continue
		}
		for _, y := range fb {
			if x.Truth != y.Truth && f.SameValueExpr(x.Cond, y.Cond) && f.allOperandsTracked(x.Cond) {
				return true
			}
		}
	}
	return false
}

// allOperandsTracked requires every identifier in cond to resolve to a
// tracked SSA value or a constant/universe name — selector chains and
// globals can mutate between the two guarded regions, so they do not
// support a contradiction argument.
func (f *Func) allOperandsTracked(cond ast.Expr) bool {
	ok := true
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr, *ast.CallExpr, *ast.IndexExpr, *ast.StarExpr, *ast.FuncLit:
			ok = false
			return false
		case *ast.Ident:
			if f.UseVal[n] != nil {
				return true
			}
			switch f.Info.Uses[n].(type) {
			case *types.Const, *types.Nil:
				return true
			}
			if n.Name == "true" || n.Name == "false" {
				return true
			}
			ok = false
			return false
		}
		return true
	})
	return ok
}

// condOperandsLoopFree checks that no tracked operand of cond is defined
// inside a CFG cycle (so the condition has one value per activation).
func (f *Func) condOperandsLoopFree(cond ast.Expr, cycles map[int]bool) bool {
	ok := true
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok2 := n.(*ast.Ident); ok2 {
			if v := f.UseVal[id]; v != nil && v.Block != nil && cycles[v.Block.Index] {
				ok = false
			}
		}
		return true
	})
	return ok
}

func (f *Func) cycleBlocks() map[int]bool {
	// A block is in a cycle iff it can reach itself. Quadratic in blocks,
	// fine at function scale; memoized per Func via facts cache keying.
	if f.chainCache == nil {
		f.chainCache = make(map[string]bool)
	}
	cycles := make(map[int]bool)
	n := len(f.CFG.Blocks)
	for i := 0; i < n; i++ {
		seen := make([]bool, n)
		stack := []int{i}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range f.CFG.Blocks[cur].Succs {
				if s.Index == i {
					cycles[i] = true
					stack = nil
					break
				}
				if !seen[s.Index] {
					seen[s.Index] = true
					stack = append(stack, s.Index)
				}
			}
		}
	}
	return cycles
}

// ---- selector-chain stability ----

// renderChain renders an ident or ident.field.field... chain rooted at a
// tracked variable: "v.words". Returns the root's use identifier and the
// rendered string, or ok=false for anything else (index steps, calls,
// untracked roots).
func (f *Func) renderChain(e ast.Expr) (root *ast.Ident, render string, ok bool) {
	var parts []string
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			parts = append(parts, x.Name)
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return x, strings.Join(parts, "."), true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		default:
			return nil, "", false
		}
	}
}

// ChainStable reports whether the rendered selector chain (rooted at a
// tracked variable) cannot have its slice/map/pointer headers redirected
// anywhere in this function: no assignment to a chain prefix, no address
// taken of one, and every call that can reach the root is HeaderSafe.
// Element writes (chain[i] = x) are fine — they never move a header.
//
// This is function-level, not path-sensitive: one offending statement
// anywhere invalidates the chain everywhere. Conservative but cheap.
func (f *Func) ChainStable(root *ast.Ident, render string) bool {
	rv := f.UseVal[root]
	if rv == nil {
		return false
	}
	rootVar := rv.Var
	if f.chainCache == nil {
		f.chainCache = make(map[string]bool)
	}
	key := render
	if got, ok := f.chainCache[key]; ok {
		return got
	}
	stable := true
	prefixOf := func(e ast.Expr) (string, bool) {
		r, s, ok := f.renderChain(e)
		if !ok {
			return "", false
		}
		if v := f.useOrDefVar(r); v != rootVar {
			return "", false
		}
		return s, true
	}
	// A write to "v" or "v.words" invalidates "v.words.x" etc.; a write
	// to an unrelated field does not.
	invalidates := func(s string) bool {
		return s == render || strings.HasPrefix(render, s+".") || strings.HasPrefix(s, render+".")
	}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if !stable {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				lhs = ast.Unparen(lhs)
				if _, isIdx := lhs.(*ast.IndexExpr); isIdx {
					continue // element write
				}
				if _, isStar := lhs.(*ast.StarExpr); isStar {
					stable = false // write through an arbitrary pointer
					return false
				}
				if id, isID := lhs.(*ast.Ident); isID && f.Info.Defs[id] != nil {
					// A := declaration is the variable's single binding:
					// scoping puts every use after it, and fact/use operands
					// are matched by SSA value, so a fact can never cross it.
					// (Reassignments resolve through Uses and still invalidate.)
					continue
				}
				if s, ok := prefixOf(lhs); ok && invalidates(s) {
					stable = false
					return false
				}
			}
		case *ast.IncDecStmt:
			if s, ok := prefixOf(n.X); ok && invalidates(s) {
				stable = false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if s, ok := prefixOf(n.X); ok && invalidates(s) {
					stable = false
				}
			}
		case *ast.CallExpr:
			if !f.callPreservesChain(n, rootVar) {
				stable = false
				return false
			}
		}
		return true
	})
	f.chainCache[key] = stable
	return stable
}

func (f *Func) useOrDefVar(id *ast.Ident) *types.Var {
	if v, ok := f.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := f.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// callPreservesChain decides whether one call can move headers reachable
// from root. A call is harmless when root does not appear among its
// receiver/arguments as a non-basic value, when the callee is a
// header-safe builtin (len/cap/copy/append/...), or when the callee is a
// same-package function whose HeaderSafe summary says it never moves a
// header of its parameters.
func (f *Func) callPreservesChain(call *ast.CallExpr, root *types.Var) bool {
	mentionsRoot := false
	checkArg := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				mentionsRoot = true // closure may capture and mutate
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if f.useOrDefVar(id) != root {
				return true
			}
			// A basic-typed rvalue (v.n as int) is a copy — harmless.
			// But here id IS the root; what's passed is some enclosing
			// expression. Walk up conservatively: if the identifier
			// itself has pointer-ish type, or it is the base of a
			// selector whose result is pointer-ish, flag it. Cheap
			// approximation: flag unless the *whole argument* has basic
			// type.
			t := f.Info.TypeOf(e)
			if t == nil {
				mentionsRoot = true
				return false
			}
			if _, isBasic := t.Underlying().(*types.Basic); !isBasic {
				mentionsRoot = true
			}
			return false
		})
	}
	// Receiver of a method expression-style call: part of Fun.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		checkArg(sel.X)
	}
	for _, a := range call.Args {
		checkArg(a)
	}
	if !mentionsRoot {
		return true
	}
	// Root escapes into the call: only a summarized-safe callee is OK.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := f.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "copy", "print", "println", "panic", "min", "max", "delete", "clear":
				// copy/clear/delete write elements, never headers.
				return true
			}
			return false
		}
		if fn, ok := f.Info.Uses[fun].(*types.Func); ok {
			return f.headerSafe[fn]
		}
	case *ast.SelectorExpr:
		if sel := f.Info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return f.headerSafe[fn]
			}
		}
		if fn, ok := f.Info.Uses[fun.Sel].(*types.Func); ok {
			return f.headerSafe[fn]
		}
	}
	return false
}

// HeaderSafeFuncs computes, bottom-up over the package call graph, which
// functions never redirect a slice/map/pointer header reachable from
// their parameters or receiver: no assignment to (or address-of) a
// selector/star chain rooted at a param, and every call that sees a param
// as a non-basic value is itself header-safe. Element writes via an index
// expression are allowed. Functions making indirect calls with escaping
// params, or passing params to imported functions, are unsafe.
//
// The summary is deliberately about *headers*, not values: an element
// store v.words[i] = x changes contents but no length or base pointer, so
// facts about len(v.words) survive it.
func HeaderSafeFuncs(graph *flow.CallGraph, info *types.Info) map[*types.Func]bool {
	safe := make(map[*types.Func]bool)
	if graph == nil {
		return safe
	}
	// Optimistically assume safe, then strike out offenders to a fixed
	// point (Fixpoint iterates bottom-up until summaries stabilize).
	for _, n := range graph.Nodes {
		if n.Decl != nil && n.Decl.Body != nil {
			safe[n.Fn] = true
		}
	}
	paramSet := func(decl *ast.FuncDecl) map[types.Object]bool {
		params := make(map[types.Object]bool)
		addList := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, fld := range fl.List {
				for _, name := range fld.Names {
					if obj := info.Defs[name]; obj != nil {
						params[obj] = true
					}
				}
			}
		}
		addList(decl.Recv)
		addList(decl.Type.Params)
		return params
	}
	rootsParam := func(e ast.Expr, params map[types.Object]bool) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && params[obj] {
					found = true
				}
			}
			return true
		})
		return found
	}
	graph.Fixpoint(func(n *flow.CallNode) bool {
		if !safe[n.Fn] {
			return false
		}
		if n.Decl == nil || n.Decl.Body == nil {
			return false
		}
		params := paramSet(n.Decl)
		ok := true
		ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
			if !ok {
				return false
			}
			switch m := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range m.Lhs {
					lhs = ast.Unparen(lhs)
					if _, isIdx := lhs.(*ast.IndexExpr); isIdx {
						continue
					}
					switch l := lhs.(type) {
					case *ast.Ident:
						// Plain local/param rebind: the caller's memory
						// is untouched (Go params are copies).
						continue
					case *ast.StarExpr:
						if rootsParam(l, params) {
							ok = false
						}
					case *ast.SelectorExpr:
						if rootsParam(l, params) {
							ok = false
						}
					default:
						if rootsParam(lhs, params) {
							ok = false
						}
					}
				}
			case *ast.UnaryExpr:
				if m.Op == token.AND && rootsParam(m.X, params) {
					ok = false
				}
			case *ast.CallExpr:
				escaping := false
				args := m.Args
				if sel, isSel := ast.Unparen(m.Fun).(*ast.SelectorExpr); isSel {
					args = append([]ast.Expr{sel.X}, args...)
				}
				for _, a := range args {
					if !rootsParam(a, params) {
						continue
					}
					t := info.TypeOf(a)
					if t == nil {
						escaping = true
						break
					}
					if _, isBasic := t.Underlying().(*types.Basic); !isBasic {
						escaping = true
						break
					}
				}
				if !escaping {
					return true
				}
				callee := calleeFunc(m, info)
				if callee == nil {
					if isHeaderSafeBuiltin(m, info) {
						return true
					}
					ok = false
					return true
				}
				if !safe[callee] {
					ok = false
				}
			case *ast.FuncLit:
				// A closure can capture and mutate params later.
				if closureWritesParams(m, params, info) {
					ok = false
				}
				return false
			}
			return true
		})
		if !ok && safe[n.Fn] {
			safe[n.Fn] = false
			return true // changed: re-sweep callers
		}
		return false
	})
	return safe
}

func calleeFunc(call *ast.CallExpr, info *types.Info) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func isHeaderSafeBuiltin(call *ast.CallExpr, info *types.Info) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok {
		return false
	}
	switch b.Name() {
	case "len", "cap", "copy", "print", "println", "panic", "min", "max", "delete", "clear", "append", "make", "new":
		// append's result is only dangerous if *assigned* to a chain,
		// which the assignment case already catches.
		return true
	}
	return false
}

func closureWritesParams(fl *ast.FuncLit, params map[types.Object]bool, info *types.Info) bool {
	writes := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ast.Inspect(lhs, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && params[obj] {
							writes = true
						}
					}
					return true
				})
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				ast.Inspect(n.X, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && params[obj] {
							writes = true
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			// Calls inside the closure with params: conservatively bad.
			for _, a := range n.Args {
				ast.Inspect(a, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && params[obj] {
							t := info.TypeOf(id)
							if t == nil {
								writes = true
							} else if _, basic := t.Underlying().(*types.Basic); !basic {
								writes = true
							}
						}
					}
					return true
				})
			}
		}
		return true
	})
	return writes
}
