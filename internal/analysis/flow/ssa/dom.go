package ssa

import (
	"fmt"
	"sort"
	"strings"

	"logicregression/internal/analysis/flow"
)

// A DomTree is the dominator tree of one CFG, with dominance frontiers.
// Block 0 (the entry) is the root. Blocks unreachable from the entry (the
// builder's post-return "unreachable" blocks, or an exit no path reaches)
// have no idom and dominate nothing.
type DomTree struct {
	g *flow.CFG
	// Idom holds the immediate dominator's block index, -1 for the entry
	// and for unreachable blocks.
	Idom []int
	// Children lists each block's dominator-tree children, sorted by index.
	Children [][]int
	// Frontier is the dominance frontier of each block, sorted by index.
	Frontier [][]int
	// Reachable reports which blocks the entry reaches.
	Reachable []bool

	// pre/post number the dominator-tree DFS, for O(1) Dominates queries.
	pre, post []int
}

// Dominators computes the dominator tree of g with the Cooper-Harvey-
// Kennedy iterative algorithm over a reverse postorder, then the dominance
// frontiers with Cytron's two-pointer walk. Both are O(edges) per iteration
// and converge in a handful of sweeps on reducible graphs, which is all the
// CFG builder emits.
func Dominators(g *flow.CFG) *DomTree {
	n := len(g.Blocks)
	d := &DomTree{
		g:         g,
		Idom:      make([]int, n),
		Children:  make([][]int, n),
		Frontier:  make([][]int, n),
		Reachable: make([]bool, n),
		pre:       make([]int, n),
		post:      make([]int, n),
	}
	for i := range d.Idom {
		d.Idom[i] = -1
	}
	if n == 0 {
		return d
	}

	// Postorder of the reachable subgraph (iterative DFS).
	postIdx := make([]int, n) // block index -> postorder number
	var order []int           // postorder sequence of block indices
	type frame struct {
		b    int
		next int
	}
	stack := []frame{{b: 0}}
	d.Reachable[0] = true
	onStack := make([]bool, n)
	onStack[0] = true
	visited := make([]bool, n)
	visited[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		blk := d.g.Blocks[f.b]
		if f.next < len(blk.Succs) {
			s := blk.Succs[f.next].Index
			f.next++
			if !visited[s] {
				visited[s] = true
				d.Reachable[s] = true
				stack = append(stack, frame{b: s})
				onStack[s] = true
			}
			continue
		}
		postIdx[f.b] = len(order)
		order = append(order, f.b)
		onStack[f.b] = false
		stack = stack[:len(stack)-1]
	}

	// Reverse postorder, entry first.
	rpo := make([]int, len(order))
	for i, b := range order {
		rpo[len(order)-1-i] = b
	}

	preds := make([][]int, n)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b.Index)
		}
	}

	// Iterate to the fixed point. idom[0] = 0 as the algorithm's sentinel;
	// rewritten to -1 afterwards.
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for postIdx[a] < postIdx[b] {
				a = idom[a]
			}
			for postIdx[b] < postIdx[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if !d.Reachable[p] || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	copy(d.Idom, idom)
	d.Idom[0] = -1

	for b, id := range d.Idom {
		if id >= 0 {
			d.Children[id] = append(d.Children[id], b)
		}
	}
	for _, c := range d.Children {
		sort.Ints(c)
	}

	// Dominance frontiers: for each join point, walk each predecessor's
	// dominator chain up to (but not including) the join's idom.
	inFrontier := make(map[[2]int]bool)
	for _, b := range rpo {
		if len(preds[b]) < 2 {
			continue
		}
		for _, p := range preds[b] {
			if !d.Reachable[p] {
				continue
			}
			runner := p
			for runner != -1 && runner != d.Idom[b] {
				if !inFrontier[[2]int{runner, b}] {
					inFrontier[[2]int{runner, b}] = true
					d.Frontier[runner] = append(d.Frontier[runner], b)
				}
				runner = d.Idom[runner]
			}
		}
	}
	for _, f := range d.Frontier {
		sort.Ints(f)
	}

	// DFS numbering of the dominator tree for Dominates.
	clock := 0
	var number func(b int)
	number = func(b int) {
		clock++
		d.pre[b] = clock
		for _, c := range d.Children[b] {
			number(c)
		}
		clock++
		d.post[b] = clock
	}
	number(0)
	return d
}

// Dominates reports whether a dominates b (reflexively: every block
// dominates itself). Unreachable blocks dominate nothing and are dominated
// by nothing.
func (d *DomTree) Dominates(a, b *flow.Block) bool {
	if !d.Reachable[a.Index] || !d.Reachable[b.Index] {
		return false
	}
	return d.pre[a.Index] <= d.pre[b.Index] && d.post[b.Index] <= d.post[a.Index]
}

// StrictlyDominates is Dominates minus reflexivity.
func (d *DomTree) StrictlyDominates(a, b *flow.Block) bool {
	return a != b && d.Dominates(a, b)
}

// Walk visits the dominator tree in preorder (parents before children,
// children in block-index order), starting at the entry.
func (d *DomTree) Walk(visit func(b *flow.Block)) {
	var rec func(i int)
	rec = func(i int) {
		visit(d.g.Blocks[i])
		for _, c := range d.Children[i] {
			rec(c)
		}
	}
	if len(d.g.Blocks) > 0 {
		rec(0)
	}
}

// Dump renders the tree as stable text for golden tests: one line per
// block with its idom and dominance frontier.
func (d *DomTree) Dump() string {
	var sb strings.Builder
	for i, b := range d.g.Blocks {
		switch {
		case i == 0:
			fmt.Fprintf(&sb, "b%d %s: idom -", i, b.Kind)
		case !d.Reachable[i]:
			fmt.Fprintf(&sb, "b%d %s: unreachable", i, b.Kind)
			sb.WriteString("\n")
			continue
		default:
			fmt.Fprintf(&sb, "b%d %s: idom b%d", i, b.Kind, d.Idom[i])
		}
		if len(d.Frontier[i]) > 0 {
			parts := make([]string, len(d.Frontier[i]))
			for j, f := range d.Frontier[i] {
				parts[j] = fmt.Sprintf("b%d", f)
			}
			fmt.Fprintf(&sb, ", df {%s}", strings.Join(parts, " "))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
