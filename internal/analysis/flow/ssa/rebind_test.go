package ssa

import (
	"go/ast"
	"testing"

	"logicregression/internal/analysis/flow"
)

// The evaluator shape from internal/circuit: the guarded lengths are reached
// through a local rebind (c := e.c) and a header-safe method call sits
// between the guards and the loop. Both loop indexes must prove — the rebind
// is a declaration, not a chain-invalidating write, and the callee summary
// carries len(c.pos) across the call.
const srcEvalWordsShape = `package x

type circuit struct {
	nodes []int
	pis   []int
	pos   []int
}

func (c *circuit) evalWords(inputs, vals []uint64) {
	for id := range c.nodes {
		vals[id] = 0
	}
}

type evaluator struct {
	c    *circuit
	vals []uint64
}

func (e *evaluator) evalWordsInto(inputs, out []uint64) {
	c := e.c
	if len(inputs) != len(c.pis) {
		panic("inputs")
	}
	if len(out) != len(c.pos) {
		panic("out")
	}
	if len(e.vals) < len(c.nodes) {
		e.vals = make([]uint64, len(c.nodes))
	}
	vals := e.vals[:len(c.nodes)]
	c.evalWords(inputs, vals)
	for i, s := range c.pos {
		if s < 0 || s >= len(vals) {
			panic("po")
		}
		out[i] = vals[s]
	}
}
`

func TestRangeProofThroughLocalRebindAndCall(t *testing.T) {
	fset, file, info := parseWholeFile(t, srcEvalWordsShape)
	hs := HeaderSafeFuncs(flow.BuildCallGraph([]*ast.File{file}, info), info)
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "evalWordsInto" {
			fd = x
		}
	}
	f := Build(fd, info, &Options{HeaderSafe: hs})
	r := InferRanges(f)
	idx := indexExprs(f)
	if len(idx) != 2 {
		t.Fatalf("want 2 index exprs, got %d", len(idx))
	}
	for _, ix := range idx {
		if !r.ProveInBounds(ix.x, ix.b) {
			t.Errorf("index at %v not proved in bounds", fset.Position(ix.x.Pos()))
		}
	}
}

// A plain reassignment (=) of the chain root is a real rebinding and must
// still invalidate the chain: the fact below is about the first s, the use
// is of the second.
func TestChainStableRootReassignmentInvalidates(t *testing.T) {
	f := buildFunc(t, `package x
func f(xs, ys []int, i int) int {
	s := xs
	if i < 0 || i >= len(s) {
		return 0
	}
	s = ys
	return s[i]
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if len(idx) != 1 {
		t.Fatalf("want 1 index expr, got %d", len(idx))
	}
	if r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("guard on the old binding of s must not prove s[i] after s = ys")
	}
}
