package ssa

// Differential-soundness fixtures. Each function is BOTH compiled into
// the test binary (and executed on randomized inputs) AND parsed from
// this file and analyzed with SCCP + interval inference. The test in
// interp_test.go asserts that every proven constant equals the observed
// runtime value and every predicted interval contains it.
//
// Conventions the driver relies on:
//   - signature func(a, b int) []int;
//   - every return is `return []int{<sentinel literal>, ...}` where the
//     sentinel is a distinct int literal per return site, so the driver
//     can tell which return produced a given runtime result;
//   - the file stays self-contained (no imports, no references to other
//     declarations in this package) so it typechecks standalone.

func fixtureConst(a, b int) []int {
	x := 3
	y := x*4 + 1 // 13
	z := y << 2  // 52
	w := z ^ 7   // 51
	return []int{1, x, y, z, w}
}

func fixtureDeadBranch(a, b int) []int {
	x := 1
	y := 0
	if x == 1 {
		y = 2
	} else {
		y = 9
	}
	z := y * 3 // 6, through the pruned phi
	return []int{2, z}
}

func fixtureMask(a, b int) []int {
	k := a & 63 // [0, 63]
	s := 0
	for i := 0; i < k; i++ {
		s += i // non-negative, unbounded above after widening
	}
	m := b
	if a > 10 {
		m = k
	}
	return []int{3, k, s, m}
}

func fixtureClamp(a, b int) []int {
	if a < 0 || a > 62 {
		return []int{4, 0, 0}
	}
	m := 1 << uint(a) // refined: a in [0, 62] here
	return []int{5, m, a}
}

func fixtureModDivConv(a, b int) []int {
	m := a % 7 // (-7, 7)
	u := uint8(a)
	d := 0
	if b >= 1 {
		d = (a & 1023) / b // [0, 1023]
	}
	return []int{6, m, int(u), d}
}

func fixtureCompound(a, b int) []int {
	x := a & 15 // [0, 15]
	x += 3      // [3, 18]
	x *= 2      // [6, 36]
	x++         // [7, 37]
	y := x >> 1 // [3, 18]
	return []int{7, x, y}
}

func fixtureRangeLoop(a, b int) []int {
	xs := []int{a, b, a + b, a - b}
	s := 0
	n := 0
	for i := range xs {
		s += i // 0+1+2+3 = 6, but only intervals are claimed
		n++
	}
	t := 0
	for _, v := range xs {
		if v > 0 {
			t++ // [0, unbounded) — counts positives
		}
	}
	return []int{8, s, n, t}
}

func fixtureNestedGuards(a, b int) []int {
	if a < 0 {
		return []int{9, 0}
	}
	// a >= 0 here.
	w := a % 64 // [0, 63]
	if b >= 0 && b < w {
		// b in [0, 62] (w <= 63 so b <= 62).
		return []int{10, b + 1} // [1, 63]
	}
	return []int{11, w}
}

var fixtureRegistry = map[string]func(a, b int) []int{
	"fixtureConst":        fixtureConst,
	"fixtureDeadBranch":   fixtureDeadBranch,
	"fixtureMask":         fixtureMask,
	"fixtureClamp":        fixtureClamp,
	"fixtureModDivConv":   fixtureModDivConv,
	"fixtureCompound":     fixtureCompound,
	"fixtureRangeLoop":    fixtureRangeLoop,
	"fixtureNestedGuards": fixtureNestedGuards,
}
