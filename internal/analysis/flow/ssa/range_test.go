package ssa

import (
	"go/ast"
	"testing"

	"logicregression/internal/analysis/flow"
)

// indexExprs collects every IndexExpr in the function, paired with its
// block, in source order.
func indexExprs(f *Func) []struct {
	x *ast.IndexExpr
	b *flow.Block
} {
	var out []struct {
		x *ast.IndexExpr
		b *flow.Block
	}
	for _, b := range f.CFG.Blocks {
		for _, n := range b.Nodes {
			if rs, ok := n.(*ast.RangeStmt); ok {
				n = rs.X // the body belongs to other blocks
			}
			blk := b
			ast.Inspect(n, func(m ast.Node) bool {
				if ix, ok := m.(*ast.IndexExpr); ok {
					out = append(out, struct {
						x *ast.IndexExpr
						b *flow.Block
					}{ix, blk})
				}
				return true
			})
		}
	}
	return out
}

func shiftExprs(f *Func) []struct {
	e *ast.BinaryExpr
	b *flow.Block
} {
	var out []struct {
		e *ast.BinaryExpr
		b *flow.Block
	}
	for _, b := range f.CFG.Blocks {
		for _, n := range b.Nodes {
			if rs, ok := n.(*ast.RangeStmt); ok {
				n = rs.X
			}
			blk := b
			ast.Inspect(n, func(m ast.Node) bool {
				if be, ok := m.(*ast.BinaryExpr); ok && (be.Op.String() == "<<" || be.Op.String() == ">>") {
					out = append(out, struct {
						e *ast.BinaryExpr
						b *flow.Block
					}{be, blk})
				}
				return true
			})
		}
	}
	return out
}

func TestRangeMaskedShiftProven(t *testing.T) {
	f := buildFunc(t, `package x
func f(k int) uint64 {
	return 1 << uint(k&63)
}
`, "f")
	r := InferRanges(f)
	shifts := shiftExprs(f)
	if len(shifts) != 1 {
		t.Fatalf("want 1 shift, got %d", len(shifts))
	}
	if !r.ProveShift(shifts[0].e.Y, 64, shifts[0].b) {
		t.Errorf("k&63 must prove < 64; interval %v", r.EvalAt(shifts[0].e.Y, shifts[0].b))
	}
}

func TestRangeUnboundedShiftNotProven(t *testing.T) {
	f := buildFunc(t, `package x
func f(k int) uint64 {
	return 1 << uint(k)
}
`, "f")
	r := InferRanges(f)
	shifts := shiftExprs(f)
	if r.ProveShift(shifts[0].e.Y, 64, shifts[0].b) {
		t.Error("unbounded k must not prove < 64")
	}
}

// The uint-conversion pitfall: `k < 64` does NOT bound uint(k) when k may
// be negative — the conversion wraps to a huge value.
func TestRangeUintConversionPitfall(t *testing.T) {
	f := buildFunc(t, `package x
func f(k int) uint64 {
	if k < 64 {
		return 1 << uint(k)
	}
	return 0
}
`, "f")
	r := InferRanges(f)
	shifts := shiftExprs(f)
	if r.ProveShift(shifts[0].e.Y, 64, shifts[0].b) {
		t.Error("k < 64 alone must not prove uint(k) < 64 (negative k wraps)")
	}
}

func TestRangeConjunctionGuardProves(t *testing.T) {
	f := buildFunc(t, `package x
func f(k int) uint64 {
	if k >= 0 && k < 64 {
		return 1 << uint(k)
	}
	return 0
}
`, "f")
	r := InferRanges(f)
	shifts := shiftExprs(f)
	if !r.ProveShift(shifts[0].e.Y, 64, shifts[0].b) {
		t.Errorf("0 <= k < 64 guard must prove the shift; interval %v",
			r.EvalAt(shifts[0].e.Y, shifts[0].b))
	}
}

// The tt.Var idiom: an early panic-return guard refines the fall-through.
func TestRangePanicGuardRefines(t *testing.T) {
	f := buildFunc(t, `package x
var masks [6]uint64
func f(i int) uint64 {
	if i < 0 || i >= 6 {
		panic("out of range")
	}
	return masks[i]
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if len(idx) != 1 {
		t.Fatalf("want 1 index, got %d", len(idx))
	}
	if !r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Errorf("guarded array index must prove in-bounds; interval %v",
			r.EvalAt(idx[0].x.Index, idx[0].b))
	}
}

func TestRangeArrayIndexUnguardedNotProven(t *testing.T) {
	f := buildFunc(t, `package x
var masks [6]uint64
func f(i int) uint64 {
	return masks[i]
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("unguarded array index must not prove")
	}
}

func TestRangeKeyProvesSliceIndex(t *testing.T) {
	f := buildFunc(t, `package x
func f(xs []int) int {
	s := 0
	for i := range xs {
		s += xs[i]
	}
	return s
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if len(idx) != 1 {
		t.Fatalf("want 1 index, got %d", len(idx))
	}
	if !r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("range key over same slice must prove in-bounds")
	}
}

func TestRangeKeyOverOtherSliceNotProven(t *testing.T) {
	f := buildFunc(t, `package x
func f(xs, ys []int) int {
	s := 0
	for i := range xs {
		s += ys[i]
	}
	return s
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("range key over a different slice must not prove")
	}
}

func TestRangeLenFactProves(t *testing.T) {
	f := buildFunc(t, `package x
func f(xs []int, i int) int {
	if i >= 0 && i < len(xs) {
		return xs[i]
	}
	return 0
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if !r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("i < len(xs) guard must prove in-bounds")
	}
}

func TestRangeLenCopyFactProves(t *testing.T) {
	// The bound goes through a copy: n := len(xs).
	f := buildFunc(t, `package x
func f(xs []int, i int) int {
	n := len(xs)
	if i >= 0 && i < n {
		return xs[i]
	}
	return 0
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if !r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("i < n with n := len(xs) must prove in-bounds")
	}
}

func TestRangeLenMinusOneProves(t *testing.T) {
	f := buildFunc(t, `package x
func f(xs []int) int {
	if len(xs) > 0 {
		return xs[len(xs)-1]
	}
	return 0
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if !r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("xs[len(xs)-1] under len(xs) > 0 must prove in-bounds")
	}
}

func TestRangeLenMinusOneUnguardedNotProven(t *testing.T) {
	f := buildFunc(t, `package x
func f(xs []int) int {
	return xs[len(xs)-1]
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("xs[len(xs)-1] without a guard must not prove (empty slice)")
	}
}

// Chain facts: a bound through a struct field survives element writes but
// must die on a header reassignment.
func TestRangeChainFactStable(t *testing.T) {
	f := buildFunc(t, `package x
type V struct{ words []uint64 }
func f(v *V, i int) uint64 {
	if i >= 0 && i < len(v.words) {
		return v.words[i]
	}
	return 0
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if !r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("i < len(v.words) must prove with a stable chain")
	}
}

func TestRangeChainFactInvalidatedByReassign(t *testing.T) {
	f := buildFunc(t, `package x
type V struct{ words []uint64 }
func f(v *V, i int) uint64 {
	if i >= 0 && i < len(v.words) {
		v.words = nil
		return v.words[i]
	}
	return 0
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("reassigning v.words must invalidate the len fact")
	}
}

func TestRangeChainFactSurvivesElementWrite(t *testing.T) {
	f := buildFunc(t, `package x
type V struct{ words []uint64 }
func f(v *V, i int) uint64 {
	if i >= 0 && i < len(v.words) {
		v.words[i] = 7
		return v.words[i]
	}
	return 0
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	for _, ix := range idx {
		if !r.ProveInBounds(ix.x, ix.b) {
			t.Error("an element write must not invalidate the len fact")
		}
	}
}

func TestRangeReassignmentKillsFact(t *testing.T) {
	// SSA precision: after i is reassigned, the old fact must not apply.
	f := buildFunc(t, `package x
func f(xs []int, i int) int {
	if i >= 0 && i < len(xs) {
		i = i + len(xs)
		return xs[i]
	}
	return 0
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("fact about the old SSA value must not prove the reassigned index")
	}
}

// The kernel-prologue idiom: range over one slice, index another, with an
// explicit length guard up front.
func TestRangeLenFactCrossSliceProves(t *testing.T) {
	f := buildFunc(t, `package x
func f(xs, ys []int) int {
	if len(ys) < len(xs) {
		return 0
	}
	s := 0
	for i := range xs {
		s += ys[i]
	}
	return s
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if len(idx) != 1 {
		t.Fatalf("want 1 index, got %d", len(idx))
	}
	if !r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("len(ys) >= len(xs) guard must prove ys[i] under range over xs")
	}
}

func TestRangeLenFactEqualityProves(t *testing.T) {
	f := buildFunc(t, `package x
func f(xs, ys []int) int {
	if len(xs) != len(ys) {
		return 0
	}
	s := 0
	for i := range xs {
		s += ys[i]
	}
	return s
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if !r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("len(xs) == len(ys) guard must prove ys[i] under range over xs")
	}
}

// Soundness: the inequality must point the right way — len(xs) >= len(ys)
// says nothing about indexing ys by a key bounded by len(xs).
func TestRangeLenFactWrongDirectionNotProven(t *testing.T) {
	f := buildFunc(t, `package x
func f(xs, ys []int) int {
	if len(xs) < len(ys) {
		return 0
	}
	s := 0
	for i := range xs {
		s += ys[i]
	}
	return s
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("len(xs) >= len(ys) must not prove ys[i]: ys may be shorter")
	}
}

// Soundness: reassigning the indexed slice after the guard breaks the SSA
// match, so the old length fact must not carry over.
func TestRangeLenFactReassignedBaseNotProven(t *testing.T) {
	f := buildFunc(t, `package x
func f(xs, ys []int) int {
	if len(ys) < len(xs) {
		return 0
	}
	ys = ys[:0]
	s := 0
	for i := range xs {
		s += ys[i]
	}
	return s
}
`, "f")
	r := InferRanges(f)
	idx := indexExprs(f)
	if r.ProveInBounds(idx[0].x, idx[0].b) {
		t.Error("reassigned ys must not inherit the pre-guard length fact")
	}
}

func TestRangeWideningTerminates(t *testing.T) {
	f := buildFunc(t, `package x
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`, "f")
	r := InferRanges(f)
	// Find the return's block and check s stays non-negative: i starts
	// at 0 and only grows, so s = sum of non-negatives.
	blk, ret := lastReturnBlock(f)
	iv := r.EvalAt(ret.Results[0], blk)
	if lo, ok := iv.Lo(); !ok || lo < 0 {
		t.Errorf("accumulator of non-negatives: lower bound should be >= 0, got %v", iv)
	}
	if _, ok := iv.Hi(); ok {
		t.Errorf("accumulator must be unbounded above after widening, got %v", iv)
	}
}
