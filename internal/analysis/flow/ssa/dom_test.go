package ssa

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"logicregression/internal/analysis/flow"
)

// parseWholeFile type-checks one source file against the compiled stdlib.
func parseWholeFile(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

// parseFunc type-checks one file and returns the named function's decl.
func parseFunc(t *testing.T, src, name string) (*token.FileSet, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset, f, info := parseWholeFile(t, src)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fset, fd, info
		}
	}
	t.Fatalf("no function %q", name)
	return nil, nil, nil
}

func buildFunc(t *testing.T, src, name string) *Func {
	t.Helper()
	_, fd, info := parseFunc(t, src, name)
	f := Build(fd, info, nil)
	if f == nil {
		t.Fatalf("Build returned nil for %q", name)
	}
	return f
}

func golden(t *testing.T, got, want string) {
	t.Helper()
	g, w := strings.TrimSpace(got), strings.TrimSpace(want)
	if g != w {
		t.Errorf("dump mismatch:\n--- got ---\n%s\n--- want ---\n%s", g, w)
	}
}

// The sources below mirror the CFG golden corpus in
// internal/analysis/flow/cfg_test.go, so the two suites stay comparable
// side by side: same shapes, one dumping structure, this one dominance.

const srcLabeledBreak = `package x
func f(xs [][]int) int {
	total := 0
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			total += v
		}
	}
	return total
}
`

func TestDomLabeledBreak(t *testing.T) {
	f := buildFunc(t, srcLabeledBreak, "f")
	golden(t, f.Dom.Dump(), `
b0 entry: idom -
b1 exit: idom b6
b2 panic: unreachable
b3 label.outer: idom b0
b4 range.head: idom b3, df {b4}
b5 range.body: idom b4, df {b4 b6}
b6 range.done: idom b4
b7 range.head: idom b5, df {b4 b6 b7}
b8 range.body: idom b7, df {b6 b7}
b9 range.done: idom b7, df {b4}
b10 if.then: idom b8, df {b6}
b11 if.done: idom b8, df {b7}
`)
	golden(t, f.DumpPhis(), `
b4 range.head: total(b3:expr b9:phi)
b6 range.done: total(b4:phi b10:phi)
b7 range.head: total(b5:phi b11:compound)
`)
}

const srcSelect = `package x
func f(a, b chan int, out chan<- int) int {
	n := 0
	for {
		select {
		case v := <-a:
			out <- v
			n++
		case <-b:
			return n
		default:
			continue
		}
	}
}
`

func TestDomSelect(t *testing.T) {
	f := buildFunc(t, srcSelect, "f")
	golden(t, f.Dom.Dump(), `
b0 entry: idom -
b1 exit: idom b8
b2 panic: unreachable
b3 for.head: idom b0, df {b3}
b4 for.body: idom b3, df {b3}
b5 for.done: unreachable
b6 select.done: idom b7, df {b3}
b7 select.case: idom b4, df {b3}
b8 select.case: idom b4
b9 select.default: idom b4, df {b3}
`)
	golden(t, f.DumpPhis(), `
b3 for.head: n(b0:expr b6:compound b9:phi)
`)
}

const srcSwitchGoto = `package x
func f(n int) int {
	switch n {
	case 0:
		n++
		fallthrough
	case 1:
		n += 2
	default:
		goto out
	}
	n *= 3
out:
	return n
}
`

func TestDomSwitchFallthroughGoto(t *testing.T) {
	f := buildFunc(t, srcSwitchGoto, "f")
	golden(t, f.Dom.Dump(), `
b0 entry: idom -
b1 exit: idom b7
b2 panic: unreachable
b3 switch.done: idom b5, df {b7}
b4 switch.case: idom b0, df {b5}
b5 switch.case: idom b0, df {b7}
b6 switch.default: idom b0, df {b7}
b7 label.out: idom b0
`)
	golden(t, f.DumpPhis(), `
b5 switch.case: n(b0:param b4:compound)
b7 label.out: n(b3:compound b6:param)
`)
}

const srcDiamond = `package x
func f(a, b int) int {
	x := 0
	if a > b {
		x = a
	} else {
		x = b
	}
	return x
}
`

func TestDomDiamond(t *testing.T) {
	f := buildFunc(t, srcDiamond, "f")
	golden(t, f.Dom.Dump(), `
b0 entry: idom -
b1 exit: idom b4
b2 panic: unreachable
b3 if.then: idom b0, df {b4}
b4 if.done: idom b0
b5 if.else: idom b0, df {b4}
`)
	golden(t, f.DumpPhis(), `
b4 if.done: x(b3:expr b5:expr)
`)
}

// TestDominatesBasics sanity-checks the Dominates predicate against the
// diamond: entry dominates everything, neither arm dominates the join.
func TestDominatesBasics(t *testing.T) {
	f := buildFunc(t, srcDiamond, "f")
	g := f.CFG
	entry, then, done, els := g.Blocks[0], g.Blocks[3], g.Blocks[4], g.Blocks[5]
	if !f.Dom.Dominates(entry, done) {
		t.Error("entry should dominate the join")
	}
	if f.Dom.Dominates(then, done) || f.Dom.Dominates(els, done) {
		t.Error("no single arm dominates the join")
	}
	if !f.Dom.Dominates(then, then) {
		t.Error("Dominates must be reflexive")
	}
	if f.Dom.StrictlyDominates(then, then) {
		t.Error("StrictlyDominates must not be reflexive")
	}
	var flowBlocks []*flow.Block
	f.Dom.Walk(func(b *flow.Block) { flowBlocks = append(flowBlocks, b) })
	if len(flowBlocks) == 0 || flowBlocks[0] != entry {
		t.Error("Walk should start at the entry")
	}
}
