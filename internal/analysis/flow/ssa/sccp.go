package ssa

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"logicregression/internal/analysis/flow"
)

// constCell is the SCCP lattice: Top (undetermined, optimistic), a single
// constant, or Bottom (provably non-constant).
type constCell struct {
	state int // 0 = top, 1 = const, 2 = bottom
	val   constant.Value
}

var (
	cellTop    = constCell{state: 0}
	cellBottom = constCell{state: 2}
)

func cellConst(v constant.Value) constCell {
	if v == nil || v.Kind() == constant.Unknown {
		return cellBottom
	}
	return constCell{state: 1, val: v}
}

func (c constCell) meet(d constCell) constCell {
	switch {
	case c.state == 0:
		return d
	case d.state == 0:
		return c
	case c.state == 2 || d.state == 2:
		return cellBottom
	case constant.Compare(c.val, token.EQL, d.val):
		return c
	default:
		return cellBottom
	}
}

func (c constCell) eq(d constCell) bool {
	if c.state != d.state {
		return false
	}
	if c.state != 1 {
		return true
	}
	return constant.Compare(c.val, token.EQL, d.val)
}

// SCCP is the result of sparse conditional constant propagation over one
// Func: a constant verdict per SSA value, executability per CFG edge and
// block, and a constant verdict per branch condition.
type SCCP struct {
	f     *Func
	cells map[*Value]constCell
	// edgeExec[pred][succIdx] — whether that CFG edge can execute.
	edgeExec  map[[2]int]bool
	blockExec []bool
}

// RunSCCP runs the classic two-worklist SCCP algorithm with branch
// pruning: blocks become executable only when an executable edge reaches
// them, phi nodes join over executable in-edges only, and a branch whose
// condition folds to a constant marks only the taken edge executable.
func RunSCCP(f *Func) *SCCP {
	s := &SCCP{
		f:         f,
		cells:     make(map[*Value]constCell),
		edgeExec:  make(map[[2]int]bool),
		blockExec: make([]bool, len(f.CFG.Blocks)),
	}

	// usedBy: which values' definitions mention each value; condUsers:
	// which branch blocks' conditions mention each value.
	usedBy := make(map[*Value][]*Value)
	condUsers := make(map[*Value][]*flow.Block)
	addExprDeps := func(target *Value, e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if src := f.UseVal[id]; src != nil {
					usedBy[src] = append(usedBy[src], target)
				}
			}
			return true
		})
	}
	for _, v := range f.Values {
		switch v.Kind {
		case KindExpr, KindCompound:
			addExprDeps(v, v.Rhs)
			if v.Prev != nil {
				usedBy[v.Prev] = append(usedBy[v.Prev], v)
			}
		case KindPhi:
			for _, e := range v.Phi.Edges {
				if e.Val != nil {
					usedBy[e.Val] = append(usedBy[e.Val], v)
				}
			}
		}
	}
	for _, b := range f.CFG.Blocks {
		if b.Cond == nil || len(b.Succs) != 2 {
			continue
		}
		cond := b.Cond
		blk := b
		ast.Inspect(cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if src := f.UseVal[id]; src != nil {
					condUsers[src] = append(condUsers[src], blk)
				}
			}
			return true
		})
	}

	var flowWork [][2]int // edges (pred block index, succ position)
	var ssaWork []*Value

	markEdge := func(pi, si int) {
		key := [2]int{pi, si}
		if s.edgeExec[key] {
			return
		}
		s.edgeExec[key] = true
		flowWork = append(flowWork, key)
	}

	set := func(v *Value, c constCell) {
		old, ok := s.cells[v]
		if !ok {
			old = cellTop
		}
		// Monotone: never go back up the lattice.
		next := old.meet(c)
		if next.eq(old) {
			return
		}
		s.cells[v] = next
		ssaWork = append(ssaWork, v)
	}

	evalValue := func(v *Value) constCell {
		switch v.Kind {
		case KindZero:
			return zeroCell(v.Var.Type())
		case KindExpr:
			return s.evalExpr(v.Rhs)
		case KindCompound:
			prev := cellBottom
			if v.Prev != nil {
				prev = s.cellOf(v.Prev)
			}
			var rhs constCell
			if v.Rhs == nil {
				rhs = cellConst(constant.MakeInt64(1))
			} else {
				rhs = s.evalExpr(v.Rhs)
			}
			return s.foldBinary(v.Op, prev, rhs, v.Var.Type())
		case KindPhi:
			out := cellTop
			for _, e := range v.Phi.Edges {
				if e.Val == nil {
					continue
				}
				si := succPos(e.Pred, v.Block)
				if si < 0 || !s.edgeExec[[2]int{e.Pred.Index, si}] {
					continue
				}
				out = out.meet(s.cellOf(e.Val))
			}
			return out
		default: // params, calls, opaque, range
			return cellBottom
		}
	}

	blockValues := make(map[*flow.Block][]*Value)
	for _, v := range f.Values {
		if v.Block != nil && v.Kind != KindPhi {
			blockValues[v.Block] = append(blockValues[v.Block], v)
		}
	}

	processBlock := func(bi int) {
		b := f.CFG.Blocks[bi]
		// (Re-)evaluate definitions and phis in the block.
		for _, phi := range f.Phis[b] {
			set(phi.Value, evalValue(phi.Value))
		}
		for _, v := range blockValues[b] {
			set(v, evalValue(v))
		}
		// Successor edges.
		switch {
		case b.Cond != nil && len(b.Succs) == 2:
			c := s.evalExpr(b.Cond)
			switch {
			case c.state == 1 && c.val.Kind() == constant.Bool:
				if constant.BoolVal(c.val) {
					markEdge(bi, 0)
				} else {
					markEdge(bi, 1)
				}
			case c.state == 0:
				// Not yet known: wait.
			default:
				markEdge(bi, 0)
				markEdge(bi, 1)
			}
		default:
			for si := range b.Succs {
				markEdge(bi, si)
			}
		}
	}

	// Seed: the entry block executes.
	s.blockExec[0] = true
	processBlock(0)
	for len(flowWork) > 0 || len(ssaWork) > 0 {
		for len(flowWork) > 0 {
			e := flowWork[len(flowWork)-1]
			flowWork = flowWork[:len(flowWork)-1]
			dst := f.CFG.Blocks[e[0]].Succs[e[1]]
			if !s.blockExec[dst.Index] {
				s.blockExec[dst.Index] = true
				processBlock(dst.Index)
			} else {
				// New in-edge to an executable block: phis may drop.
				for _, phi := range f.Phis[dst] {
					set(phi.Value, evalValue(phi.Value))
				}
			}
		}
		for len(ssaWork) > 0 {
			v := ssaWork[len(ssaWork)-1]
			ssaWork = ssaWork[:len(ssaWork)-1]
			for _, u := range usedBy[v] {
				if u.Block != nil && s.blockExec[u.Block.Index] {
					set(u, evalValue(u))
				}
			}
			for _, cb := range condUsers[v] {
				if s.blockExec[cb.Index] {
					processBlock(cb.Index)
				}
			}
		}
	}
	return s
}

func succPos(pred, succ *flow.Block) int {
	for i, s := range pred.Succs {
		if s == succ {
			return i
		}
	}
	return -1
}

func (s *SCCP) cellOf(v *Value) constCell {
	if c, ok := s.cells[v]; ok {
		return c
	}
	return cellTop
}

// Reachable reports whether SCCP proved b executable. Blocks pruned by
// constant branches — and blocks the CFG builder already knew were
// unreachable — report false.
func (s *SCCP) Reachable(b *flow.Block) bool {
	return s.blockExec[b.Index]
}

// ConstOf returns the constant value of v, if SCCP proved one. Values
// whose cell stayed Top sit in unreachable code; they report no constant.
func (s *SCCP) ConstOf(v *Value) (constant.Value, bool) {
	c := s.cellOf(v)
	if c.state == 1 {
		return c.val, true
	}
	return nil, false
}

// ConstAt folds an expression using the final SCCP cells. The block
// parameter is documentation of intent (the expression's identifiers are
// resolved through their use-site values, which are block-accurate by
// construction).
func (s *SCCP) ConstAt(e ast.Expr, _ *flow.Block) (constant.Value, bool) {
	c := s.evalExpr(e)
	if c.state == 1 {
		return c.val, true
	}
	return nil, false
}

// BranchConst reports whether the condition of a two-successor branch
// block folds to a constant, and its truth value.
func (s *SCCP) BranchConst(b *flow.Block) (truth, ok bool) {
	if b.Cond == nil || len(b.Succs) != 2 || !s.blockExec[b.Index] {
		return false, false
	}
	c := s.evalExpr(b.Cond)
	if c.state == 1 && c.val.Kind() == constant.Bool {
		return constant.BoolVal(c.val), true
	}
	return false, false
}

// evalExpr folds an expression over the current cells. Top is returned
// only when some operand is still Top; any unmodeled construct is Bottom.
func (s *SCCP) evalExpr(e ast.Expr) constCell {
	if e == nil {
		return cellBottom
	}
	// The type checker already folded constant expressions.
	if tv, ok := s.f.Info.Types[e]; ok && tv.Value != nil {
		return cellConst(tv.Value)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return s.evalExpr(e.X)
	case *ast.Ident:
		if v := s.f.UseVal[e]; v != nil {
			return s.cellOf(v)
		}
		return cellBottom
	case *ast.UnaryExpr:
		x := s.evalExpr(e.X)
		if x.state != 1 {
			return x
		}
		return s.foldUnary(e.Op, x, s.f.Info.TypeOf(e))
	case *ast.BinaryExpr:
		return s.foldBinaryExpr(e)
	case *ast.CallExpr:
		// len of a fixed-size array is a constant even for non-constant
		// operands; the type checker only folds it for constant ones.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) == 1 {
			if _, isB := s.f.Info.Uses[id].(*types.Builtin); isB && (id.Name == "len" || id.Name == "cap") {
				if n, ok := arrayLen(s.f.Info.TypeOf(e.Args[0])); ok {
					return cellConst(constant.MakeInt64(n))
				}
			}
		}
		// Conversions T(x) parse as calls.
		if tv, ok := s.f.Info.Types[e.Fun]; ok && tv.IsType() {
			x := s.evalExpr(e.Args[0])
			if x.state != 1 {
				return x
			}
			return convertCell(x, s.f.Info.TypeOf(e))
		}
		return cellBottom
	}
	return cellBottom
}

func arrayLen(t types.Type) (int64, bool) {
	if t == nil {
		return 0, false
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	if a, ok := u.(*types.Array); ok {
		return a.Len(), true
	}
	return 0, false
}

func (s *SCCP) foldBinaryExpr(e *ast.BinaryExpr) constCell {
	x := s.evalExpr(e.X)
	// Short-circuit operators can fold with one known side.
	if e.Op == token.LAND || e.Op == token.LOR {
		if x.state == 1 && x.val.Kind() == constant.Bool {
			b := constant.BoolVal(x.val)
			if e.Op == token.LAND && !b {
				return cellConst(constant.MakeBool(false))
			}
			if e.Op == token.LOR && b {
				return cellConst(constant.MakeBool(true))
			}
			return s.evalExpr(e.Y)
		}
		y := s.evalExpr(e.Y)
		if x.state == 0 || y.state == 0 {
			return cellTop
		}
		return cellBottom
	}
	y := s.evalExpr(e.Y)
	return s.foldBinary(e.Op, x, y, s.f.Info.TypeOf(e))
}

func (s *SCCP) foldUnary(op token.Token, x constCell, t types.Type) (out constCell) {
	out = cellBottom
	defer func() { recover() }() // go/constant panics on exotic inputs
	switch op {
	case token.NOT, token.SUB, token.ADD, token.XOR:
		prec := uint(0)
		if op == token.XOR {
			prec = precOf(t)
			if prec == 0 {
				return cellBottom
			}
		}
		v := constant.UnaryOp(op, x.val, prec)
		return wrapCell(cellConst(v), t)
	}
	return cellBottom
}

// foldBinary folds op over two cells, wrapping the result into t's width.
func (s *SCCP) foldBinary(op token.Token, x, y constCell, t types.Type) constCell {
	if x.state == 2 || y.state == 2 {
		return cellBottom
	}
	if x.state == 0 || y.state == 0 {
		return cellTop
	}
	return foldConst(op, x.val, y.val, t)
}

func foldConst(op token.Token, xv, yv constant.Value, t types.Type) (out constCell) {
	out = cellBottom
	defer func() { recover() }()
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return cellConst(constant.MakeBool(constant.Compare(xv, op, yv)))
	case token.SHL, token.SHR:
		n, ok := shiftCount(yv)
		if !ok {
			return cellBottom
		}
		return wrapCell(cellConst(constant.Shift(xv, op, n)), t)
	case token.QUO:
		if isIntType(t) {
			if constant.Sign(yv) == 0 {
				return cellBottom
			}
			return wrapCell(cellConst(constant.BinaryOp(xv, token.QUO_ASSIGN, yv)), t)
		}
		return cellBottom
	case token.REM:
		if constant.Sign(yv) == 0 {
			return cellBottom
		}
		return wrapCell(cellConst(constant.BinaryOp(xv, op, yv)), t)
	case token.ADD, token.SUB, token.MUL, token.AND, token.OR, token.XOR, token.AND_NOT:
		return wrapCell(cellConst(constant.BinaryOp(xv, op, yv)), t)
	}
	return cellBottom
}

func shiftCount(v constant.Value) (uint, bool) {
	n, ok := constant.Uint64Val(constant.ToInt(v))
	if !ok || n > 512 {
		return 0, false
	}
	return uint(n), true
}

func isIntType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// precOf returns the bit width of an integer type, assuming a 64-bit
// target for int/uint/uintptr (documented caveat: proofs hold for 64-bit
// platforms, which is everything this repo targets).
func precOf(t types.Type) uint {
	if t == nil {
		return 0
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr, types.UntypedInt:
		return 64
	}
	return 0
}

func isUnsigned(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

// wrapCell reduces an arbitrary-precision constant into the two's-
// complement range of type t, mirroring Go's run-time wraparound.
func wrapCell(c constCell, t types.Type) constCell {
	if c.state != 1 || t == nil {
		return c
	}
	if c.val.Kind() == constant.Bool {
		return c
	}
	if !isIntType(t) {
		return cellBottom
	}
	prec := precOf(t)
	if prec == 0 {
		return cellBottom
	}
	v := constant.ToInt(c.val)
	if v.Kind() != constant.Int {
		return cellBottom
	}
	if isUnsigned(t) {
		u, exact := constant.Uint64Val(v)
		if exact && prec == 64 {
			return cellConst(constant.MakeUint64(u))
		}
		// Reduce modulo 2^prec via repeated arithmetic on uint64.
		masked := uint64FromConst(v) & maskFor(prec)
		return cellConst(constant.MakeUint64(masked))
	}
	i, exact := constant.Int64Val(v)
	if exact && prec == 64 {
		return cellConst(constant.MakeInt64(i))
	}
	masked := uint64FromConst(v) & maskFor(prec)
	// Sign-extend.
	if prec < 64 && masked&(1<<(prec-1)) != 0 {
		masked |= ^maskFor(prec)
	}
	return cellConst(constant.MakeInt64(int64(masked)))
}

func maskFor(prec uint) uint64 {
	if prec >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << prec) - 1
}

// uint64FromConst reduces an arbitrary-precision integer to its low 64
// bits, mirroring two's-complement truncation.
func uint64FromConst(v constant.Value) uint64 {
	if u, exact := constant.Uint64Val(v); exact {
		return u
	}
	if i, exact := constant.Int64Val(v); exact {
		return uint64(i)
	}
	// Out of 64-bit range: reduce modulo 2^64 by splitting the decimal
	// string. Slow path, only hit by pathological constants.
	neg := constant.Sign(v) < 0
	abs := v
	if neg {
		abs = constant.UnaryOp(token.SUB, v, 0)
	}
	var out uint64
	for _, d := range abs.ExactString() {
		if d < '0' || d > '9' {
			return 0
		}
		out = out*10 + uint64(d-'0')
	}
	if neg {
		return -out
	}
	return out
}

func convertCell(x constCell, t types.Type) constCell {
	if x.state != 1 {
		return x
	}
	if !isIntType(t) {
		return cellBottom
	}
	return wrapCell(x, t)
}

func zeroCell(t types.Type) constCell {
	if t == nil {
		return cellBottom
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return cellBottom
	}
	switch {
	case b.Info()&types.IsInteger != 0:
		return cellConst(constant.MakeInt64(0))
	case b.Info()&types.IsBoolean != 0:
		return cellConst(constant.MakeBool(false))
	case b.Info()&types.IsString != 0:
		return cellConst(constant.MakeString(""))
	case b.Info()&types.IsFloat != 0:
		return cellConst(constant.MakeFloat64(0))
	}
	return cellBottom
}
