package ssa

import (
	"go/ast"
	"go/constant"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"logicregression/internal/analysis/flow"
)

// TestDifferentialSoundness is the property test for the whole SSA stack:
// it parses interp_fixtures_test.go from disk, runs SCCP and interval
// inference over every fixture*, then executes the compiled versions of
// the same functions on randomized and adversarial inputs and checks
// that the static claims hold for the observed runtime values:
//
//   - every SCCP-proven constant equals the runtime value, and
//   - every inferred interval contains the runtime value.
//
// Trivially-sound answers (everything Top) would pass containment, so the
// test also requires a minimum number of proven constants and informative
// (at-least-one-side-bounded) intervals across the corpus.

// retSite is one `return []int{sentinel, ...}` statement of a fixture.
type retSite struct {
	block *flow.Block
	elems []ast.Expr
}

// analyzedFixture pairs the static results for one fixture function with
// its return sites, keyed by sentinel.
type analyzedFixture struct {
	name   string
	ranges *Ranges
	sccp   *SCCP
	sites  map[int64]*retSite
}

func loadFixtures(t *testing.T) []*analyzedFixture {
	t.Helper()
	path := filepath.Join(".", "interp_fixtures_test.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture source: %v", err)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, 0)
	if err != nil {
		t.Fatalf("parsing fixture source: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("ssafixtures", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typechecking fixture source: %v", err)
	}

	var out []*analyzedFixture
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || len(fd.Name.Name) < 7 || fd.Name.Name[:7] != "fixture" {
			continue
		}
		f := Build(fd, info, nil)
		if f == nil {
			t.Fatalf("%s: Build returned nil", fd.Name.Name)
		}
		r := InferRanges(f)
		af := &analyzedFixture{
			name:   fd.Name.Name,
			ranges: r,
			sccp:   r.SCCP(),
			sites:  make(map[int64]*retSite),
		}
		for _, b := range f.CFG.Blocks {
			for _, n := range b.Nodes {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					continue
				}
				if len(ret.Results) != 1 {
					t.Fatalf("%s: fixture returns must have one result", af.name)
				}
				lit, ok := ret.Results[0].(*ast.CompositeLit)
				if !ok || len(lit.Elts) == 0 {
					t.Fatalf("%s: fixture returns must be []int composite literals", af.name)
				}
				tv := info.Types[lit.Elts[0]]
				if tv.Value == nil {
					t.Fatalf("%s: first return element must be a literal sentinel", af.name)
				}
				sentinel, exact := constant.Int64Val(constant.ToInt(tv.Value))
				if !exact {
					t.Fatalf("%s: sentinel does not fit int64", af.name)
				}
				if _, dup := af.sites[sentinel]; dup {
					t.Fatalf("%s: duplicate sentinel %d", af.name, sentinel)
				}
				af.sites[sentinel] = &retSite{block: b, elems: lit.Elts}
			}
		}
		if len(af.sites) == 0 {
			t.Fatalf("%s: no return sites found", af.name)
		}
		out = append(out, af)
	}
	if len(out) != len(fixtureRegistry) {
		t.Fatalf("parsed %d fixtures, registry has %d", len(out), len(fixtureRegistry))
	}
	return out
}

func fixtureInputs() [][2]int {
	edges := []int{-1024, -128, -100, -64, -63, -8, -1, 0, 1, 2, 7, 10, 11, 62, 63, 64, 127, 128, 1023}
	var in [][2]int
	for _, a := range edges {
		for _, b := range edges {
			in = append(in, [2]int{a, b})
		}
	}
	rng := rand.New(rand.NewSource(42)) // deterministic corpus
	for i := 0; i < 250; i++ {
		in = append(in, [2]int{rng.Intn(10001) - 5000, rng.Intn(10001) - 5000})
	}
	return in
}

func TestDifferentialSoundness(t *testing.T) {
	fixtures := loadFixtures(t)
	inputs := fixtureInputs()

	provenConsts := 0
	informative := 0
	checkedSites := make(map[string]map[int64]bool)

	for _, af := range fixtures {
		fn, ok := fixtureRegistry[af.name]
		if !ok {
			t.Fatalf("%s: not in fixtureRegistry", af.name)
		}
		checkedSites[af.name] = make(map[int64]bool)
		for _, in := range inputs {
			got := fn(in[0], in[1])
			site, ok := af.sites[int64(got[0])]
			if !ok {
				t.Fatalf("%s(%d, %d): runtime sentinel %d has no return site",
					af.name, in[0], in[1], got[0])
			}
			if len(got) != len(site.elems) {
				t.Fatalf("%s: runtime result has %d elements, return site has %d",
					af.name, len(got), len(site.elems))
			}
			firstVisit := !checkedSites[af.name][int64(got[0])]
			checkedSites[af.name][int64(got[0])] = true
			for i, e := range site.elems {
				rt := int64(got[i])
				if cv, ok := af.sccp.ConstAt(e, site.block); ok {
					want, exact := constant.Int64Val(constant.ToInt(cv))
					if !exact {
						t.Fatalf("%s: SCCP constant does not fit int64", af.name)
					}
					if want != rt {
						t.Errorf("%s(%d, %d) elem %d: SCCP proved constant %d, runtime says %d",
							af.name, in[0], in[1], i, want, rt)
					}
					if firstVisit {
						provenConsts++
					}
				}
				iv := af.ranges.EvalAt(e, site.block)
				if !iv.Contains(rt) {
					t.Errorf("%s(%d, %d) elem %d: interval %v does not contain runtime value %d",
						af.name, in[0], in[1], i, iv, rt)
				}
				if firstVisit {
					_, loOK := iv.Lo()
					_, hiOK := iv.Hi()
					if loOK || hiOK {
						informative++
					}
				}
			}
		}
		// Every return site must actually be exercised by some input, or
		// the static claims for it were never compared against reality.
		for sentinel := range af.sites {
			if !checkedSites[af.name][sentinel] {
				t.Errorf("%s: return site with sentinel %d never executed", af.name, sentinel)
			}
		}
	}

	// Anti-vacuity: the corpus is designed so SCCP proves a healthy number
	// of constants and the interval lattice bounds most probes. If these
	// drop, precision regressed even though soundness still holds.
	t.Logf("corpus: %d fixtures, %d inputs, %d proven constants, %d informative intervals",
		len(fixtures), len(inputs), provenConsts, informative)
	if provenConsts < 15 {
		t.Errorf("only %d SCCP constants proven across the corpus, want >= 15", provenConsts)
	}
	if informative < 20 {
		t.Errorf("only %d informative intervals across the corpus, want >= 20", informative)
	}
}
