// Package ssa builds a pruned SSA form for local variables on top of the
// CFGs in internal/analysis/flow, and implements two sparse analyses over
// it: SCCP (sparse conditional constant propagation with branch pruning)
// and an interval/value-range analysis with branch refinement.
//
// The construction is deliberately scoped to what repo analyzers need:
//
//   - Only "SSA-able" variables are tracked: parameters, named results,
//     the receiver, and local variables whose address is never taken and
//     that are never assigned inside a nested function literal. Uses of
//     anything else stay opaque.
//   - Values are use-def edges over the AST, not a new instruction set:
//     each definition remembers its defining expression (or call result,
//     range clause, compound assignment, ...) and every resolved use-site
//     identifier maps back to the reaching Value.
//   - Phi nodes are pruned with a block-local liveness pass, so only
//     merge points where a variable is live-in get a phi.
//
// Soundness notes (also see DESIGN.md §15): values reachable through
// pointers, globals, captured variables, or field chains are NOT in SSA
// form; analyses over them use the separate chain-stability machinery in
// facts.go, which conservatively invalidates a chain at any aliasing
// assignment or potentially mutating call.
package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"logicregression/internal/analysis/flow"
)

// ValueKind says how a Value was defined.
type ValueKind int

const (
	// KindParam is a parameter or receiver: unknown on entry.
	KindParam ValueKind = iota
	// KindZero is a declaration without initializer (including named
	// results): the zero value of its type.
	KindZero
	// KindExpr is a plain assignment x = <Rhs> or x := <Rhs>.
	KindExpr
	// KindCompound is x op= <Rhs>, x++ or x--: Op applied to Prev and Rhs
	// (Rhs is nil for ++/--, meaning the constant 1).
	KindCompound
	// KindCall is one result of a multi-value call assignment
	// x, y, err := f(...): Call is the call, ResIdx the result index.
	KindCall
	// KindRangeIndex is the key of a range over a slice, array, string,
	// or integer: non-negative, and < len(Range.X) while the body runs.
	KindRangeIndex
	// KindPhi is a phi at a join point; Phi lists the incoming edges.
	KindPhi
	// KindOpaque is any definition the package does not model (comma-ok,
	// range element, type-switch binding, receive, ...).
	KindOpaque
)

// A Value is one SSA definition of a tracked variable.
type Value struct {
	ID    int
	Var   *types.Var
	Kind  ValueKind
	Block *flow.Block // defining block; nil for params/zeros at entry
	Site  ast.Node    // defining statement, nil for entry values

	Rhs    ast.Expr       // KindExpr, KindCompound (nil for ++/--)
	Op     token.Token    // KindCompound: ADD, SUB, MUL, ...
	Prev   *Value         // KindCompound: the previous value of Var
	Call   *ast.CallExpr  // KindCall
	ResIdx int            // KindCall: index into the result tuple
	Range  *ast.RangeStmt // KindRangeIndex
	Phi    *Phi           // KindPhi
}

// A Phi merges one value per executable in-edge of its block.
type Phi struct {
	Value *Value
	Edges []PhiEdge
}

// A PhiEdge is one incoming (predecessor, value) pair. Val may be nil when
// the variable is not defined along that edge; Go's scoping rules make
// such an edge dynamically impossible (a use before any definition does
// not compile), so analyses treat nil as "unreachable operand".
type PhiEdge struct {
	Pred *flow.Block
	Val  *Value
}

// A Func is the SSA form of one function body.
type Func struct {
	Decl *ast.FuncDecl
	CFG  *flow.CFG
	Dom  *DomTree
	Info *types.Info

	// Vars lists the tracked variables, in declaration order.
	Vars []*types.Var
	// Values lists every SSA value, in creation order.
	Values []*Value
	// UseVal maps each resolved use-site identifier in the body (outside
	// nested function literals) to the value reaching it.
	UseVal map[*ast.Ident]*Value
	// UsesOf is the reverse map: every use identifier of each value.
	UsesOf map[*Value][]*ast.Ident
	// Phis lists the phi nodes placed at each block.
	Phis map[*flow.Block][]*Phi

	// NodeBlock maps each top-level statement/expression node of a block
	// to its block.
	NodeBlock map[ast.Node]*flow.Block

	tracked map[*types.Var]bool
	facts   map[*flow.Block][]Fact
	// headerSafe, when non-nil, reports same-package functions that never
	// move a slice/map/pointer header reachable from their parameters or
	// receiver (see HeaderSafeFuncs). Used by chain-stability checks.
	headerSafe map[*types.Func]bool
	chainCache map[string]bool
}

// Options tweaks construction.
type Options struct {
	// HeaderSafe reports whether calling fn cannot re-slice, reallocate,
	// or otherwise redirect memory reachable from the caller's arguments
	// (element writes are fine). nil means "no call is safe".
	HeaderSafe map[*types.Func]bool
}

// Build constructs the SSA form of fd's body. It returns nil when fd has
// no body or the CFG cannot be built.
func Build(fd *ast.FuncDecl, info *types.Info, opts *Options) *Func {
	if fd == nil || fd.Body == nil || info == nil {
		return nil
	}
	g := flow.New(fd.Body, info)
	if g == nil || len(g.Blocks) == 0 {
		return nil
	}
	f := &Func{
		Decl:      fd,
		CFG:       g,
		Dom:       Dominators(g),
		Info:      info,
		UseVal:    make(map[*ast.Ident]*Value),
		UsesOf:    make(map[*Value][]*ast.Ident),
		Phis:      make(map[*flow.Block][]*Phi),
		NodeBlock: make(map[ast.Node]*flow.Block),
		tracked:   make(map[*types.Var]bool),
		facts:     make(map[*flow.Block][]Fact),
	}
	if opts != nil {
		f.headerSafe = opts.HeaderSafe
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			f.NodeBlock[n] = b
		}
	}
	f.collectVars()
	f.placePhis()
	f.rename()
	return f
}

// collectVars decides which variables get SSA form: params, receiver,
// named results, and locals declared in the body — minus anything
// address-taken or assigned inside a nested function literal.
func (f *Func) collectVars() {
	add := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if v, ok := f.Info.Defs[id].(*types.Var); ok && v != nil {
			if !f.tracked[v] {
				f.tracked[v] = true
				f.Vars = append(f.Vars, v)
			}
		}
	}
	if f.Decl.Recv != nil {
		for _, fld := range f.Decl.Recv.List {
			for _, n := range fld.Names {
				add(n)
			}
		}
	}
	if f.Decl.Type.Params != nil {
		for _, fld := range f.Decl.Type.Params.List {
			for _, n := range fld.Names {
				add(n)
			}
		}
	}
	if f.Decl.Type.Results != nil {
		for _, fld := range f.Decl.Type.Results.List {
			for _, n := range fld.Names {
				add(n)
			}
		}
	}
	// Locals: every := / var definition in the body.
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			add(id)
		}
		return true
	})
	// Disqualify address-taken vars and vars written inside closures.
	var disqualify func(e ast.Expr)
	disqualify = func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := f.Info.Uses[id].(*types.Var); ok {
				f.untrack(v)
			}
			if v, ok := f.Info.Defs[id].(*types.Var); ok {
				f.untrack(v)
			}
		}
	}
	inClosure := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				disqualify(n.X)
			}
		case *ast.FuncLit:
			inClosure++
			ast.Inspect(n.Body, walk)
			inClosure--
			return false
		case *ast.AssignStmt:
			if inClosure > 0 {
				for _, lhs := range n.Lhs {
					disqualify(lhs)
				}
			}
		case *ast.IncDecStmt:
			if inClosure > 0 {
				disqualify(n.X)
			}
		case *ast.RangeStmt:
			if inClosure > 0 {
				disqualify(n.Key)
				disqualify(n.Value)
			}
		}
		return true
	}
	ast.Inspect(f.Decl.Body, walk)
}

func (f *Func) untrack(v *types.Var) {
	if v == nil || !f.tracked[v] {
		return
	}
	delete(f.tracked, v)
	for i, w := range f.Vars {
		if w == v {
			f.Vars = append(f.Vars[:i], f.Vars[i+1:]...)
			break
		}
	}
}

// defsOf reports the tracked variables a top-level node defines, paired
// with a constructor for their Value. The bool result is false when the
// node defines nothing.
type def struct {
	v    *types.Var
	make func() *Value
}

func (f *Func) newValue(v *types.Var, kind ValueKind, b *flow.Block, site ast.Node) *Value {
	val := &Value{ID: len(f.Values), Var: v, Kind: kind, Block: b, Site: site}
	f.Values = append(f.Values, val)
	return val
}

// nodeDefs extracts definitions from one top-level block node.
func (f *Func) nodeDefs(n ast.Node, b *flow.Block) []def {
	var defs []def
	obj := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if v, ok := f.Info.Defs[id].(*types.Var); ok && f.tracked[v] {
			return v
		}
		if v, ok := f.Info.Uses[id].(*types.Var); ok && f.tracked[v] {
			return v
		}
		return nil
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		switch {
		case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					v := obj(lhs)
					if v == nil {
						continue
					}
					rhs := n.Rhs[i]
					defs = append(defs, def{v, func() *Value {
						val := f.newValue(v, KindExpr, b, n)
						val.Rhs = rhs
						return val
					}})
				}
			} else if len(n.Rhs) == 1 {
				call, isCall := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				for i, lhs := range n.Lhs {
					v := obj(lhs)
					if v == nil {
						continue
					}
					i := i
					defs = append(defs, def{v, func() *Value {
						if isCall {
							val := f.newValue(v, KindCall, b, n)
							val.Call = call
							val.ResIdx = i
							return val
						}
						return f.newValue(v, KindOpaque, b, n)
					}})
				}
			}
		default: // op=
			v := obj(n.Lhs[0])
			if v != nil {
				op := compoundOp(n.Tok)
				rhs := n.Rhs[0]
				defs = append(defs, def{v, func() *Value {
					val := f.newValue(v, KindCompound, b, n)
					val.Op = op
					val.Rhs = rhs
					return val
				}})
			}
		}
	case *ast.IncDecStmt:
		v := obj(n.X)
		if v != nil {
			op := token.ADD
			if n.Tok == token.DEC {
				op = token.SUB
			}
			defs = append(defs, def{v, func() *Value {
				val := f.newValue(v, KindCompound, b, n)
				val.Op = op
				return val
			}})
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v := obj(name)
				if v == nil {
					continue
				}
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				}
				multi := len(vs.Values) == 1 && len(vs.Names) > 1
				defs = append(defs, def{v, func() *Value {
					switch {
					case multi:
						return f.newValue(v, KindOpaque, b, n)
					case rhs != nil:
						val := f.newValue(v, KindExpr, b, n)
						val.Rhs = rhs
						return val
					default:
						val := f.newValue(v, KindZero, b, n)
						return val
					}
				}})
			}
		}
	case *ast.RangeStmt:
		if v := obj(n.Key); v != nil {
			rs := n
			kind := KindOpaque
			switch f.rangeOperand(rs).(type) {
			case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
				kind = KindRangeIndex
			}
			k := kind
			defs = append(defs, def{v, func() *Value {
				val := f.newValue(v, k, b, n)
				val.Range = rs
				return val
			}})
		}
		if v := obj(n.Value); v != nil {
			defs = append(defs, def{v, func() *Value {
				return f.newValue(v, KindOpaque, b, n)
			}})
		}
	}
	return defs
}

// rangeOperand resolves the effective element container type of a range
// statement: slices, arrays (through one pointer), strings, and go 1.22
// integer ranges all produce integer keys. Maps, channels, and funcs
// return a type that the caller maps to KindOpaque.
func (f *Func) rangeOperand(rs *ast.RangeStmt) types.Type {
	t := f.Info.TypeOf(rs.X)
	if t == nil {
		return nil
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	switch u := u.(type) {
	case *types.Slice, *types.Array:
		return u
	case *types.Basic:
		if u.Info()&(types.IsInteger|types.IsString) != 0 {
			return u
		}
	}
	return nil
}

func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return token.ILLEGAL
}

// placePhis runs the pruned-SSA phi placement: the iterated dominance
// frontier of each variable's definition blocks, filtered by block-level
// liveness so dead merges get no phi.
func (f *Func) placePhis() {
	n := len(f.CFG.Blocks)

	// Per-block def set and upward-exposed use set, over top-level nodes.
	defsIn := make([]map[*types.Var]bool, n)
	upUse := make([]map[*types.Var]bool, n)
	for i := range defsIn {
		defsIn[i] = make(map[*types.Var]bool)
		upUse[i] = make(map[*types.Var]bool)
	}
	for _, b := range f.CFG.Blocks {
		for _, node := range b.Nodes {
			// Uses before this node's defs count as upward-exposed if the
			// block hasn't defined the variable yet.
			f.eachUse(node, func(id *ast.Ident, v *types.Var) {
				if !defsIn[b.Index][v] {
					upUse[b.Index][v] = true
				}
			})
			for _, d := range f.nodeDefs(node, b) {
				defsIn[b.Index][d.v] = true
			}
		}
	}

	// Backward liveness to a fixed point.
	liveIn := make([]map[*types.Var]bool, n)
	for i := range liveIn {
		liveIn[i] = make(map[*types.Var]bool)
		for v := range upUse[i] {
			liveIn[i][v] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.CFG.Blocks[i]
			for _, s := range b.Succs {
				for v := range liveIn[s.Index] {
					if defsIn[i][v] || liveIn[i][v] {
						continue
					}
					liveIn[i][v] = true
					changed = true
				}
			}
		}
	}

	// Entry defines every param/result/receiver.
	entryVars := make(map[*types.Var]bool)
	collectSig := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			for _, name := range fld.Names {
				if v, ok := f.Info.Defs[name].(*types.Var); ok && f.tracked[v] {
					entryVars[v] = true
				}
			}
		}
	}
	collectSig(f.Decl.Recv)
	collectSig(f.Decl.Type.Params)
	collectSig(f.Decl.Type.Results)

	// Iterated dominance frontier per variable.
	for _, v := range f.Vars {
		var work []int
		inWork := make([]bool, n)
		for i := range defsIn {
			if defsIn[i][v] {
				work = append(work, i)
				inWork[i] = true
			}
		}
		if entryVars[v] && !inWork[0] {
			work = append(work, 0)
			inWork[0] = true
		}
		hasPhi := make([]bool, n)
		for len(work) > 0 {
			x := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range f.Dom.Frontier[x] {
				if hasPhi[y] || !liveIn[y][v] {
					continue
				}
				hasPhi[y] = true
				blk := f.CFG.Blocks[y]
				val := f.newValue(v, KindPhi, blk, nil)
				phi := &Phi{Value: val}
				val.Phi = phi
				f.Phis[blk] = append(f.Phis[blk], phi)
				if !inWork[y] {
					inWork[y] = true
					work = append(work, y)
				}
			}
		}
	}
	// Stable phi order per block (by variable position in f.Vars).
	pos := make(map[*types.Var]int, len(f.Vars))
	for i, v := range f.Vars {
		pos[v] = i
	}
	for _, phis := range f.Phis {
		sort.Slice(phis, func(i, j int) bool {
			return pos[phis[i].Value.Var] < pos[phis[j].Value.Var]
		})
	}
}

// eachUse visits every use-position identifier of a tracked variable in
// one top-level node, skipping nested function literals, definition
// positions, and selector fields. A RangeStmt is the one composite
// statement the CFG stores whole (header only; its body has its own
// blocks), so only its header expressions are scanned.
func (f *Func) eachUse(node ast.Node, visit func(id *ast.Ident, v *types.Var)) {
	if rs, ok := node.(*ast.RangeStmt); ok {
		f.eachUse(rs.X, visit)
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			ast.Inspect(n.X, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := f.Info.Uses[id].(*types.Var); ok && f.tracked[v] {
						visit(id, v)
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			if v, ok := f.Info.Uses[n].(*types.Var); ok && f.tracked[v] {
				visit(n, v)
			}
		}
		return true
	})
}

// rename walks the dominator tree assigning reaching values to every use
// and filling phi edges.
func (f *Func) rename() {
	stacks := make(map[*types.Var][]*Value)
	push := func(v *types.Var, val *Value) {
		stacks[v] = append(stacks[v], val)
	}
	top := func(v *types.Var) *Value {
		s := stacks[v]
		if len(s) == 0 {
			return nil
		}
		return s[len(s)-1]
	}

	// Entry values.
	entry := f.CFG.Blocks[0]
	addEntry := func(fl *ast.FieldList, kind ValueKind) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			for _, name := range fld.Names {
				if v, ok := f.Info.Defs[name].(*types.Var); ok && f.tracked[v] {
					val := f.newValue(v, kind, entry, nil)
					push(v, val)
				}
			}
		}
	}
	addEntry(f.Decl.Recv, KindParam)
	addEntry(f.Decl.Type.Params, KindParam)
	addEntry(f.Decl.Type.Results, KindZero)

	var visit func(bi int)
	visit = func(bi int) {
		b := f.CFG.Blocks[bi]
		mark := make(map[*types.Var]int)
		snap := func(v *types.Var) {
			if _, ok := mark[v]; !ok {
				mark[v] = len(stacks[v])
			}
		}
		for _, phi := range f.Phis[b] {
			snap(phi.Value.Var)
			push(phi.Value.Var, phi.Value)
		}
		for _, node := range b.Nodes {
			// Resolve uses against the pre-definition stacks: in
			// `x, y = y, x` every RHS (and index/selector on the LHS)
			// reads the old values.
			f.eachUse(node, func(id *ast.Ident, v *types.Var) {
				if f.isDefIdent(node, id) {
					return
				}
				if val := top(v); val != nil {
					f.UseVal[id] = val
					f.UsesOf[val] = append(f.UsesOf[val], id)
				}
			})
			for _, d := range f.nodeDefs(node, b) {
				snap(d.v)
				val := d.make()
				if val.Kind == KindCompound {
					val.Prev = topOrNil(stacks, d.v)
				}
				push(d.v, val)
			}
		}
		for _, s := range b.Succs {
			for _, phi := range f.Phis[s] {
				phi.Edges = append(phi.Edges, PhiEdge{Pred: b, Val: top(phi.Value.Var)})
			}
		}
		for _, c := range f.Dom.Children[bi] {
			visit(c)
		}
		for v, depth := range mark {
			stacks[v] = stacks[v][:depth]
		}
	}
	visit(0)

	// Stable phi edge order for dumps.
	for _, phis := range f.Phis {
		for _, phi := range phis {
			sort.Slice(phi.Edges, func(i, j int) bool {
				return phi.Edges[i].Pred.Index < phi.Edges[j].Pred.Index
			})
		}
	}
}

// topOrNil reads the reaching value of v. Called before the compound's
// own value is pushed, so the stack top is the pre-assignment value.
func topOrNil(stacks map[*types.Var][]*Value, v *types.Var) *Value {
	s := stacks[v]
	if len(s) == 0 {
		return nil
	}
	return s[len(s)-1]
}

// isDefIdent reports whether id is a definition position of node (an LHS
// identifier being assigned, a declared name, or a range binding) rather
// than a use.
func (f *Func) isDefIdent(node ast.Node, id *ast.Ident) bool {
	switch n := node.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			for _, lhs := range n.Lhs {
				if ast.Unparen(lhs) == id {
					return true
				}
			}
		}
		// op= LHS both reads and writes; the read is modeled by Prev, so
		// the identifier itself is a def position.
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			if ast.Unparen(n.Lhs[0]) == id {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(n.X) == id
	case *ast.RangeStmt:
		return ast.Unparen(n.Key) == id || (n.Value != nil && ast.Unparen(n.Value) == id)
	case *ast.DeclStmt:
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if vs, ok := m.(*ast.ValueSpec); ok {
				for _, name := range vs.Names {
					if name == id {
						found = true
					}
				}
			}
			return true
		})
		return found
	}
	return false
}

// ValueOfUse returns the SSA value reaching a use identifier, or nil.
func (f *Func) ValueOfUse(id *ast.Ident) *Value {
	return f.UseVal[id]
}

// Canonical resolves pure copies: for x := y (y an ident), the canonical
// value of x's definition is the canonical value of y's reaching value.
func (f *Func) Canonical(v *Value) *Value {
	for depth := 0; v != nil && depth < 8; depth++ {
		if v.Kind != KindExpr {
			return v
		}
		id, ok := ast.Unparen(v.Rhs).(*ast.Ident)
		if !ok {
			return v
		}
		src := f.UseVal[id]
		if src == nil {
			return v
		}
		v = src
	}
	return v
}

// BlockAt returns the block whose top-level nodes span pos, or nil.
func (f *Func) BlockAt(pos token.Pos) *flow.Block {
	for n, b := range f.NodeBlock {
		if n.Pos() <= pos && pos <= n.End() {
			return b
		}
	}
	return nil
}

// SameValueExpr reports whether two expressions are structurally equal
// AND every tracked identifier in them resolves to the same SSA value.
// Untracked identifiers (except nil/true/false and constants) fail the
// match, because their value may differ between the two sites.
func (f *Func) SameValueExpr(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		if !ok || ae.Name != be.Name {
			return false
		}
		av, bv := f.UseVal[ae], f.UseVal[be]
		if av != nil || bv != nil {
			return f.Canonical(av) == f.Canonical(bv) && av != nil && bv != nil
		}
		// Both unresolved: accept universe names and constants only.
		obj := f.Info.Uses[ae]
		if obj == nil || obj != f.Info.Uses[be] {
			return false
		}
		switch obj.(type) {
		case *types.Const, *types.Nil, *types.TypeName, *types.Builtin, *types.Func:
			return true
		}
		return false
	case *ast.BasicLit:
		be, ok := b.(*ast.BasicLit)
		return ok && ae.Kind == be.Kind && ae.Value == be.Value
	case *ast.UnaryExpr:
		be, ok := b.(*ast.UnaryExpr)
		return ok && ae.Op == be.Op && f.SameValueExpr(ae.X, be.X)
	case *ast.BinaryExpr:
		be, ok := b.(*ast.BinaryExpr)
		return ok && ae.Op == be.Op && f.SameValueExpr(ae.X, be.X) && f.SameValueExpr(ae.Y, be.Y)
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		return ok && ae.Sel.Name == be.Sel.Name && f.SameValueExpr(ae.X, be.X)
	case *ast.CallExpr:
		// len(x) and cap(x) are pure; other calls never match.
		be, ok := b.(*ast.CallExpr)
		if !ok || len(ae.Args) != 1 || len(be.Args) != 1 {
			return false
		}
		an, aok := ast.Unparen(ae.Fun).(*ast.Ident)
		bn, bok := ast.Unparen(be.Fun).(*ast.Ident)
		if !aok || !bok || an.Name != bn.Name || (an.Name != "len" && an.Name != "cap") {
			return false
		}
		if _, isB := f.Info.Uses[an].(*types.Builtin); !isB {
			return false
		}
		return f.SameValueExpr(ae.Args[0], be.Args[0])
	}
	return false
}
