package ssa

import (
	"fmt"
	"sort"
	"strings"
)

// DumpPhis renders phi placement as stable text for golden tests: one
// line per block that has phis, listing each phi variable and the
// predecessor blocks feeding it.
func (f *Func) DumpPhis() string {
	type line struct {
		idx  int
		text string
	}
	var lines []line
	for b, phis := range f.Phis {
		var parts []string
		for _, phi := range phis {
			var preds []string
			for _, e := range phi.Edges {
				tag := "?"
				if e.Val != nil {
					tag = kindTag(e.Val.Kind)
				}
				preds = append(preds, fmt.Sprintf("b%d:%s", e.Pred.Index, tag))
			}
			parts = append(parts, fmt.Sprintf("%s(%s)", phi.Value.Var.Name(), strings.Join(preds, " ")))
		}
		lines = append(lines, line{b.Index, fmt.Sprintf("b%d %s: %s", b.Index, b.Kind, strings.Join(parts, ", "))})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].idx < lines[j].idx })
	var sb strings.Builder
	for _, l := range lines {
		sb.WriteString(l.text)
		sb.WriteString("\n")
	}
	if sb.Len() == 0 {
		return "(no phis)\n"
	}
	return sb.String()
}

func kindTag(k ValueKind) string {
	switch k {
	case KindParam:
		return "param"
	case KindZero:
		return "zero"
	case KindExpr:
		return "expr"
	case KindCompound:
		return "compound"
	case KindCall:
		return "call"
	case KindRangeIndex:
		return "rangeidx"
	case KindPhi:
		return "phi"
	}
	return "opaque"
}
