package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The analysis cache: one content-addressed entry per analyzed unit,
// holding its diagnostics and its exported facts. The entry key is a hash
// over everything the unit's result can depend on —
//
//	(driver version, toolchain version, platform, analyzer set,
//	 import path, source file contents, and per direct dependency:
//	 its published cache key + transitive fact hash when it is a unit
//	 of the run, or a recursive source hash when it is not)
//
// — so a warm run replays byte-identical diagnostics without parsing,
// type-checking, or even resolving export data, and an edit to a
// dependency's source or to any fact it (transitively) exports re-analyzes
// exactly the units that could observe the change. Entries are immutable
// once written: a key collision is a content match by construction, so
// concurrent writers racing on one key are harmless.

// A Cache is a directory of immutable analysis entries.
type Cache struct {
	Dir string
}

// OpenCache returns a cache rooted at dir, creating it if needed.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("analysis cache: %v", err)
	}
	return &Cache{Dir: dir}, nil
}

// cacheEntry is the stored result of one unit analysis.
type cacheEntry struct {
	ImportPath  string          `json:"importPath"`
	Diagnostics []Diagnostic    `json:"diagnostics"`
	Facts       json.RawMessage `json:"facts"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key+".json")
}

// get loads the entry for key, reporting a miss for absent or unreadable
// entries (a corrupt entry is re-derived, never trusted).
func (c *Cache) get(key string) (*cacheEntry, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	return &e, true
}

// put stores the entry under key, atomically via rename so readers never
// see a torn write. Errors are deliberately dropped: a failed cache write
// costs a future re-analysis, nothing else.
func (c *Cache) put(key string, e *cacheEntry) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.Dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
	}
}

// A hasher accumulates the fields of a cache key. Every Add is
// length-prefixed so field boundaries cannot alias.
type hasher struct {
	h interface {
		io.Writer
		Sum([]byte) []byte
	}
}

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (h *hasher) Add(field string, data []byte) {
	fmt.Fprintf(h.h, "%s:%d\n", field, len(data))
	h.h.Write(data)
}

func (h *hasher) AddString(field, s string) { h.Add(field, []byte(s)) }

func (h *hasher) AddFile(field, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	h.Add(field, data)
	return nil
}

func (h *hasher) Sum() string { return hex.EncodeToString(h.h.Sum(nil)) }

// A fileHashCache memoizes content hashes per file for one driver run.
// Export-data files are shared by every dependent unit, so hashing them
// once instead of once per dependent is most of the warm-path win.
type fileHashCache struct {
	mu sync.Mutex
	m  map[string]string
}

func newFileHashCache() *fileHashCache {
	return &fileHashCache{m: make(map[string]string)}
}

// hash returns the hex content hash of path, computing it at most once.
func (c *fileHashCache) hash(path string) (string, error) {
	c.mu.Lock()
	if sum, ok := c.m[path]; ok {
		c.mu.Unlock()
		return sum, nil
	}
	c.mu.Unlock()

	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	hexSum := hex.EncodeToString(sum[:])

	c.mu.Lock()
	c.m[path] = hexSum
	c.mu.Unlock()
	return hexSum, nil
}
