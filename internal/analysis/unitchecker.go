package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// The vet unit-checker protocol, reverse-engineered from what the go
// command actually sends (and pinned by TestVettoolProtocol):
//
//	tool -flags          print a JSON array of the tool's flags
//	tool -V=full         print "name version ..." for build caching
//	tool <unit>.cfg      analyze one package unit described by the config
//
// For every unit the go command expects the tool to write the facts file
// named by VetxOutput, and supplies the dependencies' facts files in
// PackageVetx. Units with VetxOnly=true exist only to produce facts for
// dependents: for packages inside this module the fact-producing analyzers
// run with diagnostics suppressed (their summaries are what dependents
// import); everything else gets an empty facts file and no analysis.
// Diagnostics go to stderr as file:line:col lines and make the tool exit
// 2, which `go vet` relays as failure.

// vetConfig is the subset of the vet.cfg JSON the tool consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: it dispatches between the
// vet protocol (when invoked by `go vet -vettool=...`) and the standalone
// driver (`repolint [packages...]`, defaulting to ./...).
func Main(analyzers ...*Analyzer) {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-flags":
			fmt.Println("[]")
			return
		case strings.HasPrefix(a, "-V"):
			// Tool identity for the go command's action cache. Changing
			// Version invalidates cached vet results after analyzer edits.
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), Version)
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], analyzers))
	}
	os.Exit(runStandalone(args, analyzers))
}

// Version participates in the go command's content hash for cached vet
// results and in every analysis-cache key; bump it when analyzer behaviour
// changes.
const Version = "repolint-5.0"

// modulePrefix gates which dependency-only vet units are worth running the
// fact producers on: facts only exist for this module's own packages.
const modulePrefix = "logicregression"

func runUnit(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	reg, err := NewFactRegistry(analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	writeFacts := func(pf *PackageFacts) int {
		if cfg.VetxOutput == "" {
			return 0
		}
		var blob []byte
		if pf != nil {
			var err error
			if blob, err = pf.Encode(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		if err := os.WriteFile(cfg.VetxOutput, blob, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	inModule := strings.HasPrefix(cfg.ImportPath, modulePrefix)
	run := analyzers
	if cfg.VetxOnly {
		if !inModule {
			return writeFacts(nil)
		}
		// Dependency-only unit of this module: only the fact producers
		// matter, and only their facts — not their diagnostics, which
		// the unit's own `go vet` invocation already reported.
		run = nil
		for _, a := range analyzers {
			if len(a.FactTypes) > 0 {
				run = append(run, a)
			}
		}
		if len(run) == 0 {
			return writeFacts(nil)
		}
	}
	// Packages made only of test files (external _test packages) have
	// nothing to analyze; skip the typecheck entirely.
	production := 0
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			production++
		}
	}
	if production == 0 {
		return writeFacts(nil)
	}

	// Dependency facts, decoded lazily from the .vetx files the go
	// command hands over.
	decoded := make(map[string]*PackageFacts)
	reader := FactReader(func(path string) *PackageFacts {
		if pf, ok := decoded[path]; ok {
			return pf
		}
		var pf *PackageFacts
		if file, ok := cfg.PackageVetx[path]; ok {
			if blob, err := os.ReadFile(file); err == nil {
				pf, _ = DecodePackageFacts(blob, reg)
			}
		}
		decoded[path] = pf
		return pf
	})

	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeFacts(nil)
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	diags, exported, err := CheckFilesWithFacts(fset, files, cfg.ImportPath,
		cfg.PackageFile, cfg.ImportMap, run, reader)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeFacts(nil)
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if rc := writeFacts(exported); rc != 0 {
		return rc
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func runStandalone(args []string, analyzers []*Analyzer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	basePath := fs.String("baseline", "",
		"ratchet per-analyzer finding counts against this JSON file")
	writeBase := fs.Bool("write-baseline", false,
		"rewrite -baseline with the current counts")
	format := fs.String("format", "text",
		"diagnostic output format: text, json, or sarif")
	parallel := fs.Int("parallel", runtime.NumCPU(),
		"packages analyzed concurrently (1 = sequential; scheduling is topological either way)")
	cacheDir := fs.String("cache", os.Getenv("REPOLINT_CACHE"),
		"analysis cache directory; unchanged packages replay from it (default $REPOLINT_CACHE, empty = off)")
	stats := fs.Bool("stats", false,
		"print unit, cache-hit, and wall-clock stats to stderr")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()

	start := time.Now()
	units, err := LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	driver := &Driver{Analyzers: analyzers, Parallel: *parallel}
	if *cacheDir != "" {
		cache, err := OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		driver.Cache = cache
	}
	results, rstats, err := driver.Run(units)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	exit := 0
	counts := make(map[string]int, len(analyzers))
	for _, a := range analyzers {
		counts[a.Name] = 0
	}
	var all []Diagnostic
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, r.Err)
			exit = 1
			continue
		}
		for _, d := range r.Diags {
			counts[d.Analyzer]++
		}
		all = append(all, r.Diags...)
	}
	if len(all) > 0 && *basePath == "" {
		exit = 2
	}
	switch *format {
	case "text":
		for _, d := range all {
			fmt.Printf("%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
	case "json":
		if err := WriteJSON(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case "sarif":
		if err := WriteSARIF(os.Stdout, analyzers, all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "repolint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 1
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "repolint: %d units (%d cached, %d failed), %d analyzers, %.2fs wall\n",
			rstats.Units, rstats.Cached, rstats.Failed, len(analyzers), time.Since(start).Seconds())
	}
	if *basePath != "" {
		if rc := ratchet(*basePath, counts, *writeBase); rc != 0 {
			return rc
		}
	}
	return exit
}

// baselineFile is the REPOLINT_BASELINE.json schema: a finding-count floor
// per analyzer. Counts only go down — any analyzer reporting more findings
// than its entry (or missing from the file entirely) fails the ratchet, and
// improvements are flagged so the floor gets tightened.
type baselineFile struct {
	Analyzers map[string]int `json:"analyzers"`
}

// ratchet compares the run's per-analyzer counts against the baseline file.
// With write set it records the current counts as the new floor instead.
// The comparison is two-sided: baseline entries naming analyzers that no
// longer exist are errors too — a stale key is a ratchet that silently
// stopped ratcheting.
func ratchet(path string, counts map[string]int, write bool) int {
	if write {
		// encoding/json emits map keys sorted, so the file is stable.
		data, err := json.MarshalIndent(baselineFile{Analyzers: counts}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "repolint: wrote baseline %s\n", path)
		return 0
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", path, err)
		return 1
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	rc := 0
	for _, name := range names {
		limit, known := base.Analyzers[name]
		switch {
		case !known && counts[name] > 0:
			fmt.Fprintf(os.Stderr, "repolint: ratchet: %q is not in the baseline: %d findings\n",
				name, counts[name])
			rc = 2
		case counts[name] > limit:
			fmt.Fprintf(os.Stderr, "repolint: ratchet: %q regressed: %d findings, baseline %d\n",
				name, counts[name], limit)
			rc = 2
		case counts[name] < limit:
			fmt.Fprintf(os.Stderr, "repolint: ratchet: %q improved: %d findings, baseline %d (tighten with -write-baseline)\n",
				name, counts[name], limit)
		}
	}
	stale := make([]string, 0)
	for name := range base.Analyzers {
		if _, registered := counts[name]; !registered {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		fmt.Fprintf(os.Stderr, "repolint: ratchet: baseline entry %q names no registered analyzer; "+
			"drop it (or fix the registration) so the floor keeps meaning something\n", name)
		rc = 2
	}
	return rc
}
