package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The vet unit-checker protocol, reverse-engineered from what the go
// command actually sends (and pinned by TestVettoolProtocol):
//
//	tool -flags          print a JSON array of the tool's flags
//	tool -V=full         print "name version ..." for build caching
//	tool <unit>.cfg      analyze one package unit described by the config
//
// For every unit the go command expects the tool to write the facts file
// named by VetxOutput; units with VetxOnly=true exist only to produce facts
// for dependents. Our analyzers are fact-free, so those units get an empty
// facts file and no analysis. Diagnostics go to stderr as file:line:col
// lines and make the tool exit 2, which `go vet` relays as failure.

// vetConfig is the subset of the vet.cfg JSON the tool consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: it dispatches between the
// vet protocol (when invoked by `go vet -vettool=...`) and the standalone
// driver (`repolint [packages...]`, defaulting to ./...).
func Main(analyzers ...*Analyzer) {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-flags":
			fmt.Println("[]")
			return
		case strings.HasPrefix(a, "-V"):
			// Tool identity for the go command's action cache. Changing
			// VERSION invalidates cached vet results after analyzer edits.
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), version)
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], analyzers))
	}
	os.Exit(runStandalone(args, analyzers))
}

// version participates in the go command's content hash for cached vet
// results; bump it when analyzer behaviour changes.
const version = "repolint-3.0"

func runUnit(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist for the go command's bookkeeping even
	// though these analyzers produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Packages made only of test files (external _test packages) have
	// nothing to analyze; skip the typecheck entirely.
	production := 0
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			production++
		}
	}
	if production == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	diags, err := CheckFiles(fset, files, cfg.ImportPath, cfg.PackageFile, cfg.ImportMap, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func runStandalone(args []string, analyzers []*Analyzer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	basePath := fs.String("baseline", "",
		"ratchet per-analyzer finding counts against this JSON file")
	writeBase := fs.Bool("write-baseline", false,
		"rewrite -baseline with the current counts")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()

	units, err := LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	counts := make(map[string]int, len(analyzers))
	for _, a := range analyzers {
		counts[a.Name] = 0
	}
	for _, u := range units {
		diags, err := u.Analyze(analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
			counts[d.Analyzer]++
		}
		if len(diags) > 0 && *basePath == "" {
			exit = 2
		}
	}
	if *basePath != "" {
		if rc := ratchet(*basePath, counts, *writeBase); rc != 0 {
			return rc
		}
	}
	return exit
}

// baselineFile is the REPOLINT_BASELINE.json schema: a finding-count floor
// per analyzer. Counts only go down — any analyzer reporting more findings
// than its entry (or missing from the file entirely) fails the ratchet, and
// improvements are flagged so the floor gets tightened.
type baselineFile struct {
	Analyzers map[string]int `json:"analyzers"`
}

// ratchet compares the run's per-analyzer counts against the baseline file.
// With write set it records the current counts as the new floor instead.
func ratchet(path string, counts map[string]int, write bool) int {
	if write {
		// encoding/json emits map keys sorted, so the file is stable.
		data, err := json.MarshalIndent(baselineFile{Analyzers: counts}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "repolint: wrote baseline %s\n", path)
		return 0
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", path, err)
		return 1
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	rc := 0
	for _, name := range names {
		limit, known := base.Analyzers[name]
		switch {
		case !known && counts[name] > 0:
			fmt.Fprintf(os.Stderr, "repolint: ratchet: %q is not in the baseline: %d findings\n",
				name, counts[name])
			rc = 2
		case counts[name] > limit:
			fmt.Fprintf(os.Stderr, "repolint: ratchet: %q regressed: %d findings, baseline %d\n",
				name, counts[name], limit)
			rc = 2
		case counts[name] < limit:
			fmt.Fprintf(os.Stderr, "repolint: ratchet: %q improved: %d findings, baseline %d (tighten with -write-baseline)\n",
				name, counts[name], limit)
		}
	}
	return rc
}
