package astutil

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheck parses and type-checks one source file against the compiled
// standard library, returning the file and its type info.
func typecheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

const src = `package x

import "sync"

type T struct{ mu sync.Mutex }

func (t *T) Hit() { t.mu.Lock() }

func calls(t *T, f func()) {
	(t.Hit)()
	f()
	(panic)("x")
	recover()
	println("not a func object")
}
`

// collectCalls returns every call expression in source order.
func collectCalls(f *ast.File) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	return calls
}

func TestCalleeFunc(t *testing.T) {
	_, f, info := typecheck(t, src)
	calls := collectCalls(f)
	// Calls in source order: t.mu.Lock(), (t.Hit)(), f(), (panic)("x"),
	// recover(), println(...).
	if got := CalleeFunc(info, calls[0]); got == nil || got.Name() != "Lock" {
		t.Errorf("calls[0]: got %v, want sync.Mutex.Lock", got)
	}
	if got := CalleeFunc(info, calls[1]); got == nil || got.Name() != "Hit" {
		t.Errorf("calls[1]: got %v, want T.Hit (through parens)", got)
	}
	for i := 2; i < len(calls); i++ {
		if got := CalleeFunc(info, calls[i]); got != nil {
			t.Errorf("calls[%d]: got %v, want nil (indirect/builtin)", i, got)
		}
	}
}

func TestIsBuiltin(t *testing.T) {
	_, f, info := typecheck(t, src)
	calls := collectCalls(f)
	if !IsBuiltin(info, calls[3], "panic") {
		t.Error("parenthesized panic call not recognized as builtin")
	}
	if !IsBuiltin(info, calls[4], "recover") {
		t.Error("recover call not recognized as builtin")
	}
	if IsBuiltin(info, calls[0], "panic") {
		t.Error("method call recognized as builtin panic")
	}
	if IsBuiltin(info, calls[2], "panic") {
		t.Error("indirect call recognized as builtin panic")
	}
}

func TestUnparen(t *testing.T) {
	inner := &ast.Ident{Name: "x"}
	wrapped := ast.Expr(inner)
	for i := 0; i < 3; i++ {
		wrapped = &ast.ParenExpr{X: wrapped}
	}
	if Unparen(wrapped) != inner {
		t.Error("Unparen did not strip nested parentheses")
	}
	if Unparen(inner) != inner {
		t.Error("Unparen changed an unparenthesized expression")
	}
}

func TestImportedPkg(t *testing.T) {
	_, f, info := typecheck(t, `package x
import "sync"
var once sync.Once
var notPkg = struct{ F int }{}
var y = notPkg.F
`)
	var sels []*ast.SelectorExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectorExpr); ok {
			sels = append(sels, s)
		}
		return true
	})
	// sync.Once then notPkg.F.
	if p := ImportedPkg(info, sels[0]); p == nil || p.Imported().Path() != "sync" {
		t.Errorf("sync.Once: got %v, want package sync", p)
	}
	if p := ImportedPkg(info, sels[1]); p != nil {
		t.Errorf("notPkg.F: got %v, want nil", p)
	}
}

func TestRootIdent(t *testing.T) {
	_, f, _ := typecheck(t, `package x
type S struct{ A []S }
func g(s *S) { _ = (*s).A[0].A }
`)
	var found *ast.Ident
	ast.Inspect(f, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && found == nil {
			found = RootIdent(sel)
		}
		return true
	})
	if found == nil || found.Name != "s" {
		t.Errorf("RootIdent: got %v, want s", found)
	}
	if RootIdent(&ast.CallExpr{Fun: &ast.Ident{Name: "f"}}) != nil {
		t.Error("RootIdent of a call result should be nil")
	}
}

func TestNamedTypeAndRecvType(t *testing.T) {
	_, f, info := typecheck(t, src)
	var hit *types.Func
	ast.Inspect(f, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "Hit" {
			hit = info.Defs[fd.Name].(*types.Func)
		}
		return true
	})
	recv := RecvType(hit)
	if recv == nil || !NamedType(recv, "x", "T") {
		t.Errorf("RecvType(Hit) = %v, want *x.T", recv)
	}
	if NamedType(recv, "x", "U") {
		t.Error("NamedType matched the wrong name")
	}
	if RecvType(nil) != nil {
		t.Error("RecvType(nil) should be nil")
	}
}
