// Package astutil holds the small AST and type-resolution helpers shared by
// the repo analyzers (internal/analysis/analyzers) and the dataflow engine
// (internal/analysis/flow). They were originally private to the analyzers
// package; the flow engine needs the same resolution logic, so they live in
// one exported place with their own tests instead of two drifting copies.
package astutil

import (
	"go/ast"
	"go/types"
)

// Unparen strips any parentheses around e.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// CalleeFunc resolves the function or method a call statically invokes, or
// nil for indirect calls through function values (and for builtins and type
// conversions, which are not *types.Func).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltin reports whether call invokes the named universe builtin
// (panic, recover, close, ...), seen through parentheses.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// ImportedPkg returns the package a qualified identifier pkg.Sel refers to,
// or nil when sel.X is not a package name.
func ImportedPkg(info *types.Info, sel *ast.SelectorExpr) *types.PkgName {
	id, ok := Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	pkgName, _ := info.Uses[id].(*types.PkgName)
	return pkgName
}

// RootIdent returns the leftmost identifier of a selector/index/star/paren
// chain (x in x.f[i].g), or nil when the chain is rooted elsewhere (a call
// result, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// NamedType reports whether t (or the pointee, when t is a pointer) is the
// named type pkgPath.name.
func NamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return pkgPath == "" && obj.Name() == name
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// RecvType returns the receiver type of a method, or nil for package-level
// functions and nil fn.
func RecvType(fn *types.Func) types.Type {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// ObjectOf resolves the object an identifier defines or uses.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
