package analysis

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// typecheck parses and type-checks a dependency-free source string, giving
// the facts tests real types.Object values to address.
func typecheck(t *testing.T, path, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := (&types.Config{}).Check(path, fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

const factFixtureSrc = `package p

type T struct{}

func (T) M() {}

func (*T) PM() {}

type hidden struct{}

func (hidden) M() {}

func F() {}

var V int

func unexported() {}
`

// method resolves a named type's method by name.
func method(t *testing.T, pkg *types.Package, typeName, name string) types.Object {
	t.Helper()
	named := pkg.Scope().Lookup(typeName).Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	t.Fatalf("no method %s.%s", typeName, name)
	return nil
}

func TestObjectFactKey(t *testing.T) {
	pkg := typecheck(t, "example.com/p", factFixtureSrc)
	lookup := pkg.Scope().Lookup

	cases := []struct {
		obj  types.Object
		key  string
		want bool
	}{
		{lookup("F"), "F", true},
		{lookup("V"), "V", true},
		{lookup("T"), "T", true},
		{method(t, pkg, "T", "M"), "T.M", true},
		{method(t, pkg, "T", "PM"), "T.PM", true}, // pointer receiver unwraps
		{lookup("unexported"), "", false},
		{lookup("hidden"), "", false},
		{method(t, pkg, "hidden", "M"), "", false}, // exported method, hidden type
		{nil, "", false},
	}
	for _, tc := range cases {
		key, ok := ObjectFactKey(tc.obj)
		if key != tc.key || ok != tc.want {
			t.Errorf("ObjectFactKey(%v) = %q, %v; want %q, %v", tc.obj, key, ok, tc.key, tc.want)
		}
	}
}

// testFact is a serializable fact with a payload, so round trips can check
// the value and not just presence.
type testFact struct {
	N int
}

func (*testFact) AFact() {}

// otherFact exists to be absent from registries.
type otherFact struct{}

func (*otherFact) AFact() {}

func TestFactsRoundTrip(t *testing.T) {
	pkg := typecheck(t, "example.com/p", factFixtureSrc)
	reg := FactRegistry{"testFact": reflect.TypeOf(&testFact{})}

	exported := NewPackageFacts(pkg.Path())
	pass := &Pass{Pkg: pkg, exported: exported}
	pass.ExportObjectFact(pkg.Scope().Lookup("F"), &testFact{N: 7})
	pass.ExportObjectFact(method(t, pkg, "T", "M"), &testFact{N: 9})
	pass.ExportObjectFact(pkg.Scope().Lookup("unexported"), &testFact{N: 1}) // dropped
	if exported.Len() != 2 {
		t.Fatalf("exported %d facts, want 2 (unexported object must be a no-op)", exported.Len())
	}

	blob, err := exported.Encode()
	if err != nil {
		t.Fatal(err)
	}
	again, err := exported.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("Encode is not deterministic")
	}

	decoded, err := DecodePackageFacts(blob, reg)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != 2 {
		t.Fatalf("decoded %d facts, want 2", decoded.Len())
	}

	// A downstream pass in another package reads through a FactReader.
	down := typecheck(t, "example.com/q", "package q")
	reader := FactReader(func(path string) *PackageFacts {
		if path == pkg.Path() {
			return decoded
		}
		return nil
	})
	dpass := &Pass{Pkg: down, readFacts: reader}
	var got testFact
	if !dpass.ImportObjectFact(pkg.Scope().Lookup("F"), &got) || got.N != 7 {
		t.Errorf("ImportObjectFact(F) = %v, %d; want true, 7", got, got.N)
	}
	if !dpass.ImportObjectFact(method(t, pkg, "T", "M"), &got) || got.N != 9 {
		t.Errorf("ImportObjectFact(T.M) = %v, %d; want true, 9", got, got.N)
	}
	if dpass.ImportObjectFact(pkg.Scope().Lookup("V"), &got) {
		t.Error("ImportObjectFact(V) found a fact that was never exported")
	}
	var other otherFact
	if dpass.ImportObjectFact(pkg.Scope().Lookup("F"), &other) {
		t.Error("ImportObjectFact matched a fact of a different type")
	}

	// The exporting pass reads its own facts back without a reader.
	if !pass.ImportObjectFact(pkg.Scope().Lookup("F"), &got) || got.N != 7 {
		t.Error("same-package ImportObjectFact did not read back the export")
	}
}

func TestDecodeSkipsUnknownFactTypes(t *testing.T) {
	pkg := typecheck(t, "example.com/p", factFixtureSrc)
	exported := NewPackageFacts(pkg.Path())
	pass := &Pass{Pkg: pkg, exported: exported}
	pass.ExportObjectFact(pkg.Scope().Lookup("F"), &testFact{N: 3})
	blob, err := exported.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodePackageFacts(blob, FactRegistry{})
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != 0 {
		t.Errorf("decode with an empty registry kept %d facts, want 0", decoded.Len())
	}
	if pf, err := DecodePackageFacts(nil, FactRegistry{}); err != nil || pf != nil {
		t.Errorf("decoding an empty blob = %v, %v; want nil, nil", pf, err)
	}
}

func TestFactRegistry(t *testing.T) {
	mk := func(name string, facts ...Fact) *Analyzer {
		return &Analyzer{Name: name, FactTypes: facts, Run: func(*Pass) error { return nil }}
	}
	reg, err := NewFactRegistry([]*Analyzer{
		mk("a", &testFact{}),
		mk("b", &testFact{}), // same type twice is fine
		mk("c", &otherFact{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reg) != 2 {
		t.Fatalf("registry has %d entries, want 2", len(reg))
	}
	if _, err := NewFactRegistry([]*Analyzer{mk("bad", nonPointerFact{})}); err == nil {
		t.Error("non-pointer fact type was accepted")
	}
}

type nonPointerFact struct{}

func (nonPointerFact) AFact() {}
