package template

// Affine (GF(2)-linear) template family — an EXTENSION beyond the paper.
// Functions of the form
//
//	z = b ⊕ x_{i1} ⊕ x_{i2} ⊕ ... ⊕ x_{ik}
//
// are the nemesis of sampling-based decision trees (every variable looks
// maximally significant and no subcube is constant), yet they are exactly
// learnable from O(|I|) queries by solving a linear system over GF(2).
// Screening is cheap: collect |I|+slack samples, solve, and verify the
// candidate on fresh targeted probes. Miter-style NEQ outputs are often
// affine or nearly so, which is precisely the hard tail of Table II.
//
// Gated behind Config.ExtendedTemplates alongside the bitwise family.

import (
	"math/rand"

	"logicregression/internal/circuit"
	"logicregression/internal/gf2"
	"logicregression/internal/oracle"
	"logicregression/internal/sampling"
)

// AffineMatch records z = Const ⊕ (⊕_{i∈Inputs} x_i) for output Out.
type AffineMatch struct {
	Out    int
	Inputs []int // input indices in the parity, ascending
	Const  bool
}

// Predict evaluates the match on an assignment.
func (am AffineMatch) Predict(assignment []bool) bool {
	v := am.Const
	for _, i := range am.Inputs {
		v = v != assignment[i]
	}
	return v
}

// Synthesize builds the parity as an XOR tree.
func (am AffineMatch) Synthesize(c *circuit.Circuit, piSigs []circuit.Signal) circuit.Signal {
	sigs := make([]circuit.Signal, len(am.Inputs))
	for k, i := range am.Inputs {
		sigs[k] = piSigs[i]
	}
	out := c.XorTree(sigs)
	if am.Const {
		out = c.NotGate(out)
	}
	return out
}

// detectAffine screens every output for a GF(2)-affine form. The constant b
// is folded in as an extra always-one variable.
func detectAffine(o oracle.Oracle, skip map[int]bool, cfg Config, rng *rand.Rand) []AffineMatch {
	n := o.NumInputs()
	nOut := o.NumOutputs()
	samples := n + 65 // overdetermined: full rank w.h.p. plus slack

	// Shared sample matrix.
	type probe struct {
		in  []bool
		out []bool
	}
	probes := make([]probe, 0, samples)
	for k := 0; k < samples; k++ {
		a := sampling.RandomAssignment(rng, n, 0.5, nil)
		probes = append(probes, probe{in: a, out: o.Eval(a)})
	}

	var matches []AffineMatch
	for po := 0; po < nOut; po++ {
		if skip[po] {
			continue
		}
		sys := gf2.NewSystem(n + 1) // unknowns: coefficients + constant
		for _, p := range probes {
			row := gf2.NewRow(n + 1)
			for i, v := range p.in {
				row.Set(i, v)
			}
			row.Set(n, true) // the affine constant
			sys.AddEquation(row, p.out[po])
		}
		sol, ok := sys.Solve()
		if !ok {
			continue // provably not affine
		}
		am := AffineMatch{Out: po, Const: sol.Get(n)}
		for i := 0; i < n; i++ {
			if sol.Get(i) {
				am.Inputs = append(am.Inputs, i)
			}
		}
		if verifyAffine(o, am, cfg, rng) {
			matches = append(matches, am)
		}
	}
	return matches
}

// verifyAffine checks the candidate on fresh probes across the bias pool —
// an underdetermined system can be consistent by luck, so generalization is
// tested before acceptance.
func verifyAffine(o oracle.Oracle, am AffineMatch, cfg Config, rng *rand.Rand) bool {
	n := o.NumInputs()
	for k := 0; k < cfg.Verify; k++ {
		a := sampling.RandomAssignment(rng, n, cfg.Ratios[k%len(cfg.Ratios)], nil)
		if o.Eval(a)[am.Out] != am.Predict(a) {
			return false
		}
	}
	return true
}
