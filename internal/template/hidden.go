package template

import (
	"math/rand"

	"logicregression/internal/circuit"
	"logicregression/internal/names"
	"logicregression/internal/oracle"
	"logicregression/internal/sampling"
)

// HiddenMatch records a comparator subcircuit that is not a primary output
// itself but whose value was made observable at output Out under a special
// context assignment of the remaining inputs (Sec. IV-B1, Example 2).
type HiddenMatch struct {
	CompMatch
	// Context is the propagating assignment: with the non-vector inputs
	// fixed to it, output Out equals the (possibly negated) predicate.
	Context []bool
}

// DetectHidden searches for a hidden comparator over the vector pair
// (v1,v2) observable at any output. It tries `tries` random context
// assignments on the inputs outside the two vectors; under each context it
// samples random operand values and screens all predicates and polarities,
// then verifies survivors with further targeted probes.
func DetectHidden(o oracle.Oracle, v1, v2 names.Vector, tries int, cfg Config, rng *rand.Rand) (HiddenMatch, bool) {
	cfg = cfg.withDefaults()
	n := o.NumInputs()
	inVec := make([]bool, n)
	for _, p := range v1.Ports {
		inVec[p] = true
	}
	for _, p := range v2.Ports {
		inVec[p] = true
	}

	for t := 0; t < tries; t++ {
		ctx := sampling.RandomAssignment(rng, n, cfg.Ratios[t%len(cfg.Ratios)], nil)
		// Collect screening samples under this context.
		type obs struct {
			x1, x2 uint64
			out    []bool
		}
		samples := make([]obs, 0, cfg.Samples)
		for s := 0; s < cfg.Samples; s++ {
			a := append([]bool(nil), ctx...)
			x1 := rng.Uint64() & widthMask(v1.Width())
			x2 := rng.Uint64() & widthMask(v2.Width())
			v1.Encode(x1, a)
			v2.Encode(x2, a)
			samples = append(samples, obs{x1: x1, x2: x2, out: o.Eval(a)})
		}
		for po := 0; po < o.NumOutputs(); po++ {
			for op := EQ; op < numPredicates; op++ {
				posOK, negOK := true, true
				varied := false
				first := op.Eval(samples[0].x1, samples[0].x2)
				for _, s := range samples {
					p := op.Eval(s.x1, s.x2)
					if p != first {
						varied = true
					}
					if s.out[po] != p {
						posOK = false
					}
					if s.out[po] == p {
						negOK = false
					}
					if !posOK && !negOK {
						break
					}
				}
				if !varied {
					continue // cannot distinguish the predicate from a constant
				}
				for _, neg := range []bool{false, true} {
					if neg && !negOK || !neg && !posOK {
						continue
					}
					hm := HiddenMatch{
						CompMatch: CompMatch{Out: po, Op: op, V1: v1, V2: &v2, Negated: neg},
						Context:   ctx,
					}
					if verifyHidden(o, hm, cfg, rng) {
						return hm, true
					}
				}
			}
		}
	}
	return HiddenMatch{}, false
}

// verifyHidden re-probes the match under its context with operand pairs
// driven to both predicate values.
func verifyHidden(o oracle.Oracle, hm HiddenMatch, cfg Config, rng *rand.Rand) bool {
	for k := 0; k < cfg.Verify; k++ {
		want := k%2 == 0
		x1, x2, ok := makePair(hm.Op, want, hm.V1.Width(), hm.V2.Width(), rng)
		if !ok {
			return false
		}
		a := append([]bool(nil), hm.Context...)
		hm.V1.Encode(x1, a)
		hm.V2.Encode(x2, a)
		if o.Eval(a)[hm.Out] != (want != hm.Negated) {
			return false
		}
	}
	return true
}

// Compressed is the input-compressed oracle of Example 2: the comparator
// output O_s becomes a new (last) primary input, the vector ports are
// discarded, and queries realize the delegate value through representative
// operand pairs. The compression is exact when O_s dominates all paths from
// the discarded inputs to the outputs (the paper's assumption); otherwise
// the downstream accuracy check exposes the mismatch.
type Compressed struct {
	inner   oracle.Oracle
	cm      CompMatch // the delegate subfunction (vector-vector form)
	keep    []int     // old input index per new input (delegate excluded)
	inNames []string
	repT    [2]uint64 // operand pair with predicate true
	repF    [2]uint64 // operand pair with predicate false
}

// NewCompressed builds the compressed view of o induced by the match. ok is
// false when no representative operand pairs exist for the predicate.
func NewCompressed(o oracle.Oracle, cm CompMatch, rng *rand.Rand) (*Compressed, bool) {
	if cm.V2 == nil {
		panic("template: compression requires a vector-vector match")
	}
	t1, t2, okT := makePair(cm.Op, true, cm.V1.Width(), cm.V2.Width(), rng)
	f1, f2, okF := makePair(cm.Op, false, cm.V1.Width(), cm.V2.Width(), rng)
	if !okT || !okF {
		return nil, false
	}
	drop := make(map[int]bool)
	for _, p := range cm.V1.Ports {
		drop[p] = true
	}
	for _, p := range cm.V2.Ports {
		drop[p] = true
	}
	co := &Compressed{inner: o, cm: cm, repT: [2]uint64{t1, t2}, repF: [2]uint64{f1, f2}}
	orig := o.InputNames()
	for i := 0; i < o.NumInputs(); i++ {
		if !drop[i] {
			co.keep = append(co.keep, i)
			co.inNames = append(co.inNames, orig[i])
		}
	}
	co.inNames = append(co.inNames, "__delegate_"+cm.V1.Stem+cm.Op.String()+cm.V2.Stem)
	return co, true
}

// Delegate returns the index of the delegate input in the compressed view.
func (co *Compressed) Delegate() int { return len(co.keep) }

// KeptInput returns the original input index of compressed input i
// (i < Delegate()).
func (co *Compressed) KeptInput(i int) int { return co.keep[i] }

func (co *Compressed) NumInputs() int        { return len(co.keep) + 1 }
func (co *Compressed) NumOutputs() int       { return co.inner.NumOutputs() }
func (co *Compressed) InputNames() []string  { return append([]string(nil), co.inNames...) }
func (co *Compressed) OutputNames() []string { return co.inner.OutputNames() }

func (co *Compressed) Eval(a []bool) []bool {
	old := make([]bool, co.inner.NumInputs())
	for i, oldIdx := range co.keep {
		old[oldIdx] = a[i]
	}
	rep := co.repF
	if a[len(co.keep)] {
		rep = co.repT
	}
	co.cm.V1.Encode(rep[0], old)
	co.cm.V2.Encode(rep[1], old)
	return co.inner.Eval(old)
}

// EvalWords implements the word-parallel interface by translating each
// compressed word query into an inner word query.
func (co *Compressed) EvalWords(in []uint64) []uint64 {
	old := make([]uint64, co.inner.NumInputs())
	for i, oldIdx := range co.keep {
		old[oldIdx] = in[i]
	}
	del := in[len(co.keep)]
	// Per vector bit: choose the representative's bit by delegate value.
	encodeWord := func(v names.Vector, tVal, fVal uint64) {
		for b, port := range v.Ports {
			if b >= 64 {
				break
			}
			var tBit, fBit uint64
			if tVal>>uint(b)&1 == 1 {
				tBit = ^uint64(0)
			}
			if fVal>>uint(b)&1 == 1 {
				fBit = ^uint64(0)
			}
			old[port] = del&tBit | ^del&fBit
		}
	}
	encodeWord(co.cm.V1, co.repT[0], co.repF[0])
	encodeWord(*co.cm.V2, co.repT[1], co.repF[1])
	return oracle.EvalWords(co.inner, old)
}

// VarSignal maps a compressed-input index to a signal in a circuit being
// built over the ORIGINAL inputs: kept inputs map to their PI signals and
// the delegate maps to the synthesized comparator subcircuit (built on first
// use by the caller and passed in as delegateSig).
func (co *Compressed) VarSignal(v int, piSigs []circuit.Signal, delegateSig circuit.Signal) circuit.Signal {
	if v == co.Delegate() {
		return delegateSig
	}
	return piSigs[co.keep[v]]
}
