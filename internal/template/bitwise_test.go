package template

import (
	"math/rand"
	"testing"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
)

func bitwiseGolden(w int, op BitwiseOp) *circuit.Circuit {
	c := circuit.New()
	a := c.AddPIWord("lhs", w)
	b := c.AddPIWord("rhs", w)
	z := make(circuit.Word, w)
	for i := 0; i < w; i++ {
		switch op {
		case BAnd:
			z[i] = c.And(a[i], b[i])
		case BOr:
			z[i] = c.Or(a[i], b[i])
		case BXor:
			z[i] = c.Xor(a[i], b[i])
		case BNand:
			z[i] = c.Nand(a[i], b[i])
		case BNor:
			z[i] = c.Nor(a[i], b[i])
		case BXnor:
			z[i] = c.Xnor(a[i], b[i])
		case BNot:
			z[i] = c.NotGate(a[i])
		default:
			z[i] = c.BufGate(a[i])
		}
	}
	c.AddPOWord("res", z)
	return c
}

func TestUnaryLaneOpsAreCoveredByLinearFamily(t *testing.T) {
	// z = a and z = NOT a are affine (coefficients 1 and -1), so the
	// paper's linear family claims them before the bitwise screen runs.
	for _, op := range []BitwiseOp{BBuf, BNot} {
		golden := bitwiseGolden(5, op)
		o := oracle.FromCircuit(golden)
		m := Detect(o, Config{Samples: 96, Verify: 24, ExtendedTemplates: true},
			rand.New(rand.NewSource(7)))
		if len(m.MatchedOutputs()) != 5 {
			t.Fatalf("%v: outputs not covered: %v (linear %+v bitwise %+v)",
				op, m.MatchedOutputs(), m.Linear, m.Bitwise)
		}
	}
}

func TestDetectBitwiseAllOps(t *testing.T) {
	// Binary lane operators are not affine and need the extended family.
	for op := BAnd; op <= BXnor; op++ {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			golden := bitwiseGolden(6, op)
			o := oracle.FromCircuit(golden)
			m := Detect(o, Config{Samples: 96, Verify: 24, ExtendedTemplates: true},
				rand.New(rand.NewSource(int64(op)+1)))
			if len(m.Bitwise) != 1 {
				t.Fatalf("bitwise matches = %+v (linear: %+v)", m.Bitwise, m.Linear)
			}
			bm := m.Bitwise[0]
			// Functional check: synthesized subcircuit equals golden.
			cc := circuit.New()
			piSigs := make([]circuit.Signal, o.NumInputs())
			for i, name := range o.InputNames() {
				piSigs[i] = cc.AddPI(name)
			}
			cc.AddPOWord("res", bm.Synthesize(cc, piSigs))
			rng := rand.New(rand.NewSource(99))
			for k := 0; k < 500; k++ {
				assign := make([]bool, o.NumInputs())
				for i := range assign {
					assign[i] = rng.Intn(2) == 1
				}
				want := golden.Eval(assign)
				got := cc.Eval(assign)
				for j := range want {
					if want[j] != got[j] {
						t.Fatalf("op %v: synthesized differs at output %d", op, j)
					}
				}
			}
		})
	}
}

func TestDetectBitwiseOffByDefault(t *testing.T) {
	golden := bitwiseGolden(4, BXor)
	o := oracle.FromCircuit(golden)
	// XOR lanes are also a linear relation? No: lane XOR is addition
	// without carry, which differs from modular addition, so the linear
	// family must NOT claim it, and with extensions off nothing matches.
	m := Detect(o, Config{Samples: 96, Verify: 24}, rand.New(rand.NewSource(1)))
	if len(m.Bitwise) != 0 {
		t.Fatalf("bitwise family ran while disabled: %+v", m.Bitwise)
	}
	if len(m.Linear) != 0 {
		t.Fatalf("linear family claimed lane XOR: %+v", m.Linear)
	}
}

func TestDetectBitwiseRejectsNonLaneLogic(t *testing.T) {
	// z = a + b (modular addition has carries): not lane-wise.
	c := circuit.New()
	a := c.AddPIWord("lhs", 5)
	b := c.AddPIWord("rhs", 5)
	c.AddPOWord("res", c.AddWords(a, b))
	o := oracle.FromCircuit(c)
	m := Detect(o, Config{Samples: 96, Verify: 24, ExtendedTemplates: true},
		rand.New(rand.NewSource(2)))
	if len(m.Bitwise) != 0 {
		t.Fatalf("bitwise family claimed an adder: %+v", m.Bitwise)
	}
	// The adder IS linear, so the paper family should claim it instead.
	if len(m.Linear) != 1 {
		t.Fatalf("linear family missed the adder: %+v", m.Linear)
	}
}

func TestBitwiseDoesNotDoubleClaimLinearOutputs(t *testing.T) {
	// An output already matched by the linear family must not appear in
	// the bitwise list.
	c := circuit.New()
	a := c.AddPIWord("lhs", 5)
	b := c.AddPIWord("rhs", 5)
	c.AddPOWord("sum", c.AddWords(a, b))
	z := make(circuit.Word, 5)
	for i := range z {
		z[i] = c.And(a[i], b[i])
	}
	c.AddPOWord("mask", z)
	o := oracle.FromCircuit(c)
	m := Detect(o, Config{Samples: 96, Verify: 24, ExtendedTemplates: true},
		rand.New(rand.NewSource(3)))
	if len(m.Linear) != 1 || m.Linear[0].OutVec.Stem != "sum" {
		t.Fatalf("linear = %+v", m.Linear)
	}
	if len(m.Bitwise) != 1 || m.Bitwise[0].OutVec.Stem != "mask" {
		t.Fatalf("bitwise = %+v", m.Bitwise)
	}
	if len(m.MatchedOutputs()) != 10 {
		t.Fatalf("covered = %v", m.MatchedOutputs())
	}
}

func TestBitwiseOpEvalTable(t *testing.T) {
	const a, b = 0b1100, 0b1010
	cases := map[BitwiseOp]uint64{
		BAnd:  0b1000,
		BOr:   0b1110,
		BXor:  0b0110,
		BNand: ^uint64(0b1000),
		BNor:  ^uint64(0b1110),
		BXnor: ^uint64(0b0110),
		BNot:  ^uint64(0b1100),
		BBuf:  0b1100,
	}
	for op, want := range cases {
		if got := op.Eval(a, b); got != want {
			t.Errorf("%v: got %b, want %b", op, got, want)
		}
	}
	if !BNot.Unary() || BAnd.Unary() {
		t.Fatal("Unary classification wrong")
	}
}
