package template

import (
	"math/rand"

	"logicregression/internal/names"
	"logicregression/internal/oracle"
	"logicregression/internal/sampling"
)

// detectLinear probes each output vector for a relation
// N_z = sum a_i N_vi + b (mod 2^w) over the input vectors (Sec. IV-B2).
//
// Following the paper, b is read off with all inputs at 0 and each a_i with
// N_vi = 1 and the rest at 0; random verification probes (with the
// non-vector inputs randomized, to confirm independence) must then agree.
func detectLinear(o oracle.Oracle, inVecs []names.Vector, outVecs []names.Vector, cfg Config, rng *rand.Rand) []LinMatch {
	if len(outVecs) == 0 {
		return nil
	}
	n := o.NumInputs()
	zeroIn := make([]bool, n)
	base := o.Eval(zeroIn)

	var matches []LinMatch
	for _, z := range outVecs {
		if z.Width() > 64 {
			continue
		}
		w := z.Width()
		mask := widthMask(w)
		b := z.Decode(base) & mask

		lm := LinMatch{OutVec: z, B: b, Width: w}
		for _, v := range inVecs {
			a := make([]bool, n)
			v.Encode(1, a)
			got := z.Decode(o.Eval(a)) & mask
			coeff := (got - b) & mask
			if coeff != 0 {
				lm.Terms = append(lm.Terms, LinTerm{Vec: v, A: coeff})
			}
		}
		if verifyLinear(o, lm, cfg.withDefaults(), rng) {
			matches = append(matches, lm)
		}
	}
	return matches
}

// Predict evaluates the matched relation on an input assignment.
func (lm LinMatch) Predict(assignment []bool) uint64 {
	mask := widthMask(lm.Width)
	acc := lm.B
	for _, t := range lm.Terms {
		acc += t.A * (t.Vec.Decode(assignment) & mask)
	}
	return acc & mask
}

func verifyLinear(o oracle.Oracle, lm LinMatch, cfg Config, rng *rand.Rand) bool {
	n := o.NumInputs()
	mask := widthMask(lm.Width)
	for k := 0; k < cfg.Verify; k++ {
		a := sampling.RandomAssignment(rng, n, sampling.DefaultRatios[k%len(sampling.DefaultRatios)], nil)
		want := lm.Predict(a)
		got := lm.OutVec.Decode(o.Eval(a)) & mask
		if got != want {
			return false
		}
	}
	return true
}
