package template

import (
	"math/rand"
	"testing"

	"logicregression/internal/circuit"
	"logicregression/internal/names"
	"logicregression/internal/oracle"
)

// cmpOracle builds z = Na ⋈ Nb over two width-w buses.
func cmpOracle(w int, build func(c *circuit.Circuit, a, b circuit.Word) circuit.Signal) oracle.Oracle {
	c := circuit.New()
	a := c.AddPIWord("a", w)
	b := c.AddPIWord("b", w)
	c.AddPO("z", build(c, a, b))
	return oracle.FromCircuit(c)
}

// checkCompMatchExact verifies cm.Predict equals the oracle output over all
// assignments (small input counts only).
func checkCompMatchExact(t *testing.T, o oracle.Oracle, cm CompMatch) {
	t.Helper()
	n := o.NumInputs()
	for m := 0; m < 1<<uint(n); m++ {
		a := make([]bool, n)
		for i := 0; i < n; i++ {
			a[i] = m>>uint(i)&1 == 1
		}
		if cm.Predict(a) != o.Eval(a)[cm.Out] {
			t.Fatalf("match %v wrong at assignment %0*b", cm, n, m)
		}
	}
}

// checkSynthExact verifies the synthesized subcircuit equals the oracle.
func checkSynthExact(t *testing.T, o oracle.Oracle, cm CompMatch) {
	t.Helper()
	c := circuit.New()
	piSigs := make([]circuit.Signal, o.NumInputs())
	for i, name := range o.InputNames() {
		piSigs[i] = c.AddPI(name)
	}
	c.AddPO("z", cm.Synthesize(c, piSigs))
	n := o.NumInputs()
	for m := 0; m < 1<<uint(n); m++ {
		a := make([]bool, n)
		for i := 0; i < n; i++ {
			a[i] = m>>uint(i)&1 == 1
		}
		if c.Eval(a)[0] != o.Eval(a)[cm.Out] {
			t.Fatalf("synthesized %v wrong at %0*b", cm, n, m)
		}
	}
}

func TestDetectVectorComparators(t *testing.T) {
	builds := map[string]func(c *circuit.Circuit, a, b circuit.Word) circuit.Signal{
		"lt": func(c *circuit.Circuit, a, b circuit.Word) circuit.Signal { return c.LtWords(a, b) },
		"eq": func(c *circuit.Circuit, a, b circuit.Word) circuit.Signal { return c.EqWords(a, b) },
		"ge": func(c *circuit.Circuit, a, b circuit.Word) circuit.Signal { return c.GeWords(a, b) },
		"ne": func(c *circuit.Circuit, a, b circuit.Word) circuit.Signal { return c.NeWords(a, b) },
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			o := oracle.NewCounter(cmpOracle(4, build))
			m := Detect(o, Config{Samples: 128, Verify: 32}, rand.New(rand.NewSource(1)))
			if len(m.Comparators) != 1 {
				t.Fatalf("matches = %+v, want 1 comparator", m.Comparators)
			}
			checkCompMatchExact(t, o, m.Comparators[0])
			checkSynthExact(t, o, m.Comparators[0])
		})
	}
}

func TestDetectNegatedComparator(t *testing.T) {
	o := cmpOracle(3, func(c *circuit.Circuit, a, b circuit.Word) circuit.Signal {
		return c.NotGate(c.LtWords(a, b))
	})
	m := Detect(o, Config{Samples: 128, Verify: 32}, rand.New(rand.NewSource(2)))
	if len(m.Comparators) != 1 {
		t.Fatalf("matches = %+v", m.Comparators)
	}
	checkCompMatchExact(t, o, m.Comparators[0])
}

func TestDetectConstantThresholds(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(c *circuit.Circuit, a circuit.Word) circuit.Signal
	}{
		{"lt13", func(c *circuit.Circuit, a circuit.Word) circuit.Signal { return c.LtConst(a, 13) }},
		{"ge5", func(c *circuit.Circuit, a circuit.Word) circuit.Signal {
			return c.NotGate(c.LtConst(a, 5))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := circuit.New()
			a := c.AddPIWord("a", 5)
			c.AddPO("z", tc.build(c, a))
			o := oracle.FromCircuit(c)
			m := Detect(o, Config{Samples: 128, Verify: 32}, rand.New(rand.NewSource(3)))
			if len(m.Comparators) != 1 {
				t.Fatalf("matches = %+v", m.Comparators)
			}
			cm := m.Comparators[0]
			if cm.V2 != nil {
				t.Fatalf("expected constant form, got %+v", cm)
			}
			checkCompMatchExact(t, o, cm)
			checkSynthExact(t, o, cm)
		})
	}
}

func TestDetectEqualityConstant(t *testing.T) {
	c := circuit.New()
	a := c.AddPIWord("a", 4)
	c.AddPO("z", c.EqConst(a, 9))
	o := oracle.FromCircuit(c)
	m := Detect(o, Config{Samples: 256, Verify: 32}, rand.New(rand.NewSource(4)))
	if len(m.Comparators) != 1 {
		t.Fatalf("matches = %+v", m.Comparators)
	}
	checkCompMatchExact(t, o, m.Comparators[0])
}

func TestDetectRejectsNonComparator(t *testing.T) {
	// z = parity(a) XOR parity(b): matches no comparator.
	c := circuit.New()
	a := c.AddPIWord("a", 4)
	b := c.AddPIWord("b", 4)
	c.AddPO("z", c.Xor(c.XorTree(a), c.XorTree(b)))
	o := oracle.FromCircuit(c)
	m := Detect(o, Config{Samples: 256, Verify: 48}, rand.New(rand.NewSource(5)))
	if len(m.Comparators) != 0 {
		t.Fatalf("false comparator match: %+v", m.Comparators)
	}
}

func TestDetectLinearArithmetic(t *testing.T) {
	// z = 3a + 2b + 5 (mod 64) over named buses, plus an unused single.
	const w = 6
	c := circuit.New()
	a := c.AddPIWord("a", w)
	b := c.AddPIWord("b", w)
	c.AddPI("spare")
	sum := c.AddWords(c.AddWords(c.MulConst(a, 3, w), c.MulConst(b, 2, w)), c.ConstWord(5, w))
	c.AddPOWord("z", sum)
	o := oracle.FromCircuit(c)

	m := Detect(o, Config{Samples: 64, Verify: 48}, rand.New(rand.NewSource(6)))
	if len(m.Linear) != 1 {
		t.Fatalf("linear matches = %+v", m.Linear)
	}
	lm := m.Linear[0]
	if lm.B != 5 {
		t.Fatalf("B = %d, want 5", lm.B)
	}
	coeffs := map[string]uint64{}
	for _, term := range lm.Terms {
		coeffs[term.Vec.Stem] = term.A
	}
	if coeffs["a"] != 3 || coeffs["b"] != 2 {
		t.Fatalf("coeffs = %v", coeffs)
	}
	// Every output bit must be covered.
	covered := m.MatchedOutputs()
	if len(covered) != w {
		t.Fatalf("covered outputs = %v", covered)
	}
}

func TestDetectLinearSubtraction(t *testing.T) {
	// z = a - b (mod 16): coefficient of b is 15.
	const w = 4
	c := circuit.New()
	a := c.AddPIWord("a", w)
	b := c.AddPIWord("b", w)
	c.AddPOWord("z", c.SubWords(a, b))
	o := oracle.FromCircuit(c)
	m := Detect(o, Config{Samples: 64, Verify: 48}, rand.New(rand.NewSource(7)))
	if len(m.Linear) != 1 {
		t.Fatalf("linear matches = %+v", m.Linear)
	}
	for _, term := range m.Linear[0].Terms {
		switch term.Vec.Stem {
		case "a":
			if term.A != 1 {
				t.Fatalf("coeff a = %d", term.A)
			}
		case "b":
			if term.A != 15 {
				t.Fatalf("coeff b = %d", term.A)
			}
		}
	}
}

func TestLinearSynthesizeMatchesOracle(t *testing.T) {
	const w = 4
	c := circuit.New()
	a := c.AddPIWord("a", w)
	b := c.AddPIWord("b", w)
	c.AddPOWord("z", c.AddWords(c.MulConst(a, 5, w), c.AddWords(b, c.ConstWord(3, w))))
	o := oracle.FromCircuit(c)
	m := Detect(o, Config{Samples: 64, Verify: 48}, rand.New(rand.NewSource(8)))
	if len(m.Linear) != 1 {
		t.Fatalf("linear matches = %+v", m.Linear)
	}
	lm := m.Linear[0]

	cc := circuit.New()
	piSigs := make([]circuit.Signal, o.NumInputs())
	for i, name := range o.InputNames() {
		piSigs[i] = cc.AddPI(name)
	}
	outW := lm.Synthesize(cc, piSigs)
	cc.AddPOWord("z", outW)
	for m := 0; m < 1<<uint(2*w); m++ {
		assign := make([]bool, 2*w)
		for i := range assign {
			assign[i] = m>>uint(i)&1 == 1
		}
		want := o.Eval(assign)
		got := cc.Eval(assign)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("synthesized linear wrong at %b bit %d", m, j)
			}
		}
	}
}

func TestDetectLinearRejectsNonLinear(t *testing.T) {
	// z = a AND b bitwise is not affine.
	const w = 4
	c := circuit.New()
	a := c.AddPIWord("a", w)
	b := c.AddPIWord("b", w)
	z := make(circuit.Word, w)
	for i := range z {
		z[i] = c.And(a[i], b[i])
	}
	c.AddPOWord("z", z)
	o := oracle.FromCircuit(c)
	m := Detect(o, Config{Samples: 64, Verify: 48}, rand.New(rand.NewSource(9)))
	if len(m.Linear) != 0 {
		t.Fatalf("false linear match: %+v", m.Linear)
	}
}

func TestDetectHiddenComparator(t *testing.T) {
	// PO = d XOR (Na < Nb): the comparator is not a PO by itself.
	const w = 3
	c := circuit.New()
	a := c.AddPIWord("a", w)
	b := c.AddPIWord("b", w)
	d := c.AddPI("d")
	c.AddPO("z", c.Xor(d, c.LtWords(a, b)))
	o := oracle.FromCircuit(c)

	g := names.Group(o.InputNames())
	if len(g.Vectors) != 2 {
		t.Fatalf("grouping = %+v", g)
	}
	hm, ok := DetectHidden(o, g.Vectors[0], g.Vectors[1], 4, Config{Samples: 64, Verify: 32}, rand.New(rand.NewSource(10)))
	if !ok {
		t.Fatal("hidden comparator not found")
	}
	if hm.Op != LT || hm.V1.Stem != "a" {
		// Negated GE over (a,b) is the same function.
		if !(hm.Op == GE && hm.Negated) {
			t.Fatalf("hidden match = %+v", hm.CompMatch)
		}
	}
}

func TestCompressedOracle(t *testing.T) {
	// PO = d XOR (Na < Nb). Compressing on (a<b) leaves inputs {d, delegate}.
	const w = 3
	c := circuit.New()
	a := c.AddPIWord("a", w)
	b := c.AddPIWord("b", w)
	d := c.AddPI("d")
	c.AddPO("z", c.Xor(d, c.LtWords(a, b)))
	o := oracle.FromCircuit(c)

	g := names.Group(o.InputNames())
	cm := CompMatch{Out: 0, Op: LT, V1: g.Vectors[0], V2: &g.Vectors[1]}
	rng := rand.New(rand.NewSource(11))
	co, ok := NewCompressed(o, cm, rng)
	if !ok {
		t.Fatal("compression failed")
	}
	if co.NumInputs() != 2 {
		t.Fatalf("compressed inputs = %d (%v)", co.NumInputs(), co.InputNames())
	}
	if co.KeptInput(0) != 6 { // d is original input index 6
		t.Fatalf("kept input = %d", co.KeptInput(0))
	}
	// Compressed semantics: z = d XOR delegate.
	for _, dv := range []bool{false, true} {
		for _, sv := range []bool{false, true} {
			got := co.Eval([]bool{dv, sv})[0]
			if got != (dv != sv) {
				t.Fatalf("compressed eval(%v,%v) = %v", dv, sv, got)
			}
		}
	}
	// Word-parallel path must agree with scalar path.
	in := []uint64{0xF0F0F0F0F0F0F0F0, 0xAAAAAAAAAAAAAAAA}
	words := co.EvalWords(in)
	for k := 0; k < 64; k++ {
		assign := []bool{in[0]>>uint(k)&1 == 1, in[1]>>uint(k)&1 == 1}
		if co.Eval(assign)[0] != (words[0]>>uint(k)&1 == 1) {
			t.Fatalf("compressed word/scalar mismatch at pattern %d", k)
		}
	}
}

func TestMakePair(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for op := EQ; op < numPredicates; op++ {
		for _, want := range []bool{false, true} {
			x1, x2, ok := makePair(op, want, 4, 4, rng)
			if !ok {
				t.Fatalf("makePair(%v, %v) failed", op, want)
			}
			if op.Eval(x1, x2) != want {
				t.Fatalf("makePair(%v, %v) returned (%d,%d)", op, want, x1, x2)
			}
		}
	}
	// Impossible: x2 of width 0 means LT can never hold.
	if _, _, ok := makePair(LT, true, 4, 0, rng); ok {
		t.Fatal("makePair invented a pair for an impossible relation")
	}
}

func TestPredicateEvalTable(t *testing.T) {
	cases := []struct {
		op   Predicate
		a, b uint64
		want bool
	}{
		{EQ, 3, 3, true}, {EQ, 3, 4, false},
		{NE, 3, 4, true}, {NE, 4, 4, false},
		{LT, 2, 3, true}, {LT, 3, 3, false},
		{LE, 3, 3, true}, {LE, 4, 3, false},
		{GT, 4, 3, true}, {GT, 3, 3, false},
		{GE, 3, 3, true}, {GE, 2, 3, false},
	}
	for _, tc := range cases {
		if tc.op.Eval(tc.a, tc.b) != tc.want {
			t.Errorf("%d %v %d != %v", tc.a, tc.op, tc.b, tc.want)
		}
	}
}

func TestPredicateBuildConstEdges(t *testing.T) {
	// LE max and GT max degenerate to constants.
	c := circuit.New()
	a := c.AddPIWord("a", 3)
	c.AddPO("le", LE.BuildConst(c, a, ^uint64(0)))
	c.AddPO("gt", GT.BuildConst(c, a, ^uint64(0)))
	out := c.Eval([]bool{true, true, true})
	if out[0] != true || out[1] != false {
		t.Fatalf("edge consts = %v", out)
	}
}

func TestDetectWideThresholdBinarySearch(t *testing.T) {
	// A 12-bit threshold forces many binary-search probes (the paper's
	// "constant identified through binary search").
	for _, k := range []uint64{1000, 1, 4095} {
		c := circuit.New()
		a := c.AddPIWord("level", 12)
		c.AddPO("alarm", c.LtConst(a, k))
		o := oracle.NewCounter(circuitOracle(c))
		m := Detect(o, Config{Samples: 256, Verify: 32}, rand.New(rand.NewSource(int64(k))))
		if len(m.Comparators) != 1 {
			t.Fatalf("k=%d: matches = %+v", k, m.Comparators)
		}
		checkCompMatchViaSampling(t, circuitOracle(c), m.Comparators[0], 2000)
	}
}

// circuitOracle is a tiny adapter to keep the new tests readable.
func circuitOracle(c *circuit.Circuit) oracle.Oracle { return oracle.FromCircuit(c) }

// checkCompMatchViaSampling verifies a match on random points (for inputs
// too wide to enumerate).
func checkCompMatchViaSampling(t *testing.T, o oracle.Oracle, cm CompMatch, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(777))
	for k := 0; k < trials; k++ {
		a := make([]bool, o.NumInputs())
		for i := range a {
			a[i] = rng.Intn(2) == 1
		}
		if cm.Predict(a) != o.Eval(a)[cm.Out] {
			t.Fatalf("match %+v wrong on random point", cm)
		}
	}
}

func TestDetectNegatedThreshold(t *testing.T) {
	// z = NOT(Na < 37) == (Na >= 37): must be matched (as GE or negated LT).
	c := circuit.New()
	a := c.AddPIWord("cnt", 8)
	c.AddPO("ge", c.NotGate(c.LtConst(a, 37)))
	o := circuitOracle(c)
	m := Detect(o, Config{Samples: 256, Verify: 32}, rand.New(rand.NewSource(4)))
	if len(m.Comparators) != 1 {
		t.Fatalf("matches = %+v", m.Comparators)
	}
	checkCompMatchViaSampling(t, o, m.Comparators[0], 2000)
}

func TestDetectMultipleOutputsMixedTemplates(t *testing.T) {
	// One black box mixing all three paper-family template kinds.
	c := circuit.New()
	a := c.AddPIWord("pa", 6)
	b := c.AddPIWord("pb", 6)
	c.AddPO("eq", c.EqWords(a, b))
	c.AddPO("th", c.LtConst(a, 19))
	c.AddPOWord("sum", c.AddWords(a, b))
	o := circuitOracle(c)
	m := Detect(o, Config{Samples: 256, Verify: 32}, rand.New(rand.NewSource(5)))
	if len(m.Comparators) != 2 {
		t.Fatalf("comparators = %+v", m.Comparators)
	}
	if len(m.Linear) != 1 {
		t.Fatalf("linear = %+v", m.Linear)
	}
	if len(m.MatchedOutputs()) != 8 {
		t.Fatalf("covered = %v", m.MatchedOutputs())
	}
}
