package template

import (
	"math/rand"
	"testing"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
)

// parityGolden builds z = const ⊕ parity(selected inputs) over n inputs.
func parityGolden(n int, sel []int, constant bool) *circuit.Circuit {
	c := circuit.New()
	sigs := make([]circuit.Signal, n)
	for i := range sigs {
		sigs[i] = c.AddPI("in" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
	}
	chosen := make([]circuit.Signal, len(sel))
	for k, i := range sel {
		chosen[k] = sigs[i]
	}
	z := c.XorTree(chosen)
	if constant {
		z = c.NotGate(z)
	}
	c.AddPO("par", z)
	return c
}

func TestDetectAffineWideParity(t *testing.T) {
	// A 40-input parity over 23 of the inputs: hopeless for trees, exact
	// for the affine family.
	sel := []int{0, 1, 3, 5, 7, 8, 11, 13, 15, 16, 19, 21, 22, 25, 27, 28, 30, 31, 33, 35, 36, 38, 39}
	golden := parityGolden(40, sel, true)
	o := oracle.NewCounter(oracle.FromCircuit(golden))
	m := Detect(o, Config{Samples: 64, Verify: 48, ExtendedTemplates: true},
		rand.New(rand.NewSource(1)))
	if len(m.Affine) != 1 {
		t.Fatalf("affine matches = %+v", m.Affine)
	}
	am := m.Affine[0]
	if !am.Const {
		t.Fatal("constant term lost")
	}
	if len(am.Inputs) != len(sel) {
		t.Fatalf("parity support = %v, want %v", am.Inputs, sel)
	}
	for k := range sel {
		if am.Inputs[k] != sel[k] {
			t.Fatalf("parity support = %v, want %v", am.Inputs, sel)
		}
	}
	// O(n) query cost: far below anything a tree would spend.
	if o.Queries() > 40_000 {
		t.Fatalf("affine detection used %d queries", o.Queries())
	}

	// Synthesized subcircuit must match on random points.
	cc := circuit.New()
	piSigs := make([]circuit.Signal, golden.NumPI())
	for i, name := range golden.PINames() {
		piSigs[i] = cc.AddPI(name)
	}
	cc.AddPO("par", am.Synthesize(cc, piSigs))
	rng := rand.New(rand.NewSource(2))
	for k := 0; k < 2000; k++ {
		a := make([]bool, golden.NumPI())
		for i := range a {
			a[i] = rng.Intn(2) == 1
		}
		if cc.Eval(a)[0] != golden.Eval(a)[0] {
			t.Fatal("synthesized parity differs")
		}
	}
}

func TestDetectAffineRejectsNonAffine(t *testing.T) {
	// z = majority(a,b,c) is not affine.
	c := circuit.New()
	a := c.AddPI("aa")
	b := c.AddPI("bb")
	d := c.AddPI("cc")
	c.AddPO("maj", c.Or(c.Or(c.And(a, b), c.And(a, d)), c.And(b, d)))
	o := oracle.FromCircuit(c)
	m := Detect(o, Config{Samples: 64, Verify: 48, ExtendedTemplates: true},
		rand.New(rand.NewSource(3)))
	if len(m.Affine) != 0 {
		t.Fatalf("false affine match: %+v", m.Affine)
	}
}

func TestDetectAffineConstantFunction(t *testing.T) {
	// Constant functions ARE affine (empty parity); the family may claim
	// them, and the claim must be functionally correct.
	c := circuit.New()
	c.AddPI("aa")
	c.AddPO("one", c.Const(true))
	o := oracle.FromCircuit(c)
	m := Detect(o, Config{Samples: 64, Verify: 24, ExtendedTemplates: true},
		rand.New(rand.NewSource(4)))
	if len(m.Affine) != 1 {
		t.Fatalf("affine = %+v", m.Affine)
	}
	if !m.Affine[0].Const || len(m.Affine[0].Inputs) != 0 {
		t.Fatalf("constant-1 match wrong: %+v", m.Affine[0])
	}
}

func TestAffinePredict(t *testing.T) {
	am := AffineMatch{Inputs: []int{0, 2}, Const: true}
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{false, false, false}, true},
		{[]bool{true, false, false}, false},
		{[]bool{true, true, false}, false},
		{[]bool{true, false, true}, true},
	}
	for _, tc := range cases {
		if am.Predict(tc.in) != tc.want {
			t.Fatalf("Predict(%v) != %v", tc.in, tc.want)
		}
	}
}
