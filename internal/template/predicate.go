// Package template implements the template-matching preprocessing of the
// paper (Sec. IV-B): detecting comparator and linear-arithmetic structure
// over the name-grouped input/output vectors by probing the black box, and
// synthesizing the matched subcircuits.
package template

import (
	"fmt"

	"logicregression/internal/circuit"
)

// Predicate is one of the six comparator relations of Table I.
type Predicate uint8

// The comparator predicates.
const (
	EQ Predicate = iota
	NE
	LT
	LE
	GT
	GE
	numPredicates
)

var predNames = [...]string{EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">="}

func (p Predicate) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("Predicate(%d)", uint8(p))
}

// Eval evaluates the predicate on two unsigned integers.
func (p Predicate) Eval(a, b uint64) bool {
	switch p {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	panic("template: bad predicate")
}

// Ordered reports whether the predicate is a threshold relation, for which
// the constant form admits binary search.
func (p Predicate) Ordered() bool { return p >= LT }

// Build synthesizes the predicate over two signal words.
func (p Predicate) Build(c *circuit.Circuit, a, b circuit.Word) circuit.Signal {
	switch p {
	case EQ:
		return c.EqWords(a, b)
	case NE:
		return c.NeWords(a, b)
	case LT:
		return c.LtWords(a, b)
	case LE:
		return c.LeWords(a, b)
	case GT:
		return c.GtWords(a, b)
	case GE:
		return c.GeWords(a, b)
	}
	panic("template: bad predicate")
}

// BuildConst synthesizes the predicate against a constant right operand.
func (p Predicate) BuildConst(c *circuit.Circuit, a circuit.Word, k uint64) circuit.Signal {
	switch p {
	case EQ:
		return c.EqConst(a, k)
	case NE:
		return c.NotGate(c.EqConst(a, k))
	case LT:
		return c.LtConst(a, k)
	case GE:
		return c.NotGate(c.LtConst(a, k))
	case LE:
		// a <= k  <=>  a < k+1; k+1 may overflow to "always true".
		if k == ^uint64(0) {
			return c.Const(true)
		}
		return c.LtConst(a, k+1)
	case GT:
		if k == ^uint64(0) {
			return c.Const(false)
		}
		return c.NotGate(c.LtConst(a, k+1))
	}
	panic("template: bad predicate")
}
