package template

import "logicregression/internal/circuit"

// Synthesize builds the matched comparator as gates in c. piSigs maps PI
// indices (the V1/V2 port positions) to signals.
func (cm CompMatch) Synthesize(c *circuit.Circuit, piSigs []circuit.Signal) circuit.Signal {
	w1 := portsToWord(cm.V1.Ports, piSigs)
	var s circuit.Signal
	if cm.V2 != nil {
		s = cm.Op.Build(c, w1, portsToWord(cm.V2.Ports, piSigs))
	} else {
		s = cm.Op.BuildConst(c, w1, cm.Const)
	}
	if cm.Negated {
		s = c.NotGate(s)
	}
	return s
}

// Predict evaluates the matched comparator on an input assignment.
func (cm CompMatch) Predict(assignment []bool) bool {
	x1 := cm.V1.Decode(assignment)
	var x2 uint64
	if cm.V2 != nil {
		x2 = cm.V2.Decode(assignment)
	} else {
		x2 = cm.Const
	}
	return cm.Op.Eval(x1, x2) != cm.Negated
}

// Synthesize builds the matched linear relation as gates in c and returns
// one signal per output-vector bit (Width bits). Unit coefficients skip the
// shift-and-add multiplier and the accumulator starts from the first term
// instead of a constant word, keeping the pre-optimization netlist close to
// a plain ripple-adder chain.
func (lm LinMatch) Synthesize(c *circuit.Circuit, piSigs []circuit.Signal) circuit.Word {
	var acc circuit.Word
	for _, t := range lm.Terms {
		in := portsToWord(t.Vec.Ports, piSigs)
		var term circuit.Word
		if t.A == 1 {
			term = c.ZeroExtend(in, lm.Width)
		} else {
			term = c.MulConst(in, t.A, lm.Width)
		}
		if acc == nil {
			acc = term
		} else {
			acc = c.AddWords(acc, term)
		}
	}
	if acc == nil {
		return c.ConstWord(lm.B, lm.Width)
	}
	if lm.B != 0 {
		acc = c.AddWords(acc, c.ConstWord(lm.B, lm.Width))
	}
	return acc[:lm.Width]
}

func portsToWord(ports []int, piSigs []circuit.Signal) circuit.Word {
	w := make(circuit.Word, 0, len(ports))
	for i, p := range ports {
		if i >= 64 {
			break
		}
		w = append(w, piSigs[p])
	}
	return w
}
