package template

// Bitwise template family — an EXTENSION beyond the paper (its conclusion
// names "generalizing the variable grouping and template matching methods"
// as future work). Datapaths are full of bit-sliced logic: z[i] = a[i] OP
// b[i] for a lane-wise operator. Like the paper's two families, detection is
// screen-on-shared-samples + verify-with-targeted-probes, and a match
// synthesizes an exact subcircuit per output bit.
//
// The family is gated behind Config.ExtendedTemplates so the paper-faithful
// pipeline stays the default.

import (
	"fmt"
	"math/rand"

	"logicregression/internal/circuit"
	"logicregression/internal/names"
	"logicregression/internal/oracle"
	"logicregression/internal/sampling"
)

// BitwiseOp is a lane-wise Boolean operator.
type BitwiseOp uint8

// Binary lane operators, plus the unary NOT/BUF forms.
const (
	BAnd BitwiseOp = iota
	BOr
	BXor
	BNand
	BNor
	BXnor
	BNot // unary: z = NOT a
	BBuf // unary: z = a (wire renaming)
	numBitwiseOps
)

var bitwiseNames = [...]string{
	BAnd: "AND", BOr: "OR", BXor: "XOR", BNand: "NAND", BNor: "NOR",
	BXnor: "XNOR", BNot: "NOT", BBuf: "BUF",
}

func (op BitwiseOp) String() string {
	if int(op) < len(bitwiseNames) {
		return bitwiseNames[op]
	}
	return fmt.Sprintf("BitwiseOp(%d)", uint8(op))
}

// Unary reports whether the operator takes a single operand.
func (op BitwiseOp) Unary() bool { return op == BNot || op == BBuf }

// Eval applies the operator to whole words.
func (op BitwiseOp) Eval(a, b uint64) uint64 {
	switch op {
	case BAnd:
		return a & b
	case BOr:
		return a | b
	case BXor:
		return a ^ b
	case BNand:
		return ^(a & b)
	case BNor:
		return ^(a | b)
	case BXnor:
		return ^(a ^ b)
	case BNot:
		return ^a
	case BBuf:
		return a
	}
	panic("template: bad bitwise op")
}

// BitwiseMatch records z = V1 op V2 lane-wise over Width bits (V2 nil for
// unary operators).
type BitwiseMatch struct {
	OutVec names.Vector
	Op     BitwiseOp
	V1     names.Vector
	V2     *names.Vector
	Width  int
}

// Predict evaluates the match on an assignment, returning the output
// vector's value.
func (bm BitwiseMatch) Predict(assignment []bool) uint64 {
	a := bm.V1.Decode(assignment)
	var b uint64
	if bm.V2 != nil {
		b = bm.V2.Decode(assignment)
	}
	return bm.Op.Eval(a, b) & widthMask(bm.Width)
}

// Synthesize builds one signal per output bit.
func (bm BitwiseMatch) Synthesize(c *circuit.Circuit, piSigs []circuit.Signal) circuit.Word {
	a := portsToWord(bm.V1.Ports, piSigs)
	var b circuit.Word
	if bm.V2 != nil {
		b = portsToWord(bm.V2.Ports, piSigs)
	}
	out := make(circuit.Word, bm.Width)
	for i := 0; i < bm.Width; i++ {
		ai := a[i]
		switch bm.Op {
		case BNot:
			out[i] = c.NotGate(ai)
			continue
		case BBuf:
			out[i] = c.BufGate(ai)
			continue
		}
		bi := b[i]
		switch bm.Op {
		case BAnd:
			out[i] = c.And(ai, bi)
		case BOr:
			out[i] = c.Or(ai, bi)
		case BXor:
			out[i] = c.Xor(ai, bi)
		case BNand:
			out[i] = c.Nand(ai, bi)
		case BNor:
			out[i] = c.Nor(ai, bi)
		case BXnor:
			out[i] = c.Xnor(ai, bi)
		}
	}
	return out
}

// detectBitwise screens every output vector against lane-wise combinations
// of the input vectors.
func detectBitwise(o oracle.Oracle, inVecs, outVecs []names.Vector, cfg Config, rng *rand.Rand) []BitwiseMatch {
	if len(outVecs) == 0 || len(inVecs) == 0 {
		return nil
	}
	n := o.NumInputs()
	probes := make([]ioProbe, 0, cfg.Samples)
	for k := 0; k < cfg.Samples; k++ {
		a := sampling.RandomAssignment(rng, n, cfg.Ratios[k%len(cfg.Ratios)], nil)
		probes = append(probes, ioProbe{in: a, out: o.Eval(a)})
	}

	var matches []BitwiseMatch
	for _, z := range outVecs {
		if z.Width() > 64 {
			continue
		}
		if bm, ok := screenBitwiseFor(z, inVecs, probes, o, cfg, rng); ok {
			matches = append(matches, bm)
		}
	}
	return matches
}

// ioProbe is one recorded black-box query.
type ioProbe struct {
	in  []bool
	out []bool
}

func screenBitwiseFor(z names.Vector, inVecs []names.Vector, probes []ioProbe,
	o oracle.Oracle, cfg Config, rng *rand.Rand) (BitwiseMatch, bool) {

	w := z.Width()
	mask := widthMask(w)
	decodeOut := func(out []bool) uint64 {
		var x uint64
		for i, pos := range z.Ports {
			if i >= 64 {
				break
			}
			if out[pos] {
				x |= 1 << uint(i)
			}
		}
		return x
	}
	// Unary forms first (cheaper, and BBuf subsumes trivial passthroughs).
	for _, v := range inVecs {
		if v.Width() < w {
			continue
		}
		for _, op := range []BitwiseOp{BBuf, BNot} {
			bm := BitwiseMatch{OutVec: z, Op: op, V1: v, Width: w}
			if bitwiseConsistent(bm, probes, decodeOut, mask) && verifyBitwise(o, bm, cfg, rng) {
				return bm, true
			}
		}
	}
	for i := 0; i < len(inVecs); i++ {
		if inVecs[i].Width() < w {
			continue
		}
		for j := i + 1; j < len(inVecs); j++ {
			if inVecs[j].Width() < w {
				continue
			}
			for op := BAnd; op < BNot; op++ {
				bm := BitwiseMatch{OutVec: z, Op: op, V1: inVecs[i], V2: &inVecs[j], Width: w}
				if bitwiseConsistent(bm, probes, decodeOut, mask) && verifyBitwise(o, bm, cfg, rng) {
					return bm, true
				}
			}
		}
	}
	return BitwiseMatch{}, false
}

func bitwiseConsistent(bm BitwiseMatch, probes []ioProbe,
	decodeOut func([]bool) uint64, mask uint64) bool {
	for _, p := range probes {
		if decodeOut(p.out)&mask != bm.Predict(p.in) {
			return false
		}
	}
	return true
}

// verifyBitwise drives the operand lanes through targeted values: all four
// lane combinations must appear in every lane across the probe set.
func verifyBitwise(o oracle.Oracle, bm BitwiseMatch, cfg Config, rng *rand.Rand) bool {
	n := o.NumInputs()
	mask := widthMask(bm.Width)
	targets := []struct{ a, b uint64 }{
		{0, 0}, {mask, 0}, {0, mask}, {mask, mask},
	}
	for k := 0; k < cfg.Verify; k++ {
		assign := sampling.RandomAssignment(rng, n, sampling.DefaultRatios[k%len(sampling.DefaultRatios)], nil)
		if k < len(targets) {
			bm.V1.Encode(targets[k].a, assign)
			if bm.V2 != nil {
				bm.V2.Encode(targets[k].b, assign)
			}
		}
		want := bm.Predict(assign)
		out := o.Eval(assign)
		var got uint64
		for i, pos := range bm.OutVec.Ports {
			if i >= 64 {
				break
			}
			if out[pos] {
				got |= 1 << uint(i)
			}
		}
		if got&mask != want {
			return false
		}
	}
	return true
}
