package template

import (
	"math/rand"

	"logicregression/internal/names"
	"logicregression/internal/oracle"
	"logicregression/internal/sampling"
)

// Config controls template detection.
type Config struct {
	// Samples is the number of shared random probe assignments used for
	// hypothesis screening.
	Samples int
	// Verify is the number of targeted probes a hypothesis must survive.
	Verify int
	// MaxPairs caps the number of input-vector pairs screened.
	MaxPairs int
	// Ratios is the bias pool for the shared probes.
	Ratios []float64
	// ExtendedTemplates additionally screens the bitwise lane-operator
	// family (an extension beyond the paper's two families; see
	// bitwise.go). Off by default to keep the paper-faithful pipeline.
	ExtendedTemplates bool
}

func (c Config) withDefaults() Config {
	if c.Samples <= 0 {
		// Five 64-pattern words: one per member of the default bias pool,
		// so rare-event relations (equality against a constant) get probed
		// under the skewed ratios too.
		c.Samples = 320
	}
	if c.Verify <= 0 {
		c.Verify = 48
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 256
	}
	if len(c.Ratios) == 0 {
		c.Ratios = sampling.DefaultRatios
	}
	return c
}

// CompMatch records a matched comparator template: output Out equals
// (possibly negated) pred(N_V1, N_V2) or pred(N_V1, Const).
type CompMatch struct {
	Out     int // PO index
	Op      Predicate
	V1      names.Vector
	V2      *names.Vector // nil for the constant form
	Const   uint64        // right operand when V2 is nil
	Negated bool
}

// LinTerm is one coefficient of a linear-arithmetic match.
type LinTerm struct {
	Vec names.Vector // input vector
	A   uint64       // coefficient, modulo 2^Width
}

// LinMatch records a matched linear-arithmetic template:
// N_OutVec = sum A_i * N_Vec_i + B (mod 2^Width).
type LinMatch struct {
	OutVec names.Vector // over PO positions
	B      uint64
	Terms  []LinTerm
	Width  int // arithmetic width (min(|OutVec|, 64))
}

// Matches is the result of template detection.
type Matches struct {
	Comparators []CompMatch
	Linear      []LinMatch
	// Bitwise holds lane-operator matches (extended family only).
	Bitwise []BitwiseMatch
	// Affine holds GF(2)-parity matches (extended family only).
	Affine []AffineMatch
}

// MatchedOutputs returns the set of PO indices fully explained by templates.
func (m Matches) MatchedOutputs() map[int]bool {
	covered := make(map[int]bool)
	for _, cm := range m.Comparators {
		covered[cm.Out] = true
	}
	for _, lm := range m.Linear {
		for i, pos := range lm.OutVec.Ports {
			if i < lm.Width {
				covered[pos] = true
			}
		}
	}
	for _, bm := range m.Bitwise {
		for i, pos := range bm.OutVec.Ports {
			if i < bm.Width {
				covered[pos] = true
			}
		}
	}
	for _, am := range m.Affine {
		covered[am.Out] = true
	}
	return covered
}

// sampleSet is a shared matrix of random probes.
type sampleSet struct {
	n   int
	vec [][]uint64 // vec[vi][s]: decoded value of input vector vi at sample s
	out [][]bool   // out[po][s]
}

func collectSamples(o oracle.Oracle, vecs []names.Vector, cfg Config, rng *rand.Rand) *sampleSet {
	ss := &sampleSet{n: cfg.Samples}
	ss.vec = make([][]uint64, len(vecs))
	for i := range ss.vec {
		ss.vec[i] = make([]uint64, ss.n)
	}
	ss.out = make([][]bool, o.NumOutputs())
	for i := range ss.out {
		ss.out[i] = make([]bool, ss.n)
	}
	nIn := o.NumInputs()
	for base := 0; base < ss.n; base += 64 {
		batch := min(ss.n-base, 64)
		words := sampling.RandomWords(rng, nIn, cfg.Ratios[(base/64)%len(cfg.Ratios)], nil)
		outs := oracle.EvalWords(o, words)
		for s := 0; s < batch; s++ {
			for vi, v := range vecs {
				var x uint64
				for b, port := range v.Ports {
					if b >= 64 {
						break
					}
					x |= (words[port] >> uint(s) & 1) << uint(b)
				}
				ss.vec[vi][base+s] = x
			}
			for po := range ss.out {
				ss.out[po][base+s] = outs[po]>>uint(s)&1 == 1
			}
		}
	}
	return ss
}

// Detect screens all six predicates over input-vector pairs and constant
// forms against every output, and linear-arithmetic relations against every
// output vector, verifying each surviving hypothesis with targeted probes.
func Detect(o oracle.Oracle, cfg Config, rng *rand.Rand) Matches {
	cfg = cfg.withDefaults()
	inG := names.Group(o.InputNames())
	outG := names.Group(o.OutputNames())

	var m Matches
	vecs := usableVectors(inG.Vectors)
	if len(vecs) > 0 {
		ss := collectSamples(o, vecs, cfg, rng)
		m.Comparators = detectComparators(o, vecs, ss, cfg, rng)
	}
	m.Linear = detectLinear(o, vecs, outG.Vectors, cfg, rng)
	if cfg.ExtendedTemplates {
		// Screen the extended lane-operator family on output vectors the
		// paper families did not settle.
		covered := m.MatchedOutputs()
		var remaining []names.Vector
		for _, z := range outG.Vectors {
			taken := false
			for _, pos := range z.Ports {
				if covered[pos] {
					taken = true
					break
				}
			}
			if !taken {
				remaining = append(remaining, z)
			}
		}
		m.Bitwise = detectBitwise(o, vecs, remaining, cfg, rng)
		// Affine (parity) screening for outputs nothing else settled.
		m.Affine = detectAffine(o, m.MatchedOutputs(), cfg, rng)
	}
	return m
}

// usableVectors filters out vectors too wide to decode as uint64.
func usableVectors(vs []names.Vector) []names.Vector {
	var out []names.Vector
	for _, v := range vs {
		if v.Width() <= 64 {
			out = append(out, v)
		}
	}
	return out
}

func detectComparators(o oracle.Oracle, vecs []names.Vector, ss *sampleSet, cfg Config, rng *rand.Rand) []CompMatch {
	var matches []CompMatch
	matched := make(map[int]bool)
	// Vector-vector forms.
	pairs := 0
pairLoop:
	for i := 0; i < len(vecs) && pairs < cfg.MaxPairs; i++ {
		for j := i + 1; j < len(vecs) && pairs < cfg.MaxPairs; j++ {
			pairs++
			for po := 0; po < o.NumOutputs(); po++ {
				if matched[po] {
					continue
				}
				if cm, ok := screenPair(o, vecs, i, j, po, ss, cfg, rng); ok {
					matches = append(matches, cm)
					matched[po] = true
					if len(matched) == o.NumOutputs() {
						break pairLoop
					}
				}
			}
		}
	}
	// Vector-constant forms.
	for vi := range vecs {
		for po := 0; po < o.NumOutputs(); po++ {
			if matched[po] {
				continue
			}
			if cm, ok := screenConst(o, vecs, vi, po, ss, cfg, rng); ok {
				matches = append(matches, cm)
				matched[po] = true
			}
		}
	}
	return matches
}

// screenPair tests all predicates (both polarities) of pair (i,j) against
// output po using the shared samples, then verifies with targeted probes.
func screenPair(o oracle.Oracle, vecs []names.Vector, i, j, po int, ss *sampleSet, cfg Config, rng *rand.Rand) (CompMatch, bool) {
	outs := ss.out[po]
	for op := EQ; op < numPredicates; op++ {
		consistentPos, consistentNeg := true, true
		for s := 0; s < ss.n && (consistentPos || consistentNeg); s++ {
			p := op.Eval(ss.vec[i][s], ss.vec[j][s])
			if outs[s] != p {
				consistentPos = false
			}
			if outs[s] == p {
				consistentNeg = false
			}
		}
		for _, neg := range []bool{false, true} {
			if neg && !consistentNeg || !neg && !consistentPos {
				continue
			}
			cm := CompMatch{Out: po, Op: op, V1: vecs[i], V2: &vecs[j], Negated: neg}
			if verifyPair(o, cm, cfg, rng) {
				return cm, true
			}
		}
	}
	return CompMatch{}, false
}

// verifyPair issues targeted probes driving the predicate to both values.
func verifyPair(o oracle.Oracle, cm CompMatch, cfg Config, rng *rand.Rand) bool {
	n := o.NumInputs()
	for k := 0; k < cfg.Verify; k++ {
		want := k%2 == 0
		x1, x2, ok := makePair(cm.Op, want, cm.V1.Width(), cm.V2.Width(), rng)
		if !ok {
			return false
		}
		a := sampling.RandomAssignment(rng, n, sampling.DefaultRatios[k%len(sampling.DefaultRatios)], nil)
		cm.V1.Encode(x1, a)
		cm.V2.Encode(x2, a)
		got := o.Eval(a)[cm.Out]
		if got != (want != cm.Negated) {
			return false
		}
	}
	return true
}

// makePair constructs operand values with op(x1,x2) == want, honoring the
// vector widths. ok is false when no such pair exists (e.g. LT with an
// empty right range) or none was found.
func makePair(op Predicate, want bool, w1, w2 int, rng *rand.Rand) (x1, x2 uint64, ok bool) {
	m1 := widthMask(w1)
	m2 := widthMask(w2)
	// Constructive cases first: equality across different widths needs
	// values representable in both.
	mBoth := m1 & m2
	switch {
	case op == EQ && want, op == NE && !want:
		r := rng.Uint64() & mBoth
		return r, r, true
	case op == EQ && !want, op == NE && want:
		if m1 == 0 && m2 == 0 {
			return 0, 0, false // both vectors empty: always equal
		}
	}
	for try := 0; try < 200; try++ {
		a := rng.Uint64() & m1
		b := rng.Uint64() & m2
		if op.Eval(a, b) == want {
			return a, b, true
		}
	}
	return 0, 0, false
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// screenConst looks for threshold and equality relations against a constant.
func screenConst(o oracle.Oracle, vecs []names.Vector, vi, po int, ss *sampleSet, cfg Config, rng *rand.Rand) (CompMatch, bool) {
	outs := ss.out[po]
	xs := ss.vec[vi]
	v := vecs[vi]

	// Partition sample values by output.
	var onesMin, zerosMin uint64 = ^uint64(0), ^uint64(0)
	var onesMax, zerosMax uint64
	nOnes, nZeros := 0, 0
	onesSame, zerosSame := true, true
	var onesVal, zerosVal uint64
	for s := 0; s < ss.n; s++ {
		x := xs[s]
		if outs[s] {
			if nOnes == 0 {
				onesVal = x
			} else if x != onesVal {
				onesSame = false
			}
			nOnes++
			onesMin = min(onesMin, x)
			onesMax = max(onesMax, x)
		} else {
			if nZeros == 0 {
				zerosVal = x
			} else if x != zerosVal {
				zerosSame = false
			}
			nZeros++
			zerosMin = min(zerosMin, x)
			zerosMax = max(zerosMax, x)
		}
	}
	if nOnes == 0 || nZeros == 0 {
		// The output never varied in the screen; equality against an
		// unobserved constant cannot be recovered from these samples.
		return CompMatch{}, false
	}

	// Threshold, decreasing: z = (x < b) with b in (onesMax, zerosMin].
	if onesMax < zerosMin {
		if b, ok := searchThreshold(o, v, po, onesMax, zerosMin, false, cfg, rng); ok {
			cm := CompMatch{Out: po, Op: LT, V1: v, Const: b}
			if verifyConst(o, cm, cfg, rng) {
				return cm, true
			}
		}
	}
	// Threshold, increasing: z = (x >= b) with b in (zerosMax, onesMin].
	if zerosMax < onesMin {
		if b, ok := searchThreshold(o, v, po, zerosMax, onesMin, true, cfg, rng); ok {
			cm := CompMatch{Out: po, Op: GE, V1: v, Const: b}
			if verifyConst(o, cm, cfg, rng) {
				return cm, true
			}
		}
	}
	// Equality: all 1-samples share one value, all 0-samples differ from it.
	if onesSame && (!zerosSame || zerosVal != onesVal) {
		cm := CompMatch{Out: po, Op: EQ, V1: v, Const: onesVal}
		if verifyConst(o, cm, cfg, rng) {
			return cm, true
		}
	}
	// Disequality: all 0-samples share one value.
	if zerosSame && (!onesSame || onesVal != zerosVal) {
		cm := CompMatch{Out: po, Op: NE, V1: v, Const: zerosVal}
		if verifyConst(o, cm, cfg, rng) {
			return cm, true
		}
	}
	return CompMatch{}, false
}

// searchThreshold binary-searches the constant b of a threshold relation.
// For increasing=false, z is 1 below the threshold: invariant z(lo)=1,
// z(hi)=0 and the result is the smallest x with z(x)=0. For increasing=true
// the roles are flipped. Each probe fixes the vector value and randomizes
// the remaining inputs. This is the paper's "binary search strategy" for
// constant identification.
func searchThreshold(o oracle.Oracle, v names.Vector, po int, lo, hi uint64, increasing bool, cfg Config, rng *rand.Rand) (uint64, bool) {
	n := o.NumInputs()
	probe := func(x uint64) bool {
		a := sampling.RandomAssignment(rng, n, 0.5, nil)
		v.Encode(x, a)
		return o.Eval(a)[po]
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		z := probe(mid)
		high := z == increasing // value belongs to the upper side
		if high {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// verifyConst issues targeted probes at and around the constant.
func verifyConst(o oracle.Oracle, cm CompMatch, cfg Config, rng *rand.Rand) bool {
	n := o.NumInputs()
	mask := widthMask(cm.V1.Width())
	probes := []uint64{cm.Const & mask}
	if cm.Const > 0 {
		probes = append(probes, (cm.Const-1)&mask)
	}
	probes = append(probes, (cm.Const+1)&mask)
	for k := 0; k < cfg.Verify; k++ {
		var x uint64
		if k < len(probes) {
			x = probes[k]
		} else {
			x = rng.Uint64() & mask
		}
		a := sampling.RandomAssignment(rng, n, sampling.DefaultRatios[k%len(sampling.DefaultRatios)], nil)
		cm.V1.Encode(x, a)
		got := o.Eval(a)[cm.Out]
		if got != (cm.Op.Eval(x, cm.Const) != cm.Negated) {
			return false
		}
	}
	return true
}
