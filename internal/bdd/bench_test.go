package bdd

import (
	"math/rand"
	"testing"
)

func BenchmarkBuildAdderBDD(b *testing.B) {
	// 16-bit adder output bit 15 with interleaved variable order (the
	// good order: linear-size BDD).
	for i := 0; i < b.N; i++ {
		m := NewManager(32, 0)
		// a_j at var 2j, b_j at var 2j+1.
		carry := False
		var sum Ref
		for j := 0; j < 16; j++ {
			a := m.Var(2 * j)
			bb := m.Var(2*j + 1)
			axb := m.Xor(a, bb)
			sum = m.Xor(axb, carry)
			carry = m.Or(m.And(a, bb), m.And(axb, carry))
		}
		_ = sum
	}
}

func BenchmarkISOPRandomFunction(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	table := make([]bool, 1<<12)
	for i := range table {
		table[i] = rng.Intn(2) == 1
	}
	vars := make([]int, 12)
	for i := range vars {
		vars[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewManager(12, 0)
		root := FromTruthTable(m, table, vars)
		cover := m.ISOP(root)
		if len(cover) == 0 {
			b.Fatal("empty cover for a random function")
		}
	}
}

func BenchmarkFromTruthTable18(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	table := make([]bool, 1<<18)
	for i := range table {
		table[i] = rng.Intn(5) == 0
	}
	vars := make([]int, 18)
	for i := range vars {
		vars[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewManager(18, 0)
		FromTruthTable(m, table, vars)
	}
}
