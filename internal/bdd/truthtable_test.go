package bdd

import (
	"errors"
	"math/rand"
	"testing"
)

func TestFromTruthTableExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(8)
		table := make([]bool, 1<<uint(k))
		for i := range table {
			table[i] = rng.Intn(2) == 1
		}
		vars := make([]int, k)
		for i := range vars {
			vars[i] = i
		}
		m := NewManager(k, 0)
		root := FromTruthTable(m, table, vars)
		for minterm := range table {
			a := make([]bool, k)
			for v := 0; v < k; v++ {
				a[v] = minterm>>uint(v)&1 == 1
			}
			if m.Eval(root, a) != table[minterm] {
				t.Fatalf("trial %d: wrong at minterm %b", trial, minterm)
			}
		}
	}
}

func TestFromTruthTableSparseVars(t *testing.T) {
	// Variables 1 and 3 of a 5-var manager; table bit j of index maps to
	// vars[j].
	m := NewManager(5, 0)
	table := []bool{false, true, true, false} // XOR of the two vars
	root := FromTruthTable(m, table, []int{1, 3})
	for p := 0; p < 4; p++ {
		a := make([]bool, 5)
		a[1] = p&1 == 1
		a[3] = p>>1&1 == 1
		if m.Eval(root, a) != (a[1] != a[3]) {
			t.Fatalf("wrong at %b", p)
		}
	}
	sup := m.Support(root)
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Fatalf("support = %v", sup)
	}
}

func TestFromTruthTableConstants(t *testing.T) {
	m := NewManager(3, 0)
	if FromTruthTable(m, []bool{false}, nil) != False {
		t.Fatal("empty-var false table")
	}
	if FromTruthTable(m, []bool{true}, nil) != True {
		t.Fatal("empty-var true table")
	}
	allOnes := []bool{true, true, true, true}
	if FromTruthTable(m, allOnes, []int{0, 1}) != True {
		t.Fatal("constant-1 table did not reduce to True")
	}
}

func TestFromTruthTablePanicsOnBadArgs(t *testing.T) {
	m := NewManager(3, 0)
	for name, f := range map[string]func(){
		"wrong length": func() { FromTruthTable(m, make([]bool, 3), []int{0, 1}) },
		"unsorted":     func() { FromTruthTable(m, make([]bool, 4), []int{1, 0}) },
		"duplicate":    func() { FromTruthTable(m, make([]bool, 4), []int{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGuardConvertsBudgetPanic(t *testing.T) {
	m := NewManager(20, 4) // absurdly small budget
	err := m.Guard(func() {
		acc := True
		for i := 0; i < 20; i++ {
			acc = m.Xor(acc, m.Var(i))
		}
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestGuardPassesThroughOtherPanics(t *testing.T) {
	m := NewManager(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	m.Guard(func() { panic("boom") })
}

func TestGuardNilOnSuccess(t *testing.T) {
	m := NewManager(2, 0)
	if err := m.Guard(func() { m.And(m.Var(0), m.Var(1)) }); err != nil {
		t.Fatal(err)
	}
}
