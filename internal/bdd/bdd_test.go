package bdd

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"logicregression/internal/aig"
	"logicregression/internal/circuit"
)

func TestConstantsAndVar(t *testing.T) {
	m := NewManager(3, 0)
	if m.Eval(False, []bool{true, true, true}) {
		t.Fatal("False evaluated true")
	}
	if !m.Eval(True, []bool{false, false, false}) {
		t.Fatal("True evaluated false")
	}
	x1 := m.Var(1)
	if !m.Eval(x1, []bool{false, true, false}) || m.Eval(x1, []bool{true, false, true}) {
		t.Fatal("Var(1) wrong")
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	m := NewManager(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Var(2)
}

func TestCanonicityHashConsing(t *testing.T) {
	m := NewManager(3, 0)
	a, b := m.Var(0), m.Var(1)
	f1 := m.And(a, b)
	f2 := m.And(b, a)
	if f1 != f2 {
		t.Fatal("AND not canonical")
	}
	g1 := m.Or(m.And(a, b), m.And(a, m.Not(b)))
	if g1 != a {
		t.Fatal("ab + ab' did not reduce to a")
	}
}

func TestOpsAgainstTruthTables(t *testing.T) {
	m := NewManager(2, 0)
	a, b := m.Var(0), m.Var(1)
	funcs := map[string]struct {
		f    Ref
		eval func(x, y bool) bool
	}{
		"and": {m.And(a, b), func(x, y bool) bool { return x && y }},
		"or":  {m.Or(a, b), func(x, y bool) bool { return x || y }},
		"xor": {m.Xor(a, b), func(x, y bool) bool { return x != y }},
		"not": {m.Not(a), func(x, y bool) bool { return !x }},
		"ite": {m.ITE(a, b, m.Not(b)), func(x, y bool) bool {
			if x {
				return y
			}
			return !y
		}},
	}
	for name, tc := range funcs {
		for p := 0; p < 4; p++ {
			x, y := p&1 == 1, p>>1&1 == 1
			if m.Eval(tc.f, []bool{x, y}) != tc.eval(x, y) {
				t.Errorf("%s wrong at (%v,%v)", name, x, y)
			}
		}
	}
}

func TestSatCount(t *testing.T) {
	m := NewManager(4, 0)
	a, b := m.Var(0), m.Var(1)
	if got := m.SatCount(m.And(a, b)); got != 4 { // 2 free vars
		t.Fatalf("SatCount(ab) = %f, want 4", got)
	}
	if got := m.SatCount(m.Xor(a, b)); got != 8 {
		t.Fatalf("SatCount(a^b) = %f, want 8", got)
	}
	if got := m.SatCount(True); got != 16 {
		t.Fatalf("SatCount(1) = %f, want 16", got)
	}
}

func TestSupport(t *testing.T) {
	m := NewManager(5, 0)
	f := m.And(m.Var(1), m.Xor(m.Var(3), m.Var(4)))
	sup := m.Support(f)
	want := []int{1, 3, 4}
	if len(sup) != len(want) {
		t.Fatalf("support = %v", sup)
	}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("support = %v, want %v", sup, want)
		}
	}
}

func randomAIG(rng *rand.Rand, nPI, nGates int) *aig.AIG {
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < nPI; i++ {
		sigs = append(sigs, c.AddPI("x"+string(rune('a'+i))))
	}
	for k := 0; k < nGates; k++ {
		a := sigs[rng.Intn(len(sigs))]
		b := sigs[rng.Intn(len(sigs))]
		switch rng.Intn(4) {
		case 0:
			sigs = append(sigs, c.And(a, b))
		case 1:
			sigs = append(sigs, c.Or(a, b))
		case 2:
			sigs = append(sigs, c.Xor(a, b))
		default:
			sigs = append(sigs, c.NotGate(a))
		}
	}
	c.AddPO("z", sigs[len(sigs)-1])
	return aig.FromCircuit(c)
}

func TestFromAIGOutputMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		g := randomAIG(rng, 6, 25)
		m, root, err := FromAIGOutput(g, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 64; p++ {
			in := make([]uint64, 6)
			a := make([]bool, 6)
			for i := range in {
				if rng.Intn(2) == 1 {
					in[i] = ^uint64(0)
					a[i] = true
				}
			}
			want := g.EvalPOs(in)[0]&1 == 1
			if m.Eval(root, a) != want {
				t.Fatalf("trial %d: BDD differs from AIG", trial)
			}
		}
	}
}

func TestFromAIGOutputBudget(t *testing.T) {
	// A wide XOR chain has a linear BDD but the budget of 4 nodes is
	// still too small.
	rng := rand.New(rand.NewSource(2))
	g := randomAIG(rng, 8, 60)
	if _, _, err := FromAIGOutput(g, 0, 4); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestISOPCoverMatchesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		nVars := 3 + rng.Intn(4)
		m := NewManager(nVars, 0)
		// Random function built from random minterm set.
		f := False
		truth := make([]bool, 1<<uint(nVars))
		for minterm := range truth {
			if rng.Intn(2) == 0 {
				continue
			}
			truth[minterm] = true
			cube := True
			for v := 0; v < nVars; v++ {
				x := m.Var(v)
				if minterm>>uint(v)&1 == 0 {
					x = m.Not(x)
				}
				cube = m.And(cube, x)
			}
			f = m.Or(f, cube)
		}
		cover := m.ISOP(f)
		for minterm := range truth {
			a := make([]bool, nVars)
			for v := 0; v < nVars; v++ {
				a[v] = minterm>>uint(v)&1 == 1
			}
			if cover.Eval(a) != truth[minterm] {
				t.Fatalf("trial %d: ISOP differs at minterm %b\ncover: %v", trial, minterm, cover)
			}
		}
		// Irredundancy: no cube may be contained in another.
		for i := range cover {
			for j := range cover {
				if i != j && cover[i].Contains(cover[j]) {
					t.Fatalf("trial %d: cube %v contains %v", trial, cover[i], cover[j])
				}
			}
		}
	}
}

func TestISOPConstants(t *testing.T) {
	m := NewManager(2, 0)
	if c := m.ISOP(False); len(c) != 0 {
		t.Fatalf("ISOP(0) = %v", c)
	}
	c := m.ISOP(True)
	if len(c) != 1 || len(c[0]) != 0 {
		t.Fatalf("ISOP(1) = %v", c)
	}
}

func TestISOPSingleCubeForAnd(t *testing.T) {
	m := NewManager(3, 0)
	f := m.And(m.Var(0), m.And(m.Var(1), m.Var(2)))
	c := m.ISOP(f)
	if len(c) != 1 || len(c[0]) != 3 {
		t.Fatalf("ISOP(abc) = %v", c)
	}
}

// Property: ISOP of a random BDD equals the BDD on random points.
func TestQuickISOPEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAIG(rng, 5, 15)
		m, root, err := FromAIGOutput(g, 0, 0)
		if err != nil {
			return false
		}
		cover := m.ISOP(root)
		for p := 0; p < 32; p++ {
			a := make([]bool, 5)
			for i := range a {
				a[i] = rng.Intn(2) == 1
			}
			if cover.Eval(a) != m.Eval(root, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
