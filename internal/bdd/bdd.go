// Package bdd implements reduced ordered binary decision diagrams with an
// ITE-based operation core and Minato-Morreale irredundant SOP extraction.
// In the optimization pipeline it plays the role of ABC's `collapse`
// command: small-support logic cones are collapsed into their canonical
// function and resynthesized from a compact cover.
package bdd

import (
	"errors"
	"fmt"

	"logicregression/internal/aig"
	"logicregression/internal/sop"
)

// ErrBudget is returned when a construction exceeds the manager node budget.
var ErrBudget = errors.New("bdd: node budget exceeded")

// Ref is a BDD node reference. 0 is constant false, 1 is constant true.
type Ref = int

// Constant references.
const (
	False Ref = 0
	True  Ref = 1
)

type bnode struct {
	level  int // variable index; terminals use level == manager.nvars
	lo, hi Ref
}

// Manager owns BDD nodes over a fixed variable count and order (variable i
// is at level i).
type Manager struct {
	nvars    int
	nodes    []bnode
	unique   map[bnode]Ref
	iteCache map[[3]Ref]Ref
	maxNodes int
}

// NewManager creates a manager for nvars variables with a node budget
// (0 = default 1<<22).
func NewManager(nvars, maxNodes int) *Manager {
	if maxNodes <= 0 {
		maxNodes = 1 << 22
	}
	m := &Manager{
		nvars:    nvars,
		unique:   make(map[bnode]Ref),
		iteCache: make(map[[3]Ref]Ref),
		maxNodes: maxNodes,
	}
	m.nodes = append(m.nodes,
		bnode{level: nvars}, // False
		bnode{level: nvars}, // True
	)
	return m
}

// NumNodes returns the allocated node count (including terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

type budgetPanic struct{}

func (m *Manager) mk(level int, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := bnode{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	if len(m.nodes) >= m.maxNodes {
		panic(budgetPanic{})
	}
	m.nodes = append(m.nodes, key)
	r := Ref(len(m.nodes) - 1)
	m.unique[key] = r
	return r
}

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.nvars))
	}
	return m.mk(i, False, True)
}

func (m *Manager) level(r Ref) int { return m.nodes[r].level }

func (m *Manager) cofactors(r Ref, level int) (lo, hi Ref) {
	if m.nodes[r].level != level {
		return r, r
	}
	return m.nodes[r].lo, m.nodes[r].hi
}

// ITE computes if-then-else(f, g, h).
func (m *Manager) ITE(f, g, h Ref) Ref {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.iteCache[key]; ok {
		return r
	}
	level := min(m.level(f), min(m.level(g), m.level(h)))
	f0, f1 := m.cofactors(f, level)
	g0, g1 := m.cofactors(g, level)
	h0, h1 := m.cofactors(h, level)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(level, lo, hi)
	m.iteCache[key] = r
	return r
}

// Not returns the complement.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Eval evaluates the function at a full assignment (len >= nvars).
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	for f != False && f != True {
		n := m.nodes[f]
		if assignment[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments over all nvars
// variables (as float64 to tolerate wide supports). It computes the
// satisfying fraction, which is order- and level-independent, and scales by
// 2^nvars.
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var frac func(r Ref) float64
	frac = func(r Ref) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		v := (frac(n.lo) + frac(n.hi)) / 2
		memo[r] = v
		return v
	}
	return frac(f) * pow2(m.nvars)
}

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

// Support returns the variable indices the function depends on, ascending.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make(map[int]bool)
	var walk func(Ref)
	walk = func(r Ref) {
		if r <= True || seen[r] {
			return
		}
		seen[r] = true
		vars[m.nodes[r].level] = true
		walk(m.nodes[r].lo)
		walk(m.nodes[r].hi)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := 0; v < m.nvars; v++ {
		if vars[v] {
			out = append(out, v)
		}
	}
	return out
}

// Guard runs f and converts a node-budget overflow inside it into
// ErrBudget, so callers can keep using a manager for post-construction
// operations (Not, ISOP, ...) that may themselves allocate nodes.
func (m *Manager) Guard(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(budgetPanic); ok {
				err = ErrBudget
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// FromAIGOutput builds the BDD of output po of an AIG, mapping PI i to
// variable i. It returns ErrBudget when the diagram exceeds the node budget.
func FromAIGOutput(g *aig.AIG, po int, maxNodes int) (m *Manager, root Ref, err error) {
	m = NewManager(g.NumPIs(), maxNodes)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(budgetPanic); ok {
				m, root, err = nil, False, ErrBudget
				return
			}
			panic(r)
		}
	}()
	memo := make(map[int]Ref)
	var build func(n int) Ref
	build = func(n int) Ref {
		if n == 0 {
			return False
		}
		if n <= g.NumPIs() {
			return m.Var(n - 1)
		}
		if r, ok := memo[n]; ok {
			return r
		}
		f0, f1 := g.Fanins(n)
		a := build(f0.Node())
		if f0.Compl() {
			a = m.Not(a)
		}
		b := build(f1.Node())
		if f1.Compl() {
			b = m.Not(b)
		}
		r := m.And(a, b)
		memo[n] = r
		return r
	}
	l := g.PO(po)
	root = build(l.Node())
	if l.Compl() {
		root = m.Not(root)
	}
	return m, root, nil
}

// FromTruthTable builds the BDD of a function given as a truth table over
// the listed variables: table[i] is f at the minterm whose bit j (of i)
// gives the value of vars[j]. vars must be strictly ascending (they become
// the BDD order top-down). len(table) must be 1<<len(vars).
func FromTruthTable(m *Manager, table []bool, vars []int) Ref {
	if len(table) != 1<<uint(len(vars)) {
		panic(fmt.Sprintf("bdd: table length %d for %d vars", len(table), len(vars)))
	}
	for j := 1; j < len(vars); j++ {
		if vars[j] <= vars[j-1] {
			panic("bdd: vars must be strictly ascending")
		}
	}
	return m.fromTT(table, vars)
}

// fromTT recursively splits on vars[0] (the topmost level): the subfunction
// with vars[0]=0 lives at even minterm indices, =1 at odd indices.
func (m *Manager) fromTT(table []bool, vars []int) Ref {
	if len(vars) == 0 {
		if table[0] {
			return True
		}
		return False
	}
	half := len(table) / 2
	lo := make([]bool, half)
	hi := make([]bool, half)
	for i := 0; i < half; i++ {
		lo[i] = table[2*i]
		hi[i] = table[2*i+1]
	}
	l := m.fromTT(lo, vars[1:])
	h := m.fromTT(hi, vars[1:])
	return m.mk(vars[0], l, h)
}

// ISOP computes an irredundant sum-of-products cover of f using the
// Minato-Morreale procedure. Cube variables are BDD variable indices.
//
// Beware: some functions (parity chains) have small BDDs but exponential
// covers; use ISOPBounded when the input function is not known to be
// cover-friendly.
func (m *Manager) ISOP(f Ref) sop.Cover {
	st := &isopState{memo: make(map[[2]Ref]isopResult), maxCubes: -1}
	cover, _ := m.isop(f, f, st)
	return cover
}

// ISOPBounded is ISOP with a cube budget: it returns ErrBudget (and no
// cover) once more than maxCubes cubes would be produced, which protects
// callers from functions with compact BDDs but exponential covers.
func (m *Manager) ISOPBounded(f Ref, maxCubes int) (cover sop.Cover, err error) {
	st := &isopState{memo: make(map[[2]Ref]isopResult), maxCubes: maxCubes}
	err = m.Guard(func() {
		cover, _ = m.isop(f, f, st)
	})
	if err != nil {
		return nil, err
	}
	return cover, nil
}

type isopResult struct {
	cover sop.Cover
	fn    Ref
}

// isopState carries the memo table and the cube budget (-1 = unlimited).
type isopState struct {
	memo     map[[2]Ref]isopResult
	maxCubes int
	produced int
}

func (st *isopState) charge(n int) {
	if st.maxCubes < 0 {
		return
	}
	st.produced += n
	if st.produced > st.maxCubes {
		panic(budgetPanic{})
	}
}

// isop computes a cover C with L <= C <= U, returning the cover and the BDD
// of its function.
func (m *Manager) isop(L, U Ref, st *isopState) (sop.Cover, Ref) {
	if L == False {
		return nil, False
	}
	if U == True {
		st.charge(1)
		return sop.Cover{sop.Cube{}}, True
	}
	key := [2]Ref{L, U}
	if r, ok := st.memo[key]; ok {
		// Memo hits still produce cover copies downstream: charge them so
		// exponential cover assembly trips the budget even when the BDD
		// subproblem count stays small.
		st.charge(len(r.cover))
		return r.cover.Clone(), r.fn
	}
	level := min(m.level(L), m.level(U))
	L0, L1 := m.cofactors(L, level)
	U0, U1 := m.cofactors(U, level)

	// Cubes that must contain the negative literal of var `level`.
	Lneg := m.And(L0, m.Not(U1))
	c0, f0 := m.isop(Lneg, U0, st)
	// Cubes that must contain the positive literal.
	Lpos := m.And(L1, m.Not(U0))
	c1, f1 := m.isop(Lpos, U1, st)
	// Remainder covered by cubes free of var `level`.
	Lrem := m.Or(m.And(L0, m.Not(f0)), m.And(L1, m.Not(f1)))
	Urem := m.And(U0, U1)
	cd, fd := m.isop(Lrem, Urem, st)

	var cover sop.Cover
	for _, c := range c0 {
		cover = append(cover, c.With(sop.Literal{Var: level, Neg: true}))
	}
	for _, c := range c1 {
		cover = append(cover, c.With(sop.Literal{Var: level, Neg: false}))
	}
	cover = append(cover, cd...)

	x := m.Var(level)
	fn := m.Or(fd, m.Or(m.And(m.Not(x), f0), m.And(x, f1)))
	st.memo[key] = isopResult{cover: cover.Clone(), fn: fn}
	return cover, fn
}
