package sop

// ExpandAgainst implements the ESPRESSO EXPAND step for the special case the
// decision tree produces: `cover` and `blockers` partition the space (every
// assignment satisfies exactly one cube of the union), as FBDT leaf cubes do
// by construction. Each cover cube is greedily widened by dropping literals
// as long as the widened cube stays disjoint from every blocker cube; the
// widened cube can then only absorb space that belonged to sibling cover
// cubes, so the represented function is unchanged while cubes get shorter
// and more mergeable.
//
// A final Minimize pass absorbs the now-redundant siblings.

// Intersects reports whether two cubes share at least one assignment, i.e.
// they bind no variable to opposite phases.
func Intersects(a, b Cube) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Var < b[j].Var:
			i++
		case a[i].Var > b[j].Var:
			j++
		default:
			if a[i].Neg != b[j].Neg {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// ExpandAgainst widens every cube of cover against the blocking cover and
// returns the minimized result. Neither input is modified.
func ExpandAgainst(cover, blockers Cover) Cover {
	if len(cover) == 0 {
		return nil
	}
	// Index blockers by variable for fast conflict counting: a blocker
	// blocks an expansion iff after dropping a literal the cube still
	// conflicts with it on no variable.
	out := make(Cover, 0, len(cover))
	for _, c := range cover {
		expanded := expandOne(c, blockers)
		out = append(out, expanded)
	}
	return Minimize(out)
}

// expandOne drops literals of c greedily while the cube stays disjoint from
// all blockers. A literal may be dropped as long as no blocker relies on it
// as its ONLY conflict with the cube; conflict counts are maintained
// incrementally, giving O(|c| * sum-of-conflicts) per cube.
func expandOne(c Cube, blockers Cover) Cube {
	if len(c) == 0 {
		return c
	}
	// Per blocker: which literal positions of c conflict with it.
	conflicts := make([][]int, 0, len(blockers))
	blocked := false
	for _, b := range blockers {
		var pos []int
		i, j := 0, 0
		for i < len(c) && j < len(b) {
			switch {
			case c[i].Var < b[j].Var:
				i++
			case c[i].Var > b[j].Var:
				j++
			default:
				if c[i].Neg != b[j].Neg {
					pos = append(pos, i)
				}
				i++
				j++
			}
		}
		if len(pos) == 0 {
			// c already intersects this blocker: the inputs were not a
			// partition. Refuse to expand.
			blocked = true
			break
		}
		conflicts = append(conflicts, pos)
	}
	if blocked {
		return append(Cube(nil), c...)
	}

	// singletonUses[k] = number of blockers whose only conflict is k.
	cnt := make([]int, len(conflicts))
	singletonUses := make([]int, len(c))
	alive := make([][]int, len(c)) // literal -> blockers still conflicting there
	for bi, pos := range conflicts {
		cnt[bi] = len(pos)
		for _, k := range pos {
			alive[k] = append(alive[k], bi)
		}
		if len(pos) == 1 {
			singletonUses[pos[0]]++
		}
	}
	droppedAt := make([]bool, len(c))
	for {
		dropped := false
		for k := 0; k < len(c); k++ {
			if droppedAt[k] || singletonUses[k] > 0 {
				continue
			}
			droppedAt[k] = true
			dropped = true
			for _, bi := range alive[k] {
				cnt[bi]--
				if cnt[bi] == 1 {
					// Find the surviving conflict and pin it.
					for _, kk := range conflicts[bi] {
						if !droppedAt[kk] {
							singletonUses[kk]++
							break
						}
					}
				}
			}
		}
		if !dropped {
			break
		}
	}
	out := make(Cube, 0, len(c))
	for k, l := range c {
		if !droppedAt[k] {
			out = append(out, l)
		}
	}
	return out
}
