package sop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logicregression/internal/circuit"
)

func lit(v int, neg bool) Literal { return Literal{Var: v, Neg: neg} }

func TestNewCubeSortsAndRejectsDuplicates(t *testing.T) {
	c, ok := NewCube(lit(3, false), lit(1, true), lit(2, false))
	if !ok {
		t.Fatal("NewCube rejected valid literals")
	}
	if c[0].Var != 1 || c[1].Var != 2 || c[2].Var != 3 {
		t.Fatalf("cube not sorted: %v", c)
	}
	if _, ok := NewCube(lit(1, false), lit(1, true)); ok {
		t.Fatal("NewCube accepted contradictory literals")
	}
	if _, ok := NewCube(lit(1, false), lit(1, false)); ok {
		t.Fatal("NewCube accepted duplicate literals")
	}
}

func TestCubeWithKeepsOrderAndPanicsOnRebind(t *testing.T) {
	c, _ := NewCube(lit(1, false), lit(5, true))
	d := c.With(lit(3, false))
	if len(d) != 3 || d[1].Var != 3 {
		t.Fatalf("With produced %v", d)
	}
	if len(c) != 2 {
		t.Fatal("With mutated receiver")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rebinding did not panic")
		}
	}()
	d.With(lit(5, false))
}

func TestCubeHas(t *testing.T) {
	c, _ := NewCube(lit(2, true), lit(7, false))
	if l, ok := c.Has(2); !ok || !l.Neg {
		t.Fatalf("Has(2) = %v, %v", l, ok)
	}
	if _, ok := c.Has(3); ok {
		t.Fatal("Has(3) true on unbound var")
	}
}

func TestCubeEvalAndApply(t *testing.T) {
	c, _ := NewCube(lit(0, false), lit(2, true))
	a := []bool{true, false, false}
	if !c.Eval(a) {
		t.Fatal("Eval false on satisfying assignment")
	}
	a[2] = true
	if c.Eval(a) {
		t.Fatal("Eval true on falsifying assignment")
	}
	c.Apply(a)
	if !a[0] || a[2] {
		t.Fatalf("Apply produced %v", a)
	}
	if !Cube(nil).Eval([]bool{false}) {
		t.Fatal("empty cube must be constant 1")
	}
}

func TestCubeContains(t *testing.T) {
	general, _ := NewCube(lit(1, false))
	specific, _ := NewCube(lit(1, false), lit(2, true))
	if !general.Contains(specific) {
		t.Fatal("x1 should contain x1·!x2")
	}
	if specific.Contains(general) {
		t.Fatal("x1·!x2 should not contain x1")
	}
	other, _ := NewCube(lit(1, true), lit(2, true))
	if general.Contains(other) {
		t.Fatal("x1 should not contain !x1·!x2")
	}
	if !Cube(nil).Contains(general) {
		t.Fatal("empty cube contains everything")
	}
}

func TestMergeDistanceOne(t *testing.T) {
	a, _ := NewCube(lit(1, false), lit(2, true), lit(3, false))
	b, _ := NewCube(lit(1, false), lit(2, false), lit(3, false))
	m, ok := MergeDistanceOne(a, b)
	if !ok {
		t.Fatal("merge failed")
	}
	want, _ := NewCube(lit(1, false), lit(3, false))
	if m.Key() != want.Key() {
		t.Fatalf("merge = %v, want %v", m, want)
	}
	// Distance 2: no merge.
	c2, _ := NewCube(lit(1, true), lit(2, false), lit(3, false))
	if _, ok := MergeDistanceOne(a, c2); ok {
		t.Fatal("merged distance-2 cubes")
	}
	// Different variables: no merge.
	d, _ := NewCube(lit(1, false), lit(2, true), lit(4, false))
	if _, ok := MergeDistanceOne(a, d); ok {
		t.Fatal("merged cubes over different variables")
	}
	// Identical cubes: no merge (dedup handles those).
	if _, ok := MergeDistanceOne(a, a); ok {
		t.Fatal("merged identical cubes")
	}
}

func TestCoverEval(t *testing.T) {
	c1, _ := NewCube(lit(0, false), lit(1, false))
	c2, _ := NewCube(lit(2, false))
	cv := Cover{c1, c2}
	if !cv.Eval([]bool{true, true, false}) {
		t.Fatal("first cube should fire")
	}
	if !cv.Eval([]bool{false, false, true}) {
		t.Fatal("second cube should fire")
	}
	if cv.Eval([]bool{true, false, false}) {
		t.Fatal("no cube should fire")
	}
	if Cover(nil).Eval([]bool{true}) {
		t.Fatal("empty cover must be constant 0")
	}
}

func TestMinimizePreservesFunction(t *testing.T) {
	// Full minterm expansion of XOR-ish + redundancy over 3 vars.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		nVars := 3 + rng.Intn(3)
		var cv Cover
		truth := make([]bool, 1<<uint(nVars))
		for m := range truth {
			if rng.Intn(2) == 0 {
				continue
			}
			truth[m] = true
			var lits []Literal
			for v := 0; v < nVars; v++ {
				lits = append(lits, lit(v, m>>uint(v)&1 == 0))
			}
			c, _ := NewCube(lits...)
			cv = append(cv, c)
			if rng.Intn(4) == 0 { // inject duplicates
				cv = append(cv, append(Cube(nil), c...))
			}
		}
		minimized := Minimize(cv)
		if len(minimized) > len(cv) {
			t.Fatalf("Minimize grew the cover: %d -> %d", len(cv), len(minimized))
		}
		for m := range truth {
			assign := make([]bool, nVars)
			for v := 0; v < nVars; v++ {
				assign[v] = m>>uint(v)&1 == 1
			}
			if minimized.Eval(assign) != truth[m] {
				t.Fatalf("trial %d: Minimize changed function at minterm %b", trial, m)
			}
		}
	}
}

func TestMinimizeMergesFullCube(t *testing.T) {
	// All four minterms over 2 vars must collapse to the constant-1 cube.
	var cv Cover
	for m := 0; m < 4; m++ {
		c, _ := NewCube(lit(0, m&1 == 0), lit(1, m>>1&1 == 0))
		cv = append(cv, c)
	}
	got := Minimize(cv)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("Minimize = %v, want constant 1", got)
	}
}

func TestSynthesizeMatchesCoverEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		nVars := 2 + rng.Intn(4)
		var cv Cover
		nCubes := rng.Intn(6)
		for k := 0; k < nCubes; k++ {
			var lits []Literal
			for v := 0; v < nVars; v++ {
				switch rng.Intn(3) {
				case 0:
					lits = append(lits, lit(v, false))
				case 1:
					lits = append(lits, lit(v, true))
				}
			}
			c, _ := NewCube(lits...)
			cv = append(cv, c)
		}
		for _, negate := range []bool{false, true} {
			cc := circuit.New()
			vars := make([]circuit.Signal, nVars)
			for v := range vars {
				vars[v] = cc.AddPI("x" + string(rune('a'+v)))
			}
			cc.AddPO("f", Synthesize(cc, cv, vars, negate))
			for m := 0; m < 1<<uint(nVars); m++ {
				assign := make([]bool, nVars)
				for v := 0; v < nVars; v++ {
					assign[v] = m>>uint(v)&1 == 1
				}
				want := cv.Eval(assign) != negate
				if got := cc.Eval(assign)[0]; got != want {
					t.Fatalf("trial %d negate=%v minterm %b: circuit %v, cover %v",
						trial, negate, m, got, want)
				}
			}
		}
	}
}

func TestLiteralsAndString(t *testing.T) {
	c1, _ := NewCube(lit(0, false), lit(1, true))
	c2, _ := NewCube(lit(2, false))
	cv := Cover{c1, c2}
	if cv.Literals() != 3 {
		t.Fatalf("Literals = %d, want 3", cv.Literals())
	}
	if cv.String() != "x0·!x1 + x2" {
		t.Fatalf("String = %q", cv.String())
	}
	if Cube(nil).String() != "1" || Cover(nil).String() != "0" {
		t.Fatal("constant cube/cover rendering wrong")
	}
}

// Property: Minimize never changes the function on random covers.
func TestQuickMinimizeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(5)
		var cv Cover
		for k := rng.Intn(10); k > 0; k-- {
			var lits []Literal
			for v := 0; v < nVars; v++ {
				switch rng.Intn(3) {
				case 0:
					lits = append(lits, lit(v, false))
				case 1:
					lits = append(lits, lit(v, true))
				}
			}
			c, _ := NewCube(lits...)
			cv = append(cv, c)
		}
		m := Minimize(cv)
		for pat := 0; pat < 1<<uint(nVars); pat++ {
			assign := make([]bool, nVars)
			for v := 0; v < nVars; v++ {
				assign[v] = pat>>uint(v)&1 == 1
			}
			if m.Eval(assign) != cv.Eval(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
