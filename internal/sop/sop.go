// Package sop implements cubes and sum-of-products covers over integer
// variable ids, the intermediate function representation produced by the
// decision-tree learner (Sec. IV-D of the paper) before circuit synthesis.
//
// A Cube is a conjunction of literals with distinct variables, kept sorted by
// variable id. A Cover is a disjunction of cubes. Variables are indices into
// some external ordering (for the learner, primary-input indices).
package sop

import (
	"fmt"
	"sort"
	"strings"
)

// Literal is a possibly negated variable.
type Literal struct {
	Var int
	Neg bool
}

func (l Literal) String() string {
	if l.Neg {
		return fmt.Sprintf("!x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// Cube is a conjunction of literals sorted by variable id with no duplicate
// variables. The empty cube is the constant-1 function.
type Cube []Literal

// NewCube builds a cube from literals, sorting them and rejecting duplicate
// variables (returns false on a duplicate, including contradictory pairs).
func NewCube(lits ...Literal) (Cube, bool) {
	c := append(Cube(nil), lits...)
	sort.Slice(c, func(i, j int) bool { return c[i].Var < c[j].Var })
	for i := 1; i < len(c); i++ {
		if c[i].Var == c[i-1].Var {
			return nil, false
		}
	}
	return c, true
}

// With returns a new cube extending c with literal l. It panics if l's
// variable is already bound: the decision tree never revisits a variable on a
// root-to-leaf path, so a rebind is a bug.
func (c Cube) With(l Literal) Cube {
	out := make(Cube, 0, len(c)+1)
	inserted := false
	for _, lit := range c {
		if lit.Var == l.Var {
			panic(fmt.Sprintf("sop: variable x%d already bound in cube %v", l.Var, c))
		}
		if !inserted && lit.Var > l.Var {
			out = append(out, l)
			inserted = true
		}
		out = append(out, lit)
	}
	if !inserted {
		out = append(out, l)
	}
	return out
}

// Has reports whether the cube binds variable v, and with which literal.
func (c Cube) Has(v int) (Literal, bool) {
	i := sort.Search(len(c), func(i int) bool { return c[i].Var >= v })
	if i < len(c) && c[i].Var == v {
		return c[i], true
	}
	return Literal{}, false
}

// Vars returns the bound variable ids in ascending order.
func (c Cube) Vars() []int {
	vs := make([]int, len(c))
	for i, l := range c {
		vs[i] = l.Var
	}
	return vs
}

// Eval reports whether the assignment (indexed by variable id) satisfies the
// cube.
func (c Cube) Eval(assignment []bool) bool {
	for _, l := range c {
		if assignment[l.Var] == l.Neg {
			return false
		}
	}
	return true
}

// Apply forces the cube's literals into the assignment (in place).
func (c Cube) Apply(assignment []bool) {
	for _, l := range c {
		assignment[l.Var] = !l.Neg
	}
}

// Contains reports whether c's cube-set contains d's, i.e. every literal of c
// appears in d (c is the more general cube: c ⊇ d as point sets).
func (c Cube) Contains(d Cube) bool {
	i := 0
	for _, lc := range c {
		for i < len(d) && d[i].Var < lc.Var {
			i++
		}
		if i >= len(d) || d[i] != lc {
			return false
		}
	}
	return true
}

// MergeDistanceOne attempts the consensus merge of two cubes that differ in
// exactly one complemented literal and agree elsewhere; e.g. ab'c + abc = ac.
// Returns the merged cube and true on success.
func MergeDistanceOne(a, b Cube) (Cube, bool) {
	if len(a) != len(b) {
		return nil, false
	}
	diff := -1
	for i := range a {
		if a[i].Var != b[i].Var {
			return nil, false
		}
		if a[i].Neg != b[i].Neg {
			if diff >= 0 {
				return nil, false
			}
			diff = i
		}
	}
	if diff < 0 {
		return nil, false // identical cubes; caller handles duplicates
	}
	out := make(Cube, 0, len(a)-1)
	out = append(out, a[:diff]...)
	out = append(out, a[diff+1:]...)
	return out, true
}

func (c Cube) String() string {
	if len(c) == 0 {
		return "1"
	}
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return strings.Join(parts, "·")
}

// Key returns a canonical byte-string key for maps. Unlike String it avoids
// fmt formatting: minimization hashes millions of cubes.
func (c Cube) Key() string {
	buf := make([]byte, 0, len(c)*5)
	for _, l := range c {
		v := l.Var<<1 | btoi(l.Neg)
		for v >= 0x80 {
			buf = append(buf, byte(v)|0x80)
			v >>= 7
		}
		buf = append(buf, byte(v))
	}
	return string(buf)
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// varsKey encodes just the variable set, ignoring phases.
func (c Cube) varsKey() string {
	buf := make([]byte, 0, len(c)*5)
	for _, l := range c {
		v := l.Var
		for v >= 0x80 {
			buf = append(buf, byte(v)|0x80)
			v >>= 7
		}
		buf = append(buf, byte(v))
	}
	return string(buf)
}

// phaseKey encodes the phases of a cube with literal position `skip`
// wildcarded (-1 for none).
func (c Cube) phaseKey(skip int) string {
	buf := make([]byte, (len(c)+7)/8)
	for i, l := range c {
		if i == skip {
			continue
		}
		if !l.Neg {
			buf[i>>3] |= 1 << uint(i&7)
		}
	}
	if skip >= 0 {
		// Disambiguate which position is wildcarded.
		buf = append(buf, byte(skip), byte(skip>>8))
	}
	return string(buf)
}

// Cover is a disjunction of cubes. The empty cover is the constant-0
// function.
type Cover []Cube

// Eval reports whether any cube is satisfied.
func (cv Cover) Eval(assignment []bool) bool {
	for _, c := range cv {
		if c.Eval(assignment) {
			return true
		}
	}
	return false
}

// Literals returns the total literal count, a standard two-level size metric.
func (cv Cover) Literals() int {
	n := 0
	for _, c := range cv {
		n += len(c)
	}
	return n
}

// Clone deep-copies the cover.
func (cv Cover) Clone() Cover {
	out := make(Cover, len(cv))
	for i, c := range cv {
		out[i] = append(Cube(nil), c...)
	}
	return out
}

// Minimize applies fast two-level reduction: duplicate removal and
// hash-accelerated distance-1 merging until fixpoint, then one absorption
// (single-cube containment) pass. It is the lightweight stand-in for an
// ESPRESSO pass on the learner's SOP before structural synthesis.
func Minimize(cv Cover) Cover {
	work := dedup(cv.Clone())
	for {
		merged, changed := mergePass(work)
		if !changed {
			break
		}
		work = dedup(merged)
	}
	return absorb(work)
}

func dedup(cv Cover) Cover {
	seen := make(map[string]bool, len(cv))
	out := cv[:0]
	for _, c := range cv {
		if k := c.Key(); !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// absorb removes cubes contained in a more general cube.
func absorb(cv Cover) Cover {
	sort.Slice(cv, func(i, j int) bool {
		if len(cv[i]) != len(cv[j]) {
			return len(cv[i]) < len(cv[j])
		}
		return cv[i].Key() < cv[j].Key()
	})
	var out Cover
	for _, c := range cv {
		absorbed := false
		for _, kept := range out {
			if len(kept) >= len(c) {
				break // sorted: no shorter cubes follow
			}
			if kept.Contains(c) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, c)
		}
	}
	return out
}

// mergePass merges all disjoint distance-1 pairs in one sweep. Cubes can
// only merge when they bind the same variable set, so cubes are grouped by
// variable set and pairs are found by hashing phase vectors with one
// position wildcarded — O(total literals) instead of O(cubes^2).
func mergePass(cv Cover) (Cover, bool) {
	groups := make(map[string][]int, len(cv))
	for i, c := range cv {
		k := c.varsKey()
		groups[k] = append(groups[k], i)
	}
	used := make([]bool, len(cv))
	var out Cover
	changed := false
	// The greedy pairing below is order-sensitive (a cube pairs with the
	// first unused distance-1 partner), and so is the order merged cubes
	// land in out — walk the groups in sorted key order so the result is
	// identical run to run.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		idxs := groups[k]
		if len(idxs) < 2 {
			continue
		}
		byPhase := make(map[string]int, len(idxs))
		for _, i := range idxs {
			byPhase[cv[i].phaseKey(-1)] = i
		}
		for _, i := range idxs {
			if used[i] {
				continue
			}
			c := cv[i]
			for pos := range c {
				// The distance-1 partner has the phase at pos flipped.
				flipped := c[pos]
				flipped.Neg = !flipped.Neg
				partnerKey := partnerPhaseKey(c, pos, flipped)
				j, ok := byPhase[partnerKey]
				if !ok || j == i || used[j] {
					continue
				}
				m, okm := MergeDistanceOne(c, cv[j])
				if !okm {
					continue
				}
				out = append(out, m)
				used[i], used[j] = true, true
				changed = true
				break
			}
		}
	}
	for i, c := range cv {
		if !used[i] {
			out = append(out, c)
		}
	}
	return out, changed
}

// partnerPhaseKey computes the phaseKey(-1) of c with literal pos replaced
// by flipped, without materializing the partner cube.
func partnerPhaseKey(c Cube, pos int, flipped Literal) string {
	buf := make([]byte, (len(c)+7)/8)
	for i, l := range c {
		neg := l.Neg
		if i == pos {
			neg = flipped.Neg
		}
		if !neg {
			buf[i>>3] |= 1 << uint(i&7)
		}
	}
	return string(buf)
}

func (cv Cover) String() string {
	if len(cv) == 0 {
		return "0"
	}
	parts := make([]string, len(cv))
	for i, c := range cv {
		parts[i] = c.String()
	}
	return strings.Join(parts, " + ")
}
