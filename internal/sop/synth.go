package sop

import "logicregression/internal/circuit"

// Synthesize builds the cover as gates in c. vars maps variable ids to
// circuit signals (typically PI signals). When negate is true, the
// constructed function is the complement of the cover, which implements the
// paper's offset-cube option (Sec. IV-D trick 2): the cover describes the
// offset and the output is its inversion.
func Synthesize(c *circuit.Circuit, cv Cover, vars []circuit.Signal, negate bool) circuit.Signal {
	terms := make([]circuit.Signal, 0, len(cv))
	for _, cube := range cv {
		lits := make([]circuit.Signal, 0, len(cube))
		for _, l := range cube {
			s := vars[l.Var]
			if l.Neg {
				s = c.NotGate(s)
			}
			lits = append(lits, s)
		}
		terms = append(terms, c.AndTree(lits))
	}
	out := c.OrTree(terms)
	if negate {
		out = negSignal(c, out)
	}
	return out
}
