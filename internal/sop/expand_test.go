package sop

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntersects(t *testing.T) {
	ab, _ := NewCube(Literal{Var: 0}, Literal{Var: 1})
	aNb, _ := NewCube(Literal{Var: 0}, Literal{Var: 1, Neg: true})
	cOnly, _ := NewCube(Literal{Var: 2})
	if Intersects(ab, aNb) {
		t.Fatal("x0x1 vs x0!x1 must be disjoint")
	}
	if !Intersects(ab, cOnly) {
		t.Fatal("x0x1 vs x2 share assignments")
	}
	if !Intersects(Cube{}, ab) {
		t.Fatal("constant-1 cube intersects everything")
	}
}

// randomPartition splits the space over nVars recursively into labeled
// cubes, mimicking FBDT output.
func randomPartition(rng *rand.Rand, nVars int) (onset, offset Cover) {
	var split func(c Cube, depth int)
	split = func(c Cube, depth int) {
		if depth >= nVars || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				onset = append(onset, c)
			} else {
				offset = append(offset, c)
			}
			return
		}
		// Pick an unbound variable.
		v := -1
		for _, cand := range rng.Perm(nVars) {
			if _, bound := c.Has(cand); !bound {
				v = cand
				break
			}
		}
		if v < 0 {
			onset = append(onset, c)
			return
		}
		split(c.With(Literal{Var: v, Neg: true}), depth+1)
		split(c.With(Literal{Var: v, Neg: false}), depth+1)
	}
	split(nil, 0)
	return onset, offset
}

func TestExpandAgainstPreservesPartitionFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		nVars := 3 + rng.Intn(5)
		onset, offset := randomPartition(rng, nVars)
		expanded := ExpandAgainst(onset, offset)
		if len(expanded) > len(onset) {
			t.Fatalf("trial %d: expansion grew the cover %d -> %d",
				trial, len(onset), len(expanded))
		}
		for m := 0; m < 1<<uint(nVars); m++ {
			a := make([]bool, nVars)
			for v := 0; v < nVars; v++ {
				a[v] = m>>uint(v)&1 == 1
			}
			if expanded.Eval(a) != onset.Eval(a) {
				t.Fatalf("trial %d: function changed at %b\nonset %v\nexpanded %v",
					trial, m, onset, expanded)
			}
		}
	}
}

func TestExpandAgainstShrinksLiterals(t *testing.T) {
	// Partition of 3 vars: onset = {!a!b!c, !a!bc, !ab!c, !abc, a...}
	// A full one-sided subtree should expand to a single short cube.
	var onset, offset Cover
	for m := 0; m < 8; m++ {
		c, _ := NewCube(
			Literal{Var: 0, Neg: m&1 == 0},
			Literal{Var: 1, Neg: m>>1&1 == 0},
			Literal{Var: 2, Neg: m>>2&1 == 0},
		)
		if m&1 == 0 { // everything with a=0 is onset
			onset = append(onset, c)
		} else {
			offset = append(offset, c)
		}
	}
	got := ExpandAgainst(onset, offset)
	if len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("expanded = %v, want the single cube !x0", got)
	}
}

func TestExpandAgainstEmpty(t *testing.T) {
	if got := ExpandAgainst(nil, Cover{{}}); got != nil {
		t.Fatalf("empty cover expanded to %v", got)
	}
	// No blockers: everything expands to the constant-1 cube.
	c, _ := NewCube(Literal{Var: 0}, Literal{Var: 3, Neg: true})
	got := ExpandAgainst(Cover{c}, nil)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("unblocked expansion = %v, want constant 1", got)
	}
}

func TestExpandAgainstNonPartitionIsSafe(t *testing.T) {
	// If a cover cube already intersects a blocker (not a partition), the
	// cube must be left untouched rather than widened unsoundly.
	a, _ := NewCube(Literal{Var: 0})
	b, _ := NewCube(Literal{Var: 1})
	got := ExpandAgainst(Cover{a}, Cover{b}) // x0 intersects x1
	if len(got) != 1 || got[0].Key() != a.Key() {
		t.Fatalf("non-partition input modified: %v", got)
	}
}

func TestQuickExpandEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(4)
		onset, offset := randomPartition(rng, nVars)
		expanded := ExpandAgainst(offset, onset) // expand the other side too
		for m := 0; m < 1<<uint(nVars); m++ {
			a := make([]bool, nVars)
			for v := 0; v < nVars; v++ {
				a[v] = m>>uint(v)&1 == 1
			}
			if expanded.Eval(a) != offset.Eval(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
