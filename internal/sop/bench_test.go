package sop

import (
	"math/rand"
	"testing"
)

// randomCover builds n cubes over v variables with the given literal density.
func randomCover(rng *rand.Rand, n, v int, density float64) Cover {
	var cv Cover
	for k := 0; k < n; k++ {
		var lits []Literal
		for x := 0; x < v; x++ {
			if rng.Float64() < density {
				lits = append(lits, Literal{Var: x, Neg: rng.Intn(2) == 1})
			}
		}
		c, ok := NewCube(lits...)
		if ok {
			cv = append(cv, c)
		}
	}
	return cv
}

func BenchmarkMinimizeMintermHeavy(b *testing.B) {
	// Full-width minterm covers are what the FBDT's truncated trees emit.
	rng := rand.New(rand.NewSource(5))
	cv := randomCover(rng, 2000, 24, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimize(cv)
	}
	b.ReportMetric(float64(len(cv)), "cubes/op")
}

func BenchmarkMinimizeSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	cv := randomCover(rng, 2000, 40, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimize(cv)
	}
}

func BenchmarkCoverEval(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	cv := randomCover(rng, 500, 32, 0.5)
	assign := make([]bool, 32)
	for i := range assign {
		assign[i] = rng.Intn(2) == 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv.Eval(assign)
	}
}
