package sop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logicregression/internal/circuit"
)

// evalBoth builds a cover flat and factored and checks both agree with the
// cover semantics over all assignments.
func checkFactoredEquals(t *testing.T, cv Cover, nVars int, negate bool) {
	t.Helper()
	flat := circuit.New()
	fvars := make([]circuit.Signal, nVars)
	for i := range fvars {
		fvars[i] = flat.AddPI("v" + string(rune('a'+i)))
	}
	flat.AddPO("z", Synthesize(flat, cv, fvars, negate))

	fact := circuit.New()
	gvars := make([]circuit.Signal, nVars)
	for i := range gvars {
		gvars[i] = fact.AddPI("v" + string(rune('a'+i)))
	}
	fact.AddPO("z", SynthesizeFactored(fact, cv, gvars, negate))

	for m := 0; m < 1<<uint(nVars); m++ {
		a := make([]bool, nVars)
		for v := 0; v < nVars; v++ {
			a[v] = m>>uint(v)&1 == 1
		}
		want := cv.Eval(a) != negate
		if flat.Eval(a)[0] != want {
			t.Fatalf("flat synthesis wrong at %b", m)
		}
		if fact.Eval(a)[0] != want {
			t.Fatalf("factored synthesis wrong at %b (cover %v)", m, cv)
		}
	}
}

func TestFactoredMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		nVars := 2 + rng.Intn(5)
		cv := randomCover(rng, 1+rng.Intn(10), nVars, 0.6)
		checkFactoredEquals(t, cv, nVars, trial%2 == 0)
	}
}

func TestFactoredSharesCommonLiteral(t *testing.T) {
	// F = a·b + a·c + a·d: flat = 3 AND + 2 OR = 5 gates (+0 inverters);
	// factored = a·(b+c+d) = 1 AND + 2 OR = 3 gates.
	var cv Cover
	for _, v := range []int{1, 2, 3} {
		cube, _ := NewCube(Literal{Var: 0}, Literal{Var: v})
		cv = append(cv, cube)
	}
	flat := circuit.New()
	fvars := make([]circuit.Signal, 4)
	for i := range fvars {
		fvars[i] = flat.AddPI("v" + string(rune('a'+i)))
	}
	flat.AddPO("z", Synthesize(flat, cv, fvars, false))

	fact := circuit.New()
	gvars := make([]circuit.Signal, 4)
	for i := range gvars {
		gvars[i] = fact.AddPI("v" + string(rune('a'+i)))
	}
	fact.AddPO("z", SynthesizeFactored(fact, cv, gvars, false))

	if fact.Size() >= flat.Size() {
		t.Fatalf("factored %d gates, flat %d: no sharing", fact.Size(), flat.Size())
	}
	checkFactoredEquals(t, cv, 4, false)
}

func TestFactoredEdgeCases(t *testing.T) {
	checkFactoredEquals(t, nil, 2, false)         // constant 0
	checkFactoredEquals(t, nil, 2, true)          // constant 1 via negate
	checkFactoredEquals(t, Cover{{}}, 2, false)   // constant 1 (empty cube)
	one, _ := NewCube(Literal{Var: 1, Neg: true}) // single literal
	checkFactoredEquals(t, Cover{one}, 2, false)
}

func TestQuickFactoredEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(4)
		cv := randomCover(rng, rng.Intn(12), nVars, 0.5)
		fact := circuit.New()
		gvars := make([]circuit.Signal, nVars)
		for i := range gvars {
			gvars[i] = fact.AddPI("v" + string(rune('a'+i)))
		}
		fact.AddPO("z", SynthesizeFactored(fact, cv, gvars, false))
		for m := 0; m < 1<<uint(nVars); m++ {
			a := make([]bool, nVars)
			for v := 0; v < nVars; v++ {
				a[v] = m>>uint(v)&1 == 1
			}
			if fact.Eval(a)[0] != cv.Eval(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
