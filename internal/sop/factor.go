package sop

// Algebraic factoring (SIS-style "quick factor"): a cover is synthesized as
// multi-level logic by recursively dividing out the most frequent literal,
//
//	F  =  l * (F / l)  +  (F - cubes containing l)
//
// which shares the literal across its quotient instead of repeating it in
// every cube. On the structured covers the learner produces this typically
// shrinks gate counts severalfold versus flat AND-OR synthesis — the same
// role `dc2`-class multilevel synthesis plays for the paper.

import "logicregression/internal/circuit"

// SynthesizeFactored builds the cover as factored multi-level gates in c.
// vars maps variable ids to signals; negate complements the result (the
// offset-cover option). The flat Synthesize remains available for callers
// that need two-level structure.
func SynthesizeFactored(c *circuit.Circuit, cv Cover, vars []circuit.Signal, negate bool) circuit.Signal {
	lits := newLitSignals(c, vars)
	out := factor(c, cv.Clone(), lits)
	if negate {
		out = negSignal(c, out)
	}
	return out
}

// negSignal complements a signal, folding constants so an empty or universal
// cover under the offset option yields CONST1/CONST0 instead of a
// NOT-of-constant gate (a const-fanin lint finding).
func negSignal(c *circuit.Circuit, s circuit.Signal) circuit.Signal {
	switch c.Node(s).Type {
	case circuit.Const0:
		return c.Const(true)
	case circuit.Const1:
		return c.Const(false)
	}
	return c.NotGate(s)
}

// litSignals caches the signal of every literal so complemented variables
// are inverted once, not once per cube.
type litSignals struct {
	c    *circuit.Circuit
	pos  []circuit.Signal
	neg  []circuit.Signal
	have []bool
}

func newLitSignals(c *circuit.Circuit, vars []circuit.Signal) *litSignals {
	return &litSignals{
		c:    c,
		pos:  vars,
		neg:  make([]circuit.Signal, len(vars)),
		have: make([]bool, len(vars)),
	}
}

func (ls *litSignals) signal(l Literal) circuit.Signal {
	if !l.Neg {
		return ls.pos[l.Var]
	}
	if !ls.have[l.Var] {
		ls.neg[l.Var] = ls.c.NotGate(ls.pos[l.Var])
		ls.have[l.Var] = true
	}
	return ls.neg[l.Var]
}

// factor recursively synthesizes the cover.
func factor(c *circuit.Circuit, cv Cover, lits *litSignals) circuit.Signal {
	switch len(cv) {
	case 0:
		return c.Const(false)
	case 1:
		return andCube(c, cv[0], lits)
	}
	best, count := mostFrequentLiteral(cv)
	if count < 2 {
		// No sharing available: flat OR of cube ANDs.
		terms := make([]circuit.Signal, len(cv))
		for i, cube := range cv {
			terms[i] = andCube(c, cube, lits)
		}
		return c.OrTree(terms)
	}
	var quotient, remainder Cover
	for _, cube := range cv {
		if l, ok := cube.Has(best.Var); ok && l.Neg == best.Neg {
			quotient = append(quotient, removeVar(cube, best.Var))
		} else {
			remainder = append(remainder, cube)
		}
	}
	q := c.And(lits.signal(best), factor(c, quotient, lits))
	if len(remainder) == 0 {
		return q
	}
	return c.Or(q, factor(c, remainder, lits))
}

func andCube(c *circuit.Circuit, cube Cube, lits *litSignals) circuit.Signal {
	if len(cube) == 0 {
		return c.Const(true)
	}
	sigs := make([]circuit.Signal, len(cube))
	for i, l := range cube {
		sigs[i] = lits.signal(l)
	}
	return c.AndTree(sigs)
}

// mostFrequentLiteral scans the cover for the literal occurring in the most
// cubes.
func mostFrequentLiteral(cv Cover) (Literal, int) {
	counts := make(map[Literal]int)
	var best Literal
	bestN := 0
	for _, cube := range cv {
		for _, l := range cube {
			counts[l]++
			if counts[l] > bestN || (counts[l] == bestN && less(l, best)) {
				best = l
				bestN = counts[l]
			}
		}
	}
	return best, bestN
}

// less gives a deterministic tie-break order on literals.
func less(a, b Literal) bool {
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	return !a.Neg && b.Neg
}

func removeVar(cube Cube, v int) Cube {
	out := make(Cube, 0, len(cube)-1)
	for _, l := range cube {
		if l.Var != v {
			out = append(out, l)
		}
	}
	return out
}
