package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if !v.Zero() {
			t.Fatalf("New(%d) not zero", n)
		}
		if v.OnesCount() != 0 {
			t.Fatalf("New(%d) OnesCount = %d", n, v.OnesCount())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d initially set", i)
		}
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Flip(i)
		if v.Get(i) {
			t.Fatalf("bit %d set after Flip", i)
		}
		v.Flip(i)
		if !v.Get(i) {
			t.Fatalf("bit %d clear after second Flip", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Fatalf("bit %d set after Set(false)", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, f := range []func(){
		func() { v.Get(10) },
		func() { v.Get(-1) },
		func() { v.Set(10, true) },
		func() { v.Flip(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFromBoolsRoundTrip(t *testing.T) {
	bs := []bool{true, false, true, true, false, false, true}
	v := FromBools(bs)
	got := v.Bools()
	if len(got) != len(bs) {
		t.Fatalf("len = %d, want %d", len(got), len(bs))
	}
	for i := range bs {
		if got[i] != bs[i] {
			t.Fatalf("bit %d = %v, want %v", i, got[i], bs[i])
		}
	}
}

func TestFromUintRoundTrip(t *testing.T) {
	for _, x := range []uint64{0, 1, 2, 5, 0xdeadbeef, ^uint64(0)} {
		v := FromUint(x, 64)
		if v.Uint() != x {
			t.Fatalf("Uint = %d, want %d", v.Uint(), x)
		}
	}
	// Truncation to n bits.
	v := FromUint(0xff, 4)
	if v.Uint() != 0xf {
		t.Fatalf("truncated Uint = %d, want 15", v.Uint())
	}
}

func TestSetAllAndTailMask(t *testing.T) {
	v := New(70)
	v.SetAll(true)
	if v.OnesCount() != 70 {
		t.Fatalf("OnesCount after SetAll(true) = %d, want 70", v.OnesCount())
	}
	v.SetAll(false)
	if !v.Zero() {
		t.Fatal("not zero after SetAll(false)")
	}
}

func TestNotMasksTail(t *testing.T) {
	v := New(70)
	w := New(70)
	w.Not(v)
	if w.OnesCount() != 70 {
		t.Fatalf("Not(zero) OnesCount = %d, want 70", w.OnesCount())
	}
}

func TestLogicOps(t *testing.T) {
	x := FromBools([]bool{true, true, false, false})
	y := FromBools([]bool{true, false, true, false})
	and, or, xor := New(4), New(4), New(4)
	and.And(x, y)
	or.Or(x, y)
	xor.Xor(x, y)
	wantAnd := []bool{true, false, false, false}
	wantOr := []bool{true, true, true, false}
	wantXor := []bool{false, true, true, false}
	for i := 0; i < 4; i++ {
		if and.Get(i) != wantAnd[i] {
			t.Errorf("and bit %d = %v", i, and.Get(i))
		}
		if or.Get(i) != wantOr[i] {
			t.Errorf("or bit %d = %v", i, or.Get(i))
		}
		if xor.Get(i) != wantXor[i] {
			t.Errorf("xor bit %d = %v", i, xor.Get(i))
		}
	}
}

func TestLogicOpsAliasing(t *testing.T) {
	x := FromUint(0b1100, 4)
	y := FromUint(0b1010, 4)
	x.And(x, y) // aliased destination
	if x.Uint() != 0b1000 {
		t.Fatalf("aliased And = %b, want 1000", x.Uint())
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	x, y := New(4), New(5)
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(4).And(x, y)
}

func TestCloneIndependence(t *testing.T) {
	v := FromUint(0b101, 3)
	w := v.Clone()
	w.Flip(0)
	if !v.Get(0) {
		t.Fatal("Clone is not independent")
	}
	if w.Get(0) {
		t.Fatal("Flip on clone had no effect")
	}
}

func TestCopyFrom(t *testing.T) {
	v := New(8)
	src := FromUint(0xa5, 8)
	v.CopyFrom(src)
	if !v.Equal(src) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestEqual(t *testing.T) {
	if !New(5).Equal(New(5)) {
		t.Fatal("equal zero vectors reported unequal")
	}
	if New(5).Equal(New(6)) {
		t.Fatal("different lengths reported equal")
	}
	a := FromUint(3, 5)
	b := FromUint(3, 5)
	if !a.Equal(b) {
		t.Fatal("identical vectors unequal")
	}
	b.Flip(4)
	if a.Equal(b) {
		t.Fatal("different vectors equal")
	}
}

func TestString(t *testing.T) {
	v := FromUint(0b0110, 4)
	if s := v.String(); s != "0b0110" {
		t.Fatalf("String = %q, want 0b0110", s)
	}
}

// Property: De Morgan's law holds on random vectors.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		x, y := New(n), New(n)
		for i := 0; i < n; i++ {
			x.Set(i, rng.Intn(2) == 1)
			y.Set(i, rng.Intn(2) == 1)
		}
		lhs, rhs := New(n), New(n)
		tmp := New(n)
		// NOT(x AND y)
		tmp.And(x, y)
		lhs.Not(tmp)
		// NOT x OR NOT y
		nx, ny := New(n), New(n)
		nx.Not(x)
		ny.Not(y)
		rhs.Or(nx, ny)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: XOR is its own inverse.
func TestQuickXorInverse(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		x, y := New(n), New(n)
		for i := 0; i < n; i++ {
			x.Set(i, rng.Intn(2) == 1)
			y.Set(i, rng.Intn(2) == 1)
		}
		z := New(n)
		z.Xor(x, y)
		z.Xor(z, y)
		return z.Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OnesCount(x XOR y) equals Hamming distance computed bitwise.
func TestQuickOnesCountXor(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		x, y := New(n), New(n)
		dist := 0
		for i := 0; i < n; i++ {
			a, b := rng.Intn(2) == 1, rng.Intn(2) == 1
			x.Set(i, a)
			y.Set(i, b)
			if a != b {
				dist++
			}
		}
		z := New(n)
		z.Xor(x, y)
		return z.OnesCount() == dist
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
