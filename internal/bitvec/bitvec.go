// Package bitvec provides packed bit vectors used throughout the learner for
// input assignments, simulation values, and 64-way parallel pattern words.
//
// A Vector stores bits little-endian within 64-bit words: bit i lives in
// word i/64 at position i%64. Vectors are fixed-length; all operations on two
// vectors require equal lengths and panic otherwise, since a length mismatch
// is always a programming error in this code base.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length packed bit vector.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of n bits.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// FromBools builds a vector from a bool slice.
func FromBools(bs []bool) *Vector {
	v := New(len(bs))
	for i, b := range bs {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// FromUint builds an n-bit vector holding the low n bits of x, bit 0 = LSB.
func FromUint(x uint64, n int) *Vector {
	v := New(n)
	for i := 0; i < n && i < 64; i++ {
		v.Set(i, x>>uint(i)&1 == 1)
	}
	return v
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// The bit accessors below inline their bounds check instead of calling a
// shared helper: the explicit w >= len(v.words) comparison subsumes the
// implicit check the compiler would otherwise emit at every v.words[w],
// and hands the bound to the range prover (and the compiler's BCE), which
// reason function-locally.

// Get returns bit i.
//
//logicreg:hotpath
func (v *Vector) Get(i int) bool {
	w := i >> 6
	if i < 0 || i >= v.n || w >= len(v.words) {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	return v.words[w]>>(uint(i)&63)&1 == 1
}

// Set sets bit i to b.
//
//logicreg:hotpath
func (v *Vector) Set(i int, b bool) {
	w := i >> 6
	if i < 0 || i >= v.n || w >= len(v.words) {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	if b {
		v.words[w] |= 1 << (uint(i) & 63)
	} else {
		v.words[w] &^= 1 << (uint(i) & 63)
	}
}

// Flip toggles bit i.
//
//logicreg:hotpath
func (v *Vector) Flip(i int) {
	w := i >> 6
	if i < 0 || i >= v.n || w >= len(v.words) {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	v.words[w] ^= 1 << (uint(i) & 63)
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of src (equal lengths required).
//
//logicreg:hotpath
func (v *Vector) CopyFrom(src *Vector) {
	v.eq(src)
	copy(v.words, src.words)
}

func (v *Vector) eq(w *Vector) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
}

// Equal reports whether v and w hold identical bits (and lengths).
//
//logicreg:hotpath
func (v *Vector) Equal(w *Vector) bool {
	if v.n != w.n || len(v.words) != len(w.words) {
		return false
	}
	for i, x := range v.words {
		if x != w.words[i] {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits.
//
//logicreg:hotpath
func (v *Vector) OnesCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Zero reports whether every bit is 0.
//
//logicreg:hotpath
func (v *Vector) Zero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// SetAll sets every bit to b.
//
//logicreg:hotpath
func (v *Vector) SetAll(b bool) {
	var fill uint64
	if b {
		fill = ^uint64(0)
	}
	for i := range v.words {
		v.words[i] = fill
	}
	v.maskTail()
}

// maskTail clears the unused high bits of the final word so that word-level
// operations (OnesCount, Equal) stay exact.
func (v *Vector) maskTail() {
	if r := uint(v.n) & 63; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << r) - 1
	}
}

// And stores x AND y into v. Aliasing with x or y is allowed.
//
//logicreg:hotpath
func (v *Vector) And(x, y *Vector) {
	v.eq(x)
	v.eq(y)
	if len(x.words) < len(v.words) || len(y.words) < len(v.words) {
		panic("bitvec: inconsistent word slice length")
	}
	for i := range v.words {
		v.words[i] = x.words[i] & y.words[i]
	}
}

// Or stores x OR y into v.
//
//logicreg:hotpath
func (v *Vector) Or(x, y *Vector) {
	v.eq(x)
	v.eq(y)
	if len(x.words) < len(v.words) || len(y.words) < len(v.words) {
		panic("bitvec: inconsistent word slice length")
	}
	for i := range v.words {
		v.words[i] = x.words[i] | y.words[i]
	}
}

// Xor stores x XOR y into v.
//
//logicreg:hotpath
func (v *Vector) Xor(x, y *Vector) {
	v.eq(x)
	v.eq(y)
	if len(x.words) < len(v.words) || len(y.words) < len(v.words) {
		panic("bitvec: inconsistent word slice length")
	}
	for i := range v.words {
		v.words[i] = x.words[i] ^ y.words[i]
	}
}

// Not stores NOT x into v.
//
//logicreg:hotpath
func (v *Vector) Not(x *Vector) {
	v.eq(x)
	if len(x.words) < len(v.words) {
		panic("bitvec: inconsistent word slice length")
	}
	for i := range v.words {
		v.words[i] = ^x.words[i]
	}
	v.maskTail()
}

// Bools expands the vector into a bool slice.
func (v *Vector) Bools() []bool {
	bs := make([]bool, v.n)
	for i := range bs {
		bs[i] = v.Get(i)
	}
	return bs
}

// Uint interprets bits [0,min(n,64)) as a little-endian unsigned integer.
func (v *Vector) Uint() uint64 {
	if v.n == 0 {
		return 0
	}
	x := v.words[0]
	if v.n < 64 {
		x &= (1 << uint(v.n)) - 1
	}
	return x
}

// String renders the vector MSB-first, e.g. "0b0110" for Len 4.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteString("0b")
	for i := v.n - 1; i >= 0; i-- {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Word is a 64-wide simulation word: one bit position per parallel pattern.
type Word = uint64

// WordAll is the all-ones simulation word.
const WordAll Word = ^Word(0)
