package fbdt

import (
	"math/rand"
	"testing"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
)

func BenchmarkBuildMajorityTree(b *testing.B) {
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < 9; i++ {
		sigs = append(sigs, c.AddPI(string(rune('a'+i))))
	}
	// 3-of-3 majority-of-majorities.
	var maj []circuit.Signal
	for q := 0; q < 3; q++ {
		x, y, z := sigs[3*q], sigs[3*q+1], sigs[3*q+2]
		maj = append(maj, c.Or(c.Or(c.And(x, y), c.And(x, z)), c.And(y, z)))
	}
	c.AddPO("m", c.Or(c.Or(c.And(maj[0], maj[1]), c.And(maj[0], maj[2])), c.And(maj[1], maj[2])))
	o := oracle.FromCircuit(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		Build(o, 0, Config{R: 60}, rng)
	}
}

func BenchmarkExhaustive16(b *testing.B) {
	// The paper's trick-1 path at support 16: 65536 queries per build.
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < 16; i++ {
		sigs = append(sigs, c.AddPI(string(rune('a'+i))))
	}
	var quads []circuit.Signal
	for q := 0; q < 4; q++ {
		quads = append(quads, c.AndTree(sigs[4*q:4*q+4]))
	}
	c.AddPO("z", c.OrTree(quads))
	o := oracle.FromCircuit(c)
	sup := make([]int, 16)
	for i := range sup {
		sup[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		res := Exhaustive(o, 0, sup, rng)
		if len(res.Onset) == 0 {
			b.Fatal("empty onset")
		}
	}
	b.ReportMetric(65536, "queries/op")
}
