package fbdt

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
	"logicregression/internal/sop"
)

// checkLearned verifies the learned cover reproduces the oracle exactly over
// all 2^n assignments (only for small n).
func checkLearned(t *testing.T, o oracle.Oracle, out int, cover sop.Cover, negate bool) {
	t.Helper()
	n := o.NumInputs()
	for m := 0; m < 1<<uint(n); m++ {
		a := make([]bool, n)
		for i := 0; i < n; i++ {
			a[i] = m>>uint(i)&1 == 1
		}
		want := o.Eval(a)[out]
		got := cover.Eval(a) != negate
		if got != want {
			t.Fatalf("minterm %0*b: learned %v, oracle %v", n, m, got, want)
		}
	}
}

func majorityOracle() oracle.Oracle {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	d := c.AddPI("d")
	// majority(a,b,d)
	c.AddPO("z", c.Or(c.Or(c.And(a, b), c.And(a, d)), c.And(b, d)))
	return oracle.FromCircuit(c)
}

func TestBuildLearnsMajorityExactly(t *testing.T) {
	o := majorityOracle()
	rng := rand.New(rand.NewSource(1))
	res := Build(o, 0, Config{R: 128}, rng)
	cover, negate := res.Choose()
	checkLearned(t, o, 0, cover, negate)
	if res.Stats.Exhausted {
		t.Fatal("build should not have exhausted its budget")
	}
	if res.Stats.Leaves1 == 0 || res.Stats.Leaves0 == 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestBuildLearnsXorChain(t *testing.T) {
	// XOR needs a full tree: every variable matters everywhere.
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < 5; i++ {
		sigs = append(sigs, c.AddPI(string(rune('a'+i))))
	}
	c.AddPO("z", c.XorTree(sigs))
	o := oracle.FromCircuit(c)
	rng := rand.New(rand.NewSource(2))
	res := Build(o, 0, Config{R: 64}, rng)
	cover, negate := res.Choose()
	checkLearned(t, o, 0, cover, negate)
	// XOR over 5 vars has 16 onset and 16 offset minterms.
	if len(res.Onset) != 16 || len(res.Offset) != 16 {
		t.Fatalf("onset/offset sizes = %d/%d, want 16/16", len(res.Onset), len(res.Offset))
	}
}

func TestBuildConstantFunctions(t *testing.T) {
	for _, val := range []bool{false, true} {
		c := circuit.New()
		c.AddPI("a")
		c.AddPI("b")
		c.AddPO("z", c.Const(val))
		o := oracle.FromCircuit(c)
		rng := rand.New(rand.NewSource(3))
		res := Build(o, 0, Config{R: 64}, rng)
		cover, negate := res.Choose()
		checkLearned(t, o, 0, cover, negate)
		if res.Stats.NodesExpanded != 0 {
			t.Fatalf("constant %v expanded %d nodes", val, res.Stats.NodesExpanded)
		}
	}
}

func TestBuildRespectsCandidates(t *testing.T) {
	// z = a XOR b, with candidates restricted to {0}: the tree can only
	// split on a, then must majority-vote the residual (which is 50/50).
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.AddPO("z", c.Xor(a, b))
	o := oracle.FromCircuit(c)
	rng := rand.New(rand.NewSource(4))
	res := Build(o, 0, Config{R: 64, Candidates: []int{0}}, rng)
	for _, cube := range append(res.Onset, res.Offset...) {
		for _, l := range cube {
			if l.Var != 0 {
				t.Fatalf("cube %v uses non-candidate variable", cube)
			}
		}
	}
	if res.Stats.ApproxLeaves == 0 {
		t.Fatal("expected approximate leaves when candidates underapproximate support")
	}
}

func TestBuildOnsetOffsetChoice(t *testing.T) {
	// z = a AND b AND d: onset is 1 minterm, offset is 7. Choose must pick
	// the onset without negation.
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	d := c.AddPI("d")
	c.AddPO("z", c.And(c.And(a, b), d))
	o := oracle.FromCircuit(c)
	rng := rand.New(rand.NewSource(5))
	res := Build(o, 0, Config{R: 128}, rng)
	cover, negate := res.Choose()
	if negate {
		t.Fatal("AND3 should choose the onset")
	}
	if len(cover) != 1 {
		t.Fatalf("onset = %v, want single cube", cover)
	}
	checkLearned(t, o, 0, cover, negate)

	// z = a OR b OR d: offset is 1 minterm; Choose must negate.
	c2 := circuit.New()
	a2 := c2.AddPI("a")
	b2 := c2.AddPI("b")
	d2 := c2.AddPI("d")
	c2.AddPO("z", c2.Or(c2.Or(a2, b2), d2))
	o2 := oracle.FromCircuit(c2)
	res2 := Build(o2, 0, Config{R: 128}, rand.New(rand.NewSource(6)))
	cover2, negate2 := res2.Choose()
	if !negate2 {
		t.Fatal("OR3 should choose the offset")
	}
	checkLearned(t, o2, 0, cover2, negate2)
}

func TestBuildMaxNodesTruncates(t *testing.T) {
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < 8; i++ {
		sigs = append(sigs, c.AddPI(string(rune('a'+i))))
	}
	c.AddPO("z", c.XorTree(sigs))
	o := oracle.FromCircuit(c)
	rng := rand.New(rand.NewSource(7))
	res := Build(o, 0, Config{R: 32, MaxNodes: 5}, rng)
	if !res.Stats.Exhausted {
		t.Fatal("expected exhausted build")
	}
	if res.Stats.NodesExpanded > 5 {
		t.Fatalf("expanded %d nodes, budget 5", res.Stats.NodesExpanded)
	}
	if res.Stats.ApproxLeaves == 0 {
		t.Fatal("expected approximate leaves")
	}
}

func TestBuildDeadlineTruncates(t *testing.T) {
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < 10; i++ {
		sigs = append(sigs, c.AddPI(string(rune('a'+i))))
	}
	c.AddPO("z", c.XorTree(sigs))
	o := oracle.FromCircuit(c)
	rng := rand.New(rand.NewSource(8))
	res := Build(o, 0, Config{R: 32, Deadline: time.Now().Add(-time.Second)}, rng)
	if !res.Stats.Exhausted {
		t.Fatal("expired deadline should truncate")
	}
}

func TestBuildMaxDepth(t *testing.T) {
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < 6; i++ {
		sigs = append(sigs, c.AddPI(string(rune('a'+i))))
	}
	c.AddPO("z", c.XorTree(sigs))
	o := oracle.FromCircuit(c)
	rng := rand.New(rand.NewSource(9))
	res := Build(o, 0, Config{R: 32, MaxDepth: 3}, rng)
	for _, cube := range append(res.Onset, res.Offset...) {
		if len(cube) > 3 {
			t.Fatalf("cube %v deeper than MaxDepth", cube)
		}
	}
}

func TestExhaustiveLearnsExactly(t *testing.T) {
	// Function over inputs {1,3} of a 5-input oracle; others ignored.
	c := circuit.New()
	c.AddPI("p0")
	a := c.AddPI("p1")
	c.AddPI("p2")
	b := c.AddPI("p3")
	c.AddPI("p4")
	c.AddPO("z", c.Xor(a, b))
	o := oracle.FromCircuit(c)
	rng := rand.New(rand.NewSource(10))
	res := Exhaustive(o, 0, []int{1, 3}, rng)
	if !res.Stats.Exhaustive {
		t.Fatal("Exhaustive flag not set")
	}
	cover, negate := res.Choose()
	checkLearned(t, o, 0, cover, negate)
	if res.RootTruthRatio != 0.5 {
		t.Fatalf("RootTruthRatio = %f, want 0.5", res.RootTruthRatio)
	}
}

func TestExhaustiveEmptySupport(t *testing.T) {
	c := circuit.New()
	c.AddPI("a")
	c.AddPO("z", c.Const(true))
	o := oracle.FromCircuit(c)
	res := Exhaustive(o, 0, nil, rand.New(rand.NewSource(11)))
	cover, negate := res.Choose()
	if (cover.Eval([]bool{false}) != negate) != true {
		t.Fatal("constant-1 not learned from empty support")
	}
}

func TestBuildDelegatesToExhaustive(t *testing.T) {
	o := majorityOracle()
	rng := rand.New(rand.NewSource(12))
	res := Build(o, 0, Config{R: 16, Candidates: []int{0, 1, 2}, ExhaustiveThreshold: 3}, rng)
	if !res.Stats.Exhaustive {
		t.Fatal("Build did not delegate to Exhaustive")
	}
	cover, negate := res.Choose()
	checkLearned(t, o, 0, cover, negate)
}

func TestBuildWithLeafEpsilonStopsEarly(t *testing.T) {
	// A 10-input OR is almost always 1 under even sampling; with a loose
	// epsilon the root itself becomes a 1-leaf.
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < 10; i++ {
		sigs = append(sigs, c.AddPI(string(rune('a'+i))))
	}
	c.AddPO("z", c.OrTree(sigs))
	o := oracle.FromCircuit(c)
	rng := rand.New(rand.NewSource(13))
	res := Build(o, 0, Config{R: 64, Ratios: []float64{0.5}, LeafEpsilon: 0.05}, rng)
	if res.Stats.NodesExpanded != 0 {
		t.Fatalf("expanded %d nodes, want 0 with loose epsilon", res.Stats.NodesExpanded)
	}
	if len(res.Onset) != 1 || len(res.Onset[0]) != 0 {
		t.Fatalf("onset = %v, want the empty cube", res.Onset)
	}
}

func TestDepthFirstDigsDeeperUnderBudget(t *testing.T) {
	// Same function and node budget: the paper's levelized order explores
	// evenly while depth-first burns its budget down one branch, reaching
	// strictly deeper cubes. (This is the structural core of the paper's
	// remark that even exploration is more beneficial under truncation.)
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < 12; i++ {
		sigs = append(sigs, c.AddPI(string(rune('a'+i))))
	}
	c.AddPO("z", c.XorTree(sigs))
	o := oracle.FromCircuit(c)

	bfs := Build(o, 0, Config{R: 32, MaxNodes: 40}, rand.New(rand.NewSource(5)))
	dfs := Build(o, 0, Config{R: 32, MaxNodes: 40, DepthFirst: true}, rand.New(rand.NewSource(5)))
	if dfs.Stats.MaxDepthReached <= bfs.Stats.MaxDepthReached {
		t.Fatalf("DFS depth %d <= BFS depth %d under the same budget",
			dfs.Stats.MaxDepthReached, bfs.Stats.MaxDepthReached)
	}
}

func TestExhaustiveMintermFallbackOnBudget(t *testing.T) {
	// Shrink the BDD budget so Exhaustive takes the explicit-minterm path;
	// the learned function must still be exact.
	old := exhaustiveBDDBudget
	exhaustiveBDDBudget = 4
	defer func() { exhaustiveBDDBudget = old }()

	o := majorityOracle()
	res := Exhaustive(o, 0, []int{0, 1, 2}, rand.New(rand.NewSource(20)))
	cover, negate := res.Choose()
	checkLearned(t, o, 0, cover, negate)
}

// TestBuildBatchMatchesScalar pins the batching-on/off equivalence of the
// tree builder: the batched truth-ratio probes and exhaustive sweep must
// consume the RNG in the scalar order and yield an identical Result.
func TestBuildBatchMatchesScalar(t *testing.T) {
	o := majorityOracle()
	cfg := Config{Candidates: []int{0, 1, 2}, R: 100, MaxDepth: 8}
	fast := Build(o, 0, cfg, rand.New(rand.NewSource(3)))
	slow := Build(oracle.ScalarOnly(o), 0, cfg, rand.New(rand.NewSource(3)))
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("Build diverges:\nbatch  %+v\nscalar %+v", fast, slow)
	}

	fastEx := Exhaustive(o, 0, []int{0, 1, 2}, rand.New(rand.NewSource(4)))
	slowEx := Exhaustive(oracle.ScalarOnly(o), 0, []int{0, 1, 2}, rand.New(rand.NewSource(4)))
	if !reflect.DeepEqual(fastEx, slowEx) {
		t.Fatalf("Exhaustive diverges:\nbatch  %+v\nscalar %+v", fastEx, slowEx)
	}
}
