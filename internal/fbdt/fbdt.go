// Package fbdt implements the free-binary-decision-tree circuit learning
// procedure of Sec. IV-D (Algorithm 2 of the paper).
//
// The tree is explored in levelized (breadth-first) order. Each node carries
// a cube of already-decided literals; PatternSampling constrained by that
// cube estimates the node function's TruthRatio and the dependency counts of
// the remaining inputs. Nodes whose sampled TruthRatio reaches 0% or 100%
// (within Config.LeafEpsilon, the paper's early-stopping trick) become
// leaves; otherwise the node splits on the most significant input. On
// timeout or node-budget exhaustion, pending nodes become approximate leaves
// by majority value, preserving the paper's anytime behaviour.
//
// The package also implements the "conquering small functions" trick:
// when the identified support is small, Exhaustive enumerates the whole
// subfunction truth table instead of growing a tree.
package fbdt

import (
	"math/bits"
	"math/rand"
	"time"

	"logicregression/internal/bdd"
	"logicregression/internal/oracle"
	"logicregression/internal/sampling"
	"logicregression/internal/sop"
)

// Config controls tree construction.
type Config struct {
	// R is the number of sampled patterns per candidate input per node
	// (paper: 60).
	R int
	// Ratios is the sampling bias pool; empty means sampling.DefaultRatios.
	Ratios []float64
	// LeafEpsilon declares a node a leaf when its TruthRatio is <= eps or
	// >= 1-eps. Zero demands exact constancy among samples (the paper's
	// base rule); positive values implement early stopping (trick 3).
	LeafEpsilon float64
	// Candidates restricts split variables, typically to the support S'
	// identified beforehand. Nil means all inputs.
	Candidates []int
	// MaxDepth bounds the cube length; 0 means unbounded (the candidate
	// count is the natural bound).
	MaxDepth int
	// MaxNodes bounds the number of expanded (split) nodes; 0 = unbounded.
	MaxNodes int
	// Deadline is the wall-clock limit of Algorithm 2; zero means none.
	Deadline time.Time
	// ExhaustiveThreshold, when > 0 and the candidate set is at most this
	// large, switches to exhaustive truth-table enumeration (trick 1;
	// paper: 18).
	ExhaustiveThreshold int
	// ProbeR is the number of direct samples used to estimate a node's
	// TruthRatio when no free candidate inputs remain (the candidate set
	// underapproximated the true support). 0 defaults to 64.
	ProbeR int
	// DepthFirst explores the tree depth-first instead of the paper's
	// levelized (breadth-first) order. The paper reports that exploring
	// evenly is more beneficial under truncation — this knob exists to
	// reproduce that comparison (see the E3 ablation).
	DepthFirst bool
}

func (c Config) probeR() int {
	if c.ProbeR <= 0 {
		return 64
	}
	return c.ProbeR
}

// Stats reports how construction went.
type Stats struct {
	NodesExpanded   int  // nodes split into two children
	Leaves1         int  // exact 1-leaves
	Leaves0         int  // exact 0-leaves
	ApproxLeaves    int  // nodes truncated by timeout/budget, majority-voted
	MaxDepthReached int  // deepest cube length seen
	Exhausted       bool // true when timeout/budget truncated the build
	Exhaustive      bool // true when the exhaustive path was taken
}

// Result carries both cube sets so the caller can apply the paper's
// onset/offset selection (trick 2).
type Result struct {
	Onset  sop.Cover // cubes of leaves with function 1
	Offset sop.Cover // cubes of leaves with function 0
	// RootTruthRatio is the TruthRatio observed at the root, used for the
	// onset/offset choice.
	RootTruthRatio float64
	Stats          Stats
}

// Choose applies trick 2: it returns the smaller cover and whether the
// synthesized circuit must be negated (true when the offset was chosen,
// since the offset cover describes where the function is 0).
func (r Result) Choose() (cover sop.Cover, negate bool) {
	if len(r.Offset) < len(r.Onset) {
		return r.Offset, true
	}
	if len(r.Onset) < len(r.Offset) {
		return r.Onset, false
	}
	// Tie: follow the paper's tendency rule — if the output produces more
	// 1s, specify the offset (the smaller part of the space), else onset.
	if r.RootTruthRatio > 0.5 {
		return r.Offset, true
	}
	return r.Onset, false
}

// Build runs Algorithm 2 for output index out of the oracle.
func Build(o oracle.Oracle, out int, cfg Config, rng *rand.Rand) Result {
	if cfg.ExhaustiveThreshold > 0 {
		cand := cfg.Candidates
		if cand == nil {
			for i := 0; i < o.NumInputs(); i++ {
				cand = append(cand, i)
			}
		}
		if len(cand) <= cfg.ExhaustiveThreshold {
			return Exhaustive(o, out, cand, rng)
		}
	}

	var res Result
	queue := []sop.Cube{nil} // root: empty cube
	first := true
	for len(queue) > 0 {
		var cube sop.Cube
		if cfg.DepthFirst {
			cube = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		} else {
			cube = queue[0]
			queue = queue[1:]
		}
		if len(cube) > res.Stats.MaxDepthReached {
			res.Stats.MaxDepthReached = len(cube)
		}

		// Budget check happens BEFORE the per-input dependency sampling:
		// once the deadline or node budget is gone, every pending node is
		// settled with a cheap direct probe instead of the full
		// PatternSampling sweep (Algorithm 2's anytime truncation).
		overBudget := (cfg.MaxNodes > 0 && res.Stats.NodesExpanded >= cfg.MaxNodes) ||
			(!cfg.Deadline.IsZero() && time.Now().After(cfg.Deadline)) ||
			(cfg.MaxDepth > 0 && len(cube) >= cfg.MaxDepth)
		if overBudget {
			tr := probeTruthRatio(o, out, cube, cfg.probeR(), rng)
			if first {
				res.RootTruthRatio = tr
				first = false
			}
			if tr > 0.5 {
				res.Onset = append(res.Onset, cube)
			} else {
				res.Offset = append(res.Offset, cube)
			}
			res.Stats.ApproxLeaves++
			res.Stats.Exhausted = true
			continue
		}

		s := sampling.PatternSampling(o, out, cube, sampling.Config{
			R: cfg.R, Ratios: cfg.Ratios, Candidates: cfg.Candidates,
		}, rng)
		tr := s.TruthRatio
		if s.Samples == 0 {
			// Every candidate is bound: estimate the residual function
			// directly under the cube.
			tr = probeTruthRatio(o, out, cube, cfg.probeR(), rng)
		}
		if first {
			res.RootTruthRatio = tr
			first = false
		}

		switch {
		case tr >= 1-cfg.LeafEpsilon:
			res.Onset = append(res.Onset, cube)
			res.Stats.Leaves1++
			continue
		case tr <= cfg.LeafEpsilon:
			res.Offset = append(res.Offset, cube)
			res.Stats.Leaves0++
			continue
		}

		mi, _, ok := s.MostSignificant()
		if !ok {
			// Truncate: majority-vote the node (Algorithm 2 lines 10-13).
			if tr > 0.5 {
				res.Onset = append(res.Onset, cube)
			} else {
				res.Offset = append(res.Offset, cube)
			}
			res.Stats.ApproxLeaves++
			continue
		}

		res.Stats.NodesExpanded++
		queue = append(queue,
			cube.With(sop.Literal{Var: mi, Neg: true}),
			cube.With(sop.Literal{Var: mi, Neg: false}),
		)
	}
	return res
}

// probeTruthRatio samples r assignments satisfying the cube and returns the
// fraction of 1s at the output. All r patterns go to the oracle as one batch.
func probeTruthRatio(o oracle.Oracle, out int, cube sop.Cube, r int, rng *rand.Rand) float64 {
	if r <= 0 {
		return 0
	}
	ratios := sampling.DefaultRatios
	n := o.NumInputs()
	w := oracle.Words(r)
	lanes := make([]uint64, n*w)
	for b := 0; b < w; b++ {
		words := sampling.RandomWords(rng, n, ratios[b%len(ratios)], cube)
		for j, x := range words {
			lanes[j*w+b] = x
		}
	}
	got := oracle.EvalBatch(o, lanes, r)[out*w : (out+1)*w]
	ones, total := 0, 0
	for b := 0; b < w; b++ {
		batch := min(r-b*64, 64)
		ones += bits.OnesCount64(got[b] & maskLow(batch))
		total += batch
	}
	return float64(ones) / float64(total)
}

func maskLow(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// Exhaustive implements trick 1: it enumerates all 2^|sup| assignments over
// the support, with every other input held at 0, and extracts compact
// onset/offset covers from the resulting truth table. The primary extractor
// collapses the table into a BDD and runs Minato-Morreale ISOP on it (the
// quality step the paper gets from ABC's collapse); if the diagram blows its
// node budget, a plain minterm cover with fast two-level reduction is the
// fallback. The caller guarantees len(sup) is small (<= ~20); the query
// count is 2^|sup|.
func Exhaustive(o oracle.Oracle, out int, sup []int, rng *rand.Rand) Result {
	res := Result{Stats: Stats{Exhaustive: true}}
	n := o.NumInputs()
	k := len(sup)
	total := uint64(1) << uint(k)

	ones := uint64(0)
	table := make([]bool, total)
	batchOracle := oracle.AsBatch(o)
	for base := uint64(0); base < total; base += exhaustiveChunk {
		count := min(total-base, exhaustiveChunk)
		w := oracle.Words(int(count))
		lanes := make([]uint64, n*w) // non-support inputs held at 0
		for pat := uint64(0); pat < count; pat++ {
			m := base + pat
			for b, in := range sup {
				if m>>uint(b)&1 == 1 {
					lanes[in*w+int(pat>>6)] |= 1 << (pat & 63)
				}
			}
		}
		got := batchOracle.EvalBatch(lanes, int(count))[out*w : (out+1)*w]
		for pat := uint64(0); pat < count; pat++ {
			if got[pat>>6]>>(pat&63)&1 == 1 {
				table[base+pat] = true
				ones++
			}
		}
	}
	if total > 0 {
		res.RootTruthRatio = float64(ones) / float64(total)
	}

	// Primary: BDD collapse + ISOP over the support variables.
	mgr := bdd.NewManager(n, exhaustiveBDDBudget)
	err := mgr.Guard(func() {
		root := bdd.FromTruthTable(mgr, table, sup)
		res.Onset = mgr.ISOP(root)
		res.Offset = mgr.ISOP(mgr.Not(root))
	})
	if err != nil {
		// Fallback: explicit minterm covers with fast reduction.
		res.Onset, res.Offset = nil, nil
		for m := uint64(0); m < total; m++ {
			if table[m] {
				res.Onset = append(res.Onset, mintermCube(sup, m))
			} else {
				res.Offset = append(res.Offset, mintermCube(sup, m))
			}
		}
		res.Onset = sop.Minimize(res.Onset)
		res.Offset = sop.Minimize(res.Offset)
	}
	res.Stats.Leaves1 = len(res.Onset)
	res.Stats.Leaves0 = len(res.Offset)
	return res
}

// exhaustiveBDDBudget bounds the BDD used to collapse exhaustive truth
// tables; overridable in tests to exercise the minterm fallback.
var exhaustiveBDDBudget = 1 << 22

// exhaustiveChunk is the number of patterns per oracle batch when
// enumerating exhaustive truth tables, bounding the lane buffer to
// |I| * chunk/64 words while still amortizing per-query overhead.
const exhaustiveChunk = 1 << 14

func mintermCube(sup []int, m uint64) sop.Cube {
	lits := make([]sop.Literal, len(sup))
	for b, in := range sup {
		lits[b] = sop.Literal{Var: in, Neg: m>>uint(b)&1 == 0}
	}
	cube, ok := sop.NewCube(lits...)
	if !ok {
		panic("fbdt: duplicate support input")
	}
	return cube
}
