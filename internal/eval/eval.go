// Package eval implements the contest accuracy measurement of Sec. V: the
// hit rate of a learned circuit against the golden black box over a test set
// split into three pools — assignments with a higher ratio of 1s, a higher
// ratio of 0s, and uniformly random assignments (the paper uses 500k of
// each). A hit requires ALL outputs to match on an assignment.
package eval

import (
	"fmt"
	"math/bits"
	"math/rand"

	"logicregression/internal/bitvec"
	"logicregression/internal/oracle"
	"logicregression/internal/sampling"
)

// evalChunk is the number of test patterns per oracle batch; a multiple of
// 64 so chunking never splits a pattern block.
const evalChunk = 1 << 13

// Config controls measurement.
type Config struct {
	// Patterns is the total number of test assignments (split in thirds
	// across the three pools). The paper uses 1_500_000.
	Patterns int
	// HighRatio is the 1-bias of the "more 1s" pool (default 0.75); the
	// "more 0s" pool uses its complement.
	HighRatio float64
	// Seed drives the test pattern generator.
	Seed int64
	// Directed additionally tests deterministic corner patterns before
	// the random pools: all-zeros, all-ones, walking-one and walking-zero.
	// The contest used purely random patterns, which cannot distinguish a
	// constant-0 circuit from a 2^-30-rare comparator (see EXPERIMENTS.md);
	// the corners catch exactly that class of miss.
	Directed bool
}

func (c Config) withDefaults() Config {
	if c.Patterns <= 0 {
		c.Patterns = 30000
	}
	if c.HighRatio == 0 {
		c.HighRatio = 0.75
	}
	return c
}

// Report is the measurement result.
type Report struct {
	// Patterns is the number of assignments tested.
	Patterns int
	// Hits counts assignments where every output matched.
	Hits int
	// Accuracy is Hits/Patterns (the contest hit rate), in [0,1].
	Accuracy float64
	// PerOutput is the per-output bit accuracy, useful for diagnosing
	// which learned output drags the hit rate down.
	PerOutput []float64
	// PoolAccuracy breaks the hit rate down by pool: high-1s, high-0s,
	// uniform.
	PoolAccuracy [3]float64
}

func (r Report) String() string {
	return fmt.Sprintf("accuracy %.3f%% (%d/%d)", r.Accuracy*100, r.Hits, r.Patterns)
}

// Measure compares the learned oracle against the golden one. The two must
// agree on arity; PO name order is assumed aligned (the learner preserves
// the golden output order).
func Measure(golden, learned oracle.Oracle, cfg Config) Report {
	if golden.NumInputs() != learned.NumInputs() || golden.NumOutputs() != learned.NumOutputs() {
		panic(fmt.Sprintf("eval: arity mismatch %d/%d vs %d/%d",
			golden.NumInputs(), golden.NumOutputs(), learned.NumInputs(), learned.NumOutputs()))
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := golden.NumInputs()
	nOut := golden.NumOutputs()

	rep := Report{PerOutput: make([]float64, nOut)}
	outMatches := make([]int, nOut)
	pools := [3]float64{cfg.HighRatio, 1 - cfg.HighRatio, 0.5}
	perPool := cfg.Patterns / 3
	poolHits := [3]int{}
	poolCounts := [3]int{}

	goldenBatch := oracle.AsBatch(golden)
	learnedBatch := oracle.AsBatch(learned)

	if cfg.Directed {
		// All corner patterns (2n+2 of them) go through in one batch query
		// per oracle instead of one scalar query per pattern.
		pats := directedPatterns(n)
		cnt := len(pats)
		w := oracle.Words(cnt)
		lanes := packAssignments(pats, n)
		g := goldenBatch.EvalBatch(lanes, cnt)
		l := learnedBatch.EvalBatch(lanes, cnt)
		for p := 0; p < cnt; p++ {
			hit := true
			for j := 0; j < nOut; j++ {
				gb := g[j*w+p/64] >> uint(p%64) & 1
				lb := l[j*w+p/64] >> uint(p%64) & 1
				if gb == lb {
					outMatches[j]++
				} else {
					hit = false
				}
			}
			if hit {
				rep.Hits++
			}
			rep.Patterns++
		}
	}
	for pool, bias := range pools {
		count := perPool
		if pool == 2 {
			count = cfg.Patterns - 2*perPool // absorb rounding
		}
		// Chunked batch evaluation: both oracles see whole pattern blocks
		// (one EvalBatch per chunk instead of one EvalWords per 64), with
		// the random draws in exactly the per-block reference order.
		for done := 0; done < count; done += evalChunk {
			cnt := min(count-done, evalChunk)
			w := oracle.Words(cnt)
			lanes := make([]bitvec.Word, n*w)
			for b := 0; b < w; b++ {
				words := sampling.RandomWords(rng, n, bias, nil)
				for j, x := range words {
					lanes[j*w+b] = x
				}
			}
			g := goldenBatch.EvalBatch(lanes, cnt)
			l := learnedBatch.EvalBatch(lanes, cnt)
			for b := 0; b < w; b++ {
				batch := min(cnt-b*64, 64)
				var anyDiff uint64
				for j := 0; j < nOut; j++ {
					diff := g[j*w+b] ^ l[j*w+b]
					anyDiff |= diff
					outMatches[j] += batch - popcountMasked(diff, batch)
				}
				hits := batch - popcountMasked(anyDiff, batch)
				rep.Hits += hits
				poolHits[pool] += hits
				poolCounts[pool] += batch
				rep.Patterns += batch
			}
		}
	}
	if rep.Patterns > 0 {
		rep.Accuracy = float64(rep.Hits) / float64(rep.Patterns)
	}
	for j := range rep.PerOutput {
		rep.PerOutput[j] = float64(outMatches[j]) / float64(rep.Patterns)
	}
	for p := range pools {
		if poolCounts[p] > 0 {
			rep.PoolAccuracy[p] = float64(poolHits[p]) / float64(poolCounts[p])
		}
	}
	return rep
}

// directedPatterns yields the corner assignments: all-zeros, all-ones, a
// walking one, and a walking zero (2n+2 patterns).
// packAssignments bit-packs per-pattern assignments into batch input lanes.
func packAssignments(pats [][]bool, n int) []bitvec.Word {
	w := oracle.Words(len(pats))
	lanes := make([]bitvec.Word, n*w)
	for k, a := range pats {
		for j := 0; j < n; j++ {
			if a[j] {
				lanes[j*w+k/64] |= 1 << uint(k%64)
			}
		}
	}
	return lanes
}

func directedPatterns(n int) [][]bool {
	out := make([][]bool, 0, 2*n+2)
	zeros := make([]bool, n)
	ones := make([]bool, n)
	for i := range ones {
		ones[i] = true
	}
	out = append(out, zeros, ones)
	for i := 0; i < n; i++ {
		w1 := make([]bool, n)
		w1[i] = true
		w0 := make([]bool, n)
		copy(w0, ones)
		w0[i] = false
		out = append(out, w1, w0)
	}
	return out
}

func popcountMasked(x uint64, n int) int {
	if n < 64 {
		x &= 1<<uint(n) - 1
	}
	return bits.OnesCount64(x)
}
