package eval

import (
	"math"
	"reflect"
	"testing"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
)

func twoOut() *circuit.Circuit {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.AddPO("z", c.And(a, b))
	c.AddPO("w", c.Xor(a, b))
	return c
}

func TestPerfectMatch(t *testing.T) {
	g := oracle.FromCircuit(twoOut())
	l := oracle.FromCircuit(twoOut())
	rep := Measure(g, l, Config{Patterns: 3000, Seed: 1})
	if rep.Accuracy != 1 {
		t.Fatalf("accuracy = %f, want 1", rep.Accuracy)
	}
	if rep.Hits != rep.Patterns {
		t.Fatalf("hits %d != patterns %d", rep.Hits, rep.Patterns)
	}
	for j, a := range rep.PerOutput {
		if a != 1 {
			t.Fatalf("per-output %d = %f", j, a)
		}
	}
	for p, a := range rep.PoolAccuracy {
		if a != 1 {
			t.Fatalf("pool %d accuracy = %f", p, a)
		}
	}
}

func TestKnownErrorRate(t *testing.T) {
	g := oracle.FromCircuit(twoOut())
	// Learned circuit with the second output inverted: w differs always,
	// so hit rate must be 0; per-output z accuracy stays 1.
	wrong := circuit.New()
	a := wrong.AddPI("a")
	b := wrong.AddPI("b")
	wrong.AddPO("z", wrong.And(a, b))
	wrong.AddPO("w", wrong.Xnor(a, b))
	rep := Measure(g, oracle.FromCircuit(wrong), Config{Patterns: 3000, Seed: 2})
	if rep.Accuracy != 0 {
		t.Fatalf("accuracy = %f, want 0", rep.Accuracy)
	}
	if rep.PerOutput[0] != 1 || rep.PerOutput[1] != 0 {
		t.Fatalf("per-output = %v", rep.PerOutput)
	}
}

func TestPartialErrorOnlyInOnePool(t *testing.T) {
	// Golden z = a AND b; learned z = a OR b. They differ exactly when
	// a != b. Under high-1s bias the disagreement rate is 2*p*(1-p).
	g := circuit.New()
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO("z", g.And(a, b))
	l := circuit.New()
	a2 := l.AddPI("a")
	b2 := l.AddPI("b")
	l.AddPO("z", l.Or(a2, b2))
	rep := Measure(oracle.FromCircuit(g), oracle.FromCircuit(l),
		Config{Patterns: 60000, HighRatio: 0.9, Seed: 3})
	// Expected match rates: pool0 (p=.9): 1-2(.9)(.1)=.82; pool1 (p=.1):
	// .82; pool2 (p=.5): .5.
	want := [3]float64{0.82, 0.82, 0.5}
	for p := range want {
		if math.Abs(rep.PoolAccuracy[p]-want[p]) > 0.02 {
			t.Fatalf("pool %d accuracy = %f, want ~%f", p, rep.PoolAccuracy[p], want[p])
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	g := oracle.FromCircuit(twoOut())
	l := circuit.New()
	a := l.AddPI("a")
	b := l.AddPI("b")
	l.AddPO("z", l.And(a, b))
	l.AddPO("w", l.Or(a, b)) // partially wrong
	lo := oracle.FromCircuit(l)
	r1 := Measure(g, lo, Config{Patterns: 9000, Seed: 42})
	r2 := Measure(g, lo, Config{Patterns: 9000, Seed: 42})
	if r1.Hits != r2.Hits {
		t.Fatalf("non-deterministic: %d vs %d", r1.Hits, r2.Hits)
	}
	r3 := Measure(g, lo, Config{Patterns: 9000, Seed: 43})
	if r3.Hits == r1.Hits {
		// Different seeds giving identical hit counts is suspicious for a
		// partially-wrong circuit, though not impossible; treat as failure
		// only combined with identical accuracy to many digits.
		if r3.Accuracy == r1.Accuracy {
			t.Log("warning: different seeds produced identical results")
		}
	}
}

func TestArityMismatchPanics(t *testing.T) {
	g := oracle.FromCircuit(twoOut())
	l := circuit.New()
	l.AddPO("z", l.AddPI("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Measure(g, oracle.FromCircuit(l), Config{Patterns: 100})
}

func TestPatternCountRespected(t *testing.T) {
	g := oracle.FromCircuit(twoOut())
	rep := Measure(g, g, Config{Patterns: 1000, Seed: 5})
	if rep.Patterns != 1000 {
		t.Fatalf("Patterns = %d, want 1000", rep.Patterns)
	}
}

func TestDirectedPatternsCatchRareComparator(t *testing.T) {
	// Golden: equality of two 15-bit buses (true with probability 2^-15).
	// Learned: constant 0. Random pools alone can miss it; the directed
	// all-zeros/all-ones corners always catch it.
	g := circuit.New()
	a := g.AddPIWord("a", 15)
	b := g.AddPIWord("b", 15)
	g.AddPO("eq", g.EqWords(a, b))
	l := circuit.New()
	l.AddPIWord("a", 15)
	l.AddPIWord("b", 15)
	l.AddPO("eq", l.Const(false))

	rep := Measure(oracle.FromCircuit(g), oracle.FromCircuit(l),
		Config{Patterns: 300, Seed: 9, Directed: true})
	if rep.Accuracy == 1 {
		t.Fatal("directed corners failed to expose the constant-0 impostor")
	}
}

func TestDirectedPatternsCountedInTotal(t *testing.T) {
	g := oracle.FromCircuit(twoOut())
	rep := Measure(g, g, Config{Patterns: 300, Seed: 10, Directed: true})
	// 2 inputs: 2n+2 = 6 directed patterns on top of 300 random ones.
	if rep.Patterns != 306 {
		t.Fatalf("Patterns = %d, want 306", rep.Patterns)
	}
	if rep.Accuracy != 1 {
		t.Fatalf("self-comparison accuracy = %f", rep.Accuracy)
	}
}

// TestMeasureBatchMatchesScalar pins the batching-on/off equivalence of the
// accuracy pool: chunked batch evaluation must consume the RNG in the scalar
// order and yield an identical Report.
func TestMeasureBatchMatchesScalar(t *testing.T) {
	g := oracle.FromCircuit(twoOut())
	l := oracle.FromCircuit(twoOut())
	for _, patterns := range []int{100, 4096, 9000} {
		cfg := Config{Patterns: patterns, Seed: 42}
		fast := Measure(g, l, cfg)
		slow := Measure(oracle.ScalarOnly(g), oracle.ScalarOnly(l), cfg)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("patterns=%d:\nbatch  %+v\nscalar %+v", patterns, fast, slow)
		}
	}
}
