package baseline

import (
	"testing"
	"time"

	"logicregression/internal/circuit"
	"logicregression/internal/eval"
	"logicregression/internal/oracle"
)

func smallOracle() (*circuit.Circuit, oracle.Oracle) {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	d := c.AddPI("d")
	c.AddPO("f", c.Or(c.And(a, b), d))
	return c, oracle.FromCircuit(c)
}

func TestFixedOrderTreeLearnsSmallFunctionExactly(t *testing.T) {
	golden, o := smallOracle()
	res := FixedOrderTree(o, TreeOptions{Seed: 1})
	rep := eval.Measure(oracle.FromCircuit(golden), oracle.FromCircuit(res.Circuit),
		eval.Config{Patterns: 3000, Seed: 1})
	if rep.Accuracy != 1 {
		t.Fatalf("accuracy = %f, want 1", rep.Accuracy)
	}
	if res.Truncated {
		t.Fatal("small function should not truncate")
	}
	if res.Queries == 0 {
		t.Fatal("no queries counted")
	}
}

func TestFixedOrderTreeTruncatesOnBudget(t *testing.T) {
	// 12-input parity with a tiny node budget must truncate.
	c := circuit.New()
	var in []circuit.Signal
	for i := 0; i < 12; i++ {
		in = append(in, c.AddPI("x"+string(rune('a'+i))))
	}
	c.AddPO("p", c.XorTree(in))
	o := oracle.FromCircuit(c)
	res := FixedOrderTree(o, TreeOptions{Seed: 2, MaxNodes: 10})
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	rep := eval.Measure(o, oracle.FromCircuit(res.Circuit), eval.Config{Patterns: 3000, Seed: 2})
	if rep.Accuracy > 0.95 {
		t.Fatalf("truncated parity accuracy = %f, implausibly high", rep.Accuracy)
	}
}

func TestFixedOrderTreeDeadline(t *testing.T) {
	c := circuit.New()
	var in []circuit.Signal
	for i := 0; i < 14; i++ {
		in = append(in, c.AddPI("x"+string(rune('a'+i))))
	}
	c.AddPO("p", c.XorTree(in))
	o := oracle.FromCircuit(c)
	start := time.Now()
	res := FixedOrderTree(o, TreeOptions{Seed: 3, Deadline: time.Now().Add(-time.Second), MaxNodes: 1 << 20})
	if time.Since(start) > 30*time.Second {
		t.Fatal("deadline ignored")
	}
	if !res.Truncated {
		t.Fatal("expected truncation at deadline")
	}
}

func TestFixedOrderTreeBiggerThanNecessary(t *testing.T) {
	// f = x7 (a single passthrough): the fixed order forces splits through
	// x0..x6 first at many nodes, yielding a larger circuit than needed —
	// the baseline's signature weakness.
	c := circuit.New()
	var in []circuit.Signal
	for i := 0; i < 8; i++ {
		in = append(in, c.AddPI("x"+string(rune('a'+i))))
	}
	c.AddPO("f", in[7])
	o := oracle.FromCircuit(c)
	res := FixedOrderTree(o, TreeOptions{Seed: 4})
	rep := eval.Measure(o, oracle.FromCircuit(res.Circuit), eval.Config{Patterns: 3000, Seed: 3})
	if rep.Accuracy != 1 {
		t.Fatalf("accuracy = %f", rep.Accuracy)
	}
}

func TestSampleSOPPerfectOnNearConstant(t *testing.T) {
	// f = AND of 6 inputs: almost always 0; minority minterms are rare and
	// fully memorizable only if sampled. With biased pools the all-ones
	// assignment appears, giving high (often perfect) accuracy.
	c := circuit.New()
	var in []circuit.Signal
	for i := 0; i < 6; i++ {
		in = append(in, c.AddPI("x"+string(rune('a'+i))))
	}
	c.AddPO("f", c.AndTree(in))
	o := oracle.FromCircuit(c)
	res := SampleSOP(o, SOPOptions{Seed: 5, Samples: 2048})
	rep := eval.Measure(o, oracle.FromCircuit(res.Circuit), eval.Config{Patterns: 6000, Seed: 4})
	if rep.Accuracy < 0.98 {
		t.Fatalf("accuracy = %f, want >= 0.98", rep.Accuracy)
	}
}

func TestSampleSOPWeakOnBalancedFunction(t *testing.T) {
	// 16-input parity cannot be memorized from 2k samples: accuracy ~0.5.
	c := circuit.New()
	var in []circuit.Signal
	for i := 0; i < 16; i++ {
		in = append(in, c.AddPI("x"+string(rune('a'+i))))
	}
	c.AddPO("p", c.XorTree(in))
	o := oracle.FromCircuit(c)
	res := SampleSOP(o, SOPOptions{Seed: 6, Samples: 2048})
	rep := eval.Measure(o, oracle.FromCircuit(res.Circuit), eval.Config{Patterns: 6000, Seed: 5})
	if rep.Accuracy > 0.7 {
		t.Fatalf("parity memorization accuracy = %f, implausibly high", rep.Accuracy)
	}
	// And its circuit is enormous relative to the function it "learned".
	if res.Circuit.Size() < 1000 {
		t.Fatalf("memorizer size = %d, expected blow-up", res.Circuit.Size())
	}
}

func TestSampleSOPQueriesEqualSamples(t *testing.T) {
	_, o := smallOracle()
	res := SampleSOP(o, SOPOptions{Seed: 7, Samples: 500})
	if res.Queries != 500 {
		t.Fatalf("queries = %d, want 500", res.Queries)
	}
}

func TestBaselinesPreserveNames(t *testing.T) {
	golden, o := smallOracle()
	for name, learned := range map[string]*circuit.Circuit{
		"tree": FixedOrderTree(o, TreeOptions{Seed: 8}).Circuit,
		"sop":  SampleSOP(o, SOPOptions{Seed: 8, Samples: 256}).Circuit,
	} {
		if got := learned.PINames(); got[0] != "a" || got[2] != "d" {
			t.Fatalf("%s: PI names = %v", name, got)
		}
		if got := learned.PONames(); got[0] != golden.PONames()[0] {
			t.Fatalf("%s: PO names = %v", name, got)
		}
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	_, o := smallOracle()
	a := FixedOrderTree(o, TreeOptions{Seed: 9})
	b := FixedOrderTree(o, TreeOptions{Seed: 9})
	if a.Circuit.Size() != b.Circuit.Size() || a.Queries != b.Queries {
		t.Fatal("FixedOrderTree not deterministic")
	}
	s1 := SampleSOP(o, SOPOptions{Seed: 9, Samples: 300})
	s2 := SampleSOP(o, SOPOptions{Seed: 9, Samples: 300})
	if s1.Circuit.Size() != s2.Circuit.Size() {
		t.Fatal("SampleSOP not deterministic")
	}
}

func TestFixedOrderTreeMultiOutput(t *testing.T) {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	d := c.AddPI("d")
	c.AddPO("f", c.And(a, b))
	c.AddPO("g", c.Or(b, d))
	c.AddPO("h", c.Const(false))
	o := oracle.FromCircuit(c)
	res := FixedOrderTree(o, TreeOptions{Seed: 10})
	rep := eval.Measure(o, oracle.FromCircuit(res.Circuit), eval.Config{Patterns: 3000, Seed: 4})
	if rep.Accuracy != 1 {
		t.Fatalf("multi-output accuracy = %f", rep.Accuracy)
	}
	if res.Circuit.NumPO() != 3 {
		t.Fatalf("PO count = %d", res.Circuit.NumPO())
	}
}
