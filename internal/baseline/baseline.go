// Package baseline implements the two comparison learners used in the
// Table II reproduction as stand-ins for the contest's second-place entries
// (whose executables are unavailable; see DESIGN.md):
//
//   - FixedOrderTree: a decision-tree learner without any preprocessing,
//     support identification, or input-significance ranking — it splits on
//     inputs in fixed index order. It exhibits the failure mode the paper
//     reports for weaker entries: circuit blow-up and accuracy loss on
//     template-matchable and wide-support functions.
//
//   - SampleSOP: a sample-memorizing learner that stores observed minterms
//     of the minority output class verbatim and answers the majority value
//     elsewhere, mimicking entries whose circuits grew into the hundreds of
//     thousands of gates with sub-99% accuracy.
package baseline

import (
	"math/rand"
	"time"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
	"logicregression/internal/sampling"
	"logicregression/internal/sop"
)

// Result is a baseline learning outcome.
type Result struct {
	Circuit *circuit.Circuit
	Queries int64
	Elapsed time.Duration
	// Truncated reports whether any per-output budget was exhausted.
	Truncated bool
}

// TreeOptions configures FixedOrderTree.
type TreeOptions struct {
	// Seed drives sampling.
	Seed int64
	// R is the number of probes per node to estimate constancy.
	R int
	// MaxNodes bounds split nodes per output.
	MaxNodes int
	// Deadline bounds the whole learn (zero = none).
	Deadline time.Time
}

func (o TreeOptions) withDefaults() TreeOptions {
	if o.R <= 0 {
		o.R = 64
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 4000
	}
	return o
}

// FixedOrderTree learns each output with a BFS decision tree that always
// splits on the lowest-index unbound input.
func FixedOrderTree(o oracle.Oracle, opts TreeOptions) *Result {
	opts = opts.withDefaults()
	start := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	counter := oracle.NewCounter(o)
	n := counter.NumInputs()

	c := circuit.New()
	piSigs := make([]circuit.Signal, n)
	for i, name := range counter.InputNames() {
		piSigs[i] = c.AddPI(name)
	}
	res := &Result{}
	for po := 0; po < counter.NumOutputs(); po++ {
		var onset sop.Cover
		queue := []sop.Cube{nil}
		nodes := 0
		for len(queue) > 0 {
			cube := queue[0]
			queue = queue[1:]
			ones, total := probe(counter, po, cube, opts.R, rng)
			switch {
			case ones == total: // constant 1
				onset = append(onset, cube)
				continue
			case ones == 0:
				continue
			}
			over := nodes >= opts.MaxNodes ||
				(!opts.Deadline.IsZero() && time.Now().After(opts.Deadline)) ||
				len(cube) >= n
			if over {
				res.Truncated = true
				if 2*ones > total {
					onset = append(onset, cube)
				}
				continue
			}
			// Split on the lowest-index unbound input: no significance
			// ranking whatsoever.
			next := -1
			for v := 0; v < n; v++ {
				if _, bound := cube.Has(v); !bound {
					next = v
					break
				}
			}
			if next < 0 {
				if 2*ones > total {
					onset = append(onset, cube)
				}
				continue
			}
			nodes++
			queue = append(queue,
				cube.With(sop.Literal{Var: next, Neg: true}),
				cube.With(sop.Literal{Var: next, Neg: false}),
			)
		}
		c.AddPO(counter.OutputNames()[po], sop.Synthesize(c, onset, piSigs, false))
	}
	res.Circuit = c
	res.Queries = counter.Queries()
	res.Elapsed = time.Since(start)
	return res
}

// probe samples r assignments under the cube and counts output ones.
func probe(o oracle.Oracle, po int, cube sop.Cube, r int, rng *rand.Rand) (ones, total int) {
	ratios := sampling.DefaultRatios
	n := o.NumInputs()
	for done := 0; done < r; done += 64 {
		batch := min(r-done, 64)
		words := sampling.RandomWords(rng, n, ratios[(done/64)%len(ratios)], cube)
		got := oracle.EvalWords(o, words)[po]
		for k := 0; k < batch; k++ {
			if got>>uint(k)&1 == 1 {
				ones++
			}
		}
		total += batch
	}
	return ones, total
}

// SOPOptions configures SampleSOP.
type SOPOptions struct {
	// Seed drives sampling.
	Seed int64
	// Samples is the number of training assignments drawn (per learn, not
	// per output; all outputs are read from the same samples).
	Samples int
}

func (o SOPOptions) withDefaults() SOPOptions {
	if o.Samples <= 0 {
		o.Samples = 4096
	}
	return o
}

// SampleSOP memorizes sampled minterms: for each output it stores the full
// input minterm of every minority-class sample and defaults to the majority
// value elsewhere.
func SampleSOP(o oracle.Oracle, opts SOPOptions) *Result {
	opts = opts.withDefaults()
	start := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	counter := oracle.NewCounter(o)
	n := counter.NumInputs()
	nOut := counter.NumOutputs()

	type sample struct {
		in  []bool
		out []bool
	}
	ratios := sampling.DefaultRatios
	samples := make([]sample, 0, opts.Samples)
	for k := 0; k < opts.Samples; k++ {
		a := sampling.RandomAssignment(rng, n, ratios[k%len(ratios)], nil)
		samples = append(samples, sample{in: a, out: counter.Eval(a)})
	}

	c := circuit.New()
	piSigs := make([]circuit.Signal, n)
	for i, name := range counter.InputNames() {
		piSigs[i] = c.AddPI(name)
	}
	for po := 0; po < nOut; po++ {
		ones := 0
		for _, s := range samples {
			if s.out[po] {
				ones++
			}
		}
		majority := 2*ones > len(samples)
		var cover sop.Cover
		seen := make(map[string]bool)
		for _, s := range samples {
			if s.out[po] == majority {
				continue
			}
			lits := make([]sop.Literal, n)
			for v := 0; v < n; v++ {
				lits[v] = sop.Literal{Var: v, Neg: !s.in[v]}
			}
			cube, _ := sop.NewCube(lits...)
			if key := cube.Key(); !seen[key] {
				seen[key] = true
				cover = append(cover, cube)
			}
		}
		// The cover fires on minority minterms; default is the majority.
		c.AddPO(counter.OutputNames()[po], sop.Synthesize(c, cover, piSigs, majority))
	}
	return &Result{
		Circuit: c,
		Queries: counter.Queries(),
		Elapsed: time.Since(start),
	}
}
