package store

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"logicregression/internal/circuit"
	"logicregression/internal/core"
	"logicregression/internal/oracle"
	"logicregression/internal/vfs"
)

// Config opens a Store.
type Config struct {
	// Dir is the store's root directory.
	Dir string
	// FS is the filesystem to write through; nil means the real OS
	// filesystem. Tests substitute vfs.MemFS or a chaos.FaultFS.
	FS vfs.FS
	// SyncEvery is the group-commit batch: memo-log appends accumulate
	// until this many are pending, then one fsync covers them all. Values
	// <= 1 fsync every append (the safest and slowest policy).
	SyncEvery int
	// FlushInterval bounds how long a pending append can wait for its
	// group fsync. Zero means the 100ms default; negative disables the
	// background flusher (batches then sync only when full or on Close).
	FlushInterval time.Duration
	// CompactAt triggers memo-log compaction when the segments exceed this
	// many bytes. Zero means the 16 MiB default; negative disables
	// compaction.
	CompactAt int64
}

const (
	defaultFlushInterval = 100 * time.Millisecond
	defaultCompactAt     = 16 << 20
)

// Store is the persistence layer: a memo log and a circuit store sharing
// one directory. It implements oracle.MemoHook, so attaching it to a memo
// persists every cache fill write-through; a disk failure flips the store
// to degraded (memory-only) mode and the learn proceeds untouched — the
// hook never returns an error to the oracle path and never panics.
type Store struct {
	fs       vfs.FS
	dir      string
	memo     *memoLog
	circuits *circuitStore
	recovery RecoveryInfo

	done      chan struct{}
	flusherWG sync.WaitGroup

	hookWrites atomic.Int64
	dropped    atomic.Int64
	degraded   atomic.Bool

	errMu    sync.Mutex
	firstErr error
}

// Open opens (or creates) a store rooted at cfg.Dir, replaying the memo
// log and circuit index. Recovery repairs torn tails silently (they are
// the normal residue of a crash) and reports mid-file corruption via
// Recovery().Corrupt — opening still succeeds with the valid prefix.
func Open(cfg Config) (*Store, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: Config.Dir is required")
	}
	flushInterval := cfg.FlushInterval
	if flushInterval == 0 {
		flushInterval = defaultFlushInterval
	}
	compactAt := cfg.CompactAt
	if compactAt == 0 {
		compactAt = defaultCompactAt
	}
	if compactAt < 0 {
		compactAt = 0 // memoLog treats 0 as "never"
	}

	if err := fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", cfg.Dir, err)
	}
	ml, info, err := openMemoLog(fsys, cfg.Dir, cfg.SyncEvery, compactAt)
	if err != nil {
		return nil, err
	}
	cs, err := openCircuitStore(fsys, cfg.Dir, &info)
	if err != nil {
		ml.close()
		return nil, err
	}
	s := &Store{
		fs:       fsys,
		dir:      cfg.Dir,
		memo:     ml,
		circuits: cs,
		recovery: info,
		done:     make(chan struct{}),
	}
	if flushInterval > 0 {
		s.flusherWG.Add(1)
		go s.flusher(flushInterval)
	}
	return s, nil
}

// flusher is the group-commit clock: every interval it fsyncs whatever
// appends are pending, bounding the window a crash can tear.
func (s *Store) flusher(interval time.Duration) {
	defer s.flusherWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if err := s.memo.flushPending(); err != nil {
				s.degrade(err)
			}
		}
	}
}

// Recovery reports what opening the store found on disk.
func (s *Store) Recovery() RecoveryInfo { return s.recovery }

// Degraded reports whether a storage fault has switched the store to
// memory-only mode (appends dropped, learns unaffected).
func (s *Store) Degraded() bool { return s.degraded.Load() }

// Err returns the first storage error that degraded the store, if any.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

func (s *Store) degrade(err error) {
	s.errMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.errMu.Unlock()
	s.degraded.Store(true)
}

// MemoInsert implements oracle.MemoHook: write-through persistence of
// every cache fill. Errors degrade the store; they never reach the oracle
// path, so a dying disk cannot fail (or alter) a learn.
func (s *Store) MemoInsert(key string, out []bool) { s.persist(key, out) }

// MemoEvict implements oracle.MemoHook. Evicted entries are re-logged
// defensively: an entry inserted before the hook was attached would
// otherwise leave the cache without ever reaching disk. Duplicates cost
// log bytes only and fold away at compaction.
func (s *Store) MemoEvict(key string, out []bool) { s.persist(key, out) }

func (s *Store) persist(key string, out []bool) {
	if s.degraded.Load() {
		s.dropped.Add(1)
		return
	}
	if err := s.memo.append(key, out); err != nil {
		s.dropped.Add(1)
		s.degrade(err)
		return
	}
	s.hookWrites.Add(1)
}

// AttachMemo warm-starts a memo from the log and installs the store as its
// persistence hook. Returns the number of entries preloaded. Preloading
// cannot change a learn's result — every logged answer came from the same
// deterministic oracle — it only converts misses into hits.
func (s *Store) AttachMemo(m *oracle.Memo) int {
	n := 0
	s.memo.each(func(key string, out []bool) {
		m.Preload(key, out)
		n++
	})
	m.SetHook(s)
	return n
}

// ImportTranscript appends every query/response pair of a recorded oracle
// transcript (oracle.Recorder format) to the memo log, making replay
// captures an importable warm-start corpus. When want is non-zero the
// transcript's header must match it — importing answers from a different
// oracle would poison the cache with wrong values. Entries import in file
// order. Returns the number of pairs imported.
func (s *Store) ImportTranscript(r io.Reader, want oracle.Identity) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	readHeader := func(keyword string) ([]string, error) {
		if !sc.Scan() {
			return nil, fmt.Errorf("store: transcript missing %q header", keyword)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < 1 || fields[0] != keyword {
			return nil, fmt.Errorf("store: expected %q header, got %q", keyword, sc.Text())
		}
		return fields[1:], nil
	}
	ins, err := readHeader("inputs")
	if err != nil {
		return 0, err
	}
	outs, err := readHeader("outputs")
	if err != nil {
		return 0, err
	}
	got := oracle.Identity{Ins: ins, Outs: outs}
	if !want.IsZero() && !got.Equal(want) {
		return 0, fmt.Errorf("store: transcript is from a different oracle: %v != %v", got, want)
	}
	count := 0
	lineNo := 2
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || len(fields[0]) != len(ins) || len(fields[1]) != len(outs) {
			return count, fmt.Errorf("store: transcript line %d malformed: %q", lineNo, line)
		}
		in, err := parseBits(fields[0])
		if err != nil {
			return count, fmt.Errorf("store: transcript line %d: %v", lineNo, err)
		}
		out, err := parseBits(fields[1])
		if err != nil {
			return count, fmt.Errorf("store: transcript line %d: %v", lineNo, err)
		}
		if err := s.memo.append(oracle.MemoKey(in), out); err != nil {
			return count, err
		}
		count++
	}
	if err := sc.Err(); err != nil {
		return count, err
	}
	return count, nil
}

func parseBits(str string) ([]bool, error) {
	out := make([]bool, len(str))
	for i := 0; i < len(str); i++ {
		switch str[i] {
		case '0':
		case '1':
			out[i] = true
		default:
			return nil, fmt.Errorf("bad bit %q", str[i])
		}
	}
	return out, nil
}

// LearnKey identifies a learned circuit: which oracle (identity), which
// seed, and which options. Two learns with equal keys produce identical
// circuits, so the key is safe to use as a warm-start cache address.
type LearnKey struct {
	Identity oracle.Identity
	Seed     int64
	Options  string
}

// String renders the canonical key the circuit index stores.
func (k LearnKey) String() string {
	return fmt.Sprintf("v1|%s|seed=%d|%s", k.Identity.Hash(), k.Seed, k.Options)
}

// OptionsSig renders the result-determining fields of core.Options into a
// stable string for LearnKey.Options. Fields that cannot change the learned
// circuit (Progress, Cancel, MemoizeQueries, Parallel — all documented
// byte-identity-preserving) are excluded, so e.g. a cancelled-capable run
// still hits the cache of a plain one.
func OptionsSig(o core.Options) string {
	return fmt.Sprintf(
		"sr=%d,tr=%d,eps=%g,ex=%d,max=%d,ratios=%v,nopre=%t,noopt=%t,hc=%t,ao=%t,df=%t,xt=%t,rr=%d,rp=%d,tmpl=%+v,opt=%+v",
		o.SupportR, o.TreeR, o.LeafEpsilon, o.ExhaustiveThreshold, o.MaxTreeNodes,
		o.Ratios, o.DisablePreprocessing, o.DisableOptimization, o.HiddenCompression,
		o.AlwaysOnset, o.DepthFirstTree, o.ExtendedTemplates, o.RefineRounds,
		o.RefinePatterns, o.Template, o.Opt)
}

// PutCircuit stores a learned circuit under its learn key.
func (s *Store) PutCircuit(k LearnKey, c *circuit.Circuit) error {
	return s.circuits.put(k.String(), c)
}

// GetCircuit loads the circuit stored under k. A miss returns (nil, nil);
// a blob that fails its content hash returns ErrCorruptBlob — never a
// silently wrong circuit.
func (s *Store) GetCircuit(k LearnKey) (*circuit.Circuit, error) {
	return s.circuits.get(k.String())
}

// Stats is a point-in-time snapshot of store health.
type Stats struct {
	// MemoEntries is the live (deduplicated) memo-log entry count.
	MemoEntries int
	// MemoLogBytes is the on-disk size of the memo-log segments.
	MemoLogBytes int64
	// Appends / Syncs / Compactions count memo-log operations.
	Appends     int64
	Syncs       int64
	Compactions int64
	// Circuits is the number of learn keys in the circuit index.
	Circuits int
	// HookWrites counts memo entries persisted via the hook; Dropped
	// counts entries lost to degraded mode.
	HookWrites int64
	Dropped    int64
	// Degraded reports memory-only fallback after a storage fault.
	Degraded bool
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.memo.mu.Lock()
	appends, syncs, compactions := s.memo.appends, s.memo.syncs, s.memo.compactions
	s.memo.mu.Unlock()
	return Stats{
		MemoEntries:  s.memo.entryCount(),
		MemoLogBytes: s.memo.size(),
		Appends:      appends,
		Syncs:        syncs,
		Compactions:  compactions,
		Circuits:     s.circuits.entryCount(),
		HookWrites:   s.hookWrites.Load(),
		Dropped:      s.dropped.Load(),
		Degraded:     s.degraded.Load(),
	}
}

// Close stops the flusher, syncs pending appends, and releases file
// handles. Detach the store from any live memo (SetHook(nil)) before
// closing.
func (s *Store) Close() error {
	close(s.done)
	s.flusherWG.Wait()
	err := s.memo.close()
	if cerr := s.circuits.close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

var _ oracle.MemoHook = (*Store)(nil)
