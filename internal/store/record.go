// Package store is the persistence layer: an append-only, checksummed memo
// log that lets learns survive process restarts, and a content-addressed
// circuit store that lets sessions warm-start from previously learned
// results. Everything writes through the vfs seam so chaos drills can
// inject torn writes, fsync errors, read rot, and exact-offset crashes.
//
// The cardinal invariant is byte-identity: attaching the store to a learn
// never changes its result. Persisted memo entries are answers a
// deterministic oracle already gave, so preloading them only converts
// misses into hits; a failing disk degrades the store to memory-only and
// the learn proceeds untouched. The store may lose data (that costs
// re-computation) but must never serve a wrong byte as a right one — every
// record and blob is checksummed and verified on read.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing, the unit of both the memo log and the circuit index:
//
//	u32le  payload length n
//	u32le  CRC32C over the 4 length bytes followed by the payload
//	n bytes payload
//
// The checksum covers the length field so a flipped length byte cannot
// open a mis-framed window that happens to checksum clean: any corruption
// of the header or payload fails the CRC and recovery stops there.

const recordHeaderSize = 8

// maxRecordSize bounds a single record. A length field above this is
// treated as corruption rather than an allocation request — a torn or
// rotted header must not make recovery attempt a 4 GiB read.
const maxRecordSize = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord marks a record that failed framing or checksum
// validation.
var ErrCorruptRecord = errors.New("store: corrupt record")

// appendRecord appends one framed record to buf and returns the extended
// slice.
func appendRecord(buf, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(0, crcTable, hdr[0:4])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// recordScanner walks framed records in a byte stream, tracking the offset
// of the end of the last valid record — the recovered-prefix length.
type recordScanner struct {
	data []byte
	off  int
}

// next returns the next payload. io.EOF means a clean end exactly at a
// record boundary; ErrCorruptRecord (possibly wrapped) means the bytes at
// the current offset are not a valid record.
func (s *recordScanner) next() ([]byte, error) {
	rest := s.data[s.off:]
	if len(rest) == 0 {
		return nil, io.EOF
	}
	if len(rest) < recordHeaderSize {
		return nil, fmt.Errorf("%w: %d-byte partial header at offset %d", ErrCorruptRecord, len(rest), s.off)
	}
	n := binary.LittleEndian.Uint32(rest[0:4])
	if n > maxRecordSize {
		return nil, fmt.Errorf("%w: implausible length %d at offset %d", ErrCorruptRecord, n, s.off)
	}
	if len(rest) < recordHeaderSize+int(n) {
		return nil, fmt.Errorf("%w: truncated payload (%d of %d bytes) at offset %d",
			ErrCorruptRecord, len(rest)-recordHeaderSize, n, s.off)
	}
	want := binary.LittleEndian.Uint32(rest[4:8])
	payload := rest[recordHeaderSize : recordHeaderSize+int(n)]
	crc := crc32.Update(0, crcTable, rest[0:4])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != want {
		return nil, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorruptRecord, s.off)
	}
	s.off += recordHeaderSize + int(n)
	return payload, nil
}

// scanTail classifies the invalid region after a recovered prefix. A torn
// tail — the expected wreckage of a crash mid-append — contains no valid
// record after the tear. If re-synchronizing at any later offset finds one,
// something overwrote the middle of the file and the loss is not just the
// in-flight append; that must be reported, never silently absorbed.
func scanTail(dropped []byte) (midFileCorruption bool) {
	for start := 1; start+recordHeaderSize <= len(dropped); start++ {
		s := recordScanner{data: dropped[start:]}
		if _, err := s.next(); err == nil {
			return true
		}
	}
	return false
}
