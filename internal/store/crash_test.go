package store

// The crash-point property test and the byte-identity acceptance drills.
// These are the contract the whole persistence layer hangs on:
//
//  1. A process killed at ANY byte offset of the memo log either recovers
//     a valid prefix of its pre-crash history or reports corruption —
//     never a silent wrong answer, never a panic.
//  2. Attaching the store to a fixed-seed learn never changes the learned
//     netlist: not cold, not warm-started from a previous run, not after
//     a mid-learn crash, not with a disk that tears writes and fails
//     fsyncs under it.

import (
	"fmt"
	"strings"
	"testing"

	"logicregression/internal/chaos"
	"logicregression/internal/circuit"
	"logicregression/internal/core"
	"logicregression/internal/oracle"
	"logicregression/internal/vfs"
)

// crashBox is a small deterministic black box for learn drills.
func crashBox() *circuit.Circuit {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	d := c.AddPI("d")
	e := c.AddPI("e")
	f := c.AddPI("f")
	c.AddPO("z0", c.Xor(c.And(a, b), d))
	c.AddPO("z1", c.Or(c.And(d, e), c.Xor(f, a)))
	return c
}

func netlistOf(t *testing.T, c *circuit.Circuit) string {
	t.Helper()
	var sb strings.Builder
	if err := circuit.WriteNetlist(&sb, c); err != nil {
		t.Fatalf("WriteNetlist: %v", err)
	}
	return sb.String()
}

// TestCrashAtEveryByte kills the writing "process" at every byte offset of
// a golden memo log and reopens over the surviving bytes. The recovered
// entries must be exactly the longest whole-record prefix that fit under
// the crash point — no invented entries, no dropped survivors, no
// corruption report (a crash tail is torn, not rotted), and no panic.
func TestCrashAtEveryByte(t *testing.T) {
	// Golden history: the exact bytes a fault-free run writes.
	type pair struct {
		key string
		out []bool
	}
	var history []pair
	for i := 0; i < 8; i++ {
		history = append(history, pair{
			key: oracle.MemoKey(bits(fmt.Sprintf("%06b", i*7+1))),
			out: bits(fmt.Sprintf("%02b", i%4)),
		})
	}
	goldenFS := vfs.NewMemFS()
	gs := noFlush(t, goldenFS)
	for _, p := range history {
		if err := gs.memo.append(p.key, p.out); err != nil {
			t.Fatal(err)
		}
	}
	gs.Close()
	golden := goldenFS.Snapshot("st/" + segmentName(1))
	if len(golden) == 0 {
		t.Fatal("golden log is empty")
	}

	// recordsIn counts whole records in a prefix of the golden bytes.
	recordsIn := func(prefix []byte) int {
		sc := recordScanner{data: prefix}
		n := 0
		for {
			if _, err := sc.next(); err != nil {
				return n
			}
			n++
		}
	}

	// CrashAtByte > 0 is required to arm the fault, so offset 0 (nothing
	// written at all) is covered by the plain empty-dir open tests.
	for crash := 1; crash <= len(golden); crash++ {
		mem := vfs.NewMemFS()
		faulty := chaos.NewFaultFS(mem, chaos.FSConfig{CrashAtByte: int64(crash)})

		// The doomed process: replay the same appends until the disk dies.
		s, err := Open(Config{Dir: "st", FS: faulty, FlushInterval: -1, CompactAt: -1})
		if err != nil {
			t.Fatalf("crash=%d: open failed early: %v", crash, err)
		}
		for _, p := range history {
			// The hook path must absorb the crash, not propagate it.
			s.MemoInsert(p.key, p.out)
		}
		s.Close()

		// Reboot: a fresh store over the survivors.
		s2, err := Open(Config{Dir: "st", FS: mem, FlushInterval: -1, CompactAt: -1})
		if err != nil {
			t.Fatalf("crash=%d: reopen failed: %v", crash, err)
		}
		info := s2.Recovery()
		if info.Corrupt {
			t.Fatalf("crash=%d: torn tail misreported as corruption: %+v", crash, info)
		}
		survivors := mem.Snapshot("st/" + segmentName(1))
		if int64(len(survivors)) > int64(crash) {
			t.Fatalf("crash=%d: %d bytes survived past the crash point", crash, len(survivors))
		}
		wantRecords := recordsIn(golden[:min(crash, len(golden))])
		if int(info.Records) != wantRecords {
			t.Fatalf("crash=%d: recovered %d records, want %d", crash, info.Records, wantRecords)
		}
		got := map[string][]bool{}
		s2.memo.each(func(k string, v []bool) { got[k] = v })
		if len(got) != wantRecords {
			t.Fatalf("crash=%d: %d live entries, want %d", crash, len(got), wantRecords)
		}
		for i := 0; i < wantRecords; i++ {
			if !boolsEqual(got[history[i].key], history[i].out) {
				t.Fatalf("crash=%d: entry %d corrupted after recovery", crash, i)
			}
		}
		// The repaired log must be clean: one more reopen sees zero damage.
		s2.Close()
		s3, err := Open(Config{Dir: "st", FS: mem, FlushInterval: -1, CompactAt: -1})
		if err != nil {
			t.Fatalf("crash=%d: second reopen: %v", crash, err)
		}
		if ri := s3.Recovery(); ri.Corrupt || ri.TruncatedBytes != 0 {
			t.Fatalf("crash=%d: recovery did not repair in place: %+v", crash, ri)
		}
		s3.Close()
	}
}

// TestLearnByteIdenticalWithStore is the acceptance drill: a fixed-seed
// learn with the store attached produces the exact netlist bytes of a
// plain in-memory learn — cold, warm-started from the previous run's log,
// and resumed from a partial log after a mid-learn disk crash.
func TestLearnByteIdenticalWithStore(t *testing.T) {
	box := crashBox()
	opts := core.Options{Seed: 11}
	want := netlistOf(t, core.Learn(oracle.FromCircuit(box), opts).Circuit)

	// Cold: empty store attached write-through.
	mem := vfs.NewMemFS()
	s, err := Open(Config{Dir: "st", FS: mem, FlushInterval: -1, CompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	m := oracle.NewMemo(oracle.FromCircuit(box))
	s.AttachMemo(m)
	got := netlistOf(t, core.Learn(m, opts).Circuit)
	if got != want {
		t.Fatal("cold learn with store attached diverged from in-memory learn")
	}
	m.SetHook(nil)
	st := s.Stats()
	if st.HookWrites == 0 || st.Degraded {
		t.Fatalf("store did not persist the learn: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm: a new process preloads the log; every query is a cache hit and
	// the result is still byte-identical.
	s2, err := Open(Config{Dir: "st", FS: mem, FlushInterval: -1, CompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	cnt := oracle.NewCounter(oracle.FromCircuit(box))
	m2 := oracle.NewMemo(cnt)
	if n := s2.AttachMemo(m2); n == 0 {
		t.Fatal("nothing preloaded from a log that persisted a whole learn")
	}
	got2 := netlistOf(t, core.Learn(m2, opts).Circuit)
	if got2 != want {
		t.Fatal("warm-started learn diverged")
	}
	if cnt.Queries() != 0 {
		t.Fatalf("warm-started learn still made %d oracle queries", cnt.Queries())
	}
	m2.SetHook(nil)
	s2.Close()

	// Crashed: rerun with a disk that dies partway through persisting.
	// The learn must not notice; the next process recovers the partial
	// log and its resumed learn is still byte-identical.
	mem3 := vfs.NewMemFS()
	half := mem.TotalBytes() / 2
	faulty := chaos.NewFaultFS(mem3, chaos.FSConfig{CrashAtByte: half})
	s3, err := Open(Config{Dir: "st", FS: faulty, FlushInterval: -1, CompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	m3 := oracle.NewMemo(oracle.FromCircuit(box))
	s3.AttachMemo(m3)
	got3 := netlistOf(t, core.Learn(m3, opts).Circuit)
	if got3 != want {
		t.Fatal("learn over a dying disk diverged — degraded mode must be invisible")
	}
	if !s3.Degraded() {
		t.Fatalf("disk crashed at byte %d but store never degraded", half)
	}
	m3.SetHook(nil)
	s3.Close()

	s4, err := Open(Config{Dir: "st", FS: mem3, FlushInterval: -1, CompactAt: -1})
	if err != nil {
		t.Fatalf("reopen after mid-learn crash: %v", err)
	}
	if s4.Recovery().Corrupt {
		t.Fatalf("mid-learn crash left corruption: %+v", s4.Recovery())
	}
	m4 := oracle.NewMemo(oracle.FromCircuit(box))
	if n := s4.AttachMemo(m4); n == 0 {
		t.Fatal("nothing recovered from the pre-crash prefix")
	}
	got4 := netlistOf(t, core.Learn(m4, opts).Circuit)
	if got4 != want {
		t.Fatal("learn resumed from a crash-recovered log diverged")
	}
	m4.SetHook(nil)
	s4.Close()
}

// TestLearnByteIdenticalUnderChaos soaks the full fault matrix: torn
// writes and fsync errors on every operation. The learned netlist must
// stay byte-identical across seeds; the store may degrade, never the
// learn.
func TestLearnByteIdenticalUnderChaos(t *testing.T) {
	box := crashBox()
	opts := core.Options{Seed: 23}
	want := netlistOf(t, core.Learn(oracle.FromCircuit(box), opts).Circuit)

	for seed := int64(1); seed <= 5; seed++ {
		mem := vfs.NewMemFS()
		faulty := chaos.NewFaultFS(mem, chaos.FSConfig{
			Seed:          seed,
			TornWriteRate: 0.2,
			SyncErrRate:   0.2,
		})
		s, err := Open(Config{Dir: "st", FS: faulty, FlushInterval: -1, CompactAt: -1})
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		m := oracle.NewMemo(oracle.FromCircuit(box))
		s.AttachMemo(m)
		got := netlistOf(t, core.Learn(m, opts).Circuit)
		if got != want {
			t.Fatalf("seed %d: learn under injected faults diverged", seed)
		}
		m.SetHook(nil)
		s.Close()

		// Whatever survived must replay cleanly (or report, never invent).
		s2, err := Open(Config{Dir: "st", FS: mem, FlushInterval: -1, CompactAt: -1})
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		box2 := oracle.FromCircuit(box)
		s2.memo.each(func(k string, v []bool) {
			// Every recovered entry must be a true oracle answer: decode
			// the key back to the assignment and re-ask the box.
			a := make([]bool, box2.NumInputs())
			for i := range a {
				a[i] = k[i>>3]&(1<<uint(i&7)) != 0
			}
			if !boolsEqual(box2.Eval(a), v) {
				t.Fatalf("seed %d: recovered entry disagrees with the oracle", seed)
			}
		})
		s2.Close()
	}
}
