package store

// The memo log: an append-only, segment-based record of every (assignment,
// response) pair an oracle memo has answered. Replaying it into a fresh
// memo before a learn converts cold misses into hits; because the oracle is
// deterministic, the learn's result is byte-identical either way.
//
// Layout: dir/memo-000001.log, memo-000002.log, ... Fixed-width segment
// numbers keep lexical directory order equal to append order. Appends go to
// the highest-numbered segment; compaction writes the deduplicated live
// entries into the next number and deletes the old files, so a reader at
// any crash point sees either the old segments or the compacted one —
// replay is last-wins and idempotent, never wrong.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path"
	"strings"
	"sync"

	"logicregression/internal/vfs"
)

// memoEntryTag types a memo-log payload, leaving room for future record
// kinds in the same framing.
const memoEntryTag = 'm'

// encodeMemoEntry packs one cache entry: tag, uvarint key length, raw key
// bytes (the memo's packed-assignment key), uvarint output bit count, and
// the output bits packed LSB-first.
func encodeMemoEntry(key string, out []bool) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+(len(out)+7)/8)
	buf = append(buf, memoEntryTag)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(out)))
	packed := make([]byte, (len(out)+7)/8)
	for i, b := range out {
		if b {
			packed[i>>3] |= 1 << uint(i&7)
		}
	}
	return append(buf, packed...)
}

// decodeMemoEntry is the inverse of encodeMemoEntry.
func decodeMemoEntry(p []byte) (key string, out []bool, err error) {
	if len(p) == 0 || p[0] != memoEntryTag {
		return "", nil, fmt.Errorf("store: memo entry has bad tag")
	}
	p = p[1:]
	klen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < klen {
		return "", nil, fmt.Errorf("store: memo entry key length overruns payload")
	}
	key = string(p[n : n+int(klen)])
	p = p[n+int(klen):]
	bits, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < (bits+7)/8 {
		return "", nil, fmt.Errorf("store: memo entry bit count overruns payload")
	}
	packed := p[n:]
	out = make([]bool, bits)
	for i := range out {
		out[i] = packed[i>>3]&(1<<uint(i&7)) != 0
	}
	return key, out, nil
}

// RecoveryInfo summarizes what opening a memo log found on disk.
type RecoveryInfo struct {
	// Segments is the number of log segments present.
	Segments int
	// Records is the total valid records replayed.
	Records int64
	// Entries is the live (deduplicated) entry count after replay.
	Entries int
	// TruncatedBytes is the size of the torn tail repaired on the final
	// segment — the normal wreckage of a crash mid-append.
	TruncatedBytes int64
	// Corrupt reports mid-file corruption: an invalid region that is NOT a
	// torn tail (valid records exist past it, or it is not in the final
	// segment). The valid prefix is still used; the loss is reported, not
	// silently absorbed.
	Corrupt bool
	// CorruptDetail describes the corruption when Corrupt is true.
	CorruptDetail string
}

// memoLog is the segmented append-only log. All mutating access is under
// mu; the group-commit flusher goroutine syncs pending appends on a timer.
type memoLog struct {
	fs  vfs.FS
	dir string

	mu        sync.Mutex
	active    vfs.File
	activeSeq int
	totalSize int64
	pending   int // appends not yet fsynced
	closed    bool

	// live is the current value per key; order is first-seen key order, the
	// deterministic iteration sequence for compaction (map iteration order
	// must never reach the disk).
	live  map[string][]bool
	order []string

	syncEvery int
	compactAt int64

	appends     int64
	syncs       int64
	compactions int64
}

func segmentName(seq int) string { return fmt.Sprintf("memo-%06d.log", seq) }

// parseSegmentName extracts the sequence number, or -1 for foreign files.
func parseSegmentName(name string) int {
	if !strings.HasPrefix(name, "memo-") || !strings.HasSuffix(name, ".log") {
		return -1
	}
	num := strings.TrimSuffix(strings.TrimPrefix(name, "memo-"), ".log")
	if len(num) != 6 {
		return -1
	}
	seq := 0
	for _, c := range num {
		if c < '0' || c > '9' {
			return -1
		}
		seq = seq*10 + int(c-'0')
	}
	return seq
}

// openMemoLog replays every segment in order, repairs a torn tail on the
// final segment, and opens the highest segment for appends.
func openMemoLog(fsys vfs.FS, dir string, syncEvery int, compactAt int64) (*memoLog, RecoveryInfo, error) {
	var info RecoveryInfo
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, info, fmt.Errorf("store: create %s: %w", dir, err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, info, fmt.Errorf("store: list %s: %w", dir, err)
	}
	var seqs []int
	for _, e := range entries {
		if seq := parseSegmentName(e.Name()); seq > 0 {
			seqs = append(seqs, seq)
		}
	}
	// ReadDir is lexical and segment numbers are fixed-width, so seqs is
	// already ascending.
	l := &memoLog{
		fs:        fsys,
		dir:       dir,
		live:      make(map[string][]bool),
		syncEvery: syncEvery,
		compactAt: compactAt,
	}
	info.Segments = len(seqs)
	for i, seq := range seqs {
		final := i == len(seqs)-1
		if err := l.replaySegment(seq, final, &info); err != nil {
			return nil, info, err
		}
	}
	info.Entries = len(l.live)

	l.activeSeq = 1
	if n := len(seqs); n > 0 {
		l.activeSeq = seqs[n-1]
	}
	name := path.Join(dir, segmentName(l.activeSeq))
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, info, fmt.Errorf("store: open active segment: %w", err)
	}
	l.active = f
	return l, info, nil
}

// replaySegment loads one segment's valid prefix into the live map. On the
// final segment a torn tail is truncated in place; any other invalid region
// is mid-file corruption and is reported via info.
func (l *memoLog) replaySegment(seq int, final bool, info *RecoveryInfo) error {
	name := path.Join(l.dir, segmentName(seq))
	f, err := l.fs.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("store: open segment %s: %w", name, err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("store: read segment %s: %w", name, err)
	}
	sc := recordScanner{data: data}
	for {
		payload, err := sc.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			dropped := data[sc.off:]
			if final && !scanTail(dropped) {
				// Torn tail: the expected shape of a crash mid-append.
				// Truncate to the recovered prefix so the next append
				// starts at a record boundary.
				info.TruncatedBytes += int64(len(dropped))
				if terr := l.truncateSegment(name, int64(sc.off)); terr != nil {
					return fmt.Errorf("store: repair torn tail of %s: %w", name, terr)
				}
				data = data[:sc.off]
				break
			}
			info.Corrupt = true
			info.CorruptDetail = fmt.Sprintf("%s: %v (%d bytes after valid prefix dropped)", name, err, len(dropped))
			// Keep the valid prefix; never parse past a corrupt region —
			// re-synchronized framing cannot be trusted.
			break
		}
		key, out, derr := decodeMemoEntry(payload)
		if derr != nil {
			// The record framing was valid but the payload is not a memo
			// entry — a logic-level corruption the checksum cannot catch.
			info.Corrupt = true
			info.CorruptDetail = fmt.Sprintf("%s: %v", name, derr)
			break
		}
		l.insertLive(key, out)
		info.Records++
	}
	l.totalSize += int64(len(data))
	return nil
}

func (l *memoLog) truncateSegment(name string, size int64) error {
	f, err := l.fs.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// insertLive records the latest value for a key, preserving first-seen
// order for deterministic compaction.
func (l *memoLog) insertLive(key string, out []bool) {
	if _, seen := l.live[key]; !seen {
		l.order = append(l.order, key)
	}
	l.live[key] = out
}

// append writes one entry and applies the sync policy. syncEvery <= 1 syncs
// inline on every append; otherwise appends stay pending until the batch
// fills or the flusher / Close syncs them (group commit).
func (l *memoLog) append(key string, out []bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("store: memo log closed")
	}
	if cur, seen := l.live[key]; seen && boolsEqual(cur, out) {
		return nil // already durable with the same value
	}
	rec := appendRecord(nil, encodeMemoEntry(key, out))
	if _, err := l.active.Write(rec); err != nil {
		return fmt.Errorf("store: append memo entry: %w", err)
	}
	l.insertLive(key, out)
	l.totalSize += int64(len(rec))
	l.appends++
	l.pending++
	if l.syncEvery <= 1 || l.pending >= l.syncEvery {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if l.compactAt > 0 && l.totalSize > l.compactAt {
		return l.compactLocked()
	}
	return nil
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (l *memoLog) syncLocked() error {
	if l.pending == 0 {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("store: fsync memo log: %w", err)
	}
	l.pending = 0
	l.syncs++
	return nil
}

// flushPending is the group-commit tick: fsync any appends accumulated
// since the last sync.
func (l *memoLog) flushPending() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// compactLocked rewrites the live entries into the next-numbered segment
// and deletes the old ones. The new segment is fully written and fsynced
// under a temporary name before the rename, so a crash at any point leaves
// either the old segments (compacted file invisible or ignored as .tmp) or
// the complete new one — replay handles both.
func (l *memoLog) compactLocked() error {
	newSeq := l.activeSeq + 1
	finalName := path.Join(l.dir, segmentName(newSeq))
	tmpName := finalName + ".tmp"

	var buf []byte
	liveOrder := make([]string, 0, len(l.live))
	for _, key := range l.order {
		out, ok := l.live[key]
		if !ok {
			continue
		}
		liveOrder = append(liveOrder, key)
		buf = appendRecord(buf, encodeMemoEntry(key, out))
	}

	tmp, err := l.fs.OpenFile(tmpName, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: create %s: %w", tmpName, err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		l.fs.Remove(tmpName)
		return fmt.Errorf("store: compact: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		l.fs.Remove(tmpName)
		return fmt.Errorf("store: compact: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: close: %w", err)
	}
	if err := l.fs.Rename(tmpName, finalName); err != nil {
		l.fs.Remove(tmpName)
		return fmt.Errorf("store: compact: swap: %w", err)
	}
	l.fs.SyncDir(l.dir)

	// The compacted segment is durable; retire the old ones. A failed
	// delete only wastes space — replay is last-wins and idempotent.
	oldActive, oldSeq := l.active, l.activeSeq
	f, err := l.fs.OpenFile(finalName, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: reopen active: %w", err)
	}
	oldActive.Close()
	for seq := 1; seq <= oldSeq; seq++ {
		l.fs.Remove(path.Join(l.dir, segmentName(seq)))
	}
	l.active = f
	l.activeSeq = newSeq
	l.totalSize = int64(len(buf))
	l.pending = 0
	l.order = liveOrder
	l.compactions++
	return nil
}

// each visits the live entries in first-seen order.
func (l *memoLog) each(fn func(key string, out []bool)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, key := range l.order {
		if out, ok := l.live[key]; ok {
			fn(key, out)
		}
	}
}

func (l *memoLog) entryCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.live)
}

func (l *memoLog) size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalSize
}

// close syncs pending appends and releases the active handle.
func (l *memoLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := func() error {
		if l.pending == 0 {
			return nil
		}
		if serr := l.active.Sync(); serr != nil {
			return fmt.Errorf("store: fsync memo log on close: %w", serr)
		}
		l.pending = 0
		l.syncs++
		return nil
	}()
	if cerr := l.active.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
