package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"
	"testing"
	"time"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
	"logicregression/internal/vfs"
)

// noFlush opens a store over fsys with the background flusher and
// compaction disabled and per-append fsync — fully deterministic I/O for
// crash and recovery drills.
func noFlush(t *testing.T, fsys vfs.FS) *Store {
	t.Helper()
	s, err := Open(Config{Dir: "st", FS: fsys, FlushInterval: -1, CompactAt: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func bits(s string) []bool {
	out := make([]bool, len(s))
	for i := range s {
		out[i] = s[i] == '1'
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{{}, []byte("a"), bytes.Repeat([]byte{0xAB}, 300)}
	var buf []byte
	for _, p := range payloads {
		buf = appendRecord(buf, p)
	}
	sc := recordScanner{data: buf}
	for i, want := range payloads {
		got, err := sc.next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d = %x, want %x", i, got, want)
		}
	}
	if _, err := sc.next(); err != io.EOF {
		t.Fatalf("end err = %v, want io.EOF", err)
	}
}

// TestRecordEveryByteCorruption flips every byte of a framed stream in
// turn and checks the scanner never accepts the damaged record.
func TestRecordEveryByteCorruption(t *testing.T) {
	payload := []byte("the quick brown fox")
	clean := appendRecord(nil, payload)
	for i := range clean {
		dirty := append([]byte(nil), clean...)
		dirty[i] ^= 0x40
		sc := recordScanner{data: dirty}
		got, err := sc.next()
		if err == nil && bytes.Equal(got, payload) {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

func TestMemoLogAppendReopen(t *testing.T) {
	mem := vfs.NewMemFS()
	s := noFlush(t, mem)
	entries := map[string][]bool{}
	for i := 0; i < 20; i++ {
		key := oracle.MemoKey(bits(fmt.Sprintf("%05b", i)))
		out := bits(fmt.Sprintf("%03b", i%8))
		entries[key] = out
		if err := s.memo.append(key, out); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2 := noFlush(t, mem)
	defer s2.Close()
	info := s2.Recovery()
	if info.Corrupt || info.TruncatedBytes != 0 {
		t.Fatalf("clean reopen reported damage: %+v", info)
	}
	if info.Entries != len(entries) || info.Records != 20 {
		t.Fatalf("recovered %d entries / %d records, want %d / 20", info.Entries, info.Records, len(entries))
	}
	got := map[string][]bool{}
	s2.memo.each(func(k string, v []bool) { got[k] = v })
	for k, want := range entries {
		if !boolsEqual(got[k], want) {
			t.Fatalf("entry %x = %v, want %v", k, got[k], want)
		}
	}
}

// TestMemoLogTornTail chops the log mid-record and verifies reopen
// recovers the full-record prefix, repairs the file, and does NOT flag
// corruption — a torn tail is the expected residue of a crash.
func TestMemoLogTornTail(t *testing.T) {
	mem := vfs.NewMemFS()
	s := noFlush(t, mem)
	for i := 0; i < 5; i++ {
		s.memo.append(oracle.MemoKey(bits(fmt.Sprintf("%04b", i))), bits("1"))
	}
	s.Close()

	name := "st/" + segmentName(1)
	full := mem.Snapshot(name)
	// Cut inside the final record.
	cut := int64(len(full) - 3)
	f, _ := mem.OpenFile(name, os.O_RDWR, 0o644)
	f.Truncate(cut)
	f.Close()

	s2 := noFlush(t, mem)
	defer s2.Close()
	info := s2.Recovery()
	if info.Corrupt {
		t.Fatalf("torn tail misreported as corruption: %+v", info)
	}
	if info.Entries != 4 {
		t.Fatalf("recovered %d entries, want 4", info.Entries)
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("no truncation reported for a torn tail")
	}
	if got := mem.Snapshot(name); int64(len(got)) >= cut {
		t.Fatalf("tail not repaired: %d bytes left", len(got))
	}
}

// TestMemoLogMidFileCorruption rots a byte in the middle of the log.
// Recovery must keep the prefix before the damage and report the loss —
// valid records after a corrupt region are evidence this was not a torn
// tail, and silently resynchronizing past it is forbidden.
func TestMemoLogMidFileCorruption(t *testing.T) {
	mem := vfs.NewMemFS()
	s := noFlush(t, mem)
	for i := 0; i < 6; i++ {
		s.memo.append(oracle.MemoKey(bits(fmt.Sprintf("%04b", i))), bits("1"))
	}
	s.Close()

	name := "st/" + segmentName(1)
	full := mem.Snapshot(name)
	recLen := len(full) / 6
	// Rot a payload byte inside record 2 (0-based).
	if err := mem.Patch(name, int64(2*recLen+recordHeaderSize), 0xFF); err != nil {
		t.Fatalf("patch: %v", err)
	}

	s2 := noFlush(t, mem)
	defer s2.Close()
	info := s2.Recovery()
	if !info.Corrupt {
		t.Fatalf("mid-file rot not reported: %+v", info)
	}
	if info.Entries != 2 {
		t.Fatalf("recovered %d entries, want the 2 before the damage", info.Entries)
	}
}

func TestMemoLogCompaction(t *testing.T) {
	mem := vfs.NewMemFS()
	s, err := Open(Config{Dir: "st", FS: mem, FlushInterval: -1, CompactAt: 600})
	if err != nil {
		t.Fatal(err)
	}
	// Re-append the same 4 keys with alternating values so every append
	// writes bytes; the live set stays at 4 entries.
	keys := make([]string, 4)
	for i := range keys {
		keys[i] = oracle.MemoKey(bits(fmt.Sprintf("%03b", i)))
	}
	for round := 0; round < 40; round++ {
		for _, k := range keys {
			if err := s.memo.append(k, []bool{round%2 == 0}); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d appends over a %d-byte threshold", st.Appends, 600)
	}
	if st.MemoEntries != 4 {
		t.Fatalf("live entries = %d, want 4", st.MemoEntries)
	}
	if st.MemoLogBytes > 600 {
		t.Fatalf("log still %d bytes after compaction", st.MemoLogBytes)
	}
	// Exactly one segment file remains, numbered past the retired ones.
	entries, _ := mem.ReadDir("st")
	var segs []string
	for _, e := range entries {
		if parseSegmentName(e.Name()) > 0 {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) != 1 {
		t.Fatalf("segments after compaction = %v", segs)
	}
	s.Close()

	// The compacted log replays to the same live set.
	s2 := noFlush(t, mem)
	defer s2.Close()
	if got := s2.memo.entryCount(); got != 4 {
		t.Fatalf("entries after reopen = %d, want 4", got)
	}
	for _, k := range keys {
		if !boolsEqual(s2.memo.live[k], []bool{false}) {
			t.Fatalf("key %x lost its last-written value", k)
		}
	}
}

// TestGroupCommitFlusher checks the batched-fsync policy: with a large
// batch size, appends stay pending until the background flusher's tick
// syncs them as a group.
func TestGroupCommitFlusher(t *testing.T) {
	mem := vfs.NewMemFS()
	s, err := Open(Config{Dir: "st", FS: mem, SyncEvery: 1000, FlushInterval: 2 * time.Millisecond, CompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.memo.append(oracle.MemoKey(bits(fmt.Sprintf("%04b", i))), bits("1"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.memo.mu.Lock()
		syncs, pending := s.memo.syncs, s.memo.pending
		s.memo.mu.Unlock()
		if syncs > 0 && pending == 0 {
			if syncs >= 10 {
				t.Fatalf("flusher made %d syncs for 10 appends: not grouped", syncs)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher never synced: syncs=%d pending=%d", syncs, pending)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStoreDegradesOnSyncFault(t *testing.T) {
	mem := vfs.NewMemFS()
	fsys := newAlwaysFailSync(mem)
	s, err := Open(Config{Dir: "st", FS: fsys, FlushInterval: -1, CompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The hook must absorb the failure: no error, no panic, store degraded.
	s.MemoInsert(oracle.MemoKey(bits("0101")), bits("1"))
	if !s.Degraded() {
		t.Fatal("store not degraded after fsync failure")
	}
	if s.Err() == nil {
		t.Fatal("degraded store lost its first error")
	}
	// Later hook calls are dropped, counted, and still harmless.
	s.MemoInsert(oracle.MemoKey(bits("0110")), bits("1"))
	if st := s.Stats(); st.Dropped == 0 || !st.Degraded {
		t.Fatalf("stats = %+v, want drops in degraded mode", st)
	}
}

// alwaysFailSync makes every file fsync fail while leaving data writes
// intact — the "disk lies about durability" failure.
type alwaysFailSync struct{ vfs.FS }

type failSyncFile struct{ vfs.File }

func newAlwaysFailSync(inner vfs.FS) vfs.FS { return alwaysFailSync{inner} }

func (a alwaysFailSync) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	f, err := a.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return failSyncFile{f}, nil
}

func (failSyncFile) Sync() error { return errors.New("injected: sync always fails") }

func TestCircuitStoreRoundTrip(t *testing.T) {
	mem := vfs.NewMemFS()
	s := noFlush(t, mem)
	defer s.Close()

	c := circuit.New()
	a, b := c.AddPI("a"), c.AddPI("b")
	c.AddPO("z", c.Xor(a, b))
	ident := oracle.IdentityOf(oracle.FromCircuit(c))
	key := LearnKey{Identity: ident, Seed: 3, Options: "o"}

	if got, err := s.GetCircuit(key); got != nil || err != nil {
		t.Fatalf("miss = (%v, %v), want (nil, nil)", got, err)
	}
	if err := s.PutCircuit(key, c); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := s.GetCircuit(key)
	if err != nil || got == nil {
		t.Fatalf("get: (%v, %v)", got, err)
	}
	var want, have strings.Builder
	circuit.WriteNetlist(&want, c)
	circuit.WriteNetlist(&have, got)
	if want.String() != have.String() {
		t.Fatal("round-tripped circuit differs")
	}

	// The same circuit under a second key shares one blob.
	key2 := LearnKey{Identity: ident, Seed: 4, Options: "o"}
	if err := s.PutCircuit(key2, c); err != nil {
		t.Fatalf("put 2: %v", err)
	}
	objs, _ := mem.ReadDir("st/objects")
	if len(objs) != 1 {
		t.Fatalf("object count = %d, want 1 (content addressing dedups)", len(objs))
	}
	if st := s.Stats(); st.Circuits != 2 {
		t.Fatalf("indexed circuits = %d, want 2", st.Circuits)
	}
}

func TestCircuitStoreSurvivesReopenAndCatchesRot(t *testing.T) {
	mem := vfs.NewMemFS()
	s := noFlush(t, mem)
	c := circuit.New()
	a, b := c.AddPI("a"), c.AddPI("b")
	c.AddPO("z", c.And(a, b))
	key := LearnKey{Identity: oracle.IdentityOf(oracle.FromCircuit(c)), Seed: 1}
	if err := s.PutCircuit(key, c); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := noFlush(t, mem)
	defer s2.Close()
	got, err := s2.GetCircuit(key)
	if err != nil || got == nil {
		t.Fatalf("reopen get: (%v, %v)", got, err)
	}

	// Rot one byte of the blob: the content hash must catch it.
	objs, _ := mem.ReadDir("st/objects")
	if err := mem.Patch("st/objects/"+objs[0].Name(), 3, '#'); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.GetCircuit(key); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("rotted blob read err = %v, want ErrCorruptBlob", err)
	}
}

func TestImportTranscript(t *testing.T) {
	box := circuit.New()
	a, b := box.AddPI("a"), box.AddPI("b")
	box.AddPO("z", box.Xor(a, b))
	inner := oracle.FromCircuit(box)

	var transcript bytes.Buffer
	rec, err := oracle.NewRecorder(inner, &transcript)
	if err != nil {
		t.Fatal(err)
	}
	queried := [][]bool{bits("00"), bits("01"), bits("10"), bits("11")}
	for _, q := range queried {
		rec.Eval(q)
	}

	mem := vfs.NewMemFS()
	s := noFlush(t, mem)
	defer s.Close()
	want := oracle.IdentityOf(inner)

	// Identity mismatch must refuse the import.
	other := oracle.Identity{Ins: []string{"x", "y"}, Outs: []string{"q"}}
	if _, err := s.ImportTranscript(bytes.NewReader(transcript.Bytes()), other); err == nil {
		t.Fatal("import from a different oracle succeeded")
	}

	n, err := s.ImportTranscript(bytes.NewReader(transcript.Bytes()), want)
	if err != nil || n != 4 {
		t.Fatalf("import = (%d, %v), want (4, nil)", n, err)
	}

	// A memo warm-started from the import answers without the oracle.
	cnt := oracle.NewCounter(inner)
	m := oracle.NewMemo(cnt)
	if got := s.AttachMemo(m); got != 4 {
		t.Fatalf("AttachMemo preloaded %d, want 4", got)
	}
	defer m.SetHook(nil)
	for _, q := range queried {
		wantOut := inner.Eval(q)
		if got := m.Eval(q); !boolsEqual(got, wantOut) {
			t.Fatalf("warm answer for %v = %v, want %v", q, got, wantOut)
		}
	}
	if cnt.Queries() != 0 {
		t.Fatalf("warm-started memo still made %d oracle calls", cnt.Queries())
	}
}
