package store

// The circuit store: content-addressed netlist blobs plus an append-only
// index mapping learn keys to blob hashes. A blob is the canonical netlist
// serialization of a learned circuit, named by its SHA-256; the name IS the
// checksum, so a read that hashes clean is exactly the bytes that were
// written, and identical circuits learned under different keys share one
// blob. The index uses the same framed-record format as the memo log, with
// last-wins replay, so re-learning a key simply appends a newer mapping.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path"
	"sync"

	"logicregression/internal/check"
	"logicregression/internal/circuit"
	"logicregression/internal/vfs"
)

const circuitEntryTag = 'c'

// ErrCorruptBlob reports a circuit object whose bytes no longer hash to
// their name — media rot the content address catches.
var ErrCorruptBlob = errors.New("store: circuit blob checksum mismatch")

// encodeCircuitEntry packs one index record: tag, uvarint key length, key,
// 32 raw hash bytes.
func encodeCircuitEntry(key string, hash [sha256.Size]byte) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(key)+sha256.Size)
	buf = append(buf, circuitEntryTag)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	return append(buf, hash[:]...)
}

func decodeCircuitEntry(p []byte) (key string, hash [sha256.Size]byte, err error) {
	if len(p) == 0 || p[0] != circuitEntryTag {
		return "", hash, fmt.Errorf("store: circuit entry has bad tag")
	}
	p = p[1:]
	klen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) != klen+sha256.Size {
		return "", hash, fmt.Errorf("store: circuit entry length mismatch")
	}
	key = string(p[n : n+int(klen)])
	copy(hash[:], p[n+int(klen):])
	return key, hash, nil
}

// circuitStore is the blob + index pair. All index mutation is under mu;
// blob writes are idempotent (content-addressed) and need no lock beyond
// the atomic rename.
type circuitStore struct {
	fs   vfs.FS
	root string

	mu    sync.Mutex
	index vfs.File
	byKey map[string]string // learn key -> hex blob hash
}

func (c *circuitStore) indexName() string { return path.Join(c.root, "circuits.log") }
func (c *circuitStore) objectDir() string { return path.Join(c.root, "objects") }
func (c *circuitStore) objectName(hexHash string) string {
	return path.Join(c.objectDir(), hexHash)
}

// openCircuitStore replays the index, repairing a torn tail the same way
// the memo log does, and opens it for appends.
func openCircuitStore(fsys vfs.FS, root string, info *RecoveryInfo) (*circuitStore, error) {
	c := &circuitStore{fs: fsys, root: root, byKey: make(map[string]string)}
	if err := fsys.MkdirAll(c.objectDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: create object dir: %w", err)
	}
	name := c.indexName()
	if f, err := fsys.OpenFile(name, os.O_RDONLY, 0); err == nil {
		data, rerr := io.ReadAll(f)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("store: read circuit index: %w", rerr)
		}
		sc := recordScanner{data: data}
		for {
			payload, err := sc.next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				dropped := data[sc.off:]
				if !scanTail(dropped) {
					info.TruncatedBytes += int64(len(dropped))
					if terr := truncateFile(fsys, name, int64(sc.off)); terr != nil {
						return nil, fmt.Errorf("store: repair circuit index: %w", terr)
					}
				} else {
					info.Corrupt = true
					info.CorruptDetail = fmt.Sprintf("%s: %v", name, err)
				}
				break
			}
			key, hash, derr := decodeCircuitEntry(payload)
			if derr != nil {
				info.Corrupt = true
				info.CorruptDetail = fmt.Sprintf("%s: %v", name, derr)
				break
			}
			c.byKey[key] = hex.EncodeToString(hash[:])
		}
	}
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open circuit index: %w", err)
	}
	c.index = f
	return c, nil
}

func truncateFile(fsys vfs.FS, name string, size int64) error {
	f, err := fsys.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// put stores a circuit under a learn key: blob first (write-fsync-rename,
// so the index never points at a half-written object), then the index
// record, fsynced immediately — circuit saves are rare and each one is a
// whole learn's work.
func (c *circuitStore) put(key string, circ *circuit.Circuit) error {
	var blob bytes.Buffer
	if err := circuit.WriteNetlist(&blob, circ); err != nil {
		return fmt.Errorf("store: serialize circuit: %w", err)
	}
	hash := sha256.Sum256(blob.Bytes())
	hexHash := hex.EncodeToString(hash[:])

	objName := c.objectName(hexHash)
	if _, err := c.fs.Stat(objName); err != nil {
		tmpName := objName + ".tmp"
		tmp, err := c.fs.OpenFile(tmpName, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("store: create blob: %w", err)
		}
		if _, err := tmp.Write(blob.Bytes()); err != nil {
			tmp.Close()
			c.fs.Remove(tmpName)
			return fmt.Errorf("store: write blob: %w", err)
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			c.fs.Remove(tmpName)
			return fmt.Errorf("store: fsync blob: %w", err)
		}
		if err := tmp.Close(); err != nil {
			return fmt.Errorf("store: close blob: %w", err)
		}
		if err := c.fs.Rename(tmpName, objName); err != nil {
			c.fs.Remove(tmpName)
			return fmt.Errorf("store: publish blob: %w", err)
		}
		c.fs.SyncDir(c.objectDir())
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byKey[key] == hexHash {
		return nil // identical mapping already durable
	}
	rec := appendRecord(nil, encodeCircuitEntry(key, hash))
	if _, err := c.index.Write(rec); err != nil {
		return fmt.Errorf("store: append circuit index: %w", err)
	}
	if err := c.index.Sync(); err != nil {
		return fmt.Errorf("store: fsync circuit index: %w", err)
	}
	c.byKey[key] = hexHash
	return nil
}

// get loads the circuit stored under a learn key. The blob's bytes are
// re-hashed against its name before parsing; rot yields ErrCorruptBlob,
// never a silently wrong circuit.
func (c *circuitStore) get(key string) (*circuit.Circuit, error) {
	c.mu.Lock()
	hexHash, ok := c.byKey[key]
	c.mu.Unlock()
	if !ok {
		return nil, nil
	}
	f, err := c.fs.OpenFile(c.objectName(hexHash), os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("store: open blob %s: %w", hexHash[:12], err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("store: read blob %s: %w", hexHash[:12], err)
	}
	if got := sha256.Sum256(data); hex.EncodeToString(got[:]) != hexHash {
		return nil, fmt.Errorf("%w: object %s", ErrCorruptBlob, hexHash[:12])
	}
	circ, err := check.ReadCircuit(bytes.NewReader(data), "netlist")
	if err != nil {
		return nil, fmt.Errorf("store: parse blob %s: %w", hexHash[:12], err)
	}
	return circ, nil
}

func (c *circuitStore) entryCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

func (c *circuitStore) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.index.Close()
}
