package aig

// ASCII AIGER ("aag") reader and writer, the standard AIG interchange format
// of the hardware model checking community. Only the combinational subset is
// supported (no latches), which is all this project needs; files with
// latches are rejected explicitly. Symbol table entries carry the PI/PO
// names so round trips preserve the naming information the learner depends
// on.
//
// Format reference: Biere, "The AIGER And-Inverter Graph (AIG) Format".

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteAIGER serializes g in ASCII AIGER format. Node numbering follows the
// internal layout: PI i is AIGER variable i+1 (literal 2i+2) — node 0 is the
// constant, as in AIGER.
func WriteAIGER(w io.Writer, g *AIG) error {
	bw := bufio.NewWriter(w)
	// M I L O A: max variable index, inputs, latches, outputs, ands.
	nAnds := g.NumNodes() - 1 - g.numPIs
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", g.NumNodes()-1, g.numPIs, len(g.pos), nAnds)
	for i := 0; i < g.numPIs; i++ {
		fmt.Fprintf(bw, "%d\n", aigerLit(g.PI(i)))
	}
	for _, po := range g.pos {
		fmt.Fprintf(bw, "%d\n", aigerLit(po))
	}
	for n := g.numPIs + 1; n < g.NumNodes(); n++ {
		fmt.Fprintf(bw, "%d %d %d\n",
			uint(2*n), aigerLit(g.nodes[n].fan0), aigerLit(g.nodes[n].fan1))
	}
	for i, name := range g.piNames {
		fmt.Fprintf(bw, "i%d %s\n", i, name)
	}
	for i, name := range g.poNames {
		fmt.Fprintf(bw, "o%d %s\n", i, name)
	}
	fmt.Fprintln(bw, "c")
	fmt.Fprintln(bw, "written by logicregression")
	return bw.Flush()
}

// aigerLit converts an internal edge to an AIGER literal: the node index is
// the AIGER variable, complement is the low bit.
func aigerLit(l Lit) uint {
	v := uint(2 * l.Node())
	if l.Compl() {
		v |= 1
	}
	return v
}

// ParseAIGER reads an ASCII AIGER file. Latches are rejected. Missing
// symbol-table names default to "i<N>"/"o<N>".
func ParseAIGER(r io.Reader) (*AIG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("aiger: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 6 || header[0] != "aag" {
		return nil, fmt.Errorf("aiger: bad header %q (binary 'aig' format unsupported; use aag)", sc.Text())
	}
	nums := make([]int, 5)
	for i := range nums {
		v, err := strconv.Atoi(header[i+1])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", header[i+1])
		}
		nums[i] = v
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nLatch != 0 {
		return nil, fmt.Errorf("aiger: %d latches present; only combinational AIGs are supported", nLatch)
	}
	if maxVar < nIn+nAnd {
		return nil, fmt.Errorf("aiger: header M=%d < I+A=%d", maxVar, nIn+nAnd)
	}

	readLit := func(field string, max int) (uint, error) {
		v, err := strconv.Atoi(field)
		if err != nil || v < 0 || v/2 > max {
			return 0, fmt.Errorf("aiger: bad literal %q", field)
		}
		return uint(v), nil
	}
	nextLine := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return strings.TrimSpace(sc.Text()), nil
	}

	piNames := make([]string, nIn)
	poNames := make([]string, nOut)
	inputLits := make([]uint, nIn)
	for i := range inputLits {
		line, err := nextLine()
		if err != nil {
			return nil, fmt.Errorf("aiger: truncated inputs: %w", err)
		}
		lit, err := readLit(line, maxVar)
		if err != nil {
			return nil, err
		}
		if lit%2 == 1 || lit == 0 {
			return nil, fmt.Errorf("aiger: input literal %d invalid", lit)
		}
		inputLits[i] = lit
	}
	outputLits := make([]uint, nOut)
	for i := range outputLits {
		line, err := nextLine()
		if err != nil {
			return nil, fmt.Errorf("aiger: truncated outputs: %w", err)
		}
		lit, err := readLit(line, maxVar)
		if err != nil {
			return nil, err
		}
		outputLits[i] = lit
	}

	// Map AIGER variable -> internal edge. Inputs may be any even literals
	// in AIGER, though in practice (and in our writer) they are 2..2I.
	varEdge := make(map[uint]Lit, maxVar+1)
	varEdge[0] = False
	for i, lit := range inputLits {
		varEdge[lit/2] = MkLit(i+1, false)
	}
	type andLine struct{ lhs, rhs0, rhs1 uint }
	ands := make([]andLine, nAnd)
	for i := range ands {
		line, err := nextLine()
		if err != nil {
			return nil, fmt.Errorf("aiger: truncated ands: %w", err)
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("aiger: bad and line %q", line)
		}
		lhs, err := readLit(fields[0], maxVar)
		if err != nil {
			return nil, err
		}
		rhs0, err := readLit(fields[1], maxVar)
		if err != nil {
			return nil, err
		}
		rhs1, err := readLit(fields[2], maxVar)
		if err != nil {
			return nil, err
		}
		if lhs%2 == 1 {
			return nil, fmt.Errorf("aiger: and lhs %d is complemented", lhs)
		}
		ands[i] = andLine{lhs: lhs, rhs0: rhs0, rhs1: rhs1}
	}

	// Symbol table and comments.
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "c" {
			break
		}
		if line == "" {
			continue
		}
		kind := line[0]
		rest := line[1:]
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			continue
		}
		idx, err := strconv.Atoi(rest[:sp])
		if err != nil {
			continue
		}
		name := rest[sp+1:]
		switch kind {
		case 'i':
			if idx >= 0 && idx < nIn {
				piNames[idx] = name
			}
		case 'o':
			if idx >= 0 && idx < nOut {
				poNames[idx] = name
			}
		}
	}
	for i, n := range piNames {
		if n == "" {
			piNames[i] = fmt.Sprintf("i%d", i)
		}
	}
	for i, n := range poNames {
		if n == "" {
			poNames[i] = fmt.Sprintf("o%d", i)
		}
	}

	g := New(piNames)
	edge := func(lit uint) (Lit, error) {
		e, ok := varEdge[lit/2]
		if !ok {
			return 0, fmt.Errorf("aiger: literal %d references undefined variable", lit)
		}
		if lit%2 == 1 {
			e = e.Not()
		}
		return e, nil
	}
	// AIGER requires ands in topological order (lhs > rhs), so one pass
	// suffices.
	for _, a := range ands {
		e0, err := edge(a.rhs0)
		if err != nil {
			return nil, err
		}
		e1, err := edge(a.rhs1)
		if err != nil {
			return nil, err
		}
		varEdge[a.lhs/2] = g.And(e0, e1)
	}
	for i, lit := range outputLits {
		e, err := edge(lit)
		if err != nil {
			return nil, err
		}
		g.AddPO(poNames[i], e)
	}
	return g, nil
}
