// Package aig implements And-Inverter Graphs with complemented edges and
// structural hashing, the intermediate representation of the circuit
// optimization step (the stand-in for ABC's strashed network, Sec. IV-E).
package aig

import (
	"fmt"

	"logicregression/internal/circuit"
)

// Lit is an AIG edge: node index shifted left once, LSB = complemented.
// Node 0 is the constant-false node, so False = Lit(0) and True = Lit(1).
type Lit uint32

// Constant edges.
const (
	False Lit = 0
	True  Lit = 1
)

// MkLit builds an edge to node with optional complementation.
func MkLit(node int, compl bool) Lit {
	l := Lit(node) << 1
	if compl {
		l |= 1
	}
	return l
}

// Node returns the edge's target node index.
func (l Lit) Node() int { return int(l >> 1) }

// Compl reports whether the edge is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// Not complements the edge.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Compl() {
		return fmt.Sprintf("~n%d", l.Node())
	}
	return fmt.Sprintf("n%d", l.Node())
}

type node struct {
	fan0, fan1 Lit // valid only for AND nodes (node > numPIs)
}

// AIG is a structurally hashed and-inverter graph. Node 0 is constant
// false; nodes 1..NumPIs are primary inputs; the rest are AND nodes in
// topological order.
type AIG struct {
	nodes   []node
	numPIs  int
	piNames []string
	pos     []Lit
	poNames []string
	strash  map[[2]Lit]int
}

// New returns an AIG with n primary inputs named by names (len must equal n,
// or nil for default names).
func New(piNames []string) *AIG {
	g := &AIG{strash: make(map[[2]Lit]int)}
	g.nodes = append(g.nodes, node{}) // constant node 0
	for _, name := range piNames {
		g.nodes = append(g.nodes, node{})
		g.piNames = append(g.piNames, name)
		g.numPIs++
	}
	return g
}

// NumPIs returns the primary input count.
func (g *AIG) NumPIs() int { return g.numPIs }

// NumNodes returns the total node count including constant and PIs.
func (g *AIG) NumNodes() int { return len(g.nodes) }

// PI returns the edge to the i-th primary input (0-based).
func (g *AIG) PI(i int) Lit {
	if i < 0 || i >= g.numPIs {
		panic(fmt.Sprintf("aig: PI %d out of range [0,%d)", i, g.numPIs))
	}
	return MkLit(i+1, false)
}

// PINames returns the input names.
func (g *AIG) PINames() []string { return append([]string(nil), g.piNames...) }

// PONames returns the output names.
func (g *AIG) PONames() []string { return append([]string(nil), g.poNames...) }

// NumPOs returns the primary output count.
func (g *AIG) NumPOs() int { return len(g.pos) }

// PO returns the i-th output edge.
func (g *AIG) PO(i int) Lit { return g.pos[i] }

// AddPO registers an output.
func (g *AIG) AddPO(name string, l Lit) {
	g.pos = append(g.pos, l)
	g.poNames = append(g.poNames, name)
}

// SetPO replaces the driver of output i (used by optimization passes).
func (g *AIG) SetPO(i int, l Lit) { g.pos[i] = l }

// IsAnd reports whether n is an AND node.
func (g *AIG) IsAnd(n int) bool { return n > g.numPIs }

// Fanins returns the fanin edges of AND node n.
func (g *AIG) Fanins(n int) (Lit, Lit) {
	if !g.IsAnd(n) {
		panic(fmt.Sprintf("aig: node %d is not an AND", n))
	}
	return g.nodes[n].fan0, g.nodes[n].fan1
}

// And returns an edge computing a AND b, applying constant folding,
// idempotence/complement rules, and structural hashing.
func (g *AIG) And(a, b Lit) Lit {
	if a > b {
		a, b = b, a
	}
	switch {
	case a == False:
		return False
	case a == True:
		return b
	case a == b:
		return a
	case a == b.Not():
		return False
	}
	key := [2]Lit{a, b}
	if n, ok := g.strash[key]; ok {
		return MkLit(n, false)
	}
	g.nodes = append(g.nodes, node{fan0: a, fan1: b})
	n := len(g.nodes) - 1
	g.strash[key] = n
	return MkLit(n, false)
}

// Or returns a OR b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a XOR b.
func (g *AIG) Xor(a, b Lit) Lit {
	return g.And(g.And(a, b.Not()).Not(), g.And(a.Not(), b).Not()).Not()
}

// Mux returns s ? t : e.
func (g *AIG) Mux(s, t, e Lit) Lit {
	return g.And(g.And(s, t).Not(), g.And(s.Not(), e).Not()).Not()
}

// NumAnds returns the number of AND nodes reachable from the outputs.
func (g *AIG) NumAnds() int {
	mark := g.markReachable()
	n := 0
	for i := g.numPIs + 1; i < len(g.nodes); i++ {
		if mark[i] {
			n++
		}
	}
	return n
}

func (g *AIG) markReachable() []bool {
	mark := make([]bool, len(g.nodes))
	var stack []int
	for _, po := range g.pos {
		if n := po.Node(); !mark[n] {
			mark[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !g.IsAnd(n) {
			continue
		}
		for _, f := range [2]Lit{g.nodes[n].fan0, g.nodes[n].fan1} {
			if fn := f.Node(); !mark[fn] {
				mark[fn] = true
				stack = append(stack, fn)
			}
		}
	}
	return mark
}

// Levels returns the per-node AND-depth and the maximum output level.
func (g *AIG) Levels() ([]int, int) {
	lv := make([]int, len(g.nodes))
	for n := g.numPIs + 1; n < len(g.nodes); n++ {
		l0 := lv[g.nodes[n].fan0.Node()]
		l1 := lv[g.nodes[n].fan1.Node()]
		lv[n] = 1 + max(l0, l1)
	}
	best := 0
	for _, po := range g.pos {
		best = max(best, lv[po.Node()])
	}
	return lv, best
}

// SimWords simulates 64 parallel patterns: in[i] is the word of PI i.
// It returns the value word of every node; index by Lit.Node() and
// complement per Lit.Compl().
func (g *AIG) SimWords(in []uint64) []uint64 {
	if len(in) != g.numPIs {
		panic(fmt.Sprintf("aig: SimWords got %d inputs, want %d", len(in), g.numPIs))
	}
	vals := make([]uint64, len(g.nodes))
	vals[0] = 0
	copy(vals[1:1+g.numPIs], in)
	for n := g.numPIs + 1; n < len(g.nodes); n++ {
		vals[n] = litWord(vals, g.nodes[n].fan0) & litWord(vals, g.nodes[n].fan1)
	}
	return vals
}

func litWord(vals []uint64, l Lit) uint64 {
	w := vals[l.Node()]
	if l.Compl() {
		return ^w
	}
	return w
}

// LitWord resolves an edge against a SimWords result.
func LitWord(vals []uint64, l Lit) uint64 { return litWord(vals, l) }

// EvalPOs simulates and returns one word per output.
func (g *AIG) EvalPOs(in []uint64) []uint64 {
	vals := g.SimWords(in)
	out := make([]uint64, len(g.pos))
	for i, po := range g.pos {
		out[i] = litWord(vals, po)
	}
	return out
}

// FromCircuit converts a gate-level circuit into a strashed AIG.
func FromCircuit(c *circuit.Circuit) *AIG {
	g := New(c.PINames())
	lits := make([]Lit, c.NumNodes())
	pi := 0
	for id := 0; id < c.NumNodes(); id++ {
		n := c.Node(id)
		switch n.Type {
		case circuit.PI:
			lits[id] = g.PI(pi)
			pi++
		case circuit.Const0:
			lits[id] = False
		case circuit.Const1:
			lits[id] = True
		case circuit.Not:
			lits[id] = lits[n.In0].Not()
		case circuit.Buf:
			lits[id] = lits[n.In0]
		case circuit.And:
			lits[id] = g.And(lits[n.In0], lits[n.In1])
		case circuit.Or:
			lits[id] = g.Or(lits[n.In0], lits[n.In1])
		case circuit.Xor:
			lits[id] = g.Xor(lits[n.In0], lits[n.In1])
		case circuit.Nand:
			lits[id] = g.And(lits[n.In0], lits[n.In1]).Not()
		case circuit.Nor:
			lits[id] = g.Or(lits[n.In0], lits[n.In1]).Not()
		case circuit.Xnor:
			lits[id] = g.Xor(lits[n.In0], lits[n.In1]).Not()
		default:
			panic(fmt.Sprintf("aig: unknown gate %v", n.Type))
		}
	}
	for i, name := range c.PONames() {
		g.AddPO(name, lits[c.POSignal(i)])
	}
	return g
}

// ToCircuit converts the AIG back to a gate-level circuit of ANDs and NOTs.
func (g *AIG) ToCircuit() *circuit.Circuit {
	c := circuit.New()
	sig := make([]circuit.Signal, len(g.nodes))
	neg := make([]circuit.Signal, len(g.nodes)) // cached complements; -1 = absent
	for i := range neg {
		neg[i] = -1
	}
	sig[0] = c.Const(false)
	for i := 0; i < g.numPIs; i++ {
		sig[i+1] = c.AddPI(g.piNames[i])
	}
	mark := g.markReachable()
	edge := func(l Lit) circuit.Signal {
		n := l.Node()
		if !l.Compl() {
			return sig[n]
		}
		if n == 0 {
			// Complemented constant edge: emit CONST1 directly instead of
			// NOT(CONST0), which every lint pass would flag as a constant
			// fanin gate.
			return c.Const(true)
		}
		if neg[n] < 0 {
			neg[n] = c.NotGate(sig[n])
		}
		return neg[n]
	}
	for n := g.numPIs + 1; n < len(g.nodes); n++ {
		if !mark[n] {
			continue
		}
		sig[n] = c.And(edge(g.nodes[n].fan0), edge(g.nodes[n].fan1))
	}
	for i, po := range g.pos {
		c.AddPO(g.poNames[i], edge(po))
	}
	return c
}

// Mark returns a checkpoint for Truncate: the current node count.
func (g *AIG) Mark() int { return len(g.nodes) }

// Truncate removes every node created after the given Mark checkpoint,
// including their structural-hash entries. POs and external references to
// truncated nodes become invalid; callers use Mark/Truncate for trial
// construction (build a candidate, measure it, roll back).
func (g *AIG) Truncate(mark int) {
	if mark < g.numPIs+1 {
		panic("aig: cannot truncate below the PI nodes")
	}
	for n := mark; n < len(g.nodes); n++ {
		delete(g.strash, [2]Lit{g.nodes[n].fan0, g.nodes[n].fan1})
	}
	g.nodes = g.nodes[:mark]
}

// NoSubst marks a node without substitution in Rebuild's map.
const NoSubst Lit = ^Lit(0)

// NewSubstMap allocates a substitution map for Rebuild with every node
// unsubstituted.
func (g *AIG) NewSubstMap() []Lit {
	m := make([]Lit, len(g.nodes))
	for i := range m {
		m[i] = NoSubst
	}
	return m
}

// Rebuild reconstructs the AIG bottom-up with fresh structural hashing,
// applying the substitution map subst (old node -> replacement edge in the
// OLD graph's numbering; NoSubst keeps the node; nil map = pure restrash).
// Unreachable logic is dropped. It returns the new graph.
func (g *AIG) Rebuild(subst []Lit) *AIG {
	out := New(g.piNames)
	m := make([]Lit, len(g.nodes)) // old node -> new edge
	m[0] = False
	for i := 0; i < g.numPIs; i++ {
		m[i+1] = out.PI(i)
	}
	resolve := func(l Lit) Lit {
		nl := m[l.Node()]
		if l.Compl() {
			nl = nl.Not()
		}
		return nl
	}
	for n := g.numPIs + 1; n < len(g.nodes); n++ {
		if subst != nil && subst[n] != NoSubst {
			// Substitution edges refer to OLD nodes; map through m.
			s := subst[n]
			ns := m[s.Node()]
			if s.Compl() {
				ns = ns.Not()
			}
			m[n] = ns
			continue
		}
		m[n] = out.And(resolve(g.nodes[n].fan0), resolve(g.nodes[n].fan1))
	}
	for i, po := range g.pos {
		out.AddPO(g.poNames[i], resolve(po))
	}
	return out
}
