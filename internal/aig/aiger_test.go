package aig

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestAIGERRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(rng, 5, 30, 3)
		g := FromCircuit(c)
		var buf bytes.Buffer
		if err := WriteAIGER(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ParseAIGER(&buf)
		if err != nil {
			t.Fatalf("ParseAIGER: %v", err)
		}
		if back.NumPIs() != g.NumPIs() || back.NumPOs() != g.NumPOs() {
			t.Fatalf("arity changed: %d/%d", back.NumPIs(), back.NumPOs())
		}
		for i, name := range g.PINames() {
			if back.PINames()[i] != name {
				t.Fatalf("PI name %d: %q vs %q", i, back.PINames()[i], name)
			}
		}
		for i, name := range g.PONames() {
			if back.PONames()[i] != name {
				t.Fatalf("PO name %d lost", i)
			}
		}
		in := make([]uint64, g.NumPIs())
		for i := range in {
			in[i] = rng.Uint64()
		}
		w1 := g.EvalPOs(in)
		w2 := back.EvalPOs(in)
		for j := range w1 {
			if w1[j] != w2[j] {
				t.Fatalf("trial %d: AIGER round trip changed output %d", trial, j)
			}
		}
	}
}

func TestAIGERConstantOutputs(t *testing.T) {
	g := New([]string{"a"})
	g.AddPO("zero", False)
	g.AddPO("one", True)
	g.AddPO("pass", g.PI(0))
	var buf bytes.Buffer
	if err := WriteAIGER(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ParseAIGER(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := back.EvalPOs([]uint64{0xF0})
	if out[0] != 0 || out[1] != ^uint64(0) || out[2] != 0xF0 {
		t.Fatalf("constants wrong: %x %x %x", out[0], out[1], out[2])
	}
}

func TestAIGERKnownFile(t *testing.T) {
	// Hand-written half adder: s = a XOR b, c = a AND b.
	// v3 = a AND b (carry); v4 = ~a AND ~b; v5 = ~v3 AND ~v4 = a XOR b.
	text := `aag 5 2 0 2 3
2
4
6
10
6 2 4
8 3 5
10 7 9
i0 a
i1 b
o0 c
o1 s
c
half adder
`
	g, err := ParseAIGER(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPIs() != 2 || g.NumPOs() != 2 {
		t.Fatalf("arity %d/%d", g.NumPIs(), g.NumPOs())
	}
	for p := 0; p < 4; p++ {
		var in [2]uint64
		if p&1 == 1 {
			in[0] = ^uint64(0)
		}
		if p>>1&1 == 1 {
			in[1] = ^uint64(0)
		}
		out := g.EvalPOs(in[:])
		a, b := p&1 == 1, p>>1&1 == 1
		if (out[0]&1 == 1) != (a && b) {
			t.Fatalf("carry wrong at %d", p)
		}
		if (out[1]&1 == 1) != (a != b) {
			t.Fatalf("sum wrong at %d", p)
		}
	}
	if g.PINames()[0] != "a" || g.PONames()[1] != "s" {
		t.Fatal("symbol table ignored")
	}
}

func TestAIGERRejectsBadInputs(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad magic":    "aig 1 1 0 0 0\n2\n",
		"latches":      "aag 1 0 1 0 0\n2 3\n",
		"neg field":    "aag -1 0 0 0 0\n",
		"truncated":    "aag 3 2 0 1 1\n2\n4\n6\n",
		"odd input":    "aag 1 1 0 0 0\n3\n",
		"compl lhs":    "aag 3 1 0 1 1\n2\n7\n7 2 2\n",
		"undef var":    "aag 3 1 0 1 1\n2\n6\n6 2 40\n",
		"short header": "aag 1 1\n",
	}
	for name, text := range cases {
		if _, err := ParseAIGER(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAIGERMissingSymbolsGetDefaults(t *testing.T) {
	text := "aag 1 1 0 1 0\n2\n2\n"
	g, err := ParseAIGER(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.PINames()[0] != "i0" || g.PONames()[0] != "o0" {
		t.Fatalf("default names wrong: %v %v", g.PINames(), g.PONames())
	}
}
