package aig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logicregression/internal/circuit"
	"logicregression/internal/sat"
)

func TestLitBasics(t *testing.T) {
	l := MkLit(5, true)
	if l.Node() != 5 || !l.Compl() {
		t.Fatalf("lit = %v", l)
	}
	if l.Not().Compl() || l.Not().Node() != 5 {
		t.Fatal("Not wrong")
	}
	if True.Node() != 0 || !True.Compl() || False.Compl() {
		t.Fatal("constants wrong")
	}
}

func TestAndFolding(t *testing.T) {
	g := New([]string{"a", "b"})
	a, b := g.PI(0), g.PI(1)
	if g.And(False, a) != False {
		t.Fatal("0 AND a != 0")
	}
	if g.And(True, a) != a {
		t.Fatal("1 AND a != a")
	}
	if g.And(a, a) != a {
		t.Fatal("a AND a != a")
	}
	if g.And(a, a.Not()) != False {
		t.Fatal("a AND ~a != 0")
	}
	ab1 := g.And(a, b)
	ab2 := g.And(b, a)
	if ab1 != ab2 {
		t.Fatal("strash failed on commuted operands")
	}
	if g.NumNodes() != 4 { // const + 2 PIs + 1 AND
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
}

func TestDerivedGates(t *testing.T) {
	g := New([]string{"a", "b", "s"})
	a, b, s := g.PI(0), g.PI(1), g.PI(2)
	g.AddPO("or", g.Or(a, b))
	g.AddPO("xor", g.Xor(a, b))
	g.AddPO("mux", g.Mux(s, a, b))
	for m := 0; m < 8; m++ {
		in := []uint64{0, 0, 0}
		for i := 0; i < 3; i++ {
			if m>>uint(i)&1 == 1 {
				in[i] = ^uint64(0)
			}
		}
		out := g.EvalPOs(in)
		av, bv, sv := m&1 == 1, m>>1&1 == 1, m>>2&1 == 1
		want := []bool{av || bv, av != bv, (sv && av) || (!sv && bv)}
		for j, w := range want {
			got := out[j]&1 == 1
			if got != w {
				t.Fatalf("m=%d output %d = %v, want %v", m, j, got, w)
			}
		}
	}
}

func TestFromToCircuitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		c := randomCircuit(rng, 5, 40, 3)
		g := FromCircuit(c)
		back := g.ToCircuit()
		if back.NumPI() != c.NumPI() || back.NumPO() != c.NumPO() {
			t.Fatalf("arity changed: %d/%d", back.NumPI(), back.NumPO())
		}
		for k := 0; k < 100; k++ {
			a := make([]bool, c.NumPI())
			for i := range a {
				a[i] = rng.Intn(2) == 1
			}
			w1 := c.Eval(a)
			w2 := back.Eval(a)
			for j := range w1 {
				if w1[j] != w2[j] {
					t.Fatalf("trial %d: round trip differs at output %d", trial, j)
				}
			}
		}
		// XOR/XNOR gates decompose into 3 ANDs, so the AND count can
		// exceed the 2-input gate count — but never by more than 3x.
		if back.Size() > 3*c.Size()+1 {
			t.Fatalf("trial %d: size exploded %d -> %d", trial, c.Size(), back.Size())
		}
	}
}

func randomCircuit(rng *rand.Rand, nPI, nGates, nPO int) *circuit.Circuit {
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < nPI; i++ {
		sigs = append(sigs, c.AddPI("x"+string(rune('a'+i))))
	}
	for g := 0; g < nGates; g++ {
		a := sigs[rng.Intn(len(sigs))]
		b := sigs[rng.Intn(len(sigs))]
		var s circuit.Signal
		switch rng.Intn(7) {
		case 0:
			s = c.And(a, b)
		case 1:
			s = c.Or(a, b)
		case 2:
			s = c.Xor(a, b)
		case 3:
			s = c.Nand(a, b)
		case 4:
			s = c.Nor(a, b)
		case 5:
			s = c.Xnor(a, b)
		default:
			s = c.NotGate(a)
		}
		sigs = append(sigs, s)
	}
	for o := 0; o < nPO; o++ {
		c.AddPO("y"+string(rune('0'+o)), sigs[len(sigs)-1-o])
	}
	return c
}

func TestSimWordsMatchesCircuitEval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := randomCircuit(rng, 6, 50, 4)
	g := FromCircuit(c)
	in := make([]uint64, 6)
	for i := range in {
		in[i] = rng.Uint64()
	}
	outW := g.EvalPOs(in)
	for k := 0; k < 64; k++ {
		a := make([]bool, 6)
		for i := range a {
			a[i] = in[i]>>uint(k)&1 == 1
		}
		want := c.Eval(a)
		for j := range want {
			if want[j] != (outW[j]>>uint(k)&1 == 1) {
				t.Fatalf("pattern %d output %d mismatch", k, j)
			}
		}
	}
}

func TestNumAndsCountsReachableOnly(t *testing.T) {
	g := New([]string{"a", "b"})
	a, b := g.PI(0), g.PI(1)
	used := g.And(a, b)
	g.And(a, b.Not()) // dangling
	g.AddPO("z", used)
	if got := g.NumAnds(); got != 1 {
		t.Fatalf("NumAnds = %d, want 1", got)
	}
}

func TestLevels(t *testing.T) {
	g := New([]string{"a", "b", "c"})
	x := g.And(g.PI(0), g.PI(1))
	y := g.And(x, g.PI(2))
	g.AddPO("z", y)
	_, depth := g.Levels()
	if depth != 2 {
		t.Fatalf("depth = %d, want 2", depth)
	}
}

func TestRebuildPureRestrash(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCircuit(rng, 5, 30, 2)
	g := FromCircuit(c)
	r := g.Rebuild(nil)
	if r.NumAnds() > g.NumAnds() {
		t.Fatalf("rebuild grew: %d -> %d", g.NumAnds(), r.NumAnds())
	}
	in := make([]uint64, 5)
	for i := range in {
		in[i] = rng.Uint64()
	}
	w1 := g.EvalPOs(in)
	w2 := r.EvalPOs(in)
	for j := range w1 {
		if w1[j] != w2[j] {
			t.Fatalf("rebuild changed function at output %d", j)
		}
	}
}

func TestRebuildWithSubstitution(t *testing.T) {
	// Build z = (a AND b) OR (a AND b) variants and substitute one node by
	// constant: z = a AND b; substitute that node with True -> z = true.
	g := New([]string{"a", "b"})
	ab := g.And(g.PI(0), g.PI(1))
	g.AddPO("z", ab)
	subst := g.NewSubstMap()
	subst[ab.Node()] = True
	r := g.Rebuild(subst)
	out := r.EvalPOs([]uint64{0, 0})
	if out[0] != ^uint64(0) {
		t.Fatalf("substituted output = %x, want all ones", out[0])
	}
	if r.NumAnds() != 0 {
		t.Fatalf("NumAnds = %d, want 0", r.NumAnds())
	}
}

func TestCNFProveEqual(t *testing.T) {
	// Two structurally different but equivalent forms: a XOR b built twice
	// with operands swapped; and a genuinely different function.
	g := New([]string{"a", "b"})
	a, b := g.PI(0), g.PI(1)
	x1 := g.Xor(a, b)
	// Build XOR via the mux identity: mux(a, ~b, b).
	x2 := g.Mux(a, b.Not(), b)
	diff := g.And(a, b)
	g.AddPO("x1", x1)

	s := sat.New()
	cnf := ToCNF(s, g)
	if st := cnf.ProveEqual(x1, x2, 0); st != sat.Unsat {
		t.Fatalf("equivalent edges: ProveEqual = %v, want Unsat", st)
	}
	if st := cnf.ProveEqual(x1, diff, 0); st != sat.Sat {
		t.Fatalf("different edges: ProveEqual = %v, want Sat", st)
	}
	// Counterexample must actually distinguish them.
	av := cnf.Model(a)
	bv := cnf.Model(b)
	if (av != bv) == (av && bv) {
		t.Fatalf("model (%v,%v) does not distinguish XOR from AND", av, bv)
	}
	// Constant edges.
	if st := cnf.ProveEqual(g.And(a, a.Not()), False, 0); st != sat.Unsat {
		t.Fatalf("a AND ~a vs False = %v, want Unsat", st)
	}
}

func TestCNFProveEqualConstTrue(t *testing.T) {
	g := New([]string{"a"})
	a := g.PI(0)
	taut := g.Or(a, a.Not())
	g.AddPO("z", taut)
	s := sat.New()
	cnf := ToCNF(s, g)
	if st := cnf.ProveEqual(taut, True, 0); st != sat.Unsat {
		t.Fatalf("tautology vs True = %v", st)
	}
}

// Property: random circuit -> AIG preserves the function on random patterns.
func TestQuickFromCircuitEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 4+rng.Intn(4), 10+rng.Intn(30), 2)
		g := FromCircuit(c)
		in := make([]uint64, c.NumPI())
		for i := range in {
			in[i] = rng.Uint64()
		}
		outG := g.EvalPOs(in)
		outC := c.EvalWords(in)
		for j := range outC {
			if outC[j] != outG[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
