package aig

import "logicregression/internal/sat"

// CNF is the Tseitin encoding of an AIG into a SAT solver: one solver
// variable per AIG node (constant node excluded — its edges translate to
// fixed literals handled during clause emission).
type CNF struct {
	solver *sat.Solver
	vars   []int // AIG node -> solver var; -1 for the constant node
	// constLit is the solver variable pinned to false, or -1 when the
	// constant node was never referenced.
	constLit int
}

// ToCNF encodes every AND node of g (reachable or not) into a fresh set of
// variables in the solver and returns the mapping. Multiple AIGs can be
// encoded into one solver (e.g. for miter construction).
func ToCNF(s *sat.Solver, g *AIG) *CNF {
	c := &CNF{solver: s, vars: make([]int, g.NumNodes())}
	c.vars[0] = -1
	constVar := -1 // lazily allocated variable fixed to false
	getConst := func() int {
		if constVar < 0 {
			constVar = s.NewVar()
			s.AddClause(sat.MkLit(constVar, true))
		}
		return constVar
	}
	for n := 1; n < g.NumNodes(); n++ {
		c.vars[n] = s.NewVar()
	}
	lit := func(l Lit) sat.Lit {
		n := l.Node()
		v := c.vars[n]
		if n == 0 {
			v = getConst()
		}
		return sat.MkLit(v, l.Compl())
	}
	for n := g.NumPIs() + 1; n < g.NumNodes(); n++ {
		o := sat.MkLit(c.vars[n], false)
		a := lit(g.nodes[n].fan0)
		b := lit(g.nodes[n].fan1)
		// o <-> a AND b
		s.AddClause(o.Not(), a)
		s.AddClause(o.Not(), b)
		s.AddClause(o, a.Not(), b.Not())
	}
	c.constLit = constVar
	return c
}

// Lit translates an AIG edge into a solver literal.
func (c *CNF) Lit(l Lit) sat.Lit {
	n := l.Node()
	if n == 0 {
		if c.constLit < 0 {
			// The encoding never referenced the constant: allocate now.
			c.constLit = c.solver.NewVar()
			c.solver.AddClause(sat.MkLit(c.constLit, true))
		}
		return sat.MkLit(c.constLit, l.Compl())
	}
	return sat.MkLit(c.vars[n], l.Compl())
}

// ProveEqual checks whether edges a and b of the encoded AIG are functionally
// equal by asking the solver for a distinguishing assignment. maxConflicts
// bounds the effort (0 = unlimited); the result is sat.Unknown when the
// budget ran out, sat.Unsat when proven equal, sat.Sat when a counterexample
// exists.
func (c *CNF) ProveEqual(a, b Lit, maxConflicts int64) sat.Status {
	// a != b is satisfiable iff they differ: encode a XOR b via two queries
	// with assumptions: (a, ~b) or (~a, b).
	c.solver.MaxConflicts = maxConflicts
	defer func() { c.solver.MaxConflicts = 0 }()
	st1 := c.solver.Solve(c.Lit(a), c.Lit(b).Not())
	if st1 == sat.Sat {
		return sat.Sat
	}
	st2 := c.solver.Solve(c.Lit(a).Not(), c.Lit(b))
	if st2 == sat.Sat {
		return sat.Sat
	}
	if st1 == sat.Unsat && st2 == sat.Unsat {
		return sat.Unsat
	}
	return sat.Unknown
}

// Model reads the value of an AIG edge from the last Sat answer.
func (c *CNF) Model(l Lit) bool {
	n := l.Node()
	if n == 0 {
		return l.Compl()
	}
	return c.solver.Model(c.vars[n]) != l.Compl()
}
