package aig

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzParseAIGER(f *testing.F) {
	f.Add("aag 1 1 0 1 0\n2\n2\n")
	f.Add("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 a\ni1 b\no0 z\nc\n")
	f.Add("aag 0 0 0 1 0\n0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseAIGER(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteAIGER(&buf, g); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		back, err := ParseAIGER(&buf)
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, buf.String())
		}
		if back.NumPIs() != g.NumPIs() || back.NumPOs() != g.NumPOs() {
			t.Fatal("arity changed in round trip")
		}
	})
}
