// Package support implements support identification (Sec. IV-C): estimating
// which primary inputs a black-box output actually depends on, using the
// dependency counts produced by PatternSampling.
//
// Because the generator is a black box, only an underapproximation S' ⊆ S is
// obtainable (Proposition 1): an input proven relevant by a witness
// assignment pair is in S; absence of a witness under r samples is taken as
// irrelevance. The combined even/uneven sampling pool improves recall on
// outputs that are only sensitive under skewed input distributions.
//
// The dependency counts come from PatternSampling, which issues its 2*r*|I|
// probe queries through the oracle's batched interface (oracle.BatchOracle):
// identification against a remote or cached black box costs a handful of
// round trips per input instead of one per assignment. Witness blocks its
// base/toggled probe pairs the same way.
package support

import (
	"math/rand"
	"sort"

	"logicregression/internal/bitvec"
	"logicregression/internal/oracle"
	"logicregression/internal/sampling"
)

// Config controls support identification.
type Config struct {
	// R is the number of sampled assignments per input (paper: 7200).
	R int
	// Ratios is the bias pool; empty means sampling.DefaultRatios.
	Ratios []float64
	// Rounds runs the identification this many times with fresh patterns,
	// unioning the discovered supports (diminishing-returns insurance
	// against unlucky pattern sets). 0 means 1.
	Rounds int
}

// Info is the identification result for one output.
type Info struct {
	// Support is S', ascending input indices with nonzero dependency count.
	Support []int
	// D holds the accumulated dependency counts per input.
	D []int
	// TruthRatio is the observed fraction of 1s over all rounds.
	TruthRatio float64
}

// MostSignificant returns the input with the highest dependency count, or
// ok=false when the support is empty.
func (s Info) MostSignificant() (input int, ok bool) {
	best, bestD := -1, 0
	for _, i := range s.Support {
		if s.D[i] > bestD {
			best, bestD = i, s.D[i]
		}
	}
	return best, best >= 0
}

// Identify estimates the support of oracle output out.
func Identify(o oracle.Oracle, out int, cfg Config, rng *rand.Rand) Info {
	rounds := max(cfg.Rounds, 1)
	info := Info{D: make([]int, o.NumInputs())}
	var truth float64
	for round := 0; round < rounds; round++ {
		res := sampling.PatternSampling(o, out, nil, sampling.Config{R: cfg.R, Ratios: cfg.Ratios}, rng)
		for i, d := range res.D {
			if d > 0 {
				info.D[i] += d
			}
		}
		truth += res.TruthRatio
	}
	info.TruthRatio = truth / float64(rounds)
	for i, d := range info.D {
		if d > 0 {
			info.Support = append(info.Support, i)
		}
	}
	sort.Ints(info.Support)
	return info
}

// Witness searches for a concrete assignment pair proving that output out
// depends on input in (Proposition 1's \hat{alpha}_i), trying tries random
// base assignments over the bias pool. It returns the base assignment with
// the input set to 0 and ok=true on success. This is the exact-certificate
// counterpart to the statistical Identify and is used by tests and
// diagnostics.
func Witness(o oracle.Oracle, out, in, tries int, rng *rand.Rand) ([]bool, bool) {
	const chunk = 32 // 2 patterns per try = exactly one lane word
	ratios := sampling.DefaultRatios
	n := o.NumInputs()
	batch := oracle.AsBatch(o)
	for k := 0; k < tries; k += chunk {
		cnt := min(tries-k, chunk)
		// Random draws stay in the per-try reference order; only the
		// queries are blocked (base/toggled pair per try, pairs packed
		// into adjacent lanes).
		bases := make([][]bool, cnt)
		w := oracle.Words(2 * cnt)
		lanes := make([]bitvec.Word, n*w)
		for t := 0; t < cnt; t++ {
			a := sampling.RandomAssignment(rng, n, ratios[(k+t)%len(ratios)], nil)
			a[in] = false
			bases[t] = a
			for j := 0; j < n; j++ {
				bit := uint(2 * t % 64)
				if a[j] || j == in {
					var pair bitvec.Word
					if a[j] {
						pair = 0b11
					}
					if j == in {
						pair |= 0b10 // toggled copy has the input set
					}
					lanes[j*w+2*t/64] |= pair << bit
				}
			}
		}
		res := batch.EvalBatch(lanes, 2*cnt)
		for t := 0; t < cnt; t++ {
			word := res[out*w+2*t/64] >> uint(2*t%64)
			if word&1 != word>>1&1 {
				return bases[t], true
			}
		}
	}
	return nil, false
}
