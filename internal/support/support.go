// Package support implements support identification (Sec. IV-C): estimating
// which primary inputs a black-box output actually depends on, using the
// dependency counts produced by PatternSampling.
//
// Because the generator is a black box, only an underapproximation S' ⊆ S is
// obtainable (Proposition 1): an input proven relevant by a witness
// assignment pair is in S; absence of a witness under r samples is taken as
// irrelevance. The combined even/uneven sampling pool improves recall on
// outputs that are only sensitive under skewed input distributions.
//
// The dependency counts come from PatternSampling, which issues its 2*r*|I|
// probe queries through the oracle's batched interface (oracle.BatchOracle):
// identification against a remote or cached black box costs a handful of
// round trips per input instead of one per assignment. Witness deliberately
// stays on the scalar path — it is the exact reference certificate.
package support

import (
	"math/rand"
	"sort"

	"logicregression/internal/oracle"
	"logicregression/internal/sampling"
)

// Config controls support identification.
type Config struct {
	// R is the number of sampled assignments per input (paper: 7200).
	R int
	// Ratios is the bias pool; empty means sampling.DefaultRatios.
	Ratios []float64
	// Rounds runs the identification this many times with fresh patterns,
	// unioning the discovered supports (diminishing-returns insurance
	// against unlucky pattern sets). 0 means 1.
	Rounds int
}

// Info is the identification result for one output.
type Info struct {
	// Support is S', ascending input indices with nonzero dependency count.
	Support []int
	// D holds the accumulated dependency counts per input.
	D []int
	// TruthRatio is the observed fraction of 1s over all rounds.
	TruthRatio float64
}

// MostSignificant returns the input with the highest dependency count, or
// ok=false when the support is empty.
func (s Info) MostSignificant() (input int, ok bool) {
	best, bestD := -1, 0
	for _, i := range s.Support {
		if s.D[i] > bestD {
			best, bestD = i, s.D[i]
		}
	}
	return best, best >= 0
}

// Identify estimates the support of oracle output out.
func Identify(o oracle.Oracle, out int, cfg Config, rng *rand.Rand) Info {
	rounds := max(cfg.Rounds, 1)
	info := Info{D: make([]int, o.NumInputs())}
	var truth float64
	for round := 0; round < rounds; round++ {
		res := sampling.PatternSampling(o, out, nil, sampling.Config{R: cfg.R, Ratios: cfg.Ratios}, rng)
		for i, d := range res.D {
			if d > 0 {
				info.D[i] += d
			}
		}
		truth += res.TruthRatio
	}
	info.TruthRatio = truth / float64(rounds)
	for i, d := range info.D {
		if d > 0 {
			info.Support = append(info.Support, i)
		}
	}
	sort.Ints(info.Support)
	return info
}

// Witness searches for a concrete assignment pair proving that output out
// depends on input in (Proposition 1's \hat{alpha}_i), trying tries random
// base assignments over the bias pool. It returns the base assignment with
// the input set to 0 and ok=true on success. This is the exact-certificate
// counterpart to the statistical Identify and is used by tests and
// diagnostics.
func Witness(o oracle.Oracle, out, in, tries int, rng *rand.Rand) ([]bool, bool) {
	ratios := sampling.DefaultRatios
	n := o.NumInputs()
	for k := 0; k < tries; k++ {
		a := sampling.RandomAssignment(rng, n, ratios[k%len(ratios)], nil)
		a[in] = false
		v0 := o.Eval(a)[out]
		a[in] = true
		v1 := o.Eval(a)[out]
		if v0 != v1 {
			a[in] = false
			return a, true
		}
	}
	return nil, false
}
