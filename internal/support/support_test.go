package support

import (
	"math/rand"
	"testing"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
)

// hiddenFn: out0 depends on {0,1,4}, out1 on {2}, out2 on nothing.
func hiddenFn() oracle.Oracle {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	x := c.AddPI("x")
	c.AddPI("unused")
	e := c.AddPI("e")
	c.AddPO("f", c.Or(c.And(a, b), e))
	c.AddPO("g", c.NotGate(x))
	c.AddPO("h", c.Const(true))
	return oracle.FromCircuit(c)
}

func TestIdentifyFindsExactSupport(t *testing.T) {
	o := hiddenFn()
	rng := rand.New(rand.NewSource(1))
	info := Identify(o, 0, Config{R: 512}, rng)
	want := []int{0, 1, 4}
	if len(info.Support) != len(want) {
		t.Fatalf("support = %v, want %v", info.Support, want)
	}
	for i := range want {
		if info.Support[i] != want[i] {
			t.Fatalf("support = %v, want %v", info.Support, want)
		}
	}
}

func TestIdentifySingleInputOutput(t *testing.T) {
	o := hiddenFn()
	rng := rand.New(rand.NewSource(2))
	info := Identify(o, 1, Config{R: 256}, rng)
	if len(info.Support) != 1 || info.Support[0] != 2 {
		t.Fatalf("support = %v, want [2]", info.Support)
	}
	if in, ok := info.MostSignificant(); !ok || in != 2 {
		t.Fatalf("MostSignificant = %d,%v", in, ok)
	}
}

func TestIdentifyConstantOutput(t *testing.T) {
	o := hiddenFn()
	rng := rand.New(rand.NewSource(3))
	info := Identify(o, 2, Config{R: 256}, rng)
	if len(info.Support) != 0 {
		t.Fatalf("constant output support = %v", info.Support)
	}
	if _, ok := info.MostSignificant(); ok {
		t.Fatal("constant output has a most-significant input")
	}
	if info.TruthRatio != 1 {
		t.Fatalf("TruthRatio = %f, want 1", info.TruthRatio)
	}
}

func TestIdentifyMultiRoundUnion(t *testing.T) {
	o := hiddenFn()
	rng := rand.New(rand.NewSource(4))
	one := Identify(o, 0, Config{R: 128, Rounds: 1}, rng)
	multi := Identify(o, 0, Config{R: 128, Rounds: 4}, rand.New(rand.NewSource(4)))
	if len(multi.Support) < len(one.Support) {
		t.Fatalf("multi-round support %v smaller than single-round %v", multi.Support, one.Support)
	}
}

func TestMostSignificantPrefersDominantInput(t *testing.T) {
	// f = e OR (a AND b): e flips f whenever a AND b = 0 (3/4 of the time
	// under even bias); a flips it only when b=1, e=0 (1/4). e must win.
	o := hiddenFn()
	rng := rand.New(rand.NewSource(5))
	info := Identify(o, 0, Config{R: 1024, Ratios: []float64{0.5}}, rng)
	if in, ok := info.MostSignificant(); !ok || in != 4 {
		t.Fatalf("MostSignificant = %d, want 4 (input e)", in)
	}
}

func TestWitnessFindsDependency(t *testing.T) {
	o := hiddenFn()
	rng := rand.New(rand.NewSource(6))
	a, ok := Witness(o, 0, 4, 200, rng)
	if !ok {
		t.Fatal("no witness found for a true dependency")
	}
	// Verify the witness actually flips the output.
	a[4] = false
	v0 := o.Eval(a)[0]
	a[4] = true
	v1 := o.Eval(a)[0]
	if v0 == v1 {
		t.Fatal("returned witness does not flip the output")
	}
}

func TestWitnessFailsOnIndependentInput(t *testing.T) {
	o := hiddenFn()
	rng := rand.New(rand.NewSource(7))
	if _, ok := Witness(o, 0, 3, 100, rng); ok {
		t.Fatal("witness found for an independent input")
	}
}

func TestIdentifyTruthRatioMatchesBias(t *testing.T) {
	// Output g = NOT x: truth ratio across the pool averages 1 - mean(pool).
	o := hiddenFn()
	rng := rand.New(rand.NewSource(8))
	info := Identify(o, 1, Config{R: 2048, Ratios: []float64{0.5}}, rng)
	if info.TruthRatio < 0.45 || info.TruthRatio > 0.55 {
		t.Fatalf("TruthRatio = %f, want ~0.5", info.TruthRatio)
	}
}
