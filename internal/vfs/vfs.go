// Package vfs is the minimal filesystem seam the persistent store writes
// through. Production code uses OS (the real filesystem); tests and chaos
// drills swap in MemFS (a deterministic in-memory filesystem) or a
// chaos.FaultFS wrapper that injects torn writes, fsync errors, read
// bit-flips, and crash-at-offset kills. The interface is deliberately tiny
// — exactly the operations an append-only log with atomic-rename swaps
// needs — so every implementation can give precise crash semantics.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is one open file handle.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to the given size — the torn-tail repair
	// operation of log recovery.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface the store needs. Paths use the host
// separator conventions of path/filepath.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory in lexical order.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir flushes directory metadata (new files, renames) to stable
	// storage. Implementations where that has no meaning return nil.
	SyncDir(name string) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

// SyncDir fsyncs the directory so renames and creations survive a crash.
// Filesystems that reject directory fsync (some network mounts, Windows)
// are tolerated: the error is dropped, matching the usual best-effort
// semantics of directory durability.
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

var _ FS = OS{}
