package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// TestFSContract runs the same behavioural contract against MemFS and the
// real OS filesystem (in a temp dir), so the in-memory stand-in cannot
// drift from the semantics the store relies on.
func TestFSContract(t *testing.T) {
	t.Run("mem", func(t *testing.T) { fsContract(t, NewMemFS(), "root") })
	t.Run("os", func(t *testing.T) { fsContract(t, OS{}, filepath.Join(t.TempDir(), "root")) })
}

func fsContract(t *testing.T, v FS, root string) {
	t.Helper()
	join := func(parts ...string) string {
		return filepath.Join(append([]string{root}, parts...)...)
	}
	if err := v.MkdirAll(join("sub"), 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}

	// Create + write + append semantics.
	f, err := v.OpenFile(join("sub", "a.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen for append lands at the end.
	f, err = v.OpenFile(join("sub", "a.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := f.Write([]byte("!")); err != nil {
		t.Fatalf("append: %v", err)
	}
	f.Close()

	readAll := func(name string) string {
		t.Helper()
		r, err := v.OpenFile(name, os.O_RDONLY, 0)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		defer r.Close()
		b, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return string(b)
	}
	if got := readAll(join("sub", "a.log")); got != "hello world!" {
		t.Fatalf("content = %q", got)
	}

	// Truncate repairs a torn tail.
	f, err = v.OpenFile(join("sub", "a.log"), os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open rw: %v", err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	f.Close()
	if got := readAll(join("sub", "a.log")); got != "hello" {
		t.Fatalf("after truncate = %q", got)
	}

	// Rename atomically replaces.
	g, err := v.OpenFile(join("sub", "b.tmp"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("create tmp: %v", err)
	}
	g.Write([]byte("new"))
	g.Close()
	if err := v.Rename(join("sub", "b.tmp"), join("sub", "a.log")); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if got := readAll(join("sub", "a.log")); got != "new" {
		t.Fatalf("after rename = %q", got)
	}
	if err := v.SyncDir(join("sub")); err != nil {
		t.Fatalf("syncdir: %v", err)
	}

	// ReadDir is sorted and sees exactly the live files.
	h, _ := v.OpenFile(join("sub", "0th.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	h.Close()
	entries, err := v.ReadDir(join("sub"))
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 || names[0] != "0th.log" || names[1] != "a.log" {
		t.Fatalf("ReadDir = %v", names)
	}

	// Stat and Remove.
	info, err := v.Stat(join("sub", "a.log"))
	if err != nil || info.Size() != 3 {
		t.Fatalf("stat: %v %v", info, err)
	}
	if err := v.Remove(join("sub", "0th.log")); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := v.Stat(join("sub", "0th.log")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stat removed: %v", err)
	}
	if _, err := v.OpenFile(join("sub", "missing"), os.O_RDONLY, 0); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
}

func TestMemFSPatchAndSnapshot(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	f, _ := m.OpenFile("d/x", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("abc"))
	f.Close()
	if err := m.Patch("d/x", 1, 'Z'); err != nil {
		t.Fatalf("patch: %v", err)
	}
	if got := string(m.Snapshot("d/x")); got != "aZc" {
		t.Fatalf("snapshot = %q", got)
	}
	if err := m.Patch("d/x", 99, 'Z'); err == nil {
		t.Fatal("patch out of range succeeded")
	}
	if m.TotalBytes() != 3 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
}
