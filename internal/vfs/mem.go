package vfs

// MemFS: a deterministic in-memory filesystem. It exists for crash drills —
// a chaos.FaultFS layered over a MemFS can kill a "process" at an exact
// byte offset and the surviving bytes stay inspectable, so a test can
// reopen the store over the same MemFS and verify recovery against the
// pre-crash history. It is also simply a fast hermetic FS for unit tests.
//
// Semantics follow os.File where the store relies on them: O_APPEND writes
// land at the end regardless of seeks, Rename atomically replaces the
// target, ReadDir is sorted. Sync is a no-op (memory is "stable storage"
// here; injected fsync faults come from the chaos wrapper, not from MemFS).

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// MemFS is an in-memory FS implementation. The zero value is not usable;
// call NewMemFS.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memNode
	dirs  map[string]bool
}

type memNode struct {
	mu   sync.Mutex
	data []byte
}

// NewMemFS returns an empty in-memory filesystem with a root directory.
func NewMemFS() *MemFS {
	return &MemFS{
		files: make(map[string]*memNode),
		dirs:  map[string]bool{".": true},
	}
}

// clean normalizes a path to the slash-separated canonical form used as the
// map key.
func clean(name string) string {
	return path.Clean(strings.ReplaceAll(name, "\\", "/"))
}

// TotalBytes returns the sum of all file sizes — the footprint a compaction
// test asserts shrinks.
func (m *MemFS) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, n := range m.files {
		n.mu.Lock()
		total += int64(len(n.data))
		n.mu.Unlock()
	}
	return total
}

// Snapshot returns a deep copy of a file's current bytes (nil when absent),
// for corruption drills that patch bytes directly.
func (m *MemFS) Snapshot(name string) []byte {
	m.mu.Lock()
	n, ok := m.files[clean(name)]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]byte(nil), n.data...)
}

// Patch overwrites one byte of a file in place — simulated bit rot.
func (m *MemFS) Patch(name string, off int64, b byte) error {
	m.mu.Lock()
	n, ok := m.files[clean(name)]
	m.mu.Unlock()
	if !ok {
		return &fs.PathError{Op: "patch", Path: name, Err: fs.ErrNotExist}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if off < 0 || off >= int64(len(n.data)) {
		return &fs.PathError{Op: "patch", Path: name, Err: errors.New("offset out of range")}
	}
	n.data[off] = b
	return nil
}

func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	node, exists := m.files[name]
	switch {
	case !exists && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case exists && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrExist}
	case !exists:
		if dir := path.Dir(name); !m.dirs[dir] {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		node = &memNode{}
		m.files[name] = node
	}
	if flag&os.O_TRUNC != 0 {
		node.mu.Lock()
		node.data = nil
		node.mu.Unlock()
	}
	return &memHandle{fs: m, node: node, name: name, flag: flag}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = n
	return nil
}

func (m *MemFS) Remove(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; ok {
		delete(m.files, name)
		return nil
	}
	if m.dirs[name] {
		delete(m.dirs, name)
		return nil
	}
	return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
}

func (m *MemFS) MkdirAll(p string, perm fs.FileMode) error {
	p = clean(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p != "." && p != "/" {
		m.dirs[p] = true
		p = path.Dir(p)
	}
	return nil
}

func (m *MemFS) ReadDir(name string) ([]fs.DirEntry, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[name] {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrNotExist}
	}
	var names []string
	seen := make(map[string]bool)
	addChild := func(p string) {
		if p == name || !strings.HasPrefix(p, name+"/") {
			return
		}
		rest := strings.TrimPrefix(p, name+"/")
		child := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			child = rest[:i]
		}
		if !seen[child] {
			seen[child] = true
			names = append(names, child)
		}
	}
	for p := range m.files {
		addChild(p)
	}
	for p := range m.dirs {
		addChild(p)
	}
	sort.Strings(names)
	entries := make([]fs.DirEntry, 0, len(names))
	for _, n := range names {
		full := name + "/" + n
		if node, ok := m.files[full]; ok {
			node.mu.Lock()
			size := int64(len(node.data))
			node.mu.Unlock()
			entries = append(entries, memDirEntry{name: n, size: size})
		} else {
			entries = append(entries, memDirEntry{name: n, dir: true})
		}
	}
	return entries, nil
}

func (m *MemFS) Stat(name string) (fs.FileInfo, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if node, ok := m.files[name]; ok {
		node.mu.Lock()
		size := int64(len(node.data))
		node.mu.Unlock()
		return memFileInfo{name: path.Base(name), size: size}, nil
	}
	if m.dirs[name] {
		return memFileInfo{name: path.Base(name), dir: true}, nil
	}
	return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
}

func (m *MemFS) SyncDir(name string) error { return nil }

// memHandle is one open handle on a memNode.
type memHandle struct {
	fs   *MemFS
	node *memNode
	name string
	flag int

	mu     sync.Mutex
	off    int64
	closed bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.node.mu.Lock()
	defer h.node.mu.Unlock()
	if h.off >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[h.off:])
	h.off += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.node.mu.Lock()
	defer h.node.mu.Unlock()
	if h.flag&os.O_APPEND != 0 {
		h.off = int64(len(h.node.data))
	}
	end := h.off + int64(len(p))
	if end > int64(len(h.node.data)) {
		grown := make([]byte, end)
		copy(grown, h.node.data)
		h.node.data = grown
	}
	copy(h.node.data[h.off:end], p)
	h.off = end
	return len(p), nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.node.mu.Lock()
	size := int64(len(h.node.data))
	h.node.mu.Unlock()
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = size + offset
	default:
		return 0, errors.New("vfs: bad whence")
	}
	if h.off < 0 {
		h.off = 0
		return 0, errors.New("vfs: negative seek")
	}
	return h.off, nil
}

func (h *memHandle) Sync() error { return nil }

func (h *memHandle) Truncate(size int64) error {
	h.node.mu.Lock()
	defer h.node.mu.Unlock()
	if size < 0 {
		return errors.New("vfs: negative truncate")
	}
	if size <= int64(len(h.node.data)) {
		h.node.data = h.node.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, h.node.data)
		h.node.data = grown
	}
	return nil
}

func (h *memHandle) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	return nil
}

func (h *memHandle) Name() string { return h.name }

// memDirEntry / memFileInfo implement the fs metadata interfaces minimally.
type memDirEntry struct {
	name string
	size int64
	dir  bool
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e memDirEntry) Info() (fs.FileInfo, error) {
	return memFileInfo{name: e.name, size: e.size, dir: e.dir}, nil
}

type memFileInfo struct {
	name string
	size int64
	dir  bool
}

func (i memFileInfo) Name() string { return i.name }
func (i memFileInfo) Size() int64  { return i.size }
func (i memFileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }

var _ FS = (*MemFS)(nil)
