package opt

// Refactor is a DAG-aware cut-based resynthesis pass: while rebuilding the
// AIG bottom-up, each node is constructed two ways — the structural default
// (AND of its mapped fanins) and, for each enumerated 4-input cut, a fresh
// two-level realization of the cut function (smaller of the ISOP of the
// onset and offset) — and the variant that adds the fewest NEW nodes to the
// output graph wins. Structural-hash hits cost nothing, so the pass is
// sharing-aware by construction; trial candidates are rolled back with the
// AIG's Mark/Truncate checkpointing.

import (
	"math/bits"

	"logicregression/internal/aig"
	"logicregression/internal/tt"
)

// Refactor returns a resynthesized equivalent of g with at most the same
// number of AND nodes per constructed function.
func Refactor(g *aig.AIG) *aig.AIG {
	cuts := enumerateCuts(g)
	out := aig.New(g.PINames())
	m := make([]aig.Lit, g.NumNodes())
	m[0] = aig.False
	for i := 0; i < g.NumPIs(); i++ {
		m[i+1] = out.PI(i)
	}
	resolve := func(l aig.Lit) aig.Lit {
		nl := m[l.Node()]
		if l.Compl() {
			nl = nl.Not()
		}
		return nl
	}

	for n := g.NumPIs() + 1; n < g.NumNodes(); n++ {
		f0, f1 := g.Fanins(n)
		// Candidate 0: structural default.
		mark := out.Mark()
		best := out.And(resolve(f0), resolve(f1))
		bestCost := out.Mark() - mark
		bestIsDefault := true

		for _, c := range cuts[n] {
			if len(c.leaves) < 2 || (len(c.leaves) == 1 && c.leaves[0] == n) {
				continue
			}
			// Skip cuts whose leaves are not strictly below n (the
			// trivial self-cut) — all enumerated non-trivial cuts
			// qualify by construction.
			leafLits := make([]aig.Lit, len(c.leaves))
			usable := true
			for i, leaf := range c.leaves {
				if leaf == n {
					usable = false
					break
				}
				leafLits[i] = m[leaf]
			}
			if !usable {
				continue
			}
			trialMark := out.Mark()
			cand := synthesizeTT(out, c.tt, leafLits)
			cost := out.Mark() - trialMark
			if cost < bestCost {
				// Keep: drop the previous best if it was freshly built
				// and sits above this trial... node indices interleave,
				// so simply adopt the new candidate; unused trial nodes
				// are cleaned by the final Rebuild.
				best = cand
				bestCost = cost
				bestIsDefault = false
			} else {
				out.Truncate(trialMark)
			}
			if bestCost == 0 {
				break // strash hit: cannot do better
			}
		}
		_ = bestIsDefault
		m[n] = best
	}
	for i := 0; i < g.NumPOs(); i++ {
		out.AddPO(g.PONames()[i], resolve(g.PO(i)))
	}
	// Drop any dangling trial logic.
	return out.Rebuild(nil)
}

// synthesizeTT builds the cut truth table over the given leaf edges as
// two-level logic, choosing the cheaper of the onset and offset covers
// (costed by literal count before anything is constructed).
func synthesizeTT(g *aig.AIG, table tt.Table, leaves []aig.Lit) aig.Lit {
	nVars := len(leaves)
	mask := tt.Mask(nVars)
	full := table & mask
	switch full {
	case 0:
		return aig.False
	case mask:
		return aig.True
	}
	onImps := mergeImplicants(full, nVars)
	offImps := mergeImplicants(^full&mask, nVars)
	if implicantCost(offImps) < implicantCost(onImps) {
		return buildCover(g, offImps, nVars, leaves).Not()
	}
	return buildCover(g, onImps, nVars, leaves)
}

// implicant is a cube over cut variables: value under the care mask.
type implicant struct {
	value, care int
}

func implicantCost(imps []implicant) int {
	n := len(imps)
	for _, imp := range imps {
		n += bits.OnesCount(uint(imp.care))
	}
	return n
}

// mergeImplicants lists the onset minterms of tt and greedily combines
// implicants differing in one cared bit (the Quine growth step; the space
// has at most 16 minterms, so the simple quadratic pass is fine).
func mergeImplicants(table tt.Table, nVars int) []implicant {
	size := 1 << uint(nVars)
	var work []implicant
	for mnt := 0; mnt < size; mnt++ {
		if table.Eval(mnt) {
			work = append(work, implicant{value: mnt, care: size - 1})
		}
	}
	// Iteratively merge implicants differing in exactly one cared bit.
	for {
		merged := false
		seen := make(map[[2]int]bool)
		var next []implicant
		used := make([]bool, len(work))
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				if work[i].care != work[j].care || used[i] || used[j] {
					continue
				}
				diff := (work[i].value ^ work[j].value) & work[i].care
				if diff != 0 && diff&(diff-1) == 0 {
					ni := implicant{value: work[i].value &^ diff, care: work[i].care &^ diff}
					if !seen[[2]int{ni.value, ni.care}] {
						seen[[2]int{ni.value, ni.care}] = true
						next = append(next, ni)
					}
					used[i], used[j] = true, true
					merged = true
				}
			}
		}
		for i, imp := range work {
			if !used[i] {
				if !seen[[2]int{imp.value, imp.care}] {
					seen[[2]int{imp.value, imp.care}] = true
					next = append(next, imp)
				}
			}
		}
		work = next
		if !merged {
			break
		}
	}

	return work
}

// buildCover constructs OR-of-AND-cubes over the leaf edges.
func buildCover(g *aig.AIG, imps []implicant, nVars int, leaves []aig.Lit) aig.Lit {
	acc := aig.False
	for _, imp := range imps {
		cube := aig.True
		for v := 0; v < nVars; v++ {
			if imp.care>>uint(v)&1 == 0 {
				continue
			}
			l := leaves[v]
			if imp.value>>uint(v)&1 == 0 {
				l = l.Not()
			}
			cube = g.And(cube, l)
		}
		acc = g.Or(acc, cube)
	}
	return acc
}
