package opt

// Balance implements the ABC-style `balance` pass: maximal AND-chains are
// flattened into multi-input conjunctions and rebuilt as delay-minimal trees
// by Huffman-combining the lowest-level operands first. Gate count never
// increases (flattening only follows single-fanout, uncomplemented edges, so
// no logic is duplicated) and depth typically drops from chain-length to
// log.

import (
	"sort"

	"logicregression/internal/aig"
)

// Balance returns a depth-balanced equivalent of g.
func Balance(g *aig.AIG) *aig.AIG {
	nFanout := fanoutCounts(g)
	out := aig.New(g.PINames())
	m := make([]aig.Lit, g.NumNodes())
	m[0] = aig.False
	for i := 0; i < g.NumPIs(); i++ {
		m[i+1] = out.PI(i)
	}
	resolve := func(l aig.Lit) aig.Lit {
		nl := m[l.Node()]
		if l.Compl() {
			nl = nl.Not()
		}
		return nl
	}

	// levels[n] is the AND-depth of node n in `out` (0 for PIs/constant).
	levels := make([]int, out.NumNodes(), g.NumNodes())
	levelOf := func(l aig.Lit) int { return levels[l.Node()] }
	mkAnd := func(a, b aig.Lit) aig.Lit {
		r := out.And(a, b)
		for len(levels) < out.NumNodes() {
			levels = append(levels, 0)
		}
		if out.IsAnd(r.Node()) && levels[r.Node()] == 0 {
			levels[r.Node()] = 1 + max(levelOf(a), levelOf(b))
		}
		return r
	}

	// collect gathers the leaves of the maximal AND-tree rooted at node n,
	// following uncomplemented fanin edges into single-fanout AND nodes.
	var collect func(l aig.Lit, root int, leaves *[]aig.Lit)
	collect = func(l aig.Lit, root int, leaves *[]aig.Lit) {
		n := l.Node()
		if !l.Compl() && g.IsAnd(n) && (n == root || nFanout[n] == 1) {
			f0, f1 := g.Fanins(n)
			collect(f0, root, leaves)
			collect(f1, root, leaves)
			return
		}
		*leaves = append(*leaves, resolve(l))
	}

	for n := g.NumPIs() + 1; n < g.NumNodes(); n++ {
		var leaves []aig.Lit
		collect(aig.MkLit(n, false), n, &leaves)
		// Huffman: repeatedly combine the two shallowest operands.
		sort.SliceStable(leaves, func(i, j int) bool {
			return levelOf(leaves[i]) < levelOf(leaves[j])
		})
		for len(leaves) > 1 {
			a, b := leaves[0], leaves[1]
			leaves = leaves[2:]
			r := mkAnd(a, b)
			// Insert keeping the level order.
			pos := sort.Search(len(leaves), func(i int) bool {
				return levelOf(leaves[i]) >= levelOf(r)
			})
			leaves = append(leaves, 0)
			copy(leaves[pos+1:], leaves[pos:])
			leaves[pos] = r
		}
		m[n] = leaves[0]
	}
	for i := 0; i < g.NumPOs(); i++ {
		out.AddPO(g.PONames()[i], resolve(g.PO(i)))
	}
	return out
}

// fanoutCounts returns per-node fanout counts over reachable logic.
func fanoutCounts(g *aig.AIG) []int {
	cnt := make([]int, g.NumNodes())
	for n := g.NumPIs() + 1; n < g.NumNodes(); n++ {
		f0, f1 := g.Fanins(n)
		cnt[f0.Node()]++
		cnt[f1.Node()]++
	}
	for i := 0; i < g.NumPOs(); i++ {
		cnt[g.PO(i).Node()]++
	}
	return cnt
}
