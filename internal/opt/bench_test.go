package opt

import (
	"math/rand"
	"testing"

	"logicregression/internal/aig"
)

func BenchmarkOptimizePipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	c := randomCircuit(rng, 12, 400, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimize(c, Config{Seed: 1})
	}
	b.ReportMetric(float64(c.Size()), "input-gates")
}

func BenchmarkFraig(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	c := randomCircuit(rng, 12, 600, 4)
	g := aig.FromCircuit(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fraig(g, Config{Seed: int64(i)})
	}
}

func BenchmarkRewrite(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	c := randomCircuit(rng, 16, 2000, 4)
	g := aig.FromCircuit(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rewrite(g)
	}
}
