package opt

import (
	"math/bits"
	"math/rand"
	"testing"

	"logicregression/internal/aig"
	"logicregression/internal/tt"
)

func TestCutEnumerationBasics(t *testing.T) {
	g := aig.New([]string{"a", "b", "c"})
	ab := g.And(g.PI(0), g.PI(1))
	abc := g.And(ab, g.PI(2))
	g.AddPO("z", abc)
	cuts := enumerateCuts(g)

	// The 3-leaf cut of abc must carry the AND3 truth table.
	found := false
	for _, c := range cuts[abc.Node()] {
		if len(c.leaves) == 3 {
			found = true
			// AND3 over (a,b,c): minterm 7 is 1, replicated over the
			// unused upper variables.
			want := tt.Replicate(1<<7, 3)
			if c.tt != want {
				t.Fatalf("AND3 tt = %v, want %v", c.tt, want)
			}
		}
	}
	if !found {
		t.Fatal("3-leaf cut not enumerated")
	}
}

func TestCutTruthTablesMatchSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(rng, 5, 25, 2)
		g := aig.FromCircuit(c)
		cuts := enumerateCuts(g)
		for n := g.NumPIs() + 1; n < g.NumNodes(); n++ {
			for _, cutc := range cuts[n] {
				if len(cutc.leaves) == 1 && cutc.leaves[0] == n {
					continue // trivial cut
				}
				// Check every minterm of the cut by simulation: force the
				// leaf values and compare node value against the table.
				for m := 0; m < 1<<uint(len(cutc.leaves)); m++ {
					want := cutc.tt>>uint(m)&1 == 1
					got, ok := nodeValueUnderLeaves(g, n, cutc.leaves, m)
					if !ok {
						continue // leaves do not determine the node here
					}
					if got != want {
						t.Fatalf("trial %d node %d cut %v: minterm %b: tt %v, sim %v",
							trial, n, cutc.leaves, m, want, got)
					}
				}
			}
		}
	}
}

// nodeValueUnderLeaves computes node n's value when the cut leaves take the
// given minterm, by trying all PI assignments consistent with the leaves and
// checking the node value is uniform (it must be, for a valid cut).
func nodeValueUnderLeaves(g *aig.AIG, n int, leaves []int, minterm int) (bool, bool) {
	nPI := g.NumPIs()
	first := true
	var val bool
	for m := 0; m < 1<<uint(nPI); m++ {
		in := make([]uint64, nPI)
		for i := 0; i < nPI; i++ {
			if m>>uint(i)&1 == 1 {
				in[i] = ^uint64(0)
			}
		}
		vals := g.SimWords(in)
		ok := true
		for li, leaf := range leaves {
			want := minterm>>uint(li)&1 == 1
			if (vals[leaf]&1 == 1) != want {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		v := aig.LitWord(vals, aig.MkLit(n, false))&1 == 1
		if first {
			val = v
			first = false
		} else if v != val {
			// Leaves do not dominate the node: cut invalid!
			return false, false
		}
	}
	return val, !first
}

func TestRefactorPreservesAndNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 15; trial++ {
		c := randomCircuit(rng, 6, 60, 3)
		g := aig.FromCircuit(c)
		r := Refactor(g)
		if r.NumAnds() > g.NumAnds() {
			t.Fatalf("trial %d: refactor grew %d -> %d", trial, g.NumAnds(), r.NumAnds())
		}
		rc := r.ToCircuit()
		simEqual(t, c, rc, rng, 80)
		if eq, done := ProveEquivalent(c, rc, 20000); done && !eq {
			t.Fatalf("trial %d: refactor changed function", trial)
		}
	}
}

func TestRefactorShrinksRedundantMux(t *testing.T) {
	// A clumsy 5-AND construction of XOR: refactor should find the 3-AND
	// form through the cut function.
	g := aig.New([]string{"a", "b"})
	a, b := g.PI(0), g.PI(1)
	// (a OR b) AND NOT(a AND b), with OR built wastefully.
	or1 := g.Or(g.And(a, a), g.And(b, b)) // strash folds the idempotent ANDs
	z := g.And(or1, g.And(a, b).Not())
	g.AddPO("z", z)
	r := Refactor(g)
	if r.NumAnds() > g.NumAnds() {
		t.Fatalf("refactor grew: %d -> %d", g.NumAnds(), r.NumAnds())
	}
	// Function intact.
	for p := 0; p < 4; p++ {
		in := []uint64{0, 0}
		if p&1 == 1 {
			in[0] = 1
		}
		if p>>1&1 == 1 {
			in[1] = 1
		}
		if g.EvalPOs(in)[0]&1 != r.EvalPOs(in)[0]&1 {
			t.Fatalf("function changed at %d", p)
		}
	}
}

func TestMergeImplicantsQuineStep(t *testing.T) {
	// Full onset over 2 vars collapses to the single don't-care implicant.
	imps := mergeImplicants(tt.Table(0xF), 2)
	if len(imps) != 1 || imps[0].care != 0 {
		t.Fatalf("imps = %+v", imps)
	}
	// XOR over 2 vars cannot merge: two minterms stay.
	imps = mergeImplicants(tt.Table(0b0110), 2)
	if len(imps) != 2 {
		t.Fatalf("xor imps = %+v", imps)
	}
	for _, imp := range imps {
		if bits.OnesCount(uint(imp.care)) != 2 {
			t.Fatalf("xor implicant lost literals: %+v", imp)
		}
	}
}

func TestAIGMarkTruncate(t *testing.T) {
	g := aig.New([]string{"a", "b", "c"})
	ab := g.And(g.PI(0), g.PI(1))
	mark := g.Mark()
	g.And(ab, g.PI(2))
	g.And(ab.Not(), g.PI(2))
	if g.NumNodes() != mark+2 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	g.Truncate(mark)
	if g.NumNodes() != mark {
		t.Fatalf("truncate left %d nodes, want %d", g.NumNodes(), mark)
	}
	// The strash entries of the removed nodes must be gone: re-creating
	// the gate allocates a fresh node rather than referencing a ghost.
	again := g.And(ab, g.PI(2))
	if again.Node() != mark {
		t.Fatalf("recreated node id = %d, want %d", again.Node(), mark)
	}
	// And the surviving entry still hits.
	if g.And(g.PI(0), g.PI(1)) != ab {
		t.Fatal("pre-mark strash entry lost")
	}
}
