package opt

// Script runner: optimization pipelines expressed as ABC-style semicolon
// separated pass names, e.g. "strash; rewrite; refactor; fraig; collapse;
// balance". Each pass maps to one of this package's stages; unknown names
// are errors so typos don't silently skip work. Optimize remains the
// one-call default; RunScript is the power-user path (exposed by
// `cmd/optimize -script`).

import (
	"fmt"
	"strings"
	"time"

	"logicregression/internal/aig"
	"logicregression/internal/check"
	"logicregression/internal/circuit"
)

// DefaultScript is the pipeline Optimize runs.
const DefaultScript = "strash; rewrite; refactor; fraig; rewrite; collapse"

// RunScript executes the pass sequence on c and returns the smallest
// functionally equivalent circuit seen after any pass. Pass names:
//
//	strash    structural hashing
//	rewrite   local two-level AND rules
//	refactor  6-input-cut DAG-aware resynthesis
//	fraig     SAT-backed functional reduction
//	collapse  per-output BDD + ISOP resynthesis
//	balance   depth balancing (never grows size)
func RunScript(c *circuit.Circuit, script string, cfg Config) (*circuit.Circuit, error) {
	cfg = cfg.withDefaults()
	deadline := time.Time{}
	if cfg.TimeLimit > 0 {
		deadline = time.Now().Add(cfg.TimeLimit)
	}
	best := c
	g := aig.FromCircuit(c)
	consider := func() {
		if s := g.ToCircuit(); s.Size() < best.Size() {
			best = s
		}
	}
	for _, raw := range strings.Split(script, ";") {
		pass := strings.TrimSpace(raw)
		if pass == "" {
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		switch pass {
		case "strash":
			g = g.Rebuild(nil)
		case "rewrite":
			g = Rewrite(g)
		case "refactor":
			if g.NumAnds() <= cfg.RefactorBudget {
				g = Refactor(g)
			}
		case "fraig":
			if g.NumAnds() <= cfg.MaxFraigNodes {
				g = Fraig(g, cfg)
			}
		case "balance":
			g = Balance(g)
		case "collapse":
			if s, ok := Collapse(g, cfg); ok {
				check.Assert("opt/script:collapse", c, s)
				if s.Size() < best.Size() {
					best = s
				}
			}
			continue // collapse yields a circuit, not a new working AIG
		default:
			return nil, fmt.Errorf("opt: unknown pass %q (know strash, rewrite, refactor, fraig, collapse, balance)", pass)
		}
		check.AssertAIG("opt/script:"+pass, c, g)
		consider()
	}
	return best, nil
}
