// Package opt implements the circuit-optimization step of the paper
// (Sec. IV-E). The paper delegates this step to Berkeley ABC (strash,
// rewrite, dc2/resyn scripts, fraig, collapse); this package provides the
// same pipeline stages on our own AIG:
//
//   - Strash: structural hashing (AIG round trip)
//   - Rewrite: local two-level AND rewriting rules
//   - Fraig: simulation-guided equivalence classes proven by SAT and merged
//   - Collapse: per-output BDD collapse with ISOP resynthesis, accepted
//     only when it shrinks the circuit
//
// Optimize chains the stages under a time limit and returns the smallest
// functionally equivalent circuit found.
package opt

import (
	"math/rand"
	"sort"
	"time"

	"logicregression/internal/aig"
	"logicregression/internal/bdd"
	"logicregression/internal/check"
	"logicregression/internal/circuit"
	"logicregression/internal/sat"
	"logicregression/internal/sop"
)

// Config controls the pipeline.
type Config struct {
	// Seed drives the FRAIG simulation patterns.
	Seed int64
	// SimWords is the number of 64-pattern words used to form candidate
	// equivalence classes (default 8).
	SimWords int
	// MaxConflicts bounds each SAT equivalence proof (default 1000).
	MaxConflicts int64
	// BDDBudget bounds per-output BDD node allocation for Collapse
	// (default 100000); over-budget outputs keep their original logic.
	BDDBudget int
	// TimeLimit bounds the whole pipeline; zero means none. The paper
	// imposes 60 seconds.
	TimeLimit time.Duration
	// DisableCollapse turns the collapse stage off.
	DisableCollapse bool
	// MaxFraigNodes skips the FRAIG stage on AIGs with more AND nodes
	// than this (SAT-proving every candidate pair on huge learned SOPs is
	// not worth the time). Default 20000.
	MaxFraigNodes int
	// BalanceDepth additionally runs the Balance pass on the final
	// circuit. The contest metric is gate count, so depth balancing is
	// off by default; it never increases the gate count.
	BalanceDepth bool
	// RefactorBudget skips cut-based refactoring above this AND count
	// (cut enumeration is the costly part). Default 50000.
	RefactorBudget int
}

func (c Config) withDefaults() Config {
	if c.SimWords <= 0 {
		c.SimWords = 8
	}
	if c.MaxConflicts <= 0 {
		c.MaxConflicts = 1000
	}
	if c.BDDBudget <= 0 {
		c.BDDBudget = 100000
	}
	if c.MaxFraigNodes <= 0 {
		c.MaxFraigNodes = 20000
	}
	if c.RefactorBudget <= 0 {
		c.RefactorBudget = 50000
	}
	return c
}

// Strash returns the structurally hashed form of c (constant folding,
// duplicate-gate merging) as a circuit of ANDs and inverters.
func Strash(c *circuit.Circuit) *circuit.Circuit {
	return aig.FromCircuit(c).ToCircuit()
}

// Optimize runs the full pipeline and returns the smallest equivalent
// circuit found (possibly c itself).
func Optimize(c *circuit.Circuit, cfg Config) *circuit.Circuit {
	cfg = cfg.withDefaults()
	deadline := time.Time{}
	if cfg.TimeLimit > 0 {
		deadline = time.Now().Add(cfg.TimeLimit)
	}
	expired := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	// Every pass is followed by a debug-gated IR + equivalence assertion
	// against the input circuit (no-op unless LOGICREG_CHECK is set; see
	// internal/check).
	best := c
	g := aig.FromCircuit(c)
	check.AssertAIG("opt/strash", c, g)
	if s := g.ToCircuit(); s.Size() < best.Size() {
		best = s
	}
	if !expired() {
		g = Rewrite(g)
		check.AssertAIG("opt/rewrite", c, g)
		if s := g.ToCircuit(); s.Size() < best.Size() {
			best = s
		}
	}
	if !expired() && g.NumAnds() <= cfg.RefactorBudget {
		g = Refactor(g)
		check.AssertAIG("opt/refactor", c, g)
		if s := g.ToCircuit(); s.Size() < best.Size() {
			best = s
		}
	}
	if !expired() && g.NumAnds() <= cfg.MaxFraigNodes {
		g = Fraig(g, cfg)
		check.AssertAIG("opt/fraig", c, g)
		g = Rewrite(g)
		check.AssertAIG("opt/fraig+rewrite", c, g)
		if s := g.ToCircuit(); s.Size() < best.Size() {
			best = s
		}
	}
	if !cfg.DisableCollapse && !expired() {
		if s, ok := Collapse(g, cfg); ok {
			check.Assert("opt/collapse", c, s)
			if s.Size() < best.Size() {
				best = s
			}
		}
	}
	if cfg.BalanceDepth && !expired() {
		if s := Balance(aig.FromCircuit(best)).ToCircuit(); s.Size() <= best.Size() {
			check.Assert("opt/balance", c, s)
			best = s
		}
	}
	return best
}

// Rewrite rebuilds the AIG while applying local two-level simplification
// rules on every AND construction (the lightweight analogue of ABC's
// rewrite).
func Rewrite(g *aig.AIG) *aig.AIG {
	out := aig.New(g.PINames())
	m := make([]aig.Lit, g.NumNodes())
	m[0] = aig.False
	for i := 0; i < g.NumPIs(); i++ {
		m[i+1] = out.PI(i)
	}
	resolve := func(l aig.Lit) aig.Lit {
		nl := m[l.Node()]
		if l.Compl() {
			nl = nl.Not()
		}
		return nl
	}
	for n := g.NumPIs() + 1; n < g.NumNodes(); n++ {
		f0, f1 := g.Fanins(n)
		m[n] = andRewrite(out, resolve(f0), resolve(f1), 0)
	}
	for i := 0; i < g.NumPOs(); i++ {
		out.AddPO(g.PONames()[i], resolve(g.PO(i)))
	}
	return out
}

// andRewrite builds a AND b with two-level redundancy rules:
//
//	(xy)·x      = xy          (absorption)
//	~(xy)·x     = x·~y        (substitution)
//	(xy)·(x~y)  = 0           (contradiction)
//	~(xy)·~(x~y) = ~x         (resolution)
//	(xy)·(xz)   left intact (sharing handled by strash)
func andRewrite(g *aig.AIG, a, b aig.Lit, depth int) aig.Lit {
	if depth > 4 { // the rules below recurse at most shallowly; be safe
		return g.And(a, b)
	}
	// Normalize: examine decompositions of both operands.
	af := fanins(g, a)
	bf := fanins(g, b)

	// Absorption / substitution against b.
	if af != nil {
		x, y := af[0], af[1]
		if !a.Compl() {
			if b == x || b == y {
				return a // (xy)·x = xy
			}
			if b == x.Not() || b == y.Not() {
				return aig.False // (xy)·~x = 0
			}
		} else {
			if b == x {
				return andRewrite(g, x, y.Not(), depth+1) // ~(xy)·x = x~y
			}
			if b == y {
				return andRewrite(g, y, x.Not(), depth+1)
			}
		}
	}
	if bf != nil {
		x, y := bf[0], bf[1]
		if !b.Compl() {
			if a == x || a == y {
				return b
			}
			if a == x.Not() || a == y.Not() {
				return aig.False
			}
		} else {
			if a == x {
				return andRewrite(g, x, y.Not(), depth+1)
			}
			if a == y {
				return andRewrite(g, y, x.Not(), depth+1)
			}
		}
	}
	if af != nil && bf != nil {
		ax, ay := af[0], af[1]
		bx, by := bf[0], bf[1]
		if !a.Compl() && !b.Compl() {
			// (xy)(x~y) = 0 for any shared variable with opposite pair.
			if (ax == bx && ay == by.Not()) || (ax == by && ay == bx.Not()) ||
				(ay == bx && ax == by.Not()) || (ay == by && ax == bx.Not()) {
				return aig.False
			}
		}
		if a.Compl() && b.Compl() {
			// ~(xy)·~(x~y) = ~x
			if ax == bx && ay == by.Not() {
				return ax.Not()
			}
			if ay == by && ax == bx.Not() {
				return ay.Not()
			}
			if ax == by && ay == bx.Not() {
				return ax.Not()
			}
			if ay == bx && ax == by.Not() {
				return ay.Not()
			}
		}
	}
	return g.And(a, b)
}

// fanins returns the fanin pair of l's node when it is an AND, else nil.
func fanins(g *aig.AIG, l aig.Lit) *[2]aig.Lit {
	n := l.Node()
	if !g.IsAnd(n) {
		return nil
	}
	f0, f1 := g.Fanins(n)
	return &[2]aig.Lit{f0, f1}
}

// Fraig merges functionally equivalent nodes: random simulation partitions
// nodes into candidate classes; SAT proves (or refutes, yielding a fresh
// distinguishing pattern) each candidate merge.
func Fraig(g *aig.AIG, cfg Config) *aig.AIG {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nPI := g.NumPIs()

	patterns := make([][]uint64, 0, cfg.SimWords+8)
	for w := 0; w < cfg.SimWords; w++ {
		word := make([]uint64, nPI)
		for i := range word {
			word[i] = rng.Uint64()
		}
		patterns = append(patterns, word)
	}

	solver := sat.New()
	cnf := aig.ToCNF(solver, g)
	subst := g.NewSubstMap()
	refuted := make(map[[2]int]bool)

	for iter := 0; iter < 24; iter++ {
		// Signatures over all patterns, canonicalized by first bit.
		sigs := make([][]uint64, g.NumNodes())
		phase := make([]bool, g.NumNodes()) // true: signature stored complemented
		for w, word := range patterns {
			vals := g.SimWords(word)
			for n := range vals {
				if w == 0 {
					sigs[n] = make([]uint64, len(patterns))
					phase[n] = vals[n]&1 == 1
				}
				v := vals[n]
				if phase[n] {
					v = ^v
				}
				sigs[n][w] = v
			}
		}
		classes := make(map[string][]int)
		for n := 0; n < g.NumNodes(); n++ {
			if n > 0 && !g.IsAnd(n) {
				continue // PIs cannot be merged away
			}
			classes[sigKey(sigs[n])] = append(classes[sigKey(sigs[n])], n)
		}

		var cex []uint64
		// The first Sat pair supplies the counterexample pattern for the
		// next round, so the class visit order shapes every later
		// signature; walk the classes in sorted key order to keep the
		// optimized circuit identical run to run.
		classKeys := make([]string, 0, len(classes))
		for k := range classes {
			classKeys = append(classKeys, k)
		}
		sort.Strings(classKeys)
		for _, k := range classKeys {
			class := classes[k]
			if len(class) < 2 {
				continue
			}
			rep := class[0]
			for _, n := range class[1:] {
				if subst[n] != aig.NoSubst || refuted[[2]int{rep, n}] {
					continue
				}
				// Candidate polarity: equal canonical signatures mean
				// n == rep XOR (phase difference).
				compl := phase[rep] != phase[n]
				a := aig.MkLit(rep, false)
				b := aig.MkLit(n, compl)
				switch cnf.ProveEqual(a, b, cfg.MaxConflicts) {
				case sat.Unsat:
					subst[n] = aig.MkLit(rep, compl)
				case sat.Sat:
					refuted[[2]int{rep, n}] = true
					if cex == nil {
						// Pattern 0 is the counterexample; the other 63
						// bits are random neighbors to split more classes.
						cex = make([]uint64, nPI)
						for i := 0; i < nPI; i++ {
							cex[i] = rng.Uint64() &^ 1
							if cnf.Model(g.PI(i)) {
								cex[i] |= 1
							}
						}
					}
				default:
					refuted[[2]int{rep, n}] = true // budget: give up on pair
				}
			}
		}
		if cex == nil {
			break
		}
		patterns = append(patterns, cex)
	}
	return g.Rebuild(subst)
}

func sigKey(sig []uint64) string {
	buf := make([]byte, 0, len(sig)*8)
	for _, w := range sig {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	return string(buf)
}

// Collapse rebuilds every output from its BDD's irredundant SOP (choosing
// the smaller of the onset and offset covers). ok is false when no output
// could be collapsed within the budget.
func Collapse(g *aig.AIG, cfg Config) (*circuit.Circuit, bool) {
	cfg = cfg.withDefaults()
	c := circuit.New()
	piSigs := make([]circuit.Signal, g.NumPIs())
	for i, name := range g.PINames() {
		piSigs[i] = c.AddPI(name)
	}
	any := false
	orig := g.ToCircuit()
	for po := 0; po < g.NumPOs(); po++ {
		m, root, err := bdd.FromAIGOutput(g, po, cfg.BDDBudget)
		if err != nil {
			// Keep the original cone: re-synthesize just this output from
			// the original circuit through a fresh sub-AIG.
			copyCone(c, orig, po, piSigs)
			continue
		}
		// Some functions (parities) have small BDDs but exponential
		// covers: bound the cover size by the existing cone — a bigger
		// cover cannot win anyway.
		maxCubes := 4*g.NumAnds() + 1000
		onset, errOn := m.ISOPBounded(root, maxCubes)
		var negRoot bdd.Ref
		if gerr := m.Guard(func() { negRoot = m.Not(root) }); gerr != nil {
			copyCone(c, orig, po, piSigs)
			continue
		}
		offset, errOff := m.ISOPBounded(negRoot, maxCubes)
		if errOn != nil && errOff != nil {
			copyCone(c, orig, po, piSigs)
			continue
		}
		if errOn != nil {
			onset = nil
		}
		if errOff != nil {
			offset = nil
		}
		cover, negate := onset, false
		if errOn != nil || (errOff == nil && len(offset) < len(onset)) {
			cover, negate = offset, true
		}
		c.AddPO(g.PONames()[po], sop.SynthesizeFactored(c, cover, piSigs, negate))
		any = true
	}
	return c, any
}

// copyCone copies the logic cone of output po from src into dst, reusing
// dst's PI signals.
func copyCone(dst, src *circuit.Circuit, po int, piSigs []circuit.Signal) {
	dst.AddPO(src.PONames()[po], circuit.CopyCone(dst, piSigs, src, po))
}

// ProveEquivalent checks functional equivalence of two circuits with the
// same PI/PO arity via a SAT miter over a combined AIG. It returns
// (equivalent, completed): completed is false when a proof exceeded
// maxConflicts.
func ProveEquivalent(c1, c2 *circuit.Circuit, maxConflicts int64) (eq, completed bool) {
	verdict, _, _ := Diagnose(c1, c2, maxConflicts)
	switch verdict {
	case sat.Unsat:
		return true, true
	case sat.Sat:
		return false, true
	default:
		return false, false
	}
}

// Diagnose performs non-equivalence diagnosis — the paper's first motivating
// application. It compares the circuits output by output and, when they
// differ, returns a distinguishing input assignment and the index of the
// first differing output. The verdict is sat.Unsat for equivalent circuits,
// sat.Sat with a counterexample for non-equivalent ones, and sat.Unknown
// when a proof exceeded maxConflicts (0 = unlimited).
func Diagnose(c1, c2 *circuit.Circuit, maxConflicts int64) (verdict sat.Status, cex []bool, badOutput int) {
	if c1.NumPI() != c2.NumPI() || c1.NumPO() != c2.NumPO() {
		return sat.Sat, nil, -1
	}
	// Build both into one AIG sharing PIs.
	g := aig.New(c1.PINames())
	lit1 := buildInto(g, c1)
	lit2 := buildInto(g, c2)
	solver := sat.New()
	cnf := aig.ToCNF(solver, g)
	for i := range lit1 {
		switch cnf.ProveEqual(lit1[i], lit2[i], maxConflicts) {
		case sat.Unsat:
		case sat.Sat:
			assignment := make([]bool, c1.NumPI())
			for pi := 0; pi < c1.NumPI(); pi++ {
				assignment[pi] = cnf.Model(g.PI(pi))
			}
			return sat.Sat, assignment, i
		default:
			return sat.Unknown, nil, -1
		}
	}
	return sat.Unsat, nil, -1
}

// buildInto replays circuit c into AIG g (whose PIs must match) and returns
// the output edges.
func buildInto(g *aig.AIG, c *circuit.Circuit) []aig.Lit {
	lits := make([]aig.Lit, c.NumNodes())
	pi := 0
	for id := 0; id < c.NumNodes(); id++ {
		n := c.Node(id)
		switch n.Type {
		case circuit.PI:
			lits[id] = g.PI(pi)
			pi++
		case circuit.Const0:
			lits[id] = aig.False
		case circuit.Const1:
			lits[id] = aig.True
		case circuit.Not:
			lits[id] = lits[n.In0].Not()
		case circuit.Buf:
			lits[id] = lits[n.In0]
		case circuit.And:
			lits[id] = g.And(lits[n.In0], lits[n.In1])
		case circuit.Or:
			lits[id] = g.Or(lits[n.In0], lits[n.In1])
		case circuit.Xor:
			lits[id] = g.Xor(lits[n.In0], lits[n.In1])
		case circuit.Nand:
			lits[id] = g.And(lits[n.In0], lits[n.In1]).Not()
		case circuit.Nor:
			lits[id] = g.Or(lits[n.In0], lits[n.In1]).Not()
		case circuit.Xnor:
			lits[id] = g.Xor(lits[n.In0], lits[n.In1]).Not()
		}
	}
	out := make([]aig.Lit, c.NumPO())
	for i := range out {
		out[i] = lits[c.POSignal(i)]
	}
	return out
}
