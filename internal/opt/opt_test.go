package opt

import (
	"math/rand"
	"testing"

	"logicregression/internal/aig"
	"logicregression/internal/circuit"
	"logicregression/internal/sat"
)

func randomCircuit(rng *rand.Rand, nPI, nGates, nPO int) *circuit.Circuit {
	c := circuit.New()
	var sigs []circuit.Signal
	for i := 0; i < nPI; i++ {
		sigs = append(sigs, c.AddPI("x"+string(rune('a'+i))))
	}
	for g := 0; g < nGates; g++ {
		a := sigs[rng.Intn(len(sigs))]
		b := sigs[rng.Intn(len(sigs))]
		switch rng.Intn(7) {
		case 0:
			sigs = append(sigs, c.And(a, b))
		case 1:
			sigs = append(sigs, c.Or(a, b))
		case 2:
			sigs = append(sigs, c.Xor(a, b))
		case 3:
			sigs = append(sigs, c.Nand(a, b))
		case 4:
			sigs = append(sigs, c.Nor(a, b))
		case 5:
			sigs = append(sigs, c.Xnor(a, b))
		default:
			sigs = append(sigs, c.NotGate(a))
		}
	}
	for o := 0; o < nPO; o++ {
		c.AddPO("y"+string(rune('0'+o)), sigs[len(sigs)-1-o])
	}
	return c
}

func simEqual(t *testing.T, c1, c2 *circuit.Circuit, rng *rand.Rand, trials int) {
	t.Helper()
	for k := 0; k < trials; k++ {
		a := make([]bool, c1.NumPI())
		for i := range a {
			a[i] = rng.Intn(2) == 1
		}
		w1 := c1.Eval(a)
		w2 := c2.Eval(a)
		for j := range w1 {
			if w1[j] != w2[j] {
				t.Fatalf("circuits differ at output %d", j)
			}
		}
	}
}

func TestProveEquivalentPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCircuit(rng, 5, 30, 2)
	s := Strash(c)
	eq, done := ProveEquivalent(c, s, 0)
	if !done || !eq {
		t.Fatalf("strash broke equivalence: eq=%v done=%v", eq, done)
	}
}

func TestProveEquivalentNegative(t *testing.T) {
	c1 := circuit.New()
	a := c1.AddPI("a")
	b := c1.AddPI("b")
	c1.AddPO("z", c1.And(a, b))
	c2 := circuit.New()
	a2 := c2.AddPI("a")
	b2 := c2.AddPI("b")
	c2.AddPO("z", c2.Or(a2, b2))
	eq, done := ProveEquivalent(c1, c2, 0)
	if !done || eq {
		t.Fatalf("AND proved equal to OR: eq=%v done=%v", eq, done)
	}
}

func TestProveEquivalentArityMismatch(t *testing.T) {
	c1 := circuit.New()
	c1.AddPO("z", c1.AddPI("a"))
	c2 := circuit.New()
	x := c2.AddPI("a")
	c2.AddPI("b")
	c2.AddPO("z", x)
	if eq, _ := ProveEquivalent(c1, c2, 0); eq {
		t.Fatal("arity mismatch reported equivalent")
	}
}

func TestStrashMergesDuplicates(t *testing.T) {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	g1 := c.And(a, b)
	g2 := c.And(a, b) // duplicate
	c.AddPO("z", c.Or(g1, g2))
	s := Strash(c)
	// or(x,x) = x, so the whole thing should reduce to a single AND.
	if s.Size() != 1 {
		t.Fatalf("strash size = %d, want 1", s.Size())
	}
	simEqual(t, c, s, rand.New(rand.NewSource(2)), 20)
}

func TestRewriteRules(t *testing.T) {
	// Build (a AND b) AND a: absorption should leave one AND.
	g := aig.New([]string{"a", "b"})
	a, b := g.PI(0), g.PI(1)
	ab := g.And(a, b)
	g.AddPO("z", g.And(ab, a))
	r := Rewrite(g)
	if r.NumAnds() != 1 {
		t.Fatalf("absorption: NumAnds = %d, want 1", r.NumAnds())
	}

	// ~(ab)·a must become a·~b.
	g2 := aig.New([]string{"a", "b"})
	a2, b2 := g2.PI(0), g2.PI(1)
	g2.AddPO("z", g2.And(g2.And(a2, b2).Not(), a2))
	r2 := Rewrite(g2)
	c2 := r2.ToCircuit()
	want := func(av, bv bool) bool { return av && !bv }
	for p := 0; p < 4; p++ {
		av, bv := p&1 == 1, p>>1&1 == 1
		if c2.Eval([]bool{av, bv})[0] != want(av, bv) {
			t.Fatalf("substitution rule broke function at (%v,%v)", av, bv)
		}
	}

	// (ab)·(a~b) = 0.
	g3 := aig.New([]string{"a", "b"})
	a3, b3 := g3.PI(0), g3.PI(1)
	g3.AddPO("z", g3.And(g3.And(a3, b3), g3.And(a3, b3.Not())))
	r3 := Rewrite(g3)
	if r3.NumAnds() != 0 {
		t.Fatalf("contradiction: NumAnds = %d, want 0", r3.NumAnds())
	}

	// ~(ab)·~(a~b) = ~a.
	g4 := aig.New([]string{"a", "b"})
	a4, b4 := g4.PI(0), g4.PI(1)
	g4.AddPO("z", g4.And(g4.And(a4, b4).Not(), g4.And(a4, b4.Not()).Not()))
	r4 := Rewrite(g4)
	if r4.NumAnds() != 0 {
		t.Fatalf("resolution: NumAnds = %d, want 0", r4.NumAnds())
	}
	c4 := r4.ToCircuit()
	for p := 0; p < 4; p++ {
		av, bv := p&1 == 1, p>>1&1 == 1
		if c4.Eval([]bool{av, bv})[0] != !av {
			t.Fatalf("resolution rule broke function at (%v,%v)", av, bv)
		}
	}
}

func TestRewritePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		c := randomCircuit(rng, 6, 50, 3)
		g := aig.FromCircuit(c)
		r := Rewrite(g)
		rc := r.ToCircuit()
		simEqual(t, c, rc, rng, 50)
		if eq, done := ProveEquivalent(c, rc, 5000); done && !eq {
			t.Fatalf("trial %d: rewrite changed function", trial)
		}
	}
}

func TestFraigMergesEquivalentNodes(t *testing.T) {
	// Two structurally different XOR constructions share no AIG nodes but
	// are functionally identical: FRAIG must merge them.
	g := aig.New([]string{"a", "b"})
	a, b := g.PI(0), g.PI(1)
	x1 := g.Xor(a, b) // ~(~(a~b) ~(~ab))
	// (a OR b) AND ~(a AND b): different structure, same function.
	x2 := g.And(g.Or(a, b), g.And(a, b).Not())
	g.AddPO("z1", x1)
	g.AddPO("z2", x2)
	before := g.NumAnds()
	f := Fraig(g, Config{Seed: 1})
	after := f.NumAnds()
	if after >= before {
		t.Fatalf("fraig did not shrink: %d -> %d", before, after)
	}
	// Outputs must remain individually equal.
	cf := f.ToCircuit()
	cg := g.ToCircuit()
	simEqual(t, cg, cf, rand.New(rand.NewSource(4)), 50)
	if cf.Eval([]bool{true, false})[0] != cf.Eval([]bool{true, false})[1] {
		t.Fatal("merged outputs disagree")
	}
}

func TestFraigDetectsConstantNodes(t *testing.T) {
	// z = (a AND b) AND (a AND ~b) is constant 0 but built through
	// different nodes... strash already folds that; use a subtler one:
	// z = (a OR b) AND (~a) AND (~b) == 0.
	g := aig.New([]string{"a", "b"})
	a, b := g.PI(0), g.PI(1)
	z := g.And(g.Or(a, b), g.And(a.Not(), b.Not()))
	g.AddPO("z", z)
	f := Fraig(g, Config{Seed: 2})
	if f.NumAnds() != 0 {
		t.Fatalf("constant-0 cone not collapsed: %d ANDs", f.NumAnds())
	}
	out := f.EvalPOs([]uint64{^uint64(0), 0})
	if out[0] != 0 {
		t.Fatal("fraig changed the constant value")
	}
}

func TestFraigPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		c := randomCircuit(rng, 6, 60, 3)
		g := aig.FromCircuit(c)
		f := Fraig(g, Config{Seed: int64(trial)})
		fc := f.ToCircuit()
		simEqual(t, c, fc, rng, 50)
		if eq, done := ProveEquivalent(c, fc, 20000); done && !eq {
			t.Fatalf("trial %d: fraig changed function", trial)
		}
		if f.NumAnds() > g.NumAnds() {
			t.Fatalf("trial %d: fraig grew %d -> %d", trial, g.NumAnds(), f.NumAnds())
		}
	}
}

func TestCollapseShrinksRedundantSOP(t *testing.T) {
	// A deliberately redundant construction of f = a: (a AND b) OR (a AND ~b),
	// duplicated a few times.
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	f := c.Or(c.And(a, b), c.And(a, c.NotGate(b)))
	f = c.Or(c.And(f, b), c.And(f, c.NotGate(b)))
	c.AddPO("z", f)
	g := aig.FromCircuit(c)
	col, ok := Collapse(g, Config{})
	if !ok {
		t.Fatal("collapse failed")
	}
	if col.Size() != 0 {
		// f == a: no gates at all.
		t.Fatalf("collapse size = %d, want 0", col.Size())
	}
	simEqual(t, c, col, rand.New(rand.NewSource(6)), 20)
}

func TestCollapseBudgetKeepsOriginalCone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCircuit(rng, 8, 80, 2)
	g := aig.FromCircuit(c)
	col, _ := Collapse(g, Config{BDDBudget: 3}) // everything over budget
	simEqual(t, c, col, rng, 50)
}

func TestOptimizeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(rng, 6, 60, 2)
		o := Optimize(c, Config{Seed: int64(trial)})
		if o.Size() > c.Size() {
			t.Fatalf("trial %d: Optimize grew %d -> %d", trial, c.Size(), o.Size())
		}
		simEqual(t, c, o, rng, 100)
		if eq, done := ProveEquivalent(c, o, 50000); done && !eq {
			t.Fatalf("trial %d: Optimize changed function", trial)
		}
	}
}

func TestOptimizeOnConstantCircuit(t *testing.T) {
	c := circuit.New()
	a := c.AddPI("a")
	c.AddPO("z", c.And(a, c.NotGate(a)))
	o := Optimize(c, Config{Seed: 1})
	if o.Size() != 0 {
		t.Fatalf("constant circuit size = %d", o.Size())
	}
	if o.Eval([]bool{true})[0] || o.Eval([]bool{false})[0] {
		t.Fatal("constant value wrong")
	}
}

func TestDiagnoseProducesValidCounterexample(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		c1 := randomCircuit(rng, 6, 40, 3)
		// Mutate one gate to get a (usually) different circuit.
		c2 := randomCircuit(rng, 6, 40, 3)
		verdict, cex, bad := Diagnose(c1, c2, 0)
		switch verdict {
		case sat.Sat:
			if bad < 0 || bad >= c1.NumPO() {
				t.Fatalf("bad output index %d", bad)
			}
			if len(cex) != c1.NumPI() {
				t.Fatalf("cex width %d", len(cex))
			}
			if c1.Eval(cex)[bad] == c2.Eval(cex)[bad] {
				t.Fatalf("trial %d: counterexample does not distinguish", trial)
			}
		case sat.Unsat:
			// Equivalent by luck: verify by simulation.
			simEqual(t, c1, c2, rng, 100)
		default:
			t.Fatalf("unexpected verdict %v with unlimited budget", verdict)
		}
	}
}

func TestDiagnoseEquivalentAfterOptimize(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := randomCircuit(rng, 6, 50, 2)
	o := Optimize(c, Config{Seed: 3})
	verdict, _, _ := Diagnose(c, o, 0)
	if verdict != sat.Unsat {
		t.Fatalf("verdict = %v, want Unsat", verdict)
	}
}

func TestRunScriptDefaultMatchesOptimizeQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := randomCircuit(rng, 6, 60, 2)
	viaScript, err := RunScript(c, DefaultScript, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	viaOptimize := Optimize(c, Config{Seed: 1})
	simEqual(t, c, viaScript, rng, 60)
	// Same passes, same seed: identical outcomes.
	if viaScript.Size() != viaOptimize.Size() {
		t.Fatalf("script %d gates vs optimize %d", viaScript.Size(), viaOptimize.Size())
	}
}

func TestRunScriptRejectsUnknownPass(t *testing.T) {
	c := circuit.New()
	c.AddPO("z", c.AddPI("a"))
	if _, err := RunScript(c, "strash; espresso", Config{}); err == nil {
		t.Fatal("unknown pass accepted")
	}
}

func TestRunScriptSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := randomCircuit(rng, 5, 40, 2)
	out, err := RunScript(c, "balance", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	simEqual(t, c, out, rng, 50)
	if out.Stats().Depth > c.Stats().Depth {
		t.Fatal("balance-only script increased depth")
	}
}

func TestRunScriptEmptyAndWhitespace(t *testing.T) {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.AddPO("z", c.And(a, b))
	out, err := RunScript(c, " ; ;; ", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != c.Size() {
		t.Fatal("empty script changed the circuit")
	}
}
