package opt

import (
	"math/rand"
	"testing"

	"logicregression/internal/circuit"
)

func TestOptimizeWithBalanceDepth(t *testing.T) {
	// A long AND chain: size-optimal already, but deep. With BalanceDepth
	// the result keeps its size and flattens.
	c := circuit.New()
	var acc circuit.Signal
	for i := 0; i < 32; i++ {
		pi := c.AddPI("x" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		if i == 0 {
			acc = pi
		} else {
			acc = c.And(acc, pi)
		}
	}
	c.AddPO("z", acc)

	plain := Optimize(c, Config{Seed: 1})
	balanced := Optimize(c, Config{Seed: 1, BalanceDepth: true})
	if balanced.Size() > plain.Size() {
		t.Fatalf("balance grew size: %d vs %d", balanced.Size(), plain.Size())
	}
	if bd, pd := balanced.Stats().Depth, plain.Stats().Depth; bd > pd {
		t.Fatalf("balance increased depth: %d vs %d", bd, pd)
	}
	if balanced.Stats().Depth > 6 {
		t.Fatalf("balanced depth = %d, want ~log2(32)", balanced.Stats().Depth)
	}
	simEqual(t, c, balanced, rand.New(rand.NewSource(5)), 60)
}
