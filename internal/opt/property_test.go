package opt

import (
	"testing"

	"logicregression/internal/cases"
	"logicregression/internal/check"
)

// TestPassesPreserveInvariants is the property test backing the debug-gated
// assertions: every optimization pass, run on every built-in benchmark
// circuit, must produce a circuit that satisfies the hard IR invariants and
// stays functionally equivalent to its input. The assertions inside
// RunScript are armed (check.SetEnabled), so any violation panics with the
// offending stage name; the explicit checks below also validate the final
// result the script returns.
func TestPassesPreserveInvariants(t *testing.T) {
	prev := check.SetEnabled(true)
	t.Cleanup(func() { check.SetEnabled(prev) })

	passes := []string{"strash", "rewrite", "refactor", "fraig", "balance", "collapse", DefaultScript}
	cfg := Config{Seed: 1, SimWords: 2, MaxConflicts: 200}

	all := cases.All()
	if testing.Short() {
		all = all[:4]
	}
	for _, cs := range all {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			t.Parallel()
			for _, pass := range passes {
				out, err := RunScript(cs.Circuit, pass, cfg)
				if err != nil {
					t.Fatalf("%s: %v", pass, err)
				}
				if err := check.Verify(out); err != nil {
					t.Errorf("%s: result violates IR invariants: %v", pass, err)
				}
				if err := check.Equiv(out, 1, 4); err != nil {
					t.Errorf("%s: result fails self-equivalence: %v", pass, err)
				}
				if err := check.EquivCircuits(cs.Circuit, out, 1, 4); err != nil {
					t.Errorf("%s: result diverges from input: %v", pass, err)
				}
			}
		})
	}
}
