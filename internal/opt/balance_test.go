package opt

import (
	"math/rand"
	"testing"

	"logicregression/internal/aig"
)

func TestBalanceReducesChainDepth(t *testing.T) {
	// A linear AND chain over 16 inputs: depth 15 -> ceil(log2 16) = 4.
	names := make([]string, 16)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	g := aig.New(names)
	acc := g.PI(0)
	for i := 1; i < 16; i++ {
		acc = g.And(acc, g.PI(i))
	}
	g.AddPO("z", acc)
	_, before := g.Levels()
	if before != 15 {
		t.Fatalf("chain depth = %d, want 15", before)
	}
	b := Balance(g)
	_, after := b.Levels()
	if after != 4 {
		t.Fatalf("balanced depth = %d, want 4", after)
	}
	if b.NumAnds() > g.NumAnds() {
		t.Fatalf("balance grew the AIG: %d -> %d", g.NumAnds(), b.NumAnds())
	}
	// Function check on all 2^16 patterns via word sim (1024 words).
	for base := 0; base < 1<<16; base += 64 {
		in := make([]uint64, 16)
		for pat := 0; pat < 64; pat++ {
			m := base + pat
			for i := 0; i < 16; i++ {
				if m>>uint(i)&1 == 1 {
					in[i] |= 1 << uint(pat)
				}
			}
		}
		if g.EvalPOs(in)[0] != b.EvalPOs(in)[0] {
			t.Fatalf("balance changed function near pattern %d", base)
		}
	}
}

func TestBalanceRespectsSharedNodes(t *testing.T) {
	// A shared subterm must not be duplicated by flattening.
	g := aig.New([]string{"a", "b", "c", "d"})
	shared := g.And(g.PI(0), g.PI(1)) // fanout 2
	x := g.And(shared, g.PI(2))
	y := g.And(shared, g.PI(3))
	g.AddPO("x", x)
	g.AddPO("y", y)
	b := Balance(g)
	if b.NumAnds() > g.NumAnds() {
		t.Fatalf("balance duplicated shared logic: %d -> %d", g.NumAnds(), b.NumAnds())
	}
}

func TestBalancePreservesRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(rng, 6, 60, 3)
		g := aig.FromCircuit(c)
		b := Balance(g)
		bc := b.ToCircuit()
		simEqual(t, c, bc, rng, 60)
		if eq, done := ProveEquivalent(c, bc, 20000); done && !eq {
			t.Fatalf("trial %d: balance changed function", trial)
		}
		_, dg := g.Levels()
		_, db := b.Levels()
		if db > dg {
			t.Fatalf("trial %d: balance increased depth %d -> %d", trial, dg, db)
		}
	}
}

func TestBalanceHandlesConstantsAndPassthrough(t *testing.T) {
	g := aig.New([]string{"a"})
	g.AddPO("t", aig.True)
	g.AddPO("f", aig.False)
	g.AddPO("p", g.PI(0))
	g.AddPO("n", g.PI(0).Not())
	b := Balance(g)
	out := b.EvalPOs([]uint64{0xFF})
	if out[0] != ^uint64(0) || out[1] != 0 || out[2] != 0xFF || out[3] != ^uint64(0xFF) {
		t.Fatalf("constants/passthrough wrong: %x", out)
	}
}
