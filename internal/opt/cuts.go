package opt

// K-feasible cut enumeration with truth tables, the standard analysis
// behind DAG-aware rewriting. For every AND node the enumerator maintains a
// bounded set of 6-input cuts; each cut carries the node's local function
// over the cut leaves as a 64-bit truth table (internal/tt), computed
// bottom-up.

import (
	"sort"

	"logicregression/internal/aig"
	"logicregression/internal/tt"
)

const (
	cutK       = 6 // max leaves per cut
	cutsPerNow = 8 // max cuts kept per node
)

// cut is a set of at most cutK leaf nodes (sorted ascending) plus the truth
// table of the cut root over those leaves: bit m of tt gives the root value
// when leaf i carries bit i of m.
type cut struct {
	leaves []int
	tt     tt.Table
}

// cutSet is the per-node collection.
type cutSet []cut

// enumerateCuts computes cut sets for every node of g.
func enumerateCuts(g *aig.AIG) []cutSet {
	sets := make([]cutSet, g.NumNodes())
	// Constant node: trivial cut with empty leaf set, tt = 0.
	sets[0] = cutSet{{leaves: nil, tt: 0}}
	// A PI's only cut is itself; its table is the identity on variable 0.
	for i := 1; i <= g.NumPIs(); i++ {
		sets[i] = cutSet{{leaves: []int{i}, tt: tt.Var(0)}}
	}
	for n := g.NumPIs() + 1; n < g.NumNodes(); n++ {
		f0, f1 := g.Fanins(n)
		s0 := sets[f0.Node()]
		s1 := sets[f1.Node()]
		var merged cutSet
		for _, c0 := range s0 {
			for _, c1 := range s1 {
				leaves, ok := mergeLeaves(c0.leaves, c1.leaves)
				if !ok {
					continue
				}
				t0 := expandTT(c0.tt, c0.leaves, leaves)
				t1 := expandTT(c1.tt, c1.leaves, leaves)
				if f0.Compl() {
					t0 = ^t0
				}
				if f1.Compl() {
					t1 = ^t1
				}
				merged = append(merged, cut{leaves: leaves, tt: t0 & t1})
			}
		}
		// The trivial cut (the node itself).
		merged = append(merged, cut{leaves: []int{n}, tt: tt.Var(0)})
		sets[n] = pruneCuts(merged)
	}
	return sets
}

// mergeLeaves unions two sorted leaf sets, failing when the union exceeds
// cutK.
func mergeLeaves(a, b []int) ([]int, bool) {
	out := make([]int, 0, cutK)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next int
		switch {
		case i >= len(a):
			next = b[j]
			j++
		case j >= len(b):
			next = a[i]
			i++
		case a[i] < b[j]:
			next = a[i]
			i++
		case a[i] > b[j]:
			next = b[j]
			j++
		default:
			next = a[i]
			i++
			j++
		}
		if len(out) == cutK {
			return nil, false
		}
		out = append(out, next)
	}
	return out, true
}

// expandTT re-expresses a truth table over oldLeaves in terms of newLeaves
// (a superset).
func expandTT(t tt.Table, oldLeaves, newLeaves []int) tt.Table {
	if len(oldLeaves) == len(newLeaves) {
		return t
	}
	// Map old variable positions to new ones.
	var pos [cutK]int
	j := 0
	for i, l := range oldLeaves {
		for newLeaves[j] != l {
			j++
		}
		pos[i] = j
	}
	var out tt.Table
	for m := 0; m < 64; m++ {
		// Project minterm m of the new space onto the old space.
		var om int
		for i := 0; i < len(oldLeaves); i++ {
			if m>>uint(pos[i])&1 == 1 {
				om |= 1 << uint(i)
			}
		}
		if t.Eval(om) {
			out |= 1 << uint(m)
		}
	}
	return out
}

// pruneCuts deduplicates, removes dominated cuts (supersets of another
// cut), and bounds the set size preferring fewer leaves.
func pruneCuts(cs cutSet) cutSet {
	sort.Slice(cs, func(i, j int) bool { return len(cs[i].leaves) < len(cs[j].leaves) })
	var out cutSet
	for _, c := range cs {
		dominated := false
		for _, kept := range out {
			if leavesSubset(kept.leaves, c.leaves) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
			if len(out) == cutsPerNow {
				break
			}
		}
	}
	return out
}

// leavesSubset reports whether a ⊆ b (both sorted).
func leavesSubset(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
	}
	return true
}
