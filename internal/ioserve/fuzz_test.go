package ioserve

import (
	"bytes"
	"io"
	"testing"

	"logicregression/internal/circuit"
	"logicregression/internal/oracle"
)

// stream drives the wire protocol without a socket.
type stream struct {
	io.Reader
	io.Writer
}

// FuzzServeStream throws arbitrary client bytes at the protocol loop —
// especially the v2 frame parser, whose declared batch sizes and frame
// bodies come straight off the wire. The server must never panic and never
// allocate lanes from an untrusted length.
func FuzzServeStream(f *testing.F) {
	for _, seed := range []string{
		"01\n",
		"proto 2\nbatch 2\n01\n10\nquit\n",
		"batch 1\n11\n",
		"batch 0\n",
		"batch -1\n01\n",
		"batch 99999999999999999999\n",
		"batch x\n",
		"batch 3\n01\n", // truncated frame
		"proto 1\n",
		"proto two\n",
		"proto 2\n0101010\n", // wrong arity after upgrade
		"bogus command\n",
		"\n\n\n",
		"batch 2\n01\nxx\nquit\n", // malformed line inside a frame
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c := circuit.New()
		a := c.AddPI("a")
		b := c.AddPI("b")
		c.AddPO("x", c.Xor(a, b))
		c.AddPO("y", c.And(a, b))
		for _, srv := range []*Server{
			NewServer(oracle.FromCircuit(c)),
			{inner: oracle.FromCircuit(c), V1Only: true},
		} {
			srv.serveStream(stream{bytes.NewReader(data), io.Discard})
		}
	})
}
