package ioserve

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"

	"logicregression/internal/bitvec"
	"logicregression/internal/circuit"
	"logicregression/internal/core"
	"logicregression/internal/eval"
	"logicregression/internal/oracle"
)

func startServer(t *testing.T, o oracle.Oracle) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go NewServer(o).Serve(ln)
	return ln.Addr().String()
}

func golden() *circuit.Circuit {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	d := c.AddPI("d")
	c.AddPO("z", c.Xor(c.And(a, b), d))
	c.AddPO("w", c.Or(a, d))
	return c
}

func TestClientMatchesDirectOracle(t *testing.T) {
	g := golden()
	addr := startServer(t, oracle.FromCircuit(g))
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.NumInputs() != 3 || cl.NumOutputs() != 2 {
		t.Fatalf("arity %d/%d", cl.NumInputs(), cl.NumOutputs())
	}
	if cl.InputNames()[2] != "d" || cl.OutputNames()[1] != "w" {
		t.Fatalf("names %v %v", cl.InputNames(), cl.OutputNames())
	}
	for m := 0; m < 8; m++ {
		assign := []bool{m&1 == 1, m>>1&1 == 1, m>>2&1 == 1}
		want := g.Eval(assign)
		got := cl.Eval(assign)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("m=%d output %d mismatch", m, j)
			}
		}
	}
}

func TestTwoConcurrentClients(t *testing.T) {
	g := golden()
	addr := startServer(t, oracle.FromCircuit(g))
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	a := []bool{true, true, false}
	if c1.Eval(a)[0] != c2.Eval(a)[0] {
		t.Fatal("clients disagree")
	}
}

func TestServerRejectsMalformedQueriesButStaysUp(t *testing.T) {
	addr := startServer(t, oracle.FromCircuit(golden()))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewScanner(conn)
	r.Scan()                  // inputs
	r.Scan()                  // outputs
	fmt.Fprintln(conn, "10")  // wrong arity
	fmt.Fprintln(conn, "1x0") // bad character
	fmt.Fprintln(conn, "110") // valid
	var lines []string
	for i := 0; i < 3 && r.Scan(); i++ {
		lines = append(lines, r.Text())
	}
	if len(lines) != 3 {
		t.Fatalf("replies: %v", lines)
	}
	if !strings.HasPrefix(lines[0], "error:") || !strings.HasPrefix(lines[1], "error:") {
		t.Fatalf("malformed queries not rejected: %v", lines)
	}
	if strings.HasPrefix(lines[2], "error:") {
		t.Fatalf("valid query rejected: %v", lines[2])
	}
}

func TestLearnThroughTheWire(t *testing.T) {
	// End-to-end: the full pipeline driving a remote black box.
	g := golden()
	addr := startServer(t, oracle.FromCircuit(g))
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res := core.Learn(cl, core.Options{Seed: 1, SupportR: 128, DisableOptimization: true})
	rep := eval.Measure(oracle.FromCircuit(g), oracle.FromCircuit(res.Circuit),
		eval.Config{Patterns: 2000, Seed: 5})
	if rep.Accuracy != 1 {
		t.Fatalf("accuracy through the wire = %f", rep.Accuracy)
	}
}

func TestDialFailsOnBadGreeting(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fmt.Fprintln(conn, "hello there")
		conn.Close()
	}()
	if _, err := Dial(ln.Addr().String()); err == nil {
		t.Fatal("Dial accepted a bad greeting")
	}
}

// wireLanes draws a seeded batch of n patterns for an nIn-input oracle.
func wireLanes(seed int64, nIn, n int) []bitvec.Word {
	rng := rand.New(rand.NewSource(seed))
	w := oracle.Words(n)
	lanes := make([]bitvec.Word, nIn*w)
	for i := range lanes {
		lanes[i] = rng.Uint64()
	}
	return lanes
}

func lanesEqual(got, want []bitvec.Word, nOut, n int) bool {
	w := oracle.Words(n)
	for j := 0; j < nOut; j++ {
		for b := 0; b < w; b++ {
			mask := ^bitvec.Word(0)
			if last := n - b*64; last < 64 {
				mask = 1<<uint(last) - 1
			}
			if got[j*w+b]&mask != want[j*w+b]&mask {
				return false
			}
		}
	}
	return true
}

func TestV2UpgradeAndBatchParity(t *testing.T) {
	g := golden()
	addr := startServer(t, oracle.FromCircuit(g))
	cl, err := DialV2(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Proto() != 2 {
		t.Fatalf("Proto() = %d after successful upgrade", cl.Proto())
	}
	// More than one frame's worth of queries to exercise frame splitting.
	n := MaxFrame + 77
	lanes := wireLanes(11, cl.NumInputs(), n)
	want := oracle.EvalBatch(oracle.FromCircuit(g), lanes, n)
	got := cl.EvalBatch(lanes, n)
	if !lanesEqual(got, want, cl.NumOutputs(), n) {
		t.Fatal("v2 wire batch diverges from direct evaluation")
	}
	// Scalar queries still work on an upgraded session.
	a := []bool{true, false, true}
	direct := oracle.FromCircuit(g).Eval(a)
	for j, bit := range cl.Eval(a) {
		if bit != direct[j] {
			t.Fatalf("scalar query on v2 session wrong at output %d", j)
		}
	}
}

func TestV1OnlyServerFallback(t *testing.T) {
	g := golden()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewServer(oracle.FromCircuit(g))
	srv.V1Only = true
	go srv.Serve(ln)

	cl, err := DialV2(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Proto() != 1 {
		t.Fatalf("Proto() = %d against a v1-only server", cl.Proto())
	}
	if cl.TryUpgrade() {
		t.Fatal("second TryUpgrade claimed v2 on a v1-only server")
	}
	// Batch queries must still work, pipelined over the line protocol, across
	// several pipeline chunks.
	n := 5*v1PipelineChunk + 13
	lanes := wireLanes(23, cl.NumInputs(), n)
	want := oracle.EvalBatch(oracle.FromCircuit(g), lanes, n)
	got := cl.EvalBatch(lanes, n)
	if !lanesEqual(got, want, cl.NumOutputs(), n) {
		t.Fatal("v1 pipelined batch diverges from direct evaluation")
	}
}

func TestServerClosesOnUntrustedBatchSize(t *testing.T) {
	addr := startServer(t, oracle.FromCircuit(golden()))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewScanner(conn)
	r.Scan() // inputs
	r.Scan() // outputs
	fmt.Fprintln(conn, "batch 0")
	if !r.Scan() || !strings.HasPrefix(r.Text(), "error:") {
		t.Fatalf("bad batch size not rejected: %q", r.Text())
	}
	// The frame length could not be trusted, so the server must have dropped
	// the connection rather than try to resynchronize.
	if r.Scan() {
		t.Fatalf("connection still open after untrusted batch size: %q", r.Text())
	}
}

func TestMalformedBatchLineKeepsConnectionUsable(t *testing.T) {
	addr := startServer(t, oracle.FromCircuit(golden()))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewScanner(conn)
	r.Scan() // inputs
	r.Scan() // outputs
	fmt.Fprintln(conn, "batch 2")
	fmt.Fprintln(conn, "1x0") // bad bit
	fmt.Fprintln(conn, "110")
	if !r.Scan() || !strings.HasPrefix(r.Text(), "error:") {
		t.Fatalf("malformed batch line not rejected: %q", r.Text())
	}
	fmt.Fprintln(conn, "110") // plain v1 query on the same connection
	if !r.Scan() || strings.HasPrefix(r.Text(), "error:") {
		t.Fatalf("connection unusable after rejected batch: %q", r.Text())
	}
}

// TestManyConcurrentClients hammers one server from parallel sessions, each
// mixing v2 batches and scalar queries. The circuit oracle forks, so the
// connections run lock-free; the race detector checks that claim.
func TestManyConcurrentClients(t *testing.T) {
	g := golden()
	direct := oracle.FromCircuit(g)
	addr := startServer(t, direct)
	const clients = 8
	const rounds = 20
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(seed int64) {
			errc <- func() error {
				cl, err := DialV2(addr)
				if err != nil {
					return err
				}
				defer cl.Close()
				if cl.Proto() != 2 {
					return fmt.Errorf("client %d stuck on v1", seed)
				}
				for r := 0; r < rounds; r++ {
					n := 64 + int(seed)*7 + r
					lanes := wireLanes(seed*1000+int64(r), cl.NumInputs(), n)
					want := oracle.EvalBatch(direct, lanes, n)
					if !lanesEqual(cl.EvalBatch(lanes, n), want, cl.NumOutputs(), n) {
						return fmt.Errorf("client %d round %d diverged", seed, r)
					}
				}
				return nil
			}()
		}(int64(c))
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentClientsSerializedOracle covers the non-Forker path: a
// stateful oracle shared by all connections must be protected by the server
// lock, which the race detector verifies.
func TestConcurrentClientsSerializedOracle(t *testing.T) {
	counted := oracle.NewCounter(oracle.ScalarOnly(oracle.FromCircuit(golden())))
	addr := startServer(t, counted)
	const clients = 4
	const queries = 50
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(seed int64) {
			errc <- func() error {
				cl, err := Dial(addr)
				if err != nil {
					return err
				}
				defer cl.Close()
				rng := rand.New(rand.NewSource(seed))
				for q := 0; q < queries; q++ {
					a := []bool{rng.Intn(2) == 1, rng.Intn(2) == 1, rng.Intn(2) == 1}
					cl.Eval(a)
				}
				return nil
			}()
		}(int64(c))
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := counted.Queries(); got != clients*queries {
		t.Fatalf("shared oracle saw %d queries, want %d", got, clients*queries)
	}
}

// TestConnectionChurnStress mixes long-lived querying clients with clients
// that connect, fire one query, and hang up, against a shared memo-wrapped
// oracle on the serialized (non-Forker) path. Under -race this covers the
// per-connection goroutine lifecycle against the server lock and the memo's
// shard locks; functionally every answer must match the direct oracle.
func TestConnectionChurnStress(t *testing.T) {
	g := golden()
	direct := oracle.FromCircuit(g)
	memo := oracle.NewMemoCap(oracle.ScalarOnly(direct), 16)
	addr := startServer(t, memo)

	const steady = 3
	const churners = 3
	const rounds = 30
	errc := make(chan error, steady+churners)
	for c := 0; c < steady; c++ {
		go func(seed int64) {
			errc <- func() error {
				cl, err := DialV2(addr)
				if err != nil {
					return err
				}
				defer cl.Close()
				rng := rand.New(rand.NewSource(seed))
				for r := 0; r < rounds; r++ {
					a := []bool{rng.Intn(2) == 1, rng.Intn(2) == 1, rng.Intn(2) == 1}
					got, want := cl.Eval(a), direct.Eval(a)
					for i := range want {
						if got[i] != want[i] {
							return fmt.Errorf("steady %d: Eval(%v) = %v, want %v", seed, a, got, want)
						}
					}
				}
				return nil
			}()
		}(int64(c))
	}
	for c := 0; c < churners; c++ {
		go func(seed int64) {
			errc <- func() error {
				rng := rand.New(rand.NewSource(100 + seed))
				for r := 0; r < rounds; r++ {
					cl, err := Dial(addr)
					if err != nil {
						return err
					}
					a := []bool{rng.Intn(2) == 1, rng.Intn(2) == 1, rng.Intn(2) == 1}
					got, want := cl.Eval(a), direct.Eval(a)
					cl.Close()
					for i := range want {
						if got[i] != want[i] {
							return fmt.Errorf("churner %d: Eval(%v) = %v, want %v", seed, a, got, want)
						}
					}
				}
				return nil
			}()
		}(int64(c))
	}
	for c := 0; c < steady+churners; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
