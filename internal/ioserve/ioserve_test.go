package ioserve

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"logicregression/internal/circuit"
	"logicregression/internal/core"
	"logicregression/internal/eval"
	"logicregression/internal/oracle"
)

func startServer(t *testing.T, o oracle.Oracle) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go NewServer(o).Serve(ln)
	return ln.Addr().String()
}

func golden() *circuit.Circuit {
	c := circuit.New()
	a := c.AddPI("a")
	b := c.AddPI("b")
	d := c.AddPI("d")
	c.AddPO("z", c.Xor(c.And(a, b), d))
	c.AddPO("w", c.Or(a, d))
	return c
}

func TestClientMatchesDirectOracle(t *testing.T) {
	g := golden()
	addr := startServer(t, oracle.FromCircuit(g))
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.NumInputs() != 3 || cl.NumOutputs() != 2 {
		t.Fatalf("arity %d/%d", cl.NumInputs(), cl.NumOutputs())
	}
	if cl.InputNames()[2] != "d" || cl.OutputNames()[1] != "w" {
		t.Fatalf("names %v %v", cl.InputNames(), cl.OutputNames())
	}
	for m := 0; m < 8; m++ {
		assign := []bool{m&1 == 1, m>>1&1 == 1, m>>2&1 == 1}
		want := g.Eval(assign)
		got := cl.Eval(assign)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("m=%d output %d mismatch", m, j)
			}
		}
	}
}

func TestTwoConcurrentClients(t *testing.T) {
	g := golden()
	addr := startServer(t, oracle.FromCircuit(g))
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	a := []bool{true, true, false}
	if c1.Eval(a)[0] != c2.Eval(a)[0] {
		t.Fatal("clients disagree")
	}
}

func TestServerRejectsMalformedQueriesButStaysUp(t *testing.T) {
	addr := startServer(t, oracle.FromCircuit(golden()))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewScanner(conn)
	r.Scan()                  // inputs
	r.Scan()                  // outputs
	fmt.Fprintln(conn, "10")  // wrong arity
	fmt.Fprintln(conn, "1x0") // bad character
	fmt.Fprintln(conn, "110") // valid
	var lines []string
	for i := 0; i < 3 && r.Scan(); i++ {
		lines = append(lines, r.Text())
	}
	if len(lines) != 3 {
		t.Fatalf("replies: %v", lines)
	}
	if !strings.HasPrefix(lines[0], "error:") || !strings.HasPrefix(lines[1], "error:") {
		t.Fatalf("malformed queries not rejected: %v", lines)
	}
	if strings.HasPrefix(lines[2], "error:") {
		t.Fatalf("valid query rejected: %v", lines[2])
	}
}

func TestLearnThroughTheWire(t *testing.T) {
	// End-to-end: the full pipeline driving a remote black box.
	g := golden()
	addr := startServer(t, oracle.FromCircuit(g))
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res := core.Learn(cl, core.Options{Seed: 1, SupportR: 128, DisableOptimization: true})
	rep := eval.Measure(oracle.FromCircuit(g), oracle.FromCircuit(res.Circuit),
		eval.Config{Patterns: 2000, Seed: 5})
	if rep.Accuracy != 1 {
		t.Fatalf("accuracy through the wire = %f", rep.Accuracy)
	}
}

func TestDialFailsOnBadGreeting(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fmt.Fprintln(conn, "hello there")
		conn.Close()
	}()
	if _, err := Dial(ln.Addr().String()); err == nil {
		t.Fatal("Dial accepted a bad greeting")
	}
}
